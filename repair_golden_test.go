package streamsched_test

// Differential goldens for incremental repair. Each case takes the pinned
// het_stream golden instance, applies a platform delta, repairs through
// Solver.Replan, and pins the repaired schedule byte-for-byte (repair is
// deterministic: replay order, ladder rungs and search tie-breaks are all
// fixed). Two differential properties ride along: the repaired schedule
// validates under the post-delta platform, and its latency bound stays
// within 2× of a cold solve on the same platform — repair trades some
// schedule quality for incrementality, but not unboundedly. Regenerate
// with
//
//	go test -run TestGoldenRepairDifferentials -update-golden .
//
// only when an intentional repair-algorithm change lands.

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"streamsched"
	"streamsched/internal/platform"
	"streamsched/internal/randgraph"
	"streamsched/internal/rng"
)

// repairGoldenInstance rebuilds the het_stream golden instance (seed 31,
// m = 12) used by TestGoldenSchedules.
func repairGoldenInstance() (*streamsched.Graph, *streamsched.Platform) {
	r := rng.New(31)
	p := platform.RandomHeterogeneous(r, 12, 0.5, 1, 0.5, 1, 100)
	cfg := randgraph.DefaultStreamConfig()
	cfg.MinTasks, cfg.MaxTasks = 30, 40
	return randgraph.Stream(r, cfg, p), p
}

func TestGoldenRepairDifferentials(t *testing.T) {
	g, p := repairGoldenInstance()
	links := make([]float64, p.NumProcs())
	for i := range links {
		links[i] = 100
	}
	deltas := []struct {
		name  string
		delta streamsched.PlatformDelta
	}{
		{"lostproc", streamsched.PlatformDelta{Lost: []streamsched.ProcID{3}}},
		{"degrade", streamsched.PlatformDelta{
			Speed:     []streamsched.ProcSpeedChange{{Proc: 0, Speed: p.Speed(0) * 0.5}},
			Bandwidth: []streamsched.LinkBandwidthChange{{From: 0, To: 1, Bandwidth: 10}, {From: 1, To: 0, Bandwidth: 10}},
		}},
		{"addproc", streamsched.PlatformDelta{Added: []streamsched.AddedProc{{Speed: 1, Links: links}}}},
	}
	for _, algo := range []struct {
		name string
		a    streamsched.Algorithm
	}{{"ltf", streamsched.LTF}, {"rltf", streamsched.RLTF}} {
		solver, err := streamsched.NewSolver(
			streamsched.WithAlgorithm(algo.a),
			streamsched.WithEps(1),
			streamsched.WithPeriod(40),
		)
		if err != nil {
			t.Fatal(err)
		}
		old, err := solver.Solve(context.Background(), g, p)
		if err != nil {
			t.Fatalf("%s: solving the committed schedule: %v", algo.name, err)
		}
		for _, dc := range deltas {
			t.Run(algo.name+"_"+dc.name, func(t *testing.T) {
				res, err := solver.Replan(context.Background(), old, dc.delta)
				if err != nil {
					t.Fatalf("replan: %v", err)
				}
				if res.Stats.ColdSolve {
					t.Fatal("repair fell back to a cold solve; the differential golden pins incremental repair")
				}
				if err := res.Schedule.Validate(); err != nil {
					t.Fatalf("repaired schedule invalid under the post-delta platform: %v", err)
				}

				// Bounded gap vs a cold solve on the post-delta platform.
				newP, _, err := dc.delta.Apply(p)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := solver.Solve(context.Background(), g, newP)
				if err != nil {
					t.Fatalf("cold solve on the post-delta platform: %v", err)
				}
				if rb, cb := res.Schedule.LatencyBound(), cold.LatencyBound(); rb > 2*cb {
					t.Fatalf("repaired latency bound %g exceeds 2× the cold bound %g", rb, cb)
				}

				got, err := json.Marshal(res.Schedule)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				path := filepath.Join("testdata", "golden", "repair_"+algo.name+"_"+dc.name+".json")
				if *updateGolden {
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update-golden): %v", err)
				}
				if string(got) != string(want) {
					t.Errorf("repaired schedule diverges from golden %s (%d vs %d bytes)", path, len(got), len(want))
				}
			})
		}
	}
}
