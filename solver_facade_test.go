package streamsched_test

// Acceptance tests for the context-aware solver façade: typed
// infeasibility via errors.Is/errors.As, context cancellation of the
// tri-criteria searches, and worker-count-independent batch results.

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"streamsched"
)

func TestFacadeTypedInfeasibility(t *testing.T) {
	cases := []struct {
		name   string
		opts   []streamsched.SolverOption
		graph  *streamsched.Graph
		procs  int
		reason streamsched.Reason
	}{
		{
			name: "period exceeded",
			opts: []streamsched.SolverOption{streamsched.WithPeriod(5)},
			graph: func() *streamsched.Graph {
				g := streamsched.NewGraph("heavy")
				g.AddTask("a", 10)
				return g
			}(),
			procs:  2,
			reason: streamsched.ReasonPeriodExceeded,
		},
		{
			name: "port overload",
			opts: []streamsched.SolverOption{
				streamsched.WithAlgorithm(streamsched.LTF),
				streamsched.WithEps(1),
				streamsched.WithPeriod(10),
				streamsched.WithOneToOne(false),
			},
			graph: func() *streamsched.Graph {
				g := streamsched.NewGraph("wide")
				a := g.AddTask("a", 0.1)
				b := g.AddTask("b", 0.1)
				g.MustAddEdge(a, b, 1000)
				return g
			}(),
			procs:  2,
			reason: streamsched.ReasonPortOverload,
		},
		{
			name: "no processor",
			opts: []streamsched.SolverOption{
				streamsched.WithEps(3),
				streamsched.WithPeriod(100),
			},
			graph:  streamsched.Chain(2, 1, 1),
			procs:  2,
			reason: streamsched.ReasonNoProcessor,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			solver, err := streamsched.NewSolver(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			p := streamsched.Homogeneous(tc.procs, 1, 1)
			_, err = solver.Solve(context.Background(), tc.graph, p)
			if !errors.Is(err, streamsched.ErrInfeasible) {
				t.Fatalf("err = %v, want errors.Is(err, ErrInfeasible)", err)
			}
			var inf *streamsched.InfeasibleError
			if !errors.As(err, &inf) {
				t.Fatalf("error type %T, want *InfeasibleError", err)
			}
			if inf.Reason != tc.reason {
				t.Fatalf("reason = %v, want %v", inf.Reason, tc.reason)
			}
		})
	}
}

func TestFacadeMaxThroughputCancellation(t *testing.T) {
	g := streamsched.Chain(12, 1, 0.1)
	p := streamsched.Homogeneous(8, 1, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := streamsched.MaxThroughput(ctx, g, p, 1, 0, streamsched.RLTF); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFacadeSolveManyMatchesSerial(t *testing.T) {
	// A 50-instance random campaign solved with 8 workers must produce
	// byte-identical schedules to the serial path.
	const n = 50
	reqs := make([]streamsched.SolveRequest, n)
	for i := range reqs {
		p := streamsched.RandomPlatform(uint64(i+1), 10, 0.5, 1, 0.5, 1)
		g := streamsched.RandomStream(uint64(100+i), 0.5+0.15*float64(i%8), p)
		reqs[i] = streamsched.SolveRequest{Graph: g, Platform: p}
	}
	opts := []streamsched.SolverOption{
		streamsched.WithAlgorithm(streamsched.RLTF),
		streamsched.WithEps(1),
		streamsched.WithPeriod(20),
	}
	serial := (&streamsched.Batch{Workers: 1, Opts: opts}).Solve(context.Background(), reqs)
	concurrent := (&streamsched.Batch{Workers: 8, Opts: opts}).Solve(context.Background(), reqs)
	feasible := 0
	for i := range reqs {
		if (serial[i].Err == nil) != (concurrent[i].Err == nil) {
			t.Fatalf("instance %d: feasibility differs (%v vs %v)", i, serial[i].Err, concurrent[i].Err)
		}
		if serial[i].Err != nil {
			if !errors.Is(serial[i].Err, streamsched.ErrInfeasible) {
				t.Fatalf("instance %d: solver fault %v", i, serial[i].Err)
			}
			continue
		}
		feasible++
		sj, err := serial[i].Schedule.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		cj, err := concurrent[i].Schedule.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, cj) {
			t.Fatalf("instance %d: schedules differ between worker counts", i)
		}
	}
	if feasible == 0 {
		t.Fatal("campaign produced no feasible instance; test is vacuous")
	}
}

func TestFacadePortfolio(t *testing.T) {
	p := streamsched.RandomPlatform(5, 12, 0.5, 1, 0.5, 1)
	g := streamsched.RandomStream(9, 1.0, p)
	solver, err := streamsched.NewSolver(
		streamsched.WithAlgorithm(streamsched.Portfolio),
		streamsched.WithEps(1),
		streamsched.WithPeriod(20),
	)
	if err != nil {
		t.Fatal(err)
	}
	s, err := solver.Solve(context.Background(), g, p)
	if err != nil {
		if errors.Is(err, streamsched.ErrInfeasible) {
			t.Skip("instance infeasible for both algorithms")
		}
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Algorithm != "LTF" && s.Algorithm != "R-LTF" {
		t.Fatalf("portfolio produced %q", s.Algorithm)
	}
}
