// Heterogeneity and granularity: how the computation-to-communication
// ratio g(G,P) and platform heterogeneity shape the schedules — a
// small-scale interactive version of the paper's §5 experiments. For each
// granularity, a random workflow is calibrated and scheduled with LTF and
// R-LTF on the paper's 20-processor heterogeneous platform; the table shows
// the stage counts, latency bounds, communication counts, and measured
// latencies that Figures 3 and 4 aggregate over 60 graphs.
package main

import (
	"context"
	"fmt"
	"log"

	"streamsched"
)

func main() {
	p := streamsched.RandomPlatform(42, 20, 0.5, 1.0, 0.5, 1.0)
	const (
		eps    = 1
		period = 20.0 // Δ = 10(ε+1), the paper's throughput constraint
	)

	ctx := context.Background()
	grans := []float64{0.4, 0.6, 0.8, 1.0, 1.4, 2.0}

	// Both algorithms at every granularity point: one concurrent batch of
	// 2×len(grans) independent solves.
	var reqs []streamsched.SolveRequest
	for _, gran := range grans {
		g := streamsched.RandomStream(7, gran, p)
		for _, algo := range []streamsched.Algorithm{streamsched.LTF, streamsched.RLTF} {
			reqs = append(reqs, streamsched.SolveRequest{Graph: g, Platform: p,
				Opts: []streamsched.SolverOption{streamsched.WithAlgorithm(algo)}})
		}
	}
	results := streamsched.SolveMany(ctx, reqs,
		streamsched.WithEps(eps), streamsched.WithPeriod(period))

	fmt.Println("granularity sweep on the paper's heterogeneous platform (ε=1, Δ=20)")
	fmt.Printf("%6s | %18s | %18s | %s\n", "g", "LTF  S  L  comms", "R-LTF S  L  comms", "R-LTF measured")
	for i, gran := range grans {
		row := fmt.Sprintf("%6.2f |", gran)
		ltfRes, rltfRes := results[2*i], results[2*i+1]
		if ltfRes.Err != nil {
			row += fmt.Sprintf(" %18s |", "infeasible")
		} else {
			s := ltfRes.Schedule
			row += fmt.Sprintf("   %2d %5.0f %5d   |", s.Stages(), s.LatencyBound(), s.CrossComms())
		}
		if rltfRes.Err != nil {
			row += fmt.Sprintf(" %18s |", "infeasible")
			fmt.Println(row)
			continue
		}
		s := rltfRes.Schedule
		row += fmt.Sprintf("   %2d %5.0f %5d   |", s.Stages(), s.LatencyBound(), s.CrossComms())

		cfg := streamsched.DefaultSimConfig(s)
		cfg.Synchronous = true
		res, err := streamsched.Simulate(ctx, s, cfg)
		if err == nil {
			row += fmt.Sprintf(" %.0f (bound %.0f)", res.MeanLatency, s.LatencyBound())
		}
		fmt.Println(row)
	}

	// Heterogeneity effect: the same workflow on a homogeneous platform of
	// equal aggregate speed vs the heterogeneous one.
	fmt.Println("\nheterogeneity effect (same workflow, same aggregate speed):")
	g := streamsched.RandomStream(7, 1.0, p)
	homo := streamsched.Homogeneous(20, meanSpeed(p), 100.0/0.75)
	for _, tc := range []struct {
		name string
		plat *streamsched.Platform
	}{
		{"heterogeneous", p},
		{"homogeneous", homo},
	} {
		solver, err := streamsched.NewSolver(
			streamsched.WithAlgorithm(streamsched.RLTF),
			streamsched.WithEps(eps),
			streamsched.WithPeriod(period),
		)
		if err != nil {
			log.Fatal(err)
		}
		s, err := solver.Solve(ctx, g, tc.plat)
		if err != nil {
			fmt.Printf("  %-14s infeasible: %v\n", tc.name, err)
			continue
		}
		fmt.Printf("  %-14s S=%d L=%.0f comms=%d procs=%d\n",
			tc.name, s.Stages(), s.LatencyBound(), s.CrossComms(), s.ProcsUsed())
	}
}

func meanSpeed(p *streamsched.Platform) float64 {
	sum := 0.0
	for u := 0; u < p.NumProcs(); u++ {
		sum += p.Speed(streamsched.ProcID(u))
	}
	return sum / float64(p.NumProcs())
}
