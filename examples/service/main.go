// Command service is a complete streamschedd client: it submits one
// problem to POST /v1/solve (handling the 200 / 409 / 429 outcomes the
// service distinguishes), runs a crash-scenario sweep through
// POST /v1/simulate, and reads the cache/queue counters from GET /metrics.
//
// Retry budget contract. The server owns the hints, the client owns the
// budget: post retries retryable failures — 429 queue-full, 503 drain (a
// replica shutting down or warming up), and transient connection errors
// (a replica mid-restart) — at most maxAttempts times, sleeping a capped
// exponential backoff with full jitter between attempts. A Retry-After
// header, when present, is the floor of that sleep, never the whole
// policy: jittered backoff is what keeps a fleet of retrying clients from
// re-converging on the same instant. Anything else (400, 409, 500) is not
// retried — it will not get better by asking again.
//
// Start a daemon first, then point the client at it:
//
//	go run ./cmd/streamschedd -addr :8080 &
//	go run ./examples/service -addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"strconv"
	"time"

	"streamsched"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "streamschedd base URL")
	flag.Parse()

	// The paper's Figure 2 workflow on six processors, tolerating one
	// failure — the same problem the quickstart example solves in-process.
	req := streamsched.WireSolveRequest{
		Graph:    streamsched.NewWireGraph(streamsched.Fig2Graph()),
		Platform: streamsched.NewWirePlatform(streamsched.Homogeneous(6, 1, 10)),
		Options:  streamsched.WireOptions{Algorithm: "rltf", Eps: 1, Period: 40},
	}

	var solve streamsched.WireSolveResponse
	status := post(*addr+"/v1/solve", req, &solve)
	switch status {
	case http.StatusOK:
		s := solve.Summary
		fmt.Printf("solved (hash %.12s… cached=%v): %s, %d stages, latency bound %.4g\n",
			solve.Hash, solve.Cached, s.Algorithm, s.Stages, s.LatencyBound)
	case http.StatusConflict:
		fmt.Printf("infeasible: %v\n", solve.Infeasible)
		return
	default:
		fmt.Fprintf(os.Stderr, "solve failed: HTTP %d: %s\n", status, solve.Error)
		os.Exit(1)
	}

	// Sweep three scenarios on the solved schedule; the daemon reuses one
	// simulation engine for the whole sweep, and the solve above means the
	// schedule comes straight from the result cache.
	sweep := streamsched.WireSimulateRequest{
		Graph: req.Graph, Platform: req.Platform, Options: req.Options,
		Scenarios: []streamsched.WireScenario{
			{Name: "free-running"},
			{Name: "synchronous", Synchronous: true},
			{Name: "crash-P1", CrashProcs: []int{0}, CrashAt: 0},
		},
	}
	var sim streamsched.WireSimulateResponse
	if status := post(*addr+"/v1/simulate", sweep, &sim); status != http.StatusOK {
		fmt.Fprintf(os.Stderr, "simulate failed: HTTP %d: %s\n", status, sim.Error)
		os.Exit(1)
	}
	for _, sc := range sim.Scenarios {
		mean := "n/a"
		if sc.MeanLatency != nil {
			mean = fmt.Sprintf("%.4g", *sc.MeanLatency)
		}
		fmt.Printf("  %-12s mean latency %s (%d/%d items delivered)\n",
			sc.Name, mean, sc.Delivered, sc.Items)
	}

	var metrics streamsched.ServiceMetrics
	resp, err := http.Get(*addr + "/metrics")
	if err != nil {
		fmt.Fprintln(os.Stderr, "metrics:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		fmt.Fprintln(os.Stderr, "metrics:", err)
		os.Exit(1)
	}
	fmt.Printf("server: %d solver calls, cache hit ratio %.2f, %d rejected\n",
		metrics.SolveCalls, metrics.Cache.HitRatio, metrics.Queue.Rejected)
}

// Retry policy knobs (see the file header for the contract).
const (
	maxAttempts = 6
	baseBackoff = 250 * time.Millisecond
	maxBackoff  = 8 * time.Second
)

// post sends one JSON request under the retry budget: 429, 503 and
// connection errors retry with capped exponential backoff and full
// jitter, honoring Retry-After as a floor; other statuses return at once.
func post(url string, body, out any) int {
	enc, err := json.Marshal(body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(1)
	}
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(enc))
		if err != nil {
			// Connection-level failure: the replica may be mid-restart.
			if attempt == maxAttempts {
				fmt.Fprintln(os.Stderr, "post:", err)
				os.Exit(1)
			}
			wait := backoff(attempt, 0)
			fmt.Printf("connect failed (%v); retrying in %s\n", err, wait.Round(time.Millisecond))
			time.Sleep(wait)
			continue
		}
		// The daemon stamps every response with its trace ID; quoting it in
		// failure and retry logs is what lets an operator pull the exact
		// server-side trace (GET /debug/traces) for this attempt.
		traceID := resp.Header.Get("X-Trace-Id")
		if (resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable) && attempt < maxAttempts {
			secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			resp.Body.Close()
			wait := backoff(attempt, time.Duration(secs)*time.Second)
			fmt.Printf("server busy (HTTP %d, trace %s); retrying in %s\n", resp.StatusCode, orDash(traceID), wait.Round(time.Millisecond))
			time.Sleep(wait)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "decode (trace %s): %v\n", orDash(traceID), err)
			os.Exit(1)
		}
		if resp.StatusCode >= 400 {
			fmt.Printf("request failed (HTTP %d, trace %s)\n", resp.StatusCode, orDash(traceID))
		}
		return resp.StatusCode
	}
}

// orDash renders a possibly-absent trace ID (the daemon may run with
// -trace=false) without an empty hole in the log line.
func orDash(id string) string {
	if id == "" {
		return "-"
	}
	return id
}

// backoff returns the sleep before retry #attempt: full jitter over an
// exponentially growing, capped window, floored by the server's
// Retry-After hint when one was given.
func backoff(attempt int, retryAfter time.Duration) time.Duration {
	window := baseBackoff << (attempt - 1)
	if window > maxBackoff {
		window = maxBackoff
	}
	wait := time.Duration(rand.Int64N(int64(window) + 1))
	if wait < retryAfter {
		wait = retryAfter
	}
	return wait
}
