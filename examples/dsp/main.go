// DSP workload: an FFT-based filter bank (the Butterfly task graph of the
// scheduling literature) streamed through a multiprocessor. The example
// explores the latency/throughput trade-off the paper's introduction
// describes: as the required throughput rises (period shrinks), the
// schedule is forced to spread over more processors and pipeline stages,
// and the latency L = (2S−1)·Δ responds non-monotonically — fewer stages ×
// larger period vs more stages × smaller period.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"streamsched"
)

func main() {
	// 8-point FFT: 4 ranks × 8 nodes, classic butterfly wiring.
	g := streamsched.Butterfly(3, 3.0, 1.0)
	p := streamsched.Homogeneous(12, 1, 2)

	fmt.Printf("workflow %v on %v\n\n", g, p)
	ctx := context.Background()

	// First: the tightest sustainable period for ε = 1, via binary search.
	minP, _, err := streamsched.MinPeriod(ctx, g, p, 1, streamsched.RLTF, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimum feasible period at ε=1: %.3f\n\n", minP)

	// Sweep the required period from relaxed to tight and record the
	// trade-off.
	// The sweep points are independent instances — solve them as one
	// concurrent batch through the Portfolio mode (LTF vs R-LTF raced per
	// point, lower-latency feasible schedule kept).
	factors := []float64{4, 3, 2, 1.5, 1.2, 1.05}
	reqs := make([]streamsched.SolveRequest, len(factors))
	for i, factor := range factors {
		reqs[i] = streamsched.SolveRequest{Graph: g, Platform: p,
			Opts: []streamsched.SolverOption{streamsched.WithPeriod(minP * factor)}}
	}
	results := streamsched.SolveMany(ctx, reqs,
		streamsched.WithAlgorithm(streamsched.Portfolio), streamsched.WithEps(1))

	fmt.Printf("%10s %6s %8s %14s %16s %8s\n", "period Δ", "algo", "stages", "bound (2S−1)Δ", "measured (sync)", "procs")
	for i, r := range results {
		period := minP * factors[i]
		if r.Err != nil {
			if !errors.Is(r.Err, streamsched.ErrInfeasible) {
				log.Fatal(r.Err)
			}
			fmt.Printf("%10.2f %6s %8s\n", period, "", "infeasible")
			continue
		}
		s := r.Schedule
		cfg := streamsched.DefaultSimConfig(s)
		cfg.Synchronous = true
		res, err := streamsched.Simulate(ctx, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.2f %6s %8d %14.1f %16.1f %8d\n",
			period, s.Algorithm, s.Stages(), s.LatencyBound(), res.MeanLatency, s.ProcsUsed())
	}

	// The conflict the paper opens with: relaxing the throughput
	// requirement all the way to the whole-graph execution time lets the
	// period balloon — the latency bound scales with it even when the stage
	// count stays flat, and the throughput collapses.
	solver, err := streamsched.NewSolver(
		streamsched.WithAlgorithm(streamsched.RLTF),
		streamsched.WithPeriod(g.TotalWork()/p.MaxSpeed()),
	)
	if err != nil {
		log.Fatal(err)
	}
	s, err := solver.Solve(ctx, g, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthroughput-collapsed extreme: Δ=%.0f (whole-graph time) → S=%d, L=%.0f, throughput 1/%.0f\n",
		s.Period, s.Stages(), s.LatencyBound(), s.Period)
}
