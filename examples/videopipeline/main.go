// Video pipeline: the paper's motivating application class ("video and
// audio encoding and decoding, DSP applications"). A 25-frames-per-second
// transcoding workflow runs on a small heterogeneous cluster; the deadline
// per frame is the period Δ = 40 ms. We compare the fault-free reference,
// LTF and R-LTF, then crash a node mid-stream and watch the replicated
// pipeline keep delivering frames.
package main

import (
	"context"
	"fmt"
	"log"

	"streamsched"
)

func main() {
	// Workflow (weights ≈ milliseconds of work on a speed-1 core; volumes
	// ≈ data units whose transfer costs volume/bandwidth ms):
	//
	//	demux → {vdec, adec}; vdec → deint → scale → venc;
	//	adec → aenc; {venc, aenc} → mux
	g := streamsched.NewGraph("transcode")
	demux := g.AddTask("demux", 4)
	vdec := g.AddTask("video-decode", 18)
	adec := g.AddTask("audio-decode", 6)
	deint := g.AddTask("deinterlace", 12)
	scale := g.AddTask("scale", 10)
	venc := g.AddTask("video-encode", 22)
	aenc := g.AddTask("audio-encode", 8)
	mux := g.AddTask("mux", 4)
	g.MustAddEdge(demux, vdec, 6)
	g.MustAddEdge(demux, adec, 1)
	g.MustAddEdge(vdec, deint, 8)
	g.MustAddEdge(deint, scale, 8)
	g.MustAddEdge(scale, venc, 6)
	g.MustAddEdge(adec, aenc, 1)
	g.MustAddEdge(venc, mux, 2)
	g.MustAddEdge(aenc, mux, 1)

	// A heterogeneous six-node cluster: two fast nodes, four slower ones;
	// 1 data unit transfers in 1 ms between any pair.
	p := streamsched.NewPlatform(
		[]float64{1.6, 1.6, 1.0, 1.0, 0.8, 0.8},
		uniformBW(6, 1.0),
	)

	const fps = 25.0
	period := 1000.0 / fps // 40 ms

	fmt.Printf("workflow %v, %d-node cluster, %g fps → Δ = %g ms\n\n",
		g, p.NumProcs(), fps, period)

	ctx := context.Background()
	// Reference: no replication.
	ff := solve(ctx, g, p, 0, period, streamsched.FaultFree)
	// Fault tolerant: one arbitrary node may die.
	ltf := solve(ctx, g, p, 1, period, streamsched.LTF)
	rltf := solve(ctx, g, p, 1, period, streamsched.RLTF)

	fmt.Printf("%-22s %8s %14s %10s\n", "algorithm", "stages", "latency bound", "comms")
	for _, s := range []*streamsched.Schedule{ff, ltf, rltf} {
		fmt.Printf("%-22s %8d %11.0f ms %10d\n",
			s.Algorithm, s.Stages(), s.LatencyBound(), s.CrossComms())
	}
	overhead := 100 * (rltf.LatencyBound() - ff.LatencyBound()) / ff.LatencyBound()
	fmt.Printf("\nfault-tolerance overhead of R-LTF vs fault-free: %.0f%%\n\n", overhead)

	// Stream 10 seconds of video (250 frames); node 0 — carrying primary
	// replicas — dies 4 seconds in.
	cfg := streamsched.SimConfig{Items: 250, Warmup: 20,
		Failures: streamsched.FailureSpec{Procs: []streamsched.ProcID{0}, At: 4000}}
	res, err := streamsched.Simulate(ctx, rltf, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R-LTF, node 1 crashes at t=4s: %d/%d frames delivered, "+
		"mean latency %.1f ms, max %.1f ms\n",
		res.Delivered, res.Items, res.MeanLatency, res.MaxLatency)

	// The unreplicated schedule loses the stream if the wrong node dies:
	// crash each node in turn and count survivals.
	lost := 0
	for u := 0; u < p.NumProcs(); u++ {
		cfg := streamsched.SimConfig{Items: 50, Warmup: 5,
			Failures: streamsched.FailureSpec{Procs: []streamsched.ProcID{streamsched.ProcID(u)}}}
		r, err := streamsched.Simulate(ctx, ff, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if r.Delivered < r.Items {
			lost++
		}
	}
	fmt.Printf("fault-free schedule: a single crash kills the stream on %d of %d nodes\n",
		lost, p.NumProcs())
}

func solve(ctx context.Context, g *streamsched.Graph, p *streamsched.Platform, eps int, period float64, algo streamsched.Algorithm) *streamsched.Schedule {
	solver, err := streamsched.NewSolver(
		streamsched.WithAlgorithm(algo),
		streamsched.WithEps(eps),
		streamsched.WithPeriod(period),
	)
	if err != nil {
		log.Fatalf("%v: %v", algo, err)
	}
	s, err := solver.Solve(ctx, g, p)
	if err != nil {
		log.Fatalf("%v: %v", algo, err)
	}
	if err := s.Validate(); err != nil {
		log.Fatalf("%v: %v", algo, err)
	}
	return s
}

func uniformBW(m int, bw float64) [][]float64 {
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
		for j := range out[i] {
			if i != j {
				out[i][j] = bw
			}
		}
	}
	return out
}
