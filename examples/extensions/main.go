// Extensions: the "symmetric" tri-criteria problems the paper's conclusion
// proposes (§6) on one workflow — maximize throughput under a latency cap,
// maximize the tolerated failures under latency+throughput, find the
// cheapest platform (fewest processors), and account the energy cost of
// reliability. Finishes by exporting a Chrome/Perfetto trace of the
// simulated execution.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"streamsched"
)

func main() {
	g := streamsched.GaussianElimination(6, 3, 1)
	p := streamsched.Homogeneous(12, 1, 4)
	fmt.Printf("workflow %v on %v\n\n", g, p)
	ctx := context.Background()

	// 1. Maximize throughput with latency capped at 120 (ε = 1). The
	// search probes its period grid as one concurrent batch.
	period, s1, err := streamsched.MaxThroughput(ctx, g, p, 1, 120, streamsched.RLTF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max throughput with L ≤ 120, ε=1:  Δ=%.2f (T=1/%.2f), S=%d, L=%.1f\n",
		period, period, s1.Stages(), s1.LatencyBound())

	// 2. Maximize the tolerated failures at Δ = 30 with L ≤ 460.
	eps, s2, err := streamsched.MaxFailures(ctx, g, p, 30, 460, streamsched.LTF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max failures at Δ=30, L ≤ 460:      ε=%d (S=%d, L=%.1f)\n",
		eps, s2.Stages(), s2.LatencyBound())

	// 3. Cheapest platform for Δ = 30, ε = 1.
	m, s3, err := streamsched.MinProcessors(ctx, g, p, 1, 30, streamsched.RLTF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min processors at Δ=30, ε=1:        m=%d (S=%d, L=%.1f)\n",
		m, s3.Stages(), s3.LatencyBound())

	// 4. The energy price of reliability.
	model := streamsched.DefaultEnergyModel()
	fmt.Println("\nenergy per item (dynamic + static + communication):")
	// The ε ladder is a batch of independent instances.
	var reqs []streamsched.SolveRequest
	for e := 0; e <= 2; e++ {
		reqs = append(reqs, streamsched.SolveRequest{Graph: g, Platform: p,
			Opts: []streamsched.SolverOption{streamsched.WithEps(e)}})
	}
	var ref *streamsched.Schedule
	for e, r := range streamsched.SolveMany(ctx, reqs,
		streamsched.WithAlgorithm(streamsched.RLTF), streamsched.WithPeriod(30)) {
		if r.Err != nil {
			if !errors.Is(r.Err, streamsched.ErrInfeasible) {
				log.Fatal(r.Err)
			}
			fmt.Printf("  ε=%d: infeasible\n", e)
			continue
		}
		s := r.Schedule
		if ref == nil {
			ref = s
		}
		fmt.Printf("  ε=%d: E=%.1f (overhead %+.0f%%)\n",
			e, s.EnergyPerItem(model), 100*s.EnergyOverhead(model, ref))
	}

	// 5. Export a Chrome trace of the simulated pipelined execution.
	cfg := streamsched.DefaultSimConfig(s1)
	cfg.TraceItems = 4
	res, err := streamsched.Simulate(ctx, s1, cfg)
	if err != nil {
		log.Fatal(err)
	}
	data, err := streamsched.ChromeTraceJSON(res.Trace)
	if err != nil {
		log.Fatal(err)
	}
	// The trace goes under the OS temp directory (or $TRACE_OUT when set),
	// never the working directory: examples are run from the repo root, and
	// a stray trace.json there breaks the repo-clean CI check.
	out := os.Getenv("TRACE_OUT")
	if out == "" {
		out = filepath.Join(os.TempDir(), "streamsched-trace.json")
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d spans, first 4 items) — open in chrome://tracing\n",
		out, len(res.Trace))
}
