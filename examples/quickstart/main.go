// Quickstart: build a five-task workflow, schedule it with R-LTF under a
// throughput requirement while tolerating one processor failure, inspect
// the schedule, and simulate the pipelined execution — first failure-free,
// then with a crash.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"streamsched"
)

func main() {
	// A small stream-processing workflow: source → two parallel filters →
	// merge → sink. Task weights are abstract work units; edge volumes are
	// the data carried between tasks.
	g := streamsched.NewGraph("quickstart")
	src := g.AddTask("source", 2)
	fA := g.AddTask("filterA", 5)
	fB := g.AddTask("filterB", 4)
	mrg := g.AddTask("merge", 3)
	snk := g.AddTask("sink", 1)
	g.MustAddEdge(src, fA, 2)
	g.MustAddEdge(src, fB, 2)
	g.MustAddEdge(fA, mrg, 1)
	g.MustAddEdge(fB, mrg, 1)
	g.MustAddEdge(mrg, snk, 1)

	// Six identical processors, unit speed, bandwidth 1.
	p := streamsched.Homogeneous(6, 1, 1)

	// One data item must be accepted every 8 time units (T = 1/8), and the
	// schedule must survive any single processor failure (ε = 1).
	ctx := context.Background()
	solver, err := streamsched.NewSolver(
		streamsched.WithAlgorithm(streamsched.RLTF),
		streamsched.WithEps(1),
		streamsched.WithPeriod(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	s, err := solver.Solve(ctx, g, p)
	if err != nil {
		// Infeasibility is typed: the error says *why* no schedule exists.
		if errors.Is(err, streamsched.ErrInfeasible) {
			log.Fatalf("no schedule exists: %v", err)
		}
		log.Fatal(err)
	}

	fmt.Printf("schedule: %v\n", s)
	fmt.Printf("pipeline stages: %d  → latency bound (2S−1)Δ = %g\n", s.Stages(), s.LatencyBound())
	fmt.Printf("inter-processor communications: %d\n", s.CrossComms())
	fmt.Print(s.Gantt(72))

	// The exhaustive reliability audit: every failure scenario of ≤ ε
	// processors must still deliver a valid result.
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("validation: ok — survives every single-processor failure")

	// Stream 60 items through the pipeline.
	res, err := streamsched.Simulate(ctx, s, streamsched.DefaultSimConfig(s))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free run: %d/%d delivered, mean latency %.3g (bound %g)\n",
		res.Delivered, res.Items, res.MeanLatency, s.LatencyBound())

	// Crash processor P1 and stream again: the replicas keep the pipeline
	// alive, at a latency cost.
	cfg := streamsched.DefaultSimConfig(s)
	cfg.Failures = streamsched.FailureSpec{Procs: []streamsched.ProcID{0}}
	crashed, err := streamsched.Simulate(ctx, s, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with P1 crashed:  %d/%d delivered, mean latency %.3g\n",
		crashed.Delivered, crashed.Items, crashed.MeanLatency)
}
