# Local developer entry points, kept in lockstep with .github/workflows/ci.yml
# so a green `make ci` predicts a green CI run.

GO ?= go
BENCH_RE ?= BenchmarkLTF|BenchmarkRLTF|BenchmarkReplan|BenchmarkSim|BenchmarkTimelineReserve|BenchmarkServiceSolveCached|BenchmarkServiceSolveTraced|BenchmarkSnapshotRestore|BenchmarkTxnRollback|BenchmarkHeadsAvailCache
BENCHTIME ?= 5x
COUNT ?= 3

.PHONY: all build fmt vet lint fuzz test test-full cover bench bench-record bench-compare bench-trend baseline serve smoke chaos ci

all: build

build:
	$(GO) build ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint is the full static gate: formatting, go vet, the repo's own
# streamschedlint analyzers (DESIGN.md §9), and — when the network allows
# installing x/tools — the nilness analyzer. CI runs nilness
# unconditionally; offline developers get everything but nilness.
LINTBIN := bin/streamschedlint
lint: fmt vet
	$(GO) build -o $(LINTBIN) ./cmd/streamschedlint
	$(GO) vet -vettool=$(LINTBIN) ./...
	@if $(GO) run golang.org/x/tools/go/analysis/passes/nilness/cmd/nilness@latest ./... 2>/dev/null; then \
		echo "nilness: ok"; \
	else \
		echo "nilness: skipped (x/tools unavailable offline; CI runs it)"; \
	fi

# fuzz replays the committed seed corpora, then gives each native fuzz
# target a short exploration budget. Same step CI runs.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run Fuzz ./internal/service/
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime $(FUZZTIME) ./internal/service/
	$(GO) test -run '^$$' -fuzz FuzzCanonicalProblemHash -fuzztime $(FUZZTIME) ./internal/service/
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime $(FUZZTIME) ./internal/service/

# test mirrors the CI test job (race + short). test-full runs the slow
# experiment sweeps too.
test:
	$(GO) test -race -short ./...

test-full:
	$(GO) test ./...

cover:
	$(GO) test -short -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -20

# bench streams the raw suite without recording.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_RE)' -benchmem -benchtime $(BENCHTIME) .

# bench-record runs the pinned configuration and writes BENCH_<rev>.json.
bench-record:
	$(GO) run ./cmd/bench -bench '$(BENCH_RE)' -benchtime $(BENCHTIME) -count $(COUNT)

# bench-compare is exactly the CI bench gate: red on >25% ns/op, >10%
# allocs/op, or >10% wakes/op growth vs the committed baseline.
bench-compare:
	$(GO) run ./cmd/bench -bench '$(BENCH_RE)' -benchtime $(BENCHTIME) -count $(COUNT) \
		-baseline BENCH_baseline.json -alloc-tolerance 0.10 \
		-metric-tolerance wakes/op=0.10 -out BENCH_ci.json

# bench-trend prints the per-benchmark ns/op and allocs/op trajectory over
# the recorded artifacts (BENCH_*.json under BENCH_DIR) with per-step deltas.
BENCH_DIR ?= .
bench-trend:
	$(GO) run ./cmd/bench trend -dir $(BENCH_DIR)

# baseline refreshes the committed baseline — run on CI-class hardware and
# commit the result deliberately (see DESIGN.md §Performance).
baseline:
	$(GO) run ./cmd/bench -bench '$(BENCH_RE)' -benchtime $(BENCHTIME) -count $(COUNT) \
		-out BENCH_baseline.json

# serve runs the scheduling service daemon locally (DESIGN.md §8).
SERVE_ADDR ?= :8080
serve:
	$(GO) run ./cmd/streamschedd -addr $(SERVE_ADDR)

# smoke starts a daemon and walks the 200/409/429 service contract; it is
# the same script the ci.yml service-smoke job runs.
smoke:
	bash scripts/service-smoke.sh

# chaos is the crash-tolerance gate (DESIGN.md §11): the fault-injection
# and drain tests under the race detector — including the kill -9
# warm-restart e2e, which -short skips — plus the chaos smoke against a
# real daemon. Same steps as the ci.yml chaos job.
chaos:
	$(GO) test -race -run 'TestChaos|TestInjected|TestBatchFollower|TestDrainUnderLoad|TestReadyz|TestFaultSite|TestSnapshot' ./internal/service/
	bash scripts/service-smoke.sh --chaos

ci: build lint test smoke chaos bench-compare
