module streamsched

go 1.24
