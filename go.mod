module streamsched

go 1.23
