#!/usr/bin/env bash
# Service smoke: start a streamschedd with one worker, no queue and an
# artificial solve delay, then walk the status paths the service contract
# promises — 200 (solved), 200+cached (LRU hit), 409 (typed infeasibility),
# 429+Retry-After (queue full) — and check /healthz and the /metrics
# counters. Used by `make smoke` and the ci.yml service-smoke job, which
# must stay in lockstep.
#
# With --chaos the script runs the crash-tolerance smoke instead
# (DESIGN.md §11): kill -9 a daemon mid-traffic and verify the restart
# serves previously-solved problems from the replayed snapshot
# byte-identically with zero solver calls; arm a fault-injection panic and
# verify the 500 internal-panic contract; SIGTERM and verify the graceful
# drain spills the cache. Used by `make chaos-smoke` and the ci.yml chaos
# job.
set -euo pipefail

ADDR=${ADDR:-127.0.0.1:18080}
BASE="http://$ADDR"
DELAY=${DELAY:-3s}

workdir=$(mktemp -d)
DPID=
cleanup() {
	[ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/streamschedd" ./cmd/streamschedd

if [ "${1:-}" = "--chaos" ]; then
	SNAP="$workdir/cache.snap"

	cat >"$workdir/feasible.json" <<'EOF'
{"graph":{"name":"smoke","tasks":[{"name":"a","work":2},{"name":"b","work":3}],"edges":[{"from":0,"to":1,"volume":1}]},"platform":{"speeds":[1,1],"bandwidth":[[0,10],[10,0]]},"options":{"eps":1,"period":20}}
EOF
	cat >"$workdir/other.json" <<'EOF'
{"graph":{"name":"smoke2","tasks":[{"name":"a","work":4},{"name":"b","work":5}],"edges":[{"from":0,"to":1,"volume":1}]},"platform":{"speeds":[1,1],"bandwidth":[[0,10],[10,0]]},"options":{"eps":1,"period":20}}
EOF
	cat >"$workdir/third.json" <<'EOF'
{"graph":{"name":"smoke3","tasks":[{"name":"a","work":6},{"name":"b","work":7}],"edges":[{"from":0,"to":1,"volume":1}]},"platform":{"speeds":[1,1],"bandwidth":[[0,10],[10,0]]},"options":{"eps":1,"period":20}}
EOF

	start_daemon() { # start_daemon [extra flags...] — waits for readiness
		"$workdir/streamschedd" -addr "$ADDR" -snapshot "$SNAP" -snapshot-interval 200ms "$@" &
		DPID=$!
		for _ in $(seq 1 100); do
			[ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")" = 200 ] && return 0
			sleep 0.1
		done
		echo "FAIL: daemon never became ready" >&2
		exit 1
	}

	solve() { # solve <payload> <body-out> — prints the HTTP status
		curl -s -o "$2" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
			--data-binary @"$1" "$BASE/v1/solve"
	}

	metric() { curl -fsS "$BASE/metrics" | jq -r "$1"; }

	# 1. Prime two problems, and record a cache-hit response as the
	# byte-identical baseline for the warm restart.
	start_daemon
	for p in feasible other; do
		got=$(solve "$workdir/$p.json" "$workdir/chaos_$p.json")
		[ "$got" = 200 ] || {
			echo "FAIL: priming solve ($p) returned $got, want 200" >&2
			exit 1
		}
	done
	got=$(solve "$workdir/feasible.json" "$workdir/prehit.json")
	[ "$got" = 200 ] || {
		echo "FAIL: pre-kill repeat solve returned $got, want 200" >&2
		exit 1
	}
	jq -e '.cached == true' "$workdir/prehit.json" >/dev/null || {
		echo "FAIL: pre-kill repeat solve not served from cache" >&2
		exit 1
	}

	# 2. Wait for two completed background spills after the solves — the
	# second must have started after both entries were committed.
	w=$(metric .snapshotWrites)
	for _ in $(seq 1 100); do
		[ "$(metric .snapshotWrites)" -ge $((w + 2)) ] && break
		sleep 0.1
	done
	[ "$(metric .snapshotWrites)" -ge $((w + 2)) ] || {
		echo "FAIL: background snapshot never covered the primed solves" >&2
		exit 1
	}

	# 3. kill -9 — no drain, no final spill — then restart from the snapshot.
	kill -9 "$DPID" 2>/dev/null
	wait "$DPID" 2>/dev/null || true
	DPID=
	start_daemon
	[ "$(metric .snapshotReplayed)" = 2 ] || {
		echo "FAIL: restart replayed $(metric .snapshotReplayed) entries, want 2" >&2
		exit 1
	}
	got=$(solve "$workdir/feasible.json" "$workdir/posthit.json")
	[ "$got" = 200 ] || {
		echo "FAIL: post-restart solve returned $got, want 200" >&2
		exit 1
	}
	cmp -s "$workdir/prehit.json" "$workdir/posthit.json" || {
		echo "FAIL: cache-hit response not byte-identical across kill -9 restart" >&2
		exit 1
	}
	[ "$(metric .solveCalls)" = 0 ] || {
		echo "FAIL: restarted daemon made $(metric .solveCalls) solver calls for a solved problem" >&2
		exit 1
	}
	kill -9 "$DPID" 2>/dev/null
	wait "$DPID" 2>/dev/null || true
	DPID=

	# 4. Injected leader panic: 500 with the stable internal-panic token,
	# counted in /metrics, and a clean 200 on retry.
	rm -f "$SNAP"
	start_daemon -fault 'service.flight.panic=nth:1'
	got=$(solve "$workdir/third.json" "$workdir/panic.json")
	[ "$got" = 500 ] || {
		echo "FAIL: injected panic returned $got, want 500" >&2
		exit 1
	}
	jq -e '.error | startswith("internal-panic")' "$workdir/panic.json" >/dev/null || {
		echo "FAIL: 500 response missing the internal-panic token" >&2
		exit 1
	}
	got=$(solve "$workdir/third.json" "$workdir/panic_retry.json")
	[ "$got" = 200 ] || {
		echo "FAIL: post-panic retry returned $got, want 200" >&2
		exit 1
	}
	[ "$(metric .panics)" = 1 ] || {
		echo "FAIL: panics counter is $(metric .panics), want 1" >&2
		exit 1
	}

	# 5. Graceful drain: SIGTERM exits cleanly and spills the cache.
	kill "$DPID"
	wait "$DPID" || {
		echo "FAIL: daemon exited non-zero on SIGTERM" >&2
		exit 1
	}
	DPID=
	[ -s "$SNAP" ] || {
		echo "FAIL: graceful drain left no snapshot" >&2
		exit 1
	}

	echo "service chaos smoke OK: kill -9 warm restart (byte-identical hit, 0 solver calls), panic isolation (500 internal-panic, counted), SIGTERM drain spill"
	exit 0
fi

"$workdir/streamschedd" -addr "$ADDR" -workers 1 -queue 0 -debug-solve-delay "$DELAY" &
DPID=$!

for _ in $(seq 1 100); do
	curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
	sleep 0.1
done
curl -fsS "$BASE/healthz" | jq -e '.status == "ok"' >/dev/null || {
	echo "FAIL: /healthz not ok" >&2
	exit 1
}

cat >"$workdir/feasible.json" <<'EOF'
{"graph":{"name":"smoke","tasks":[{"name":"a","work":2},{"name":"b","work":3}],"edges":[{"from":0,"to":1,"volume":1}]},"platform":{"speeds":[1,1],"bandwidth":[[0,10],[10,0]]},"options":{"eps":1,"period":20}}
EOF
cat >"$workdir/other.json" <<'EOF'
{"graph":{"name":"smoke2","tasks":[{"name":"a","work":4},{"name":"b","work":5}],"edges":[{"from":0,"to":1,"volume":1}]},"platform":{"speeds":[1,1],"bandwidth":[[0,10],[10,0]]},"options":{"eps":1,"period":20}}
EOF
cat >"$workdir/infeasible.json" <<'EOF'
{"graph":{"name":"heavy","tasks":[{"name":"t","work":100}]},"platform":{"speeds":[1],"bandwidth":[[0]]},"options":{"period":1}}
EOF

post() { # post <payload> <body-out> [extra curl args...] — dumps headers to <body-out>.hdr
	local payload=$1 out=$2
	shift 2
	curl -s -o "$out" -D "$out.hdr" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
		--data-binary @"$payload" "$@" "$BASE/v1/solve"
}

# 1. Occupy the single worker with a slow first solve (expected 200).
post "$workdir/feasible.json" "$workdir/first.json" >"$workdir/first_code" &
FIRST=$!
sleep 1

# 2. A different problem finds the queue full: 429 with Retry-After.
got=$(post "$workdir/other.json" "$workdir/busy.json" -D "$workdir/headers")
[ "$got" = 429 ] || {
	echo "FAIL: queue-full solve returned $got, want 429" >&2
	exit 1
}
grep -qi '^retry-after:' "$workdir/headers" || {
	echo "FAIL: 429 response missing Retry-After" >&2
	exit 1
}

wait "$FIRST"
[ "$(cat "$workdir/first_code")" = 200 ] || {
	echo "FAIL: first solve returned $(cat "$workdir/first_code"), want 200" >&2
	exit 1
}

# 3. The same problem again: instant 200 served from the result cache.
got=$(post "$workdir/feasible.json" "$workdir/cached.json")
[ "$got" = 200 ] || {
	echo "FAIL: repeat solve returned $got, want 200" >&2
	exit 1
}
jq -e '.cached == true' "$workdir/cached.json" >/dev/null || {
	echo "FAIL: repeat solve not served from cache" >&2
	exit 1
}

# 4. An unsolvable problem: 409 with the classified reason.
got=$(post "$workdir/infeasible.json" "$workdir/infeasible_resp.json")
[ "$got" = 409 ] || {
	echo "FAIL: infeasible solve returned $got, want 409" >&2
	exit 1
}
jq -e '.infeasible.reason == "period-exceeded"' "$workdir/infeasible_resp.json" >/dev/null || {
	echo "FAIL: 409 response missing the classified reason" >&2
	exit 1
}

# 5. Replan the solved schedule after a platform delta: 200 with repair
# stats, then an instant cached 200, then a 400 with the stable reason
# token for an unsupported schema version.
jq -s '{graph: .[0].graph, platform: .[0].platform, options: .[0].options,
	schedule: .[1].schedule, delta: {speed: [{proc: 1, speed: 2}]}}' \
	"$workdir/feasible.json" "$workdir/first.json" >"$workdir/replan.json"
got=$(curl -s -o "$workdir/replan_resp.json" -w '%{http_code}' -X POST \
	-H 'Content-Type: application/json' --data-binary @"$workdir/replan.json" "$BASE/v1/replan")
[ "$got" = 200 ] || {
	echo "FAIL: replan returned $got, want 200" >&2
	exit 1
}
jq -e '.replan and .schedule' "$workdir/replan_resp.json" >/dev/null || {
	echo "FAIL: replan response missing repair stats or schedule" >&2
	exit 1
}
got=$(curl -s -o "$workdir/replan_cached.json" -w '%{http_code}' -X POST \
	-H 'Content-Type: application/json' --data-binary @"$workdir/replan.json" "$BASE/v1/replan")
[ "$got" = 200 ] || {
	echo "FAIL: repeat replan returned $got, want 200" >&2
	exit 1
}
jq -e '.cached == true' "$workdir/replan_cached.json" >/dev/null || {
	echo "FAIL: repeat replan not served from cache" >&2
	exit 1
}
jq '. + {schemaVersion: 99}' "$workdir/replan.json" >"$workdir/replan_badver.json"
got=$(curl -s -o "$workdir/replan_badver_resp.json" -w '%{http_code}' -X POST \
	-H 'Content-Type: application/json' --data-binary @"$workdir/replan_badver.json" "$BASE/v1/replan")
[ "$got" = 400 ] || {
	echo "FAIL: bad-version replan returned $got, want 400" >&2
	exit 1
}
jq -e '.error | startswith("unsupported-schema-version")' "$workdir/replan_badver_resp.json" >/dev/null || {
	echo "FAIL: bad-version replan missing the stable reason token" >&2
	exit 1
}

# 6. Observability (DESIGN.md §12): tracing is on by default, so every
# response so far must carry an X-Trace-Id — the 200s, the 429 and the 409
# alike.
for hdr in "$workdir"/*.hdr; do
	grep -qi '^x-trace-id:' "$hdr" || {
		echo "FAIL: $(basename "$hdr" .hdr) response missing X-Trace-Id" >&2
		exit 1
	}
done
# ?debug=timing adds a Server-Timing stage breakdown (and this repeat
# solve is one more cache hit, counted in step 7).
got=$(curl -s -o "$workdir/timing.json" -D "$workdir/timing.json.hdr" -w '%{http_code}' \
	-X POST -H 'Content-Type: application/json' \
	--data-binary @"$workdir/feasible.json" "$BASE/v1/solve?debug=timing")
[ "$got" = 200 ] || {
	echo "FAIL: debug=timing solve returned $got, want 200" >&2
	exit 1
}
grep -qi '^server-timing:.*dur=' "$workdir/timing.json.hdr" || {
	echo "FAIL: debug=timing response missing Server-Timing stages" >&2
	exit 1
}
# /debug/traces serves the span trees of the recent requests (JSON), and
# the same ring in Chrome trace-event form with ?format=chrome.
curl -fsS "$BASE/debug/traces" >"$workdir/traces.json"
jq -e '.count >= 1 and (.traces[0].spans | length) >= 1' "$workdir/traces.json" >/dev/null || {
	echo "FAIL: /debug/traces has no span trees" >&2
	exit 1
}
jq -e '[.traces[] | select(.name == "/v1/solve")] | length >= 1' "$workdir/traces.json" >/dev/null || {
	echo "FAIL: /debug/traces retained no /v1/solve trace" >&2
	exit 1
}
jq -e '[.traces[].spans[].name] | index("solve") and index("cache")' "$workdir/traces.json" >/dev/null || {
	echo "FAIL: traces carry no solve/cache pipeline spans" >&2
	exit 1
}
curl -fsS "$BASE/debug/traces?format=chrome" >"$workdir/traces_chrome.json"
jq -e 'type == "array" and length >= 1 and all(.[]; .ph and .name)' "$workdir/traces_chrome.json" >/dev/null || {
	echo "FAIL: chrome trace export is empty or malformed" >&2
	exit 1
}
# /metrics speaks Prometheus text exposition on request.
curl -fsS "$BASE/metrics?format=prometheus" >"$workdir/metrics.prom"
grep -q '^# TYPE streamsched_requests_total counter' "$workdir/metrics.prom" || {
	echo "FAIL: prometheus scrape missing streamsched_requests_total family" >&2
	exit 1
}
grep -q '^streamsched_request_latency_ms{quantile="0.99"} ' "$workdir/metrics.prom" || {
	echo "FAIL: prometheus scrape missing latency quantiles" >&2
	exit 1
}
curl -fsS -H 'Accept: text/plain' "$BASE/metrics" | grep -q '^streamsched_uptime_seconds ' || {
	echo "FAIL: Accept: text/plain scrape did not select the prometheus form" >&2
	exit 1
}

# 7. Metrics report the cache hits (solve + replan + the traced timing
# request) and the rejection.
curl -fsS "$BASE/metrics" >"$workdir/metrics.json"
jq -e '.cache.hits == 3' "$workdir/metrics.json" >/dev/null || {
	echo "FAIL: /metrics does not report the cache hits" >&2
	exit 1
}
jq -e '.queue.rejected == 1' "$workdir/metrics.json" >/dev/null || {
	echo "FAIL: /metrics does not report the 429 rejection" >&2
	exit 1
}
jq -e '.requests.replan == 3' "$workdir/metrics.json" >/dev/null || {
	echo "FAIL: /metrics does not count the replan requests" >&2
	exit 1
}

echo "service smoke OK: 200, cached 200, 409 (period-exceeded), 429 (+Retry-After), replan 200/cached/400, tracing (X-Trace-Id, Server-Timing, /debug/traces JSON+chrome), prometheus scrape, metrics consistent"
