package main

// The trend subcommand renders the benchmark trajectory over a directory of
// recorded BENCH_*.json artifacts (local bench-record runs or downloaded CI
// bench-json artifacts):
//
//	go run ./cmd/bench trend            # artifacts in the current directory
//	go run ./cmd/bench trend -dir ci-artifacts -bench 'BenchmarkSim'
//
// For every benchmark it prints one line per recorded run — date, revision,
// ns/op and allocs/op — with the per-step delta against the previous run, so
// a perf drift that stays under the gate's per-commit tolerance is still
// visible over the artifact history.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"streamsched/internal/benchjson"
)

func trendMain(args []string) error {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	var (
		dir     = fs.String("dir", ".", "directory scanned for BENCH_*.json artifacts")
		benchRe = fs.String("bench", "", "only show benchmarks matching this regex")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bench trend [-dir DIR] [-bench REGEX]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	var re *regexp.Regexp
	if *benchRe != "" {
		var err error
		if re, err = regexp.Compile(*benchRe); err != nil {
			return fmt.Errorf("bad -bench regex: %w", err)
		}
	}
	files, err := loadArtifacts(*dir)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no BENCH_*.json artifacts under %s", *dir)
	}
	printTrend(os.Stdout, files, re)
	return nil
}

// loadArtifacts reads every BENCH_*.json under dir, ordered by recording
// date (the Date field; files without one sort first by name).
func loadArtifacts(dir string) ([]*benchjson.File, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var files []*benchjson.File
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		bf, err := benchjson.Decode(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		// Decode validates the schema, not ordering; findResult
		// binary-searches by name, so restore the sorted invariant for
		// artifacts produced or edited by other tools.
		sort.Slice(bf.Results, func(i, j int) bool { return bf.Results[i].Name < bf.Results[j].Name })
		files = append(files, bf)
	}
	sort.SliceStable(files, func(i, j int) bool { return files[i].Date < files[j].Date })
	return files, nil
}

func printTrend(w *os.File, files []*benchjson.File, re *regexp.Regexp) {
	// Benchmarks in name order; every file already stores sorted results.
	names := map[string]bool{}
	for _, f := range files {
		for _, r := range f.Results {
			if re == nil || re.MatchString(r.Name) {
				names[r.Name] = true
			}
		}
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	for _, name := range ordered {
		fmt.Fprintln(w, name)
		var prev *benchjson.Result
		for _, f := range files {
			r := findResult(f, name)
			if r == nil {
				continue
			}
			// allocs/op is always printed: 0 is a meaningful value for an
			// allocation-free path, and drift away from it must stay visible.
			fmt.Fprintf(w, "  %-20s %-16s %14.0f ns/op %8s %12.0f allocs/op %8s\n",
				f.Date, f.Rev, r.NsOp, delta(prev, r, nsOf), r.AllocsOp, delta(prev, r, allocsOf))
			prev = r
		}
	}
}

func findResult(f *benchjson.File, name string) *benchjson.Result {
	i := sort.Search(len(f.Results), func(i int) bool { return f.Results[i].Name >= name })
	if i < len(f.Results) && f.Results[i].Name == name {
		return &f.Results[i]
	}
	return nil
}

func nsOf(r *benchjson.Result) float64     { return r.NsOp }
func allocsOf(r *benchjson.Result) float64 { return r.AllocsOp }

// delta formats the step change vs the previous recorded run ("-" for the
// first point). A regression from 0 (no percentage exists) is shown as the
// absolute change so allocations creeping back into an allocation-free path
// stay visible.
func delta(prev, cur *benchjson.Result, metric func(*benchjson.Result) float64) string {
	if prev == nil {
		return "-"
	}
	p, c := metric(prev), metric(cur)
	if p == 0 {
		if c == 0 {
			return "+0.0%"
		}
		return fmt.Sprintf("%+.0f", c-p)
	}
	return fmt.Sprintf("%+.1f%%", 100*(c-p)/p)
}
