// Command bench runs the repository benchmark suite and records the results
// as a schema'd, commit-comparable JSON artifact (internal/benchjson). It is
// the single entry point for performance measurement — local runs and the CI
// bench job invoke it identically (see Makefile), so recorded trajectories
// compare like for like.
//
//	go run ./cmd/bench                                  # run, write BENCH_<rev>.json
//	go run ./cmd/bench -out BENCH_baseline.json         # refresh the committed baseline
//	go run ./cmd/bench -baseline BENCH_baseline.json    # run and gate: exit 1 on regression
//	go run ./cmd/bench -baseline BENCH_baseline.json -input results.txt
//	go run ./cmd/bench trend -dir artifacts             # ns/op & allocs/op history
//
// The gate fails when any baseline benchmark regresses by more than
// -ns-tolerance in ns/op (default 25%), disappears from the current run, or
// — when -alloc-tolerance ≥ 0 — regresses in allocs/op. Custom metrics are
// gated per unit with repeatable -metric-tolerance unit=tol flags (e.g.
// -metric-tolerance wakes/op=0.10 reds simulator wake-count growth above
// 10%); ungated units are recorded and printed but never fail. Absolute
// ns/op are machine-dependent; the committed baseline is refreshed from CI
// hardware (see DESIGN.md §Performance), while allocs/op and deterministic
// custom metrics compare across any machine.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"streamsched/internal/benchjson"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trend" {
		if err := trendMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "bench trend:", err)
			os.Exit(1)
		}
		return
	}
	var (
		benchRe   = flag.String("bench", "BenchmarkLTF|BenchmarkRLTF|BenchmarkSim|BenchmarkTimelineReserve", "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "5x", "go test -benchtime value")
		count     = flag.Int("count", 1, "go test -count value (runs are averaged)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "", "output path (default BENCH_<rev>.json)")
		baseline  = flag.String("baseline", "", "baseline JSON to gate against")
		nsTol     = flag.Float64("ns-tolerance", 0.25, "allowed fractional ns/op regression vs baseline")
		allocTol  = flag.Float64("alloc-tolerance", -1, "allowed fractional allocs/op regression vs baseline (negative: off)")
		input     = flag.String("input", "", "parse existing `go test -bench` output from this file instead of running (\"-\" for stdin)")
		quiet     = flag.Bool("quiet", false, "suppress the streamed benchmark output")
	)
	var metricTol metricTolFlag
	flag.Var(&metricTol, "metric-tolerance", "allowed fractional growth for a custom metric, as unit=tol (e.g. wakes/op=0.10); repeatable")
	flag.Parse()
	if err := run(*benchRe, *benchtime, *pkg, *out, *baseline, *input, *nsTol, *allocTol, metricTol.m, *count, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// metricTolFlag accumulates repeated -metric-tolerance unit=tol pairs.
type metricTolFlag struct{ m map[string]float64 }

func (f *metricTolFlag) String() string {
	pairs := make([]string, 0, len(f.m))
	for unit, tol := range f.m {
		pairs = append(pairs, fmt.Sprintf("%s=%g", unit, tol))
	}
	return strings.Join(pairs, ",")
}

func (f *metricTolFlag) Set(s string) error {
	unit, tol, ok := strings.Cut(s, "=")
	if !ok || unit == "" {
		return fmt.Errorf("want unit=tolerance, got %q", s)
	}
	v, err := strconv.ParseFloat(tol, 64)
	if err != nil {
		return fmt.Errorf("bad tolerance in %q: %w", s, err)
	}
	if f.m == nil {
		f.m = map[string]float64{}
	}
	f.m[unit] = v
	return nil
}

func run(benchRe, benchtime, pkg, out, baseline, input string, nsTol, allocTol float64, metricTol map[string]float64, count int, quiet bool) error {
	var raw []byte
	var err error
	switch input {
	case "":
		raw, err = runBenchmarks(benchRe, benchtime, pkg, count, quiet)
	case "-":
		raw, err = io.ReadAll(os.Stdin)
	default:
		raw, err = os.ReadFile(input)
	}
	if err != nil {
		return err
	}

	f, err := benchjson.Parse(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	if len(f.Results) == 0 {
		return fmt.Errorf("no benchmark results matched %q", benchRe)
	}
	f.Rev = gitRev()
	f.GoVersion = runtime.Version()
	f.GOOS = runtime.GOOS
	f.GOARCH = runtime.GOARCH
	f.Date = time.Now().UTC().Format(time.RFC3339)

	if out == "" {
		out = "BENCH_" + f.Rev + ".json"
	}
	of, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := benchjson.Encode(of, f); err != nil {
		of.Close()
		return err
	}
	if err := of.Close(); err != nil {
		return err
	}
	fmt.Printf("bench: recorded %d benchmarks to %s (rev %s)\n", len(f.Results), out, f.Rev)

	if baseline == "" {
		return nil
	}
	bf, err := os.Open(baseline)
	if err != nil {
		return err
	}
	defer bf.Close()
	base, err := benchjson.Decode(bf)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", baseline, err)
	}
	deltas := benchjson.Compare(base, f)
	for _, d := range deltas {
		fmt.Println("bench:", d.Describe())
	}
	if bad := benchjson.Regressions(deltas, nsTol, allocTol, metricTol); len(bad) > 0 {
		msgs := make([]string, len(bad))
		for i, d := range bad {
			msgs[i] = d.Describe()
		}
		return fmt.Errorf("%d regression(s) vs %s (ns tolerance %+.0f%%):\n  %s",
			len(bad), baseline, nsTol*100, strings.Join(msgs, "\n  "))
	}
	fmt.Printf("bench: no regressions vs %s (%d benchmarks within %+.0f%% ns/op)\n", baseline, len(deltas), nsTol*100)
	return nil
}

// runBenchmarks shells out to `go test -bench`, streaming output so long
// runs stay observable, and returns the captured text.
func runBenchmarks(benchRe, benchtime, pkg string, count int, quiet bool) ([]byte, error) {
	args := []string{"test", "-run", "^$",
		"-bench", benchRe,
		"-benchtime", benchtime,
		"-benchmem",
		fmt.Sprintf("-count=%d", count),
		pkg,
	}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	if quiet {
		cmd.Stdout = &buf
	} else {
		cmd.Stdout = io.MultiWriter(os.Stdout, &buf)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return buf.Bytes(), nil
}

// gitRev returns the short HEAD revision, with a -dirty marker when the
// working tree differs from HEAD (the measured code is then not the commit's
// code — a record must not misattribute its numbers), or "worktree" outside
// git.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "worktree"
	}
	rev := strings.TrimSpace(string(out))
	status, err := exec.Command("git", "status", "--porcelain").Output()
	if err == nil && len(bytes.TrimSpace(status)) > 0 {
		rev += "-dirty"
	}
	return rev
}
