// Command streamschedlint runs the repo's static invariant suite
// (DESIGN.md §9): txncheck, determcheck, ctxcheck and hotpathcheck.
//
// It speaks the `go vet -vettool` protocol, so both forms work:
//
//	go build -o bin/streamschedlint ./cmd/streamschedlint
//	go vet -vettool=bin/streamschedlint ./...   # as a vet tool
//	bin/streamschedlint ./...                   # standalone
//
// Standalone invocations re-exec through `go vet -vettool=<self>`, which
// gives the analyzers the go command's package loading, export data and
// result caching for free. Suppress a finding with //nolint:streamsched
// (or //nolint:<analyzer>) plus a justification — see DESIGN.md §9.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"streamsched/internal/analysis"
	"streamsched/internal/analysis/suite"
)

func main() {
	args := os.Args[1:]

	// The go command's vettool handshake: identity, flags, then one
	// invocation per compilation unit with a *.cfg file.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			if err := analysis.VersionLine(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "streamschedlint:", err)
				os.Exit(1)
			}
			return
		case args[0] == "-flags":
			fmt.Println("[]") // no analyzer flags
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(analysis.RunUnit(args[0], suite.All))
		}
	}

	// Standalone mode: delegate loading to the go command.
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamschedlint:", err)
		os.Exit(1)
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "streamschedlint:", err)
		os.Exit(1)
	}
}
