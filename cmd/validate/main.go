// Command validate fuzzes the schedulers: it generates random instances,
// runs every algorithm, and subjects each produced schedule to the full
// audit — model constraints, one-port consistency, throughput budgets, and
// the exhaustive ≤ε failure enumeration — then cross-checks a sample of
// crash scenarios in the simulator. A release gate for the reliability
// guarantees.
//
//	validate -n 200 -seed 7 -maxeps 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"streamsched/internal/core"
	"streamsched/internal/dag"
	"streamsched/internal/platform"
	"streamsched/internal/rng"
	"streamsched/internal/sim"
)

func main() {
	n := flag.Int("n", 100, "number of random instances")
	seed := flag.Uint64("seed", 1, "base seed")
	maxEps := flag.Int("maxeps", 3, "maximum ε to fuzz")
	simChecks := flag.Int("simchecks", 2, "simulated crash scenarios per schedule")
	flag.Parse()

	ctx := context.Background()
	r := rng.New(*seed)
	type stats struct{ produced, infeasible int }
	algos := map[string]core.Algorithm{"LTF": core.LTF, "R-LTF": core.RLTF}
	counts := map[string]*stats{"LTF": {}, "R-LTF": {}}
	bad := 0

	for i := 0; i < *n; i++ {
		v := 6 + r.IntN(30)
		g := dag.New(fmt.Sprintf("fuzz-%d", i))
		for k := 0; k < v; k++ {
			g.AddTask(fmt.Sprintf("t%d", k), r.Uniform(0.3, 2))
		}
		for a := 0; a < v; a++ {
			for b := a + 1; b < v; b++ {
				if r.Bool(2.2 / float64(v)) {
					g.MustAddEdge(dag.TaskID(a), dag.TaskID(b), r.Uniform(0.05, 1.5))
				}
			}
		}
		m := 5 + r.IntN(10)
		p := platform.RandomHeterogeneous(r, m, 0.5, 1, 0.5, 1, 10)
		eps := r.IntN(*maxEps + 1)
		if eps+1 > m {
			eps = m - 1
		}
		pressure := []float64{2.5, 1.4, 0.8}[r.IntN(3)]
		period := pressure * float64(eps+1) * g.TotalWork() / (p.MeanSpeed() * float64(m))

		for name, algo := range algos {
			solver, err := core.NewSolver(core.WithAlgorithm(algo), core.WithEps(eps), core.WithPeriod(period))
			if err != nil {
				fmt.Fprintln(os.Stderr, "validate:", err)
				os.Exit(1)
			}
			s, err := solver.Solve(ctx, g, p)
			if err != nil {
				// Only a classified infeasibility counts as "no schedule";
				// anything else is a solver fault the fuzzer must surface.
				if !errors.Is(err, core.ErrInfeasible) {
					bad++
					fmt.Printf("SOLVER FAULT [%s] instance %d: %v\n", name, i, err)
					continue
				}
				counts[name].infeasible++
				continue
			}
			counts[name].produced++
			if err := s.Validate(); err != nil {
				bad++
				fmt.Printf("AUDIT FAILURE [%s] instance %d (v=%d m=%d eps=%d Δ=%.3g): %v\n",
					name, i, v, m, eps, period, err)
				continue
			}
			for c := 0; c < *simChecks && eps > 0; c++ {
				crashes := r.Sample(m, 1+r.IntN(eps))
				procs := make([]platform.ProcID, len(crashes))
				for k, u := range crashes {
					procs[k] = platform.ProcID(u)
				}
				res, err := sim.Run(ctx, s, sim.Config{Items: 12, Warmup: 2,
					Failures: sim.FailureSpec{Procs: procs}})
				if err != nil {
					bad++
					fmt.Printf("SIM FAILURE [%s] instance %d: %v\n", name, i, err)
					continue
				}
				if res.Delivered != res.Items {
					bad++
					fmt.Printf("DELIVERY FAILURE [%s] instance %d: lost %d items under crashes %v\n",
						name, i, res.Items-res.Delivered, procs)
				}
			}
		}
	}

	fmt.Printf("\n%d instances fuzzed\n", *n)
	for name, st := range counts {
		fmt.Printf("  %-6s produced %4d schedules (%d infeasible) — all audited\n",
			name, st.produced, st.infeasible)
	}
	if bad > 0 {
		fmt.Printf("FAILURES: %d\n", bad)
		os.Exit(1)
	}
	fmt.Println("no failures")
}
