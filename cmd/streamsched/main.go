// Command streamsched schedules a workflow on a simulated heterogeneous
// platform and reports the paper's metrics, optionally simulating the
// pipelined execution with processor crashes.
//
//	streamsched -graph fig2 -m 10 -eps 1 -period 20 -algo rltf -gantt
//	streamsched -graph fft -size 4 -m 8 -eps 1 -period 0 -simulate -crash 1
//	streamsched -graph random -granularity 0.8 -m 20 -eps 3 -period 40 -dot
//
// With -period 0 the minimal feasible period is binary-searched first.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"streamsched"
)

func main() {
	var (
		graph   = flag.String("graph", "fig2", "workflow: chain|forkjoin|intree|outtree|fft|gauss|stencil|fig1|fig2|random")
		size    = flag.Int("size", 8, "size parameter of the generated workflow")
		gran    = flag.Float64("granularity", 1.0, "granularity target for -graph random")
		m       = flag.Int("m", 8, "number of processors")
		hetero  = flag.Bool("hetero", false, "heterogeneous platform (speeds/delays like the paper)")
		seed    = flag.Uint64("seed", 1, "random seed for -hetero and -graph random")
		eps     = flag.Int("eps", 1, "ε: number of tolerated processor failures")
		period  = flag.Float64("period", 20, "required period Δ = 1/T (0: search minimum)")
		algo    = flag.String("algo", "rltf", "algorithm: ltf|rltf|ff|portfolio")
		gantt   = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		dot     = flag.Bool("dot", false, "print the workflow in Graphviz dot")
		simFlag = flag.Bool("simulate", false, "simulate the pipelined execution")
		crash   = flag.Int("crash", 0, "number of processors to crash in the simulation")
		sync    = flag.Bool("sync", false, "use stage-synchronized execution semantics")
		check   = flag.Bool("check", true, "run the full schedule validation")
		traceF  = flag.String("trace", "", "write a chrome://tracing JSON of the schedule (or simulation, with -simulate) to this file")
		jsonF   = flag.String("json", "", "write the schedule as JSON to this file")
	)
	flag.Parse()

	// Ctrl-C cancels the solve/search/simulation cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	p := buildPlatform(*hetero, *m, *seed)
	g, err := buildGraph(*graph, *size, *gran, *seed, p)
	if err != nil {
		fatal(err)
	}
	if *dot {
		fmt.Print(g.DOT())
	}

	var algorithm streamsched.Algorithm
	switch *algo {
	case "ltf":
		algorithm = streamsched.LTF
	case "rltf":
		algorithm = streamsched.RLTF
	case "ff":
		algorithm = streamsched.FaultFree
	case "portfolio":
		algorithm = streamsched.Portfolio
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	var s *streamsched.Schedule
	if *period <= 0 {
		min, sched, err := streamsched.MinPeriod(ctx, g, p, *eps, algorithm, 1e-3)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("minimum feasible period: %.4g\n", min)
		s = sched
	} else {
		solver, err := streamsched.NewSolver(
			streamsched.WithAlgorithm(algorithm),
			streamsched.WithEps(*eps),
			streamsched.WithPeriod(*period),
		)
		if err != nil {
			fatal(err)
		}
		s, err = solver.Solve(ctx, g, p)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("%s: %d tasks on %d processors, ε=%d, Δ=%.4g\n",
		s.Algorithm, g.NumTasks(), p.NumProcs(), s.Eps, s.Period)
	fmt.Printf("  stages S=%d   latency bound L=(2S−1)Δ=%.4g\n", s.Stages(), s.LatencyBound())
	fmt.Printf("  achieved cycle time %.4g (throughput 1/%.4g)\n",
		s.AchievedCycleTime(), 1/s.AchievedThroughput())
	fmt.Printf("  processors used %d, inter-processor comms %d\n", s.ProcsUsed(), s.CrossComms())
	if *check {
		if err := s.Validate(); err != nil {
			fatal(fmt.Errorf("schedule validation: %w", err))
		}
		fmt.Println("  validation: ok (incl. exhaustive ε-failure check)")
	}
	if *gantt {
		fmt.Print(s.Gantt(100))
	}
	if *jsonF != "" {
		data, err := s.MarshalJSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonF, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  schedule JSON written to %s\n", *jsonF)
	}
	spans := streamsched.ScheduleTrace(s)
	if *simFlag {
		cfg := streamsched.DefaultSimConfig(s)
		cfg.Synchronous = *sync
		if *traceF != "" {
			cfg.TraceItems = 5
		}
		if *crash > 0 {
			procs := make([]streamsched.ProcID, 0, *crash)
			for u := 0; u < *crash && u < p.NumProcs(); u++ {
				procs = append(procs, streamsched.ProcID(u))
			}
			cfg.Failures = streamsched.FailureSpec{Procs: procs}
			fmt.Printf("  crashing processors %v\n", procs)
		}
		res, err := streamsched.Simulate(ctx, s, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  simulated: delivered %d/%d, mean latency %.4g, max %.4g, achieved period %.4g\n",
			res.Delivered, res.Items, res.MeanLatency, res.MaxLatency, res.AchievedPeriod)
		if *traceF != "" {
			spans = res.Trace
		}
	}
	if *traceF != "" {
		data, err := streamsched.ChromeTraceJSON(spans)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*traceF, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  trace written to %s (open in chrome://tracing)\n", *traceF)
	}
}

func buildPlatform(hetero bool, m int, seed uint64) *streamsched.Platform {
	if hetero {
		return streamsched.RandomPlatform(seed, m, 0.5, 1.0, 0.5, 1.0)
	}
	return streamsched.Homogeneous(m, 1, 1)
}

func buildGraph(kind string, size int, gran float64, seed uint64, p *streamsched.Platform) (*streamsched.Graph, error) {
	switch kind {
	case "chain":
		return streamsched.Chain(size, 1, 1), nil
	case "forkjoin":
		return streamsched.ForkJoin(size, 2, 1, 1), nil
	case "intree":
		return streamsched.InTree(size, 1, 1), nil
	case "outtree":
		return streamsched.OutTree(size, 1, 1), nil
	case "fft":
		return streamsched.Butterfly(size, 1, 1), nil
	case "gauss":
		return streamsched.GaussianElimination(size, 1, 1), nil
	case "stencil":
		return streamsched.Stencil(size, size, 1, 1), nil
	case "fig1":
		return streamsched.Fig1Graph(), nil
	case "fig2":
		return streamsched.Fig2Graph(), nil
	case "random":
		return streamsched.RandomStream(seed, gran, p), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func fatal(err error) {
	// Distinguish "no schedule exists" (an expected, classified outcome)
	// from solver faults.
	var inf *streamsched.InfeasibleError
	if errors.As(err, &inf) {
		fmt.Fprintf(os.Stderr, "streamsched: instance is infeasible (%v): %v\n", inf.Reason, err)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "streamsched:", err)
	os.Exit(1)
}
