// Command paperfig regenerates every table and figure of the paper's
// evaluation:
//
//	paperfig fig1           — the Figure 1 execution-scenario comparison
//	paperfig fig2           — the §4.3 / Figure 2 worked example grid
//	paperfig fig3           — Figure 3(a,b,c): ε=1, c=1 granularity sweep
//	paperfig fig4           — Figure 4(a,b,c): ε=3, c=2 granularity sweep
//	paperfig related        — extended table: R-LTF vs ETF/HEFT/clustering
//	paperfig all            — everything above
//
// Flags must precede the subcommand (standard flag-package parsing):
//
//	paperfig -reps 60 -csv results all
//
//	-reps N      graphs per sweep point (default 60, the paper's count)
//	-csv DIR     also write each figure's series as CSV files into DIR
//	-plot        render each figure as an ASCII chart as well
//	-seed S      sweep seed (0 = the paper default)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"streamsched/internal/experiments"
	"streamsched/internal/textplot"
)

var plotFlag *bool

func main() {
	reps := flag.Int("reps", 60, "random graphs per sweep point")
	csvDir := flag.String("csv", "", "directory to write CSV series into")
	plotFlag = flag.Bool("plot", false, "render ASCII charts")
	seed := flag.Uint64("seed", 0, "sweep seed (0 = paper default)")
	flag.Parse()

	// Ctrl-C cancels the campaign; the batch layer drains within one
	// placement chunk per worker.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	switch cmd {
	case "fig1":
		fig1(ctx)
	case "fig2":
		fig2(ctx)
	case "fig3":
		sweep(ctx, 1, 1, "fig3", *reps, *seed, *csvDir)
	case "fig4":
		sweep(ctx, 3, 2, "fig4", *reps, *seed, *csvDir)
	case "related":
		related(ctx, *reps, *seed, *csvDir)
	case "all":
		fig1(ctx)
		fig2(ctx)
		sweep(ctx, 1, 1, "fig3", *reps, *seed, *csvDir)
		sweep(ctx, 3, 2, "fig4", *reps, *seed, *csvDir)
		related(ctx, *reps, *seed, *csvDir)
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q (want fig1|fig2|fig3|fig4|all)\n", cmd)
		os.Exit(2)
	}
}

func fig1(ctx context.Context) {
	r, err := experiments.Fig1(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig1:", err)
		os.Exit(1)
	}
	fmt.Println(r)
}

func fig2(ctx context.Context) {
	r, err := experiments.Fig2(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig2:", err)
		os.Exit(1)
	}
	fmt.Println(r)
}

func sweep(ctx context.Context, eps, crashes int, name string, reps int, seed uint64, csvDir string) {
	cfg := experiments.DefaultConfig(eps, crashes)
	cfg.GraphsPerPoint = reps
	if seed != 0 {
		cfg.Seed = seed
	}
	start := time.Now()
	pts, err := experiments.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, name+":", err)
		os.Exit(1)
	}
	fmt.Printf("=== %s: ε=%d, c=%d, %d graphs/point (%.1fs)\n",
		name, eps, crashes, reps, time.Since(start).Seconds())

	for _, part := range []struct {
		suffix string
		fig    experiments.Figure
	}{
		{"a_bounds", experiments.FigBounds},
		{"b_crash", experiments.FigCrash},
		{"c_overhead", experiments.FigOverhead},
	} {
		header, rows := experiments.Series(pts, part.fig)
		fmt.Printf("--- %s(%s)\n%s", name, part.suffix, experiments.FormatTable(header, rows))
		if plotFlag != nil && *plotFlag {
			fmt.Print(textplot.Render(textplot.FromTable(header, rows),
				textplot.Options{Width: 72, Height: 18, Title: name + part.suffix}))
		}
		if csvDir != "" {
			path := filepath.Join(csvDir, name+part.suffix+".csv")
			if err := os.WriteFile(path, []byte(experiments.CSV(header, rows)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "csv:", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("--- %s summary\n%s", name, experiments.Summary(pts))
}

func related(ctx context.Context, reps int, seed uint64, csvDir string) {
	cfg := experiments.DefaultConfig(0, 0)
	cfg.GraphsPerPoint = reps
	if seed != 0 {
		cfg.Seed = seed
	}
	start := time.Now()
	pts, err := experiments.RelatedWork(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "related:", err)
		os.Exit(1)
	}
	fmt.Printf("=== related-work comparison: ε=0, Δ=%g, %d graphs/point (%.1fs)\n",
		cfg.PeriodBase, reps, time.Since(start).Seconds())
	header, rows := experiments.RelatedSeries(pts)
	fmt.Printf("--- latency bounds (2S−1)Δ\n%s", experiments.FormatTable(header, rows))
	if plotFlag != nil && *plotFlag {
		fmt.Print(textplot.Render(textplot.FromTable(header, rows),
			textplot.Options{Width: 72, Height: 18, Title: "related-work latency bounds"}))
	}
	fmt.Printf("--- stages and comms\n")
	fmt.Printf("%-6s %-4s | %-7s %-7s %-7s %-7s | %-8s %-8s %-8s %-8s\n",
		"g", "N", "S(R)", "S(ETF)", "S(HEFT)", "S(CL)", "X(R)", "X(ETF)", "X(HEFT)", "X(CL)")
	for _, p := range pts {
		fmt.Printf("%-6.2f %-4d | %-7.2f %-7.2f %-7.2f %-7.2f | %-8.1f %-8.1f %-8.1f %-8.1f\n",
			p.Granularity, p.N,
			p.RLTFStages, p.ETFStages, p.HEFTStages, p.ClustStages,
			p.RLTFComms, p.ETFComms, p.HEFTComms, p.ClustComms)
	}
	if csvDir != "" {
		path := filepath.Join(csvDir, "related_bounds.csv")
		if err := os.WriteFile(path, []byte(experiments.CSV(header, rows)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
	}
}
