// Command streamschedd serves the scheduling pipeline over HTTP/JSON: the
// long-running companion to the one-shot streamsched CLI. It exposes
//
//	POST /v1/solve     one problem → schedule (200), typed infeasibility
//	                   (409), or backpressure (429 + Retry-After)
//	POST /v1/batch     many problems fanned through the solver worker pool
//	POST /v1/replan    committed schedule + platform delta → incrementally
//	                   repaired schedule with repair stats (200), typed
//	                   infeasibility or exceeded repair budget (409)
//	POST /v1/simulate  solve + a scenario sweep on one simulation engine
//	GET  /healthz      liveness
//	GET  /readyz       readiness: 503 during warm start and drain
//	GET  /metrics      expvar-style counters: requests, cache hit ratio,
//	                   queue depth, p50/p90/p99 latency, panics, snapshots
//
// Identical concurrent problems solve once (canonical hashing + coalescing)
// and repeat problems — solves and replans alike — are served from a
// bounded LRU cache; see internal/service and DESIGN.md §8, §10.
//
// With -snapshot the cache survives restarts: it is spilled to the given
// path periodically and on graceful shutdown, and replayed on boot, so a
// restarted daemon serves repeat traffic as cache hits (DESIGN.md §11).
// SIGTERM/SIGINT triggers the graceful drain: readiness drops, new work is
// rejected with 503 + Retry-After, in-flight flights finish under the
// -max-timeout budget, the cache is spilled, and the listener closes.
//
//	streamschedd -addr :8080 -workers 8 -queue 32 -cache 1024 \
//	    -snapshot /var/lib/streamsched/cache.snap
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamsched/internal/faultinject"
	"streamsched/internal/service"
)

// faultSpecs collects repeatable -fault flags.
type faultSpecs []string

func (f *faultSpecs) String() string     { return strings.Join(*f, ",") }
func (f *faultSpecs) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	var faults faultSpecs
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "concurrent solve/simulate work units (0: GOMAXPROCS)")
		queue      = flag.Int("queue", -1, "bounded work queue beyond the workers (-1: 4×workers, 0: no queue)")
		cache      = flag.Int("cache", 1024, "result cache entries (LRU)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "ceiling on client-requested deadlines and per-flight compute budget")
		retry      = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		maxBody    = flag.Int64("max-body", 16<<20, "maximum request body bytes")
		snapshot   = flag.String("snapshot", "", "cache snapshot path: spill on shutdown and periodically, replay on boot (empty: disabled)")
		snapEvery  = flag.Duration("snapshot-interval", 30*time.Second, "background cache spill period (requires -snapshot; <0: drain-only spill)")
		// -debug-solve-delay exists for smoke and load testing: it makes
		// queue-full (429) and coalescing windows deterministic.
		solveDelay = flag.Duration("debug-solve-delay", 0, "artificial delay per underlying solve (testing only)")
	)
	flag.Var(&faults, "fault", "arm a fault-injection site, site=policy (repeatable; policies: always[:param], nth:N[:param], prob:P:SEED[:param]) — chaos testing only")
	flag.Parse()

	if len(faults) > 0 {
		if err := faultinject.ParseSpec(strings.Join(faults, ",")); err != nil {
			fmt.Fprintln(os.Stderr, "streamschedd:", err)
			os.Exit(2)
		}
		log.Printf("streamschedd: fault injection armed: %s", faults.String())
	}

	cfg := service.Config{
		Workers:          *workers,
		CacheEntries:     *cache,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		RetryAfter:       *retry,
		MaxBodyBytes:     *maxBody,
		SolveDelay:       *solveDelay,
		SnapshotPath:     *snapshot,
		SnapshotInterval: *snapEvery,
		Logf:             log.Printf,
	}
	switch {
	case *queue == 0:
		cfg.NoQueue = true
	case *queue > 0:
		cfg.QueueLimit = *queue
	}
	srv := service.New(cfg)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Warm start concurrently with the listener coming up: /readyz reports
	// 503 until the replay lands, but requests that do arrive are served.
	go func() {
		start := time.Now()
		replayed, skipped, err := srv.WarmStart()
		if err != nil {
			log.Printf("streamschedd: warm start: %v (continuing cold)", err)
		}
		if *snapshot != "" {
			log.Printf("streamschedd: warm start: %d entries replayed, %d skipped in %s", replayed, skipped, time.Since(start).Round(time.Millisecond))
		}
	}()

	errc := make(chan error, 1)
	go func() {
		log.Printf("streamschedd: listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "streamschedd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Graceful drain: stop admission first (readiness drops, new work
		// gets 503 + Retry-After), let in-flight flights finish under the
		// compute budget, spill the cache, then close the listener.
		log.Printf("streamschedd: drain: admission stopped")
		drainCtx, cancel := context.WithTimeout(context.Background(), *maxTimeout)
		rep := srv.Drain(drainCtx)
		cancel()
		if rep.FlightsTimedOut {
			log.Printf("streamschedd: drain: flight wait timed out after %s; abandoning stragglers", rep.Flights.Round(time.Millisecond))
		} else {
			log.Printf("streamschedd: drain: in-flight work finished in %s", rep.Flights.Round(time.Millisecond))
		}
		if *snapshot != "" {
			if rep.SnapshotErr != nil {
				log.Printf("streamschedd: drain: cache spill failed: %v", rep.SnapshotErr)
			} else {
				log.Printf("streamschedd: drain: spilled %d cache entries in %s", rep.SnapshotEntries, rep.Snapshot.Round(time.Millisecond))
			}
		}
		start := time.Now()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "streamschedd: shutdown:", err)
			os.Exit(1)
		}
		log.Printf("streamschedd: drain: listener closed in %s", time.Since(start).Round(time.Millisecond))
	}
}
