// Command streamschedd serves the scheduling pipeline over HTTP/JSON: the
// long-running companion to the one-shot streamsched CLI. It exposes
//
//	POST /v1/solve     one problem → schedule (200), typed infeasibility
//	                   (409), or backpressure (429 + Retry-After)
//	POST /v1/batch     many problems fanned through the solver worker pool
//	POST /v1/replan    committed schedule + platform delta → incrementally
//	                   repaired schedule with repair stats (200), typed
//	                   infeasibility or exceeded repair budget (409)
//	POST /v1/simulate  solve + a scenario sweep on one simulation engine
//	GET  /healthz      liveness
//	GET  /readyz       readiness: 503 during warm start and drain
//	GET  /metrics      counters: requests, cache hit ratio, queue depth,
//	                   p50/p90/p99 latency, panics, snapshots — JSON by
//	                   default, Prometheus text with ?format=prometheus or
//	                   an Accept: text/plain scrape
//	GET  /debug/traces recent request traces: span-tree JSON, or the Chrome
//	                   trace-event form with ?format=chrome
//
// Identical concurrent problems solve once (canonical hashing + coalescing)
// and repeat problems — solves and replans alike — are served from a
// bounded LRU cache; see internal/service and DESIGN.md §8, §10.
//
// Observability (DESIGN.md §12). Tracing is on by default (-trace=false
// disables it): every request carries an X-Trace-Id response header,
// ?debug=timing adds a Server-Timing stage breakdown, recent API traces
// are retained for /debug/traces (-trace-ring bounds the window), and the
// daemon logs one structured JSON line per request to stderr. Operational
// log lines are structured JSON too (log/slog). -pprof mounts the
// net/http/pprof handlers under /debug/pprof/ — off by default because
// profile endpoints expose process internals and cost CPU when scraped;
// enable it on instances you are actively profiling, behind network ACLs.
//
// With -snapshot the cache survives restarts: it is spilled to the given
// path periodically and on graceful shutdown, and replayed on boot, so a
// restarted daemon serves repeat traffic as cache hits (DESIGN.md §11).
// SIGTERM/SIGINT triggers the graceful drain: readiness drops, new work is
// rejected with 503 + Retry-After, in-flight flights finish under the
// -max-timeout budget, the cache is spilled, and the listener closes.
//
//	streamschedd -addr :8080 -workers 8 -queue 32 -cache 1024 \
//	    -snapshot /var/lib/streamsched/cache.snap
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamsched/internal/faultinject"
	"streamsched/internal/service"
)

// faultSpecs collects repeatable -fault flags.
type faultSpecs []string

func (f *faultSpecs) String() string     { return strings.Join(*f, ",") }
func (f *faultSpecs) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	var faults faultSpecs
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "concurrent solve/simulate work units (0: GOMAXPROCS)")
		queue      = flag.Int("queue", -1, "bounded work queue beyond the workers (-1: 4×workers, 0: no queue)")
		cache      = flag.Int("cache", 1024, "result cache entries (LRU)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "ceiling on client-requested deadlines and per-flight compute budget")
		retry      = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		maxBody    = flag.Int64("max-body", 16<<20, "maximum request body bytes")
		snapshot   = flag.String("snapshot", "", "cache snapshot path: spill on shutdown and periodically, replay on boot (empty: disabled)")
		snapEvery  = flag.Duration("snapshot-interval", 30*time.Second, "background cache spill period (requires -snapshot; <0: drain-only spill)")
		tracing    = flag.Bool("trace", true, "per-request tracing: X-Trace-Id, /debug/traces, stage latency metrics, request logs")
		traceRing  = flag.Int("trace-ring", 128, "recent traces retained for /debug/traces (requires -trace)")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (costs CPU when scraped; keep behind ACLs)")
		// -debug-solve-delay exists for smoke and load testing: it makes
		// queue-full (429) and coalescing windows deterministic.
		solveDelay = flag.Duration("debug-solve-delay", 0, "artificial delay per underlying solve (testing only)")
	)
	flag.Var(&faults, "fault", "arm a fault-injection site, site=policy (repeatable; policies: always[:param], nth:N[:param], prob:P:SEED[:param]) — chaos testing only")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	if len(faults) > 0 {
		if err := faultinject.ParseSpec(strings.Join(faults, ",")); err != nil {
			fmt.Fprintln(os.Stderr, "streamschedd:", err)
			os.Exit(2)
		}
		logger.Warn("fault injection armed", "spec", faults.String())
	}

	cfg := service.Config{
		Workers:          *workers,
		CacheEntries:     *cache,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		RetryAfter:       *retry,
		MaxBodyBytes:     *maxBody,
		SolveDelay:       *solveDelay,
		SnapshotPath:     *snapshot,
		SnapshotInterval: *snapEvery,
		Tracing:          *tracing,
		TraceRingSize:    *traceRing,
		Logf: func(format string, args ...any) {
			logger.Warn(fmt.Sprintf(format, args...))
		},
	}
	if *tracing {
		cfg.RequestLog = func(e service.RequestLogEntry) {
			attrs := []any{
				"traceId", e.TraceID,
				"method", e.Method,
				"path", e.Path,
				"status", e.Status,
				"durationMs", e.DurationMs,
			}
			if e.Hash != "" {
				attrs = append(attrs, "hash", e.Hash)
			}
			if e.Outcome != "" {
				attrs = append(attrs, "outcome", e.Outcome)
			}
			if len(e.Stages) > 0 {
				attrs = append(attrs, "stagesMs", e.Stages)
			}
			logger.Info("request", attrs...)
		}
	}
	switch {
	case *queue == 0:
		cfg.NoQueue = true
	case *queue > 0:
		cfg.QueueLimit = *queue
	}
	srv := service.New(cfg)

	handler := srv.Handler()
	if *pprofOn {
		// Wrap the service handler rather than registering on it: the pprof
		// handlers must bypass the tracing/recovery middlewares (a CPU
		// profile lasting 30s would pin a trace open the whole time).
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		logger.Info("pprof enabled", "prefix", "/debug/pprof/")
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Warm start concurrently with the listener coming up: /readyz reports
	// 503 until the replay lands, but requests that do arrive are served.
	go func() {
		start := time.Now()
		replayed, skipped, err := srv.WarmStart()
		if err != nil {
			logger.Error("warm start failed; continuing cold", "err", err)
		}
		if *snapshot != "" {
			logger.Info("warm start", "replayed", replayed, "skipped", skipped,
				"elapsed", time.Since(start).Round(time.Millisecond).String())
		}
	}()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "tracing", *tracing)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "streamschedd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Graceful drain: stop admission first (readiness drops, new work
		// gets 503 + Retry-After), let in-flight flights finish under the
		// compute budget, spill the cache, then close the listener.
		logger.Info("drain: admission stopped")
		drainCtx, cancel := context.WithTimeout(context.Background(), *maxTimeout)
		rep := srv.Drain(drainCtx)
		cancel()
		if rep.FlightsTimedOut {
			logger.Warn("drain: flight wait timed out; abandoning stragglers",
				"waited", rep.Flights.Round(time.Millisecond).String())
		} else {
			logger.Info("drain: in-flight work finished",
				"elapsed", rep.Flights.Round(time.Millisecond).String())
		}
		if *snapshot != "" {
			if rep.SnapshotErr != nil {
				logger.Error("drain: cache spill failed", "err", rep.SnapshotErr)
			} else {
				logger.Info("drain: cache spilled", "entries", rep.SnapshotEntries,
					"elapsed", rep.Snapshot.Round(time.Millisecond).String())
			}
		}
		start := time.Now()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "streamschedd: shutdown:", err)
			os.Exit(1)
		}
		logger.Info("drain: listener closed", "elapsed", time.Since(start).Round(time.Millisecond).String())
	}
}
