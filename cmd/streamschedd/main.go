// Command streamschedd serves the scheduling pipeline over HTTP/JSON: the
// long-running companion to the one-shot streamsched CLI. It exposes
//
//	POST /v1/solve     one problem → schedule (200), typed infeasibility
//	                   (409), or backpressure (429 + Retry-After)
//	POST /v1/batch     many problems fanned through the solver worker pool
//	POST /v1/replan    committed schedule + platform delta → incrementally
//	                   repaired schedule with repair stats (200), typed
//	                   infeasibility or exceeded repair budget (409)
//	POST /v1/simulate  solve + a scenario sweep on one simulation engine
//	GET  /healthz      liveness
//	GET  /metrics      expvar-style counters: requests, cache hit ratio,
//	                   queue depth, p50/p90/p99 latency
//
// Identical concurrent problems solve once (canonical hashing + coalescing)
// and repeat problems — solves and replans alike — are served from a
// bounded LRU cache; see internal/service and DESIGN.md §8, §10.
//
//	streamschedd -addr :8080 -workers 8 -queue 32 -cache 1024
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamsched/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "concurrent solve/simulate work units (0: GOMAXPROCS)")
		queue      = flag.Int("queue", -1, "bounded work queue beyond the workers (-1: 4×workers, 0: no queue)")
		cache      = flag.Int("cache", 1024, "result cache entries (LRU)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "ceiling on client-requested deadlines and per-flight compute budget")
		retry      = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		maxBody    = flag.Int64("max-body", 16<<20, "maximum request body bytes")
		// -debug-solve-delay exists for smoke and load testing: it makes
		// queue-full (429) and coalescing windows deterministic.
		solveDelay = flag.Duration("debug-solve-delay", 0, "artificial delay per underlying solve (testing only)")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:        *workers,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		RetryAfter:     *retry,
		MaxBodyBytes:   *maxBody,
		SolveDelay:     *solveDelay,
	}
	switch {
	case *queue == 0:
		cfg.NoQueue = true
	case *queue > 0:
		cfg.QueueLimit = *queue
	}
	srv := service.New(cfg)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("streamschedd: listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "streamschedd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("streamschedd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "streamschedd: shutdown:", err)
			os.Exit(1)
		}
	}
}
