package streamsched_test

// Tests for the façade's §6-extension surface: the symmetric tri-criteria
// searches, the energy model, and schedule serialization.

import (
	"context"
	"testing"

	"streamsched"
)

func TestFacadeMaxThroughput(t *testing.T) {
	g := streamsched.Chain(4, 1, 0.01)
	p := streamsched.Homogeneous(4, 1, 100)
	period, s, err := streamsched.MaxThroughput(context.Background(), g, p, 1, 0, streamsched.RLTF)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || period <= 0 {
		t.Fatal("bad result")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// 8 replica-units of work on 4 unit processors: period ≥ 2.
	if period < 2-1e-3 {
		t.Fatalf("period %v below the capacity floor 2", period)
	}
}

func TestFacadeMaxFailures(t *testing.T) {
	g := streamsched.Chain(3, 1, 0.1)
	p := streamsched.Homogeneous(8, 1, 10)
	eps, s, err := streamsched.MaxFailures(context.Background(), g, p, 3.001, 0, streamsched.LTF)
	if err != nil {
		t.Fatal(err)
	}
	if eps < 1 || s.Eps != eps {
		t.Fatalf("eps = %d", eps)
	}
	if !s.ToleratesAllFailures() {
		t.Fatal("returned schedule fails its own audit")
	}
}

func TestFacadeMinProcessors(t *testing.T) {
	g := streamsched.Fig2Graph()
	p := streamsched.Homogeneous(16, 1, 1)
	m, s, err := streamsched.MinProcessors(context.Background(), g, p, 1, 20, streamsched.LTF)
	if err != nil {
		t.Fatal(err)
	}
	if m < 2 || m > 16 || s == nil {
		t.Fatalf("m = %d", m)
	}
	// Minimality: one fewer processor must fail.
	if m > 2 {
		sub := streamsched.Homogeneous(m-1, 1, 1)
		if _, err := solveWith(t, streamsched.LTF, g, sub, 1, 20); err == nil {
			t.Fatalf("m-1 = %d also feasible; MinProcessors not minimal", m-1)
		}
	}
}

func TestFacadeEnergy(t *testing.T) {
	g := streamsched.Chain(4, 1, 1)
	p := streamsched.Homogeneous(8, 1, 1)
	ff, err := solveWith(t, streamsched.FaultFree, g, p, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := solveWith(t, streamsched.RLTF, g, p, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	m := streamsched.DefaultEnergyModel()
	if rep.EnergyPerItem(m) <= ff.EnergyPerItem(m) {
		t.Fatal("ε=2 replication should cost more energy than ε=0")
	}
	if ov := rep.EnergyOverhead(m, ff); ov <= 0 {
		t.Fatalf("energy overhead %v", ov)
	}
}

func TestFacadeScheduleJSON(t *testing.T) {
	g := streamsched.Chain(3, 1, 1)
	p := streamsched.Homogeneous(4, 1, 1)
	s, err := solveWith(t, streamsched.RLTF, g, p, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := streamsched.LoadScheduleJSON(data, g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.LatencyBound() != s.LatencyBound() {
		t.Fatal("latency changed across serialization")
	}
}
