package streamsched_test

// One benchmark per paper table/figure (DESIGN.md §4 maps them), plus the
// ablation benches for the design choices DESIGN.md calls out, plus
// algorithm micro-benchmarks. Figure sweeps run at reduced sample counts to
// stay benchmark-sized; cmd/paperfig regenerates the full 60-graph curves.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"streamsched"
	"streamsched/internal/experiments"
	"streamsched/internal/ltf"
	"streamsched/internal/oneport"
	"streamsched/internal/platform"
	"streamsched/internal/randgraph"
	"streamsched/internal/rltf"
	"streamsched/internal/rng"
	"streamsched/internal/sim"
	"streamsched/internal/timeline"
)

// benchSweep runs a reduced paper sweep.
func benchSweep(b *testing.B, eps, crashes int, fig experiments.Figure) {
	cfg := experiments.DefaultConfig(eps, crashes)
	cfg.GraphsPerPoint = 3
	cfg.Granularities = []float64{0.6, 1.0, 1.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		_, rows := experiments.Series(pts, fig)
		if len(rows) != len(cfg.Granularities) {
			b.Fatal("bad series")
		}
	}
}

// BenchmarkFig1 regenerates the Figure 1 scenario comparison (E1).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if r.PipeStages != 2 {
			b.Fatalf("pipelined stages = %d", r.PipeStages)
		}
	}
}

// BenchmarkFig2 regenerates the §4.3 worked-example grid (E2).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if r.Best("R-LTF") == nil {
			b.Fatal("R-LTF infeasible everywhere")
		}
	}
}

// BenchmarkFig3a/b/c: ε=1 latency bounds, crash latencies, overheads (E3-E5).
func BenchmarkFig3a(b *testing.B) { benchSweep(b, 1, 1, experiments.FigBounds) }
func BenchmarkFig3b(b *testing.B) { benchSweep(b, 1, 1, experiments.FigCrash) }
func BenchmarkFig3c(b *testing.B) { benchSweep(b, 1, 1, experiments.FigOverhead) }

// BenchmarkFig4a/b/c: the ε=3 family (E6-E8).
func BenchmarkFig4a(b *testing.B) { benchSweep(b, 3, 2, experiments.FigBounds) }
func BenchmarkFig4b(b *testing.B) { benchSweep(b, 3, 2, experiments.FigCrash) }
func BenchmarkFig4c(b *testing.B) { benchSweep(b, 3, 2, experiments.FigOverhead) }

// BenchmarkRelatedWork regenerates the extended related-work comparison
// table (R-LTF vs ETF/HEFT/clustering at ε=0).
func BenchmarkRelatedWork(b *testing.B) {
	cfg := experiments.DefaultConfig(0, 0)
	cfg.GraphsPerPoint = 3
	cfg.Granularities = []float64{0.8, 1.6}
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RelatedWork(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 2 {
			b.Fatal("bad points")
		}
	}
}

// BenchmarkAblationOneToOne compares the one-to-one mapping against full
// communication replication on an aggregation tree (E9, the §4.2 claim).
func BenchmarkAblationOneToOne(b *testing.B) {
	g := randgraph.InTree(4, 1, 1)
	p := platform.Homogeneous(16, 1, 1)
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"one-to-one", false},
		{"full-replication", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			comms := 0
			for i := 0; i < b.N; i++ {
				s, err := rltf.Schedule(context.Background(), g, p, 1, 1000, rltf.Options{DisableOneToOne: mode.disable})
				if err != nil {
					b.Fatal(err)
				}
				comms = s.TotalComms()
			}
			b.ReportMetric(float64(comms), "comms")
		})
	}
}

// BenchmarkAblationChunk measures LTF's iso-level chunking against plain
// one-task list scheduling (E10).
func BenchmarkAblationChunk(b *testing.B) {
	r := rng.New(7)
	p := platform.RandomHeterogeneous(r, 20, 0.5, 1, 0.5, 1, 100)
	cfg := randgraph.DefaultStreamConfig()
	cfg.Granularity = 1.0
	g := randgraph.Stream(r, cfg, p)
	for _, chunk := range []int{1, 20} {
		b.Run(fmt.Sprintf("B=%d", chunk), func(b *testing.B) {
			stages := 0
			for i := 0; i < b.N; i++ {
				s, err := ltf.Schedule(context.Background(), g, p, 1, 20, ltf.Options{ChunkSize: chunk})
				if err != nil {
					b.Skip("infeasible at this chunk size")
				}
				stages = s.Stages()
			}
			b.ReportMetric(float64(stages), "stages")
		})
	}
}

// BenchmarkLTF and BenchmarkRLTF measure scheduling cost on paper-sized
// instances (v ∈ [50,150], m = 20).
func BenchmarkLTF(b *testing.B) {
	for _, eps := range []int{1, 3} {
		b.Run(fmt.Sprintf("eps=%d", eps), func(b *testing.B) {
			r := rng.New(11)
			p := platform.RandomHeterogeneous(r, 20, 0.5, 1, 0.5, 1, 100)
			cfg := randgraph.DefaultStreamConfig()
			g := randgraph.Stream(r, cfg, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ltf.Schedule(context.Background(), g, p, eps, 10*float64(eps+1), ltf.Options{}); err != nil {
					b.Skip("infeasible instance")
				}
			}
		})
	}
}

// BenchmarkLTFLookahead records the speculative-lookahead quality/cost
// points: for each window size k, the construction cost (ns/op) plus the
// resulting schedule's stage count and latency bound as custom metrics.
// k=1 is the plain loop; k>1 scores per-window candidate strategies under
// the chunk transaction and keeps the best. Part of the CI perf gate.
func BenchmarkLTFLookahead(b *testing.B) {
	for _, algo := range []string{"ltf", "rltf"} {
		for _, k := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/k=%d", algo, k), func(b *testing.B) {
				r := rng.New(11)
				p := platform.RandomHeterogeneous(r, 20, 0.5, 1, 0.5, 1, 100)
				cfg := randgraph.DefaultStreamConfig()
				g := randgraph.Stream(r, cfg, p)
				stages, bound := 0, 0.0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var (
						s   *streamsched.Schedule
						err error
					)
					if algo == "ltf" {
						s, err = ltf.Schedule(context.Background(), g, p, 1, 20, ltf.Options{Lookahead: k})
					} else {
						s, err = rltf.Schedule(context.Background(), g, p, 1, 20, rltf.Options{Lookahead: k})
					}
					if err != nil {
						b.Skip("infeasible instance")
					}
					stages, bound = s.Stages(), s.LatencyBound()
				}
				b.ReportMetric(float64(stages), "stages")
				b.ReportMetric(bound, "latency")
			})
		}
	}
}

func BenchmarkRLTF(b *testing.B) {
	for _, eps := range []int{1, 3} {
		b.Run(fmt.Sprintf("eps=%d", eps), func(b *testing.B) {
			r := rng.New(11)
			p := platform.RandomHeterogeneous(r, 20, 0.5, 1, 0.5, 1, 100)
			cfg := randgraph.DefaultStreamConfig()
			g := randgraph.Stream(r, cfg, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rltf.Schedule(context.Background(), g, p, eps, 10*float64(eps+1), rltf.Options{}); err != nil {
					b.Skip("infeasible instance")
				}
			}
		})
	}
}

// BenchmarkSim measures the discrete-event engine across the axes the
// experiment campaigns exercise: small structured vs paper-sized random
// graphs, free-running dataflow vs stage-synchronized semantics, with and
// without a tolerated crash. These cases are part of the recorded baseline
// and the CI perf gate (see Makefile BENCH_RE).
func BenchmarkSim(b *testing.B) {
	small, err := ltf.Schedule(context.Background(), randgraph.Butterfly(3, 3, 1),
		platform.Homogeneous(10, 1, 1), 1, 30, ltf.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(13)
	p := platform.RandomHeterogeneous(r, 20, 0.5, 1, 0.5, 1, 100)
	large, err := rltf.Schedule(context.Background(), randgraph.Stream(r, randgraph.DefaultStreamConfig(), p), p, 1, 20, rltf.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []struct {
		name string
		s    *streamsched.Schedule
	}{{"small", small}, {"large", large}} {
		for _, mode := range []struct {
			name string
			sync bool
		}{{"dataflow", false}, {"synchronous", true}} {
			for _, crash := range []struct {
				name  string
				procs []platform.ProcID
			}{{"nocrash", nil}, {"crash", []platform.ProcID{0}}} {
				b.Run(size.name+"/"+mode.name+"/"+crash.name, func(b *testing.B) {
					c := sim.DefaultConfig(size.s)
					c.Synchronous = mode.sync
					if crash.procs != nil {
						c.Failures = sim.FailureSpec{Procs: crash.procs}
					}
					eng, err := sim.NewEngine(size.s)
					if err != nil {
						b.Fatal(err)
					}
					var wakes int64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := eng.Run(context.Background(), c); err != nil {
							b.Fatal(err)
						}
						wakes += eng.Wakes()
					}
					// Event-count regressions (a wake push per gated instance
					// instead of per bucket) hide inside ns/op noise; the gate
					// reds on wakes/op growth directly.
					b.ReportMetric(float64(wakes)/float64(b.N), "wakes/op")
				})
			}
		}
	}
}

// BenchmarkTimelineReserve measures sorted-interval insertion as one port's
// timeline grows — the ROADMAP question of whether the memmove-based sorted
// slice holds up beyond ~10³ reservations per port. One op builds a
// timeline of n disjoint intervals reserved in permuted order, so
// insertions land mid-slice rather than appending.
func BenchmarkTimelineReserve(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ivs := make([]timeline.Interval, n)
			for i, p := range rng.New(19).Perm(n) {
				ivs[i] = timeline.Interval{Start: 2 * float64(p), End: 2*float64(p) + 1}
			}
			var tl timeline.Timeline
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tl.Reset()
				for _, iv := range ivs {
					tl.MustReserve(iv)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/reserve")
		})
	}
}

// populateSystem commits n random reservations onto a fresh m-processor
// one-port system — the committed-state backdrop for the transactional
// rollback and availability-cache benchmarks.
func populateSystem(m, n int) *oneport.System {
	r := rng.New(29)
	p := platform.RandomHeterogeneous(r, m, 0.5, 1, 0.5, 1, 100)
	s := oneport.NewSystem(p)
	for i := 0; i < n; i++ {
		txn := s.Begin()
		if r.Bool(0.4) {
			txn.Compute(platform.ProcID(r.IntN(m)), r.Uniform(0.1, 2), r.Uniform(0, 50), "")
		} else {
			txn.Transfer(platform.ProcID(r.IntN(m)), platform.ProcID(r.IntN(m)),
				r.Uniform(1, 40), r.Uniform(0, 50), "")
		}
		txn.Commit()
	}
	return s
}

// BenchmarkSnapshotRestore measures the pre-transactional rollback
// strategy — capture all 3m timelines by deep copy (buffer-reused, as the
// deleted oneport.SnapshotInto did), then restore by swap — which the
// reverse-mode retry ladder used to pay per task. Kept as the recorded
// contrast for BenchmarkTxnRollback: O(total reservations) per rollback
// point, independent of how little actually changed.
func BenchmarkSnapshotRestore(b *testing.B) {
	const m = 20
	s := populateSystem(m, 2000)
	var live, snap []*timeline.Timeline
	for u := 0; u < m; u++ {
		pu := platform.ProcID(u)
		live = append(live, s.Comp(pu).Clone(), s.Send(pu).Clone(), s.Recv(pu).Clone())
	}
	for range live {
		snap = append(snap, &timeline.Timeline{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, tl := range live {
			snap[j].CopyFrom(tl)
		}
		live, snap = snap, live // the RestoreSwap analogue
	}
}

// BenchmarkTxnRollback measures the journaled replacement on the same
// committed backdrop: one op takes a rollback mark, commits two replicas'
// worth of reservations (two transfers and a compute each, the reverse-mode
// retry shape), and rolls them back — O(changes), not O(total reservations).
func BenchmarkTxnRollback(b *testing.B) {
	s := populateSystem(20, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := s.Mark()
		for rep := 0; rep < 2; rep++ {
			txn := s.Begin()
			txn.Transfer(1, 5, 30, 10, "")
			txn.Transfer(2, 5, 20, 15, "")
			txn.Compute(5, 1.5, 20, "")
			txn.Commit()
		}
		s.Rollback(mark)
	}
}

// BenchmarkHeadsAvailCache measures the head-selection availability walk —
// the earliest common send/recv gap per (source processor × target
// processor), re-asked with identical arguments between commits — uncached
// (the raw timeline walk singleCommFinish used to pay every time) and
// through the system's per-port-pair cache.
func BenchmarkHeadsAvailCache(b *testing.B) {
	const m = 20
	s := populateSystem(m, 2000)
	readies := make([]float64, m)
	for u := range readies {
		readies[u] = float64(3 * u)
	}
	sweep := func(query func(from, to platform.ProcID, ready, dur float64) float64) float64 {
		acc := 0.0
		for to := 0; to < m; to++ {
			for from := 0; from < m; from++ {
				if from != to {
					acc += query(platform.ProcID(from), platform.ProcID(to), readies[from], 2.5)
				}
			}
		}
		return acc
	}
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkFloat = sweep(func(from, to platform.ProcID, ready, dur float64) float64 {
				return timeline.EarliestCommonGap(ready, dur, s.Send(from), s.Recv(to))
			})
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkFloat = sweep(s.CommonGap)
		}
	})
}

var sinkFloat float64

// BenchmarkValidate measures the full audit including the exhaustive
// ε-failure enumeration.
func BenchmarkValidate(b *testing.B) {
	g := streamsched.Fig2Graph()
	p := platform.Homogeneous(10, 1, 1)
	s, err := ltf.Schedule(context.Background(), g, p, 1, 20, ltf.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinPeriod measures the binary-search period minimizer.
func BenchmarkMinPeriod(b *testing.B) {
	g := randgraph.Butterfly(3, 3, 1)
	p := platform.Homogeneous(12, 1, 2)
	for i := 0; i < b.N; i++ {
		if _, _, err := streamsched.MinPeriod(context.Background(), g, p, 1, streamsched.RLTF, 1e-2); err != nil {
			b.Fatal(err)
		}
	}
}

// replanBench pins one (instance size × delta kind) repair scenario shared
// by BenchmarkReplan and BenchmarkReplanCold, so the two benchmarks form a
// true differential: same committed schedule, same post-delta platform.
type replanBench struct {
	name  string
	old   *streamsched.Schedule
	p     *streamsched.Platform
	delta streamsched.PlatformDelta
}

// replanBenchCases builds the small (m=8) and large (m=20, paper-sized
// stream graph) instances under forward LTF, each with a single-processor
// loss and a speed-degrade delta.
func replanBenchCases(b *testing.B) ([]replanBench, *streamsched.Solver) {
	b.Helper()
	solver, err := streamsched.NewSolver(
		streamsched.WithAlgorithm(streamsched.LTF),
		streamsched.WithEps(1),
		streamsched.WithPeriod(40),
	)
	if err != nil {
		b.Fatal(err)
	}
	var cases []replanBench
	for _, size := range []struct {
		name string
		m    int
	}{{"small", 8}, {"large", 20}} {
		r := rng.New(11)
		p := platform.RandomHeterogeneous(r, size.m, 0.5, 1, 0.5, 1, 100)
		g := randgraph.Stream(r, randgraph.DefaultStreamConfig(), p)
		old, err := solver.Solve(context.Background(), g, p)
		if err != nil {
			b.Fatalf("%s: committed solve: %v", size.name, err)
		}
		cases = append(cases,
			replanBench{size.name + "/lostproc", old, p,
				streamsched.PlatformDelta{Lost: []streamsched.ProcID{3}}},
			replanBench{size.name + "/degrade", old, p,
				streamsched.PlatformDelta{Speed: []streamsched.ProcSpeedChange{{Proc: 0, Speed: p.Speed(0) * 0.5}}}},
		)
	}
	return cases, solver
}

// BenchmarkReplan measures incremental repair: replay the surviving
// placement, journal-unwind and re-place only the evicted tasks. The
// differential claim — repair beats the cold re-solve on small deltas,
// in particular single-processor loss on the paper-sized instance — is
// checked against BenchmarkReplanCold in the recorded baseline (Makefile
// BENCH_RE; both are part of the CI perf gate).
func BenchmarkReplan(b *testing.B) {
	cases, solver := replanBenchCases(b)
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := solver.Replan(context.Background(), tc.old, tc.delta)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.ColdSolve {
					b.Fatal("repair fell back to a cold solve; the benchmark measures incremental repair")
				}
			}
		})
	}
}

// BenchmarkReplanCold measures the alternative repair refuses to default
// to: a full re-solve of the same instance on the same post-delta
// platform.
func BenchmarkReplanCold(b *testing.B) {
	cases, solver := replanBenchCases(b)
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			newP, _, err := tc.delta.Apply(tc.p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.Solve(context.Background(), tc.old.G, newP); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServiceSolveCached measures the scheduling service's steady
// state: one cached /v1/solve request — decode, build, canonical hash,
// LRU hit, pre-rendered response — through the real handler stack
// (httptest request/recorder; no socket jitter, so the pinned numbers are
// stable at the gate's short benchtime). This is the per-request CPU cost
// a warm streamschedd pays for repeat traffic; it is part of the recorded
// baseline and the CI perf gate (Makefile BENCH_RE).
func BenchmarkServiceSolveCached(b *testing.B) {
	srv := streamsched.NewService(streamsched.ServiceConfig{})
	handler := srv.Handler()
	payload, err := json.Marshal(streamsched.WireSolveRequest{
		Graph:    streamsched.NewWireGraph(streamsched.Fig2Graph()),
		Platform: streamsched.NewWirePlatform(platform.Homogeneous(6, 1, 10)),
		Options:  streamsched.WireOptions{Eps: 1, Period: 40},
	})
	if err != nil {
		b.Fatal(err)
	}
	post := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(payload))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := post(); code != http.StatusOK { // warm the cache
		b.Fatalf("warm-up solve: HTTP %d", code)
	}
	// One op = reqsPerOp requests, so the pinned ns/op averages enough
	// requests to be stable at the gate's short benchtime.
	const reqsPerOp = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < reqsPerOp; j++ {
			if code := post(); code != http.StatusOK {
				b.Fatalf("cached solve: HTTP %d", code)
			}
		}
	}
	b.StopTimer()
	m := srv.Metrics()
	if m.SolveCalls != 1 {
		b.Fatalf("cache failed: %d solver calls for %d requests", m.SolveCalls, b.N*reqsPerOp+1)
	}
}

// BenchmarkServiceSolveTraced is BenchmarkServiceSolveCached with
// per-request tracing enabled: the same cached request now opens a trace,
// threads spans through hash/cache/render, feeds the stage latency rings
// and lands in the /debug/traces ring. The delta against Cached is the
// whole observability tax (DESIGN.md §12). Defined after Cached on
// purpose: benchmarks run in definition order and obs arming is
// process-global and monotone, so the disabled-path bench must run first.
func BenchmarkServiceSolveTraced(b *testing.B) {
	srv := streamsched.NewService(streamsched.ServiceConfig{Tracing: true})
	handler := srv.Handler()
	payload, err := json.Marshal(streamsched.WireSolveRequest{
		Graph:    streamsched.NewWireGraph(streamsched.Fig2Graph()),
		Platform: streamsched.NewWirePlatform(platform.Homogeneous(6, 1, 10)),
		Options:  streamsched.WireOptions{Eps: 1, Period: 40},
	})
	if err != nil {
		b.Fatal(err)
	}
	post := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(payload))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Header().Get("X-Trace-Id") == "" {
			b.Fatal("traced response without X-Trace-Id")
		}
		return rec.Code
	}
	if code := post(); code != http.StatusOK { // warm the cache
		b.Fatalf("warm-up solve: HTTP %d", code)
	}
	const reqsPerOp = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < reqsPerOp; j++ {
			if code := post(); code != http.StatusOK {
				b.Fatalf("cached solve: HTTP %d", code)
			}
		}
	}
}
