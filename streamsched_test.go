package streamsched_test

import (
	"context"
	"math"
	"testing"

	"streamsched"
)

// solveWith schedules through the core Solver API. The deprecated Problem
// shim is exercised only by its dedicated façade test
// (TestFacadeDeprecatedProblemShim).
func solveWith(t *testing.T, algo streamsched.Algorithm, g *streamsched.Graph, p *streamsched.Platform, eps int, period float64) (*streamsched.Schedule, error) {
	t.Helper()
	solver, err := streamsched.NewSolver(
		streamsched.WithAlgorithm(algo),
		streamsched.WithEps(eps),
		streamsched.WithPeriod(period),
	)
	if err != nil {
		t.Fatal(err)
	}
	return solver.Solve(context.Background(), g, p)
}

func TestQuickstartFlow(t *testing.T) {
	g := streamsched.NewGraph("pipeline")
	a := g.AddTask("decode", 4)
	b := g.AddTask("filter", 6)
	g.MustAddEdge(a, b, 2)
	p := streamsched.Homogeneous(4, 1.0, 10.0)
	s, err := solveWith(t, streamsched.RLTF, g, p, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := streamsched.Simulate(context.Background(), s, streamsched.DefaultSimConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Items {
		t.Fatalf("delivered %d/%d", res.Delivered, res.Items)
	}
	if res.MeanLatency > s.LatencyBound() {
		t.Fatal("measured latency above bound")
	}
}

func TestFacadeGenerators(t *testing.T) {
	cases := []*streamsched.Graph{
		streamsched.Chain(5, 1, 1),
		streamsched.ForkJoin(3, 2, 1, 1),
		streamsched.InTree(3, 1, 1),
		streamsched.OutTree(3, 1, 1),
		streamsched.Butterfly(3, 1, 1),
		streamsched.GaussianElimination(5, 1, 1),
		streamsched.Stencil(4, 3, 1, 1),
		streamsched.Fig1Graph(),
		streamsched.Fig2Graph(),
	}
	for _, g := range cases {
		if err := g.Validate(); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
	}
}

func TestFacadeRandomStream(t *testing.T) {
	p := streamsched.RandomPlatform(7, 20, 0.5, 1, 0.5, 1)
	g := streamsched.RandomStream(11, 1.2, p)
	if got := streamsched.Granularity(g, p); math.Abs(got-1.2) > 1e-9 {
		t.Fatalf("granularity %v, want 1.2", got)
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := streamsched.Fig1Graph()
	p := streamsched.NewPlatform(
		[]float64{1.5, 1, 1.5, 1},
		[][]float64{{0, 1, 1, 1}, {1, 0, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0}},
	)
	tp, err := streamsched.TaskParallel(context.Background(), g, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Latency <= 0 {
		t.Fatal("bad task-parallel latency")
	}
	dp, err := streamsched.DataParallel(g, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dp.Throughput-1.0/20) > 1e-9 {
		t.Fatalf("data-parallel T = %v", dp.Throughput)
	}
}

func TestFacadeMinPeriod(t *testing.T) {
	g := streamsched.Chain(4, 1, 0.01)
	p := streamsched.Homogeneous(4, 1, 100)
	period, s, err := streamsched.MinPeriod(context.Background(), g, p, 0, streamsched.RLTF, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || period <= 0 {
		t.Fatal("bad MinPeriod result")
	}
	if period > 1.2 {
		t.Fatalf("min period %v too large for 4 unit tasks on 4 procs", period)
	}
}

func TestFacadeCrashSimulation(t *testing.T) {
	g := streamsched.Chain(4, 1, 1)
	p := streamsched.Homogeneous(6, 1, 1)
	s, err := solveWith(t, streamsched.LTF, g, p, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := streamsched.DefaultSimConfig(s)
	cfg.Failures = streamsched.FailureSpec{Procs: []streamsched.ProcID{0}}
	res, err := streamsched.Simulate(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Items {
		t.Fatal("single crash must not lose items at ε=1")
	}
}
