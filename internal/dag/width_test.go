package dag

import (
	"testing"

	"streamsched/internal/rng"
)

// bruteForceWidth computes the maximum antichain by enumerating all subsets
// (only usable for tiny graphs).
func bruteForceWidth(g *Graph) int {
	n := g.NumTasks()
	reach := g.transitiveClosure()
	best := 0
	for mask := 1; mask < 1<<uint(n); mask++ {
		ok := true
		var members []int
		for i := 0; i < n && ok; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			for _, j := range members {
				if reach[i].get(j) || reach[j].get(i) {
					ok = false
					break
				}
			}
			members = append(members, i)
		}
		if ok && len(members) > best {
			best = len(members)
		}
	}
	return best
}

// randomTinyDAG builds a DAG with n ≤ 12 tasks; edges only go from lower to
// higher IDs, guaranteeing acyclicity.
func randomTinyDAG(r *rng.Source, n int, p float64) *Graph {
	g := New("rand")
	for i := 0; i < n; i++ {
		g.AddTask("t", 1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(p) {
				g.MustAddEdge(TaskID(i), TaskID(j), 1)
			}
		}
	}
	return g
}

func TestWidthMatchesBruteForce(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 150; trial++ {
		n := 2 + r.IntN(9)
		p := r.Uniform(0.05, 0.6)
		g := randomTinyDAG(r, n, p)
		got := g.Width()
		want := bruteForceWidth(g)
		if got != want {
			t.Fatalf("trial %d: Width=%d bruteforce=%d graph=%s\n%s",
				trial, got, want, g, g.DOT())
		}
	}
}

func TestWidthBoundedByTasks(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.IntN(30)
		g := randomTinyDAG(r, n, 0.2)
		w := g.Width()
		if w < 1 || w > n {
			t.Fatalf("width %d out of [1,%d]", w, n)
		}
	}
}

func TestWidthReverseInvariant(t *testing.T) {
	// The width of a poset equals the width of its dual.
	r := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		g := randomTinyDAG(r, 3+r.IntN(10), 0.3)
		if g.Width() != g.Reverse().Width() {
			t.Fatalf("width not invariant under reversal: %s", g.DOT())
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := New("tc")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, c, 1)
	reach := g.transitiveClosure()
	if !reach[a].get(int(c)) {
		t.Fatal("a should reach c transitively")
	}
	if reach[c].get(int(a)) {
		t.Fatal("c must not reach a")
	}
	if reach[a].get(int(a)) {
		t.Fatal("closure must be irreflexive")
	}
}

func BenchmarkWidth150(b *testing.B) {
	r := rng.New(5)
	g := randomTinyDAG(r, 150, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Width()
	}
}
