package dag

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax, with task names, work
// weights and edge volumes as labels. Output is deterministic (ID order).
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.name)
	b.WriteString("  rankdir=TB;\n  node [shape=box];\n")
	for _, t := range g.tasks {
		fmt.Fprintf(&b, "  t%d [label=\"%s\\nE=%.3g\"];\n", t.ID, t.Name, t.Work)
	}
	for i := range g.tasks {
		for _, e := range g.out[i] {
			fmt.Fprintf(&b, "  t%d -> t%d [label=\"%.3g\"];\n", e.From, e.To, e.Volume)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String summarizes the graph for logs.
func (g *Graph) String() string {
	return fmt.Sprintf("dag(%s: v=%d e=%d work=%.3g vol=%.3g)",
		g.name, g.NumTasks(), g.NumEdges(), g.TotalWork(), g.TotalVolume())
}
