package dag

// Width computation. The width ω of the task graph — "the maximum number of
// tasks that are independent in G" (§2) — bounds the ready-list size during
// scheduling and appears in the LTF complexity bound O(… + v log ω).
//
// ω is the maximum antichain of the precedence poset. By Dilworth's theorem
// it equals the minimum number of chains covering the poset, and a minimum
// chain cover of a DAG's transitive closure has size v − M where M is a
// maximum matching of the bipartite graph that connects u (left) to w
// (right) whenever u precedes w. We compute the closure with bitsets and the
// matching with Hopcroft–Karp; the paper's graphs (v ≤ 150) make this cheap.

// bitset is a fixed-size bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) or(other bitset) {
	for i := range b {
		b[i] |= other[i]
	}
}

// transitiveClosure returns reach where reach[u].get(w) reports that u
// strictly precedes w.
func (g *Graph) transitiveClosure() []bitset {
	n := len(g.tasks)
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	reach := make([]bitset, n)
	for i := range reach {
		reach[i] = newBitset(n)
	}
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		for _, e := range g.out[u] {
			reach[u].set(int(e.To))
			reach[u].or(reach[e.To])
		}
	}
	return reach
}

// Width returns ω, the maximum antichain size.
func (g *Graph) Width() int {
	n := len(g.tasks)
	if n == 0 {
		return 0
	}
	reach := g.transitiveClosure()
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		for w := 0; w < n; w++ {
			if reach[u].get(w) {
				adj[u] = append(adj[u], w)
			}
		}
	}
	return n - maxBipartiteMatching(n, adj)
}

// maxBipartiteMatching runs Hopcroft–Karp on a bipartite graph with n left
// and n right vertices, adjacency adj (left → right).
func maxBipartiteMatching(n int, adj [][]int) int {
	const inf = int(^uint(0) >> 1)
	matchL := make([]int, n) // left i → right matchL[i] or -1
	matchR := make([]int, n)
	for i := range matchL {
		matchL[i] = -1
		matchR[i] = -1
	}
	dist := make([]int, n)
	queue := make([]int, 0, n)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < n; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, w := range adj[u] {
				nxt := matchR[w]
				if nxt == -1 {
					found = true
				} else if dist[nxt] == inf {
					dist[nxt] = dist[u] + 1
					queue = append(queue, nxt)
				}
			}
		}
		return found
	}
	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, w := range adj[u] {
			nxt := matchR[w]
			if nxt == -1 || (dist[nxt] == dist[u]+1 && dfs(nxt)) {
				matchL[u] = w
				matchR[w] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	matching := 0
	for bfs() {
		for u := 0; u < n; u++ {
			if matchL[u] == -1 && dfs(u) {
				matching++
			}
		}
	}
	return matching
}

// AntichainAtLevels returns, for reporting, the number of tasks at each hop
// depth (a cheap per-level parallelism profile; max over levels is a lower
// bound on Width).
func (g *Graph) AntichainAtLevels() []int {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	depth := make([]int, len(g.tasks))
	maxD := 0
	for _, t := range order {
		for _, e := range g.out[t] {
			if depth[t]+1 > depth[e.To] {
				depth[e.To] = depth[t] + 1
			}
		}
		if depth[t] > maxD {
			maxD = depth[t]
		}
	}
	counts := make([]int, maxD+1)
	for _, d := range depth {
		counts[d]++
	}
	return counts
}
