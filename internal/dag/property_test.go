package dag

import (
	"testing"
	"testing/quick"

	"streamsched/internal/rng"
)

// randomLayeredGraph builds an acyclic graph (edges low → high ID).
func randomLayeredGraph(r *rng.Source) *Graph {
	n := 1 + r.IntN(25)
	g := New("prop")
	for i := 0; i < n; i++ {
		g.AddTask("t", r.Uniform(0.1, 5))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(0.2) {
				g.MustAddEdge(TaskID(i), TaskID(j), r.Uniform(0, 3))
			}
		}
	}
	return g
}

// Property: top and bottom levels are consistent — for every edge (u,v),
// tl(v) ≥ tl(u) + nw(u) + ew(e) and bl(u) ≥ nw(u) + ew(e) + bl(v).
func TestLevelConsistencyProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		g := randomLayeredGraph(r)
		tl := g.TopLevels(UnitNode, UnitEdge)
		bl := g.BottomLevels(UnitNode, UnitEdge)
		for i := 0; i < g.NumTasks(); i++ {
			for _, e := range g.Succ(TaskID(i)) {
				if tl[e.To] < tl[e.From]+g.Task(e.From).Work+e.Volume-1e-9 {
					return false
				}
				if bl[e.From] < g.Task(e.From).Work+e.Volume+bl[e.To]-1e-9 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: priority (tl+bl) is maximal exactly on critical-path tasks, and
// the critical path length equals max priority.
func TestCriticalPathProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		g := randomLayeredGraph(r)
		pr := g.Priorities(UnitNode, UnitEdge)
		cp := g.CriticalPathLength(UnitNode, UnitEdge)
		maxPr := 0.0
		for _, v := range pr {
			if v > maxPr {
				maxPr = v
			}
		}
		return maxPr <= cp+1e-9 && maxPr >= cp-1e-9
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: width is invariant under reversal and bounded by the largest
// hop-level population.
func TestWidthBoundsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		g := randomLayeredGraph(r)
		w := g.Width()
		if w != g.Reverse().Width() {
			return false
		}
		maxLevel := 0
		for _, c := range g.AntichainAtLevels() {
			if c > maxLevel {
				maxLevel = c
			}
		}
		// Any level is an antichain, so width ≥ the largest level.
		return w >= maxLevel && w <= g.NumTasks()
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Depth(g) == Depth(reverse(g)) and scaling weights never changes
// structure metrics.
func TestStructuralInvariantsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		g := randomLayeredGraph(r)
		d, w, e := g.Depth(), g.Width(), g.NumEdges()
		if g.Reverse().Depth() != d {
			return false
		}
		g.ScaleWork(2.5)
		g.ScaleVolume(0.5)
		return g.Depth() == d && g.Width() == w && g.NumEdges() == e
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: a graph is series-parallel iff its reverse is.
func TestSPReversalProperty(t *testing.T) {
	r := rng.New(20090420)
	for trial := 0; trial < 50; trial++ {
		g := randomLayeredGraph(r)
		if g.IsSeriesParallel() != g.Reverse().IsSeriesParallel() {
			t.Fatalf("SP not reversal-invariant:\n%s", g.DOT())
		}
	}
}
