package dag

// This file implements the level machinery behind task priorities (§2 of the
// paper): priorities are tℓ(t)+bℓ(t) where tℓ is the top level (longest path
// from an entry node to t, excluding E(t)) and bℓ the bottom level (longest
// path from t to an exit node, including E(t)). "Path lengths are defined as
// the average sum of edge weights and node weights" — callers supply the
// averaging as weight functions, typically Work/s̄ and Volume/d̄.

// NodeWeight maps a task to its path-length contribution.
type NodeWeight func(Task) float64

// EdgeWeight maps an edge to its path-length contribution.
type EdgeWeight func(Edge) float64

// UnitNode weighs every task by its raw Work.
func UnitNode(t Task) float64 { return t.Work }

// UnitEdge weighs every edge by its raw Volume.
func UnitEdge(e Edge) float64 { return e.Volume }

// TopLevels returns tℓ(t) for every task: the length of the longest path
// from an entry node to t, excluding t's own weight. Entry nodes have top
// level 0. The graph must be acyclic (panics otherwise: levels are only
// queried after Validate).
func (g *Graph) TopLevels(nw NodeWeight, ew EdgeWeight) []float64 {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	tl := make([]float64, len(g.tasks))
	for _, t := range order {
		for _, e := range g.out[t] {
			cand := tl[t] + nw(g.tasks[t]) + ew(e)
			if cand > tl[e.To] {
				tl[e.To] = cand
			}
		}
	}
	return tl
}

// BottomLevels returns bℓ(t) for every task: the length of the longest path
// from t to an exit node, including t's own weight. Exit nodes have bottom
// level equal to their node weight.
func (g *Graph) BottomLevels(nw NodeWeight, ew EdgeWeight) []float64 {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	bl := make([]float64, len(g.tasks))
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		bl[t] = nw(g.tasks[t])
		for _, e := range g.out[t] {
			cand := nw(g.tasks[t]) + ew(e) + bl[e.To]
			if cand > bl[t] {
				bl[t] = cand
			}
		}
	}
	return bl
}

// Priorities returns tℓ(t)+bℓ(t) for every task — the scheduling priority of
// §2. For any task on a critical path this equals the critical path length.
func (g *Graph) Priorities(nw NodeWeight, ew EdgeWeight) []float64 {
	tl := g.TopLevels(nw, ew)
	bl := g.BottomLevels(nw, ew)
	pr := make([]float64, len(tl))
	for i := range pr {
		pr[i] = tl[i] + bl[i]
	}
	return pr
}

// CriticalPathLength returns the weight of the heaviest entry→exit path.
func (g *Graph) CriticalPathLength(nw NodeWeight, ew EdgeWeight) float64 {
	bl := g.BottomLevels(nw, ew)
	best := 0.0
	for _, t := range g.Entries() {
		if bl[t] > best {
			best = bl[t]
		}
	}
	return best
}

// Depth returns the number of tasks on the longest path counted in hops+1
// (a single task has depth 1). It is the minimum possible number of pipeline
// stages if every dependence crossed a processor boundary... and a useful
// structural statistic for the experiment reports.
func (g *Graph) Depth() int {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	d := make([]int, len(g.tasks))
	max := 0
	for _, t := range order {
		if d[t] == 0 {
			d[t] = 1
		}
		if d[t] > max {
			max = d[t]
		}
		for _, e := range g.out[t] {
			if d[t]+1 > d[e.To] {
				d[e.To] = d[t] + 1
			}
		}
	}
	return max
}
