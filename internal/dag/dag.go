// Package dag implements the weighted directed acyclic application graphs of
// the paper's framework (§2): tasks carry an execution weight E(t) (work
// units; running time is E(t)/s on a speed-s processor) and edges carry a
// communication volume (transfer time is volume/bandwidth).
//
// Beyond the container, the package provides the graph-theoretic machinery
// the schedulers depend on: topological orders, top/bottom levels (task
// priorities), the graph width ω (maximum antichain, via Dilworth's theorem
// and bipartite matching), series-parallel recognition (the paper's §4.2
// communication-count claim is specific to series-parallel graphs), reversal
// (R-LTF schedules the reversed graph) and DOT export.
package dag

import (
	"errors"
	"fmt"
)

// TaskID identifies a task within one Graph; IDs are dense, starting at 0.
type TaskID int

// Task is one node of the workflow graph.
type Task struct {
	ID   TaskID
	Name string
	// Work is the task's execution weight E(t) in abstract work units. A
	// processor of speed s executes the task in Work/s time units.
	Work float64
}

// Edge is a precedence constraint with an associated data transfer.
type Edge struct {
	From, To TaskID
	// Volume is the amount of data carried; transferring it over a link of
	// bandwidth d takes Volume/d time units. Zero-volume edges express pure
	// precedence.
	Volume float64
}

// Graph is a mutable weighted DAG. Acyclicity is enforced lazily: AddEdge
// performs no cycle check (builders would pay O(v+e) per edge), and
// Validate/TopoOrder report an error if a cycle was introduced.
type Graph struct {
	name   string
	tasks  []Task
	out    [][]Edge
	in     [][]Edge
	nEdges int
}

// New returns an empty graph with the given display name.
func New(name string) *Graph {
	return &Graph{name: name}
}

// Name returns the graph's display name.
func (g *Graph) Name() string { return g.name }

// AddTask appends a task with the given name and work weight and returns its
// ID. It panics on non-positive work: the paper's path-length definitions
// divide by average execution times, which must be positive.
func (g *Graph) AddTask(name string, work float64) TaskID {
	if work <= 0 {
		panic(fmt.Sprintf("dag: task %q has non-positive work %v", name, work))
	}
	id := TaskID(len(g.tasks))
	g.tasks = append(g.tasks, Task{ID: id, Name: name, Work: work})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddEdge adds a precedence edge with a communication volume. Duplicate
// edges, self-loops, negative volumes and out-of-range endpoints are
// rejected.
func (g *Graph) AddEdge(from, to TaskID, volume float64) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("dag: edge endpoints (%d,%d) out of range [0,%d)", from, to, len(g.tasks))
	}
	if from == to {
		return fmt.Errorf("dag: self-loop on task %d", from)
	}
	if volume < 0 {
		return fmt.Errorf("dag: negative volume %v on edge (%d,%d)", volume, from, to)
	}
	for _, e := range g.out[from] {
		if e.To == to {
			return fmt.Errorf("dag: duplicate edge (%d,%d)", from, to)
		}
	}
	e := Edge{From: from, To: to, Volume: volume}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	g.nEdges++
	return nil
}

// MustAddEdge is AddEdge but panics on error; intended for literal graph
// constructions in tests and generators.
func (g *Graph) MustAddEdge(from, to TaskID, volume float64) {
	if err := g.AddEdge(from, to, volume); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(id TaskID) bool { return id >= 0 && int(id) < len(g.tasks) }

// NumTasks returns v = |V|.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges returns e = |E|.
func (g *Graph) NumEdges() int { return g.nEdges }

// Task returns the task with the given ID; it panics on out-of-range IDs.
func (g *Graph) Task(id TaskID) Task {
	if !g.valid(id) {
		panic(fmt.Sprintf("dag: task id %d out of range", id))
	}
	return g.tasks[id]
}

// Tasks returns all tasks in ID order. The slice must not be modified.
func (g *Graph) Tasks() []Task { return g.tasks }

// Succ returns the outgoing edges of id (Γ+); the slice must not be modified.
func (g *Graph) Succ(id TaskID) []Edge { return g.out[id] }

// Pred returns the incoming edges of id (Γ−); the slice must not be modified.
func (g *Graph) Pred(id TaskID) []Edge { return g.in[id] }

// OutDegree returns |Γ+(id)|.
func (g *Graph) OutDegree(id TaskID) int { return len(g.out[id]) }

// InDegree returns |Γ−(id)|.
func (g *Graph) InDegree(id TaskID) int { return len(g.in[id]) }

// Entries returns the tasks without predecessors, in ID order.
func (g *Graph) Entries() []TaskID {
	var es []TaskID
	for i := range g.tasks {
		if len(g.in[i]) == 0 {
			es = append(es, TaskID(i))
		}
	}
	return es
}

// Exits returns the tasks without successors, in ID order.
func (g *Graph) Exits() []TaskID {
	var xs []TaskID
	for i := range g.tasks {
		if len(g.out[i]) == 0 {
			xs = append(xs, TaskID(i))
		}
	}
	return xs
}

// ErrCyclic is returned when an operation requires acyclicity and the graph
// contains a cycle.
var ErrCyclic = errors.New("dag: graph contains a cycle")

// TopoOrder returns the tasks in a deterministic topological order (Kahn's
// algorithm, smallest ID first among ready tasks). It returns ErrCyclic if
// the graph has a cycle.
func (g *Graph) TopoOrder() ([]TaskID, error) {
	n := len(g.tasks)
	indeg := make([]int, n)
	for i := range g.tasks {
		indeg[i] = len(g.in[i])
	}
	// A simple ordered ready set keeps the output deterministic; n is small
	// (the paper's graphs have ≤150 tasks) so O(n²) worst case is fine.
	order := make([]TaskID, 0, n)
	ready := make([]TaskID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, TaskID(i))
		}
	}
	for len(ready) > 0 {
		// Pop the smallest ID.
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[best] {
				best = i
			}
		}
		t := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, t)
		for _, e := range g.out[t] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCyclic
	}
	return order, nil
}

// Validate checks structural soundness: acyclicity, positive work, and
// non-negative volumes (the latter two hold by construction; Validate
// re-checks them to guard hand-built graphs in tests).
func (g *Graph) Validate() error {
	if len(g.tasks) == 0 {
		return errors.New("dag: empty graph")
	}
	for _, t := range g.tasks {
		if t.Work <= 0 {
			return fmt.Errorf("dag: task %d has non-positive work", t.ID)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Reverse returns a new graph with every edge reversed; task IDs, names and
// weights are preserved. R-LTF runs the forward machinery on the reversal.
func (g *Graph) Reverse() *Graph {
	r := New(g.name + "^R")
	for _, t := range g.tasks {
		r.AddTask(t.Name, t.Work)
	}
	for i := range g.tasks {
		for _, e := range g.out[i] {
			r.MustAddEdge(e.To, e.From, e.Volume)
		}
	}
	return r
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.name)
	for _, t := range g.tasks {
		c.AddTask(t.Name, t.Work)
	}
	for i := range g.tasks {
		for _, e := range g.out[i] {
			c.MustAddEdge(e.From, e.To, e.Volume)
		}
	}
	return c
}

// TotalWork returns Σ_t E(t).
func (g *Graph) TotalWork() float64 {
	sum := 0.0
	for _, t := range g.tasks {
		sum += t.Work
	}
	return sum
}

// TotalVolume returns Σ_e volume(e).
func (g *Graph) TotalVolume() float64 {
	sum := 0.0
	for i := range g.tasks {
		for _, e := range g.out[i] {
			sum += e.Volume
		}
	}
	return sum
}

// ScaleWork multiplies every task weight by f (> 0). Used by the granularity
// calibration in the workload generators.
func (g *Graph) ScaleWork(f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("dag: non-positive work scale %v", f))
	}
	for i := range g.tasks {
		g.tasks[i].Work *= f
	}
}

// ScaleVolume multiplies every edge volume by f (≥ 0).
func (g *Graph) ScaleVolume(f float64) {
	if f < 0 {
		panic(fmt.Sprintf("dag: negative volume scale %v", f))
	}
	for i := range g.tasks {
		for j := range g.out[i] {
			g.out[i][j].Volume *= f
		}
	}
	for i := range g.tasks {
		for j := range g.in[i] {
			g.in[i][j].Volume *= f
		}
	}
}
