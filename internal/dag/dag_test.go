package dag

import (
	"strings"
	"testing"
)

// diamond builds t0→{t1,t2}→t3 with unit volumes.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 2)
	c := g.AddTask("c", 3)
	d := g.AddTask("d", 4)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(a, c, 1)
	g.MustAddEdge(b, d, 1)
	g.MustAddEdge(c, d, 1)
	return g
}

func chainGraph(n int) *Graph {
	g := New("chain")
	prev := g.AddTask("t0", 1)
	for i := 1; i < n; i++ {
		cur := g.AddTask("t", 1)
		g.MustAddEdge(prev, cur, 1)
		prev = cur
	}
	return g
}

func TestAddTaskAssignsDenseIDs(t *testing.T) {
	g := New("g")
	for i := 0; i < 5; i++ {
		if id := g.AddTask("x", 1); int(id) != i {
			t.Fatalf("task %d got ID %d", i, id)
		}
	}
	if g.NumTasks() != 5 {
		t.Fatalf("NumTasks = %d", g.NumTasks())
	}
}

func TestAddTaskRejectsNonPositiveWork(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("g").AddTask("bad", 0)
}

func TestAddEdgeValidation(t *testing.T) {
	g := New("g")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	if err := g.AddEdge(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, b, 1); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if err := g.AddEdge(a, a, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(a, TaskID(99), 1); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if err := g.AddEdge(a, b, -1); err == nil {
		t.Fatal("negative volume accepted")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
}

func TestEntriesExits(t *testing.T) {
	g := diamond(t)
	if es := g.Entries(); len(es) != 1 || es[0] != 0 {
		t.Fatalf("Entries = %v", es)
	}
	if xs := g.Exits(); len(xs) != 1 || xs[0] != 3 {
		t.Fatalf("Exits = %v", xs)
	}
}

func TestDegrees(t *testing.T) {
	g := diamond(t)
	if g.OutDegree(0) != 2 || g.InDegree(0) != 0 {
		t.Fatal("degrees of entry wrong")
	}
	if g.OutDegree(3) != 0 || g.InDegree(3) != 2 {
		t.Fatal("degrees of exit wrong")
	}
}

func TestTopoOrderValid(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[TaskID]int)
	for i, id := range order {
		pos[id] = i
	}
	for i := range g.Tasks() {
		for _, e := range g.Succ(TaskID(i)) {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("edge (%d,%d) violates topo order %v", e.From, e.To, order)
			}
		}
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	g := diamond(t)
	o1, _ := g.TopoOrder()
	o2, _ := g.TopoOrder()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("topo order not deterministic")
		}
	}
}

func TestCycleDetected(t *testing.T) {
	g := New("cyc")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, c, 1)
	g.MustAddEdge(c, a, 1)
	if _, err := g.TopoOrder(); err != ErrCyclic {
		t.Fatalf("expected ErrCyclic, got %v", err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted cyclic graph")
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := New("e").Validate(); err == nil {
		t.Fatal("Validate accepted empty graph")
	}
}

func TestReversePreservesWeights(t *testing.T) {
	g := diamond(t)
	r := g.Reverse()
	if r.NumTasks() != g.NumTasks() || r.NumEdges() != g.NumEdges() {
		t.Fatal("reverse changed sizes")
	}
	// Edge (0,1) must become (1,0).
	found := false
	for _, e := range r.Succ(1) {
		if e.To == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("reversed edge missing")
	}
	if r.Task(2).Work != 3 {
		t.Fatalf("work not preserved: %v", r.Task(2).Work)
	}
	// Entries and exits swap.
	if es := r.Entries(); len(es) != 1 || es[0] != 3 {
		t.Fatalf("reverse entries = %v", es)
	}
}

func TestReverseTwiceIsIdentity(t *testing.T) {
	g := diamond(t)
	rr := g.Reverse().Reverse()
	if rr.NumEdges() != g.NumEdges() {
		t.Fatal("double reverse changed edge count")
	}
	for i := range g.Tasks() {
		if len(rr.Succ(TaskID(i))) != len(g.Succ(TaskID(i))) {
			t.Fatalf("out-degree of %d changed", i)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.AddTask("extra", 1)
	if g.NumTasks() == c.NumTasks() {
		t.Fatal("clone not independent")
	}
}

func TestTotals(t *testing.T) {
	g := diamond(t)
	if got := g.TotalWork(); got != 10 {
		t.Fatalf("TotalWork = %v", got)
	}
	if got := g.TotalVolume(); got != 4 {
		t.Fatalf("TotalVolume = %v", got)
	}
}

func TestScaleWork(t *testing.T) {
	g := diamond(t)
	g.ScaleWork(2)
	if got := g.TotalWork(); got != 20 {
		t.Fatalf("TotalWork after scale = %v", got)
	}
}

func TestScaleVolumeBothAdjacencies(t *testing.T) {
	g := diamond(t)
	g.ScaleVolume(3)
	if got := g.TotalVolume(); got != 12 {
		t.Fatalf("TotalVolume = %v", got)
	}
	// in-adjacency must agree with out-adjacency
	for i := range g.Tasks() {
		for _, e := range g.Pred(TaskID(i)) {
			if e.Volume != 3 {
				t.Fatalf("pred edge volume %v, want 3", e.Volume)
			}
		}
	}
}

func TestTopLevels(t *testing.T) {
	g := diamond(t)
	tl := g.TopLevels(UnitNode, UnitEdge)
	// a: 0; b: a(1)+edge(1)=2; c: 2; d: max(0+1+1 + b(2)+1 ...) —
	// d: max(tl[b]+2+1, tl[c]+3+1) = max(2+3, 2+4) = 6.
	want := []float64{0, 2, 2, 6}
	for i, w := range want {
		if tl[i] != w {
			t.Fatalf("tl[%d] = %v, want %v (all %v)", i, tl[i], w, tl)
		}
	}
}

func TestBottomLevels(t *testing.T) {
	g := diamond(t)
	bl := g.BottomLevels(UnitNode, UnitEdge)
	// d: 4 (exit = own weight); b: 2+1+4 = 7; c: 3+1+4 = 8; a: 1+1+8 = 10.
	want := []float64{10, 7, 8, 4}
	for i, w := range want {
		if bl[i] != w {
			t.Fatalf("bl[%d] = %v, want %v (all %v)", i, bl[i], w, bl)
		}
	}
}

func TestPrioritiesCriticalPath(t *testing.T) {
	g := diamond(t)
	pr := g.Priorities(UnitNode, UnitEdge)
	cp := g.CriticalPathLength(UnitNode, UnitEdge)
	if cp != 10 {
		t.Fatalf("critical path = %v, want 10", cp)
	}
	// Tasks on the critical path (a, c, d) have priority == cp.
	for _, i := range []int{0, 2, 3} {
		if pr[i] != cp {
			t.Fatalf("priority[%d] = %v, want %v", i, pr[i], cp)
		}
	}
	if pr[1] >= cp {
		t.Fatalf("off-critical task priority %v should be < %v", pr[1], cp)
	}
}

func TestLevelsCustomWeights(t *testing.T) {
	g := diamond(t)
	halfSpeed := func(tk Task) float64 { return tk.Work / 0.5 }
	bl := g.BottomLevels(halfSpeed, UnitEdge)
	if bl[3] != 8 {
		t.Fatalf("bl[3] = %v, want 8", bl[3])
	}
}

func TestDepth(t *testing.T) {
	if d := diamond(t).Depth(); d != 3 {
		t.Fatalf("diamond depth = %d, want 3", d)
	}
	if d := chainGraph(7).Depth(); d != 7 {
		t.Fatalf("chain depth = %d, want 7", d)
	}
	g := New("single")
	g.AddTask("only", 1)
	if d := g.Depth(); d != 1 {
		t.Fatalf("single depth = %d, want 1", d)
	}
}

func TestWidthDiamond(t *testing.T) {
	if w := diamond(t).Width(); w != 2 {
		t.Fatalf("diamond width = %d, want 2", w)
	}
}

func TestWidthChain(t *testing.T) {
	if w := chainGraph(9).Width(); w != 1 {
		t.Fatalf("chain width = %d, want 1", w)
	}
}

func TestWidthIndependentTasks(t *testing.T) {
	g := New("anti")
	for i := 0; i < 6; i++ {
		g.AddTask("t", 1)
	}
	if w := g.Width(); w != 6 {
		t.Fatalf("independent-set width = %d, want 6", w)
	}
}

func TestWidthForkJoinLevels(t *testing.T) {
	// entry → 5 parallel → exit: width 5.
	g := New("fj")
	e := g.AddTask("e", 1)
	x := g.AddTask("x", 1)
	for i := 0; i < 5; i++ {
		m := g.AddTask("m", 1)
		g.MustAddEdge(e, m, 1)
		g.MustAddEdge(m, x, 1)
	}
	if w := g.Width(); w != 5 {
		t.Fatalf("fork-join width = %d, want 5", w)
	}
	lv := g.AntichainAtLevels()
	if lv[1] != 5 {
		t.Fatalf("level profile = %v", lv)
	}
}

func TestWidthCrossLevelAntichain(t *testing.T) {
	// a→b, c independent: antichain {b?,...}: a<b; c incomparable to both.
	// width = 2 ({a,c} or {b,c}).
	g := New("x")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.AddTask("c", 1)
	g.MustAddEdge(a, b, 1)
	if w := g.Width(); w != 2 {
		t.Fatalf("width = %d, want 2", w)
	}
}

func TestWidthEmpty(t *testing.T) {
	if w := New("e").Width(); w != 0 {
		t.Fatalf("empty width = %d", w)
	}
}

func TestSeriesParallelPositive(t *testing.T) {
	cases := []*Graph{
		diamond(t),
		chainGraph(5),
	}
	// fork-join
	g := New("fj")
	e := g.AddTask("e", 1)
	x := g.AddTask("x", 1)
	for i := 0; i < 3; i++ {
		m := g.AddTask("m", 1)
		g.MustAddEdge(e, m, 1)
		g.MustAddEdge(m, x, 1)
	}
	cases = append(cases, g)
	// single task
	s := New("s")
	s.AddTask("only", 1)
	cases = append(cases, s)
	for _, c := range cases {
		if !c.IsSeriesParallel() {
			t.Errorf("%v should be series-parallel", c)
		}
	}
}

func TestSeriesParallelNested(t *testing.T) {
	// Series composition of two diamonds.
	g := New("nested")
	ids := make([]TaskID, 8)
	for i := range ids {
		ids[i] = g.AddTask("t", 1)
	}
	g.MustAddEdge(ids[0], ids[1], 1)
	g.MustAddEdge(ids[0], ids[2], 1)
	g.MustAddEdge(ids[1], ids[3], 1)
	g.MustAddEdge(ids[2], ids[3], 1)
	g.MustAddEdge(ids[3], ids[4], 1)
	g.MustAddEdge(ids[4], ids[5], 1)
	g.MustAddEdge(ids[4], ids[6], 1)
	g.MustAddEdge(ids[5], ids[7], 1)
	g.MustAddEdge(ids[6], ids[7], 1)
	if !g.IsSeriesParallel() {
		t.Fatal("nested diamonds should be SP")
	}
}

func TestSeriesParallelNegativeN(t *testing.T) {
	// The "N" graph is the canonical non-SP witness:
	// a→c, a→d, b→d.
	g := New("N")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	d := g.AddTask("d", 1)
	g.MustAddEdge(a, c, 1)
	g.MustAddEdge(a, d, 1)
	g.MustAddEdge(b, d, 1)
	if g.IsSeriesParallel() {
		t.Fatal("N graph must not be SP")
	}
}

func TestSeriesParallelEmpty(t *testing.T) {
	if New("e").IsSeriesParallel() {
		t.Fatal("empty graph must not be SP")
	}
}

func TestSeriesParallelMultiEntryJoin(t *testing.T) {
	// Two entries joining into one task: SP under virtual-source extension.
	g := New("join")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	g.MustAddEdge(a, c, 1)
	g.MustAddEdge(b, c, 1)
	if !g.IsSeriesParallel() {
		t.Fatal("two-entry join should be SP with virtual source")
	}
}

func TestDOTOutput(t *testing.T) {
	g := diamond(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", "t0 -> t1", "t2 -> t3", "E=1"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestStringSummary(t *testing.T) {
	s := diamond(t).String()
	if !strings.Contains(s, "v=4") || !strings.Contains(s, "e=4") {
		t.Fatalf("String = %q", s)
	}
}

func TestTaskPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	diamond(t).Task(TaskID(100))
}
