package dag

// Series-parallel recognition. §4.2 of the paper claims that Rule 2 reduces
// the number of replicated communications to e(ε+1) "for any series-parallel
// graph"; the test suite checks that claim, which requires recognizing SP
// graphs. We use the classical reduction algorithm on the two-terminal
// multigraph: repeatedly merge parallel edges and contract series vertices
// (in-degree 1, out-degree 1); the graph is two-terminal series-parallel iff
// a single edge remains. Graphs with several entries (exits) are first
// joined to a virtual source (sink), the standard extension for workflow
// graphs.

// IsSeriesParallel reports whether the DAG, augmented with a virtual source
// and sink when it has multiple entries/exits, is two-terminal
// series-parallel. Empty graphs are not SP; single-task graphs are.
func (g *Graph) IsSeriesParallel() bool {
	n := len(g.tasks)
	if n == 0 {
		return false
	}
	if n == 1 {
		return true
	}
	if _, err := g.TopoOrder(); err != nil {
		return false
	}

	// Build a multigraph with edge multiplicities, plus virtual terminals.
	// Node indices: 0..n-1 real, n = source, n+1 = sink.
	src, snk := n, n+1
	total := n + 2
	adj := make([]map[int]int, total) // adj[u][w] = multiplicity
	radj := make([]map[int]int, total)
	for i := range adj {
		adj[i] = map[int]int{}
		radj[i] = map[int]int{}
	}
	addEdge := func(u, w int) {
		adj[u][w]++
		radj[w][u]++
	}
	for i := 0; i < n; i++ {
		for _, e := range g.out[i] {
			addEdge(i, int(e.To))
		}
	}
	for _, t := range g.Entries() {
		addEdge(src, int(t))
	}
	for _, t := range g.Exits() {
		addEdge(int(t), snk)
	}

	degIn := func(u int) int {
		d := 0
		for _, m := range radj[u] {
			d += m
		}
		return d
	}
	degOut := func(u int) int {
		d := 0
		for _, m := range adj[u] {
			d += m
		}
		return d
	}

	// Work queue of candidate series vertices.
	queue := make([]int, 0, n)
	inQueue := make([]bool, total)
	push := func(u int) {
		if u != src && u != snk && !inQueue[u] {
			inQueue[u] = true
			queue = append(queue, u)
		}
	}
	for u := 0; u < n; u++ {
		push(u)
	}

	removed := make([]bool, total)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		if removed[u] {
			continue
		}
		if degIn(u) != 1 || degOut(u) != 1 {
			continue
		}
		// Contract: predecessor p → u → successor s becomes p → s.
		var p, s int
		for w := range radj[u] {
			p = w
		}
		for w := range adj[u] {
			s = w
		}
		if p == s {
			// Contracting would create a self-loop; not reducible here.
			continue
		}
		delete(adj[p], u)
		delete(radj[u], p)
		delete(adj[u], s)
		delete(radj[s], u)
		removed[u] = true
		adj[p][s]++ // parallel edges merge implicitly via multiplicity
		radj[s][p]++
		// p and s may have become series vertices (multiplicities collapse
		// parallel edges, reducing their degree counts only when we treat
		// multiplicity >1 as a single merged edge — do that now).
		if adj[p][s] > 1 {
			adj[p][s] = 1
			radj[s][p] = 1
		}
		push(p)
		push(s)
		// Neighbors' degrees changed.
		for w := range radj[p] {
			push(w)
		}
		for w := range adj[s] {
			push(w)
		}
	}

	// SP iff every real vertex was contracted and a single src→snk edge
	// remains.
	for u := 0; u < n; u++ {
		if !removed[u] {
			return false
		}
	}
	return len(adj[src]) == 1 && adj[src][snk] >= 1
}
