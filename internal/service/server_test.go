package service

// End-to-end service tests over real HTTP (httptest). The acceptance
// properties pinned here: N concurrent identical solves produce exactly one
// underlying solver call (coalescing proven via the solveCalls counter and
// the /metrics document), repeat problems hit the LRU cache with the hit
// ratio reported in /metrics, a full queue yields 429 with a Retry-After
// header, infeasibility yields 409 with the classified reason, and
// deadlines yield 504.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"streamsched/internal/core"
	"streamsched/internal/dag"
	"streamsched/internal/infeas"
	"streamsched/internal/obs"
	"streamsched/internal/platform"
	"streamsched/internal/randgraph"
	"streamsched/internal/schedule"
	"streamsched/internal/sim"
)

// feasibleRequest returns a small solvable problem; vary work to make
// distinct problems (distinct hashes).
func feasibleRequest(work float64) SolveRequest {
	g := randgraph.Chain(6, work, 3)
	return SolveRequest{
		Graph:    GraphDTO(g),
		Platform: PlatformDTO(platform.Homogeneous(4, 1, 10)),
		Options:  Options{Eps: 1, Period: 40},
	}
}

// infeasibleRequest returns a problem with no schedule: one slow processor
// and a task that cannot fit the period.
func infeasibleRequest() SolveRequest {
	g := dag.New("too-heavy")
	g.AddTask("t0", 100)
	return SolveRequest{
		Graph:    GraphDTO(g),
		Platform: PlatformDTO(platform.Homogeneous(1, 1, 10)),
		Options:  Options{Period: 1},
	}
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	enc, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getMetrics(t *testing.T, ts *httptest.Server) MetricsSnapshot {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// gateSolves replaces srv.solve with a version that signals entry and
// blocks until released. Returns the release function.
func gateSolves(srv *Server) (entered func() int64, release func()) {
	var mu sync.Mutex
	var count int64
	block := make(chan struct{})
	orig := srv.solve
	srv.solve = func(ctx context.Context, sv *core.Solver, g *dag.Graph, p *platform.Platform) (*schedule.Schedule, error) {
		mu.Lock()
		count++
		mu.Unlock()
		select {
		case <-block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return orig(ctx, sv, g, p)
	}
	entered = func() int64 {
		mu.Lock()
		defer mu.Unlock()
		return count
	}
	release = func() { close(block) }
	return entered, release
}

func TestSolveCoalescingSolvesOnce(t *testing.T) {
	srv := New(Config{Workers: 2})
	entered, release := gateSolves(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 8
	req := feasibleRequest(2)
	responses := make([]SolveResponse, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/solve", req)
			statuses[i] = resp.StatusCode
			json.Unmarshal(data, &responses[i])
		}(i)
	}
	// One leader entered the solver; the rest coalesce behind it. Only
	// release the gate once every follower is accounted for, so the test
	// proves coalescing rather than racing it.
	waitUntil(t, "leader to enter the solver", func() bool { return entered() >= 1 })
	waitUntil(t, "followers to coalesce", func() bool {
		return srv.m.coalesced.Load() == n-1
	})
	release()
	wg.Wait()

	var leaders, coalesced int
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d (%+v)", i, statuses[i], responses[i])
		}
		if responses[i].Schedule == nil {
			t.Fatalf("request %d: no schedule", i)
		}
		if responses[i].Coalesced {
			coalesced++
		} else if !responses[i].Cached {
			leaders++
		}
	}
	if leaders != 1 || coalesced != n-1 {
		t.Fatalf("want 1 leader and %d coalesced, got %d and %d", n-1, leaders, coalesced)
	}
	if got := entered(); got != 1 {
		t.Fatalf("underlying solver ran %d times, want exactly 1", got)
	}

	m := getMetrics(t, ts)
	if m.SolveCalls != 1 {
		t.Fatalf("/metrics solveCalls = %d, want 1", m.SolveCalls)
	}
	if m.Coalesced != n-1 {
		t.Fatalf("/metrics coalesced = %d, want %d", m.Coalesced, n-1)
	}

	// A later identical request is a cache hit, and the ratio is reported.
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached request: status %d", resp.StatusCode)
	}
	var cachedResp SolveResponse
	json.Unmarshal(data, &cachedResp)
	if !cachedResp.Cached {
		t.Fatal("repeat request not served from cache")
	}
	m = getMetrics(t, ts)
	if m.Cache.Hits < 1 || m.Cache.HitRatio <= 0 {
		t.Fatalf("cache stats not reported: %+v", m.Cache)
	}
	if got := entered(); got != 1 {
		t.Fatalf("cache hit re-solved: %d calls", got)
	}
}

func TestFullQueueRejectsWith429(t *testing.T) {
	srv := New(Config{Workers: 1, NoQueue: true, RetryAfter: 3 * time.Second})
	entered, release := gateSolves(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the only worker with problem A.
	done := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/solve", feasibleRequest(2))
		done <- resp.StatusCode
	}()
	waitUntil(t, "worker to be occupied", func() bool { return entered() == 1 })

	// A DIFFERENT problem (no coalescing possible) finds the queue full.
	enc, _ := json.Marshal(feasibleRequest(3))
	resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After header %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if ra != 3 {
		t.Fatalf("Retry-After = %d, want the configured 3s", ra)
	}

	release()
	if status := <-done; status != http.StatusOK {
		t.Fatalf("occupying request finished with %d", status)
	}
	m := getMetrics(t, ts)
	if m.Queue.Rejected != 1 {
		t.Fatalf("/metrics rejected = %d, want 1", m.Queue.Rejected)
	}
}

// TestFollowerSurvivesLeaderDeadline pins the detached-flight contract: a
// leader whose deadline expires gets its 504, but the computation keeps
// running, the follower gets its 200, and the result lands in the cache.
func TestFollowerSurvivesLeaderDeadline(t *testing.T) {
	srv := New(Config{Workers: 2})
	entered, release := gateSolves(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := feasibleRequest(2)
	leaderReq := req
	leaderReq.TimeoutMs = 50

	leaderStatus := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/solve", leaderReq)
		leaderStatus <- resp.StatusCode
	}()
	waitUntil(t, "leader flight to start", func() bool { return entered() == 1 })

	followerStatus := make(chan int, 1)
	var followerResp SolveResponse
	go func() {
		resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/solve", req)
		json.Unmarshal(data, &followerResp)
		followerStatus <- resp.StatusCode
	}()
	waitUntil(t, "follower to coalesce", func() bool { return srv.m.coalesced.Load() == 1 })

	// The leader's 50ms deadline expires while the solve is gated.
	if status := <-leaderStatus; status != http.StatusGatewayTimeout {
		t.Fatalf("leader status %d, want 504", status)
	}
	release()
	if status := <-followerStatus; status != http.StatusOK {
		t.Fatalf("follower status %d, want 200 — the leader's deadline poisoned the flight", status)
	}
	if !followerResp.Coalesced || followerResp.Schedule == nil {
		t.Fatalf("follower response malformed: %+v", followerResp)
	}
	// The abandoned-then-completed work was cached, not wasted.
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/solve", req)
	var cached SolveResponse
	json.Unmarshal(data, &cached)
	if resp.StatusCode != http.StatusOK || !cached.Cached {
		t.Fatalf("result of the abandoned flight not cached: %d %+v", resp.StatusCode, cached)
	}
	if got := entered(); got != 1 {
		t.Fatalf("solver ran %d times, want 1", got)
	}
}

// TestBatchRespectsWorkerBound pins the admission invariant: a batch fans
// out through core.Batch, but its problems queue on the shared worker
// slots — concurrent solves never exceed Workers.
func TestBatchRespectsWorkerBound(t *testing.T) {
	srv := New(Config{Workers: 2, QueueLimit: 100})
	entered, release := gateSolves(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	problems := make([]BatchProblem, 6)
	for i := range problems {
		r := feasibleRequest(float64(i + 2))
		problems[i] = BatchProblem{Graph: r.Graph, Platform: r.Platform}
	}
	done := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", BatchRequest{
			Options:  Options{Eps: 1, Period: 40},
			Problems: problems,
		})
		done <- resp.StatusCode
	}()

	waitUntil(t, "two solves to occupy the workers", func() bool { return entered() == 2 })
	// With both slots held by gated solves, no further problem may enter
	// the solver no matter how wide the batch pool fans out.
	time.Sleep(50 * time.Millisecond)
	if got := entered(); got != 2 {
		t.Fatalf("%d concurrent solves with Workers=2", got)
	}
	if in := srv.m.inFlight.Load(); in != 2 {
		t.Fatalf("inFlight gauge %d, want 2", in)
	}
	release()
	if status := <-done; status != http.StatusOK {
		t.Fatalf("batch status %d", status)
	}
	m := getMetrics(t, ts)
	if m.SolveCalls != 6 {
		t.Fatalf("solveCalls %d, want 6", m.SolveCalls)
	}
}

// TestBatchAllRejectedReturns429 pins the envelope rule: when every
// problem of a batch is rejected by admission, the batch is a 429.
func TestBatchAllRejectedReturns429(t *testing.T) {
	srv := New(Config{Workers: 1, NoQueue: true})
	entered, release := gateSolves(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the only worker.
	done := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/solve", feasibleRequest(2))
		done <- resp.StatusCode
	}()
	waitUntil(t, "worker to be occupied", func() bool { return entered() == 1 })

	var problems []BatchProblem
	for i := 0; i < 3; i++ {
		r := feasibleRequest(float64(i + 3))
		problems = append(problems, BatchProblem{Graph: r.Graph, Platform: r.Platform})
	}
	enc, _ := json.Marshal(BatchRequest{Options: Options{Eps: 1, Period: 40}, Problems: problems})
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fully rejected batch: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 batch without Retry-After")
	}
	release()
	if status := <-done; status != http.StatusOK {
		t.Fatalf("occupying request finished with %d", status)
	}
}

// TestLeaderRechecksCacheAfterClaim pins the solve-once invariant across
// the flight-handoff race: a requester that missed the cache but won its
// Claim only after a previous flight fulfilled must serve the cached
// result, not re-solve.
func TestLeaderRechecksCacheAfterClaim(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := feasibleRequest(2)
	if resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/solve", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("priming solve: %d (%s)", resp.StatusCode, data)
	}

	// Reproduce the losing side of the race directly: the cache already
	// holds the result, yet this requester claims a fresh flight (its
	// cache.Get raced ahead of the previous flight's Put).
	g, p, sv, err := buildProblem(req.Graph, req.Platform, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	hash := ProblemHash(g, p, sv)
	srv.solve = func(context.Context, *core.Solver, *dag.Graph, *platform.Platform) (*schedule.Schedule, error) {
		t.Error("re-solved a problem that was already cached")
		return nil, context.Canceled
	}
	f, leader, err := srv.claimFlight(hash)
	if err != nil {
		t.Fatal(err)
	}
	if !leader {
		t.Fatal("flight unexpectedly in progress")
	}
	srv.runFlight(hash, f, g, p, sv, obs.SpanRef{})
	out, err := f.Wait(context.Background())
	if err != nil || out.sched == nil {
		t.Fatalf("flight did not resolve from cache: %v %+v", err, out)
	}
	if m := srv.Metrics(); m.SolveCalls != 1 {
		t.Fatalf("solveCalls = %d, want 1", m.SolveCalls)
	}
}

func TestInfeasibleSolveReturns409WithReason(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/solve", infeasibleRequest())
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409 (%s)", resp.StatusCode, data)
	}
	var sr SolveResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Infeasible == nil {
		t.Fatalf("no infeasible payload: %s", data)
	}
	if sr.Infeasible.Reason != infeas.ReasonPeriodExceeded {
		t.Fatalf("reason %v, want period-exceeded", sr.Infeasible.Reason)
	}

	// Infeasibility is deterministic, hence cached: repeat hits the cache.
	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/solve", infeasibleRequest())
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("repeat status %d, want 409", resp.StatusCode)
	}
	json.Unmarshal(data, &sr)
	if !sr.Cached {
		t.Fatal("repeat infeasible request not served from cache")
	}
}

func TestSolveDeadlineReturns504(t *testing.T) {
	srv := New(Config{SolveDelay: 5 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := feasibleRequest(2)
	req.TimeoutMs = 50
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, data)
	}
}

func TestSolveRejectsMalformedRequests(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := map[string]any{
		"bad version": SolveRequest{SchemaVersion: 99, Graph: feasibleRequest(2).Graph,
			Platform: feasibleRequest(2).Platform, Options: Options{Period: 40}},
		"no period":  SolveRequest{Graph: feasibleRequest(2).Graph, Platform: feasibleRequest(2).Platform},
		"empty":      SolveRequest{},
		"bad option": func() any { r := feasibleRequest(2); r.Options.Algorithm = "hef"; return r }(),
	}
	for name, body := range cases {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/solve", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// Non-JSON body.
	resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-JSON: status %d, want 400", resp.StatusCode)
	}

	// GET on a POST route.
	getResp, err := ts.Client().Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", getResp.StatusCode)
	}
}

func TestBatchMixedProblems(t *testing.T) {
	srv := New(Config{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	feasible := feasibleRequest(2)
	infeasible := infeasibleRequest()
	req := BatchRequest{
		Options: Options{Eps: 1, Period: 40},
		Problems: []BatchProblem{
			{Graph: feasible.Graph, Platform: feasible.Platform},
			{Graph: feasible.Graph, Platform: feasible.Platform}, // duplicate → coalesces in-batch
			{Graph: infeasible.Graph, Platform: infeasible.Platform, Options: &infeasible.Options},
			{Graph: Graph{}, Platform: feasible.Platform}, // malformed → per-item error
		},
	}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(br.Results))
	}
	if br.Results[0].Schedule == nil || br.Results[0].Error != "" {
		t.Fatalf("result 0: want schedule, got %+v", br.Results[0])
	}
	if br.Results[1].Schedule == nil || !br.Results[1].Coalesced {
		t.Fatalf("result 1: want coalesced schedule, got %+v", br.Results[1])
	}
	if !bytes.Equal(br.Results[0].Schedule, br.Results[1].Schedule) {
		t.Fatal("duplicate problems returned different schedules")
	}
	if br.Results[2].Infeasible == nil {
		t.Fatalf("result 2: want infeasible, got %+v", br.Results[2])
	}
	if br.Results[3].Error == "" {
		t.Fatalf("result 3: want per-item error, got %+v", br.Results[3])
	}

	m := getMetrics(t, ts)
	// The duplicate coalesced: 2 solves (feasible + infeasible), not 3.
	if m.SolveCalls != 2 {
		t.Fatalf("solveCalls = %d, want 2", m.SolveCalls)
	}
	if m.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", m.Coalesced)
	}
}

func TestSimulateMatchesDirectEngineRuns(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	base := feasibleRequest(2)
	req := SimulateRequest{
		Graph:    base.Graph,
		Platform: base.Platform,
		Options:  base.Options,
		Scenarios: []Scenario{
			{Name: "free"},
			{Name: "sync", Synchronous: true},
			{Name: "crash", CrashProcs: []int{0}, CrashAt: 5},
			{Name: "sized", Items: 30, Warmup: 10},
		},
	}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, data)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Scenarios) != 4 {
		t.Fatalf("got %d scenario results, want 4", len(sr.Scenarios))
	}
	if sr.Summary == nil || sr.Summary.Stages <= 0 {
		t.Fatalf("missing summary: %+v", sr.Summary)
	}

	// Reproduce directly: same solver, one engine reused across scenarios.
	g, p, sv, err := buildProblem(req.Graph, req.Platform, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sv.Solve(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(sched)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range req.Scenarios {
		cfg := sim.DefaultConfig(sched)
		if sc.Items > 0 {
			cfg.Items = sc.Items
		}
		if sc.Warmup > 0 {
			cfg.Warmup = sc.Warmup
		}
		cfg.Synchronous = sc.Synchronous
		if len(sc.CrashProcs) > 0 {
			cfg.Failures = sim.FailureSpec{Procs: []platform.ProcID{0}, At: sc.CrashAt}
		}
		want, err := eng.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := sr.Scenarios[i]
		if got.Delivered != want.Delivered || got.Items != want.Items {
			t.Errorf("%s: delivered/items %d/%d, want %d/%d",
				sc.Name, got.Delivered, got.Items, want.Delivered, want.Items)
		}
		if (got.MeanLatency == nil) != (len(want.Latencies) == 0) {
			t.Errorf("%s: meanLatency nil-ness mismatch", sc.Name)
		}
		if got.MeanLatency != nil && *got.MeanLatency != want.MeanLatency {
			t.Errorf("%s: meanLatency %v, want %v", sc.Name, *got.MeanLatency, want.MeanLatency)
		}
	}

	// The simulate solve shares the /v1/solve hash space: the same problem
	// posted to /v1/solve now hits the cache.
	solveResp, solveData := postJSON(t, ts.Client(), ts.URL+"/v1/solve", base)
	if solveResp.StatusCode != http.StatusOK {
		t.Fatalf("solve after simulate: %d", solveResp.StatusCode)
	}
	var cached SolveResponse
	json.Unmarshal(solveData, &cached)
	if !cached.Cached {
		t.Fatal("solve after simulate missed the shared cache")
	}
}

func TestSimulateValidatesCrashProcs(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	base := feasibleRequest(2)
	req := SimulateRequest{
		Graph: base.Graph, Platform: base.Platform, Options: base.Options,
		Scenarios: []Scenario{{CrashProcs: []int{99}}},
	}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, data)
	}
}

func TestHealthz(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("status field %v", body["status"])
	}
}

func TestCacheEvictionIsBounded(t *testing.T) {
	srv := New(Config{CacheEntries: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 10; i++ {
		resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/solve", feasibleRequest(float64(i+1)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d (%s)", i, resp.StatusCode, data)
		}
	}
	m := getMetrics(t, ts)
	if m.Cache.Entries > 4 {
		t.Fatalf("cache grew to %d entries, capacity 4", m.Cache.Entries)
	}
	if m.Cache.Capacity != 4 {
		t.Fatalf("capacity reported as %d", m.Cache.Capacity)
	}
}

func TestLRUCacheSemantics(t *testing.T) {
	c := newLRUCache(2)
	o := func(detail string) outcome {
		return outcome{infeas: infeas.New(infeas.ReasonUnknown, 0, detail)}
	}
	c.Put("a", o("a"))
	c.Put("b", o("b"))
	if _, ok := c.Get("a"); !ok { // refresh a → b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", o("c")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		out, ok := c.Get(k)
		if !ok || out.infeas.Detail != k {
			t.Fatalf("%s lost or corrupted", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1}, {time.Millisecond, 1}, {time.Second, 1}, {1500 * time.Millisecond, 2}, {3 * time.Second, 3},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestMetricsLatencyPercentiles(t *testing.T) {
	var r latencyRing
	for i := 1; i <= 100; i++ {
		r.observe(float64(i))
	}
	cnt, p50, p90, p99, max := r.snapshot()
	if cnt != 100 || max != 100 {
		t.Fatalf("cnt=%d max=%v", cnt, max)
	}
	if p50 < 45 || p50 > 55 || p90 < 85 || p90 > 95 || p99 < 95 || p99 > 100 {
		t.Fatalf("percentiles off: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
}

func ExampleProblemHash() {
	g := randgraph.Chain(3, 1, 1)
	p := platform.Homogeneous(2, 1, 10)
	sv, _ := core.NewSolver(core.WithPeriod(10))
	h := ProblemHash(g, p, sv)
	fmt.Println(len(h))
	// Output: 64
}
