package service

// Request metrics, exposed as expvar-style JSON on GET /metrics. Counters
// are lock-free atomics; request latencies go into a bounded ring whose
// percentiles are computed on scrape (the ring holds the most recent
// observations — a windowed view, which is what an operator watching a
// live service wants).

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamsched/internal/obs"
)

// latencyRingSize bounds the latency window. 4096 recent requests give
// stable p99 estimates without unbounded memory.
const latencyRingSize = 4096

type latencyRing struct {
	mu   sync.Mutex
	buf  [latencyRingSize]float64 // milliseconds
	n    int                      // filled entries, ≤ len(buf)
	next int                      // write cursor
	cnt  int64                    // total observations ever
}

func (r *latencyRing) observe(ms float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = ms
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.cnt++
}

// snapshot returns (count, p50, p90, p99, max); count is all-time, the
// percentiles and the max describe the recent window only — an operator
// watching the live gauge wants current behaviour, not a high-water mark
// pinned by one cold start.
func (r *latencyRing) snapshot() (int64, float64, float64, float64, float64) {
	r.mu.Lock()
	cnt, n := r.cnt, r.n
	window := make([]float64, n)
	copy(window, r.buf[:n])
	r.mu.Unlock()
	if n == 0 {
		return cnt, 0, 0, 0, 0
	}
	sort.Float64s(window)
	q := func(p float64) float64 {
		i := int(p * float64(n-1))
		return window[i]
	}
	return cnt, q(0.50), q(0.90), q(0.99), window[n-1]
}

// metrics is the server's counter set.
type metrics struct {
	start time.Time

	// Per-endpoint request counts.
	reqSolve, reqBatch, reqReplan, reqSimulate, reqHealthz, reqMetrics atomic.Int64
	reqDebug                                                           atomic.Int64

	// Response counts by HTTP status.
	respMu sync.Mutex
	resp   map[int]int64

	// Work counters.
	solveCalls  atomic.Int64 // underlying solver invocations
	simRuns     atomic.Int64 // scenario simulations executed
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	coalesced   atomic.Int64 // requests that piggybacked on a flight
	rejected    atomic.Int64 // 429s issued by admission

	// Robustness counters (DESIGN.md §11).
	panics           atomic.Int64 // flight panics recovered to 500s
	snapshotWrites   atomic.Int64 // cache spills committed to disk
	snapshotReplayed atomic.Int64 // entries restored by warm start
	snapshotSkipped  atomic.Int64 // snapshot entries rejected during replay

	// Queue gauges: pending counts admitted work units (waiting +
	// executing); inFlight counts units holding a worker slot.
	pending  atomic.Int64
	inFlight atomic.Int64

	lat latencyRing
	// stageLat holds one latency ring per pipeline stage, indexed like
	// stageNames; fed at trace finish, so the rings fill only while
	// tracing is enabled (documented in DESIGN.md §12).
	stageLat [len(stageNames)]latencyRing
}

// stageNames enumerates the pipeline stages with per-stage latency rings,
// in presentation order. The names are span names (obs span taxonomy).
var stageNames = [...]string{"decode", "hash", "cache", "coalesce", "admission", "solve", "render"}

// stageIndex maps a span name to its stageLat slot, -1 for spans that are
// not ring-tracked stages (flight, chunk, snapshot children, ...).
func stageIndex(name string) int {
	for i, s := range stageNames {
		if s == name {
			return i
		}
	}
	return -1
}

// observeTrace folds a finished trace's stage aggregate into the
// per-stage latency rings.
func (m *metrics) observeTrace(t *obs.Trace) {
	for _, st := range t.StageMillis() {
		if i := stageIndex(st.Name); i >= 0 {
			m.stageLat[i].observe(st.Ms)
		}
	}
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), resp: make(map[int]int64)}
}

func (m *metrics) countResponse(status int) {
	m.respMu.Lock()
	m.resp[status]++
	m.respMu.Unlock()
}

// CacheStats is the cache section of a metrics snapshot.
type CacheStats struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hitRatio"`
	Entries  int     `json:"entries"`
	Capacity int     `json:"capacity"`
}

// QueueStats is the admission section of a metrics snapshot.
type QueueStats struct {
	// Depth is the number of admitted work units waiting for a worker
	// slot; InFlight the number executing.
	Depth    int64 `json:"depth"`
	InFlight int64 `json:"inFlight"`
	// Capacity is Workers + QueueLimit, the admission bound.
	Capacity int   `json:"capacity"`
	Rejected int64 `json:"rejected"`
}

// LatencyStats summarizes the recent request latency window.
type LatencyStats struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// MetricsSnapshot is the GET /metrics document.
type MetricsSnapshot struct {
	UptimeSeconds float64          `json:"uptimeSeconds"`
	Requests      map[string]int64 `json:"requests"`
	Responses     map[string]int64 `json:"responses"`
	SolveCalls    int64            `json:"solveCalls"`
	SimRuns       int64            `json:"simRuns"`
	Coalesced     int64            `json:"coalesced"`
	// Robustness counters: recovered flight panics, snapshot spill/replay
	// activity, and whether the handle is draining (shutting down).
	Panics           int64        `json:"panics"`
	SnapshotWrites   int64        `json:"snapshotWrites"`
	SnapshotReplayed int64        `json:"snapshotReplayed"`
	SnapshotSkipped  int64        `json:"snapshotSkipped"`
	Draining         bool         `json:"draining"`
	Cache            CacheStats   `json:"cache"`
	Queue            QueueStats   `json:"queue"`
	LatencyMs        LatencyStats `json:"latencyMs"`
	// StagesMs holds per-pipeline-stage latency windows (decode, hash,
	// cache, coalesce, admission, solve, render). Stages are timed by the
	// tracing layer, so the map only carries stages observed since tracing
	// was enabled; it is omitted entirely when empty.
	StagesMs map[string]LatencyStats `json:"stagesMs,omitempty"`
}

// snapshot assembles the /metrics document.
func (h *Handle) snapshot() MetricsSnapshot {
	m := h.m
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	pending, inFlight := m.pending.Load(), m.inFlight.Load()
	depth := pending - inFlight
	if depth < 0 { // racy reads of two gauges; clamp for presentation
		depth = 0
	}
	cnt, p50, p90, p99, max := m.lat.snapshot()
	var stages map[string]LatencyStats
	for i := range m.stageLat {
		c, sp50, sp90, sp99, smax := m.stageLat[i].snapshot()
		if c == 0 {
			continue
		}
		if stages == nil {
			stages = make(map[string]LatencyStats, len(stageNames))
		}
		stages[stageNames[i]] = LatencyStats{Count: c, P50: sp50, P90: sp90, P99: sp99, Max: smax}
	}
	m.respMu.Lock()
	resp := make(map[string]int64, len(m.resp))
	for status, n := range m.resp {
		resp[statusKey(status)] = n
	}
	m.respMu.Unlock()
	return MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests: map[string]int64{
			"solve":    m.reqSolve.Load(),
			"batch":    m.reqBatch.Load(),
			"replan":   m.reqReplan.Load(),
			"simulate": m.reqSimulate.Load(),
			"healthz":  m.reqHealthz.Load(),
			"metrics":  m.reqMetrics.Load(),
			"debug":    m.reqDebug.Load(),
		},
		Responses:        resp,
		SolveCalls:       m.solveCalls.Load(),
		SimRuns:          m.simRuns.Load(),
		Coalesced:        m.coalesced.Load(),
		Panics:           m.panics.Load(),
		SnapshotWrites:   m.snapshotWrites.Load(),
		SnapshotReplayed: m.snapshotReplayed.Load(),
		SnapshotSkipped:  m.snapshotSkipped.Load(),
		Draining:         h.Draining(),
		Cache: CacheStats{
			Hits:     hits,
			Misses:   misses,
			HitRatio: ratio,
			Entries:  h.cache.Len(),
			Capacity: h.cfg.CacheEntries,
		},
		Queue: QueueStats{
			Depth:    depth,
			InFlight: inFlight,
			Capacity: h.cfg.Workers + h.cfg.QueueLimit,
			Rejected: m.rejected.Load(),
		},
		LatencyMs: LatencyStats{Count: cnt, P50: p50, P90: p90, P99: p99, Max: max},
		StagesMs:  stages,
	}
}

func statusKey(status int) string {
	// Small, allocation-free itoa for the handful of statuses we emit.
	if status >= 100 && status < 1000 {
		return string([]byte{byte('0' + status/100), byte('0' + status/10%10), byte('0' + status%10)})
	}
	return "other"
}
