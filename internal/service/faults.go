package service

// Fault-injection sites and per-flight panic isolation (DESIGN.md §11).
//
// Site naming convention: "service.<component>.<fault>", constants below
// so tests, the streamschedd -fault flag and the chaos smoke script spell
// them identically. Sites live on cold paths only — admission, flight
// entry, snapshot I/O — never inside //streamsched:hotpath functions
// (enforced by hotpathcheck): disarmed they cost one atomic load, and the
// hot path is budgeted tighter than that.
//
// Panic isolation. Flights run in detached goroutines, where an
// unrecovered panic kills the whole process, not just a request. Every
// flight body is therefore wrapped by recoverFault: a panic becomes an
// ErrInternalPanic-wrapped error fulfilled to the flight's waiters, the
// panics counter increments, and the admission slot is released by the
// unwound defers. The requester that led the flight reports the failure
// (HTTP 500 with the stable "internal-panic" token); coalesced followers
// do NOT inherit it — a panic is not a property of the problem, so
// followers retry the pipeline (solveProblem/replanProblem loop) and one
// of them leads a fresh flight. Retries are bounded: a deterministically
// panicking flight (site policy "always") surfaces the failure after
// maxPanicRetries rather than spinning.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"streamsched/internal/faultinject"
)

// Fault-injection site names. Arm them with faultinject.Enable (in-process
// tests) or the streamschedd -fault flag (chaos smoke).
const (
	// SiteFlightPanic panics inside a flight's computation, after the slow
	// site, so coalesced followers are already waiting when it fires.
	SiteFlightPanic = "service.flight.panic"
	// SiteFlightSlow sleeps inside a flight's computation; the policy
	// param is the duration (default 100ms).
	SiteFlightSlow = "service.flight.slow"
	// SiteAdmitReject makes admission reject the work unit as queue-full.
	SiteAdmitReject = "service.admit.reject"
	// SiteSnapshotWrite fails the cache spill.
	SiteSnapshotWrite = "service.snapshot.write"
	// SiteSnapshotReplay fails the boot-time snapshot replay.
	SiteSnapshotReplay = "service.snapshot.replay"
)

// ErrInternalPanic is the stable leading token of a recovered panic: the
// HTTP adapter maps it to 500 and clients match the "internal-panic"
// prefix, not the prose after it.
var ErrInternalPanic = errors.New("internal-panic")

// maxPanicRetries bounds how many times a coalesced follower re-enters
// the pipeline after its leader's flight panicked.
const maxPanicRetries = 2

// recoverFault converts a panic into an ErrInternalPanic error and counts
// it. Use as `defer h.recoverFault(&err)` around any code that runs in a
// detached flight goroutine.
func (h *Handle) recoverFault(err *error) {
	if r := recover(); r != nil {
		h.m.panics.Add(1)
		*err = fmt.Errorf("%w: %v", ErrInternalPanic, r)
	}
}

// injectFlightFaults honors the armed flight sites, in order: an induced
// slow solve (bounded by the flight's compute budget), then an induced
// panic.
func (h *Handle) injectFlightFaults(ctx context.Context) error {
	if faultinject.Fire(SiteFlightSlow) {
		d, err := time.ParseDuration(faultinject.Param(SiteFlightSlow))
		if err != nil || d <= 0 {
			d = 100 * time.Millisecond
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if faultinject.Fire(SiteFlightPanic) {
		panic("faultinject: " + SiteFlightPanic)
	}
	return nil
}
