package service

// The HTTP server: routing, admission and the solve/batch/simulate
// pipelines.
//
// Request lifecycle for /v1/solve:
//
//	decode → canonical hash → cache (hit: respond) → flight Claim
//	  follower: wait for the flight's outcome (no queue slot consumed)
//	  leader:   start the flight — admission (bounded queue → worker
//	            slot) → solve → cache.Put → Fulfill — in a DETACHED
//	            goroutine under the server's own compute budget
//	            (MaxTimeout), then wait on it like a follower
//
// Detaching the computation from the leader's request context is what
// makes coalescing sound: a leader whose client disconnects, or whose
// deadline is shorter than a follower's, must not poison the followers
// with its context error. Every requester honors its own deadline while
// waiting; the work itself always runs to completion (within MaxTimeout)
// and lands in the cache.
//
// Backpressure policy. Admission counts work units — individual solves
// that must actually compute (a batch's problems are each their own
// unit, so one batch cannot exceed the Workers bound by fanning out) and
// simulate sweeps. At most Workers units execute concurrently and at
// most QueueLimit more may wait; a unit beyond that bound is rejected
// immediately with 429 and a Retry-After hint — the client, not the
// server, owns the retry budget. Cache hits and coalesced followers
// bypass admission entirely: they consume no solver capacity, so
// rejecting them would only waste work already done. Per-request
// deadlines (TimeoutMs, clamped to MaxTimeout, default
// Config.DefaultTimeout) bound the requester's wait including queueing;
// an expired deadline surfaces as 504.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"streamsched/internal/core"
	"streamsched/internal/dag"
	"streamsched/internal/infeas"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
	"streamsched/internal/sim"
)

// Config parameterizes a Server. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// Workers bounds the concurrently executing work units (≤0 → GOMAXPROCS).
	Workers int
	// QueueLimit bounds the admitted-but-waiting work units (<0 → 0,
	// 0 → 4×Workers... see withDefaults; use NoQueue for a hard 0).
	QueueLimit int
	// NoQueue disables waiting entirely: beyond Workers executing units,
	// requests are rejected immediately.
	NoQueue bool
	// CacheEntries bounds the LRU result cache (≤0 → 1024).
	CacheEntries int
	// DefaultTimeout is the per-request deadline when the request does not
	// carry TimeoutMs (≤0 → 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-supplied TimeoutMs — without a ceiling a
	// client could pin worker slots indefinitely — and budgets the
	// server-side computation of each flight (≤0 → 5m, raised to
	// DefaultTimeout if configured smaller).
	MaxTimeout time.Duration
	// MaxBodyBytes caps request bodies (≤0 → 16 MiB).
	MaxBodyBytes int64
	// RetryAfter is the hint attached to 429 responses (≤0 → 1s).
	RetryAfter time.Duration
	// SolveDelay artificially delays every underlying solve. It exists for
	// load and smoke testing (deterministic 429/coalescing scenarios);
	// production configs leave it zero.
	SolveDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.NoQueue || c.QueueLimit < 0 {
		c.QueueLimit = 0
	} else if c.QueueLimit == 0 {
		c.QueueLimit = 4 * c.Workers
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxTimeout < c.DefaultTimeout {
		c.MaxTimeout = c.DefaultTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// errQueueFull is the admission rejection; it maps to 429.
var errQueueFull = errors.New("service: work queue full")

// Server implements the scheduling service. Build with New, mount
// Handler() on an http.Server.
type Server struct {
	cfg     Config
	slots   chan struct{}
	cache   *lruCache
	flights *flightGroup
	m       *metrics

	// solve performs one underlying solve; tests swap it to gate or count
	// solver entry deterministically.
	solve func(ctx context.Context, sv *core.Solver, g *dag.Graph, p *platform.Platform) (*schedule.Schedule, error)
}

// New builds a Server from cfg (zero value: sensible defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.Workers),
		cache:   newLRUCache(cfg.CacheEntries),
		flights: newFlightGroup(),
		m:       newMetrics(),
	}
	s.solve = func(ctx context.Context, sv *core.Solver, g *dag.Graph, p *platform.Platform) (*schedule.Schedule, error) {
		if cfg.SolveDelay > 0 {
			select {
			case <-time.After(cfg.SolveDelay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return sv.Solve(ctx, g, p)
	}
	return s
}

// Handler returns the service's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/simulate", s.handleSimulate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Metrics returns a point-in-time snapshot of the service counters.
func (s *Server) Metrics() MetricsSnapshot { return s.snapshot() }

// admit acquires one work unit: a place within the Workers+QueueLimit
// bound, then a worker slot. It returns the release function, errQueueFull
// when the bound is exceeded, or ctx.Err() if the deadline expires while
// queued.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	limit := int64(s.cfg.Workers + s.cfg.QueueLimit)
	if s.m.pending.Add(1) > limit {
		s.m.pending.Add(-1)
		s.m.rejected.Add(1)
		return nil, errQueueFull
	}
	select {
	case s.slots <- struct{}{}:
		s.m.inFlight.Add(1)
		return func() {
			<-s.slots
			s.m.inFlight.Add(-1)
			s.m.pending.Add(-1)
		}, nil
	case <-ctx.Done():
		s.m.pending.Add(-1)
		return nil, ctx.Err()
	}
}

// hitState records how a solve outcome was obtained.
type hitState int

const (
	hitSolved hitState = iota
	hitCache
	hitCoalesced
)

// solveProblem resolves one problem through cache → coalescing → admission
// → solver. Every returned outcome has exactly one of sched/infeas set;
// err covers everything else (queue full, deadline, solver fault). The
// caller waits under its own ctx; the underlying computation runs
// detached (see the file header).
func (s *Server) solveProblem(ctx context.Context, g *dag.Graph, p *platform.Platform, sv *core.Solver) (outcome, string, hitState, error) {
	hash := ProblemHash(g, p, sv)
	if out, ok := s.cache.Get(hash); ok {
		s.m.cacheHits.Add(1)
		return out, hash, hitCache, nil
	}
	f, leader := s.flights.Claim(hash)
	if !leader {
		s.m.coalesced.Add(1)
		out, err := f.Wait(ctx)
		return out, hash, hitCoalesced, err
	}
	s.m.cacheMisses.Add(1)
	go s.runFlight(hash, f, g, p, sv)
	out, err := f.Wait(ctx)
	return out, hash, hitSolved, err
}

// runFlight executes one claimed flight — admission, solve, cache fill,
// fulfillment — under the server's own compute budget, independent of any
// requester's context. Queue-full is decided immediately (admit rejects
// without blocking when the bound is exceeded), so a rejected flight
// resolves at once.
func (s *Server) runFlight(hash string, f *flight, g *dag.Graph, p *platform.Platform, sv *core.Solver) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.MaxTimeout)
	defer cancel()
	out, err := s.computeFlight(ctx, hash, g, p, sv)
	s.flights.Fulfill(hash, f, out, err)
}

// computeFlight resolves a led flight: one last cache check — a previous
// flight may have fulfilled and vanished between this requester's cache
// miss and its Claim, and re-solving an already-cached problem would break
// the "equal hashes solve once" invariant — then an admission-bounded
// solve whose result fills the cache.
func (s *Server) computeFlight(ctx context.Context, hash string, g *dag.Graph, p *platform.Platform, sv *core.Solver) (outcome, error) {
	if out, ok := s.cache.Get(hash); ok {
		return out, nil
	}
	out, err := s.solveAdmitted(ctx, g, p, sv)
	if err == nil {
		s.cache.Put(hash, out)
	}
	return out, err
}

// compute runs the underlying solver and folds typed infeasibility into
// the outcome (it is a result, not a failure).
func (s *Server) compute(ctx context.Context, g *dag.Graph, p *platform.Platform, sv *core.Solver) (outcome, error) {
	s.m.solveCalls.Add(1)
	sched, err := s.solve(ctx, sv, g, p)
	if err != nil {
		return foldInfeasible(err)
	}
	return renderOutcome(sched)
}

// foldInfeasible converts an infeasibility error into a cacheable outcome;
// any other error propagates.
func foldInfeasible(err error) (outcome, error) {
	var ie *infeas.Error
	if errors.As(err, &ie) {
		return outcome{infeas: ie}, nil
	}
	if errors.Is(err, infeas.ErrInfeasible) {
		return outcome{infeas: infeas.New(infeas.ReasonUnknown, 0, err.Error())}, nil
	}
	return outcome{}, err
}

// renderOutcome serializes the schedule once, at solve time; cache hits
// reuse the rendered bytes instead of re-marshalling the schedule struct.
func renderOutcome(sched *schedule.Schedule) (outcome, error) {
	raw, err := json.Marshal(sched)
	if err != nil {
		return outcome{}, fmt.Errorf("service: encoding schedule: %w", err)
	}
	return outcome{sched: sched, schedJSON: raw, summary: summarize(sched)}, nil
}

// requestContext applies the per-request deadline, clamped to MaxTimeout.
// The clamp compares in milliseconds before converting — multiplying an
// absurd TimeoutMs into a time.Duration first could wrap to an arbitrary
// small value.
func (s *Server) requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		if int64(timeoutMs) > int64(s.cfg.MaxTimeout/time.Millisecond) {
			d = s.cfg.MaxTimeout
		} else {
			d = time.Duration(timeoutMs) * time.Millisecond
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// ---- HTTP plumbing ----------------------------------------------------

// writeJSON renders the response compactly: responses are machine-read,
// and indenting would re-format the pre-rendered schedule RawMessage on
// every cache hit.
func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body) // write errors mean the client is gone
	s.m.countResponse(status)
}

// errorStatus maps a pipeline error to its HTTP status.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log counters only.
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// statusClientClosedRequest is nginx's conventional code for "client
// cancelled"; no standard constant exists.
const statusClientClosedRequest = 499

// writeError renders a pipeline error in a SolveResponse envelope,
// attaching Retry-After to 429s.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.writeJSON(w, s.errorHeaders(w, err), SolveResponse{V: Version, Error: err.Error()})
}

// writeBatchError is writeError in the BatchResponse envelope, so batch
// clients decode every /v1/batch body into one documented type.
func (s *Server) writeBatchError(w http.ResponseWriter, err error) {
	s.writeJSON(w, s.errorHeaders(w, err), BatchResponse{V: Version, Error: err.Error()})
}

// errorHeaders maps the error to its status and sets error-specific
// headers on the way.
func (s *Server) errorHeaders(w http.ResponseWriter, err error) int {
	status := errorStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(s.cfg.RetryAfter)))
	}
	return status
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// decodeRequest parses the body into dst, enforcing method and size; the
// caller checks the decoded wire version with checkVersion. It reports
// (status, error) on failure, (0, nil) on success.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, dst any) (int, error) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		return http.StatusMethodNotAllowed, fmt.Errorf("service: %s requires POST", r.URL.Path)
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge, fmt.Errorf("service: body exceeds %d bytes", tooBig.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("service: invalid JSON: %w", err)
	}
	return 0, nil
}

// checkVersion accepts the current wire version and 0 (omitted field).
func checkVersion(v int) error {
	if v != 0 && v != Version {
		return fmt.Errorf("service: unsupported wire version %d (want %d)", v, Version)
	}
	return nil
}

// buildProblem decodes one (graph, platform, options) triple.
func buildProblem(g Graph, p Platform, o Options) (*dag.Graph, *platform.Platform, *core.Solver, error) {
	dg, err := g.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	pp, err := p.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	sv, err := o.Solver()
	if err != nil {
		return nil, nil, nil, err
	}
	return dg, pp, sv, nil
}

// ---- Handlers ---------------------------------------------------------

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.m.reqSolve.Add(1)
	start := time.Now()
	defer func() { s.m.lat.observe(float64(time.Since(start)) / float64(time.Millisecond)) }()

	var req SolveRequest
	if status, err := s.decodeRequest(w, r, &req); status != 0 {
		s.writeJSON(w, status, SolveResponse{V: Version, Error: err.Error()})
		return
	}
	if err := checkVersion(req.V); err != nil {
		s.writeJSON(w, http.StatusBadRequest, SolveResponse{V: Version, Error: err.Error()})
		return
	}
	g, p, sv, err := buildProblem(req.Graph, req.Platform, req.Options)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, SolveResponse{V: Version, Error: err.Error()})
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	out, hash, state, err := s.solveProblem(ctx, g, p, sv)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := SolveResponse{
		V:         Version,
		Hash:      hash,
		Cached:    state == hitCache,
		Coalesced: state == hitCoalesced,
	}
	if out.infeas != nil {
		resp.Infeasible = out.infeas
		s.writeJSON(w, http.StatusConflict, resp)
		return
	}
	resp.Schedule = out.schedJSON
	resp.Summary = out.summary
	s.writeJSON(w, http.StatusOK, resp)
}

// batchItem tracks one problem of a batch through the pipeline.
type batchItem struct {
	g    *dag.Graph
	p    *platform.Platform
	sv   *core.Solver
	hash string

	out    outcome
	state  hitState
	err    error
	flight *flight // non-nil: wait on a foreign in-flight solve
	lead   *flight // non-nil: this batch owns the flight and must fulfill
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.m.reqBatch.Add(1)
	start := time.Now()
	defer func() { s.m.lat.observe(float64(time.Since(start)) / float64(time.Millisecond)) }()

	var req BatchRequest
	if status, err := s.decodeRequest(w, r, &req); status != 0 {
		s.writeJSON(w, status, BatchResponse{V: Version, Error: err.Error()})
		return
	}
	if err := checkVersion(req.V); err != nil {
		s.writeJSON(w, http.StatusBadRequest, BatchResponse{V: Version, Error: err.Error()})
		return
	}
	if len(req.Problems) == 0 {
		s.writeJSON(w, http.StatusBadRequest, BatchResponse{V: Version, Error: "service: batch has no problems"})
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	// Pass 1: decode and triage every problem — cache hit, foreign flight
	// to join, or a solve this batch leads.
	items := make([]batchItem, len(req.Problems))
	var leaders []int
	for i, bp := range req.Problems {
		it := &items[i]
		opts := req.Options
		if bp.Options != nil {
			opts = *bp.Options
		}
		it.g, it.p, it.sv, it.err = buildProblem(bp.Graph, bp.Platform, opts)
		if it.err != nil {
			continue
		}
		it.hash = ProblemHash(it.g, it.p, it.sv)
		if out, ok := s.cache.Get(it.hash); ok {
			s.m.cacheHits.Add(1)
			it.out, it.state = out, hitCache
			continue
		}
		f, leader := s.flights.Claim(it.hash)
		if !leader {
			s.m.coalesced.Add(1)
			it.flight, it.state = f, hitCoalesced
			continue
		}
		s.m.cacheMisses.Add(1)
		it.lead = f
		leaders = append(leaders, i)
	}

	// Pass 2: start the led solves through core.Batch, detached from this
	// request's context like any flight (file header). The pool fans the
	// problems out, but each problem admits itself as its own work unit,
	// so concurrency stays inside the global Workers bound no matter how
	// many batches are in flight: one batch's problems trickle through
	// the shared queue like any other units (at most the pool's worker
	// count pending at once), while competing traffic beyond the
	// admission bound — other batches included — is rejected per unit.
	if len(leaders) > 0 {
		go s.runBatchFlights(leaders, items)
	}

	// Pass 3: collect every non-cached problem's flight — the ones this
	// batch leads and the foreign ones — under the request's deadline.
	for i := range items {
		it := &items[i]
		if f := it.lead; f != nil {
			it.out, it.err = f.Wait(ctx)
		} else if it.flight != nil {
			it.out, it.err = it.flight.Wait(ctx)
		}
	}

	// A batch whose every problem was rejected by admission is a rejected
	// batch: surface the 429 (with Retry-After) rather than a 200 full of
	// queue-full errors. Mixed outcomes keep the 200 envelope with
	// per-problem errors — cached results must not be discarded.
	allRejected := true
	for i := range items {
		if !errors.Is(items[i].err, errQueueFull) {
			allRejected = false
			break
		}
	}
	if allRejected && len(items) > 0 {
		s.writeBatchError(w, errQueueFull)
		return
	}

	resp := BatchResponse{V: Version, Results: make([]SolveResponse, len(items))}
	for i := range items {
		it := &items[i]
		sr := SolveResponse{
			V:         Version,
			Hash:      it.hash,
			Cached:    it.state == hitCache,
			Coalesced: it.state == hitCoalesced,
		}
		switch {
		case it.err != nil:
			sr.Error = it.err.Error()
		case it.out.infeas != nil:
			sr.Infeasible = it.out.infeas
		default:
			sr.Schedule = it.out.schedJSON
			sr.Summary = it.out.summary
		}
		resp.Results[i] = sr
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// runBatchFlights executes a batch's led solves through core.Batch under
// the server's compute budget. Each problem's flight is fulfilled (and the
// cache filled) inside the pool hook, the moment its own result lands —
// a waiter coalesced onto problem #1 must not stall behind problem #100.
// The hook admits every problem individually: the pool's goroutines queue
// on the shared worker slots, they do not multiply them.
func (s *Server) runBatchFlights(leaders []int, items []batchItem) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.MaxTimeout)
	defer cancel()
	reqs := make([]core.Request, len(leaders))
	for k, i := range leaders {
		reqs[k] = core.Request{Graph: items[i].g, Platform: items[i].p}
	}
	fulfilled := make([]bool, len(leaders)) // per-lane writes, no sharing
	batch := core.Batch{Workers: s.cfg.Workers}
	results := batch.SolveFunc(ctx, reqs, func(ctx context.Context, k int, _ core.Request) (*schedule.Schedule, error) {
		it := &items[leaders[k]]
		out, err := s.computeFlight(ctx, it.hash, it.g, it.p, it.sv)
		s.flights.Fulfill(it.hash, it.lead, out, err)
		fulfilled[k] = true
		return nil, err // the flight already carries the outcome
	})
	// SolveFunc fails requests fast without running the hook once its
	// context expires; their flights must still resolve or waiters would
	// hang until their own deadlines.
	for k, i := range leaders {
		if !fulfilled[k] {
			s.flights.Fulfill(items[i].hash, items[i].lead, outcome{}, results[k].Err)
		}
	}
}

// solveAdmitted is one admission-bounded solve: acquire a work unit, run
// the solver, fold infeasibility, render.
func (s *Server) solveAdmitted(ctx context.Context, g *dag.Graph, p *platform.Platform, sv *core.Solver) (outcome, error) {
	release, err := s.admit(ctx)
	if err != nil {
		return outcome{}, err
	}
	defer release()
	return s.compute(ctx, g, p, sv)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.m.reqSimulate.Add(1)
	start := time.Now()
	defer func() { s.m.lat.observe(float64(time.Since(start)) / float64(time.Millisecond)) }()

	var req SimulateRequest
	if status, err := s.decodeRequest(w, r, &req); status != 0 {
		s.writeJSON(w, status, SimulateResponse{V: Version, Error: err.Error()})
		return
	}
	if err := checkVersion(req.V); err != nil {
		s.writeJSON(w, http.StatusBadRequest, SimulateResponse{V: Version, Error: err.Error()})
		return
	}
	g, p, sv, err := buildProblem(req.Graph, req.Platform, req.Options)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, SimulateResponse{V: Version, Error: err.Error()})
		return
	}
	scenarios := req.Scenarios
	if len(scenarios) == 0 {
		scenarios = []Scenario{{}}
	}
	for _, sc := range scenarios {
		for _, u := range sc.CrashProcs {
			if u < 0 || u >= p.NumProcs() {
				s.writeJSON(w, http.StatusBadRequest, SimulateResponse{
					V: Version, Error: fmt.Sprintf("service: crash processor %d out of range [0,%d)", u, p.NumProcs()),
				})
				return
			}
		}
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	// Solve through the shared cache/coalescing path (same hash space as
	// /v1/solve), then run the sweep as its own admitted work unit. The
	// two acquisitions are sequential, never nested, so a Workers=1 server
	// cannot deadlock against its own solve.
	out, hash, state, err := s.solveProblem(ctx, g, p, sv)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := SimulateResponse{
		V:         Version,
		Hash:      hash,
		Cached:    state == hitCache,
		Coalesced: state == hitCoalesced,
	}
	if out.infeas != nil {
		resp.Infeasible = out.infeas
		s.writeJSON(w, http.StatusConflict, resp)
		return
	}
	resp.Summary = out.summary

	release, err := s.admit(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()

	// One engine for the whole sweep: the derived schedule tables and the
	// simulation state buffers are built once and reused per scenario.
	eng, err := sim.NewEngine(out.sched)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp.Scenarios = make([]ScenarioResult, 0, len(scenarios))
	for _, sc := range scenarios {
		res, err := s.runScenario(ctx, eng, out.sched, sc)
		if err != nil {
			s.writeError(w, err)
			return
		}
		resp.Scenarios = append(resp.Scenarios, res)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// runScenario executes one scenario on the request's engine.
func (s *Server) runScenario(ctx context.Context, eng *sim.Engine, sched *schedule.Schedule, sc Scenario) (ScenarioResult, error) {
	cfg := sim.DefaultConfig(sched)
	if sc.Items > 0 {
		cfg.Items = sc.Items
	}
	if sc.Warmup > 0 {
		cfg.Warmup = sc.Warmup
	}
	cfg.Synchronous = sc.Synchronous
	if len(sc.CrashProcs) > 0 {
		procs := make([]platform.ProcID, len(sc.CrashProcs))
		for i, u := range sc.CrashProcs {
			procs[i] = platform.ProcID(u)
		}
		cfg.Failures = sim.FailureSpec{Procs: procs, At: sc.CrashAt}
	}
	s.m.simRuns.Add(1)
	res, err := eng.Run(ctx, cfg)
	if err != nil {
		return ScenarioResult{}, err
	}
	return ScenarioResult{
		Name:           sc.Name,
		MeanLatency:    jsonFloat(res.MeanLatency),
		MaxLatency:     jsonFloat(res.MaxLatency),
		AchievedPeriod: jsonFloat(res.AchievedPeriod),
		Delivered:      res.Delivered,
		Items:          res.Items,
	}, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.m.reqHealthz.Add(1)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.m.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.m.reqMetrics.Add(1)
	s.writeJSON(w, http.StatusOK, s.snapshot())
}
