package service

// The HTTP adapter: routing, wire decoding and response rendering over the
// in-process Handle (handle.go), which owns the whole pipeline — hashing,
// cache, coalescing, admission, metrics. Nothing here computes; every
// handler decodes its DTOs, pre-validates what must become a 400, delegates
// to the Handle, and renders the outcome.
//
// Backpressure policy. Admission counts work units — individual solves
// that must actually compute (a batch's problems are each their own
// unit, so one batch cannot exceed the Workers bound by fanning out),
// replans, and simulate sweeps. At most Workers units execute concurrently
// and at most QueueLimit more may wait; a unit beyond that bound is
// rejected immediately with 429 and a Retry-After hint — the client, not
// the server, owns the retry budget. Cache hits and coalesced followers
// bypass admission entirely: they consume no solver capacity, so
// rejecting them would only waste work already done. Per-request
// deadlines (TimeoutMs, clamped to MaxTimeout, default
// Config.DefaultTimeout) bound the requester's wait including queueing;
// an expired deadline surfaces as 504.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"streamsched/internal/core"
	"streamsched/internal/dag"
	"streamsched/internal/infeas"
	"streamsched/internal/obs"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
	"streamsched/internal/sim"
)

// Config parameterizes a Handle (and therefore a Server). The zero value
// is usable: every field falls back to the documented default.
type Config struct {
	// Workers bounds the concurrently executing work units (≤0 → GOMAXPROCS).
	Workers int
	// QueueLimit bounds the admitted-but-waiting work units (<0 → 0,
	// 0 → 4×Workers... see withDefaults; use NoQueue for a hard 0).
	QueueLimit int
	// NoQueue disables waiting entirely: beyond Workers executing units,
	// requests are rejected immediately.
	NoQueue bool
	// CacheEntries bounds the LRU result cache (≤0 → 1024).
	CacheEntries int
	// DefaultTimeout is the per-request deadline when the request does not
	// carry TimeoutMs (≤0 → 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-supplied TimeoutMs — without a ceiling a
	// client could pin worker slots indefinitely — and budgets the
	// server-side computation of each flight (≤0 → 5m, raised to
	// DefaultTimeout if configured smaller).
	MaxTimeout time.Duration
	// MaxBodyBytes caps request bodies (≤0 → 16 MiB).
	MaxBodyBytes int64
	// RetryAfter is the hint attached to 429 responses (≤0 → 1s).
	RetryAfter time.Duration
	// SolveDelay artificially delays every underlying solve and replan. It
	// exists for load and smoke testing (deterministic 429/coalescing
	// scenarios); production configs leave it zero.
	SolveDelay time.Duration
	// SnapshotPath enables persistent cache spill + warm start (DESIGN.md
	// §11): the LRU is written here on drain and every SnapshotInterval,
	// and replayed by WarmStart. Empty disables persistence.
	SnapshotPath string
	// SnapshotInterval is the background spill period (0 → 30s when
	// SnapshotPath is set; <0 → periodic spill disabled, drain still spills).
	SnapshotInterval time.Duration
	// Logf receives operational log lines (background snapshot failures);
	// nil discards them.
	Logf func(format string, args ...any)
	// Tracing enables per-request tracing (internal/obs, DESIGN.md §12):
	// every HTTP request gets an X-Trace-Id and a span tree, recent API
	// traces are retained for GET /debug/traces, per-stage latency rings
	// fill, and ?debug=timing adds a Server-Timing breakdown. Disabled,
	// requests pay one atomic load per instrumentation site and nothing
	// else.
	Tracing bool
	// TraceRingSize bounds the /debug/traces ring (≤0 → 128).
	TraceRingSize int
	// RequestLog, if set, receives one record per traced HTTP request
	// after its response is written (the daemon renders it as one
	// structured JSON log line). Requires Tracing; called synchronously,
	// so keep it cheap.
	RequestLog func(RequestLogEntry)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.NoQueue || c.QueueLimit < 0 {
		c.QueueLimit = 0
	} else if c.QueueLimit == 0 {
		c.QueueLimit = 4 * c.Workers
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxTimeout < c.DefaultTimeout {
		c.MaxTimeout = c.DefaultTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.SnapshotPath != "" && c.SnapshotInterval == 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the HTTP adapter over an in-process Handle. Build with New,
// mount Handler() on an http.Server. The embedded Handle is exported:
// hybrid embedders can serve HTTP and call the in-process API against the
// same cache and admission bounds.
type Server struct {
	*Handle
}

// New builds a Server (and its Handle) from cfg.
func New(cfg Config) *Server {
	return &Server{Handle: NewHandle(cfg)}
}

// Handler returns the service's HTTP routing table, wrapped in the
// last-resort panic recovery middleware: a panic that escapes a handler
// goroutine (as opposed to a detached flight, which computeFlightSafe
// isolates) becomes a 500 with the stable "internal-panic" token instead
// of net/http's connection reset.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/replan", s.handleReplan)
	mux.HandleFunc("/v1/simulate", s.handleSimulate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/traces", s.handleDebugTraces)
	// Tracing wraps OUTSIDE recovery so a panicking handler still gets its
	// trace finished (with the recovered 500 status) and logged.
	return s.traceMiddleware(s.recoverMiddleware(mux))
}

// recoverMiddleware is the handler-goroutine panic boundary. The 500 is
// best-effort: if the handler already wrote a header the rendered body is
// garbage appended to a half response, but the process survives — which is
// the point.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.m.panics.Add(1)
				s.writeJSON(w, http.StatusInternalServerError, SolveResponse{
					SchemaVersion: Version,
					Error:         fmt.Sprintf("%v: %v", ErrInternalPanic, rec),
				})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// foldInfeasible converts an infeasibility error into a cacheable outcome;
// any other error propagates.
func foldInfeasible(err error) (outcome, error) {
	var ie *infeas.Error
	if errors.As(err, &ie) {
		return outcome{infeas: ie}, nil
	}
	if errors.Is(err, infeas.ErrInfeasible) {
		return outcome{infeas: infeas.New(infeas.ReasonUnknown, 0, err.Error())}, nil
	}
	return outcome{}, err
}

// renderOutcome serializes the schedule once, at solve time; cache hits
// reuse the rendered bytes instead of re-marshalling the schedule struct.
func renderOutcome(sched *schedule.Schedule) (outcome, error) {
	raw, err := json.Marshal(sched)
	if err != nil {
		return outcome{}, fmt.Errorf("service: encoding schedule: %w", err)
	}
	return outcome{sched: sched, schedJSON: raw, summary: summarize(sched)}, nil
}

// requestContext applies the per-request deadline, clamped to MaxTimeout.
// The clamp compares in milliseconds before converting — multiplying an
// absurd TimeoutMs into a time.Duration first could wrap to an arbitrary
// small value.
func (s *Server) requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		if int64(timeoutMs) > int64(s.cfg.MaxTimeout/time.Millisecond) {
			d = s.cfg.MaxTimeout
		} else {
			d = time.Duration(timeoutMs) * time.Millisecond
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// ---- HTTP plumbing ----------------------------------------------------

// writeJSON renders the response compactly: responses are machine-read,
// and indenting would re-format the pre-rendered schedule RawMessage on
// every cache hit.
func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body) // write errors mean the client is gone
	s.m.countResponse(status)
}

// errorStatus maps a pipeline error to its HTTP status.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, core.ErrRepairBudget):
		// The caller disabled the cold fallback and the repair budget was
		// exceeded: no result under the requested policy — a conflict with
		// the request's constraints, not a server fault.
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log counters only.
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// statusClientClosedRequest is nginx's conventional code for "client
// cancelled"; no standard constant exists.
const statusClientClosedRequest = 499

// writeError renders a pipeline error in a SolveResponse envelope,
// attaching Retry-After to 429s.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.writeJSON(w, s.errorHeaders(w, err), SolveResponse{SchemaVersion: Version, Error: err.Error()})
}

// writeBatchError is writeError in the BatchResponse envelope, so batch
// clients decode every /v1/batch body into one documented type.
func (s *Server) writeBatchError(w http.ResponseWriter, err error) {
	s.writeJSON(w, s.errorHeaders(w, err), BatchResponse{SchemaVersion: Version, Error: err.Error()})
}

// writeReplanError is writeError in the ReplanResponse envelope.
func (s *Server) writeReplanError(w http.ResponseWriter, err error) {
	s.writeJSON(w, s.errorHeaders(w, err), ReplanResponse{SchemaVersion: Version, Error: err.Error()})
}

// errorHeaders maps the error to its status and sets error-specific
// headers on the way.
func (s *Server) errorHeaders(w http.ResponseWriter, err error) int {
	status := errorStatus(err)
	// 429 (queue full) and 503 (draining) both mean "come back later";
	// Retry-After carries the hint either way.
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(s.cfg.RetryAfter)))
	}
	return status
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// decodeRequest parses the body into dst, enforcing method and size; the
// caller checks the decoded schema version with checkSchemaVersion. It
// reports (status, error) on failure, (0, nil) on success.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, dst any) (int, error) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		return http.StatusMethodNotAllowed, fmt.Errorf("service: %s requires POST", r.URL.Path)
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge, fmt.Errorf("service: body exceeds %d bytes", tooBig.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("service: invalid JSON: %w", err)
	}
	return 0, nil
}

// buildProblem decodes one (graph, platform, options) triple.
func buildProblem(g Graph, p Platform, o Options) (*dag.Graph, *platform.Platform, *core.Solver, error) {
	dg, err := g.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	pp, err := p.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	sv, err := o.Solver()
	if err != nil {
		return nil, nil, nil, err
	}
	return dg, pp, sv, nil
}

// ---- Handlers ---------------------------------------------------------

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.m.reqSolve.Add(1)
	start := time.Now()
	defer func() { s.m.lat.observe(float64(time.Since(start)) / float64(time.Millisecond)) }()

	sp := obs.FromContext(r.Context())
	ds := sp.Child("decode")
	var req SolveRequest
	if status, err := s.decodeRequest(w, r, &req); status != 0 {
		ds.End()
		s.writeJSON(w, status, SolveResponse{SchemaVersion: Version, Error: err.Error()})
		return
	}
	if err := checkSchemaVersion(req.SchemaVersion); err != nil {
		ds.End()
		s.writeJSON(w, http.StatusBadRequest, SolveResponse{SchemaVersion: Version, Error: err.Error()})
		return
	}
	g, p, sv, err := buildProblem(req.Graph, req.Platform, req.Options)
	ds.End()
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, SolveResponse{SchemaVersion: Version, Error: err.Error()})
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	out, err := s.Handle.Solve(ctx, Spec{Graph: g, Platform: p, Solver: sv})
	if err != nil {
		setTraceOutcome(sp, out.Hash, "error")
		s.writeError(w, err)
		return
	}
	setTraceOutcome(sp, out.Hash, outcomeLabel(out))
	rs := sp.Child("render")
	s.writeJSON(w, solveStatus(out), solveResponse(out))
	rs.End()
}

// setTraceOutcome stamps the root span with the request's cache key prefix
// and outcome label — what the request log and /debug/traces lead with.
func setTraceOutcome(sp obs.SpanRef, hash, outcome string) {
	if !sp.Active() {
		return
	}
	if len(hash) > 12 {
		hash = hash[:12]
	}
	if hash != "" {
		sp.SetArg("hash", hash)
	}
	sp.SetArg("outcome", outcome)
}

// outcomeLabel classifies a successful Outcome for traces and logs.
func outcomeLabel(out Outcome) string {
	switch {
	case out.Infeasible != nil:
		return "infeasible"
	case out.Cached:
		return "cached"
	case out.Coalesced:
		return "coalesced"
	default:
		return "solved"
	}
}

// solveResponse renders one Outcome in the SolveResponse envelope.
func solveResponse(out Outcome) SolveResponse {
	resp := SolveResponse{
		SchemaVersion: Version,
		Hash:          out.Hash,
		Cached:        out.Cached,
		Coalesced:     out.Coalesced,
	}
	if out.Infeasible != nil {
		resp.Infeasible = out.Infeasible
		return resp
	}
	resp.Schedule = out.ScheduleJSON
	resp.Summary = out.Summary
	return resp
}

// solveStatus maps an Outcome to its HTTP status.
func solveStatus(out Outcome) int {
	if out.Infeasible != nil {
		return http.StatusConflict
	}
	return http.StatusOK
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.m.reqBatch.Add(1)
	start := time.Now()
	defer func() { s.m.lat.observe(float64(time.Since(start)) / float64(time.Millisecond)) }()

	sp := obs.FromContext(r.Context())
	ds := sp.Child("decode")
	var req BatchRequest
	if status, err := s.decodeRequest(w, r, &req); status != 0 {
		ds.End()
		s.writeJSON(w, status, BatchResponse{SchemaVersion: Version, Error: err.Error()})
		return
	}
	if err := checkSchemaVersion(req.SchemaVersion); err != nil {
		ds.End()
		s.writeJSON(w, http.StatusBadRequest, BatchResponse{SchemaVersion: Version, Error: err.Error()})
		return
	}
	if len(req.Problems) == 0 {
		ds.End()
		s.writeJSON(w, http.StatusBadRequest, BatchResponse{SchemaVersion: Version, Error: "service: batch has no problems"})
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	// Decode every problem; undecodable ones get their error slot and the
	// rest go through the in-process batch pipeline.
	decodeErrs := make([]error, len(req.Problems))
	specs := make([]Spec, 0, len(req.Problems))
	specIdx := make([]int, 0, len(req.Problems))
	for i, bp := range req.Problems {
		opts := req.Options
		if bp.Options != nil {
			opts = *bp.Options
		}
		g, p, sv, err := buildProblem(bp.Graph, bp.Platform, opts)
		if err != nil {
			decodeErrs[i] = err
			continue
		}
		specs = append(specs, Spec{Graph: g, Platform: p, Solver: sv})
		specIdx = append(specIdx, i)
	}
	ds.End()
	if sp.Active() {
		sp.SetArg("problems", len(req.Problems))
	}
	batchResults := s.Handle.SolveBatch(ctx, specs)
	results := make([]BatchResult, len(req.Problems))
	for i, err := range decodeErrs {
		if err != nil {
			results[i] = BatchResult{Err: err}
		}
	}
	for k, i := range specIdx {
		results[i] = batchResults[k]
	}

	// A batch whose every problem was rejected by admission is a rejected
	// batch: surface the 429 (with Retry-After) rather than a 200 full of
	// queue-full errors. Mixed outcomes keep the 200 envelope with
	// per-problem errors — cached results must not be discarded.
	allRejected := true
	for i := range results {
		if !errors.Is(results[i].Err, ErrQueueFull) {
			allRejected = false
			break
		}
	}
	if allRejected && len(results) > 0 {
		s.writeBatchError(w, ErrQueueFull)
		return
	}

	resp := BatchResponse{SchemaVersion: Version, Results: make([]SolveResponse, len(results))}
	for i := range results {
		if err := results[i].Err; err != nil {
			resp.Results[i] = SolveResponse{SchemaVersion: Version, Hash: results[i].Outcome.Hash, Error: err.Error()}
			continue
		}
		resp.Results[i] = solveResponse(results[i].Outcome)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReplan(w http.ResponseWriter, r *http.Request) {
	s.m.reqReplan.Add(1)
	start := time.Now()
	defer func() { s.m.lat.observe(float64(time.Since(start)) / float64(time.Millisecond)) }()

	sp := obs.FromContext(r.Context())
	ds := sp.Child("decode")
	var req ReplanRequest
	if status, err := s.decodeRequest(w, r, &req); status != 0 {
		ds.End()
		s.writeJSON(w, status, ReplanResponse{SchemaVersion: Version, Error: err.Error()})
		return
	}
	badRequest := func(err error) {
		ds.End()
		s.writeJSON(w, http.StatusBadRequest, ReplanResponse{SchemaVersion: Version, Error: err.Error()})
	}
	if err := checkSchemaVersion(req.SchemaVersion); err != nil {
		badRequest(err)
		return
	}
	g, p, sv, err := buildProblem(req.Graph, req.Platform, req.Options)
	if err != nil {
		badRequest(err)
		return
	}
	if len(req.Schedule) == 0 {
		badRequest(errors.New("service: replan requires the committed schedule"))
		return
	}
	old, err := schedule.LoadJSON(req.Schedule, g, p)
	if err != nil {
		badRequest(fmt.Errorf("service: decoding schedule: %w", err))
		return
	}
	// The committed schedule must agree with the solver options on the
	// replication degree and the period; a mismatch is a client error, not
	// a computation to admit.
	if old.Eps != req.Options.Eps || old.Period != req.Options.Period {
		badRequest(fmt.Errorf("service: options (eps=%d, period=%v) do not match the schedule (eps=%d, period=%v)",
			req.Options.Eps, req.Options.Period, old.Eps, old.Period))
		return
	}
	if req.RepairBudget < 0 {
		badRequest(fmt.Errorf("service: negative repair budget %d", req.RepairBudget))
		return
	}
	delta := req.Delta.Build()
	if _, _, err := delta.Apply(p); err != nil {
		badRequest(err)
		return
	}
	ds.End()
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	out, err := s.Handle.Replan(ctx, ReplanSpec{
		Old:            old,
		Solver:         sv,
		Delta:          delta,
		RepairBudget:   req.RepairBudget,
		NoColdFallback: req.NoColdFallback,
	})
	if err != nil {
		setTraceOutcome(sp, out.Hash, "error")
		s.writeReplanError(w, err)
		return
	}
	setTraceOutcome(sp, out.Hash, outcomeLabel(out))
	resp := ReplanResponse{
		SchemaVersion: Version,
		Hash:          out.Hash,
		Cached:        out.Cached,
		Coalesced:     out.Coalesced,
	}
	if out.Infeasible != nil {
		resp.Infeasible = out.Infeasible
		s.writeJSON(w, http.StatusConflict, resp)
		return
	}
	resp.Schedule = out.ScheduleJSON
	resp.Summary = out.Summary
	resp.Replan = replanStatsDTO(out.Replan)
	rs := sp.Child("render")
	s.writeJSON(w, http.StatusOK, resp)
	rs.End()
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.m.reqSimulate.Add(1)
	start := time.Now()
	defer func() { s.m.lat.observe(float64(time.Since(start)) / float64(time.Millisecond)) }()

	sp := obs.FromContext(r.Context())
	ds := sp.Child("decode")
	var req SimulateRequest
	if status, err := s.decodeRequest(w, r, &req); status != 0 {
		ds.End()
		s.writeJSON(w, status, SimulateResponse{SchemaVersion: Version, Error: err.Error()})
		return
	}
	if err := checkSchemaVersion(req.SchemaVersion); err != nil {
		ds.End()
		s.writeJSON(w, http.StatusBadRequest, SimulateResponse{SchemaVersion: Version, Error: err.Error()})
		return
	}
	g, p, sv, err := buildProblem(req.Graph, req.Platform, req.Options)
	ds.End()
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, SimulateResponse{SchemaVersion: Version, Error: err.Error()})
		return
	}
	scenarios := req.Scenarios
	if len(scenarios) == 0 {
		scenarios = []Scenario{{}}
	}
	for _, sc := range scenarios {
		for _, u := range sc.CrashProcs {
			if u < 0 || u >= p.NumProcs() {
				s.writeJSON(w, http.StatusBadRequest, SimulateResponse{
					SchemaVersion: Version, Error: fmt.Sprintf("service: crash processor %d out of range [0,%d)", u, p.NumProcs()),
				})
				return
			}
		}
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	if s.Draining() {
		s.writeError(w, ErrDraining)
		return
	}
	// Solve through the shared cache/coalescing path (same hash space as
	// /v1/solve), then run the sweep as its own admitted work unit. The
	// two acquisitions are sequential, never nested, so a Workers=1 server
	// cannot deadlock against its own solve.
	out, hash, state, err := s.solveProblem(ctx, g, p, sv)
	if err != nil {
		setTraceOutcome(sp, hash, "error")
		s.writeError(w, err)
		return
	}
	setTraceOutcome(sp, hash, "simulated")
	resp := SimulateResponse{
		SchemaVersion: Version,
		Hash:          hash,
		Cached:        state == hitCache,
		Coalesced:     state == hitCoalesced,
	}
	if out.infeas != nil {
		resp.Infeasible = out.infeas
		s.writeJSON(w, http.StatusConflict, resp)
		return
	}
	resp.Summary = out.summary

	sched := out.sched
	if sched == nil {
		// The outcome was restored from a snapshot, which keeps only the
		// rendered bytes (persist.go); rebuild the in-memory schedule from
		// them against this request's decoded problem — an identical hash
		// means an identical problem.
		sched, err = schedule.LoadJSON(out.schedJSON, g, p)
		if err != nil {
			s.writeError(w, err)
			return
		}
	}

	release, err := s.admitTraced(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()

	sim1 := sp.Child("simulate")
	if sim1.Active() {
		sim1.SetArg("scenarios", len(scenarios))
	}
	// One engine for the whole sweep: the derived schedule tables and the
	// simulation state buffers are built once and reused per scenario.
	eng, err := sim.NewEngine(sched)
	if err != nil {
		sim1.End()
		s.writeError(w, err)
		return
	}
	resp.Scenarios = make([]ScenarioResult, 0, len(scenarios))
	for _, sc := range scenarios {
		res, err := s.runScenario(ctx, eng, sched, sc)
		if err != nil {
			sim1.End()
			s.writeError(w, err)
			return
		}
		resp.Scenarios = append(resp.Scenarios, res)
	}
	sim1.End()
	s.writeJSON(w, http.StatusOK, resp)
}

// runScenario executes one scenario on the request's engine.
func (s *Server) runScenario(ctx context.Context, eng *sim.Engine, sched *schedule.Schedule, sc Scenario) (ScenarioResult, error) {
	cfg := sim.DefaultConfig(sched)
	if sc.Items > 0 {
		cfg.Items = sc.Items
	}
	if sc.Warmup > 0 {
		cfg.Warmup = sc.Warmup
	}
	cfg.Synchronous = sc.Synchronous
	if len(sc.CrashProcs) > 0 {
		procs := make([]platform.ProcID, len(sc.CrashProcs))
		for i, u := range sc.CrashProcs {
			procs[i] = platform.ProcID(u)
		}
		cfg.Failures = sim.FailureSpec{Procs: procs, At: sc.CrashAt}
	}
	s.m.simRuns.Add(1)
	res, err := eng.Run(ctx, cfg)
	if err != nil {
		return ScenarioResult{}, err
	}
	return ScenarioResult{
		Name:           sc.Name,
		MeanLatency:    jsonFloat(res.MeanLatency),
		MaxLatency:     jsonFloat(res.MaxLatency),
		AchievedPeriod: jsonFloat(res.AchievedPeriod),
		Delivered:      res.Delivered,
		Items:          res.Items,
	}, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.m.reqHealthz.Add(1)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.m.start).Seconds(),
	})
}

// handleReadyz is readiness, distinct from /healthz liveness: it reports
// 503 while the warm-start replay runs and again once a drain begins, so
// a load balancer routes around a booting or terminating replica that is
// nonetheless alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ready"
	switch s.life.Load() {
	case lifeStarting:
		status, state = http.StatusServiceUnavailable, "starting"
	case lifeDraining:
		status, state = http.StatusServiceUnavailable, "draining"
	}
	s.writeJSON(w, status, map[string]any{"status": state})
}

// handleMetrics serves the metrics snapshot: the expvar-style JSON
// document by default, Prometheus text exposition when the scraper asks
// for it (?format=prometheus, or an Accept header preferring text/plain —
// how Prometheus itself scrapes).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.m.reqMetrics.Add(1)
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(renderPrometheus(s.snapshot()))
		s.m.countResponse(http.StatusOK)
		return
	}
	s.writeJSON(w, http.StatusOK, s.snapshot())
}
