package service

// Singleflight coalescing: concurrent requests for the same problem hash
// solve once. The classic Do() shape is split into Claim/Fulfill so the
// batch handler can claim leadership of many hashes up front, run them
// through one core.Batch, and fulfill them as the results land.

import (
	"context"
	"sync"
)

// flight is one in-progress computation of a problem hash. done is closed
// exactly once, after out/err are written, so waiters read them without
// further synchronization.
type flight struct {
	done chan struct{}
	out  outcome
	err  error
}

// Wait blocks until the flight resolves or ctx is done. A waiter whose
// context expires abandons the flight; the leader keeps computing for the
// remaining waiters and the cache.
func (f *flight) Wait(ctx context.Context) (outcome, error) {
	select {
	case <-f.done:
		return f.out, f.err
	case <-ctx.Done():
		return outcome{}, ctx.Err()
	}
}

// flightGroup tracks the in-flight computations by problem hash.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// Claim returns the flight for key. leader reports whether the caller
// created it and therefore must Fulfill it — every Claim(leader=true) must
// be paired with exactly one Fulfill, or followers block until their
// contexts expire.
func (g *flightGroup) Claim(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// Fulfill resolves the flight and removes it from the group; later
// requests for the same key consult the cache or start a fresh flight.
func (g *flightGroup) Fulfill(key string, f *flight, out outcome, err error) {
	f.out, f.err = out, err
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
}
