package service

// Request tracing: the HTTP-layer half of the observability surface
// (DESIGN.md §12). traceMiddleware opens one obs.Trace per request,
// stamps X-Trace-Id, threads the root span through the request context
// (where handle.go and the solver stack hang their child spans), and at
// response time finishes the trace, feeds the per-stage latency rings,
// retains API traces in the /debug/traces ring, and emits the optional
// structured request log record. When tracing is disabled the middleware
// is an identity function — requests pay only the per-site atomic load
// inside obs.FromContext.

import (
	"net/http"
	"strings"

	"streamsched/internal/obs"
	"streamsched/internal/trace"
)

// RequestLogEntry is one traced HTTP request, delivered to
// Config.RequestLog after the response is written. The daemon renders it
// as a single structured JSON log line.
type RequestLogEntry struct {
	TraceID    string             `json:"traceId"`
	Method     string             `json:"method"`
	Path       string             `json:"path"`
	Status     int                `json:"status"`
	Hash       string             `json:"hash,omitempty"`    // canonical problem hash prefix, when known
	Outcome    string             `json:"outcome,omitempty"` // cached | coalesced | solved | infeasible | error | ...
	DurationMs float64            `json:"durationMs"`
	Stages     map[string]float64 `json:"stages,omitempty"` // per-stage milliseconds
}

// traceMiddleware wraps the routing table with per-request tracing. It
// sits OUTSIDE the recovery middleware so a panicking handler still gets
// its trace finished — with the 500 the recovery layer writes — and
// logged.
func (s *Server) traceMiddleware(next http.Handler) http.Handler {
	if s.traces == nil { // tracing disabled: identity, zero overhead
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(r.URL.Path)
		// Stamp the ID eagerly, before the handler writes the header, so
		// every response — including errors — carries it.
		w.Header().Set("X-Trace-Id", tr.ID)
		tw := &timingWriter{ResponseWriter: w, tr: tr, wantTiming: r.URL.Query().Get("debug") == "timing"}
		next.ServeHTTP(tw, r.WithContext(obs.ContextWith(r.Context(), tr.Root())))
		status := tw.status
		if status == 0 { // handler never wrote a header; net/http defaults to 200
			status = http.StatusOK
		}
		tr.Finish(status)
		s.m.observeTrace(tr)
		// Only API traces are worth retaining: /healthz, /metrics and
		// /debug/traces itself would flood the ring with no-op trees.
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			s.traces.Add(tr)
		}
		if s.cfg.RequestLog != nil {
			s.cfg.RequestLog(requestLogEntry(tr, r, status))
		}
	})
}

// requestLogEntry assembles the structured log record for a finished
// trace. Hash and outcome are root-span args stamped by the handlers
// (setTraceOutcome).
func requestLogEntry(tr *obs.Trace, r *http.Request, status int) RequestLogEntry {
	e := RequestLogEntry{
		TraceID:    tr.ID,
		Method:     r.Method,
		Path:       r.URL.Path,
		Status:     status,
		DurationMs: tr.DurationMs(),
	}
	if h, ok := tr.RootArg("hash").(string); ok {
		e.Hash = h
	}
	if o, ok := tr.RootArg("outcome").(string); ok {
		e.Outcome = o
	}
	if st := tr.StageMillis(); len(st) > 0 {
		e.Stages = make(map[string]float64, len(st))
		for _, s := range st {
			e.Stages[s.Name] += s.Ms
		}
	}
	return e
}

// timingWriter captures the response status for the trace and, when the
// client asked for ?debug=timing, injects a Server-Timing header with the
// per-stage breakdown at the moment the header is flushed (the last point
// a header can still be set).
type timingWriter struct {
	http.ResponseWriter
	tr         *obs.Trace
	wantTiming bool
	status     int
}

func (w *timingWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
		if w.wantTiming {
			if st := w.tr.ServerTiming(); st != "" {
				w.Header().Set("Server-Timing", st)
			}
		}
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *timingWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// handleDebugTraces serves the recent-trace ring: the span-tree JSON by
// default, the Chrome trace-event form (load into chrome://tracing or
// Perfetto) with ?format=chrome. 404 when tracing is disabled — the
// endpoint existing-but-empty would read as "no traffic", which is wrong.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	s.m.reqDebug.Add(1)
	if r.Method != http.MethodGet {
		s.writeJSON(w, http.StatusMethodNotAllowed, map[string]any{"error": "service: GET only"})
		return
	}
	if s.traces == nil {
		s.writeJSON(w, http.StatusNotFound, map[string]any{"error": "service: tracing disabled"})
		return
	}
	recent := s.traces.Snapshot()
	if r.URL.Query().Get("format") == "chrome" {
		var spans []trace.Span
		for _, t := range recent {
			spans = append(spans, t.ChromeSpans()...)
		}
		raw, err := trace.ChromeJSON(spans)
		if err != nil {
			s.writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(raw)
		s.m.countResponse(http.StatusOK)
		return
	}
	docs := make([]obs.TraceJSON, len(recent))
	for i, t := range recent {
		docs[i] = t.Snapshot()
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"count": len(docs), "traces": docs})
}
