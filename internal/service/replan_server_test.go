package service

// /v1/replan end-to-end tests. The acceptance properties pinned here:
// a replan round-trips (200 with a schedule, a summary and the repair
// statistics; the repeat is a cache hit), malformed requests — unsupported
// schema version, options/schedule mismatch, invalid delta, negative
// budget — are 400s decided before any work is admitted, an exceeded
// budget with the cold fallback disabled is a 409, N concurrent identical
// replans coalesce into exactly one underlying computation, and replan
// and solve traffic share the cache without poisoning each other's
// entries (disjoint hash key spaces).

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"streamsched/internal/core"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// replanRequest builds a valid /v1/replan payload: the feasibleRequest
// problem solved in-process, plus delta.
func replanRequest(t *testing.T, work float64, delta PlatformDelta) ReplanRequest {
	t.Helper()
	base := feasibleRequest(work)
	g, p, sv, err := buildProblem(base.Graph, base.Platform, base.Options)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sv.Solve(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(sched)
	if err != nil {
		t.Fatal(err)
	}
	return ReplanRequest{
		Graph:    base.Graph,
		Platform: base.Platform,
		Options:  base.Options,
		Schedule: raw,
		Delta:    delta,
	}
}

func TestReplanEndToEnd(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := replanRequest(t, 2, PlatformDelta{Speed: []ProcSpeed{{Proc: 1, Speed: 2}}})
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/replan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, data)
	}
	var rr ReplanResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Schedule == nil || rr.Summary == nil || rr.Replan == nil {
		t.Fatalf("incomplete response: %s", data)
	}
	if rr.Cached || rr.Coalesced {
		t.Fatalf("first replan reported cached=%v coalesced=%v", rr.Cached, rr.Coalesced)
	}
	if n := rr.Replan.Replayed + rr.Replan.Preserved + rr.Replan.Repaired; !rr.Replan.ColdSolve && n == 0 {
		t.Fatalf("repair stats cover no tasks: %+v", rr.Replan)
	}

	// The repaired schedule decodes and validates against the post-delta
	// platform.
	g, p, _, err := buildProblem(req.Graph, req.Platform, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	newP, _, err := req.Delta.Build().Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := schedule.LoadJSON(rr.Schedule, g, newP)
	if err != nil {
		t.Fatalf("decoding repaired schedule: %v", err)
	}
	if err := repaired.Validate(); err != nil {
		t.Fatalf("repaired schedule invalid: %v", err)
	}

	// The repeat is a cache hit with the same stats.
	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/replan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	var rr2 ReplanResponse
	json.Unmarshal(data, &rr2)
	if !rr2.Cached {
		t.Fatal("repeat replan not served from cache")
	}
	if rr2.Replan == nil || *rr2.Replan != *rr.Replan {
		t.Fatalf("cached stats %+v differ from original %+v", rr2.Replan, rr.Replan)
	}
	if m := getMetrics(t, ts); m.Requests["replan"] != 2 {
		t.Fatalf("/metrics replan requests = %d, want 2", m.Requests["replan"])
	}
}

func TestReplanRejectsMalformedRequests(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	good := replanRequest(t, 2, PlatformDelta{Speed: []ProcSpeed{{Proc: 1, Speed: 2}}})
	cases := map[string]func() ReplanRequest{
		"bad version": func() ReplanRequest { r := good; r.SchemaVersion = 99; return r },
		"no schedule": func() ReplanRequest { r := good; r.Schedule = nil; return r },
		"options mismatch": func() ReplanRequest {
			r := good
			r.Options.Eps = 0 // schedule was solved at eps=1
			return r
		},
		"bad delta": func() ReplanRequest {
			r := good
			r.Delta = PlatformDelta{Lost: []int{99}}
			return r
		},
		"negative budget": func() ReplanRequest { r := good; r.RepairBudget = -1; return r },
	}
	for name, build := range cases {
		resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/replan", build())
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, data)
		}
		if name == "bad version" {
			var rr ReplanResponse
			json.Unmarshal(data, &rr)
			if !strings.HasPrefix(rr.Error, ReasonUnsupportedSchema) {
				t.Errorf("bad version error %q does not start with the stable token %q", rr.Error, ReasonUnsupportedSchema)
			}
		}
	}
}

// TestReplanBudgetConflict: a replan whose repair budget is exceeded with
// the cold fallback disabled is a 409 — no result exists under the
// requested policy.
func TestReplanBudgetConflict(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Measure how many search placements losing processor 0 needs.
	probe := replanRequest(t, 2, PlatformDelta{Lost: []int{0}})
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/replan", probe)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe status %d (%s)", resp.StatusCode, data)
	}
	var rr ReplanResponse
	json.Unmarshal(data, &rr)
	if rr.Replan == nil || rr.Replan.ColdSolve || rr.Replan.Repaired < 2 {
		t.Skipf("instance repaired with stats %+v; the budget test needs ≥ 2 search placements", rr.Replan)
	}

	under := probe
	under.RepairBudget = 1
	under.NoColdFallback = true
	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/replan", under)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("under-budget status %d, want 409 (%s)", resp.StatusCode, data)
	}

	// The same budget with the fallback enabled re-solves cold instead.
	fallback := probe
	fallback.RepairBudget = 1
	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/replan", fallback)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback status %d (%s)", resp.StatusCode, data)
	}
	var fr ReplanResponse
	json.Unmarshal(data, &fr)
	if fr.Replan == nil || !fr.Replan.ColdSolve {
		t.Fatalf("fallback stats %+v, want ColdSolve", fr.Replan)
	}
}

// gateReplans is gateSolves for the replan hook.
func gateReplans(srv *Server) (entered func() int64, release func()) {
	var mu sync.Mutex
	var count int64
	block := make(chan struct{})
	orig := srv.replan
	srv.replan = func(ctx context.Context, sv *core.Solver, old *schedule.Schedule, d core.Delta, opts ...core.ReplanOption) (*core.ReplanResult, error) {
		mu.Lock()
		count++
		mu.Unlock()
		select {
		case <-block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return orig(ctx, sv, old, d, opts...)
	}
	entered = func() int64 {
		mu.Lock()
		defer mu.Unlock()
		return count
	}
	release = func() { close(block) }
	return entered, release
}

func TestReplanCoalescingComputesOnce(t *testing.T) {
	srv := New(Config{Workers: 2})
	entered, release := gateReplans(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 8
	req := replanRequest(t, 2, PlatformDelta{Lost: []int{0}})
	responses := make([]ReplanResponse, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/replan", req)
			statuses[i] = resp.StatusCode
			json.Unmarshal(data, &responses[i])
		}(i)
	}
	waitUntil(t, "leader to enter the replan", func() bool { return entered() >= 1 })
	waitUntil(t, "followers to coalesce", func() bool {
		return srv.m.coalesced.Load() == n-1
	})
	release()
	wg.Wait()

	var leaders, coalesced int
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d (%+v)", i, statuses[i], responses[i])
		}
		if responses[i].Schedule == nil {
			t.Fatalf("request %d: no schedule", i)
		}
		if responses[i].Coalesced {
			coalesced++
		} else if !responses[i].Cached {
			leaders++
		}
	}
	if leaders != 1 || coalesced != n-1 {
		t.Fatalf("want 1 leader and %d coalesced, got %d and %d", n-1, leaders, coalesced)
	}
	if got := entered(); got != 1 {
		t.Fatalf("underlying replan ran %d times, want exactly 1", got)
	}
	if m := getMetrics(t, ts); m.SolveCalls != 1 {
		t.Fatalf("/metrics solveCalls = %d, want 1", m.SolveCalls)
	}
}

// TestReplanAndSolveShareCacheWithoutPoisoning races /v1/solve and
// /v1/replan over the same underlying problem and asserts neither
// contaminates the other's cache entry: the solve key and the replan key
// are distinct by construction (distinct hash magics), so the repeat of
// each is a cache hit of its own kind — the solve hit carries no repair
// stats, the replan hit does.
func TestReplanAndSolveShareCacheWithoutPoisoning(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	solveReq := feasibleRequest(2)
	replanReq := replanRequest(t, 2, PlatformDelta{Speed: []ProcSpeed{{Proc: 1, Speed: 2}}})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/solve", solveReq)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("racing solve: status %d", resp.StatusCode)
			}
		}()
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/replan", replanReq)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("racing replan: status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/solve", solveReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat solve: status %d", resp.StatusCode)
	}
	var sr SolveResponse
	json.Unmarshal(data, &sr)
	if !sr.Cached || sr.Schedule == nil {
		t.Fatalf("repeat solve not a clean cache hit: cached=%v", sr.Cached)
	}
	if sr.Hash == "" {
		t.Fatal("solve hash missing")
	}

	resp, data = postJSON(t, ts.Client(), ts.URL+"/v1/replan", replanReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat replan: status %d", resp.StatusCode)
	}
	var rr ReplanResponse
	json.Unmarshal(data, &rr)
	if !rr.Cached || rr.Schedule == nil || rr.Replan == nil {
		t.Fatalf("repeat replan not a clean cache hit: cached=%v replan=%+v", rr.Cached, rr.Replan)
	}
	if rr.Hash == sr.Hash {
		t.Fatal("replan and solve share a cache key")
	}
}

// TestHandleReplanInProcess exercises the public in-process API without
// HTTP: Solve and Replan against one Handle, sharing the cache.
func TestHandleReplanInProcess(t *testing.T) {
	h := NewHandle(Config{})
	base := feasibleRequest(2)
	g, p, sv, err := buildProblem(base.Graph, base.Platform, base.Options)
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.Solve(context.Background(), Spec{Graph: g, Platform: p, Solver: sv})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schedule == nil || out.Infeasible != nil {
		t.Fatalf("solve outcome: %+v", out)
	}

	rout, err := h.Replan(context.Background(), ReplanSpec{
		Old:    out.Schedule,
		Solver: sv,
		Delta:  core.Delta{Lost: []platform.ProcID{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rout.Schedule == nil || rout.Replan == nil {
		t.Fatalf("replan outcome: %+v", rout)
	}
	if rout.Schedule.P.NumProcs() != p.NumProcs()-1 {
		t.Fatalf("replanned platform has %d processors", rout.Schedule.P.NumProcs())
	}

	// The repeat is a cache hit; the metrics snapshot reports it.
	rout2, err := h.Replan(context.Background(), ReplanSpec{
		Old:    out.Schedule,
		Solver: sv,
		Delta:  core.Delta{Lost: []platform.ProcID{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rout2.Cached {
		t.Fatal("repeat in-process replan not served from cache")
	}
	if m := h.Metrics(); m.SolveCalls != 2 || m.Cache.Hits != 1 {
		t.Fatalf("metrics: %d solve calls, %d hits", m.SolveCalls, m.Cache.Hits)
	}

	// Validation errors surface synchronously.
	if _, err := h.Replan(context.Background(), ReplanSpec{Solver: sv}); err == nil {
		t.Fatal("nil schedule: expected error")
	}
	if _, err := h.Solve(context.Background(), Spec{}); err == nil {
		t.Fatal("empty spec: expected error")
	}
}
