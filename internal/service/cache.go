package service

// Size-bounded LRU result cache. Values are solved outcomes — either a
// schedule (with its interchange JSON rendered once at solve time, so hits
// never re-marshal the schedule struct) or a classified infeasibility;
// both are deterministic functions of the problem hash and therefore safe
// to share across requests. Non-infeasibility errors (cancellation, solver
// faults) are never cached.

import (
	"container/list"
	"sync"

	"streamsched/internal/core"
	"streamsched/internal/infeas"
	"streamsched/internal/schedule"
)

// outcome is the cacheable result of solving one problem: exactly one of
// sched and infeas is set. replan is set on replan outcomes only — the
// repair statistics are as deterministic a function of the replan hash as
// the schedule itself, so they cache alongside it.
type outcome struct {
	sched     *schedule.Schedule
	schedJSON []byte
	summary   *ScheduleSummary
	infeas    *infeas.Error
	replan    *core.RepairStats
}

// lruCache is a plain mutex-guarded LRU: a map into an access-ordered
// intrusive list. The service's hot path is Get on a warm cache — one map
// lookup and one list splice under a short critical section.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

type lruEntry struct {
	key string
	out outcome
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached outcome for key and marks it most recently used.
func (c *lruCache) Get(key string) (outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return outcome{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).out, true
}

// Put inserts (or refreshes) key, evicting the least recently used entry
// beyond capacity.
func (c *lruCache) Put(key string, out outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).out = out
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, out: out})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// entries returns the cached (key, outcome) pairs, least recently used
// first — the spill order that lets a snapshot replay reproduce the
// recency order with plain Puts (persist.go).
func (c *lruCache) entries() []lruEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]lruEntry, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, *el.Value.(*lruEntry))
	}
	return out
}

// Len reports the current entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
