package service

// Snapshot format tests: round-trip fidelity, and the forgiving-replay
// contract — truncation, bit flips and version bumps must skip entries (or
// the file), never panic and never fail a boot. FuzzSnapshotDecode extends
// the same contract to arbitrary input.

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"streamsched/internal/core"
)

// snapTestEntries solves n distinct problems plus one infeasible problem
// through a fresh handle and returns its cache entries — realistic
// outcomes with pre-rendered schedule bytes and a typed infeasibility.
func snapTestEntries(t *testing.T, n int) []lruEntry {
	t.Helper()
	h := NewHandle(Config{})
	for i := 0; i < n; i++ {
		req := feasibleRequest(float64(i + 1))
		g, p, sv, err := buildProblem(req.Graph, req.Platform, req.Options)
		if err != nil {
			t.Fatal(err)
		}
		out, err := h.Solve(context.Background(), Spec{Graph: g, Platform: p, Solver: sv})
		if err != nil {
			t.Fatal(err)
		}
		if out.Schedule == nil {
			t.Fatal("test problem unexpectedly infeasible")
		}
	}
	req := infeasibleRequest()
	g, p, sv, err := buildProblem(req.Graph, req.Platform, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.Solve(context.Background(), Spec{Graph: g, Platform: p, Solver: sv})
	if err != nil {
		t.Fatal(err)
	}
	if out.Infeasible == nil {
		t.Fatal("infeasible test problem produced a schedule")
	}
	entries := h.cache.entries()
	// Attach repair stats to one entry so the replan field round-trips too.
	entries[0].out.replan = &core.RepairStats{Replayed: 3, Preserved: 2, Repaired: 1, ColdSolve: false}
	if len(entries) != n+1 {
		t.Fatalf("cache holds %d entries, want %d", len(entries), n+1)
	}
	return entries
}

func TestSnapshotRoundTrip(t *testing.T) {
	entries := snapTestEntries(t, 3)
	data := encodeSnapshot(entries)
	decoded, skipped, err := decodeSnapshot(data)
	if err != nil || skipped != 0 {
		t.Fatalf("decode: skipped=%d err=%v", skipped, err)
	}
	if len(decoded) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(decoded), len(entries))
	}
	for i := range entries {
		if decoded[i].key != entries[i].key {
			t.Fatalf("entry %d: key %q, want %q (order must be preserved)", i, decoded[i].key, entries[i].key)
		}
		if !bytes.Equal(decoded[i].out.schedJSON, entries[i].out.schedJSON) {
			t.Fatalf("entry %d: schedule bytes differ after round trip", i)
		}
		if (decoded[i].out.infeas == nil) != (entries[i].out.infeas == nil) {
			t.Fatalf("entry %d: infeasibility lost in round trip", i)
		}
		if (decoded[i].out.replan == nil) != (entries[i].out.replan == nil) {
			t.Fatalf("entry %d: repair stats lost in round trip", i)
		}
		if decoded[i].out.replan != nil && *decoded[i].out.replan != *entries[i].out.replan {
			t.Fatalf("entry %d: repair stats %+v, want %+v", i, *decoded[i].out.replan, *entries[i].out.replan)
		}
	}
	// A decoded snapshot re-encodes to the identical bytes: nothing in the
	// format depends on in-memory state the spill drops (the schedule
	// pointer).
	relru := make([]lruEntry, len(decoded))
	for i, e := range decoded {
		relru[i] = lruEntry{key: e.key, out: e.out}
	}
	if !bytes.Equal(encodeSnapshot(relru), data) {
		t.Fatal("re-encoding a decoded snapshot changed the bytes")
	}
}

func TestSnapshotTruncationNeverPanics(t *testing.T) {
	entries := snapTestEntries(t, 2)
	data := encodeSnapshot(entries)
	for cut := 0; cut <= len(data); cut++ {
		decoded, _, err := decodeSnapshot(data[:cut])
		if err != nil && cut >= len(snapshotMagic)+4 {
			t.Fatalf("cut=%d: header error %v on a file with an intact header", cut, err)
		}
		if len(decoded) > len(entries) {
			t.Fatalf("cut=%d: decoded more entries than were written", cut)
		}
		for i, e := range decoded {
			if e.key != entries[i].key {
				t.Fatalf("cut=%d: entry %d key %q, want %q", cut, i, e.key, entries[i].key)
			}
		}
	}
}

func TestSnapshotBitFlipsSkipEntries(t *testing.T) {
	entries := snapTestEntries(t, 2)
	data := encodeSnapshot(entries)
	valid := make(map[string]bool, len(entries))
	for _, e := range entries {
		valid[e.key] = true
	}
	for pos := 0; pos < len(data); pos++ {
		for _, mask := range []byte{0x01, 0x80} {
			mut := bytes.Clone(data)
			mut[pos] ^= mask
			decoded, skipped, _ := decodeSnapshot(mut)
			// Whatever survives must be an original entry, in order; the
			// flipped region must be rejected, not misread.
			if len(decoded) == len(entries) && skipped == 0 {
				for i := range decoded {
					if decoded[i].key != entries[i].key || !bytes.Equal(decoded[i].out.schedJSON, entries[i].out.schedJSON) {
						t.Fatalf("pos=%d mask=%#x: corrupt entry accepted", pos, mask)
					}
				}
			}
			for _, e := range decoded {
				if !valid[e.key] {
					t.Fatalf("pos=%d mask=%#x: fabricated key %q decoded", pos, mask, e.key)
				}
			}
		}
	}
}

func TestSnapshotUnknownFileVersionSkipsFile(t *testing.T) {
	data := encodeSnapshot(snapTestEntries(t, 1))
	binary.LittleEndian.PutUint32(data[len(snapshotMagic):], snapshotVersion+1)
	decoded, skipped, err := decodeSnapshot(data)
	if err == nil || len(decoded) != 0 || skipped == 0 {
		t.Fatalf("version-bumped file: entries=%d skipped=%d err=%v, want header error", len(decoded), skipped, err)
	}
	if _, _, err := decodeSnapshot([]byte("not a snapshot")); err == nil {
		t.Fatal("foreign magic accepted")
	}
}

func TestSnapshotUnknownEntryVersionSkipsEntry(t *testing.T) {
	entries := snapTestEntries(t, 2)
	data := encodeSnapshot(entries)
	// Bump the first entry's version and re-checksum it, so only the
	// version check can reject it.
	off := len(snapshotMagic) + 4
	bodyLen := binary.LittleEndian.Uint32(data[off:])
	body := data[off+4 : off+4+int(bodyLen)]
	binary.LittleEndian.PutUint16(body, snapEntryVersion+1)
	binary.LittleEndian.PutUint32(data[off+4+int(bodyLen):], crc32.ChecksumIEEE(body))
	decoded, skipped, err := decodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || len(decoded) != len(entries)-1 {
		t.Fatalf("entries=%d skipped=%d, want the bumped entry skipped and the rest kept", len(decoded), skipped)
	}
	if decoded[0].key != entries[1].key {
		t.Fatalf("surviving entry %q, want %q", decoded[0].key, entries[1].key)
	}
}

func TestSnapshotReplayPreservesLRUOrder(t *testing.T) {
	entries := snapTestEntries(t, 3) // 4 entries, oldest first
	data := encodeSnapshot(entries)
	decoded, _, err := decodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying into a smaller cache must keep the most recently used
	// entries — the file is oldest-first so plain Puts evict the oldest.
	cache := newLRUCache(2)
	for _, e := range decoded {
		cache.Put(e.key, e.out)
	}
	for _, e := range entries[:2] {
		if _, ok := cache.Get(e.key); ok {
			t.Fatalf("oldest entry %q survived a capacity-2 replay", e.key)
		}
	}
	for _, e := range entries[2:] {
		if _, ok := cache.Get(e.key); !ok {
			t.Fatalf("newest entry %q evicted by a capacity-2 replay", e.key)
		}
	}
}

// FuzzSnapshotDecode pins the replay contract on arbitrary bytes: the
// decoder never panics, never fabricates oversized allocations, and an
// intact prefix of a real snapshot decodes to real entries.
func FuzzSnapshotDecode(f *testing.F) {
	h := NewHandle(Config{})
	req := feasibleRequest(2)
	g, p, sv, err := buildProblem(req.Graph, req.Platform, req.Options)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := h.Solve(context.Background(), Spec{Graph: g, Platform: p, Solver: sv}); err != nil {
		f.Fatal(err)
	}
	valid := encodeSnapshot(h.cache.entries())
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated
	bumped := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(bumped[len(snapshotMagic):], 99) // version bump
	f.Add(bumped)
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0x40 // bit flip
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(snapshotMagic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, skipped, _ := decodeSnapshot(data)
		if skipped < 0 {
			t.Fatal("negative skip count")
		}
		for _, e := range entries {
			if len(e.key) == 0 || len(e.key) > maxSnapKey {
				t.Fatalf("decoded key length %d outside (0,%d]", len(e.key), maxSnapKey)
			}
			if (len(e.out.schedJSON) == 0) == (e.out.infeas == nil) {
				t.Fatal("decoded entry violates the exactly-one-of invariant")
			}
		}
	})
}
