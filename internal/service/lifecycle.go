package service

// Handle lifecycle: warm start, readiness, graceful drain (DESIGN.md §11).
//
// The drain state machine:
//
//	starting ──WarmStart──▶ ready ──Drain──▶ draining (terminal)
//
// starting: the process is replaying the cache snapshot. Requests are
// served (the cache is merely colder than it will be) but /readyz reports
// 503 so load balancers hold traffic back. A handle built without a
// snapshot path boots straight to ready.
//
// ready: steady state; /readyz reports 200.
//
// draining: SIGTERM (or an embedder's Drain call). Admission stops —
// Solve/SolveBatch/Replan and the HTTP handlers reject new work with
// ErrDraining (503 + Retry-After) — in-flight flights run to completion
// under ctx (the daemon passes its MaxTimeout), and the cache is spilled
// only after the last flight has committed, so a drain under load loses
// zero committed entries. The flight WaitGroup and the drainMu write lock
// make the handoff airtight: a flight is registered under the read lock
// before it starts, so every flight either observes draining and is
// rejected, or is registered and therefore waited for.

import (
	"context"
	"errors"
	"time"
)

// Lifecycle states (Handle.life).
const (
	lifeStarting int32 = iota
	lifeReady
	lifeDraining
)

// ErrDraining is the admission rejection during shutdown; the HTTP
// adapter maps it to 503 with a Retry-After hint.
var ErrDraining = errors.New("service: draining, not admitting new work")

// Ready reports whether the handle has finished warm start and is not
// draining — the /readyz condition.
func (h *Handle) Ready() bool { return h.life.Load() == lifeReady }

// Draining reports whether Drain has begun.
func (h *Handle) Draining() bool { return h.life.Load() == lifeDraining }

// WarmStart replays the configured cache snapshot (persist.go), flips the
// handle ready, and starts the background snapshot ticker. It returns the
// replayed and skipped entry counts; err is advisory — corrupt or missing
// snapshots degrade to a cold start, never a failed boot. Without a
// snapshot path it only flips readiness. Call once, before or while
// serving; requests arriving during replay are served from whatever is
// already warm.
func (h *Handle) WarmStart() (replayed, skipped int, err error) {
	if h.cfg.SnapshotPath != "" {
		replayed, skipped, err = h.replaySnapshot()
		h.m.snapshotReplayed.Add(int64(replayed))
		h.m.snapshotSkipped.Add(int64(skipped))
	}
	h.life.CompareAndSwap(lifeStarting, lifeReady)
	h.startSnapshotLoop()
	return replayed, skipped, err
}

// startSnapshotLoop begins the periodic background spill.
func (h *Handle) startSnapshotLoop() {
	if h.cfg.SnapshotPath == "" || h.cfg.SnapshotInterval <= 0 {
		return
	}
	h.loopOnce.Do(func() {
		h.snapStop = make(chan struct{})
		h.snapDone = make(chan struct{})
		go func() {
			defer close(h.snapDone)
			t := time.NewTicker(h.cfg.SnapshotInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := h.SnapshotNow(); err != nil {
						h.cfg.Logf("service: background snapshot: %v", err)
					}
				case <-h.snapStop:
					return
				}
			}
		}()
	})
}

// stopSnapshotLoop halts the ticker and waits for a spill in progress, so
// the drain's final snapshot cannot interleave with a background one.
func (h *Handle) stopSnapshotLoop() {
	h.loopOnce.Do(func() {}) // never started: nothing to stop
	if h.snapStop == nil {
		return
	}
	select {
	case <-h.snapStop: // already closed by a previous drain
	default:
		close(h.snapStop)
	}
	<-h.snapDone
}

// DrainReport accounts a graceful drain phase by phase; the daemon logs
// each duration.
type DrainReport struct {
	// Flights is how long the drain waited for in-flight flights;
	// FlightsTimedOut reports that ctx expired first (abandoned flights
	// keep running under their own compute budget but their results may
	// miss the final spill).
	Flights         time.Duration
	FlightsTimedOut bool
	// Snapshot is the final cache spill: its duration, the entry count
	// spilled, and the write error if any (nil without a snapshot path,
	// where Entries is 0).
	Snapshot        time.Duration
	SnapshotEntries int
	SnapshotErr     error
}

// Drain executes the shutdown sequence: stop admission (new work is
// rejected with ErrDraining and /readyz goes down), wait for in-flight
// flights to finish under ctx, then spill the cache. Idempotent — later
// calls return the first drain's report.
func (h *Handle) Drain(ctx context.Context) DrainReport {
	h.drainOnce.Do(func() { h.drainRep = h.drain(ctx) })
	return h.drainRep
}

func (h *Handle) drain(ctx context.Context) (rep DrainReport) {
	// The write lock synchronizes with flight registration (claimFlight):
	// once it is released with life == draining, no further flight can
	// register, so the WaitGroup below covers every flight there will
	// ever be.
	h.drainMu.Lock()
	h.life.Store(lifeDraining)
	h.drainMu.Unlock()
	h.stopSnapshotLoop()

	start := time.Now()
	done := make(chan struct{})
	go func() {
		h.flightWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		rep.FlightsTimedOut = true
	}
	rep.Flights = time.Since(start)

	if h.cfg.SnapshotPath != "" {
		start = time.Now()
		rep.SnapshotEntries = h.cache.Len()
		rep.SnapshotErr = h.SnapshotNow()
		rep.Snapshot = time.Since(start)
	}
	return rep
}

// claimFlight claims leadership of hash, registering a led flight with
// the drain WaitGroup under the drain read lock — the pairing that lets
// Drain wait for exactly the flights that were admitted. The caller that
// receives leader=true MUST start a goroutine whose completion calls
// h.flightWG.Done (runFlight and runBatchFlights do).
func (h *Handle) claimFlight(hash string) (f *flight, leader bool, err error) {
	h.drainMu.RLock()
	defer h.drainMu.RUnlock()
	if h.life.Load() == lifeDraining {
		return nil, false, ErrDraining
	}
	f, leader = h.flights.Claim(hash)
	if leader {
		h.flightWG.Add(1)
	}
	return f, leader, nil
}
