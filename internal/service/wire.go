// Package service turns the solving and simulation stack into a long-running
// scheduling service: versioned JSON DTOs for problems and results (this
// file), a canonical problem hash (hash.go) keying a size-bounded LRU result
// cache (cache.go) with singleflight coalescing (flight.go), an admission
// layer with a bounded work queue and per-request deadlines (server.go), and
// request/latency metrics (metrics.go). cmd/streamschedd serves the HTTP
// surface; the façade re-exports the client-side types.
//
// Wire contract. Every request carries an explicit "schemaVersion" (0 is
// read as the current Version, so hand-written payloads may omit it; an
// unsupported version is rejected at decode time with a stable reason
// token, before any work is admitted). Graphs,
// platforms and solver options travel as explicit DTOs — never as Go-side
// gob or reflection formats — so non-Go clients can produce them. Schedules
// travel in the schedule package's own JSON interchange format, embedded as
// a raw message; infeasibility travels as the classified infeas.Error JSON
// (reason tokens, optional task/copy/proc location). Encoding is
// deterministic: encode(decode(x)) is byte-stable for graphs, platforms and
// schedules, which the wire property tests pin.
package service

import (
	"encoding/json"
	"fmt"
	"math"

	"streamsched/internal/core"
	"streamsched/internal/dag"
	"streamsched/internal/infeas"
	"streamsched/internal/platform"
	"streamsched/internal/repair"
	"streamsched/internal/schedule"
)

// Version is the wire schema version accepted and emitted by this build.
const Version = 1

// ReasonUnsupportedSchema is the stable leading token of the error message
// rejecting an unsupported schema version; clients match on the prefix,
// not the prose.
const ReasonUnsupportedSchema = "unsupported-schema-version"

// checkSchemaVersion validates a decoded request's schema version: 0
// (omitted) and the current Version are accepted, anything else is
// rejected with a message starting with ReasonUnsupportedSchema. The HTTP
// adapter maps the rejection to 400.
func checkSchemaVersion(v int) error {
	if v != 0 && v != Version {
		return fmt.Errorf("%s: schema version %d not supported (this build speaks %d)", ReasonUnsupportedSchema, v, Version)
	}
	return nil
}

// Infeasible is the wire form of a classified infeasibility; it aliases
// infeas.Error, whose JSON encoding is the wire contract (reason tokens,
// optional locations).
type Infeasible = infeas.Error

// Graph is the wire form of dag.Graph: tasks in ID order, edges grouped by
// source task in insertion order — exactly the iteration order of the
// in-memory graph, so re-encoding a decoded graph is byte-identical.
type Graph struct {
	Name  string `json:"name,omitempty"`
	Tasks []Task `json:"tasks"`
	Edges []Edge `json:"edges,omitempty"`
}

// Task is one wire task.
type Task struct {
	Name string  `json:"name,omitempty"`
	Work float64 `json:"work"`
}

// Edge is one wire edge; From/To index Tasks.
type Edge struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Volume float64 `json:"volume,omitempty"`
}

// GraphDTO converts an in-memory graph to its wire form.
func GraphDTO(g *dag.Graph) Graph {
	w := Graph{Name: g.Name(), Tasks: make([]Task, 0, g.NumTasks())}
	for _, t := range g.Tasks() {
		w.Tasks = append(w.Tasks, Task{Name: t.Name, Work: t.Work})
	}
	for i := 0; i < g.NumTasks(); i++ {
		for _, e := range g.Succ(dag.TaskID(i)) {
			w.Edges = append(w.Edges, Edge{From: int(e.From), To: int(e.To), Volume: e.Volume})
		}
	}
	return w
}

// Build reconstructs the in-memory graph, validating what the dag package
// enforces by panic (trusted in-process builders) as returned errors: wire
// input is untrusted.
func (w Graph) Build() (*dag.Graph, error) {
	if len(w.Tasks) == 0 {
		return nil, fmt.Errorf("service: graph has no tasks")
	}
	g := dag.New(w.Name)
	for i, t := range w.Tasks {
		if !(t.Work > 0) { // rejects zero, negatives and NaN
			return nil, fmt.Errorf("service: task %d has non-positive work %v", i, t.Work)
		}
		g.AddTask(t.Name, t.Work)
	}
	for _, e := range w.Edges {
		if e.Volume < 0 || math.IsNaN(e.Volume) {
			return nil, fmt.Errorf("service: edge (%d,%d) has invalid volume %v", e.From, e.To, e.Volume)
		}
		if err := g.AddEdge(dag.TaskID(e.From), dag.TaskID(e.To), e.Volume); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	return g, nil
}

// Platform is the wire form of platform.Platform. Bandwidth is the full
// m×m link matrix with zero diagonal (intra-processor transfers are free
// and never priced through a link).
type Platform struct {
	Speeds    []float64   `json:"speeds"`
	Bandwidth [][]float64 `json:"bandwidth"`
}

// PlatformDTO converts an in-memory platform to its wire form.
func PlatformDTO(p *platform.Platform) Platform {
	m := p.NumProcs()
	w := Platform{
		Speeds:    append([]float64(nil), p.Speeds()...),
		Bandwidth: make([][]float64, m),
	}
	for k := 0; k < m; k++ {
		w.Bandwidth[k] = make([]float64, m)
		for h := 0; h < m; h++ {
			if k != h {
				w.Bandwidth[k][h] = p.Bandwidth(platform.ProcID(k), platform.ProcID(h))
			}
		}
	}
	return w
}

// Build reconstructs the in-memory platform, pre-validating the invariants
// platform.New enforces by panic.
func (w Platform) Build() (*platform.Platform, error) {
	m := len(w.Speeds)
	if m == 0 {
		return nil, fmt.Errorf("service: platform has no processors")
	}
	if len(w.Bandwidth) != m {
		return nil, fmt.Errorf("service: bandwidth matrix has %d rows, want %d", len(w.Bandwidth), m)
	}
	for u, s := range w.Speeds {
		if !(s > 0) {
			return nil, fmt.Errorf("service: processor %d has non-positive speed %v", u, s)
		}
		if len(w.Bandwidth[u]) != m {
			return nil, fmt.Errorf("service: bandwidth row %d has %d cols, want %d", u, len(w.Bandwidth[u]), m)
		}
		for h, d := range w.Bandwidth[u] {
			if h != u && !(d > 0) {
				return nil, fmt.Errorf("service: link (%d,%d) has non-positive bandwidth %v", u, h, d)
			}
		}
	}
	return platform.New(w.Speeds, w.Bandwidth), nil
}

// Options is the wire form of the solver configuration. The zero value of
// every field except Period maps to the solver default (R-LTF, ε = 0,
// chunk B = m, one-to-one mapping on, no latency cap).
type Options struct {
	// Algorithm is "ltf", "rltf", "ff" or "portfolio" ("" → "rltf").
	Algorithm string `json:"algorithm,omitempty"`
	// Eps is ε, the number of tolerated processor failures.
	Eps int `json:"eps,omitempty"`
	// Period is Δ = 1/T, the required iteration period (mandatory, > 0).
	Period float64 `json:"period"`
	// ChunkSize overrides the iso-level chunk bound B (0 → m).
	ChunkSize int `json:"chunkSize,omitempty"`
	// DisableOneToOne forces full communication replication (ablation).
	DisableOneToOne bool `json:"disableOneToOne,omitempty"`
	// LatencyCap rejects schedules whose bound exceeds it (0 → no cap).
	LatencyCap float64 `json:"latencyCap,omitempty"`
}

// ParseAlgorithm maps a wire algorithm token to the core enum.
func ParseAlgorithm(s string) (core.Algorithm, error) {
	switch s {
	case "", "rltf":
		return core.RLTF, nil
	case "ltf":
		return core.LTF, nil
	case "ff":
		return core.FaultFree, nil
	case "portfolio":
		return core.Portfolio, nil
	default:
		return 0, fmt.Errorf("service: unknown algorithm %q", s)
	}
}

// coreOpts converts the wire options to core functional options.
func (o Options) coreOpts() ([]core.Option, error) {
	algo, err := ParseAlgorithm(o.Algorithm)
	if err != nil {
		return nil, err
	}
	return []core.Option{
		core.WithAlgorithm(algo),
		core.WithEps(o.Eps),
		core.WithPeriod(o.Period),
		core.WithChunkSize(o.ChunkSize),
		core.WithOneToOne(!o.DisableOneToOne),
		core.WithLatencyCap(o.LatencyCap),
	}, nil
}

// Solver builds the configured core.Solver from the wire options,
// validating them as they apply.
func (o Options) Solver() (*core.Solver, error) {
	opts, err := o.coreOpts()
	if err != nil {
		return nil, err
	}
	return core.NewSolver(opts...)
}

// SolveRequest is the POST /v1/solve payload: one problem.
type SolveRequest struct {
	SchemaVersion int      `json:"schemaVersion"`
	Graph         Graph    `json:"graph"`
	Platform      Platform `json:"platform"`
	Options       Options  `json:"options"`
	// TimeoutMs bounds the request's end-to-end service time, queueing
	// included (0 → the server's default deadline).
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// ScheduleSummary carries the headline metrics of a schedule so clients
// need not parse the full interchange document.
type ScheduleSummary struct {
	Algorithm    string  `json:"algorithm"`
	Stages       int     `json:"stages"`
	LatencyBound float64 `json:"latencyBound"`
	Makespan     float64 `json:"makespan"`
	CrossComms   int     `json:"crossComms"`
}

// SolveResponse is the /v1/solve result and the per-problem element of a
// batch response. Exactly one of Schedule (with Summary), Infeasible and
// Error is populated.
type SolveResponse struct {
	SchemaVersion int `json:"schemaVersion"`
	// Hash is the canonical problem hash — the cache key; clients can use
	// it to correlate retries and batch elements.
	Hash string `json:"hash,omitempty"`
	// Cached reports that the result was served from the LRU cache;
	// Coalesced that it piggybacked on an identical in-flight solve.
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Schedule is the schedule interchange JSON (schedule.MarshalJSON).
	Schedule json.RawMessage  `json:"schedule,omitempty"`
	Summary  *ScheduleSummary `json:"summary,omitempty"`
	// Infeasible reports a typed "no schedule exists" outcome (HTTP 409).
	Infeasible *Infeasible `json:"infeasible,omitempty"`
	// Error reports a non-infeasibility failure.
	Error string `json:"error,omitempty"`
}

// BatchProblem is one element of a batch: its own graph/platform and an
// optional per-problem options override (nil → the batch default).
type BatchProblem struct {
	Graph    Graph    `json:"graph"`
	Platform Platform `json:"platform"`
	Options  *Options `json:"options,omitempty"`
}

// BatchRequest is the POST /v1/batch payload: many problems fanned through
// core.Batch on the server's worker pool.
type BatchRequest struct {
	SchemaVersion int            `json:"schemaVersion"`
	Problems      []BatchProblem `json:"problems"`
	// Options is the batch-wide default applied to problems without one.
	Options   Options `json:"options"`
	TimeoutMs int     `json:"timeoutMs,omitempty"`
}

// BatchResponse carries one SolveResponse per problem, in request order.
// Request-level failures (malformed JSON, unsupported version, empty
// batch, whole-batch rejection) set Error and leave Results empty.
type BatchResponse struct {
	SchemaVersion int             `json:"schemaVersion"`
	Results       []SolveResponse `json:"results,omitempty"`
	Error         string          `json:"error,omitempty"`
}

// Scenario configures one simulation run of a solved schedule. The zero
// value runs the free-running default configuration (sim.DefaultConfig).
type Scenario struct {
	Name string `json:"name,omitempty"`
	// Items/Warmup size the run (0 → sim.DefaultConfig for the schedule).
	Items  int `json:"items,omitempty"`
	Warmup int `json:"warmup,omitempty"`
	// Synchronous selects stage-synchronized pipeline semantics.
	Synchronous bool `json:"synchronous,omitempty"`
	// CrashProcs/CrashAt inject fail-stop processor crashes.
	CrashProcs []int   `json:"crashProcs,omitempty"`
	CrashAt    float64 `json:"crashAt,omitempty"`
}

// ScenarioResult reports one scenario's measurements. Latency fields are
// null when no item was delivered (the in-memory NaN).
type ScenarioResult struct {
	Name           string   `json:"name,omitempty"`
	MeanLatency    *float64 `json:"meanLatency"`
	MaxLatency     *float64 `json:"maxLatency"`
	AchievedPeriod *float64 `json:"achievedPeriod"`
	Delivered      int      `json:"delivered"`
	Items          int      `json:"items"`
}

// SimulateRequest is the POST /v1/simulate payload: solve one problem
// (through the same cache/coalescing path as /v1/solve), then sweep the
// scenarios on one reused simulation engine.
type SimulateRequest struct {
	SchemaVersion int      `json:"schemaVersion"`
	Graph         Graph    `json:"graph"`
	Platform      Platform `json:"platform"`
	Options       Options  `json:"options"`
	// Scenarios lists the runs; empty runs one default scenario.
	Scenarios []Scenario `json:"scenarios,omitempty"`
	TimeoutMs int        `json:"timeoutMs,omitempty"`
}

// SimulateResponse reports the solve outcome and the per-scenario
// measurements.
type SimulateResponse struct {
	SchemaVersion int              `json:"schemaVersion"`
	Hash          string           `json:"hash,omitempty"`
	Cached        bool             `json:"cached,omitempty"`
	Coalesced     bool             `json:"coalesced,omitempty"`
	Summary       *ScheduleSummary `json:"summary,omitempty"`
	Infeasible    *Infeasible      `json:"infeasible,omitempty"`
	Scenarios     []ScenarioResult `json:"scenarios,omitempty"`
	Error         string           `json:"error,omitempty"`
}

// summarize extracts the headline metrics.
func summarize(s *schedule.Schedule) *ScheduleSummary {
	return &ScheduleSummary{
		Algorithm:    s.Algorithm,
		Stages:       s.Stages(),
		LatencyBound: s.LatencyBound(),
		Makespan:     s.Makespan(),
		CrossComms:   s.CrossComms(),
	}
}

// jsonFloat maps NaN (undelivered) to null.
func jsonFloat(x float64) *float64 {
	if math.IsNaN(x) {
		return nil
	}
	return &x
}

// ProcSpeed is one wire processor-speed change.
type ProcSpeed struct {
	Proc  int     `json:"proc"`
	Speed float64 `json:"speed"`
}

// LinkBandwidth is one wire directed-link bandwidth change.
type LinkBandwidth struct {
	From      int     `json:"from"`
	To        int     `json:"to"`
	Bandwidth float64 `json:"bandwidth"`
}

// NewProc is one wire added processor: its speed and its symmetric link
// bandwidths to the surviving pre-delta processors (one per survivor, in
// pre-delta order with lost processors skipped) and then to the previously
// added processors of the same delta.
type NewProc struct {
	Speed float64   `json:"speed"`
	Links []float64 `json:"links"`
}

// PlatformDelta is the wire form of a platform change set: lost
// processors, speed changes, bandwidth changes, added processors. All
// processor identifiers are pre-delta. The empty delta is valid (a replay
// of the committed schedule).
type PlatformDelta struct {
	Lost      []int           `json:"lost,omitempty"`
	Speed     []ProcSpeed     `json:"speed,omitempty"`
	Bandwidth []LinkBandwidth `json:"bandwidth,omitempty"`
	Added     []NewProc       `json:"added,omitempty"`
}

// Build converts the wire delta to the in-memory change set. Semantic
// validation (range checks, duplicates, positivity) happens in
// Delta.Apply, which the server runs before admitting the replan.
func (w PlatformDelta) Build() core.Delta {
	var d core.Delta
	for _, u := range w.Lost {
		d.Lost = append(d.Lost, platform.ProcID(u))
	}
	for _, s := range w.Speed {
		d.Speed = append(d.Speed, repair.SpeedChange{Proc: platform.ProcID(s.Proc), Speed: s.Speed})
	}
	for _, b := range w.Bandwidth {
		d.Bandwidth = append(d.Bandwidth, repair.BandwidthChange{
			From: platform.ProcID(b.From), To: platform.ProcID(b.To), Bandwidth: b.Bandwidth,
		})
	}
	for _, a := range w.Added {
		d.Added = append(d.Added, repair.AddedProc{Speed: a.Speed, Links: append([]float64(nil), a.Links...)})
	}
	return d
}

// ReplanStats is the wire form of the repair statistics: how much of the
// committed schedule survived the delta.
type ReplanStats struct {
	Replayed  int  `json:"replayed"`
	Preserved int  `json:"preserved"`
	Repaired  int  `json:"repaired"`
	ColdSolve bool `json:"coldSolve,omitempty"`
}

// replanStatsDTO converts in-memory repair statistics to the wire form.
func replanStatsDTO(s *core.RepairStats) *ReplanStats {
	if s == nil {
		return nil
	}
	return &ReplanStats{Replayed: s.Replayed, Preserved: s.Preserved, Repaired: s.Repaired, ColdSolve: s.ColdSolve}
}

// ReplanRequest is the POST /v1/replan payload: the problem (graph,
// pre-delta platform, solver options matching the committed schedule), the
// committed schedule in interchange form, the platform delta, and the
// repair policy.
type ReplanRequest struct {
	SchemaVersion int      `json:"schemaVersion"`
	Graph         Graph    `json:"graph"`
	Platform      Platform `json:"platform"`
	Options       Options  `json:"options"`
	// Schedule is the committed schedule (schedule.MarshalJSON interchange
	// format) to repair; it must decode against Graph and Platform and
	// agree with Options on eps and period.
	Schedule json.RawMessage `json:"schedule"`
	Delta    PlatformDelta   `json:"delta"`
	// RepairBudget bounds the tasks repair may re-place through the search
	// machinery (0 = unlimited).
	RepairBudget int `json:"repairBudget,omitempty"`
	// NoColdFallback surfaces repair failure (HTTP 409) instead of
	// re-solving from scratch.
	NoColdFallback bool `json:"noColdFallback,omitempty"`
	TimeoutMs      int  `json:"timeoutMs,omitempty"`
}

// ReplanResponse is the /v1/replan result. Exactly one of Schedule (with
// Summary and Replan), Infeasible and Error is populated.
type ReplanResponse struct {
	SchemaVersion int    `json:"schemaVersion"`
	Hash          string `json:"hash,omitempty"`
	Cached        bool   `json:"cached,omitempty"`
	Coalesced     bool   `json:"coalesced,omitempty"`
	// Schedule is the repaired (or cold-resolved) schedule for the
	// post-delta platform.
	Schedule json.RawMessage  `json:"schedule,omitempty"`
	Summary  *ScheduleSummary `json:"summary,omitempty"`
	// Replan reports how the schedule was obtained: replayed / preserved /
	// searched task counts, or ColdSolve.
	Replan     *ReplanStats `json:"replan,omitempty"`
	Infeasible *Infeasible  `json:"infeasible,omitempty"`
	Error      string       `json:"error,omitempty"`
}
