package service

// Wire codec properties. The contract pinned here: encode(decode(x)) is
// byte-stable for graphs, platforms and schedules — a decoded-and-re-encoded
// document is byte-identical, so hashes of wire payloads are meaningful and
// proxies can round-trip documents without perturbing them — and every
// infeasibility Reason survives JSON encoding with its classification.

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"streamsched/internal/core"
	"streamsched/internal/dag"
	"streamsched/internal/infeas"
	"streamsched/internal/platform"
	"streamsched/internal/randgraph"
	"streamsched/internal/rng"
	"streamsched/internal/schedule"
)

// reencodeGraph runs one decode→encode cycle on an encoded graph.
func reencodeGraph(t *testing.T, enc []byte) []byte {
	t.Helper()
	var w Graph
	if err := json.Unmarshal(enc, &w); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	g, err := w.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	out, err := json.Marshal(GraphDTO(g))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return out
}

func TestGraphRoundTripByteStable(t *testing.T) {
	r := rng.New(7)
	p := platform.Homogeneous(4, 1, 10)
	graphs := []*dag.Graph{
		randgraph.Chain(6, 2, 3),
		randgraph.ForkJoin(3, 2, 1, 1),
		randgraph.Fig1Graph(),
		randgraph.Fig2Graph(),
		randgraph.SeriesParallel(rng.New(11), 20, 0.5, 1.5, 50, 150),
	}
	for i := 0; i < 20; i++ {
		cfg := randgraph.DefaultStreamConfig()
		cfg.MinTasks, cfg.MaxTasks = 10, 40
		cfg.Granularity = 0.2 + 1.8*r.Float64()
		graphs = append(graphs, randgraph.Stream(r.Split(), cfg, p))
	}
	for _, g := range graphs {
		enc, err := json.Marshal(GraphDTO(g))
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		re := reencodeGraph(t, enc)
		if !bytes.Equal(enc, re) {
			t.Errorf("%s: re-encoding not byte-stable:\n%s\nvs\n%s", g.Name(), enc, re)
		}
		// And a second cycle stays fixed too.
		if re2 := reencodeGraph(t, re); !bytes.Equal(re, re2) {
			t.Errorf("%s: second cycle moved the encoding", g.Name())
		}
	}
}

func TestPlatformRoundTripByteStable(t *testing.T) {
	r := rng.New(3)
	plats := []*platform.Platform{
		platform.Homogeneous(1, 2, 5),
		platform.Homogeneous(6, 1, 10),
	}
	for i := 0; i < 10; i++ {
		plats = append(plats, platform.RandomHeterogeneous(r, 2+i, 0.5, 1.0, 0.5, 1.0, 100))
	}
	for _, p := range plats {
		enc, err := json.Marshal(PlatformDTO(p))
		if err != nil {
			t.Fatal(err)
		}
		var w Platform
		if err := json.Unmarshal(enc, &w); err != nil {
			t.Fatal(err)
		}
		built, err := w.Build()
		if err != nil {
			t.Fatal(err)
		}
		re, err := json.Marshal(PlatformDTO(built))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, re) {
			t.Errorf("platform m=%d: re-encoding not byte-stable", p.NumProcs())
		}
	}
}

func TestScheduleRoundTripByteStable(t *testing.T) {
	g := randgraph.Fig2Graph()
	p := platform.Homogeneous(6, 1, 10)
	for _, eps := range []int{0, 1, 2} {
		sv, err := core.NewSolver(core.WithEps(eps), core.WithPeriod(40))
		if err != nil {
			t.Fatal(err)
		}
		sched, err := sv.Solve(context.Background(), g, p)
		if err != nil {
			t.Fatalf("eps=%d: %v", eps, err)
		}
		enc, err := json.Marshal(sched)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := schedule.LoadJSON(enc, g, p)
		if err != nil {
			t.Fatalf("eps=%d: load: %v", eps, err)
		}
		re, err := json.Marshal(loaded)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, re) {
			t.Errorf("eps=%d: schedule re-encoding not byte-stable", eps)
		}
	}
}

func TestEveryReasonSurvivesJSON(t *testing.T) {
	for _, reason := range infeas.Reasons() {
		e := &infeas.Error{
			Reason: reason,
			Task:   dag.TaskID(3),
			Copy:   1,
			Proc:   platform.ProcID(2),
			Period: 12.5,
			Detail: "detail",
		}
		enc, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("%v: marshal: %v", reason, err)
		}
		var back infeas.Error
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("%v: unmarshal: %v", reason, err)
		}
		if back != *e {
			t.Errorf("%v: round trip changed the error: %+v vs %+v", reason, back, *e)
		}
	}
}

func TestReasonUnknownTokenRejected(t *testing.T) {
	var r infeas.Reason
	if err := r.UnmarshalText([]byte("definitely-not-a-reason")); err == nil {
		t.Fatal("unknown token accepted")
	}
}

func TestErrorJSONOmitsSentinels(t *testing.T) {
	e := infeas.Newf(infeas.ReasonSearchExhausted, 8, "probed the whole window")
	enc, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{`"task"`, `"copy"`, `"proc"`, "-1"} {
		if bytes.Contains(enc, []byte(forbidden)) {
			t.Errorf("encoding leaks sentinel %s: %s", forbidden, enc)
		}
	}
	var back infeas.Error
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if back.Task != infeas.NoTask || back.Copy != -1 || back.Proc != infeas.NoProc {
		t.Errorf("sentinels not restored: %+v", back)
	}
}

func TestProblemHashDiscriminates(t *testing.T) {
	base := func() (*dag.Graph, *platform.Platform, *core.Solver) {
		g := randgraph.Chain(5, 2, 3)
		p := platform.Homogeneous(4, 1, 10)
		sv, err := core.NewSolver(core.WithEps(1), core.WithPeriod(20))
		if err != nil {
			t.Fatal(err)
		}
		return g, p, sv
	}

	g, p, sv := base()
	ref := ProblemHash(g, p, sv)

	// Identical problems built independently hash identically.
	g2, p2, sv2 := base()
	if h := ProblemHash(g2, p2, sv2); h != ref {
		t.Fatalf("identical problems hash differently: %s vs %s", ref, h)
	}

	// Each kind of perturbation moves the hash.
	perturbed := map[string]string{}
	{
		gg := randgraph.Chain(5, 2, 3)
		gg.ScaleWork(1.0000001)
		perturbed["work"] = ProblemHash(gg, p, sv)
	}
	{
		gg := randgraph.Chain(5, 2, 3)
		gg.ScaleVolume(1.0000001)
		perturbed["volume"] = ProblemHash(gg, p, sv)
	}
	perturbed["platform"] = ProblemHash(g, platform.Homogeneous(4, 1.0000001, 10), sv)
	{
		sv3, err := core.NewSolver(core.WithEps(2), core.WithPeriod(20))
		if err != nil {
			t.Fatal(err)
		}
		perturbed["eps"] = ProblemHash(g, p, sv3)
	}
	{
		sv4, err := core.NewSolver(core.WithEps(1), core.WithPeriod(20), core.WithAlgorithm(core.LTF))
		if err != nil {
			t.Fatal(err)
		}
		perturbed["algorithm"] = ProblemHash(g, p, sv4)
	}
	seen := map[string]string{ref: "base"}
	for kind, h := range perturbed {
		if prev, dup := seen[h]; dup {
			t.Errorf("perturbation %q collides with %q", kind, prev)
		}
		seen[h] = kind
	}
}

func TestGraphBuildRejectsMalformedInput(t *testing.T) {
	cases := map[string]Graph{
		"empty":        {},
		"zero work":    {Tasks: []Task{{Work: 0}}},
		"nan work":     {Tasks: []Task{{Work: math.NaN()}}},
		"neg volume":   {Tasks: []Task{{Work: 1}, {Work: 1}}, Edges: []Edge{{From: 0, To: 1, Volume: -1}}},
		"self loop":    {Tasks: []Task{{Work: 1}}, Edges: []Edge{{From: 0, To: 0}}},
		"out of range": {Tasks: []Task{{Work: 1}}, Edges: []Edge{{From: 0, To: 5}}},
		"cycle": {Tasks: []Task{{Work: 1}, {Work: 1}},
			Edges: []Edge{{From: 0, To: 1}, {From: 1, To: 0}}},
	}
	for name, w := range cases {
		if _, err := w.Build(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPlatformBuildRejectsMalformedInput(t *testing.T) {
	cases := map[string]Platform{
		"empty":      {},
		"zero speed": {Speeds: []float64{0}, Bandwidth: [][]float64{{0}}},
		"row count":  {Speeds: []float64{1, 1}, Bandwidth: [][]float64{{0, 1}}},
		"col count":  {Speeds: []float64{1, 1}, Bandwidth: [][]float64{{0, 1}, {1}}},
		"zero bw":    {Speeds: []float64{1, 1}, Bandwidth: [][]float64{{0, 0}, {1, 0}}},
	}
	for name, w := range cases {
		if _, err := w.Build(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestSchemaVersionPolicy pins the decode-time schema check: omitted (0)
// and current versions pass, anything else fails with the stable reason
// token as the message prefix.
func TestSchemaVersionPolicy(t *testing.T) {
	for _, v := range []int{0, Version} {
		if err := checkSchemaVersion(v); err != nil {
			t.Errorf("version %d rejected: %v", v, err)
		}
	}
	for _, v := range []int{-1, 2, 99} {
		err := checkSchemaVersion(v)
		if err == nil {
			t.Errorf("version %d accepted", v)
			continue
		}
		if !strings.HasPrefix(err.Error(), ReasonUnsupportedSchema) {
			t.Errorf("version %d error %q does not start with %q", v, err.Error(), ReasonUnsupportedSchema)
		}
	}
}

// TestSchemaVersionOnEveryEndpoint: all four /v1 POST endpoints reject an
// unknown major version with 400 and the stable token, and every response
// envelope echoes the build's version.
func TestSchemaVersionOnEveryEndpoint(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/v1/solve", "/v1/batch", "/v1/replan", "/v1/simulate"} {
		resp, data := postJSON(t, ts.Client(), ts.URL+path, map[string]any{"schemaVersion": 99})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
		var envelope struct {
			SchemaVersion int    `json:"schemaVersion"`
			Error         string `json:"error"`
		}
		if err := json.Unmarshal(data, &envelope); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !strings.HasPrefix(envelope.Error, ReasonUnsupportedSchema) {
			t.Errorf("%s: error %q does not start with %q", path, envelope.Error, ReasonUnsupportedSchema)
		}
		if envelope.SchemaVersion != Version {
			t.Errorf("%s: response schemaVersion %d, want %d", path, envelope.SchemaVersion, Version)
		}
	}
}

// TestSchemaVersionRoundTripByteStable: the version field survives an
// encode→decode→encode cycle on every request/response DTO, and a request
// marshalled with the current Version re-encodes byte-identically — the
// version is part of the byte-stable wire contract.
func TestSchemaVersionRoundTripByteStable(t *testing.T) {
	docs := []any{
		&SolveRequest{SchemaVersion: Version, Options: Options{Period: 10}},
		&SolveResponse{SchemaVersion: Version},
		&BatchRequest{SchemaVersion: Version},
		&BatchResponse{SchemaVersion: Version},
		&ReplanRequest{SchemaVersion: Version},
		&ReplanResponse{SchemaVersion: Version},
		&SimulateRequest{SchemaVersion: Version},
		&SimulateResponse{SchemaVersion: Version},
	}
	for _, doc := range docs {
		enc, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(enc, []byte(`"schemaVersion":1`)) {
			t.Errorf("%T encoding %s does not carry schemaVersion", doc, enc)
		}
		var probe map[string]any
		if err := json.Unmarshal(enc, &probe); err != nil {
			t.Fatal(err)
		}
		if v, ok := probe["schemaVersion"].(float64); !ok || int(v) != Version {
			t.Errorf("%T: decoded schemaVersion %v", doc, probe["schemaVersion"])
		}
		if _, ok := probe["v"]; ok {
			t.Errorf("%T still encodes the legacy \"v\" field", doc)
		}
		re, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, re) {
			t.Errorf("%T: re-encoding not byte-stable", doc)
		}
	}
}

// TestPlatformDeltaRoundTripByteStable: the wire delta re-encodes
// byte-identically and Build reproduces the in-memory change set.
func TestPlatformDeltaRoundTripByteStable(t *testing.T) {
	w := PlatformDelta{
		Lost:      []int{2},
		Speed:     []ProcSpeed{{Proc: 0, Speed: 1.5}},
		Bandwidth: []LinkBandwidth{{From: 0, To: 1, Bandwidth: 25}},
		Added:     []NewProc{{Speed: 2, Links: []float64{5, 5, 5}}},
	}
	enc, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back PlatformDelta
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	re, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatalf("delta re-encoding not byte-stable:\n%s\nvs\n%s", enc, re)
	}
	d := back.Build()
	if len(d.Lost) != 1 || d.Lost[0] != 2 ||
		len(d.Speed) != 1 || d.Speed[0].Proc != 0 || d.Speed[0].Speed != 1.5 ||
		len(d.Bandwidth) != 1 || d.Bandwidth[0].Bandwidth != 25 ||
		len(d.Added) != 1 || len(d.Added[0].Links) != 3 {
		t.Fatalf("Build lost information: %+v", d)
	}
	// The empty delta is valid wire ({}) and builds the empty change set.
	var empty PlatformDelta
	if err := json.Unmarshal([]byte(`{}`), &empty); err != nil {
		t.Fatal(err)
	}
	if !empty.Build().Empty() {
		t.Fatal("empty wire delta is not the empty change set")
	}
}
