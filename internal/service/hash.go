package service

// Canonical problem hashing. The cache and the coalescing layer key on
// "the problem", which the HTTP surface receives as (graph, platform,
// options). Hashing the wire JSON would be fragile — field order,
// whitespace and float formatting are not canonical — so the hash is
// computed over a deterministic binary encoding of the decoded in-memory
// problem: graph name, tasks (name, work bits) in ID order, edges in the
// graph's canonical iteration order, platform speeds and off-diagonal
// bandwidths in index order, and the solver's versioned Fingerprint.
// Solving is deterministic, so equal hashes imply byte-identical results.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"hash"
	"io"
	"math"

	"streamsched/internal/core"
	"streamsched/internal/dag"
	"streamsched/internal/platform"
)

// problemHasher wraps a hash.Hash with the primitive encoders.
type problemHasher struct {
	h   hash.Hash
	buf [8]byte
}

func (ph *problemHasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(ph.buf[:], v)
	ph.h.Write(ph.buf[:])
}

func (ph *problemHasher) f64(v float64) { ph.u64(math.Float64bits(v)) }

func (ph *problemHasher) str(s string) {
	ph.u64(uint64(len(s)))
	io.WriteString(ph.h, s)
}

// ProblemHash returns the canonical hash of (g, p, solver configuration)
// as a hex string. It is stable across processes and releases: the
// encoding is versioned by the leading magic and the solver fingerprint
// carries its own version tag.
func ProblemHash(g *dag.Graph, p *platform.Platform, s *core.Solver) string {
	ph := &problemHasher{h: sha256.New()}
	ph.str("streamsched-problem/v1")

	ph.str(g.Name())
	ph.u64(uint64(g.NumTasks()))
	for _, t := range g.Tasks() {
		ph.str(t.Name)
		ph.f64(t.Work)
	}
	ph.u64(uint64(g.NumEdges()))
	for i := 0; i < g.NumTasks(); i++ {
		for _, e := range g.Succ(dag.TaskID(i)) {
			ph.u64(uint64(e.From))
			ph.u64(uint64(e.To))
			ph.f64(e.Volume)
		}
	}

	m := p.NumProcs()
	ph.u64(uint64(m))
	for _, sp := range p.Speeds() {
		ph.f64(sp)
	}
	for k := 0; k < m; k++ {
		for h := 0; h < m; h++ {
			if k != h {
				ph.f64(p.Bandwidth(platform.ProcID(k), platform.ProcID(h)))
			}
		}
	}

	ph.str(s.Fingerprint())
	return hex.EncodeToString(ph.h.Sum(nil))
}

// ReplanHash returns the canonical hash of one replan request: the
// underlying problem hash (graph, pre-delta platform, solver), the
// committed schedule in its canonical interchange encoding (MarshalJSON is
// deterministic, so equal schedules hash equal), the delta, and the repair
// policy. The leading magic differs from ProblemHash's, so replan and
// solve outcomes can never collide in the shared cache and flight map.
func ReplanHash(sp ReplanSpec) (string, error) {
	schedJSON, err := json.Marshal(sp.Old)
	if err != nil {
		return "", err
	}
	ph := &problemHasher{h: sha256.New()}
	ph.str("streamsched-replan/v1")
	ph.str(ProblemHash(sp.Old.G, sp.Old.P, sp.Solver))
	ph.str(string(schedJSON))

	d := sp.Delta
	ph.u64(uint64(len(d.Lost)))
	for _, u := range d.Lost {
		ph.u64(uint64(u))
	}
	ph.u64(uint64(len(d.Speed)))
	for _, s := range d.Speed {
		ph.u64(uint64(s.Proc))
		ph.f64(s.Speed)
	}
	ph.u64(uint64(len(d.Bandwidth)))
	for _, b := range d.Bandwidth {
		ph.u64(uint64(b.From))
		ph.u64(uint64(b.To))
		ph.f64(b.Bandwidth)
	}
	ph.u64(uint64(len(d.Added)))
	for _, a := range d.Added {
		ph.f64(a.Speed)
		ph.u64(uint64(len(a.Links)))
		for _, l := range a.Links {
			ph.f64(l)
		}
	}

	ph.u64(uint64(sp.RepairBudget))
	if sp.NoColdFallback {
		ph.u64(1)
	} else {
		ph.u64(0)
	}
	return hex.EncodeToString(ph.h.Sum(nil)), nil
}
