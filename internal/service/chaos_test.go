package service

// Chaos suite (DESIGN.md §11): the crash-tolerance properties, pinned
// against deterministic fault injection and — for the kill -9 path — a
// real streamschedd process. The in-process tests arm faultinject sites
// (global registry: no t.Parallel here, Reset in cleanup); the e2e test
// builds the daemon binary and is skipped under -short so the race-enabled
// unit lane stays fast (the chaos CI lane runs it without -short).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"streamsched/internal/faultinject"
)

// solveSpec decodes one SolveRequest into an in-process Spec.
func solveSpec(t *testing.T, req SolveRequest) Spec {
	t.Helper()
	g, p, sv, err := buildProblem(req.Graph, req.Platform, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{Graph: g, Platform: p, Solver: sv}
}

// TestInjectedLeaderPanicIsolation pins the panic isolation contract: the
// leader of a panicking flight reports the internal-panic failure, its
// coalesced followers retry and succeed, and no admission slot leaks.
func TestInjectedLeaderPanicIsolation(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	srv := New(Config{Workers: 2})
	// The slow site holds the first flight open so every concurrent
	// requester coalesces onto it before the panic fires.
	faultinject.Enable(SiteFlightSlow, faultinject.Always().WithParam("300ms"))
	faultinject.Enable(SiteFlightPanic, faultinject.Nth(1))

	spec := solveSpec(t, feasibleRequest(2))
	const n = 6
	outs := make([]Outcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = srv.Solve(context.Background(), spec)
		}(i)
	}
	wg.Wait()

	var panicked, solved int
	for i := 0; i < n; i++ {
		switch {
		case errs[i] == nil:
			solved++
			if outs[i].Schedule == nil {
				t.Fatalf("request %d: nil schedule without an error", i)
			}
		case errors.Is(errs[i], ErrInternalPanic):
			panicked++
		default:
			t.Fatalf("request %d: unexpected error %v", i, errs[i])
		}
	}
	if panicked != 1 || solved != n-1 {
		t.Fatalf("panicked=%d solved=%d, want exactly the leader failing and %d followers succeeding", panicked, solved, n-1)
	}
	m := srv.Metrics()
	if m.Panics != 1 {
		t.Fatalf("panics counter = %d, want 1", m.Panics)
	}
	if m.SolveCalls != 1 {
		t.Fatalf("solveCalls = %d, want 1 (the panicking flight never reached the solver)", m.SolveCalls)
	}
	// No leaked admission slots: the gauges settle to zero and the full
	// worker capacity still admits fresh work.
	waitUntil(t, "admission gauges to settle", func() bool {
		m := srv.Metrics()
		return m.Queue.Depth == 0 && m.Queue.InFlight == 0
	})
	faultinject.Reset()
	for i := 0; i < 3; i++ {
		if _, err := srv.Solve(context.Background(), solveSpec(t, feasibleRequest(float64(10+i)))); err != nil {
			t.Fatalf("post-panic solve %d: %v (leaked admission slot?)", i, err)
		}
	}
}

// TestBatchFollowerSurvivesForeignPanic is the same contract through the
// batch pipeline: an element coalesced onto a panicking flight retries
// instead of inheriting the leader's failure.
func TestBatchFollowerSurvivesForeignPanic(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	srv := New(Config{Workers: 2})
	faultinject.Enable(SiteFlightPanic, faultinject.Nth(1))

	spec := solveSpec(t, feasibleRequest(2))
	res := srv.SolveBatch(context.Background(), []Spec{spec, spec})
	if !errors.Is(res[0].Err, ErrInternalPanic) {
		t.Fatalf("leader element error = %v, want internal-panic", res[0].Err)
	}
	if res[1].Err != nil || res[1].Outcome.Schedule == nil {
		t.Fatalf("coalesced element poisoned by the leader's panic: err=%v", res[1].Err)
	}
	if m := srv.Metrics(); m.Panics != 1 {
		t.Fatalf("panics counter = %d, want 1", m.Panics)
	}
}

// TestDrainUnderLoadLosesNoCommittedEntries pins the drain guarantee:
// every solve that reported success before or during the drain has its
// entry in the spilled snapshot, byte-identical, and a restart serves all
// of them as cache hits without a solver call.
func TestDrainUnderLoadLosesNoCommittedEntries(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "cache.snap")
	srv := New(Config{Workers: 4, QueueLimit: 64, SnapshotPath: snap, SnapshotInterval: -1, SolveDelay: 2 * time.Millisecond})
	if _, _, err := srv.WarmStart(); err != nil {
		t.Fatal(err)
	}

	const n = 24
	outs := make([]Outcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = srv.Solve(context.Background(), solveSpec(t, feasibleRequest(float64(i+1))))
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let part of the load get admitted
	rep := srv.Drain(context.Background())
	wg.Wait()
	if rep.SnapshotErr != nil {
		t.Fatalf("drain spill: %v", rep.SnapshotErr)
	}
	if rep.FlightsTimedOut {
		t.Fatal("flight drain timed out under an unbounded context")
	}

	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	entries, skipped, err := decodeSnapshot(data)
	if err != nil || skipped != 0 {
		t.Fatalf("drain snapshot unreadable: skipped=%d err=%v", skipped, err)
	}
	spilled := make(map[string][]byte, len(entries))
	for _, e := range entries {
		spilled[e.key] = e.out.schedJSON
	}
	var committed int
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			if !errors.Is(errs[i], ErrDraining) {
				t.Fatalf("request %d: unexpected error %v", i, errs[i])
			}
			continue
		}
		committed++
		got, ok := spilled[outs[i].Hash]
		if !ok {
			t.Fatalf("request %d: committed entry %s missing from the drain snapshot", i, outs[i].Hash)
		}
		if !bytes.Equal(got, outs[i].ScheduleJSON) {
			t.Fatalf("request %d: spilled schedule bytes differ from the served ones", i)
		}
	}
	if committed == 0 {
		t.Fatal("the drain rejected the entire load; the guarantee was not exercised")
	}

	// Post-drain admission is closed and says so.
	if _, err := srv.Solve(context.Background(), solveSpec(t, feasibleRequest(99))); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain solve error = %v, want ErrDraining", err)
	}
	if m := srv.Metrics(); !m.Draining {
		t.Fatal("metrics do not report draining")
	}

	// A restarted handle serves every committed entry as a warm hit.
	h2 := NewHandle(Config{SnapshotPath: snap, SnapshotInterval: -1})
	replayed, skipped2, err := h2.WarmStart()
	if err != nil || skipped2 != 0 {
		t.Fatalf("warm start: replayed=%d skipped=%d err=%v", replayed, skipped2, err)
	}
	if replayed != len(entries) {
		t.Fatalf("replayed %d entries, want %d", replayed, len(entries))
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			continue
		}
		out, err := h2.Solve(context.Background(), solveSpec(t, feasibleRequest(float64(i+1))))
		if err != nil {
			t.Fatalf("warm solve %d: %v", i, err)
		}
		if !out.Cached || !bytes.Equal(out.ScheduleJSON, outs[i].ScheduleJSON) {
			t.Fatalf("warm solve %d: cached=%v, bytes identical=%v", i, out.Cached, bytes.Equal(out.ScheduleJSON, outs[i].ScheduleJSON))
		}
	}
	if m := h2.Metrics(); m.SolveCalls != 0 {
		t.Fatalf("restarted handle made %d solver calls serving replayed entries", m.SolveCalls)
	}
}

// TestReadyzLifecycle walks /readyz through starting → ready → draining,
// with /healthz staying alive throughout.
func TestReadyzLifecycle(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "cache.snap")
	srv := New(Config{SnapshotPath: snap, SnapshotInterval: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before warm start = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz before warm start = %d, want 200 (liveness is not readiness)", got)
	}
	if _, _, err := srv.WarmStart(); err != nil {
		t.Fatal(err)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz after warm start = %d, want 200", got)
	}
	srv.Drain(context.Background())
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200", got)
	}
	// New work is rejected with 503 and a Retry-After hint.
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/solve", feasibleRequest(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503-drain response missing Retry-After")
	}
}

// TestFaultSiteAdmitReject covers the admission site: an armed reject
// surfaces as queue-full backpressure, counted like any rejection.
func TestFaultSiteAdmitReject(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	faultinject.Enable(SiteAdmitReject, faultinject.Always())
	srv := New(Config{})
	if _, err := srv.Solve(context.Background(), solveSpec(t, feasibleRequest(2))); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("error = %v, want ErrQueueFull", err)
	}
	if m := srv.Metrics(); m.Queue.Rejected == 0 {
		t.Fatal("injected rejection not counted")
	}
}

// TestFaultSiteSnapshotIO covers the persistence sites: a failed spill
// reports its error (and the drain report carries it), a failed replay
// degrades to a cold start instead of failing the boot.
func TestFaultSiteSnapshotIO(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	snap := filepath.Join(t.TempDir(), "cache.snap")
	srv := New(Config{SnapshotPath: snap, SnapshotInterval: -1})
	if _, _, err := srv.WarmStart(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Solve(context.Background(), solveSpec(t, feasibleRequest(2))); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(SiteSnapshotWrite, faultinject.Always())
	if err := srv.SnapshotNow(); err == nil {
		t.Fatal("injected snapshot write failure not surfaced")
	}
	if _, err := os.Stat(snap); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed spill left a snapshot file: %v", err)
	}
	rep := srv.Drain(context.Background())
	if rep.SnapshotErr == nil {
		t.Fatal("drain report missing the injected spill failure")
	}

	faultinject.Reset()
	faultinject.Enable(SiteSnapshotReplay, faultinject.Always())
	h2 := NewHandle(Config{SnapshotPath: snap, SnapshotInterval: -1})
	if _, _, err := h2.WarmStart(); err == nil {
		t.Fatal("injected replay failure not surfaced")
	}
	if !h2.Ready() {
		t.Fatal("a failed replay must degrade to a cold start, not block readiness")
	}
}

// ---- kill -9 e2e against a real daemon ---------------------------------

// daemonProc wraps a started streamschedd process. Its combined output is
// only read after the process has exited (os/exec pipes race otherwise).
type daemonProc struct {
	cmd  *exec.Cmd
	out  bytes.Buffer
	done bool
}

func startDaemon(t *testing.T, bin string, args ...string) *daemonProc {
	t.Helper()
	d := &daemonProc{cmd: exec.Command(bin, args...)}
	d.cmd.Stdout = &d.out
	d.cmd.Stderr = &d.out
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.kill9() })
	return d
}

// kill9 delivers SIGKILL — no drain, no spill, the crash being simulated —
// and reaps the process.
func (d *daemonProc) kill9() {
	if d.done {
		return
	}
	d.done = true
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitDaemonReady(t *testing.T, client *http.Client, base string) {
	t.Helper()
	waitUntil(t, "daemon readiness at "+base, func() bool {
		resp, err := client.Get(base + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
}

func daemonMetrics(t *testing.T, client *http.Client, base string) MetricsSnapshot {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestChaosKillMinus9WarmRestart is the headline chaos pin: a daemon
// killed with SIGKILL mid-traffic restarts from its periodic snapshot and
// serves previously-solved problems as cache hits — byte-identical
// responses, zero solver calls.
func TestChaosKillMinus9WarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; run without -short (chaos lane)")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "streamschedd")
	if out, err := exec.Command("go", "build", "-o", bin, "streamsched/cmd/streamschedd").CombinedOutput(); err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}
	snap := filepath.Join(tmp, "cache.snap")
	addr := freeAddr(t)
	base := "http://" + addr
	client := &http.Client{Timeout: 10 * time.Second}
	args := []string{"-addr", addr, "-snapshot", snap, "-snapshot-interval", "100ms"}

	d1 := startDaemon(t, bin, args...)
	waitDaemonReady(t, client, base)

	reqA, reqB := feasibleRequest(2), feasibleRequest(3)
	for _, req := range []SolveRequest{reqA, reqB} {
		if resp, data := postJSON(t, client, base+"/v1/solve", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("priming solve: %d (%s)", resp.StatusCode, data)
		}
	}
	// Record a pre-kill cache-hit response as the byte-identical baseline.
	resp, preHit := postJSON(t, client, base+"/v1/solve", reqA)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-kill cache hit: %d (%s)", resp.StatusCode, preHit)
	}
	var pre SolveResponse
	if err := json.Unmarshal(preHit, &pre); err != nil || !pre.Cached {
		t.Fatalf("pre-kill repeat solve not a cache hit: %v %s", err, preHit)
	}
	// Two completed spills after both solves guarantee the second began
	// after both entries were committed.
	w := daemonMetrics(t, client, base).SnapshotWrites
	waitUntil(t, "snapshot to cover both solves", func() bool {
		return daemonMetrics(t, client, base).SnapshotWrites >= w+2
	})

	d1.kill9()

	d2 := startDaemon(t, bin, args...)
	defer d2.kill9()
	waitDaemonReady(t, client, base)
	if m := daemonMetrics(t, client, base); m.SnapshotReplayed < 2 {
		t.Fatalf("restarted daemon replayed %d entries, want ≥ 2", m.SnapshotReplayed)
	}
	resp, postHit := postJSON(t, client, base+"/v1/solve", reqA)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart solve: %d (%s)", resp.StatusCode, postHit)
	}
	if !bytes.Equal(preHit, postHit) {
		t.Fatalf("cache-hit response changed across kill -9 + restart:\npre:  %s\npost: %s", preHit, postHit)
	}
	if m := daemonMetrics(t, client, base); m.SolveCalls != 0 {
		t.Fatalf("restarted daemon made %d solver calls for a previously-solved problem", m.SolveCalls)
	}
}

// TestChaosTraceRingBounded pins the trace-ring contract under concurrent
// load with tracing armed: the ring never exceeds its configured capacity,
// never blocks a flight (every request completes with a well-formed
// response and a trace ID), and the whole arrangement is race-clean (this
// test runs under -race in the chaos and unit lanes). Workers stay low and
// requests mix cold solves, cache hits and coalesced followers so traced
// flights overlap, detach and outlive their requesters.
func TestChaosTraceRingBounded(t *testing.T) {
	const ringCap = 8
	srv := New(Config{Workers: 2, QueueLimit: 64, Tracing: true, TraceRingSize: ringCap})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const goroutines = 8
	const perG = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// 5 distinct problems shared across goroutines: plenty of
				// coalescing and cache hits in with the cold solves.
				resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/solve", feasibleRequest(float64(1+(g+i)%5)))
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("solve: HTTP %d (%s)", resp.StatusCode, body)
					return
				}
				if resp.Header.Get("X-Trace-Id") == "" {
					errs <- fmt.Errorf("traced response missing X-Trace-Id")
					return
				}
				if n := srv.traces.Len(); n > ringCap {
					errs <- fmt.Errorf("trace ring holds %d traces, cap %d", n, ringCap)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := srv.traces.Len(); n != ringCap {
		t.Fatalf("ring holds %d traces after %d requests, want full at %d", n, goroutines*perG, ringCap)
	}
	// Every retained trace is finished and addressable.
	for _, tr := range srv.traces.Snapshot() {
		doc := tr.Snapshot()
		if doc.ID == "" || len(doc.Spans) == 0 {
			t.Fatalf("retained trace malformed: %+v", doc)
		}
	}
}
