package service

// In-repo load generator: concurrent mixed solve/batch/simulate traffic
// against a live server, checking the invariants that matter under load —
// every response is a well-formed wire document with an expected status,
// the cache and coalescing layers keep the underlying solver call count at
// (or near) the number of distinct problems, and the counters balance.
// Run under -race this doubles as the service's concurrency test.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"streamsched/internal/platform"
	"streamsched/internal/randgraph"
	"streamsched/internal/rng"
)

// loadProblemPool builds a small pool of distinct problems, one of them
// infeasible, so the traffic mixes 200 and 409 outcomes.
func loadProblemPool() []SolveRequest {
	pool := make([]SolveRequest, 0, 6)
	for i := 0; i < 5; i++ {
		g := randgraph.Chain(4+i, 1.5, 2)
		pool = append(pool, SolveRequest{
			Graph:    GraphDTO(g),
			Platform: PlatformDTO(platform.Homogeneous(3, 1, 10)),
			Options:  Options{Eps: 1, Period: 30 + float64(i)},
		})
	}
	pool = append(pool, infeasibleRequest())
	return pool
}

func TestLoadGeneratorMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("load generation in -short mode is reduced elsewhere; full mix here")
	}
	runLoadMix(t, 16, 20)
}

func TestLoadGeneratorMixedTrafficShort(t *testing.T) {
	runLoadMix(t, 8, 6)
}

func runLoadMix(t *testing.T, clients, iters int) {
	srv := New(Config{Workers: 4, QueueLimit: 1024, CacheEntries: 256})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pool := loadProblemPool()
	var (
		total     atomic.Int64
		ok200     atomic.Int64
		infeas409 atomic.Int64
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(uint64(1000 + c)) // deterministic per-client mix
			for i := 0; i < iters; i++ {
				prob := pool[r.IntN(len(pool))]
				var (
					url  string
					body any
				)
				switch r.IntN(3) {
				case 0:
					url, body = "/v1/solve", prob
				case 1:
					url, body = "/v1/simulate", SimulateRequest{
						Graph: prob.Graph, Platform: prob.Platform, Options: prob.Options,
						Scenarios: []Scenario{{Name: "free"}, {Name: "sync", Synchronous: true}},
					}
				default:
					other := pool[r.IntN(len(pool))]
					url, body = "/v1/batch", BatchRequest{
						Options: prob.Options,
						Problems: []BatchProblem{
							{Graph: prob.Graph, Platform: prob.Platform},
							{Graph: other.Graph, Platform: other.Platform, Options: &other.Options},
						},
					}
				}
				status, data := doPost(t, ts, url, body)
				total.Add(1)
				switch status {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusConflict:
					infeas409.Add(1)
				default:
					t.Errorf("client %d: %s returned %d: %s", c, url, status, data)
					return
				}
				if !json.Valid(data) {
					t.Errorf("client %d: invalid JSON from %s", c, url)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	if t.Failed() {
		return
	}
	m := getMetrics(t, ts)

	// Every problem in the pool appears many times across solve, batch and
	// simulate traffic, yet the solver runs at most once per distinct
	// problem: the cache (and coalescing under concurrency) absorbs the
	// rest. The pool never exceeds the cache, so no entry is ever evicted
	// and re-solved.
	if m.SolveCalls > int64(len(pool)) {
		t.Errorf("solver ran %d times for %d distinct problems", m.SolveCalls, len(pool))
	}
	if m.Cache.Hits == 0 {
		t.Error("no cache hits under repeat traffic")
	}
	if m.Cache.HitRatio <= 0 || m.Cache.HitRatio > 1 {
		t.Errorf("implausible hit ratio %v", m.Cache.HitRatio)
	}
	if got := m.Requests["solve"] + m.Requests["batch"] + m.Requests["simulate"]; got != total.Load() {
		t.Errorf("request counters sum to %d, sent %d", got, total.Load())
	}
	if ok200.Load() == 0 || infeas409.Load() == 0 {
		t.Errorf("traffic mix degenerate: %d OK, %d infeasible", ok200.Load(), infeas409.Load())
	}
	if m.LatencyMs.Count != total.Load() {
		t.Errorf("latency observations %d, requests %d", m.LatencyMs.Count, total.Load())
	}
	if m.Queue.Depth != 0 || m.Queue.InFlight != 0 {
		t.Errorf("queue gauges nonzero after drain: %+v", m.Queue)
	}
	if m.Queue.Rejected != 0 {
		t.Errorf("unexpected rejections with a deep queue: %d", m.Queue.Rejected)
	}
}

// doPost is postJSON without t.Fatal, safe for worker goroutines.
func doPost(t *testing.T, ts *httptest.Server, path string, body any) (int, []byte) {
	enc, err := json.Marshal(body)
	if err != nil {
		t.Errorf("marshal: %v", err)
		return 0, nil
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Errorf("post %s: %v", path, err)
		return 0, nil
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("read %s: %v", path, err)
		return 0, nil
	}
	return resp.StatusCode, data
}
