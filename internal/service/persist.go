package service

// Persistent cache spill + warm start (DESIGN.md §11). The LRU result
// cache holds pre-rendered response bytes keyed by canonical problem and
// replan hashes, which are stable across processes — exactly the shape a
// restart can reuse. The handle spills the cache to a snapshot file on
// graceful drain and periodically in the background, and replays it on
// boot so a restarted daemon serves yesterday's repeat traffic as cache
// hits without a single solver call.
//
// Snapshot format. One header, then self-delimiting entries, least
// recently used first (replaying in file order reproduces the recency
// order):
//
//	header:  magic "SSCHSNAP" (8 bytes) | u32 format version
//	entry:   u32 bodyLen | body | u32 crc32(IEEE, body)
//	body:    u16 entryVersion | u16 keyLen | key | payload JSON
//
// All integers little-endian. The payload is the snapPayload JSON document
// — the spilled outcome: the schedule's interchange bytes plus its
// summary, or the classified infeasibility, plus optional repair stats.
//
// Replay is forgiving by construction: a truncated tail (crash mid-write,
// torn disk) ends the replay with what decoded so far; a checksum
// mismatch, unknown entry version or malformed payload skips that entry
// and keeps going; an unknown file version or foreign magic skips the
// whole file. Nothing in a snapshot can fail a boot — the cache is an
// optimization, and a corrupt optimization must degrade to a cold start,
// not an outage. The skip counts surface as the snapshotSkipped metric
// and WarmStart's return values.
//
// The in-memory *schedule.Schedule does not survive the spill (it would
// drag the whole graph/platform object graph into the file); a replayed
// entry carries only the rendered bytes. /v1/solve and /v1/replan serve
// those bytes directly; /v1/simulate rebuilds the schedule from them
// against the request's decoded graph and platform when it needs the
// in-memory form (see handleSimulate).

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"

	"streamsched/internal/core"
	"streamsched/internal/faultinject"
	"streamsched/internal/obs"
)

const (
	snapshotVersion  = 1
	snapEntryVersion = 1
	// maxSnapBody bounds one entry's declared body length; a corrupt or
	// adversarial length field must not allocate unbounded memory.
	maxSnapBody = 64 << 20
	// maxSnapKey bounds the cache-key length; canonical hashes are 64 hex
	// characters, so anything much larger is corruption.
	maxSnapKey = 128
)

var snapshotMagic = [8]byte{'S', 'S', 'C', 'H', 'S', 'N', 'A', 'P'}

// errSnapshotHeader reports an unusable snapshot file (foreign magic or
// unknown format version). It is advisory: warm start logs it and boots
// cold.
var errSnapshotHeader = errors.New("service: unusable snapshot header")

// snapPayload is the JSON payload of one snapshot entry: the cacheable
// outcome with the in-memory schedule reduced to its rendered bytes.
// Exactly one of Schedule and Infeasible is set.
type snapPayload struct {
	Schedule   json.RawMessage  `json:"schedule,omitempty"`
	Summary    *ScheduleSummary `json:"summary,omitempty"`
	Infeasible *Infeasible      `json:"infeasible,omitempty"`
	Replan     *ReplanStats     `json:"replan,omitempty"`
}

// snapEntry is one decoded snapshot entry.
type snapEntry struct {
	key string
	out outcome
}

// encodeSnapshot renders the cache entries (least recently used first)
// into the snapshot format.
func encodeSnapshot(entries []lruEntry) []byte {
	var buf bytes.Buffer
	buf.Write(snapshotMagic[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], snapshotVersion)
	buf.Write(u32[:])
	var body bytes.Buffer
	for i := range entries {
		pl := snapPayload{
			Schedule:   entries[i].out.schedJSON,
			Summary:    entries[i].out.summary,
			Infeasible: entries[i].out.infeas,
			Replan:     replanStatsDTO(entries[i].out.replan),
		}
		payload, err := json.Marshal(pl)
		if err != nil {
			continue // unmarshalable outcome: drop the entry, keep the file
		}
		body.Reset()
		var u16 [2]byte
		binary.LittleEndian.PutUint16(u16[:], snapEntryVersion)
		body.Write(u16[:])
		binary.LittleEndian.PutUint16(u16[:], uint16(len(entries[i].key)))
		body.Write(u16[:])
		body.WriteString(entries[i].key)
		body.Write(payload)
		binary.LittleEndian.PutUint32(u32[:], uint32(body.Len()))
		buf.Write(u32[:])
		buf.Write(body.Bytes())
		binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(body.Bytes()))
		buf.Write(u32[:])
	}
	return buf.Bytes()
}

// decodeSnapshot parses a snapshot file. It never panics on any input:
// entries that fail their checksum, carry an unknown entry version or an
// invalid payload are counted in skipped and passed over; a truncated or
// length-corrupted tail ends the decode (counted as one skip); a foreign
// magic or unknown file version returns errSnapshotHeader with no entries.
func decodeSnapshot(data []byte) (entries []snapEntry, skipped int, err error) {
	if len(data) < len(snapshotMagic)+4 || !bytes.Equal(data[:len(snapshotMagic)], snapshotMagic[:]) {
		return nil, 1, errSnapshotHeader
	}
	if v := binary.LittleEndian.Uint32(data[len(snapshotMagic):]); v != snapshotVersion {
		return nil, 1, fmt.Errorf("%w: format version %d (this build speaks %d)", errSnapshotHeader, v, snapshotVersion)
	}
	rest := data[len(snapshotMagic)+4:]
	for len(rest) > 0 {
		if len(rest) < 4 {
			skipped++ // truncated length prefix
			break
		}
		bodyLen := binary.LittleEndian.Uint32(rest)
		if bodyLen > maxSnapBody || int(bodyLen)+8 > len(rest) {
			skipped++ // corrupt length or truncated entry: framing is lost
			break
		}
		body := rest[4 : 4+bodyLen]
		sum := binary.LittleEndian.Uint32(rest[4+bodyLen:])
		rest = rest[8+bodyLen:]
		if crc32.ChecksumIEEE(body) != sum {
			skipped++
			continue
		}
		ent, ok := decodeSnapEntry(body)
		if !ok {
			skipped++
			continue
		}
		entries = append(entries, ent)
	}
	return entries, skipped, nil
}

// decodeSnapEntry parses one checksum-verified entry body.
func decodeSnapEntry(body []byte) (snapEntry, bool) {
	if len(body) < 4 {
		return snapEntry{}, false
	}
	if v := binary.LittleEndian.Uint16(body); v != snapEntryVersion {
		return snapEntry{}, false // unknown entry version: written by a newer build
	}
	keyLen := int(binary.LittleEndian.Uint16(body[2:]))
	if keyLen == 0 || keyLen > maxSnapKey || 4+keyLen > len(body) {
		return snapEntry{}, false
	}
	key := string(body[4 : 4+keyLen])
	var pl snapPayload
	if err := json.Unmarshal(body[4+keyLen:], &pl); err != nil {
		return snapEntry{}, false
	}
	// Exactly one of schedule and infeasibility, and schedule entries must
	// carry the summary their responses render.
	if (len(pl.Schedule) == 0) == (pl.Infeasible == nil) {
		return snapEntry{}, false
	}
	if len(pl.Schedule) > 0 && pl.Summary == nil {
		return snapEntry{}, false
	}
	out := outcome{
		schedJSON: pl.Schedule,
		summary:   pl.Summary,
		infeas:    pl.Infeasible,
	}
	if pl.Replan != nil {
		out.replan = &core.RepairStats{
			Replayed:  pl.Replan.Replayed,
			Preserved: pl.Replan.Preserved,
			Repaired:  pl.Replan.Repaired,
			ColdSolve: pl.Replan.ColdSolve,
		}
	}
	return snapEntry{key: key, out: out}, true
}

// SnapshotNow spills the current cache contents to the configured
// snapshot path (no-op without one). The write is atomic — temp file in
// the same directory, then rename — so a crash mid-write leaves the
// previous snapshot intact; the format additionally tolerates a torn
// file (see decodeSnapshot). Serialized so the background ticker and the
// drain spill cannot interleave.
func (h *Handle) SnapshotNow() error {
	if h.cfg.SnapshotPath == "" {
		return nil
	}
	h.snapMu.Lock()
	defer h.snapMu.Unlock()
	// Snapshot spills have no HTTP request to ride on, so a traced handle
	// gives each one its own trace in the /debug/traces ring: an operator
	// debugging a latency blip can see whether a background spill (encode
	// vs. write breakdown, byte count) coincided with it.
	var tr *obs.Trace
	var sp obs.SpanRef
	if h.traces != nil {
		tr = obs.NewTrace("snapshot")
		sp = tr.Root()
		defer func() {
			tr.Finish(0)
			h.traces.Add(tr)
		}()
	}
	if faultinject.Fire(SiteSnapshotWrite) {
		return errors.New("faultinject: " + SiteSnapshotWrite)
	}
	es := sp.Child("encode")
	data := encodeSnapshot(h.cache.entries())
	es.End()
	if sp.Active() {
		sp.SetArg("bytes", len(data))
	}
	ws := sp.Child("write")
	defer ws.End()
	tmp := h.cfg.SnapshotPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("service: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, h.cfg.SnapshotPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: committing snapshot: %w", err)
	}
	h.m.snapshotWrites.Add(1)
	return nil
}

// replaySnapshot loads the snapshot file into the cache, oldest entry
// first so the LRU recency order survives the restart. A missing file is
// a clean cold start. The returned error is advisory (logged by the
// caller); replay never fails a boot.
func (h *Handle) replaySnapshot() (replayed, skipped int, err error) {
	if faultinject.Fire(SiteSnapshotReplay) {
		return 0, 0, errors.New("faultinject: " + SiteSnapshotReplay)
	}
	data, err := os.ReadFile(h.cfg.SnapshotPath)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("service: reading snapshot: %w", err)
	}
	entries, skipped, err := decodeSnapshot(data)
	for i := range entries {
		h.cache.Put(entries[i].key, entries[i].out)
	}
	return len(entries), skipped, err
}
