package service

// Prometheus text exposition (format version 0.0.4) for the /metrics
// snapshot, hand-rolled: the format is a dozen lines of printf and the
// repo takes no dependencies. Families are emitted in a fixed order and
// every label set within a family is sorted, so consecutive scrapes of an
// idle server are byte-identical — diffable in tests and in incident
// tooling.
//
// Name mapping (DESIGN.md §12): every family is prefixed streamsched_.
// Counters keep Prometheus' _total suffix; latency windows become
// pseudo-summaries — streamsched_request_latency_ms{quantile="0.5"} etc.
// plus _count — with the caveat (stated in the HELP text) that quantiles
// describe the recent ring window, not the process lifetime.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// wantsPrometheus decides the /metrics representation. The explicit query
// parameter wins; otherwise an Accept header that mentions text/plain and
// not application/json (Prometheus sends "text/plain;version=0.0.4" with
// other text forms) selects the exposition format.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

// promWriter accumulates one exposition document.
type promWriter struct {
	b strings.Builder
}

func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line; labels must be pre-rendered ("" for none).
func (p *promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	// %g keeps integers integral (no trailing .0) and floats compact.
	fmt.Fprintf(&p.b, "%s%s %g\n", name, labels, v)
}

// labeledCounter emits a counter family whose samples carry one label,
// with the label values sorted for determinism.
func (p *promWriter) labeledCounter(name, help, label string, m map[string]int64) {
	p.family(name, help, "counter")
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.sample(name, fmt.Sprintf("%s=%q", label, k), float64(m[k]))
	}
}

// latency emits a LatencyStats window as a pseudo-summary: quantile
// samples plus a _count. No _sum — the ring keeps no running total, and a
// fabricated one would make rate(_sum)/rate(_count) silently wrong.
func (p *promWriter) latency(name, help, labels string, l LatencyStats) {
	p.family(name, help, "summary")
	sep := ""
	if labels != "" {
		sep = ","
	}
	p.sample(name, labels+sep+`quantile="0.5"`, l.P50)
	p.sample(name, labels+sep+`quantile="0.9"`, l.P90)
	p.sample(name, labels+sep+`quantile="0.99"`, l.P99)
	p.sample(name, labels+sep+`quantile="1"`, l.Max)
	p.sample(name+"_count", labels, float64(l.Count))
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// renderPrometheus turns a metrics snapshot into the text exposition
// document.
func renderPrometheus(s MetricsSnapshot) []byte {
	var p promWriter

	p.family("streamsched_uptime_seconds", "Seconds since the handle started.", "gauge")
	p.sample("streamsched_uptime_seconds", "", s.UptimeSeconds)

	p.labeledCounter("streamsched_requests_total", "HTTP requests by endpoint.", "endpoint", s.Requests)
	p.labeledCounter("streamsched_responses_total", "HTTP responses by status code.", "code", s.Responses)

	p.family("streamsched_solve_calls_total", "Underlying solver invocations.", "counter")
	p.sample("streamsched_solve_calls_total", "", float64(s.SolveCalls))
	p.family("streamsched_sim_runs_total", "Scenario simulations executed.", "counter")
	p.sample("streamsched_sim_runs_total", "", float64(s.SimRuns))
	p.family("streamsched_coalesced_total", "Requests served by piggybacking on an in-flight solve.", "counter")
	p.sample("streamsched_coalesced_total", "", float64(s.Coalesced))
	p.family("streamsched_panics_total", "Flight panics recovered to 500s.", "counter")
	p.sample("streamsched_panics_total", "", float64(s.Panics))

	p.family("streamsched_snapshot_writes_total", "Cache spills committed to disk.", "counter")
	p.sample("streamsched_snapshot_writes_total", "", float64(s.SnapshotWrites))
	p.family("streamsched_snapshot_replayed_total", "Cache entries restored by warm start.", "counter")
	p.sample("streamsched_snapshot_replayed_total", "", float64(s.SnapshotReplayed))
	p.family("streamsched_snapshot_skipped_total", "Snapshot entries rejected during replay.", "counter")
	p.sample("streamsched_snapshot_skipped_total", "", float64(s.SnapshotSkipped))

	p.family("streamsched_draining", "1 while the handle is draining, else 0.", "gauge")
	p.sample("streamsched_draining", "", boolGauge(s.Draining))

	p.family("streamsched_cache_hits_total", "Result cache hits.", "counter")
	p.sample("streamsched_cache_hits_total", "", float64(s.Cache.Hits))
	p.family("streamsched_cache_misses_total", "Result cache misses.", "counter")
	p.sample("streamsched_cache_misses_total", "", float64(s.Cache.Misses))
	p.family("streamsched_cache_entries", "Result cache occupancy.", "gauge")
	p.sample("streamsched_cache_entries", "", float64(s.Cache.Entries))
	p.family("streamsched_cache_capacity", "Result cache capacity.", "gauge")
	p.sample("streamsched_cache_capacity", "", float64(s.Cache.Capacity))

	p.family("streamsched_queue_depth", "Admitted work units waiting for a worker slot.", "gauge")
	p.sample("streamsched_queue_depth", "", float64(s.Queue.Depth))
	p.family("streamsched_queue_in_flight", "Work units executing.", "gauge")
	p.sample("streamsched_queue_in_flight", "", float64(s.Queue.InFlight))
	p.family("streamsched_queue_capacity", "Admission bound (workers + queue limit).", "gauge")
	p.sample("streamsched_queue_capacity", "", float64(s.Queue.Capacity))
	p.family("streamsched_queue_rejected_total", "Work units rejected by admission (429s).", "counter")
	p.sample("streamsched_queue_rejected_total", "", float64(s.Queue.Rejected))

	p.latency("streamsched_request_latency_ms",
		"Request latency; quantiles describe the recent ring window.", "", s.LatencyMs)

	if len(s.StagesMs) > 0 {
		stages := make([]string, 0, len(s.StagesMs))
		for name := range s.StagesMs {
			stages = append(stages, name)
		}
		sort.Strings(stages)
		p.family("streamsched_stage_latency_ms",
			"Per-pipeline-stage latency (traced requests only); quantiles describe the recent ring window.", "summary")
		for _, name := range stages {
			l := s.StagesMs[name]
			labels := fmt.Sprintf("stage=%q", name)
			p.sample("streamsched_stage_latency_ms", labels+`,quantile="0.5"`, l.P50)
			p.sample("streamsched_stage_latency_ms", labels+`,quantile="0.9"`, l.P90)
			p.sample("streamsched_stage_latency_ms", labels+`,quantile="0.99"`, l.P99)
			p.sample("streamsched_stage_latency_ms", labels+`,quantile="1"`, l.Max)
			p.sample("streamsched_stage_latency_ms_count", labels, float64(l.Count))
		}
	}

	return []byte(p.b.String())
}
