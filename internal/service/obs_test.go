package service

// Observability tests (DESIGN.md §12): the end-to-end tracing contract
// over real HTTP — X-Trace-Id on every response, the span tree on
// /debug/traces in JSON and Chrome forms, Server-Timing with
// ?debug=timing, the Prometheus exposition — plus the edge cases of the
// metrics machinery the scrape is built from (latency-ring wraparound,
// tiny windows, statusKey).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"streamsched/internal/obs"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

// getJSON fetches url and decodes the body into out.
func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s: %v\n%s", path, err, data)
		}
	}
	return resp
}

func TestTracedSolveEndToEnd(t *testing.T) {
	srv := New(Config{Tracing: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A cold solve, then a cache hit: both must carry trace IDs.
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/solve", feasibleRequest(2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: HTTP %d", resp.StatusCode)
	}
	coldID := resp.Header.Get("X-Trace-Id")
	if !traceIDRe.MatchString(coldID) {
		t.Fatalf("X-Trace-Id %q does not match %v", coldID, traceIDRe)
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/solve", feasibleRequest(2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached solve: HTTP %d\n%s", resp.StatusCode, body)
	}
	hitID := resp.Header.Get("X-Trace-Id")
	if !traceIDRe.MatchString(hitID) || hitID == coldID {
		t.Fatalf("cached solve trace ID %q (cold %q): want a distinct well-formed ID", hitID, coldID)
	}

	// The ring serves both traces, newest first, with the pipeline span
	// tree on the cold one: decode, hash, cache, flight, admission, solve
	// (with the algorithm's own child), render.
	var doc struct {
		Count  int             `json:"count"`
		Traces []obs.TraceJSON `json:"traces"`
	}
	getJSON(t, ts, "/debug/traces", &doc)
	if doc.Count != 2 || len(doc.Traces) != 2 {
		t.Fatalf("ring holds %d traces, want 2", doc.Count)
	}
	if doc.Traces[0].ID != hitID || doc.Traces[1].ID != coldID {
		t.Fatalf("ring order [%s %s], want newest-first [%s %s]",
			doc.Traces[0].ID, doc.Traces[1].ID, hitID, coldID)
	}
	cold := doc.Traces[1]
	if cold.Name != "/v1/solve" || cold.Status != http.StatusOK {
		t.Fatalf("cold trace name=%q status=%d", cold.Name, cold.Status)
	}
	names := make(map[string]int)
	for _, sp := range cold.Spans {
		names[sp.Name]++
	}
	for _, want := range []string{"decode", "hash", "cache", "flight", "admission", "solve", "render"} {
		if names[want] == 0 {
			t.Errorf("cold trace missing span %q (have %v)", want, names)
		}
	}
	if names["rltf"] == 0 {
		t.Errorf("cold trace missing the solver phase span %q (have %v)", "rltf", names)
	}
	// The solver span nests under the flight, which nests under the root.
	var flightIdx = -1
	for i, sp := range cold.Spans {
		if sp.Name == "flight" {
			flightIdx = i
		}
	}
	foundNested := false
	for _, sp := range cold.Spans {
		if sp.Name == "solve" && int(sp.Parent) == flightIdx {
			foundNested = true
		}
	}
	if !foundNested {
		t.Errorf("no solve span parented to the flight span (index %d)", flightIdx)
	}
	// Hash and outcome are stamped on the root.
	root := cold.Spans[0]
	if root.Args["outcome"] != "solved" {
		t.Errorf("cold root outcome = %v, want solved", root.Args["outcome"])
	}
	if hit := doc.Traces[0].Spans[0]; hit.Args["outcome"] != "cached" {
		t.Errorf("hit root outcome = %v, want cached", hit.Args["outcome"])
	}

	// Chrome export: a parseable event array.
	resp = getJSON(t, ts, "/debug/traces?format=chrome", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome export: HTTP %d", resp.StatusCode)
	}
	var events []map[string]any
	r2, err := ts.Client().Get(ts.URL + "/debug/traces?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r2.Body).Decode(&events); err != nil {
		t.Fatalf("chrome export does not parse: %v", err)
	}
	r2.Body.Close()
	if len(events) == 0 {
		t.Fatal("chrome export is empty")
	}

	// ?debug=timing adds Server-Timing with stage durations.
	enc, _ := json.Marshal(feasibleRequest(2))
	r3, err := ts.Client().Post(ts.URL+"/v1/solve?debug=timing", "application/json", strings.NewReader(string(enc)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r3.Body)
	r3.Body.Close()
	st := r3.Header.Get("Server-Timing")
	if !strings.Contains(st, "dur=") || !strings.Contains(st, "cache") {
		t.Fatalf("Server-Timing %q: want stage entries with dur=", st)
	}

	// Stage latency rings surface in /metrics and the Prometheus scrape.
	m := getMetrics(t, ts)
	if m.StagesMs["cache"].Count == 0 {
		t.Fatalf("stagesMs missing cache observations: %+v", m.StagesMs)
	}
	r4, err := ts.Client().Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(r4.Body)
	r4.Body.Close()
	if ct := r4.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE streamsched_requests_total counter",
		`streamsched_requests_total{endpoint="solve"} `,
		`streamsched_request_latency_ms{quantile="0.99"} `,
		`streamsched_stage_latency_ms{stage="cache",quantile="0.5"} `,
		"streamsched_cache_hits_total 2",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("prometheus scrape missing %q", want)
		}
	}
}

func TestTracingDisabledIsInvisible(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/solve", feasibleRequest(3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: HTTP %d", resp.StatusCode)
	}
	if id := resp.Header.Get("X-Trace-Id"); id != "" {
		t.Fatalf("untraced handle stamped X-Trace-Id %q", id)
	}
	if resp := getJSON(t, ts, "/debug/traces", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/traces on an untraced handle: HTTP %d, want 404", resp.StatusCode)
	}
	if m := getMetrics(t, ts); len(m.StagesMs) != 0 {
		t.Fatalf("untraced handle reported stage latencies: %+v", m.StagesMs)
	}
}

func TestRequestLogEntries(t *testing.T) {
	var entries []RequestLogEntry
	srv := New(Config{Tracing: true, RequestLog: func(e RequestLogEntry) { entries = append(entries, e) }})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/solve", feasibleRequest(4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: HTTP %d", resp.StatusCode)
	}
	resp2, _ := postJSON(t, ts.Client(), ts.URL+"/v1/solve", infeasibleRequest())
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("infeasible solve: HTTP %d", resp2.StatusCode)
	}
	if len(entries) != 2 {
		t.Fatalf("%d log entries, want 2", len(entries))
	}
	e := entries[0]
	if e.TraceID != resp.Header.Get("X-Trace-Id") || e.Method != "POST" || e.Path != "/v1/solve" ||
		e.Status != http.StatusOK || e.Outcome != "solved" || e.Hash == "" || e.DurationMs <= 0 {
		t.Fatalf("solve log entry %+v", e)
	}
	if len(e.Stages) == 0 || e.Stages["decode"] < 0 {
		t.Fatalf("solve log entry missing stage breakdown: %+v", e.Stages)
	}
	if e2 := entries[1]; e2.Status != http.StatusConflict || e2.Outcome != "infeasible" {
		t.Fatalf("infeasible log entry %+v", e2)
	}
}

// ---- metrics machinery edge cases --------------------------------------

func TestLatencyRingWraparound(t *testing.T) {
	var r latencyRing
	// 500 past capacity: the window must hold exactly the most recent
	// latencyRingSize observations (501..4596 of the ascending feed).
	total := latencyRingSize + 500
	for i := 1; i <= total; i++ {
		r.observe(float64(i))
	}
	cnt, p50, _, _, max := r.snapshot()
	if cnt != int64(total) {
		t.Fatalf("count = %d, want %d (all-time, not windowed)", cnt, total)
	}
	if max != float64(total) {
		t.Fatalf("max = %g, want %g (newest observation)", max, float64(total))
	}
	// Window is [501, 4596]; p50 indexes int(0.5*(n-1)) = 2047 of the
	// sorted window, i.e. 501+2047.
	if want := float64(501 + (latencyRingSize-1)/2); p50 != want {
		t.Fatalf("p50 = %g, want %g (window must exclude overwritten entries)", p50, want)
	}
}

func TestLatencyRingTinyWindows(t *testing.T) {
	var empty latencyRing
	cnt, p50, p90, p99, max := empty.snapshot()
	if cnt != 0 || p50 != 0 || p90 != 0 || p99 != 0 || max != 0 {
		t.Fatalf("empty ring snapshot = (%d %g %g %g %g), want all zero", cnt, p50, p90, p99, max)
	}
	var one latencyRing
	one.observe(7.5)
	cnt, p50, p90, p99, max = one.snapshot()
	if cnt != 1 || p50 != 7.5 || p90 != 7.5 || p99 != 7.5 || max != 7.5 {
		t.Fatalf("n=1 snapshot = (%d %g %g %g %g), want every quantile 7.5", cnt, p50, p90, p99, max)
	}
}

func TestStatusKeyExhaustive(t *testing.T) {
	for status := 100; status <= 599; status++ {
		if got, want := statusKey(status), fmt.Sprintf("%d", status); got != want {
			t.Fatalf("statusKey(%d) = %q, want %q", status, got, want)
		}
	}
	for _, status := range []int{99, 1000, 0, -1, 99999} {
		if got := statusKey(status); got != "other" {
			t.Errorf("statusKey(%d) = %q, want other", status, got)
		}
	}
}
