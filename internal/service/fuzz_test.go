package service

// Native fuzz targets for the wire boundary — the only place untrusted
// bytes enter the stack. Two properties are pinned:
//
//   - FuzzWireDecode: for any JSON that decodes and builds, encoding is a
//     fixed point — decode(encode(decode(x))) re-encodes byte-identically.
//     This is the byte-stability contract the cache and proxies rely on,
//     extended from the structured property tests to adversarial input.
//   - FuzzCanonicalProblemHash: the canonical problem hash never panics on
//     any input that builds, is deterministic, and is invariant under a
//     wire round-trip of the problem (so cache keys computed from decoded
//     requests equal keys computed from re-encoded ones).
//
// Seed corpus: testdata/fuzz/<target>/. CI runs each target for a short
// budget (make fuzz); `go test -fuzz` explores from the same seeds.

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodeBuildable decodes a SolveRequest and builds its graph and
// platform, reporting ok=false for input that the wire layer rejects —
// rejection is a valid outcome for adversarial bytes, never a failure.
func decodeBuildable(data []byte) (req SolveRequest, ok bool) {
	if err := json.Unmarshal(data, &req); err != nil {
		return req, false
	}
	return req, true
}

func FuzzWireDecode(f *testing.F) {
	f.Add([]byte(`{"v":1,"graph":{"tasks":[{"work":1},{"work":2}],"edges":[{"from":0,"to":1,"volume":1}]},"platform":{"speeds":[1,1],"bandwidth":[[0,1],[1,0]]},"options":{"period":4}}`))
	f.Add([]byte(`{"graph":{"tasks":[{"name":"α","work":0.5}]},"platform":{"speeds":[2],"bandwidth":[[0]]}}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, ok := decodeBuildable(data)
		if !ok {
			return
		}
		if g, err := req.Graph.Build(); err == nil {
			enc1, err := json.Marshal(GraphDTO(g))
			if err != nil {
				t.Fatalf("marshal decoded graph: %v", err)
			}
			var w2 Graph
			if err := json.Unmarshal(enc1, &w2); err != nil {
				t.Fatalf("re-decode emitted graph: %v", err)
			}
			g2, err := w2.Build()
			if err != nil {
				t.Fatalf("re-build emitted graph: %v", err)
			}
			enc2, err := json.Marshal(GraphDTO(g2))
			if err != nil {
				t.Fatalf("re-marshal graph: %v", err)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("graph encoding not a fixed point:\n first %s\nsecond %s", enc1, enc2)
			}
		}
		if p, err := req.Platform.Build(); err == nil {
			enc1, err := json.Marshal(PlatformDTO(p))
			if err != nil {
				t.Fatalf("marshal decoded platform: %v", err)
			}
			var w2 Platform
			if err := json.Unmarshal(enc1, &w2); err != nil {
				t.Fatalf("re-decode emitted platform: %v", err)
			}
			p2, err := w2.Build()
			if err != nil {
				t.Fatalf("re-build emitted platform: %v", err)
			}
			enc2, err := json.Marshal(PlatformDTO(p2))
			if err != nil {
				t.Fatalf("re-marshal platform: %v", err)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("platform encoding not a fixed point:\n first %s\nsecond %s", enc1, enc2)
			}
		}
	})
}

func FuzzCanonicalProblemHash(f *testing.F) {
	f.Add([]byte(`{"v":1,"graph":{"name":"g","tasks":[{"work":1},{"work":2},{"work":3}],"edges":[{"from":0,"to":2},{"from":1,"to":2,"volume":2.5}]},"platform":{"speeds":[1,2],"bandwidth":[[0,3],[3,0]]},"options":{"algorithm":"ltf","eps":1,"period":9}}`))
	f.Add([]byte(`{"graph":{"tasks":[{"work":1e300}]},"platform":{"speeds":[1e-300],"bandwidth":[[0]]},"options":{"period":0.125}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, ok := decodeBuildable(data)
		if !ok {
			return
		}
		g, err := req.Graph.Build()
		if err != nil {
			return
		}
		p, err := req.Platform.Build()
		if err != nil {
			return
		}
		s, err := req.Options.Solver()
		if err != nil {
			return
		}
		h1 := ProblemHash(g, p, s)
		if len(h1) != 64 {
			t.Fatalf("hash %q is not 64 hex chars", h1)
		}
		if h2 := ProblemHash(g, p, s); h2 != h1 {
			t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
		}
		// The hash is a function of the problem, not of its wire spelling:
		// a DTO round-trip must preserve it.
		genc, err := json.Marshal(GraphDTO(g))
		if err != nil {
			t.Fatalf("marshal graph: %v", err)
		}
		penc, err := json.Marshal(PlatformDTO(p))
		if err != nil {
			t.Fatalf("marshal platform: %v", err)
		}
		var gw Graph
		var pw Platform
		if err := json.Unmarshal(genc, &gw); err != nil {
			t.Fatalf("re-decode graph: %v", err)
		}
		if err := json.Unmarshal(penc, &pw); err != nil {
			t.Fatalf("re-decode platform: %v", err)
		}
		g2, err := gw.Build()
		if err != nil {
			t.Fatalf("re-build graph: %v", err)
		}
		p2, err := pw.Build()
		if err != nil {
			t.Fatalf("re-build platform: %v", err)
		}
		if h3 := ProblemHash(g2, p2, s); h3 != h1 {
			t.Fatalf("hash not stable under wire round-trip: %s vs %s", h1, h3)
		}
	})
}
