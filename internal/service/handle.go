package service

// The in-process service API. Handle owns the full serving pipeline —
// canonical hashing, the LRU result cache, single-flight coalescing,
// admission (bounded queue + worker slots) and the metrics — with no HTTP
// anywhere in sight: embedders call Solve/SolveBatch/Replan directly and
// get the same caching, coalescing and backpressure behaviour as a remote
// client of streamschedd. Server (server.go) is a thin HTTP adapter over a
// Handle: it decodes wire DTOs, delegates here, and renders responses.
//
// Request lifecycle for Solve:
//
//	canonical hash → cache (hit: return) → flight Claim
//	  follower: wait for the flight's outcome (no queue slot consumed)
//	  leader:   start the flight — admission (bounded queue → worker
//	            slot) → solve → cache.Put → Fulfill — in a DETACHED
//	            goroutine under the handle's own compute budget
//	            (MaxTimeout), then wait on it like a follower
//
// Detaching the computation from the leader's caller context is what
// makes coalescing sound: a leader that gives up, or whose deadline is
// shorter than a follower's, must not poison the followers with its
// context error. Every caller honors its own deadline while waiting; the
// work itself always runs to completion (within MaxTimeout) and lands in
// the cache. Replan runs the same lifecycle keyed by ReplanHash — the
// (problem, schedule, delta, policy) tuple — in the same cache and flight
// map as Solve (the key spaces are disjoint by construction: distinct
// leading magics).

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"streamsched/internal/core"
	"streamsched/internal/dag"
	"streamsched/internal/faultinject"
	"streamsched/internal/obs"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// ErrQueueFull is the admission rejection: the handle already has
// Workers+QueueLimit work units pending. The HTTP adapter maps it to 429.
var ErrQueueFull = errors.New("service: work queue full")

// Handle is the in-process scheduling service. Build with NewHandle (or
// New for the HTTP-serving Server). Methods are safe for concurrent use.
type Handle struct {
	cfg     Config
	slots   chan struct{}
	cache   *lruCache
	flights *flightGroup
	m       *metrics
	// traces is the /debug/traces ring; nil unless Config.Tracing. Its
	// non-nilness is the handle-level tracing switch — the HTTP adapter
	// only opens traces when it is set, and NewHandle arms the obs layer
	// process-wide exactly once per traced handle.
	traces *obs.Ring

	// Lifecycle (lifecycle.go). life holds lifeStarting/lifeReady/
	// lifeDraining; drainMu synchronizes flight registration against the
	// drain transition, and flightWG is the set of registered flights a
	// drain waits out.
	life     atomic.Int32
	drainMu  sync.RWMutex
	flightWG sync.WaitGroup

	// Snapshot machinery (persist.go, lifecycle.go). snapMu serializes
	// spills; snapStop/snapDone bracket the background ticker goroutine.
	snapMu    sync.Mutex
	loopOnce  sync.Once
	snapStop  chan struct{}
	snapDone  chan struct{}
	drainOnce sync.Once
	drainRep  DrainReport

	// solve and replan perform one underlying computation; tests swap them
	// to gate or count solver entry deterministically.
	solve  func(ctx context.Context, sv *core.Solver, g *dag.Graph, p *platform.Platform) (*schedule.Schedule, error)
	replan func(ctx context.Context, sv *core.Solver, old *schedule.Schedule, d core.Delta, opts ...core.ReplanOption) (*core.ReplanResult, error)
}

// NewHandle builds an in-process service handle from cfg (zero value:
// sensible defaults).
func NewHandle(cfg Config) *Handle {
	cfg = cfg.withDefaults()
	h := &Handle{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.Workers),
		cache:   newLRUCache(cfg.CacheEntries),
		flights: newFlightGroup(),
		m:       newMetrics(),
	}
	if cfg.Tracing {
		h.traces = obs.NewRing(cfg.TraceRingSize)
		// Arm the process-wide tracing gate for the handle's lifetime.
		// Handles have no Close; the arming is monotone, which is safe —
		// untraced handles never open a trace, so their requests still pay
		// only the FromContext atomic load.
		obs.Enable()
	}
	if cfg.SnapshotPath == "" {
		// No warm start to wait for: born ready. With a snapshot path the
		// handle starts in lifeStarting and WarmStart flips it.
		h.life.Store(lifeReady)
	}
	h.solve = func(ctx context.Context, sv *core.Solver, g *dag.Graph, p *platform.Platform) (*schedule.Schedule, error) {
		if err := h.debugDelay(ctx); err != nil {
			return nil, err
		}
		return sv.Solve(ctx, g, p)
	}
	h.replan = func(ctx context.Context, sv *core.Solver, old *schedule.Schedule, d core.Delta, opts ...core.ReplanOption) (*core.ReplanResult, error) {
		if err := h.debugDelay(ctx); err != nil {
			return nil, err
		}
		return sv.Replan(ctx, old, d, opts...)
	}
	return h
}

// debugDelay sleeps the configured SolveDelay (load/smoke testing only).
func (h *Handle) debugDelay(ctx context.Context) error {
	if h.cfg.SolveDelay <= 0 {
		return nil
	}
	select {
	case <-time.After(h.cfg.SolveDelay):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Metrics returns a point-in-time snapshot of the service counters.
func (h *Handle) Metrics() MetricsSnapshot { return h.snapshot() }

// ---- public request/result types ---------------------------------------

// Spec is one in-process solve request: a validated in-memory problem.
// (Wire-facing callers decode their DTOs first; see Graph.Build,
// Platform.Build and Options.Solver.)
type Spec struct {
	Graph    *dag.Graph
	Platform *platform.Platform
	Solver   *core.Solver
}

func (sp Spec) validate() error {
	if sp.Graph == nil || sp.Platform == nil || sp.Solver == nil {
		return errors.New("service: spec requires graph, platform and solver")
	}
	return nil
}

// ReplanSpec is one in-process replan request: a committed schedule (which
// carries its graph and pre-delta platform), the solver to repair or
// re-solve with, the platform delta, and the repair policy.
type ReplanSpec struct {
	Old    *schedule.Schedule
	Solver *core.Solver
	Delta  core.Delta
	// RepairBudget bounds search re-placements (0 = unlimited).
	RepairBudget int
	// NoColdFallback surfaces repair failure instead of re-solving cold.
	NoColdFallback bool
}

func (sp ReplanSpec) validate() error {
	if sp.Old == nil || sp.Solver == nil {
		return errors.New("service: replan spec requires the committed schedule and a solver")
	}
	return nil
}

// Outcome is the in-process result of Solve or Replan. Exactly one of
// Schedule (with ScheduleJSON and Summary) and Infeasible is set.
type Outcome struct {
	// Hash is the canonical cache key of the request.
	Hash string
	// Cached reports an LRU hit; Coalesced that the call piggybacked on an
	// identical in-flight computation.
	Cached    bool
	Coalesced bool
	// Schedule is the result; ScheduleJSON its interchange rendering,
	// marshalled once at solve time and shared by every cache hit.
	Schedule     *schedule.Schedule
	ScheduleJSON []byte
	Summary      *ScheduleSummary
	// Infeasible is the typed "no schedule exists" outcome.
	Infeasible *Infeasible
	// Replan carries the repair statistics of a Replan outcome.
	Replan *core.RepairStats
}

// BatchResult pairs one batch element's outcome with its error; exactly
// one of the two is meaningful.
type BatchResult struct {
	Outcome Outcome
	Err     error
}

// publish converts an internal outcome to the public form.
func publish(out outcome, hash string, state hitState) Outcome {
	return Outcome{
		Hash:         hash,
		Cached:       state == hitCache,
		Coalesced:    state == hitCoalesced,
		Schedule:     out.sched,
		ScheduleJSON: out.schedJSON,
		Summary:      out.summary,
		Infeasible:   out.infeas,
		Replan:       out.replan,
	}
}

// ---- public pipeline entry points ---------------------------------------

// Solve resolves one problem through cache → coalescing → admission →
// solver, waiting under ctx (which should carry the caller's deadline).
// Infeasibility is an Outcome, not an error; ErrQueueFull and context
// errors are errors.
func (h *Handle) Solve(ctx context.Context, sp Spec) (Outcome, error) {
	if h.Draining() {
		return Outcome{}, ErrDraining
	}
	if err := sp.validate(); err != nil {
		return Outcome{}, err
	}
	out, hash, state, err := h.solveProblem(ctx, sp.Graph, sp.Platform, sp.Solver)
	if err != nil {
		return Outcome{Hash: hash}, err
	}
	return publish(out, hash, state), nil
}

// Replan resolves one replan request through the same cache → coalescing →
// admission pipeline as Solve, keyed by the canonical replan hash.
func (h *Handle) Replan(ctx context.Context, sp ReplanSpec) (Outcome, error) {
	if h.Draining() {
		return Outcome{}, ErrDraining
	}
	if err := sp.validate(); err != nil {
		return Outcome{}, err
	}
	hash, err := ReplanHash(sp)
	if err != nil {
		return Outcome{}, err
	}
	out, state, err := h.replanProblem(ctx, hash, sp)
	if err != nil {
		return Outcome{Hash: hash}, err
	}
	return publish(out, hash, state), nil
}

// SolveBatch resolves many problems, returning one result per spec in
// order. Cache hits and coalesced joins resolve without consuming solver
// capacity; the led solves fan out through core.Batch on the worker pool,
// each admitting itself as its own work unit, so one batch can never
// exceed the handle's Workers bound. A nil result error accompanies a
// complete Outcome (possibly infeasible).
func (h *Handle) SolveBatch(ctx context.Context, specs []Spec) []BatchResult {
	if h.Draining() {
		results := make([]BatchResult, len(specs))
		for i := range results {
			results[i] = BatchResult{Err: ErrDraining}
		}
		return results
	}
	items := make([]batchItem, len(specs))
	var leaders []int
	for i, sp := range specs {
		it := &items[i]
		if it.err = sp.validate(); it.err != nil {
			continue
		}
		it.g, it.p, it.sv = sp.Graph, sp.Platform, sp.Solver
		it.hash = ProblemHash(it.g, it.p, it.sv)
		if out, ok := h.cache.Get(it.hash); ok {
			h.m.cacheHits.Add(1)
			it.out, it.state = out, hitCache
			continue
		}
		f, leader, err := h.claimFlight(it.hash)
		if err != nil {
			it.err = err
			continue
		}
		if !leader {
			h.m.coalesced.Add(1)
			it.flight, it.state = f, hitCoalesced
			continue
		}
		h.m.cacheMisses.Add(1)
		it.lead = f
		leaders = append(leaders, i)
	}

	// Start the led solves detached from this caller's context, like any
	// flight (file header), then collect every non-cached element's flight
	// under the caller's deadline.
	if len(leaders) > 0 {
		go h.runBatchFlights(leaders, items, obs.FromContext(ctx))
	}
	results := make([]BatchResult, len(items))
	for i := range items {
		it := &items[i]
		if f := it.lead; f != nil {
			it.out, it.err = f.Wait(ctx)
		} else if it.flight != nil {
			it.out, it.err = it.flight.Wait(ctx)
			if errors.Is(it.err, ErrInternalPanic) {
				// The foreign flight this item coalesced onto panicked;
				// retry through the full pipeline like any follower.
				it.out, _, it.state, it.err = h.solveProblem(ctx, it.g, it.p, it.sv)
			}
		}
		if it.err != nil {
			results[i] = BatchResult{Outcome: Outcome{Hash: it.hash}, Err: it.err}
			continue
		}
		results[i] = BatchResult{Outcome: publish(it.out, it.hash, it.state)}
	}
	return results
}

// ---- internal pipeline ---------------------------------------------------

// admit acquires one work unit: a place within the Workers+QueueLimit
// bound, then a worker slot. It returns the release function, ErrQueueFull
// when the bound is exceeded, or ctx.Err() if the deadline expires while
// queued.
func (h *Handle) admit(ctx context.Context) (release func(), err error) {
	if faultinject.Fire(SiteAdmitReject) {
		h.m.rejected.Add(1)
		return nil, ErrQueueFull
	}
	limit := int64(h.cfg.Workers + h.cfg.QueueLimit)
	if h.m.pending.Add(1) > limit {
		h.m.pending.Add(-1)
		h.m.rejected.Add(1)
		return nil, ErrQueueFull
	}
	select {
	case h.slots <- struct{}{}:
		h.m.inFlight.Add(1)
		return func() {
			<-h.slots
			h.m.inFlight.Add(-1)
			h.m.pending.Add(-1)
		}, nil
	case <-ctx.Done():
		h.m.pending.Add(-1)
		return nil, ctx.Err()
	}
}

// hitState records how an outcome was obtained.
type hitState int

const (
	hitSolved hitState = iota
	hitCache
	hitCoalesced
)

// solveProblem resolves one problem through cache → coalescing → admission
// → solver. Every returned outcome has exactly one of sched/infeas set;
// err covers everything else (queue full, deadline, draining, solver
// fault). The caller waits under its own ctx; the underlying computation
// runs detached (see the file header). A follower whose leader's flight
// panicked re-enters the pipeline — the panic is the leader's failure, not
// the problem's — bounded by maxPanicRetries so a deterministically
// panicking computation still surfaces.
func (h *Handle) solveProblem(ctx context.Context, g *dag.Graph, p *platform.Platform, sv *core.Solver) (outcome, string, hitState, error) {
	sp := obs.FromContext(ctx)
	hs := sp.Child("hash")
	hash := ProblemHash(g, p, sv)
	hs.End()
	for attempt := 0; ; attempt++ {
		cs := sp.Child("cache")
		out, ok := h.cache.Get(hash)
		cs.End()
		if ok {
			h.m.cacheHits.Add(1)
			return out, hash, hitCache, nil
		}
		f, leader, err := h.claimFlight(hash)
		if err != nil {
			return outcome{}, hash, hitSolved, err
		}
		if leader {
			h.m.cacheMisses.Add(1)
			go h.runFlight(hash, f, g, p, sv, sp)
			out, err := f.Wait(ctx)
			return out, hash, hitSolved, err
		}
		h.m.coalesced.Add(1)
		cw := sp.Child("coalesce")
		out, err = f.Wait(ctx)
		cw.End()
		if errors.Is(err, ErrInternalPanic) && attempt < maxPanicRetries {
			continue
		}
		return out, hash, hitCoalesced, err
	}
}

// replanProblem is solveProblem for a replan request, keyed by the
// precomputed replan hash.
func (h *Handle) replanProblem(ctx context.Context, hash string, sp ReplanSpec) (outcome, hitState, error) {
	tsp := obs.FromContext(ctx)
	for attempt := 0; ; attempt++ {
		cs := tsp.Child("cache")
		out, ok := h.cache.Get(hash)
		cs.End()
		if ok {
			h.m.cacheHits.Add(1)
			return out, hitCache, nil
		}
		f, leader, err := h.claimFlight(hash)
		if err != nil {
			return outcome{}, hitSolved, err
		}
		if leader {
			h.m.cacheMisses.Add(1)
			go h.runReplanFlight(hash, f, sp, tsp)
			out, err := f.Wait(ctx)
			return out, hitSolved, err
		}
		h.m.coalesced.Add(1)
		cw := tsp.Child("coalesce")
		out, err = f.Wait(ctx)
		cw.End()
		if errors.Is(err, ErrInternalPanic) && attempt < maxPanicRetries {
			continue
		}
		return out, hitCoalesced, err
	}
}

// runFlight executes one claimed flight — admission, solve, cache fill,
// fulfillment — under the handle's own compute budget, independent of any
// requester's context. Queue-full is decided immediately (admit rejects
// without blocking when the bound is exceeded), so a rejected flight
// resolves at once.
func (h *Handle) runFlight(hash string, f *flight, g *dag.Graph, p *platform.Platform, sv *core.Solver, tsp obs.SpanRef) {
	// Registered before Fulfill's work so it runs after it: when the drain
	// WaitGroup clears, every flight's outcome is committed to the cache.
	defer h.flightWG.Done()
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.MaxTimeout)
	defer cancel()
	// The flight runs detached from the requester's context, but its spans
	// belong to the leading requester's trace: re-inject the span into the
	// detached context. An abandoned flight keeps writing to the trace
	// after Finish — recorded, never raced (obs.Trace is mutex'd).
	fs := tsp.Child("flight")
	ctx = obs.ContextWith(ctx, fs)
	out, err := h.computeFlightSafe(ctx, hash, g, p, sv)
	fs.End()
	h.flights.Fulfill(hash, f, out, err)
}

// runReplanFlight is runFlight for a replan flight.
func (h *Handle) runReplanFlight(hash string, f *flight, sp ReplanSpec, tsp obs.SpanRef) {
	defer h.flightWG.Done()
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.MaxTimeout)
	defer cancel()
	fs := tsp.Child("flight")
	ctx = obs.ContextWith(ctx, fs)
	out, err := h.computeReplanFlightSafe(ctx, hash, sp)
	fs.End()
	h.flights.Fulfill(hash, f, out, err)
}

// computeFlightSafe is computeFlight behind the panic isolation boundary:
// a panic anywhere below (solver fault or injected) unwinds the admission
// defers, becomes an ErrInternalPanic error for the flight's waiters, and
// never reaches the detached goroutine's top — where it would kill the
// process, not a request.
func (h *Handle) computeFlightSafe(ctx context.Context, hash string, g *dag.Graph, p *platform.Platform, sv *core.Solver) (out outcome, err error) {
	defer h.recoverFault(&err)
	return h.computeFlight(ctx, hash, g, p, sv)
}

// computeReplanFlightSafe is the panic isolation boundary of a replan
// flight.
func (h *Handle) computeReplanFlightSafe(ctx context.Context, hash string, sp ReplanSpec) (out outcome, err error) {
	defer h.recoverFault(&err)
	return h.computeReplanFlight(ctx, hash, sp)
}

// computeFlight resolves a led flight: one last cache check — a previous
// flight may have fulfilled and vanished between this requester's cache
// miss and its Claim, and re-solving an already-cached problem would break
// the "equal hashes solve once" invariant — then an admission-bounded
// solve whose result fills the cache.
func (h *Handle) computeFlight(ctx context.Context, hash string, g *dag.Graph, p *platform.Platform, sv *core.Solver) (outcome, error) {
	if out, ok := h.cache.Get(hash); ok {
		return out, nil
	}
	out, err := h.solveAdmitted(ctx, g, p, sv)
	if err == nil {
		h.cache.Put(hash, out)
	}
	return out, err
}

// computeReplanFlight is computeFlight for a replan flight.
func (h *Handle) computeReplanFlight(ctx context.Context, hash string, sp ReplanSpec) (outcome, error) {
	if out, ok := h.cache.Get(hash); ok {
		return out, nil
	}
	release, err := h.admitTraced(ctx)
	if err != nil {
		return outcome{}, err
	}
	defer release()
	out, err := h.computeReplan(ctx, sp)
	if err == nil {
		h.cache.Put(hash, out)
	}
	return out, err
}

// admitTraced is admit wrapped in an "admission" span — the queue wait a
// traced request sees.
func (h *Handle) admitTraced(ctx context.Context) (release func(), err error) {
	as := obs.FromContext(ctx).Child("admission")
	release, err = h.admit(ctx)
	as.End()
	return release, err
}

// compute runs the underlying solver and folds typed infeasibility into
// the outcome (it is a result, not a failure).
func (h *Handle) compute(ctx context.Context, g *dag.Graph, p *platform.Platform, sv *core.Solver) (outcome, error) {
	if err := h.injectFlightFaults(ctx); err != nil {
		return outcome{}, err
	}
	h.m.solveCalls.Add(1)
	sp := obs.FromContext(ctx)
	ss := sp.Child("solve")
	sched, err := h.solve(obs.ContextWith(ctx, ss), sv, g, p)
	ss.End()
	if err != nil {
		return foldInfeasible(err)
	}
	rs := sp.Child("render")
	out, err := renderOutcome(sched)
	rs.End()
	return out, err
}

// computeReplan runs the underlying replan and folds typed infeasibility.
// It counts as a solver invocation: the coalescing and caching invariants
// ("equal hashes compute once") are asserted against solveCalls.
func (h *Handle) computeReplan(ctx context.Context, sp ReplanSpec) (outcome, error) {
	if err := h.injectFlightFaults(ctx); err != nil {
		return outcome{}, err
	}
	h.m.solveCalls.Add(1)
	tsp := obs.FromContext(ctx)
	ss := tsp.Child("solve")
	if ss.Active() {
		ss.SetArg("kind", "replan")
	}
	opts := []core.ReplanOption{core.WithRepairBudget(sp.RepairBudget), core.WithColdFallback(!sp.NoColdFallback)}
	res, err := h.replan(obs.ContextWith(ctx, ss), sp.Solver, sp.Old, sp.Delta, opts...)
	ss.End()
	if err != nil {
		return foldInfeasible(err)
	}
	rs := tsp.Child("render")
	out, err := renderOutcome(res.Schedule)
	rs.End()
	if err != nil {
		return outcome{}, err
	}
	stats := res.Stats
	out.replan = &stats
	return out, nil
}

// solveAdmitted is one admission-bounded solve: acquire a work unit, run
// the solver, fold infeasibility, render.
func (h *Handle) solveAdmitted(ctx context.Context, g *dag.Graph, p *platform.Platform, sv *core.Solver) (outcome, error) {
	release, err := h.admitTraced(ctx)
	if err != nil {
		return outcome{}, err
	}
	defer release()
	return h.compute(ctx, g, p, sv)
}

// batchItem tracks one problem of a batch through the pipeline.
type batchItem struct {
	g    *dag.Graph
	p    *platform.Platform
	sv   *core.Solver
	hash string

	out    outcome
	state  hitState
	err    error
	flight *flight // non-nil: wait on a foreign in-flight solve
	lead   *flight // non-nil: this batch owns the flight and must fulfill
}

// runBatchFlights executes a batch's led solves through core.Batch under
// the handle's compute budget. Each problem's flight is fulfilled (and the
// cache filled) inside the pool hook, the moment its own result lands —
// a waiter coalesced onto problem #1 must not stall behind problem #100.
// The hook admits every problem individually: the pool's goroutines queue
// on the shared worker slots, they do not multiply them.
func (h *Handle) runBatchFlights(leaders []int, items []batchItem, tsp obs.SpanRef) {
	// One WaitGroup registration per led flight (claimFlight); all of them
	// resolve — including the leftover loop below — before this returns.
	defer func() {
		for range leaders {
			h.flightWG.Done()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.MaxTimeout)
	defer cancel()
	reqs := make([]core.Request, len(leaders))
	for k, i := range leaders {
		reqs[k] = core.Request{Graph: items[i].g, Platform: items[i].p}
	}
	fulfilled := make([]bool, len(leaders)) // per-lane writes, no sharing
	batch := core.Batch{Workers: h.cfg.Workers}
	results := batch.SolveFunc(ctx, reqs, func(ctx context.Context, k int, _ core.Request) (*schedule.Schedule, error) {
		it := &items[leaders[k]]
		fs := tsp.Child("flight")
		if fs.Active() {
			fs.SetArg("hash", it.hash[:12])
		}
		out, err := h.computeFlightSafe(obs.ContextWith(ctx, fs), it.hash, it.g, it.p, it.sv)
		fs.End()
		h.flights.Fulfill(it.hash, it.lead, out, err)
		fulfilled[k] = true
		return nil, err // the flight already carries the outcome
	})
	// SolveFunc fails requests fast without running the hook once its
	// context expires; their flights must still resolve or waiters would
	// hang until their own deadlines.
	for k, i := range leaders {
		if !fulfilled[k] {
			h.flights.Fulfill(items[i].hash, items[i].lead, outcome{}, results[k].Err)
		}
	}
}
