package schedule

// Energy accounting — the extension objective the paper's conclusion
// singles out ("minimize the dissipated power for a prescribed
// performance"). The model is the standard CMOS abstraction used across
// the energy-aware scheduling literature:
//
//   - dynamic energy: running work w at speed s draws power ∝ s³ for w/s
//     time, i.e. energy Dyn·s²·w per replica execution;
//   - static energy: every processor hosting at least one replica burns
//     Static·Δ per data item (it must stay powered for the whole period);
//   - communication energy: Comm·volume per inter-processor transfer.
//
// Replication multiplies all three terms — the energy cost of reliability,
// quantified by the EnergyOverhead helper.

// EnergyModel sets the coefficients of the three terms.
type EnergyModel struct {
	// Dyn scales dynamic compute energy (energy per speed²·work unit).
	Dyn float64
	// Static is the per-period power of a powered processor.
	Static float64
	// Comm is the energy per data-volume unit crossing a link.
	Comm float64
}

// DefaultEnergyModel returns coefficients that weigh the three terms
// comparably for unit-scale workloads.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{Dyn: 1, Static: 0.1, Comm: 0.01}
}

// EnergyPerItem returns the energy consumed per data item under the model.
func (s *Schedule) EnergyPerItem(m EnergyModel) float64 {
	dyn := 0.0
	for _, r := range s.All() {
		sp := s.P.Speed(r.Proc)
		dyn += sp * sp * s.G.Task(r.Ref.Task).Work
	}
	comm := 0.0
	for _, r := range s.All() {
		for _, c := range r.In {
			if src := s.Replica(c.From); src != nil && src.Proc != r.Proc {
				comm += c.Volume
			}
		}
	}
	return m.Dyn*dyn + m.Static*s.Period*float64(s.ProcsUsed()) + m.Comm*comm
}

// EnergyOverhead returns the relative extra energy of this schedule against
// a reference (typically the fault-free schedule): (E − E_ref)/E_ref.
func (s *Schedule) EnergyOverhead(m EnergyModel, ref *Schedule) float64 {
	e := s.EnergyPerItem(m)
	er := ref.EnergyPerItem(m)
	return (e - er) / er
}
