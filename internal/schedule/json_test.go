package schedule

import (
	"encoding/json"
	"strings"
	"testing"

	"streamsched/internal/platform"
)

func TestJSONRoundTrip(t *testing.T) {
	s := fixture(t)
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(data, s.G, s.P)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped schedule invalid: %v", err)
	}
	if back.Stages() != s.Stages() || back.LatencyBound() != s.LatencyBound() {
		t.Fatal("metrics changed across round trip")
	}
	if back.Algorithm != s.Algorithm || back.Eps != s.Eps || back.Period != s.Period {
		t.Fatal("header changed across round trip")
	}
	for _, r := range s.All() {
		br := back.Replica(r.Ref)
		if br == nil || br.Proc != r.Proc || br.Start != r.Start || len(br.In) != len(r.In) {
			t.Fatalf("replica %v changed", r.Ref)
		}
	}
}

func TestJSONContent(t *testing.T) {
	s := fixture(t)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	// json.Marshal compacts the output of custom MarshalJSON methods.
	str := string(data)
	for _, want := range []string{`"algorithm":"test"`, `"stages":2`, `"name":"a"`} {
		if !strings.Contains(str, want) {
			t.Fatalf("JSON missing %q:\n%s", want, str)
		}
	}
}

func TestLoadJSONRejectsMismatch(t *testing.T) {
	s := fixture(t)
	data, _ := s.MarshalJSON()
	wrongP := platform.Homogeneous(2, 1, 1)
	if _, err := LoadJSON(data, s.G, wrongP); err == nil {
		t.Fatal("platform mismatch accepted")
	}
	wrongG := chainAB()
	wrongG.AddTask("extra", 1)
	if _, err := LoadJSON(data, wrongG, s.P); err == nil {
		t.Fatal("graph mismatch accepted")
	}
}

func TestLoadJSONRejectsGarbage(t *testing.T) {
	s := fixture(t)
	if _, err := LoadJSON([]byte("{not json"), s.G, s.P); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadJSON([]byte(`{"period":0,"tasks":2,"procs":4}`), s.G, s.P); err == nil {
		t.Fatal("zero period accepted")
	}
}
