// Package schedule defines the result type shared by every scheduler in the
// repository: a replicated, pipelined mapping of a workflow graph onto a
// heterogeneous one-port platform.
//
// A Schedule records, for each task t, its ε+1 replicas B(t) = {t⁽¹⁾..t⁽ᵉ⁺¹⁾}
// (§2 of the paper), the processor each replica runs on (the mapping matrix
// X), the static start/finish times of one pipelined iteration, and — the
// part that drives both reliability and latency — the exact set of
// replica-to-replica communications chosen by the mapping procedure.
// From that structure the package derives the paper's metrics: per-processor
// computing load Σ_u and communication loads C_u^I / C_u^O, the achieved
// cycle time Δ_u = max(Σ_u, C_u^I, C_u^O), pipeline stages S and the latency
// bound L = (2S−1)·Δ, plus the reliability predicate (does a valid result
// survive any ε processor failures?).
package schedule

import (
	"fmt"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
)

// Ref identifies one replica: copy Copy of task Task (Copy in [0, ε]).
type Ref struct {
	Task dag.TaskID
	Copy int
}

func (r Ref) String() string { return fmt.Sprintf("t%d(%d)", r.Task, r.Copy+1) }

// Comm is one replica-to-replica communication chosen by the mapping.
type Comm struct {
	From   Ref     // source replica
	Volume float64 // data volume of the underlying graph edge
	// Start/Finish give the transfer window on the source's send port and
	// destination's receive port; Start == Finish for co-located replicas.
	Start, Finish float64
}

// Replica is one scheduled copy of a task.
type Replica struct {
	Ref    Ref
	Proc   platform.ProcID
	Start  float64
	Finish float64
	// In holds the incoming communications this replica consumes, at least
	// one per predecessor task (one with the one-to-one mapping, up to ε+1
	// with the fallback's full replication).
	In []Comm
}

// Schedule is a complete replicated mapping. Build it with New, add replicas
// with AddReplica, then query the derived metrics.
type Schedule struct {
	G   *dag.Graph
	P   *platform.Platform
	Eps int // ε: number of tolerated failures; ε+1 replicas per task
	// Period is the enforced iteration period Δ = 1/T.
	Period float64
	// Algorithm names the producer ("LTF", "R-LTF", ...), for reports.
	Algorithm string

	replicas [][]*Replica // [task][copy]
}

// New returns an empty schedule shell.
func New(g *dag.Graph, p *platform.Platform, eps int, period float64, algorithm string) *Schedule {
	if eps < 0 {
		panic("schedule: negative ε")
	}
	if period <= 0 {
		panic("schedule: non-positive period")
	}
	reps := make([][]*Replica, g.NumTasks())
	for i := range reps {
		reps[i] = make([]*Replica, eps+1)
	}
	return &Schedule{G: g, P: p, Eps: eps, Period: period, Algorithm: algorithm, replicas: reps}
}

// AddReplica registers a placed replica. It panics on duplicate placement or
// out-of-range refs — scheduler bugs, not runtime conditions.
func (s *Schedule) AddReplica(r *Replica) {
	if r.Ref.Copy < 0 || r.Ref.Copy > s.Eps {
		panic(fmt.Sprintf("schedule: copy %d out of range [0,%d]", r.Ref.Copy, s.Eps))
	}
	if s.replicas[r.Ref.Task][r.Ref.Copy] != nil {
		panic(fmt.Sprintf("schedule: replica %v placed twice", r.Ref))
	}
	s.replicas[r.Ref.Task][r.Ref.Copy] = r
}

// Replica returns the placed replica for ref, or nil if not (yet) placed.
func (s *Schedule) Replica(ref Ref) *Replica {
	return s.replicas[ref.Task][ref.Copy]
}

// RemoveReplica withdraws a placed replica (scheduler rollback support).
// It panics if the replica is absent.
func (s *Schedule) RemoveReplica(ref Ref) {
	if s.replicas[ref.Task][ref.Copy] == nil {
		panic(fmt.Sprintf("schedule: removing absent replica %v", ref))
	}
	s.replicas[ref.Task][ref.Copy] = nil
}

// Replicas returns the ε+1 replicas of task t (entries may be nil while the
// schedule is under construction).
func (s *Schedule) Replicas(t dag.TaskID) []*Replica { return s.replicas[t] }

// All returns every placed replica, tasks in ID order, copies in order.
// Metric queries (Makespan, Stages, CrossComms) run once per solver probe,
// so the slice is sized up front.
func (s *Schedule) All() []*Replica {
	out := make([]*Replica, 0, len(s.replicas)*(s.Eps+1))
	for _, copies := range s.replicas {
		for _, r := range copies {
			if r != nil {
				out = append(out, r)
			}
		}
	}
	return out
}

// OnProc returns the replicas placed on processor u, in start-time order.
func (s *Schedule) OnProc(u platform.ProcID) []*Replica {
	var out []*Replica
	for _, r := range s.All() {
		if r.Proc == u {
			out = append(out, r)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Start < out[j-1].Start; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Complete reports whether every task has all ε+1 replicas placed.
func (s *Schedule) Complete() bool {
	for _, copies := range s.replicas {
		for _, r := range copies {
			if r == nil {
				return false
			}
		}
	}
	return true
}

// Mapping returns the v×m binary mapping matrix X of §2: X[i][u] == 1 iff a
// copy of task i is mapped on processor u.
func (s *Schedule) Mapping() [][]int {
	x := make([][]int, s.G.NumTasks())
	for i := range x {
		x[i] = make([]int, s.P.NumProcs())
		for _, r := range s.replicas[i] {
			if r != nil {
				x[i][r.Proc] = 1
			}
		}
	}
	return x
}

// Makespan returns the latest replica finish time of the static (single
// iteration) schedule.
func (s *Schedule) Makespan() float64 {
	m := 0.0
	for _, r := range s.All() {
		if r.Finish > m {
			m = r.Finish
		}
	}
	return m
}

// Throughput returns the enforced throughput T = 1/Δ.
func (s *Schedule) Throughput() float64 { return 1 / s.Period }

func (s *Schedule) String() string {
	return fmt.Sprintf("%s schedule: v=%d ε=%d Δ=%.4g S=%d L=%.4g",
		s.Algorithm, s.G.NumTasks(), s.Eps, s.Period, s.Stages(), s.LatencyBound())
}
