package schedule

import (
	"math"
	"testing"

	"streamsched/internal/platform"
)

func TestEnergyPerItemHandComputed(t *testing.T) {
	s := fixture(t) // 4 unit-work replicas on 4 unit-speed procs, 2 cross comms of volume 2
	m := EnergyModel{Dyn: 1, Static: 0.5, Comm: 0.25}
	// dyn = 4·(1²·1) = 4; static = 0.5·10·4 = 20; comm = 0.25·(2+2) = 1.
	want := 4.0 + 20.0 + 1.0
	if got := s.EnergyPerItem(m); math.Abs(got-want) > 1e-9 {
		t.Fatalf("energy = %v, want %v", got, want)
	}
}

func TestEnergySpeedQuadratic(t *testing.T) {
	g := chainAB()
	fast := New(g, platform.Homogeneous(1, 2.0, 1), 0, 10, "fast")
	fast.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 0.5})
	fast.AddReplica(&Replica{Ref: Ref{1, 0}, Proc: 0, Start: 0.5, Finish: 1,
		In: []Comm{{From: Ref{0, 0}, Volume: 2, Start: 0.5, Finish: 0.5}}})
	slow := New(g, platform.Homogeneous(1, 1.0, 1), 0, 10, "slow")
	slow.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	slow.AddReplica(&Replica{Ref: Ref{1, 0}, Proc: 0, Start: 1, Finish: 2,
		In: []Comm{{From: Ref{0, 0}, Volume: 2, Start: 1, Finish: 1}}})
	m := EnergyModel{Dyn: 1}
	ef, es := fast.EnergyPerItem(m), slow.EnergyPerItem(m)
	if math.Abs(ef/es-4) > 1e-9 {
		t.Fatalf("2× speed should cost 4× dynamic energy: %v vs %v", ef, es)
	}
}

func TestEnergyOverheadOfReplication(t *testing.T) {
	// The ε=1 fixture against an ε=0 single-chain reference: replication
	// must cost extra energy.
	rep := fixture(t)
	g := chainAB()
	ref := New(g, platform.Homogeneous(4, 1, 1), 0, 10, "ref")
	ref.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	ref.AddReplica(&Replica{Ref: Ref{1, 0}, Proc: 0, Start: 1, Finish: 2,
		In: []Comm{{From: Ref{0, 0}, Volume: 2, Start: 1, Finish: 1}}})
	m := DefaultEnergyModel()
	if ov := rep.EnergyOverhead(m, ref); ov <= 0 {
		t.Fatalf("replication overhead = %v, want > 0", ov)
	}
}

func TestEnergyCoLocatedCommsFree(t *testing.T) {
	g := chainAB()
	s := New(g, platform.Homogeneous(2, 1, 1), 0, 10, "t")
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	s.AddReplica(&Replica{Ref: Ref{1, 0}, Proc: 0, Start: 1, Finish: 2,
		In: []Comm{{From: Ref{0, 0}, Volume: 2, Start: 1, Finish: 1}}})
	m := EnergyModel{Comm: 1}
	if got := s.EnergyPerItem(m); got != 0 {
		t.Fatalf("co-located comm billed: %v", got)
	}
}
