package schedule

import (
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
)

func TestRemoveReplica(t *testing.T) {
	g := dag.New("one")
	g.AddTask("a", 1)
	p := platform.Homogeneous(2, 1, 1)
	s := New(g, p, 1, 10, "t")
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	if s.Replica(Ref{0, 0}) == nil {
		t.Fatal("replica missing")
	}
	s.RemoveReplica(Ref{0, 0})
	if s.Replica(Ref{0, 0}) != nil {
		t.Fatal("replica not removed")
	}
	// Slot is reusable.
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 1, Start: 0, Finish: 1})
	if s.Replica(Ref{0, 0}).Proc != 1 {
		t.Fatal("re-add failed")
	}
}

func TestRemoveAbsentPanics(t *testing.T) {
	g := dag.New("one")
	g.AddTask("a", 1)
	s := New(g, platform.Homogeneous(1, 1, 1), 0, 10, "t")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.RemoveReplica(Ref{0, 0})
}
