package schedule

import (
	"fmt"
	"sort"

	"streamsched/internal/dag"
)

// tolerance for floating-point comparisons in validation.
const tol = 1e-6

// Validate audits the schedule against every model constraint. It is the
// single source of truth used by tests and by the CLI's --check flag:
//
//  1. completeness — ε+1 replicas per task;
//  2. placement — replicas of one task on pairwise distinct processors
//     (one crash must not take out two copies);
//  3. communication coverage — each replica of a non-entry task receives
//     from at least one replica of every predecessor task;
//  4. causality — transfers start after their source replica finishes and
//     end before the consumer starts; co-located comms are instantaneous;
//  5. transfer pricing — cross-processor windows last volume/bandwidth;
//  6. throughput — Σ_u, C_u^I, C_u^O all fit within the period;
//  7. one-port — per processor, compute intervals are disjoint, send
//     windows are disjoint, and receive windows are disjoint;
//  8. reliability — every failure scenario of size ≤ ε still yields a
//     valid result (exhaustive; callers with large m can skip via opts).
type ValidateOptions struct {
	// SkipFaultTolerance disables the exhaustive failure enumeration
	// (used in benchmarks where it dominates runtime).
	SkipFaultTolerance bool
	// SkipThroughput disables the load-vs-period check, for schedules
	// produced by unconstrained baselines.
	SkipThroughput bool
}

// Validate runs the full audit with default options.
func (s *Schedule) Validate() error { return s.ValidateOpts(ValidateOptions{}) }

// ValidateOpts runs the audit with explicit options.
func (s *Schedule) ValidateOpts(opts ValidateOptions) error {
	// 1. completeness
	for t := range s.replicas {
		for c, r := range s.replicas[t] {
			if r == nil {
				return fmt.Errorf("schedule: task %d copy %d not placed", t, c)
			}
			if r.Ref.Task != dag.TaskID(t) || r.Ref.Copy != c {
				return fmt.Errorf("schedule: replica registered under wrong slot: %v at [%d][%d]", r.Ref, t, c)
			}
		}
	}
	// 2. distinct processors per replica set
	for t := range s.replicas {
		seen := map[int]bool{}
		for _, r := range s.replicas[t] {
			if seen[int(r.Proc)] {
				return fmt.Errorf("schedule: task %d has two replicas on processor %d", t, r.Proc)
			}
			seen[int(r.Proc)] = true
		}
	}
	// 3-5. per-replica communication structure
	for _, r := range s.All() {
		task := r.Ref.Task
		preds := s.G.Pred(task)
		for _, pe := range preds {
			found := false
			for _, c := range r.In {
				if c.From.Task == pe.From {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("schedule: replica %v misses input from predecessor task %d", r.Ref, pe.From)
			}
		}
		for _, c := range r.In {
			// each comm must correspond to a graph edge
			ok := false
			var vol float64
			for _, pe := range preds {
				if pe.From == c.From.Task {
					ok = true
					vol = pe.Volume
				}
			}
			if !ok {
				return fmt.Errorf("schedule: replica %v has comm from non-predecessor %v", r.Ref, c.From)
			}
			if c.Volume != vol {
				return fmt.Errorf("schedule: comm %v→%v volume %v, edge says %v", c.From, r.Ref, c.Volume, vol)
			}
			src := s.Replica(c.From)
			if src == nil {
				return fmt.Errorf("schedule: comm source %v not placed", c.From)
			}
			if c.Start < src.Finish-tol {
				return fmt.Errorf("schedule: comm %v→%v starts %.6g before source finish %.6g", c.From, r.Ref, c.Start, src.Finish)
			}
			if r.Start < c.Finish-tol {
				return fmt.Errorf("schedule: replica %v starts %.6g before input comm finish %.6g", r.Ref, r.Start, c.Finish)
			}
			wantDur := s.P.CommTime(c.Volume, src.Proc, r.Proc)
			if d := c.Finish - c.Start; d < wantDur-tol || d > wantDur+tol {
				return fmt.Errorf("schedule: comm %v→%v lasts %.6g, want %.6g", c.From, r.Ref, d, wantDur)
			}
		}
		// replica duration must match work/speed
		wantDur := s.P.ExecTime(s.G.Task(task).Work, r.Proc)
		if d := r.Finish - r.Start; d < wantDur-tol || d > wantDur+tol {
			return fmt.Errorf("schedule: replica %v runs %.6g, want %.6g", r.Ref, d, wantDur)
		}
	}
	// 6. throughput feasibility
	if !opts.SkipThroughput {
		l := s.Loads()
		for u := range l.Sigma {
			if l.Sigma[u] > s.Period+tol {
				return fmt.Errorf("schedule: Σ_%d = %.6g exceeds period %.6g", u, l.Sigma[u], s.Period)
			}
			if l.CIn[u] > s.Period+tol {
				return fmt.Errorf("schedule: C^I_%d = %.6g exceeds period %.6g", u, l.CIn[u], s.Period)
			}
			if l.COut[u] > s.Period+tol {
				return fmt.Errorf("schedule: C^O_%d = %.6g exceeds period %.6g", u, l.COut[u], s.Period)
			}
		}
	}
	// 7. one-port consistency
	if err := s.checkOnePort(); err != nil {
		return err
	}
	// 8. reliability
	if !opts.SkipFaultTolerance {
		if !s.ToleratesAllFailures() {
			return fmt.Errorf("schedule: not %d-fault tolerant", s.Eps)
		}
	}
	return nil
}

type window struct {
	start, end float64
	what       string
}

func checkDisjoint(kind string, u int, ws []window) error {
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].start < ws[j].start })
	for i := 1; i < len(ws); i++ {
		if ws[i].start < ws[i-1].end-tol {
			return fmt.Errorf("schedule: proc %d %s overlap: %s [%.6g,%.6g) vs %s [%.6g,%.6g)",
				u, kind, ws[i-1].what, ws[i-1].start, ws[i-1].end, ws[i].what, ws[i].start, ws[i].end)
		}
	}
	return nil
}

func (s *Schedule) checkOnePort() error {
	m := s.P.NumProcs()
	comp := make([][]window, m)
	send := make([][]window, m)
	recv := make([][]window, m)
	for _, r := range s.All() {
		comp[r.Proc] = append(comp[r.Proc], window{r.Start, r.Finish, r.Ref.String()})
		for _, c := range r.In {
			src := s.Replica(c.From)
			if src == nil || src.Proc == r.Proc {
				continue
			}
			w := window{c.Start, c.Finish, fmt.Sprintf("%v→%v", c.From, r.Ref)}
			send[src.Proc] = append(send[src.Proc], w)
			recv[r.Proc] = append(recv[r.Proc], w)
		}
	}
	for u := 0; u < m; u++ {
		if err := checkDisjoint("compute", u, comp[u]); err != nil {
			return err
		}
		if err := checkDisjoint("send", u, send[u]); err != nil {
			return err
		}
		if err := checkDisjoint("recv", u, recv[u]); err != nil {
			return err
		}
	}
	return nil
}
