package schedule

import (
	"math"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
)

// Loads bundles the per-processor steady-state loads of §4: Sigma[u] is the
// computing load Σ_u (time to execute all replicas mapped on u for one data
// item), CIn[u] and COut[u] the per-item receive and send port occupancy.
type Loads struct {
	Sigma []float64
	CIn   []float64
	COut  []float64
}

// Loads computes the per-processor loads from the replica structure.
func (s *Schedule) Loads() Loads {
	m := s.P.NumProcs()
	l := Loads{
		Sigma: make([]float64, m),
		CIn:   make([]float64, m),
		COut:  make([]float64, m),
	}
	for _, r := range s.All() {
		l.Sigma[r.Proc] += s.P.ExecTime(s.G.Task(r.Ref.Task).Work, r.Proc)
		for _, c := range r.In {
			src := s.Replica(c.From)
			if src == nil || src.Proc == r.Proc {
				continue
			}
			dur := s.P.CommTime(c.Volume, src.Proc, r.Proc)
			l.CIn[r.Proc] += dur
			l.COut[src.Proc] += dur
		}
	}
	return l
}

// CycleTimes returns Δ_u = max(Σ_u, C_u^I, C_u^O) for every processor.
func (s *Schedule) CycleTimes() []float64 {
	l := s.Loads()
	out := make([]float64, len(l.Sigma))
	for u := range out {
		d := l.Sigma[u]
		if l.CIn[u] > d {
			d = l.CIn[u]
		}
		if l.COut[u] > d {
			d = l.COut[u]
		}
		out[u] = d
	}
	return out
}

// AchievedCycleTime returns max_u Δ_u — the smallest period the mapping can
// sustain. The schedule meets its throughput constraint iff this does not
// exceed Period.
func (s *Schedule) AchievedCycleTime() float64 {
	m := 0.0
	for _, d := range s.CycleTimes() {
		if d > m {
			m = d
		}
	}
	return m
}

// AchievedThroughput returns 1 / AchievedCycleTime (the paper's
// T = 1/max_u Δ_u). Returns +Inf for an empty schedule.
func (s *Schedule) AchievedThroughput() float64 {
	ct := s.AchievedCycleTime()
	if ct == 0 {
		return math.Inf(1)
	}
	return 1 / ct
}

// ProcessorUtilization returns U_P(u) = T·Σ_u for every processor (≤1 in a
// feasible schedule).
func (s *Schedule) ProcessorUtilization() []float64 {
	l := s.Loads()
	out := make([]float64, len(l.Sigma))
	for u := range out {
		out[u] = l.Sigma[u] / s.Period
	}
	return out
}

// Stages computes the per-replica pipeline stage numbers (§4): entry-task
// replicas are in stage 1; every other replica r has
// S(r) = max over its incoming comms c of (S(source(c)) + η), with η = 0
// when source and r are co-located and η = 1 otherwise.
// The map is keyed by Ref; unplaced replicas are skipped.
func (s *Schedule) StageNumbers() map[Ref]int {
	stages := make(map[Ref]int)
	order, err := s.G.TopoOrder()
	if err != nil {
		panic(err)
	}
	for _, t := range order {
		for _, r := range s.replicas[t] {
			if r == nil {
				continue
			}
			st := 1
			for _, c := range r.In {
				src := s.Replica(c.From)
				if src == nil {
					continue
				}
				eta := 1
				if src.Proc == r.Proc {
					eta = 0
				}
				if v := stages[c.From] + eta; v > st {
					st = v
				}
			}
			stages[r.Ref] = st
		}
	}
	return stages
}

// Stages returns S, the total number of pipeline stages (max over replicas).
func (s *Schedule) Stages() int {
	max := 0
	// A max over map values is order-independent.
	//nolint:determcheck // order-independent reduction
	for _, v := range s.StageNumbers() {
		if v > max {
			max = v
		}
	}
	return max
}

// LatencyBound returns the paper's pipelined latency L = (2S−1)·Δ.
func (s *Schedule) LatencyBound() float64 {
	return float64(2*s.Stages()-1) * s.Period
}

// CrossComms returns the number of inter-processor communications in the
// replica structure — the overhead metric the one-to-one mapping minimizes.
// §4.2: with Rule 2 and no throughput constraint it is at most e(ε+1) on
// series-parallel graphs, versus e(ε+1)² for full replication.
func (s *Schedule) CrossComms() int {
	n := 0
	for _, r := range s.All() {
		for _, c := range r.In {
			if src := s.Replica(c.From); src != nil && src.Proc != r.Proc {
				n++
			}
		}
	}
	return n
}

// TotalComms returns the number of replica-to-replica communications
// (including co-located, zero-cost ones).
func (s *Schedule) TotalComms() int {
	n := 0
	for _, r := range s.All() {
		n += len(r.In)
	}
	return n
}

// ProcsUsed returns how many processors host at least one replica.
func (s *Schedule) ProcsUsed() int {
	used := make([]bool, s.P.NumProcs())
	for _, r := range s.All() {
		used[r.Proc] = true
	}
	n := 0
	for _, u := range used {
		if u {
			n++
		}
	}
	return n
}

// ValidUnderFailures reports whether the schedule still delivers a valid
// result for every exit task when the processors for which failed returns
// true have crashed (fail-silent/fail-stop, §1). A replica is valid iff its
// processor is alive and, for every predecessor task, at least one incoming
// communication originates from a valid replica.
func (s *Schedule) ValidUnderFailures(failed func(platform.ProcID) bool) bool {
	valid := s.ReplicaValidity(failed)
	for _, t := range s.G.Exits() {
		ok := false
		for _, r := range s.replicas[t] {
			if r != nil && valid[r.Ref] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// ReplicaValidity computes per-replica validity under a failure predicate.
func (s *Schedule) ReplicaValidity(failed func(platform.ProcID) bool) map[Ref]bool {
	valid := make(map[Ref]bool)
	order, err := s.G.TopoOrder()
	if err != nil {
		panic(err)
	}
	for _, t := range order {
		preds := s.G.Pred(t)
		for _, r := range s.replicas[t] {
			if r == nil || failed(r.Proc) {
				continue
			}
			ok := true
			for _, pe := range preds {
				covered := false
				for _, c := range r.In {
					if c.From.Task == pe.From && valid[c.From] {
						covered = true
						break
					}
				}
				if !covered {
					ok = false
					break
				}
			}
			if ok {
				valid[r.Ref] = true
			}
		}
	}
	return valid
}

// FailureSets enumerates every subset of processors of size ≤ k and calls
// fn with each; fn returning false stops the enumeration early and makes
// FailureSets return false. Used by the exhaustive fault-tolerance checks.
func FailureSets(m, k int, fn func(set []platform.ProcID) bool) bool {
	set := make([]platform.ProcID, 0, k)
	var rec func(start, left int) bool
	rec = func(start, left int) bool {
		if !fn(set) {
			return false
		}
		if left == 0 {
			return true
		}
		for u := start; u < m; u++ {
			set = append(set, platform.ProcID(u))
			if !rec(u+1, left-1) {
				return false
			}
			set = set[:len(set)-1]
		}
		return true
	}
	return rec(0, k)
}

// ToleratesAllFailures exhaustively verifies that the schedule delivers a
// valid result under every failure set of size ≤ ε. Cost is C(m, ≤ε); fine
// for m = 20, ε ≤ 3 (≈1.4k subsets).
func (s *Schedule) ToleratesAllFailures() bool {
	return FailureSets(s.P.NumProcs(), s.Eps, func(set []platform.ProcID) bool {
		down := make(map[platform.ProcID]bool, len(set))
		for _, u := range set {
			down[u] = true
		}
		return s.ValidUnderFailures(func(u platform.ProcID) bool { return down[u] })
	})
}

// ReplicaRefs returns the refs of all ε+1 copies of task t.
func ReplicaRefs(t dag.TaskID, eps int) []Ref {
	out := make([]Ref, eps+1)
	for i := range out {
		out[i] = Ref{Task: t, Copy: i}
	}
	return out
}
