package schedule

// JSON serialization of schedules: the interchange format a downstream
// deployment would consume (which replica of which task runs where and
// when, and which transfers feed it). The graph and platform are referenced
// by summary only — they are inputs, not outputs, of the scheduler.

import (
	"encoding/json"
	"fmt"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
)

// jsonSchedule is the serialized form.
type jsonSchedule struct {
	Algorithm string        `json:"algorithm"`
	Eps       int           `json:"eps"`
	Period    float64       `json:"period"`
	Graph     string        `json:"graph"`
	Tasks     int           `json:"tasks"`
	Procs     int           `json:"procs"`
	Stages    int           `json:"stages"`
	Latency   float64       `json:"latencyBound"`
	Replicas  []jsonReplica `json:"replicas"`
}

type jsonReplica struct {
	Task   int        `json:"task"`
	Name   string     `json:"name"`
	Copy   int        `json:"copy"`
	Proc   int        `json:"proc"`
	Start  float64    `json:"start"`
	Finish float64    `json:"finish"`
	Stage  int        `json:"stage"`
	In     []jsonComm `json:"in,omitempty"`
}

type jsonComm struct {
	FromTask int     `json:"fromTask"`
	FromCopy int     `json:"fromCopy"`
	Volume   float64 `json:"volume"`
	Start    float64 `json:"start"`
	Finish   float64 `json:"finish"`
}

// MarshalJSON serializes the schedule.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	stages := s.StageNumbers()
	out := jsonSchedule{
		Algorithm: s.Algorithm,
		Eps:       s.Eps,
		Period:    s.Period,
		Graph:     s.G.Name(),
		Tasks:     s.G.NumTasks(),
		Procs:     s.P.NumProcs(),
		Stages:    s.Stages(),
		Latency:   s.LatencyBound(),
	}
	for _, r := range s.All() {
		jr := jsonReplica{
			Task:   int(r.Ref.Task),
			Name:   s.G.Task(r.Ref.Task).Name,
			Copy:   r.Ref.Copy,
			Proc:   int(r.Proc),
			Start:  r.Start,
			Finish: r.Finish,
			Stage:  stages[r.Ref],
		}
		for _, c := range r.In {
			jr.In = append(jr.In, jsonComm{
				FromTask: int(c.From.Task),
				FromCopy: c.From.Copy,
				Volume:   c.Volume,
				Start:    c.Start,
				Finish:   c.Finish,
			})
		}
		out.Replicas = append(out.Replicas, jr)
	}
	return json.MarshalIndent(out, "", "  ")
}

// LoadJSON reconstructs a schedule previously serialized with MarshalJSON,
// re-binding it to the given graph and platform (which must match the
// serialized dimensions).
func LoadJSON(data []byte, g *dag.Graph, p *platform.Platform) (*Schedule, error) {
	var in jsonSchedule
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("schedule: %w", err)
	}
	if in.Tasks != g.NumTasks() {
		return nil, fmt.Errorf("schedule: serialized for %d tasks, graph has %d", in.Tasks, g.NumTasks())
	}
	if in.Procs != p.NumProcs() {
		return nil, fmt.Errorf("schedule: serialized for %d processors, platform has %d", in.Procs, p.NumProcs())
	}
	if in.Period <= 0 {
		return nil, fmt.Errorf("schedule: non-positive period %v", in.Period)
	}
	s := New(g, p, in.Eps, in.Period, in.Algorithm)
	for _, jr := range in.Replicas {
		rep := &Replica{
			Ref:    Ref{Task: dag.TaskID(jr.Task), Copy: jr.Copy},
			Proc:   platform.ProcID(jr.Proc),
			Start:  jr.Start,
			Finish: jr.Finish,
		}
		for _, c := range jr.In {
			rep.In = append(rep.In, Comm{
				From:   Ref{Task: dag.TaskID(c.FromTask), Copy: c.FromCopy},
				Volume: c.Volume,
				Start:  c.Start,
				Finish: c.Finish,
			})
		}
		s.AddReplica(rep)
	}
	return s, nil
}
