package schedule

import (
	"fmt"
	"sort"
	"strings"

	"streamsched/internal/platform"
)

// Gantt renders an ASCII Gantt chart of the static schedule: one row per
// processor, time flowing right, each replica drawn as a labelled block.
// width is the number of character columns for the time axis (≥ 20).
func (s *Schedule) Gantt(width int) string {
	if width < 20 {
		width = 20
	}
	horizon := s.Makespan()
	if horizon == 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / horizon
	var b strings.Builder
	fmt.Fprintf(&b, "%s  Δ=%.4g  S=%d  L=%.4g  makespan=%.4g\n",
		s.Algorithm, s.Period, s.Stages(), s.LatencyBound(), horizon)
	for u := 0; u < s.P.NumProcs(); u++ {
		reps := s.OnProc(platform.ProcID(u))
		row := make([]byte, width+1)
		for i := range row {
			row[i] = '.'
		}
		for _, r := range reps {
			lo := int(r.Start * scale)
			hi := int(r.Finish * scale)
			if hi >= len(row) {
				hi = len(row) - 1
			}
			label := fmt.Sprintf("%d", r.Ref.Task)
			for i := lo; i <= hi; i++ {
				row[i] = '#'
			}
			for i, ch := range []byte(label) {
				if lo+i <= hi && lo+i < len(row) {
					row[lo+i] = ch
				}
			}
		}
		fmt.Fprintf(&b, "P%-3d |%s|\n", u+1, string(row))
	}
	return b.String()
}

// CommTable lists every cross-processor communication, sorted by start time;
// useful for debugging one-port conflicts.
func (s *Schedule) CommTable() string {
	type row struct {
		start, finish float64
		desc          string
	}
	var rows []row
	for _, r := range s.All() {
		for _, c := range r.In {
			src := s.Replica(c.From)
			if src == nil || src.Proc == r.Proc {
				continue
			}
			rows = append(rows, row{c.Start, c.Finish,
				fmt.Sprintf("%v@P%d → %v@P%d vol=%.3g", c.From, src.Proc+1, r.Ref, r.Proc+1, c.Volume)})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].start < rows[j].start })
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "[%8.3f,%8.3f) %s\n", r.start, r.finish, r.desc)
	}
	return b.String()
}
