package schedule

import (
	"math"
	"strings"
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
)

// chainAB returns the graph a→b with unit works and volume 2.
func chainAB() *dag.Graph {
	g := dag.New("ab")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddEdge(a, b, 2)
	return g
}

// fixture builds the canonical valid ε=1 schedule used across tests:
// a⁽¹⁾@P0, a⁽²⁾@P1, b⁽¹⁾@P2, b⁽²⁾@P3; one-to-one comms a⁽ᵏ⁾→b⁽ᵏ⁾.
func fixture(t *testing.T) *Schedule {
	t.Helper()
	g := chainAB()
	p := platform.Homogeneous(4, 1, 1)
	s := New(g, p, 1, 10, "test")
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	s.AddReplica(&Replica{Ref: Ref{0, 1}, Proc: 1, Start: 0, Finish: 1})
	s.AddReplica(&Replica{
		Ref: Ref{1, 0}, Proc: 2, Start: 3, Finish: 4,
		In: []Comm{{From: Ref{0, 0}, Volume: 2, Start: 1, Finish: 3}},
	})
	s.AddReplica(&Replica{
		Ref: Ref{1, 1}, Proc: 3, Start: 3, Finish: 4,
		In: []Comm{{From: Ref{0, 1}, Volume: 2, Start: 1, Finish: 3}},
	})
	return s
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	g := chainAB()
	p := platform.Homogeneous(2, 1, 1)
	for i, f := range []func(){
		func() { New(g, p, -1, 10, "x") },
		func() { New(g, p, 0, 0, "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAddReplicaDuplicatePanics(t *testing.T) {
	s := fixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 3})
}

func TestComplete(t *testing.T) {
	g := chainAB()
	p := platform.Homogeneous(4, 1, 1)
	s := New(g, p, 1, 10, "t")
	if s.Complete() {
		t.Fatal("empty schedule reported complete")
	}
	full := fixture(t)
	if !full.Complete() {
		t.Fatal("fixture should be complete")
	}
}

func TestMappingMatrix(t *testing.T) {
	s := fixture(t)
	x := s.Mapping()
	want := [][]int{{1, 1, 0, 0}, {0, 0, 1, 1}}
	for i := range want {
		for u := range want[i] {
			if x[i][u] != want[i][u] {
				t.Fatalf("X[%d][%d] = %d, want %d", i, u, x[i][u], want[i][u])
			}
		}
	}
}

func TestOnProcSorted(t *testing.T) {
	g := dag.New("two")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddEdge(a, b, 0)
	p := platform.Homogeneous(1, 1, 1)
	s := New(g, p, 0, 10, "t")
	s.AddReplica(&Replica{Ref: Ref{1, 0}, Proc: 0, Start: 5, Finish: 6,
		In: []Comm{{From: Ref{0, 0}, Volume: 0, Start: 1, Finish: 1}}})
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	reps := s.OnProc(0)
	if len(reps) != 2 || reps[0].Ref.Task != 0 || reps[1].Ref.Task != 1 {
		t.Fatalf("OnProc not sorted by start: %v", reps)
	}
}

func TestLoads(t *testing.T) {
	s := fixture(t)
	l := s.Loads()
	wantSigma := []float64{1, 1, 1, 1}
	wantCIn := []float64{0, 0, 2, 2}
	wantCOut := []float64{2, 2, 0, 0}
	for u := 0; u < 4; u++ {
		if l.Sigma[u] != wantSigma[u] || l.CIn[u] != wantCIn[u] || l.COut[u] != wantCOut[u] {
			t.Fatalf("loads[%d] = Σ%v I%v O%v", u, l.Sigma[u], l.CIn[u], l.COut[u])
		}
	}
}

func TestLoadsIgnoreCoLocatedComms(t *testing.T) {
	g := chainAB()
	p := platform.Homogeneous(2, 1, 1)
	s := New(g, p, 0, 10, "t")
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	s.AddReplica(&Replica{Ref: Ref{1, 0}, Proc: 0, Start: 1, Finish: 2,
		In: []Comm{{From: Ref{0, 0}, Volume: 2, Start: 1, Finish: 1}}})
	l := s.Loads()
	if l.CIn[0] != 0 || l.COut[0] != 0 {
		t.Fatalf("co-located comm priced: %+v", l)
	}
}

func TestCycleTimesAndThroughput(t *testing.T) {
	s := fixture(t)
	ct := s.CycleTimes()
	// Δ_u = max(Σ, C^I, C^O): P0 max(1,0,2)=2 etc.
	want := []float64{2, 2, 2, 2}
	for u := range want {
		if ct[u] != want[u] {
			t.Fatalf("Δ_%d = %v, want %v", u, ct[u], want[u])
		}
	}
	if got := s.AchievedCycleTime(); got != 2 {
		t.Fatalf("AchievedCycleTime = %v", got)
	}
	if got := s.AchievedThroughput(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AchievedThroughput = %v", got)
	}
	if got := s.Throughput(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("enforced Throughput = %v", got)
	}
}

func TestProcessorUtilization(t *testing.T) {
	s := fixture(t)
	for u, up := range s.ProcessorUtilization() {
		if math.Abs(up-0.1) > 1e-12 {
			t.Fatalf("U_P(%d) = %v, want 0.1", u, up)
		}
	}
}

func TestStagesCross(t *testing.T) {
	s := fixture(t)
	st := s.StageNumbers()
	if st[Ref{0, 0}] != 1 || st[Ref{0, 1}] != 1 {
		t.Fatalf("entry stages: %v", st)
	}
	if st[Ref{1, 0}] != 2 || st[Ref{1, 1}] != 2 {
		t.Fatalf("cross-proc successor stages: %v", st)
	}
	if s.Stages() != 2 {
		t.Fatalf("S = %d", s.Stages())
	}
	if got := s.LatencyBound(); got != 30 {
		t.Fatalf("L = %v, want (2·2−1)·10 = 30", got)
	}
}

func TestStagesCoLocated(t *testing.T) {
	g := chainAB()
	p := platform.Homogeneous(2, 1, 1)
	s := New(g, p, 0, 10, "t")
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	s.AddReplica(&Replica{Ref: Ref{1, 0}, Proc: 0, Start: 1, Finish: 2,
		In: []Comm{{From: Ref{0, 0}, Volume: 2, Start: 1, Finish: 1}}})
	if s.Stages() != 1 {
		t.Fatalf("co-located chain S = %d, want 1", s.Stages())
	}
	if got := s.LatencyBound(); got != 10 {
		t.Fatalf("L = %v, want Δ", got)
	}
}

func TestCommCounts(t *testing.T) {
	s := fixture(t)
	if s.CrossComms() != 2 {
		t.Fatalf("CrossComms = %d", s.CrossComms())
	}
	if s.TotalComms() != 2 {
		t.Fatalf("TotalComms = %d", s.TotalComms())
	}
	if s.ProcsUsed() != 4 {
		t.Fatalf("ProcsUsed = %d", s.ProcsUsed())
	}
}

func TestMakespan(t *testing.T) {
	if got := fixture(t).Makespan(); got != 4 {
		t.Fatalf("Makespan = %v", got)
	}
}

func TestReplicaValidityChainDisjoint(t *testing.T) {
	s := fixture(t)
	// No failures: everything valid.
	v := s.ReplicaValidity(func(platform.ProcID) bool { return false })
	if len(v) != 4 {
		t.Fatalf("validity map %v", v)
	}
	// P0 fails: a⁽¹⁾ and hence b⁽¹⁾ invalid; chain 2 survives.
	v = s.ReplicaValidity(func(u platform.ProcID) bool { return u == 0 })
	if v[Ref{0, 0}] || v[Ref{1, 0}] {
		t.Fatal("chain through failed processor should be invalid")
	}
	if !v[Ref{0, 1}] || !v[Ref{1, 1}] {
		t.Fatal("surviving chain should be valid")
	}
	if !s.ValidUnderFailures(func(u platform.ProcID) bool { return u == 0 }) {
		t.Fatal("schedule should survive one failure")
	}
}

func TestToleratesAllFailures(t *testing.T) {
	if !fixture(t).ToleratesAllFailures() {
		t.Fatal("fixture should tolerate ε=1 failures")
	}
}

func TestNonDisjointChainsNotTolerant(t *testing.T) {
	// Both b replicas read from a⁽¹⁾ only: killing P0 invalidates both.
	g := chainAB()
	p := platform.Homogeneous(4, 1, 1)
	s := New(g, p, 1, 10, "bad")
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	s.AddReplica(&Replica{Ref: Ref{0, 1}, Proc: 1, Start: 0, Finish: 1})
	s.AddReplica(&Replica{Ref: Ref{1, 0}, Proc: 2, Start: 3, Finish: 4,
		In: []Comm{{From: Ref{0, 0}, Volume: 2, Start: 1, Finish: 3}}})
	s.AddReplica(&Replica{Ref: Ref{1, 1}, Proc: 3, Start: 5, Finish: 6,
		In: []Comm{{From: Ref{0, 0}, Volume: 2, Start: 3, Finish: 5}}})
	if s.ToleratesAllFailures() {
		t.Fatal("non-disjoint chains must not be ε=1 tolerant")
	}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should reject non-tolerant schedule")
	}
}

func TestFallbackFullReplicationTolerant(t *testing.T) {
	// b⁽¹⁾ receives from BOTH a replicas (fallback rule): tolerant even
	// though b⁽²⁾ also reads both.
	g := chainAB()
	p := platform.Homogeneous(4, 1, 1)
	s := New(g, p, 1, 20, "fallback")
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	s.AddReplica(&Replica{Ref: Ref{0, 1}, Proc: 1, Start: 0, Finish: 1})
	s.AddReplica(&Replica{Ref: Ref{1, 0}, Proc: 2, Start: 5, Finish: 6,
		In: []Comm{
			{From: Ref{0, 0}, Volume: 2, Start: 1, Finish: 3},
			{From: Ref{0, 1}, Volume: 2, Start: 3, Finish: 5},
		}})
	s.AddReplica(&Replica{Ref: Ref{1, 1}, Proc: 3, Start: 7, Finish: 8,
		In: []Comm{
			{From: Ref{0, 0}, Volume: 2, Start: 3, Finish: 5},
			{From: Ref{0, 1}, Volume: 2, Start: 5, Finish: 7},
		}})
	if err := s.Validate(); err != nil {
		t.Fatalf("fallback schedule should validate: %v", err)
	}
}

func TestFailureSetsCount(t *testing.T) {
	count := 0
	FailureSets(5, 2, func(set []platform.ProcID) bool {
		count++
		return true
	})
	// C(5,0)+C(5,1)+C(5,2) = 1+5+10 = 16
	if count != 16 {
		t.Fatalf("enumerated %d sets, want 16", count)
	}
}

func TestFailureSetsEarlyStop(t *testing.T) {
	count := 0
	ok := FailureSets(5, 2, func(set []platform.ProcID) bool {
		count++
		return count < 3
	})
	if ok || count != 3 {
		t.Fatalf("early stop failed: ok=%v count=%d", ok, count)
	}
}

func TestValidatePositive(t *testing.T) {
	if err := fixture(t).Validate(); err != nil {
		t.Fatalf("fixture should validate: %v", err)
	}
}

func TestValidateMissingReplica(t *testing.T) {
	g := chainAB()
	p := platform.Homogeneous(4, 1, 1)
	s := New(g, p, 1, 10, "t")
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "not placed") {
		t.Fatalf("want 'not placed' error, got %v", err)
	}
}

func TestValidateSameProcReplicas(t *testing.T) {
	g := dag.New("one")
	g.AddTask("a", 1)
	p := platform.Homogeneous(2, 1, 1)
	s := New(g, p, 1, 10, "t")
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	s.AddReplica(&Replica{Ref: Ref{0, 1}, Proc: 0, Start: 1, Finish: 2})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "two replicas") {
		t.Fatalf("want same-proc error, got %v", err)
	}
}

func TestValidateMissingPredComm(t *testing.T) {
	s := fixture(t)
	s.Replica(Ref{1, 0}).In = nil
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "misses input") {
		t.Fatalf("want coverage error, got %v", err)
	}
}

func TestValidateCausality(t *testing.T) {
	s := fixture(t)
	s.Replica(Ref{1, 0}).In[0].Start = 0.5 // before source finish (1)
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "before source finish") {
		t.Fatalf("want causality error, got %v", err)
	}
}

func TestValidateConsumerBeforeCommEnds(t *testing.T) {
	s := fixture(t)
	r := s.Replica(Ref{1, 0})
	r.Start, r.Finish = 2, 3 // comm ends at 3
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "before input comm finish") {
		t.Fatalf("want consumer-start error, got %v", err)
	}
}

func TestValidateWrongCommDuration(t *testing.T) {
	s := fixture(t)
	s.Replica(Ref{1, 0}).In[0].Finish = 2.5 // 1.5 time units, want 2
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "lasts") {
		t.Fatalf("want duration error, got %v", err)
	}
}

func TestValidateWrongExecDuration(t *testing.T) {
	s := fixture(t)
	s.Replica(Ref{0, 0}).Finish = 2 // work 1 at speed 1 must last 1
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "runs") {
		t.Fatalf("want exec duration error, got %v", err)
	}
}

func TestValidateThroughputViolation(t *testing.T) {
	g := chainAB()
	p := platform.Homogeneous(4, 1, 1)
	s := New(g, p, 1, 1.5, "t") // period 1.5 < comm time 2 → C^I over budget
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	s.AddReplica(&Replica{Ref: Ref{0, 1}, Proc: 1, Start: 0, Finish: 1})
	s.AddReplica(&Replica{Ref: Ref{1, 0}, Proc: 2, Start: 3, Finish: 4,
		In: []Comm{{From: Ref{0, 0}, Volume: 2, Start: 1, Finish: 3}}})
	s.AddReplica(&Replica{Ref: Ref{1, 1}, Proc: 3, Start: 3, Finish: 4,
		In: []Comm{{From: Ref{0, 1}, Volume: 2, Start: 1, Finish: 3}}})
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "exceeds period") {
		t.Fatalf("want throughput error, got %v", err)
	}
	if err := s.ValidateOpts(ValidateOptions{SkipThroughput: true}); err != nil {
		t.Fatalf("SkipThroughput should pass: %v", err)
	}
}

func TestValidateOnePortOverlap(t *testing.T) {
	// Two sends from P0 overlapping in time.
	g := dag.New("fan")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	g.MustAddEdge(a, b, 2)
	g.MustAddEdge(a, c, 2)
	p := platform.Homogeneous(3, 1, 1)
	s := New(g, p, 0, 10, "t")
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	s.AddReplica(&Replica{Ref: Ref{1, 0}, Proc: 1, Start: 3, Finish: 4,
		In: []Comm{{From: Ref{0, 0}, Volume: 2, Start: 1, Finish: 3}}})
	s.AddReplica(&Replica{Ref: Ref{2, 0}, Proc: 2, Start: 4, Finish: 5,
		In: []Comm{{From: Ref{0, 0}, Volume: 2, Start: 2, Finish: 4}}}) // overlaps send [1,3)
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "send overlap") {
		t.Fatalf("want one-port send error, got %v", err)
	}
}

func TestValidateCommFromNonPredecessor(t *testing.T) {
	g := dag.New("three")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	g.MustAddEdge(a, c, 1)
	g.MustAddEdge(b, c, 1)
	p := platform.Homogeneous(3, 1, 1)
	s := New(g, p, 0, 10, "t")
	s.AddReplica(&Replica{Ref: Ref{0, 0}, Proc: 0, Start: 0, Finish: 1})
	s.AddReplica(&Replica{Ref: Ref{1, 0}, Proc: 1, Start: 0, Finish: 1,
		In: []Comm{{From: Ref{0, 0}, Volume: 1, Start: 1, Finish: 2}}}) // b has no pred a
	s.AddReplica(&Replica{Ref: Ref{2, 0}, Proc: 2, Start: 4, Finish: 5,
		In: []Comm{
			{From: Ref{0, 0}, Volume: 1, Start: 1, Finish: 2},
			{From: Ref{1, 0}, Volume: 1, Start: 2, Finish: 3},
		}})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "non-predecessor") {
		t.Fatalf("want non-predecessor error, got %v", err)
	}
}

func TestValidateWrongVolume(t *testing.T) {
	s := fixture(t)
	s.Replica(Ref{1, 0}).In[0].Volume = 7
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "volume") {
		t.Fatalf("want volume error, got %v", err)
	}
}

func TestGanttRendering(t *testing.T) {
	s := fixture(t)
	out := s.Gantt(40)
	if !strings.Contains(out, "P1") || !strings.Contains(out, "S=2") {
		t.Fatalf("Gantt output:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 5 { // header + 4 procs
		t.Fatalf("Gantt rows wrong:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	g := chainAB()
	p := platform.Homogeneous(2, 1, 1)
	s := New(g, p, 0, 10, "t")
	if !strings.Contains(s.Gantt(40), "empty") {
		t.Fatal("empty gantt not flagged")
	}
}

func TestCommTable(t *testing.T) {
	out := fixture(t).CommTable()
	if !strings.Contains(out, "t0(1)@P1 → t1(1)@P3") {
		t.Fatalf("CommTable:\n%s", out)
	}
}

func TestStringer(t *testing.T) {
	if s := fixture(t).String(); !strings.Contains(s, "S=2") {
		t.Fatalf("String = %q", s)
	}
}

func TestReplicaRefs(t *testing.T) {
	refs := ReplicaRefs(3, 2)
	if len(refs) != 3 || refs[2] != (Ref{3, 2}) {
		t.Fatalf("ReplicaRefs = %v", refs)
	}
}

func TestRefString(t *testing.T) {
	if got := (Ref{2, 0}).String(); got != "t2(1)" {
		t.Fatalf("Ref.String = %q", got)
	}
}
