package core

// Online rescheduling. Replan turns a committed schedule plus an observed
// platform delta into a schedule for the post-delta platform, preferring
// incremental repair (internal/repair: replay the surviving placement,
// journal-unwind and re-place only the evicted tasks) and falling back to
// a cold re-solve when repair fails or exceeds the configured budget.

import (
	"context"
	"errors"
	"fmt"

	"streamsched/internal/infeas"
	"streamsched/internal/obs"
	"streamsched/internal/repair"
	"streamsched/internal/schedule"
)

// Delta re-exports the platform change set consumed by Replan.
type Delta = repair.Delta

// RepairStats re-exports the repair statistics carried by a ReplanResult.
type RepairStats = repair.Stats

// ErrRepairBudget re-exports the typed budget-exhaustion error, returned
// by Replan when the budget is exceeded and cold fallback is disabled.
var ErrRepairBudget = repair.ErrBudgetExceeded

// ReplanResult is a successful Replan: the schedule for the post-delta
// platform plus how it was obtained (replayed/repaired task counts, or
// ColdSolve when repair fell back to a full re-solve).
type ReplanResult struct {
	Schedule *schedule.Schedule
	Stats    RepairStats
}

// replanCfg collects the Replan options.
type replanCfg struct {
	budget       int
	coldFallback bool
}

// ReplanOption configures one Replan call.
type ReplanOption func(*replanCfg) error

// WithRepairBudget bounds the number of tasks repair may re-place through
// the search machinery before giving up (0, the default, is unlimited).
// An exceeded budget triggers the cold-solve fallback, or fails with
// ErrRepairBudget when the fallback is disabled.
func WithRepairBudget(n int) ReplanOption {
	return func(c *replanCfg) error {
		if n < 0 {
			return fmt.Errorf("core: negative repair budget %d", n)
		}
		c.budget = n
		return nil
	}
}

// WithColdFallback toggles the fall-back-to-cold-solve policy (default
// on): when repair fails — infeasible re-placement, exceeded budget, or a
// latency cap the repaired schedule misses — Replan re-solves the instance
// from scratch on the post-delta platform. Disabling it surfaces the
// repair error instead, which lets callers distinguish "the old schedule
// survived" from "we paid for a full solve".
func WithColdFallback(on bool) ReplanOption {
	return func(c *replanCfg) error {
		c.coldFallback = on
		return nil
	}
}

// Replan schedules old's graph on the platform obtained by applying delta
// to old's platform. The solver must agree with the committed schedule on
// ε and the period (they define the replication degree and the feasibility
// budgets repair re-validates); algorithm, chunking and the latency cap
// are taken from the solver. Infeasibility — of a repair re-placement with
// the fallback disabled, or of the cold re-solve — is reported through the
// usual typed ErrInfeasible family; a cancelled ctx aborts with ctx.Err().
func (s *Solver) Replan(ctx context.Context, old *schedule.Schedule, delta Delta, opts ...ReplanOption) (*ReplanResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if old == nil {
		return nil, errors.New("core: Replan requires the committed schedule")
	}
	if old.Eps != s.eps || old.Period != s.period {
		return nil, fmt.Errorf("core: solver (ε=%d, Δ=%v) does not match the committed schedule (ε=%d, Δ=%v)",
			s.eps, s.period, old.Eps, old.Period)
	}
	cfg := replanCfg{coldFallback: true}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	newP, remap, err := delta.Apply(old.P)
	if err != nil {
		return nil, err
	}
	res, rerr := repair.Repair(ctx, old, newP, remap, cfg.budget)
	if rerr == nil && s.latencyCap > 0 && res.Schedule.LatencyBound() > s.latencyCap+latencyTol {
		rerr = infeas.Newf(ReasonLatencyExceeded, s.period,
			"repaired latency bound %g exceeds cap %g", res.Schedule.LatencyBound(), s.latencyCap)
	}
	if rerr != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !cfg.coldFallback {
			return nil, rerr
		}
		if sp := obs.FromContext(ctx); sp.Active() {
			sp.Event("cold-fallback", map[string]any{"cause": rerr.Error()})
		}
		sched, serr := s.Solve(ctx, old.G, newP)
		if serr != nil {
			return nil, serr
		}
		return &ReplanResult{Schedule: sched, Stats: RepairStats{ColdSolve: true}}, nil
	}
	return &ReplanResult{Schedule: res.Schedule, Stats: res.Stats}, nil
}
