package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
	"streamsched/internal/randgraph"
	"streamsched/internal/rng"
	"streamsched/internal/schedule"
)

func TestSolverOptions(t *testing.T) {
	cases := []struct {
		name    string
		opts    []Option
		wantErr bool
	}{
		{"minimal", []Option{WithPeriod(10)}, false},
		{"full", []Option{
			WithAlgorithm(LTF), WithEps(2), WithPeriod(10),
			WithChunkSize(4), WithLookahead(2), WithOneToOne(false), WithLatencyCap(100),
		}, false},
		{"portfolio", []Option{WithAlgorithm(Portfolio), WithPeriod(10)}, false},
		{"missing period", nil, true},
		{"zero period", []Option{WithPeriod(0)}, true},
		{"negative period", []Option{WithPeriod(-1)}, true},
		{"negative eps", []Option{WithEps(-1), WithPeriod(10)}, true},
		{"negative chunk", []Option{WithChunkSize(-1), WithPeriod(10)}, true},
		{"lookahead", []Option{WithLookahead(4), WithPeriod(10)}, false},
		{"zero lookahead", []Option{WithLookahead(0), WithPeriod(10)}, true},
		{"negative lookahead", []Option{WithLookahead(-2), WithPeriod(10)}, true},
		{"unknown algorithm", []Option{WithAlgorithm(Algorithm(99)), WithPeriod(10)}, true},
		{"last option wins", []Option{WithPeriod(10), WithPeriod(20)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSolver(tc.opts...)
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if s == nil {
				t.Fatal("nil solver")
			}
		})
	}
}

func TestSolverDefaults(t *testing.T) {
	s, err := NewSolver(WithPeriod(12))
	if err != nil {
		t.Fatal(err)
	}
	if s.Algorithm() != RLTF || s.Eps() != 0 || s.Period() != 12 {
		t.Fatalf("defaults: algo=%v eps=%d period=%v", s.Algorithm(), s.Eps(), s.Period())
	}
}

// chain builds a → b with the given works and edge volume.
func chainGraph(workA, workB, vol float64) *dag.Graph {
	g := dag.New("chain")
	a := g.AddTask("a", workA)
	b := g.AddTask("b", workB)
	g.MustAddEdge(a, b, vol)
	return g
}

func TestInfeasibleReasonPeriodExceeded(t *testing.T) {
	// One task of work 10 at speed 1 can never fit a period of 5.
	g := dag.New("heavy")
	g.AddTask("a", 10)
	p := platform.Homogeneous(2, 1, 1)
	for _, algo := range []Algorithm{LTF, RLTF} {
		s, err := NewSolver(WithAlgorithm(algo), WithPeriod(5))
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Solve(context.Background(), g, p)
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("%v: err = %v, want ErrInfeasible", algo, err)
		}
		var inf *InfeasibleError
		if !errors.As(err, &inf) {
			t.Fatalf("%v: error type %T", algo, err)
		}
		if inf.Reason != ReasonPeriodExceeded {
			t.Fatalf("%v: reason = %v, want period exceeded", algo, inf.Reason)
		}
	}
}

func TestInfeasibleReasonPortOverload(t *testing.T) {
	// Tiny compute, huge transfer: with ε=1 on two processors and full
	// communication replication (one-to-one off), every copy of b receives
	// from the remote copy of a, and the port budget — not the compute
	// load — kills every placement.
	g := chainGraph(0.1, 0.1, 1000)
	p := platform.Homogeneous(2, 1, 1) // transfer time 1000 ≫ period
	s, err := NewSolver(WithAlgorithm(LTF), WithEps(1), WithPeriod(10), WithOneToOne(false))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Solve(context.Background(), g, p)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("error type %T", err)
	}
	if inf.Reason != ReasonPortOverload {
		t.Fatalf("reason = %v, want port overload", inf.Reason)
	}
}

func TestInfeasibleReasonNoProcessor(t *testing.T) {
	// ε+1 = 4 replicas on a 2-processor platform: no placement exists.
	g := chainGraph(1, 1, 1)
	p := platform.Homogeneous(2, 1, 1)
	s, err := NewSolver(WithAlgorithm(RLTF), WithEps(3), WithPeriod(100))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Solve(context.Background(), g, p)
	var inf *InfeasibleError
	if !errors.As(err, &inf) || inf.Reason != ReasonNoProcessor {
		t.Fatalf("err = %v, want no-processor infeasibility", err)
	}
}

func TestInfeasibleReasonLatencyExceeded(t *testing.T) {
	g := chainGraph(1, 1, 1)
	p := platform.Homogeneous(4, 1, 1)
	s, err := NewSolver(WithAlgorithm(RLTF), WithPeriod(10), WithLatencyCap(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Solve(context.Background(), g, p)
	var inf *InfeasibleError
	if !errors.As(err, &inf) || inf.Reason != ReasonLatencyExceeded {
		t.Fatalf("err = %v, want latency-exceeded infeasibility", err)
	}
}

func TestSolveNilAndInvalidInputs(t *testing.T) {
	s, err := NewSolver(WithPeriod(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background(), nil, platform.Homogeneous(2, 1, 1)); err == nil {
		t.Fatal("nil graph must fail")
	}
	if _, err := s.Solve(context.Background(), dag.New("g"), nil); err == nil {
		t.Fatal("nil platform must fail")
	}
	// Empty graph fails graph validation, not infeasibility.
	if _, err := s.Solve(context.Background(), dag.New("empty"), platform.Homogeneous(2, 1, 1)); err == nil || errors.Is(err, ErrInfeasible) {
		t.Fatalf("empty graph: err = %v, want a non-infeasibility validation error", err)
	}
}

func TestSolveCancelledContext(t *testing.T) {
	g := randgraph.Chain(20, 1, 0.1)
	p := platform.Homogeneous(4, 1, 10)
	s, err := NewSolver(WithPeriod(100))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Solve(ctx, g, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPortfolioKeepsBetterSchedule(t *testing.T) {
	r := rng.New(3)
	p := platform.RandomHeterogeneous(r, 10, 0.5, 1, 0.5, 1, 100)
	cfg := randgraph.DefaultStreamConfig()
	g := randgraph.Stream(r, cfg, p)

	period := 20.0
	solve := func(algo Algorithm) (*InfeasibleError, float64) {
		s, err := NewSolver(WithAlgorithm(algo), WithEps(1), WithPeriod(period))
		if err != nil {
			t.Fatal(err)
		}
		sched, err := s.Solve(context.Background(), g, p)
		if err != nil {
			var inf *InfeasibleError
			if !errors.As(err, &inf) {
				t.Fatal(err)
			}
			return inf, 0
		}
		return nil, sched.LatencyBound()
	}
	infL, boundL := solve(LTF)
	infR, boundR := solve(RLTF)
	infP, boundP := solve(Portfolio)

	if infL != nil && infR != nil {
		if infP == nil {
			t.Fatal("portfolio feasible where both algorithms fail")
		}
		return
	}
	if infP != nil {
		t.Fatalf("portfolio infeasible (%v) although one algorithm succeeds", infP)
	}
	best := boundR
	if infR != nil || (infL == nil && boundL < boundR) {
		best = boundL
	}
	if boundP != best {
		t.Fatalf("portfolio bound %v, want best of LTF %v / RLTF %v", boundP, boundL, boundR)
	}
}

func TestSolverLookahead(t *testing.T) {
	r := rng.New(7)
	p := platform.RandomHeterogeneous(r, 10, 0.5, 1, 0.5, 1, 100)
	g := randgraph.Stream(r, randgraph.DefaultStreamConfig(), p)
	period := 20.0
	for _, algo := range []Algorithm{LTF, RLTF} {
		solve := func(opts ...Option) *schedule.Schedule {
			t.Helper()
			opts = append([]Option{WithAlgorithm(algo), WithEps(1), WithPeriod(period)}, opts...)
			s, err := NewSolver(opts...)
			if err != nil {
				t.Fatal(err)
			}
			sched, err := s.Solve(context.Background(), g, p)
			if err != nil {
				t.Fatalf("%v: %v", algo, err)
			}
			return sched
		}
		// k = 1 must be the plain loop, byte for byte.
		base, err := solve().MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		one, err := solve(WithLookahead(1)).MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, one) {
			t.Fatalf("%v: WithLookahead(1) schedule differs from the default", algo)
		}
		// k > 1 schedules must stay valid under the full invariant check.
		for _, k := range []int{2, 4} {
			sched := solve(WithLookahead(k))
			if err := sched.Validate(); err != nil {
				t.Fatalf("%v lookahead %d: invalid schedule: %v", algo, k, err)
			}
		}
	}
}

// campaign builds n random instance requests with per-request option
// overrides.
func campaign(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		r := rng.New(uint64(1000 + i))
		p := platform.RandomHeterogeneous(r, 8+i%5, 0.5, 1, 0.5, 1, 100)
		cfg := randgraph.DefaultStreamConfig()
		cfg.Granularity = 0.4 + 0.1*float64(i%10)
		g := randgraph.Stream(r, cfg, p)
		reqs[i] = Request{Graph: g, Platform: p, Opts: []Option{WithEps(i % 2)}}
	}
	return reqs
}

func TestSolveManyDeterministicAcrossWorkerCounts(t *testing.T) {
	// Same 50-instance campaign, 1 worker vs 8 workers: the schedules must
	// be byte-identical (and failures must fail identically). Run under
	// -race in CI, this also exercises the pool for data races.
	reqs := campaign(50)
	opts := []Option{WithAlgorithm(Portfolio), WithPeriod(20)}
	serial := (&Batch{Workers: 1, Opts: opts}).Solve(context.Background(), reqs)
	parallel := (&Batch{Workers: 8, Opts: opts}).Solve(context.Background(), reqs)
	if len(serial) != len(reqs) || len(parallel) != len(reqs) {
		t.Fatalf("result lengths %d/%d", len(serial), len(parallel))
	}
	for i := range reqs {
		se, pe := serial[i].Err, parallel[i].Err
		if (se == nil) != (pe == nil) {
			t.Fatalf("request %d: error mismatch %v vs %v", i, se, pe)
		}
		if se != nil {
			if se.Error() != pe.Error() {
				t.Fatalf("request %d: different errors %q vs %q", i, se, pe)
			}
			continue
		}
		sj, err := serial[i].Schedule.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		pj, err := parallel[i].Schedule.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, pj) {
			t.Fatalf("request %d: schedules differ between worker counts", i)
		}
	}
}

func TestSolveManyCapturesPerRequestErrors(t *testing.T) {
	good := chainGraph(1, 1, 0.1)
	heavy := dag.New("heavy")
	heavy.AddTask("x", 1000)
	p := platform.Homogeneous(4, 1, 10)
	reqs := []Request{
		{Graph: good, Platform: p},
		{Graph: heavy, Platform: p}, // infeasible at the batch period
		{Graph: nil, Platform: p},   // invalid request
	}
	results := SolveMany(context.Background(), reqs, WithPeriod(10))
	if results[0].Err != nil || results[0].Schedule == nil {
		t.Fatalf("request 0: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, ErrInfeasible) {
		t.Fatalf("request 1: err = %v, want ErrInfeasible", results[1].Err)
	}
	if results[2].Err == nil || errors.Is(results[2].Err, ErrInfeasible) {
		t.Fatalf("request 2: err = %v, want non-infeasibility fault", results[2].Err)
	}
}

func TestSolveManyCancelledContext(t *testing.T) {
	reqs := campaign(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, r := range SolveMany(ctx, reqs, WithPeriod(20)) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("request %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestSolveManyEmpty(t *testing.T) {
	if res := SolveMany(context.Background(), nil, WithPeriod(10)); len(res) != 0 {
		t.Fatalf("got %d results for empty batch", len(res))
	}
}
