// Package core defines the paper's tri-criteria scheduling problem and ties
// the algorithm implementations together behind one entry point: given a
// workflow graph, a heterogeneous one-port platform, a throughput target and
// a fault-tolerance degree, produce a replicated pipelined schedule
// minimizing the latency L = (2S−1)/T.
//
// The package is a thin, stable façade over internal/ltf and internal/rltf;
// the root streamsched package re-exports it for library consumers. The
// entry point is the context-aware Solver (see solver.go), configured with
// functional options and reporting infeasibility through the typed
// ErrInfeasible/*InfeasibleError family; Batch and SolveMany fan instances
// across a bounded worker pool, and the Portfolio algorithm races LTF
// against R-LTF per instance.
package core

import "fmt"

// Algorithm selects a scheduling algorithm.
type Algorithm int

const (
	// LTF is Algorithm 4.1: forward traversal, minimum-finish-time
	// placement.
	LTF Algorithm = iota
	// RLTF is the Reverse LTF algorithm (§4.2): bottom-up traversal with
	// stage-preserving placement; the paper's recommended algorithm.
	RLTF
	// FaultFree is the reference schedule: R-LTF with ε forced to 0.
	FaultFree
	// Portfolio races LTF and R-LTF concurrently on the instance and keeps
	// the lower-latency feasible schedule (ties favour R-LTF).
	Portfolio
)

// String names the algorithm as in the paper.
func (a Algorithm) String() string {
	switch a {
	case LTF:
		return "LTF"
	case RLTF:
		return "R-LTF"
	case FaultFree:
		return "FF"
	case Portfolio:
		return "Portfolio"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}
