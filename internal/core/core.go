// Package core defines the paper's tri-criteria scheduling problem and ties
// the algorithm implementations together behind one entry point: given a
// workflow graph, a heterogeneous one-port platform, a throughput target and
// a fault-tolerance degree, produce a replicated pipelined schedule
// minimizing the latency L = (2S−1)/T.
//
// The package is a thin, stable façade over internal/ltf and internal/rltf;
// the root streamsched package re-exports it for library consumers. The
// entry point is the context-aware Solver (see solver.go), configured with
// functional options and reporting infeasibility through the typed
// ErrInfeasible/*InfeasibleError family; Batch and SolveMany fan instances
// across a bounded worker pool, and the Portfolio algorithm races LTF
// against R-LTF per instance.
package core

import (
	"context"
	"fmt"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// Algorithm selects a scheduling algorithm.
type Algorithm int

const (
	// LTF is Algorithm 4.1: forward traversal, minimum-finish-time
	// placement.
	LTF Algorithm = iota
	// RLTF is the Reverse LTF algorithm (§4.2): bottom-up traversal with
	// stage-preserving placement; the paper's recommended algorithm.
	RLTF
	// FaultFree is the reference schedule: R-LTF with ε forced to 0.
	FaultFree
	// Portfolio races LTF and R-LTF concurrently on the instance and keeps
	// the lower-latency feasible schedule (ties favour R-LTF).
	Portfolio
)

// String names the algorithm as in the paper.
func (a Algorithm) String() string {
	switch a {
	case LTF:
		return "LTF"
	case RLTF:
		return "R-LTF"
	case FaultFree:
		return "FF"
	case Portfolio:
		return "Portfolio"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Problem is one tri-criteria scheduling instance.
//
// Deprecated: Problem predates the Solver API and remains only as a source
// compatibility shim. Build a Solver with [NewSolver] — it validates options
// as they apply, accepts a context and a latency cap, and supports the
// Portfolio mode — and pass the graph and platform to [Solver.Solve].
type Problem struct {
	// Graph is the streaming application workflow.
	Graph *dag.Graph
	// Platform is the heterogeneous target.
	Platform *platform.Platform
	// Eps is ε, the number of arbitrary fail-silent/fail-stop processor
	// failures the schedule must survive (each task runs as ε+1 replicas).
	Eps int
	// Period is Δ = 1/T, the required iteration period. The schedule is
	// rejected if any processor's compute or port load exceeds it.
	Period float64
	// ChunkSize optionally overrides the iso-level chunk bound B (0 → m).
	ChunkSize int
	// DisableOneToOne forces full communication replication (ablation).
	DisableOneToOne bool
}

// Validate checks the instance parameters.
func (pr *Problem) Validate() error {
	if pr.Graph == nil || pr.Platform == nil {
		return fmt.Errorf("core: nil graph or platform")
	}
	if err := pr.Graph.Validate(); err != nil {
		return err
	}
	if pr.Eps < 0 {
		return fmt.Errorf("core: negative ε %d", pr.Eps)
	}
	if pr.Period <= 0 {
		return fmt.Errorf("core: non-positive period %v", pr.Period)
	}
	return nil
}

// Solver converts the instance into an equivalent Solver for algo.
func (pr *Problem) Solver(algo Algorithm) (*Solver, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	return NewSolver(
		WithAlgorithm(algo),
		WithEps(pr.Eps),
		WithPeriod(pr.Period),
		WithChunkSize(pr.ChunkSize),
		WithOneToOne(!pr.DisableOneToOne),
	)
}

// Solve runs the selected algorithm on the instance.
//
// Deprecated: build a Solver with [NewSolver] and call
// [Solver.Solve](ctx, g, p) — it accepts a context, a latency cap and the
// Portfolio mode. Solve is a thin shim kept for source compatibility; it
// solves under context.Background(). The //go:fix annotation below lets
// modernizing tooling inline the replacement mechanically.
//
//go:fix inline
func (pr *Problem) Solve(algo Algorithm) (*schedule.Schedule, error) {
	s, err := pr.Solver(algo)
	if err != nil {
		return nil, err
	}
	return s.Solve(context.Background(), pr.Graph, pr.Platform)
}

// SolveAll runs LTF and R-LTF on the instance and returns both schedules
// (nil where infeasible) — the comparison the paper's evaluation makes.
//
// Deprecated: use [SolveMany] with two requests — one WithAlgorithm(LTF),
// one WithAlgorithm(RLTF) — or a Portfolio Solver built with [NewSolver]
// when only the better schedule is needed.
//
//go:fix inline
func (pr *Problem) SolveAll() (ltfSched, rltfSched *schedule.Schedule, ltfErr, rltfErr error) {
	ltfSched, ltfErr = pr.Solve(LTF)
	rltfSched, rltfErr = pr.Solve(RLTF)
	return
}
