// Package core defines the paper's tri-criteria scheduling problem and ties
// the algorithm implementations together behind one entry point: given a
// workflow graph, a heterogeneous one-port platform, a throughput target and
// a fault-tolerance degree, produce a replicated pipelined schedule
// minimizing the latency L = (2S−1)/T.
//
// The package is a thin, stable façade over internal/ltf and internal/rltf;
// the root streamsched package re-exports it for library consumers.
package core

import (
	"fmt"

	"streamsched/internal/dag"
	"streamsched/internal/ltf"
	"streamsched/internal/platform"
	"streamsched/internal/rltf"
	"streamsched/internal/schedule"
)

// Algorithm selects a scheduling algorithm.
type Algorithm int

const (
	// LTF is Algorithm 4.1: forward traversal, minimum-finish-time
	// placement.
	LTF Algorithm = iota
	// RLTF is the Reverse LTF algorithm (§4.2): bottom-up traversal with
	// stage-preserving placement; the paper's recommended algorithm.
	RLTF
	// FaultFree is the reference schedule: R-LTF with ε forced to 0.
	FaultFree
)

// String names the algorithm as in the paper.
func (a Algorithm) String() string {
	switch a {
	case LTF:
		return "LTF"
	case RLTF:
		return "R-LTF"
	case FaultFree:
		return "FF"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Problem is one tri-criteria scheduling instance.
type Problem struct {
	// Graph is the streaming application workflow.
	Graph *dag.Graph
	// Platform is the heterogeneous target.
	Platform *platform.Platform
	// Eps is ε, the number of arbitrary fail-silent/fail-stop processor
	// failures the schedule must survive (each task runs as ε+1 replicas).
	Eps int
	// Period is Δ = 1/T, the required iteration period. The schedule is
	// rejected if any processor's compute or port load exceeds it.
	Period float64
	// ChunkSize optionally overrides the iso-level chunk bound B (0 → m).
	ChunkSize int
	// DisableOneToOne forces full communication replication (ablation).
	DisableOneToOne bool
}

// Validate checks the instance parameters.
func (pr *Problem) Validate() error {
	if pr.Graph == nil || pr.Platform == nil {
		return fmt.Errorf("core: nil graph or platform")
	}
	if err := pr.Graph.Validate(); err != nil {
		return err
	}
	if pr.Eps < 0 {
		return fmt.Errorf("core: negative ε %d", pr.Eps)
	}
	if pr.Period <= 0 {
		return fmt.Errorf("core: non-positive period %v", pr.Period)
	}
	return nil
}

// Solve runs the selected algorithm on the instance.
func (pr *Problem) Solve(algo Algorithm) (*schedule.Schedule, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	switch algo {
	case LTF:
		return ltf.Schedule(pr.Graph, pr.Platform, pr.Eps, pr.Period, ltf.Options{
			ChunkSize:       pr.ChunkSize,
			DisableOneToOne: pr.DisableOneToOne,
		})
	case RLTF:
		return rltf.Schedule(pr.Graph, pr.Platform, pr.Eps, pr.Period, rltf.Options{
			ChunkSize:       pr.ChunkSize,
			DisableOneToOne: pr.DisableOneToOne,
		})
	case FaultFree:
		return rltf.FaultFree(pr.Graph, pr.Platform, pr.Period, rltf.Options{
			ChunkSize: pr.ChunkSize,
		})
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", algo)
	}
}

// SolveAll runs LTF and R-LTF on the instance and returns both schedules
// (nil where infeasible) — the comparison the paper's evaluation makes.
func (pr *Problem) SolveAll() (ltfSched, rltfSched *schedule.Schedule, ltfErr, rltfErr error) {
	ltfSched, ltfErr = pr.Solve(LTF)
	rltfSched, rltfErr = pr.Solve(RLTF)
	return
}
