package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"streamsched/internal/dag"
	"streamsched/internal/infeas"
	"streamsched/internal/ltf"
	"streamsched/internal/obs"
	"streamsched/internal/platform"
	"streamsched/internal/rltf"
	"streamsched/internal/schedule"
)

// Typed infeasibility surface, re-exported from internal/infeas so that
// callers never import the leaf package: an instance that admits no
// schedule yields an error matching errors.Is(err, ErrInfeasible), and
// errors.As recovers the *InfeasibleError carrying the classified Reason,
// the offending Task/Copy/Proc and the Period probed.
var ErrInfeasible = infeas.ErrInfeasible

type (
	// InfeasibleError is the classified infeasibility (wraps ErrInfeasible).
	InfeasibleError = infeas.Error
	// Reason classifies an infeasibility.
	Reason = infeas.Reason
)

// Infeasibility reasons.
const (
	// ReasonPeriodExceeded: a compute load cannot fit within the period.
	ReasonPeriodExceeded = infeas.ReasonPeriodExceeded
	// ReasonPortOverload: a one-port send/receive budget is exhausted.
	ReasonPortOverload = infeas.ReasonPortOverload
	// ReasonNoProcessor: no admissible processor exists (e.g. ε+1 > m).
	ReasonNoProcessor = infeas.ReasonNoProcessor
	// ReasonLatencyExceeded: feasible, but above the WithLatencyCap bound.
	ReasonLatencyExceeded = infeas.ReasonLatencyExceeded
	// ReasonSearchExhausted: a tri-criteria search found no feasible point.
	ReasonSearchExhausted = infeas.ReasonSearchExhausted
)

// latencyTol absorbs floating-point jitter in the latency-cap comparison
// (mirrors the feasibility tolerance of internal/mapper).
const latencyTol = 1e-9

// Solver is the configured entry point to the scheduling algorithms. A
// Solver is immutable after construction, safe for concurrent use, and
// cheap to build — searches construct one per probe. Configure it with the
// functional options below; the zero configuration (algorithm R-LTF, ε = 0,
// one-to-one mapping on, no latency cap) still needs WithPeriod.
type Solver struct {
	algo       Algorithm
	eps        int
	period     float64
	chunkSize  int
	lookahead  int
	oneToOne   bool
	latencyCap float64
}

// Option configures a Solver; options are applied in order by NewSolver
// and validated as they apply.
type Option func(*Solver) error

// WithAlgorithm selects LTF, RLTF, FaultFree or Portfolio (default RLTF,
// the paper's recommendation).
func WithAlgorithm(a Algorithm) Option {
	return func(s *Solver) error {
		switch a {
		case LTF, RLTF, FaultFree, Portfolio:
			s.algo = a
			return nil
		default:
			return fmt.Errorf("core: unknown algorithm %v", a)
		}
	}
}

// WithEps sets ε, the number of arbitrary processor failures the schedule
// must survive (each task runs as ε+1 replicas; default 0). FaultFree
// ignores ε.
func WithEps(eps int) Option {
	return func(s *Solver) error {
		if eps < 0 {
			return fmt.Errorf("core: negative ε %d", eps)
		}
		s.eps = eps
		return nil
	}
}

// WithPeriod sets Δ = 1/T, the required iteration period. Mandatory: a
// Solver without a positive period fails at NewSolver.
func WithPeriod(period float64) Option {
	return func(s *Solver) error {
		if period <= 0 {
			return fmt.Errorf("core: non-positive period %v", period)
		}
		s.period = period
		return nil
	}
}

// WithChunkSize overrides the iso-level chunk bound B (default 0 → m).
func WithChunkSize(b int) Option {
	return func(s *Solver) error {
		if b < 0 {
			return fmt.Errorf("core: negative chunk size %d", b)
		}
		s.chunkSize = b
		return nil
	}
}

// WithLookahead sets the speculative placement window k (default 1, no
// speculation). With k > 1 the placement loop pops windows of k ready tasks,
// builds every candidate placement strategy for the window under a journal
// transaction, scores each complete placement by (max stage, max finish),
// and keeps the best — trading construction time for schedule quality.
// k = 1 reproduces the plain chunked loop exactly. k < 1 is a
// configuration error.
func WithLookahead(k int) Option {
	return func(s *Solver) error {
		if k < 1 {
			return fmt.Errorf("core: non-positive lookahead %d", k)
		}
		s.lookahead = k
		return nil
	}
}

// WithOneToOne toggles the one-to-one communication-mapping procedure
// (default on; off forces full (ε+1)² communication replication, the
// ablation baseline).
func WithOneToOne(on bool) Option {
	return func(s *Solver) error {
		s.oneToOne = on
		return nil
	}
}

// WithLatencyCap rejects schedules whose latency bound (2S−1)·Δ exceeds
// cap, as a ReasonLatencyExceeded infeasibility. cap ≤ 0 disables the
// check (the default).
func WithLatencyCap(cap float64) Option {
	return func(s *Solver) error {
		s.latencyCap = cap
		return nil
	}
}

// NewSolver builds a Solver from the options, validating each as it
// applies and requiring WithPeriod.
func NewSolver(opts ...Option) (*Solver, error) {
	s := &Solver{algo: RLTF, oneToOne: true, lookahead: 1}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if s.period <= 0 {
		return nil, fmt.Errorf("core: solver requires WithPeriod(Δ > 0)")
	}
	return s, nil
}

// Algorithm reports the configured algorithm.
func (s *Solver) Algorithm() Algorithm { return s.algo }

// Fingerprint returns a canonical, versioned encoding of the Solver's
// configuration. Two Solvers with identical fingerprints produce identical
// schedules for identical inputs (solving is deterministic), so the string
// is a sound cache-key component; the service layer hashes it together with
// the graph and platform (internal/service). Floats are encoded as IEEE-754
// bit patterns so the fingerprint never loses precision to formatting.
func (s *Solver) Fingerprint() string {
	return fmt.Sprintf("solver/v1 algo=%d eps=%d period=%016x chunk=%d look=%d o2o=%t lcap=%016x",
		int(s.algo), s.eps, math.Float64bits(s.period), s.chunkSize,
		s.lookahead, s.oneToOne, math.Float64bits(s.latencyCap))
}

// Period reports the configured period Δ.
func (s *Solver) Period() float64 { return s.period }

// Eps reports the configured ε.
func (s *Solver) Eps() int { return s.eps }

// Solve schedules g on p under the configured constraints. Infeasibility —
// including a feasible schedule rejected by WithLatencyCap — is reported as
// an error matching errors.Is(err, ErrInfeasible); a cancelled ctx aborts
// the placement loop with ctx.Err(); anything else is a solver fault.
func (s *Solver) Solve(ctx context.Context, g *dag.Graph, p *platform.Platform) (*schedule.Schedule, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if g == nil || p == nil {
		return nil, fmt.Errorf("core: nil graph or platform")
	}
	// Graph validation is left to mapper.New on every algorithm path —
	// validating here too would double (triple, under Portfolio) an
	// O(V+E) pass the searches repeat per probe.
	if sp := obs.FromContext(ctx); sp.Active() {
		sp.SetArg("algo", s.algo.String())
		sp.SetArg("eps", s.eps)
	}
	var (
		sched *schedule.Schedule
		err   error
	)
	if s.algo == Portfolio {
		sched, err = s.racePortfolio(ctx, g, p)
	} else {
		sched, err = s.runAlgorithm(ctx, s.algo, g, p)
	}
	if err != nil {
		return nil, err
	}
	if s.latencyCap > 0 && sched.LatencyBound() > s.latencyCap+latencyTol {
		return nil, infeas.Newf(ReasonLatencyExceeded, s.period,
			"latency bound %g exceeds cap %g", sched.LatencyBound(), s.latencyCap)
	}
	return sched, nil
}

// runAlgorithm dispatches one concrete algorithm.
func (s *Solver) runAlgorithm(ctx context.Context, algo Algorithm, g *dag.Graph, p *platform.Platform) (*schedule.Schedule, error) {
	switch algo {
	case LTF:
		return ltf.Schedule(ctx, g, p, s.eps, s.period, ltf.Options{
			ChunkSize:       s.chunkSize,
			DisableOneToOne: !s.oneToOne,
			Lookahead:       s.lookahead,
		})
	case RLTF:
		return rltf.Schedule(ctx, g, p, s.eps, s.period, rltf.Options{
			ChunkSize:       s.chunkSize,
			DisableOneToOne: !s.oneToOne,
			Lookahead:       s.lookahead,
		})
	case FaultFree:
		return rltf.FaultFree(ctx, g, p, s.period, rltf.Options{
			ChunkSize: s.chunkSize,
			Lookahead: s.lookahead,
		})
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", algo)
	}
}

// racePortfolio runs LTF and R-LTF concurrently on the instance and keeps
// the feasible schedule with the lower latency bound (ties favour R-LTF,
// the paper's recommendation). Both infeasible: the R-LTF error is
// returned. Any non-infeasibility error (including ctx cancellation) wins
// over an infeasibility, so solver faults are never masked.
func (s *Solver) racePortfolio(ctx context.Context, g *dag.Graph, p *platform.Platform) (*schedule.Schedule, error) {
	type outcome struct {
		sched *schedule.Schedule
		err   error
	}
	var ltfOut, rltfOut outcome
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ltfOut.sched, ltfOut.err = s.runAlgorithm(ctx, LTF, g, p)
	}()
	go func() {
		defer wg.Done()
		rltfOut.sched, rltfOut.err = s.runAlgorithm(ctx, RLTF, g, p)
	}()
	wg.Wait()
	for _, o := range []outcome{rltfOut, ltfOut} {
		if o.err != nil && !errors.Is(o.err, ErrInfeasible) {
			return nil, o.err
		}
	}
	switch {
	case rltfOut.err != nil && ltfOut.err != nil:
		return nil, rltfOut.err
	case rltfOut.err != nil:
		return ltfOut.sched, nil
	case ltfOut.err != nil:
		return rltfOut.sched, nil
	case ltfOut.sched.LatencyBound() < rltfOut.sched.LatencyBound():
		return ltfOut.sched, nil
	default:
		return rltfOut.sched, nil
	}
}

// Request is one instance of a batch: a graph/platform pair plus optional
// per-request option overrides, applied after the batch-wide defaults.
type Request struct {
	Graph    *dag.Graph
	Platform *platform.Platform
	Opts     []Option
}

// Result is the outcome of one batch request: exactly one of Schedule and
// Err is non-nil. Err preserves the full typed error surface of
// Solver.Solve (errors.Is ErrInfeasible, ctx errors, option errors).
type Result struct {
	Schedule *schedule.Schedule
	Err      error
}

// Batch fans requests across a bounded worker pool. The zero value is
// usable: GOMAXPROCS workers and no default options.
type Batch struct {
	// Workers bounds the concurrent solves (≤ 0 → GOMAXPROCS).
	Workers int
	// Opts are defaults applied to every request before its own Opts.
	Opts []Option
}

// Solve runs every request and returns the results in request order; each
// request's error is captured in its Result rather than aborting the batch.
// Requests are independent and each is solved deterministically, so the
// results are identical for any worker count. After ctx is cancelled,
// remaining requests fail fast with ctx.Err().
func (b *Batch) Solve(ctx context.Context, reqs []Request) []Result {
	return b.SolveFunc(ctx, reqs, b.solveOne)
}

// SolveFunc is Solve with a caller-supplied solve function: the requests
// fan across the same bounded pool with the same ordering and fail-fast
// semantics, but each request is executed by fn (which receives its index
// and the request) instead of a solver built from the option lists. The
// service layer routes pre-validated per-request solvers — and its test
// seams — through the batch pool this way.
func (b *Batch) SolveFunc(ctx context.Context, reqs []Request, fn func(ctx context.Context, i int, req Request) (*schedule.Schedule, error)) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return results
	}
	workers := b.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					results[i] = Result{Err: err}
					continue
				}
				sched, err := fn(ctx, i, reqs[i])
				if err != nil {
					results[i] = Result{Err: err}
				} else {
					results[i] = Result{Schedule: sched}
				}
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// solveOne builds the per-request solver and runs it.
func (b *Batch) solveOne(ctx context.Context, _ int, req Request) (*schedule.Schedule, error) {
	opts := make([]Option, 0, len(b.Opts)+len(req.Opts))
	opts = append(opts, b.Opts...)
	opts = append(opts, req.Opts...)
	solver, err := NewSolver(opts...)
	if err != nil {
		return nil, err
	}
	return solver.Solve(ctx, req.Graph, req.Platform)
}

// SolveMany solves the requests concurrently on a GOMAXPROCS-bounded pool
// with opts as batch-wide defaults. It is shorthand for Batch.Solve.
func SolveMany(ctx context.Context, reqs []Request, opts ...Option) []Result {
	return (&Batch{Opts: opts}).Solve(ctx, reqs)
}
