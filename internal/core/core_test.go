package core

import (
	"context"
	"strings"
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
)

// instance builds the shared tiny test instance: a two-task chain on four
// homogeneous processors.
func instance() (*dag.Graph, *platform.Platform) {
	g := dag.New("g")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddEdge(a, b, 1)
	return g, platform.Homogeneous(4, 1, 1)
}

// solve runs the instance through a Solver configured for algo with the
// shared ε=1, Δ=10 parameters.
func solve(t *testing.T, algo Algorithm) (*Solver, *dag.Graph, *platform.Platform) {
	t.Helper()
	s, err := NewSolver(WithAlgorithm(algo), WithEps(1), WithPeriod(10))
	if err != nil {
		t.Fatal(err)
	}
	g, p := instance()
	return s, g, p
}

func TestSolveLTF(t *testing.T) {
	sv, g, p := solve(t, LTF)
	s, err := sv.Solve(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Algorithm != "LTF" {
		t.Fatalf("algorithm = %q", s.Algorithm)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveRLTF(t *testing.T) {
	sv, g, p := solve(t, RLTF)
	s, err := sv.Solve(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Algorithm != "R-LTF" {
		t.Fatalf("algorithm = %q", s.Algorithm)
	}
}

func TestSolveFaultFree(t *testing.T) {
	sv, g, p := solve(t, FaultFree)
	s, err := sv.Solve(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Eps != 0 || s.Algorithm != "FF" {
		t.Fatalf("FF schedule: eps=%d algo=%q", s.Eps, s.Algorithm)
	}
}

func TestSolverRejectsUnknownAlgorithm(t *testing.T) {
	if _, err := NewSolver(WithAlgorithm(Algorithm(99)), WithPeriod(10)); err == nil {
		t.Fatal("expected error")
	}
}

func TestSolveManyBothAlgorithms(t *testing.T) {
	g, p := instance()
	reqs := []Request{
		{Graph: g, Platform: p, Opts: []Option{WithAlgorithm(LTF)}},
		{Graph: g, Platform: p, Opts: []Option{WithAlgorithm(RLTF)}},
	}
	results := SolveMany(context.Background(), reqs, WithEps(1), WithPeriod(10))
	for i, r := range results {
		if r.Err != nil || r.Schedule == nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	if a, b := results[0].Schedule.Algorithm, results[1].Schedule.Algorithm; a != "LTF" || b != "R-LTF" {
		t.Fatalf("algorithms = %q, %q", a, b)
	}
}

func TestSolverRejectsBadConfigurations(t *testing.T) {
	cases := [][]Option{
		{},                                  // missing period
		{WithPeriod(0)},                     // non-positive period
		{WithEps(-1), WithPeriod(10)},       // negative ε
		{WithPeriod(10), WithChunkSize(-1)}, // negative chunk
	}
	for i, opts := range cases {
		if _, err := NewSolver(opts...); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSolveRejectsBadInstances(t *testing.T) {
	sv, g, p := solve(t, LTF)
	if _, err := sv.Solve(context.Background(), nil, p); err == nil {
		t.Error("nil graph: expected error")
	}
	if _, err := sv.Solve(context.Background(), g, nil); err == nil {
		t.Error("nil platform: expected error")
	}
	if _, err := sv.Solve(context.Background(), dag.New("empty"), p); err == nil {
		t.Error("empty graph: expected error")
	}
}

func TestAlgorithmString(t *testing.T) {
	for algo, want := range map[Algorithm]string{LTF: "LTF", RLTF: "R-LTF", FaultFree: "FF"} {
		if algo.String() != want {
			t.Fatalf("%d.String() = %q", algo, algo.String())
		}
	}
	if !strings.Contains(Algorithm(42).String(), "42") {
		t.Fatal("unknown algorithm string")
	}
}
