package core

import (
	"strings"
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
)

func prob() *Problem {
	g := dag.New("g")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddEdge(a, b, 1)
	return &Problem{Graph: g, Platform: platform.Homogeneous(4, 1, 1), Eps: 1, Period: 10}
}

func TestSolveLTF(t *testing.T) {
	s, err := prob().Solve(LTF)
	if err != nil {
		t.Fatal(err)
	}
	if s.Algorithm != "LTF" {
		t.Fatalf("algorithm = %q", s.Algorithm)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveRLTF(t *testing.T) {
	s, err := prob().Solve(RLTF)
	if err != nil {
		t.Fatal(err)
	}
	if s.Algorithm != "R-LTF" {
		t.Fatalf("algorithm = %q", s.Algorithm)
	}
}

func TestSolveFaultFree(t *testing.T) {
	s, err := prob().Solve(FaultFree)
	if err != nil {
		t.Fatal(err)
	}
	if s.Eps != 0 || s.Algorithm != "FF" {
		t.Fatalf("FF schedule: eps=%d algo=%q", s.Eps, s.Algorithm)
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	if _, err := prob().Solve(Algorithm(99)); err == nil {
		t.Fatal("expected error")
	}
}

func TestSolveAll(t *testing.T) {
	l, r, le, re := prob().SolveAll()
	if le != nil || re != nil || l == nil || r == nil {
		t.Fatalf("SolveAll: %v %v", le, re)
	}
}

func TestValidateRejectsBadInstances(t *testing.T) {
	cases := []*Problem{
		{},
		{Graph: dag.New("empty"), Platform: platform.Homogeneous(2, 1, 1), Period: 1},
		func() *Problem { p := prob(); p.Eps = -1; return p }(),
		func() *Problem { p := prob(); p.Period = 0; return p }(),
	}
	for i, c := range cases {
		if _, err := c.Solve(LTF); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	for algo, want := range map[Algorithm]string{LTF: "LTF", RLTF: "R-LTF", FaultFree: "FF"} {
		if algo.String() != want {
			t.Fatalf("%d.String() = %q", algo, algo.String())
		}
	}
	if !strings.Contains(Algorithm(42).String(), "42") {
		t.Fatal("unknown algorithm string")
	}
}
