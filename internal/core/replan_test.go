package core

import (
	"context"
	"errors"
	"testing"

	"streamsched/internal/platform"
	"streamsched/internal/randgraph"
	"streamsched/internal/repair"
	"streamsched/internal/rng"
	"streamsched/internal/schedule"
)

// replanInstance builds a realistic stream instance and solves it.
func replanInstance(t *testing.T) (*Solver, *schedule.Schedule, *platform.Platform) {
	t.Helper()
	r := rng.New(47)
	p := platform.RandomHeterogeneous(r, 12, 0.5, 1, 0.5, 1, 100)
	g := randgraph.Stream(r, randgraph.DefaultStreamConfig(), p)
	sv, err := NewSolver(WithAlgorithm(LTF), WithEps(1), WithPeriod(40))
	if err != nil {
		t.Fatal(err)
	}
	old, err := sv.Solve(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	return sv, old, p
}

func TestReplanProcessorLoss(t *testing.T) {
	sv, old, p := replanInstance(t)
	res, err := sv.Replan(context.Background(), old, Delta{Lost: []platform.ProcID{3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ColdSolve {
		t.Fatalf("repair fell back to a cold solve: stats %+v", res.Stats)
	}
	if res.Schedule.P.NumProcs() != p.NumProcs()-1 {
		t.Fatalf("replanned schedule has %d processors", res.Schedule.P.NumProcs())
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("replanned schedule invalid: %v", err)
	}
}

func TestReplanBudgetFallsBackCold(t *testing.T) {
	sv, old, _ := replanInstance(t)
	res, err := sv.Replan(context.Background(), old, Delta{Lost: []platform.ProcID{3}}, WithRepairBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.ColdSolve {
		t.Fatalf("expected a cold-solve fallback, got stats %+v", res.Stats)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("cold-solved schedule invalid: %v", err)
	}
}

func TestReplanNoColdFallbackSurfacesBudgetError(t *testing.T) {
	sv, old, _ := replanInstance(t)
	_, err := sv.Replan(context.Background(), old, Delta{Lost: []platform.ProcID{3}},
		WithRepairBudget(1), WithColdFallback(false))
	if !errors.Is(err, ErrRepairBudget) {
		t.Fatalf("got %v, want ErrRepairBudget", err)
	}
}

func TestReplanGuards(t *testing.T) {
	sv, old, _ := replanInstance(t)
	if _, err := sv.Replan(context.Background(), nil, Delta{}); err == nil {
		t.Error("nil schedule: expected error")
	}
	if _, err := sv.Replan(context.Background(), old, Delta{}, WithRepairBudget(-1)); err == nil {
		t.Error("negative budget: expected error")
	}
	if _, err := sv.Replan(context.Background(), old, Delta{Lost: []platform.ProcID{99}}); err == nil {
		t.Error("bad delta: expected error")
	}
	other, err := NewSolver(WithAlgorithm(LTF), WithEps(2), WithPeriod(40))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Replan(context.Background(), old, Delta{}); err == nil {
		t.Error("ε mismatch: expected error")
	}
}

func TestReplanCancelledContext(t *testing.T) {
	sv, old, _ := replanInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sv.Replan(ctx, old, Delta{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestReplanEmptyDeltaReplaysAll(t *testing.T) {
	sv, old, _ := replanInstance(t)
	res, err := sv.Replan(context.Background(), old, repair.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Replayed != old.G.NumTasks() || res.Stats.Repaired != 0 {
		t.Fatalf("empty delta: stats %+v", res.Stats)
	}
}
