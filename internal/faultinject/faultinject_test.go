package faultinject

import "testing"

func TestDisarmedNeverFires(t *testing.T) {
	Reset()
	for i := 0; i < 100; i++ {
		if Fire("nowhere") {
			t.Fatal("disarmed site fired")
		}
	}
	if Calls("nowhere") != 0 {
		t.Fatal("disarmed site counted calls")
	}
	if Param("nowhere") != "" {
		t.Fatal("disarmed site has a param")
	}
}

func TestAlways(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("a", Always())
	for i := 0; i < 5; i++ {
		if !Fire("a") {
			t.Fatalf("always policy did not fire on call %d", i+1)
		}
	}
	if Fired("a") != 5 || Calls("a") != 5 {
		t.Fatalf("fired=%d calls=%d, want 5/5", Fired("a"), Calls("a"))
	}
	// Other sites stay disarmed.
	if Fire("b") {
		t.Fatal("unarmed sibling site fired")
	}
}

func TestNthFiresExactlyOnce(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("n", Nth(3))
	var pattern []bool
	for i := 0; i < 6; i++ {
		pattern = append(pattern, Fire("n"))
	}
	want := []bool{false, false, true, false, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("nth:3 pattern %v, want %v", pattern, want)
		}
	}
	if Fired("n") != 1 {
		t.Fatalf("nth fired %d times, want 1", Fired("n"))
	}
}

func TestProbDeterministic(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	run := func() []bool {
		Enable("p", Prob(0.5, 42))
		var seq []bool
		for i := 0; i < 64; i++ {
			seq = append(seq, Fire("p"))
		}
		return seq
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prob sequence not reproducible at call %d", i+1)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times; expected a mix", fired, len(a))
	}
}

func TestEnableResetsCounters(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("n", Nth(1))
	if !Fire("n") {
		t.Fatal("nth:1 did not fire on first call")
	}
	Enable("n", Nth(1)) // re-arm: counters reset
	if !Fire("n") {
		t.Fatal("re-armed nth:1 did not fire on first call")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		bad  bool
	}{
		{in: "always", want: Always()},
		{in: "always:250ms", want: Always().WithParam("250ms")},
		{in: "nth:3", want: Nth(3)},
		{in: "nth:2:boom", want: Nth(2).WithParam("boom")},
		{in: "prob:0.25:7", want: Prob(0.25, 7)},
		{in: "prob:0.25:7:slow", want: Prob(0.25, 7).WithParam("slow")},
		{in: "nth", bad: true},
		{in: "nth:0", bad: true},
		{in: "nth:x", bad: true},
		{in: "prob:2:1", bad: true},
		{in: "prob:0.5", bad: true},
		{in: "sometimes", bad: true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParsePolicy(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseSpec(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := ParseSpec("a=always, b=nth:2 ,c=prob:1:9:zzz"); err != nil {
		t.Fatal(err)
	}
	if !Fire("a") {
		t.Fatal("site a not armed")
	}
	if Fire("b") { // nth:2 — first call must not fire
		t.Fatal("site b fired on first call")
	}
	if !Fire("b") {
		t.Fatal("site b did not fire on second call")
	}
	if Param("c") != "zzz" {
		t.Fatalf("site c param %q, want zzz", Param("c"))
	}
	if err := ParseSpec("broken"); err == nil {
		t.Fatal("bad spec accepted")
	}
	if err := ParseSpec("x=nonsense"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
