// Package faultinject is a deterministic fault-injection registry for
// crash and chaos testing. Production code declares named sites — fixed
// points where a fault may be induced — and the test (or a daemon flag)
// arms a subset of them with a trigger policy:
//
//	faultinject.Enable("service.flight.panic", faultinject.Nth(1))
//	...
//	if faultinject.Fire("service.flight.panic") {
//		panic("faultinject: service.flight.panic")
//	}
//
// Determinism is the point: a chaos test that cannot reproduce its fault
// schedule cannot pin anything. Every policy is a pure function of its
// configuration and the site's call number — Nth fires on exactly the n-th
// call, Prob draws from a splitmix64 stream fixed by its seed (internal/rng,
// never math/rand), Always fires unconditionally — so a failing run replays
// bit-for-bit.
//
// Disarmed (no site enabled anywhere in the process) Fire is a single
// atomic load and returns false; sites therefore cost nothing in
// production. They are still forbidden inside //streamsched:hotpath
// functions — even one atomic load per candidate evaluation is measurable
// — which hotpathcheck enforces statically (DESIGN.md §9, §11): inject at
// the cold call site around the hot loop instead.
//
// The registry is process-global because the faults it models are process
// -global (a daemon flag arms sites before any request runs). Tests that
// arm sites must Reset in cleanup and must not run in parallel with other
// users of the same site.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"streamsched/internal/rng"
)

// Mode selects a site's trigger policy.
type Mode int

const (
	// ModeAlways fires on every call.
	ModeAlways Mode = iota
	// ModeNth fires on exactly the n-th call to the site (1-based), once.
	ModeNth
	// ModeProb fires with probability P per call, drawn from a splitmix64
	// stream seeded at Enable time: the firing pattern is a deterministic
	// function of (P, Seed, call number).
	ModeProb
)

// Policy decides, call by call, whether an armed site fires.
type Policy struct {
	Mode Mode
	// N is the 1-based firing call for ModeNth.
	N uint64
	// P and Seed parameterize ModeProb.
	P    float64
	Seed uint64
	// Param is an optional argument the site interprets (for example the
	// sleep duration of an induced-slow-solve site).
	Param string
}

// Always returns the fire-on-every-call policy.
func Always() Policy { return Policy{Mode: ModeAlways} }

// Nth returns the fire-on-exactly-the-nth-call policy (1-based).
func Nth(n uint64) Policy { return Policy{Mode: ModeNth, N: n} }

// Prob returns the fire-with-probability-p policy over a stream fixed by
// seed.
func Prob(p float64, seed uint64) Policy { return Policy{Mode: ModeProb, P: p, Seed: seed} }

// WithParam attaches a site-interpreted parameter to the policy.
func (p Policy) WithParam(param string) Policy {
	p.Param = param
	return p
}

// site is one armed site's state.
type site struct {
	policy Policy
	calls  uint64
	fired  uint64
	rand   *rng.Source
}

var (
	mu    sync.Mutex
	sites = map[string]*site{}
	// armed caches len(sites) so the disarmed fast path of Fire is one
	// atomic load with no lock and no map access.
	armed atomic.Int32
)

// Fire reports whether the named site should inject its fault on this
// call, advancing the site's call counter. When no site is enabled
// anywhere in the process it is a single atomic load returning false.
func Fire(name string) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	s := sites[name]
	if s == nil {
		return false
	}
	s.calls++
	hit := false
	switch s.policy.Mode {
	case ModeAlways:
		hit = true
	case ModeNth:
		hit = s.calls == s.policy.N
	case ModeProb:
		hit = s.rand.Float64() < s.policy.P
	}
	if hit {
		s.fired++
	}
	return hit
}

// Param returns the armed site's policy parameter, or "" when the site is
// not enabled.
func Param(name string) string {
	if armed.Load() == 0 {
		return ""
	}
	mu.Lock()
	defer mu.Unlock()
	if s := sites[name]; s != nil {
		return s.policy.Param
	}
	return ""
}

// Enable arms name with policy p, replacing any previous policy and
// resetting the site's counters.
func Enable(name string, p Policy) {
	mu.Lock()
	defer mu.Unlock()
	sites[name] = &site{policy: p, rand: rng.New(p.Seed)}
	armed.Store(int32(len(sites)))
}

// Disable disarms name; Fire on it returns false again.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(sites, name)
	armed.Store(int32(len(sites)))
}

// Reset disarms every site. Tests that Enable must defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	sites = map[string]*site{}
	armed.Store(0)
}

// Calls returns how many times Fire has been consulted for an armed site
// (0 when disarmed).
func Calls(name string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if s := sites[name]; s != nil {
		return s.calls
	}
	return 0
}

// Fired returns how many times the site actually fired.
func Fired(name string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if s := sites[name]; s != nil {
		return s.fired
	}
	return 0
}

// ParsePolicy parses the textual policy grammar used by daemon flags:
//
//	always[:param]
//	nth:N[:param]
//	prob:P:SEED[:param]
func ParsePolicy(s string) (Policy, error) {
	parts := strings.Split(s, ":")
	switch parts[0] {
	case "always":
		p := Always()
		if len(parts) > 1 {
			p.Param = strings.Join(parts[1:], ":")
		}
		return p, nil
	case "nth":
		if len(parts) < 2 {
			return Policy{}, fmt.Errorf("faultinject: nth policy needs a call number: %q", s)
		}
		n, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil || n == 0 {
			return Policy{}, fmt.Errorf("faultinject: bad nth call number %q", parts[1])
		}
		p := Nth(n)
		if len(parts) > 2 {
			p.Param = strings.Join(parts[2:], ":")
		}
		return p, nil
	case "prob":
		if len(parts) < 3 {
			return Policy{}, fmt.Errorf("faultinject: prob policy needs probability and seed: %q", s)
		}
		pr, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || pr < 0 || pr > 1 {
			return Policy{}, fmt.Errorf("faultinject: bad probability %q", parts[1])
		}
		seed, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return Policy{}, fmt.Errorf("faultinject: bad seed %q", parts[2])
		}
		p := Prob(pr, seed)
		if len(parts) > 3 {
			p.Param = strings.Join(parts[3:], ":")
		}
		return p, nil
	default:
		return Policy{}, fmt.Errorf("faultinject: unknown policy %q (want always, nth:N or prob:P:SEED)", s)
	}
}

// ParseSpec parses and enables one or more comma-separated site=policy
// entries, e.g. "service.flight.panic=nth:1,service.flight.slow=always:250ms".
func ParseSpec(spec string) error {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, pol, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return fmt.Errorf("faultinject: bad spec entry %q (want site=policy)", entry)
		}
		p, err := ParsePolicy(pol)
		if err != nil {
			return err
		}
		Enable(name, p)
	}
	return nil
}
