package baselines

// Clustering baseline, after the WMSH algorithm of Vydyanathan et al. [10]
// (§3): first build clusters under an unbounded-processor assumption so
// that each cluster's computation fits within the period (edges are
// zeroed greedily by decreasing volume — the throughput phase); then merge
// clusters down to the physical processor count (the processor-reduction
// phase); finally map clusters onto processors, heaviest cluster to the
// fastest processor, and emit a real one-port schedule (the refinement
// phase is inherited from the shared commit machinery, which packs
// communications as early as possible). Single copies only (ε = 0): none
// of the surveyed heuristics replicates.

import (
	"sort"

	"streamsched/internal/dag"
	"streamsched/internal/infeas"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// Clustered schedules g with the clustering heuristic under the period
// budget.
func Clustered(g *dag.Graph, p *platform.Platform, period float64) (*schedule.Schedule, error) {
	ls, err := newListState(g, p, period, "CLUST")
	if err != nil {
		return nil, err
	}
	n := g.NumTasks()

	// Union-find over tasks; cluster load measured at the platform's mean
	// speed (the physical processor is unknown until phase 3).
	parent := make([]int, n)
	load := make([]float64, n)
	meanS := p.MeanSpeed()
	for i := 0; i < n; i++ {
		parent[i] = i
		load[i] = g.Task(dag.TaskID(i)).Work / meanS
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}

	// Phase 1: zero edges by decreasing volume while cluster loads fit.
	type edge struct {
		from, to int
		vol      float64
	}
	var edges []edge
	for i := 0; i < n; i++ {
		for _, e := range g.Succ(dag.TaskID(i)) {
			edges = append(edges, edge{int(e.From), int(e.To), e.Volume})
		}
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].vol != edges[j].vol {
			return edges[i].vol > edges[j].vol
		}
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	merge := func(a, b int, budget float64) bool {
		ra, rb := find(a), find(b)
		if ra == rb {
			return true
		}
		if load[ra]+load[rb] > budget {
			return false
		}
		parent[rb] = ra
		load[ra] += load[rb]
		return true
	}
	for _, e := range edges {
		merge(e.from, e.to, period)
	}

	// Phase 2: reduce to at most m clusters, merging the two lightest.
	roots := map[int]bool{}
	for i := 0; i < n; i++ {
		roots[find(i)] = true
	}
	for len(roots) > p.NumProcs() {
		var list []int
		for r := 0; r < n; r++ {
			if roots[r] {
				list = append(list, r)
			}
		}
		sort.SliceStable(list, func(i, j int) bool {
			if load[list[i]] != load[list[j]] {
				return load[list[i]] < load[list[j]]
			}
			return list[i] < list[j]
		})
		a, b := list[0], list[1]
		if load[a]+load[b] > period {
			return nil, infeas.Newf(infeas.ReasonPeriodExceeded, period,
				"clustering cannot reduce to %d processors", p.NumProcs())
		}
		parent[b] = a
		load[a] += load[b]
		delete(roots, b)
	}

	// Phase 3: heaviest cluster → fastest processor.
	var clusters []int
	for r := 0; r < n; r++ {
		if roots[r] {
			clusters = append(clusters, r)
		}
	}
	sort.SliceStable(clusters, func(i, j int) bool {
		if load[clusters[i]] != load[clusters[j]] {
			return load[clusters[i]] > load[clusters[j]]
		}
		return clusters[i] < clusters[j]
	})
	procBySpeed := make([]platform.ProcID, p.NumProcs())
	for u := range procBySpeed {
		procBySpeed[u] = platform.ProcID(u)
	}
	sort.SliceStable(procBySpeed, func(i, j int) bool {
		si, sj := p.Speed(procBySpeed[i]), p.Speed(procBySpeed[j])
		if si != sj {
			return si > sj
		}
		return procBySpeed[i] < procBySpeed[j]
	})
	procOf := make([]platform.ProcID, n)
	for ci, root := range clusters {
		u := procBySpeed[ci]
		for i := 0; i < n; i++ {
			if find(i) == root {
				procOf[i] = u
			}
		}
	}

	// Emit the schedule in topological order on the assigned processors.
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, t := range order {
		u := procOf[t]
		if !ls.feasible(t, u) {
			return nil, &infeas.Error{Reason: infeas.ReasonPeriodExceeded, Task: t, Copy: -1, Proc: u, Period: period}
		}
		ls.commit(t, u)
	}
	return ls.sched, nil
}
