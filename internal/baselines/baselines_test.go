package baselines

import (
	"context"
	"math"
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/ltf"
	"streamsched/internal/platform"
	"streamsched/internal/randgraph"
	"streamsched/internal/rltf"
	"streamsched/internal/schedule"
)

func ltfSched(ctx context.Context, g *dag.Graph, p *platform.Platform, eps int, period float64) (*schedule.Schedule, error) {
	return ltf.Schedule(ctx, g, p, eps, period, ltf.Options{})
}

func rltfSched(ctx context.Context, g *dag.Graph, p *platform.Platform, eps int, period float64) (*schedule.Schedule, error) {
	return rltf.Schedule(ctx, g, p, eps, period, rltf.Options{})
}

func TestTaskParallelFig1(t *testing.T) {
	g := randgraph.Fig1Graph()
	p := randgraph.Fig1Platform()
	res, err := TaskParallel(context.Background(), g, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.ValidateOpts(schedule.ValidateOptions{SkipThroughput: true}); err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 1b reports L = 39, T = 1/39 for this instance.
	// Our contention-aware LTF must land in the same neighbourhood (the
	// figure's hand schedule is one of several optima).
	if res.Latency < 30 || res.Latency > 55 {
		t.Fatalf("task-parallel latency %v far from the paper's 39", res.Latency)
	}
	if math.Abs(res.Throughput*res.Latency-1) > 1e-9 {
		t.Fatal("T must equal 1/L in the task-parallel scenario")
	}
}

func TestDataParallelFig1(t *testing.T) {
	g := randgraph.Fig1Graph()
	p := randgraph.Fig1Platform()
	res, err := DataParallel(g, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1c: four replicas in two groups; primaries are the two fast
	// processors (s=1.5), whole graph takes 60/1.5 = 40 ⇒ T = 2/40 = 1/20.
	if res.Groups != 2 {
		t.Fatalf("groups = %d, want 2", res.Groups)
	}
	if math.Abs(res.Throughput-1.0/20) > 1e-9 {
		t.Fatalf("T = %v, want 1/20", res.Throughput)
	}
	if math.Abs(res.Latency-40) > 1e-9 {
		t.Fatalf("L = %v, want 40", res.Latency)
	}
}

func TestDataParallelTooFewProcs(t *testing.T) {
	g := randgraph.Fig1Graph()
	p := platform.Homogeneous(2, 1, 1)
	if _, err := DataParallel(g, p, 3); err == nil {
		t.Fatal("expected error")
	}
}

func TestMinPeriodChain(t *testing.T) {
	// 4 unit tasks, ε=0, 2 processors: the best achievable period is 2
	// (two tasks per processor), communication aside.
	g := randgraph.Chain(4, 1, 0.001)
	p := platform.Homogeneous(2, 1, 1000)
	period, s, err := MinPeriod(context.Background(), g, p, 0, rltfSched, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || period < 2-1e-3 || period > 2.1 {
		t.Fatalf("min period = %v, want ≈2", period)
	}
}

func TestMinPeriodLowerBoundRespected(t *testing.T) {
	// A single heavy task bounds the period from below by its execution
	// time on the fastest processor.
	g := dag.New("one")
	g.AddTask("t", 12)
	p := platform.New([]float64{3, 1}, [][]float64{{0, 1}, {1, 0}})
	period, _, err := MinPeriod(context.Background(), g, p, 0, rltfSched, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if period < 4-1e-6 {
		t.Fatalf("period %v below exec-time lower bound 4", period)
	}
	if period > 4.1 {
		t.Fatalf("period %v far above lower bound 4", period)
	}
}

func TestMinPeriodMonotoneInEps(t *testing.T) {
	g := randgraph.Chain(5, 1, 0.01)
	p := platform.Homogeneous(6, 1, 100)
	p0, _, err := MinPeriod(context.Background(), g, p, 0, ltfSched, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	p1, _, err := MinPeriod(context.Background(), g, p, 1, ltfSched, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if p1 < p0-1e-6 {
		t.Fatalf("replication cannot improve the period: ε=0 → %v, ε=1 → %v", p0, p1)
	}
}

func TestMinPeriodInfeasible(t *testing.T) {
	g := randgraph.Chain(3, 1, 1)
	p := platform.Homogeneous(2, 1, 1)
	// ε+1 = 4 > m = 2: no period can help.
	if _, _, err := MinPeriod(context.Background(), g, p, 3, ltfSched, 1e-3); err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestTaskParallelSchedulesEverything(t *testing.T) {
	g := randgraph.GaussianElimination(5, 2, 1)
	p := platform.Homogeneous(6, 1, 1)
	res, err := TaskParallel(context.Background(), g, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.Complete() {
		t.Fatal("incomplete schedule")
	}
	if !res.Schedule.ToleratesAllFailures() {
		t.Fatal("task-parallel schedule must stay fault tolerant")
	}
}

func TestDataParallelHomogeneous(t *testing.T) {
	g := randgraph.Chain(3, 10, 1)
	p := platform.Homogeneous(6, 2, 1)
	res, err := DataParallel(g, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 6 procs / 3 replicas = 2 groups; each primary runs 30 work at speed 2
	// → 15 per item → T = 2/15.
	if res.Groups != 2 || math.Abs(res.Throughput-2.0/15) > 1e-9 {
		t.Fatalf("got groups=%d T=%v", res.Groups, res.Throughput)
	}
}
