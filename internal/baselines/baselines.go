// Package baselines implements the execution scenarios the paper contrasts
// with pipelined scheduling (Figure 1) and a related-work utility (§3):
//
//   - TaskParallel — classical list scheduling of the replicated DAG for
//     minimum makespan (Fig. 1b): the stream is processed one item at a
//     time, so the period equals the makespan and T = 1/L;
//   - DataParallel — whole-graph replication with round-robin item
//     distribution (Fig. 1c): maximum throughput, but only valid when items
//     are independent, an assumption the paper explicitly rejects;
//   - MinPeriod — the binary-search period minimizer of Hoang & Rabaey [5]:
//     the smallest Δ for which a given scheduler produces a feasible
//     mapping on the available processors.
package baselines

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"streamsched/internal/dag"
	"streamsched/internal/infeas"
	"streamsched/internal/ltf"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// TaskParallelResult reports the Fig. 1b scenario.
type TaskParallelResult struct {
	// Schedule is the makespan-oriented replicated mapping.
	Schedule *schedule.Schedule
	// Latency is the makespan L; in streaming mode one item occupies the
	// whole platform, so Throughput = 1/L.
	Latency    float64
	Throughput float64
}

// TaskParallel schedules the replicated DAG for minimum makespan with the
// LTF machinery under an effectively unconstrained period, reproducing the
// paper's "task parallelism" scenario.
func TaskParallel(ctx context.Context, g *dag.Graph, p *platform.Platform, eps int) (*TaskParallelResult, error) {
	// A period that can never bind: total sequential work plus total
	// communication on the slowest resources.
	period := (eps + 1) * 2
	unconstrained := float64(period)*g.TotalWork()/p.MinSpeed() + float64(period)*g.TotalVolume()/p.MinBandwidth() + 1
	s, err := ltf.Schedule(ctx, g, p, eps, unconstrained, ltf.Options{})
	if err != nil {
		return nil, err
	}
	l := s.Makespan()
	return &TaskParallelResult{Schedule: s, Latency: l, Throughput: 1 / l}, nil
}

// DataParallelResult reports the Fig. 1c scenario.
type DataParallelResult struct {
	// Groups is the number of replica groups (m / (ε+1)); consecutive items
	// go to consecutive groups round-robin.
	Groups int
	// PrimarySpeeds lists the fastest processor speed of each group — the
	// copy whose result is used when no failure occurs.
	PrimarySpeeds []float64
	// Latency is the slowest primary's whole-graph execution time.
	Latency float64
	// Throughput is Σ_groups 1/(whole-graph time on the group's primary) —
	// Fig. 1c's T = 2/40 on the example platform.
	Throughput float64
}

// DataParallel evaluates whole-graph replication analytically. The whole
// workflow runs on a single processor per replica, so no communications are
// priced. It returns an error when fewer than ε+1 processors exist.
//
// This scenario "requires that the processing of one data item is
// independent of the results obtained for the previous data item, a drastic
// assumption that we do not make" (§1) — it exists as a comparison point,
// not as a recommended mode.
func DataParallel(g *dag.Graph, p *platform.Platform, eps int) (*DataParallelResult, error) {
	m := p.NumProcs()
	if eps+1 > m {
		return nil, infeas.Newf(infeas.ReasonNoProcessor, 0,
			"ε+1 = %d replicas need ≥ that many processors, have %d", eps+1, m)
	}
	speeds := append([]float64(nil), p.Speeds()...)
	sort.Sort(sort.Reverse(sort.Float64Slice(speeds)))
	groups := m / (eps + 1)
	res := &DataParallelResult{Groups: groups}
	work := g.TotalWork()
	worst := 0.0
	for gi := 0; gi < groups; gi++ {
		// Group gi takes the gi-th fastest processor as primary and fills
		// the replicas with the slower tail.
		primary := speeds[gi]
		res.PrimarySpeeds = append(res.PrimarySpeeds, primary)
		t := work / primary
		res.Throughput += 1 / t
		if t > worst {
			worst = t
		}
	}
	res.Latency = worst
	return res, nil
}

// Scheduler abstracts the algorithms MinPeriod can drive.
type Scheduler func(ctx context.Context, g *dag.Graph, p *platform.Platform, eps int, period float64) (*schedule.Schedule, error)

// MinPeriod binary-searches the smallest period for which sched succeeds,
// within relative tolerance tol (e.g. 1e-3). It returns the period and the
// schedule obtained at it. The search brackets with an always-feasible
// upper bound; if even that fails, the instance is declared infeasible.
// Only infeasibility (errors.Is infeas.ErrInfeasible) narrows the bracket:
// any other scheduler error — including ctx cancellation — aborts the
// search and is returned as-is.
func MinPeriod(ctx context.Context, g *dag.Graph, p *platform.Platform, eps int, sched Scheduler, tol float64) (float64, *schedule.Schedule, error) {
	if tol <= 0 {
		tol = 1e-3
	}
	// Lower bound: the heaviest single replica on the fastest processor.
	lo := 0.0
	for _, t := range g.Tasks() {
		if et := t.Work / p.MaxSpeed(); et > lo {
			lo = et
		}
	}
	// Upper bound: everything serialized on the slowest resources.
	hi := float64(eps+1) * (g.TotalWork()/p.MinSpeed() + g.TotalVolume()/p.MinBandwidth())
	if math.IsInf(hi, 1) || hi <= 0 {
		hi = math.Max(1, lo*float64(g.NumTasks()*(eps+1)))
	}
	best, err := sched(ctx, g, p, eps, hi)
	if err != nil {
		if !errors.Is(err, infeas.ErrInfeasible) {
			return 0, nil, err
		}
		return 0, nil, fmt.Errorf("baselines: instance infeasible even at period %g: %w", hi, err)
	}
	bestPeriod := hi
	for hi-lo > tol*hi {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		mid := (lo + hi) / 2
		s, err := sched(ctx, g, p, eps, mid)
		switch {
		case err == nil:
			hi = mid
			best, bestPeriod = s, mid
		case errors.Is(err, infeas.ErrInfeasible):
			lo = mid
		default:
			return 0, nil, err
		}
	}
	return bestPeriod, best, nil
}
