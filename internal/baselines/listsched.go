package baselines

// Related-work list schedulers (§3 of the paper). The surveyed heuristics
// target homogeneous platforms without port constraints; here they are
// re-hosted on the paper's platform model (heterogeneous speeds, one-port
// transfers, optional period budget) so they compare fairly against
// LTF/R-LTF. Both schedule a single copy of each task (ε = 0) — none of the
// surveyed algorithms replicates:
//
//   - ETF (Earliest Task First, Hwang et al. [6], the engine inside the
//     TDA algorithm [11]): repeatedly commit the (ready task, processor)
//     pair with the earliest start time;
//   - HEFT (Topcuoglu et al. [9], the priority scheme the paper's tℓ+bℓ
//     levels come from): tasks in decreasing upward-rank order, each on the
//     processor minimizing its finish time.

import (
	"math"

	"streamsched/internal/dag"
	"streamsched/internal/infeas"
	"streamsched/internal/oneport"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// UnconstrainedPeriod returns a period no schedule of g on p can exceed —
// the "no throughput requirement" budget for the related-work heuristics.
func UnconstrainedPeriod(g *dag.Graph, p *platform.Platform) float64 {
	return g.TotalWork()/p.MinSpeed() + g.TotalVolume()/p.MinBandwidth() + 1
}

// listState carries the shared machinery of the two list schedulers.
type listState struct {
	g      *dag.Graph
	p      *platform.Platform
	period float64
	sys    *oneport.System
	sched  *schedule.Schedule
	sigma  []float64
	cin    []float64
	cout   []float64
}

func newListState(g *dag.Graph, p *platform.Platform, period float64, name string) (*listState, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &listState{
		g:      g,
		p:      p,
		period: period,
		sys:    oneport.NewSystem(p),
		sched:  schedule.New(g, p, 0, period, name),
		sigma:  make([]float64, p.NumProcs()),
		cin:    make([]float64, p.NumProcs()),
		cout:   make([]float64, p.NumProcs()),
	}, nil
}

// feasible applies condition (1) for a single-copy placement.
func (ls *listState) feasible(t dag.TaskID, u platform.ProcID) bool {
	const tol = 1e-9
	if ls.sigma[u]+ls.p.ExecTime(ls.g.Task(t).Work, u) > ls.period+tol {
		return false
	}
	addIn := 0.0
	for _, e := range ls.g.Pred(t) {
		src := ls.sched.Replica(schedule.Ref{Task: e.From})
		if src.Proc == u {
			continue
		}
		d := ls.p.CommTime(e.Volume, src.Proc, u)
		addIn += d
		if ls.cout[src.Proc]+d > ls.period+tol {
			return false
		}
	}
	return ls.cin[u]+addIn <= ls.period+tol
}

// trial returns the start and finish a placement of t on u would get.
func (ls *listState) trial(t dag.TaskID, u platform.ProcID) (start, finish float64) {
	txn := ls.sys.Begin()
	defer txn.Abort()
	ready := 0.0
	for _, e := range ls.g.Pred(t) {
		src := ls.sched.Replica(schedule.Ref{Task: e.From})
		_, fin := txn.Transfer(src.Proc, u, e.Volume, src.Finish, "")
		if fin > ready {
			ready = fin
		}
	}
	return txn.Compute(u, ls.g.Task(t).Work, ready, "")
}

// commit places t on u for real.
func (ls *listState) commit(t dag.TaskID, u platform.ProcID) {
	txn := ls.sys.Begin()
	ready := 0.0
	ref := schedule.Ref{Task: t}
	var in []schedule.Comm
	for _, e := range ls.g.Pred(t) {
		src := ls.sched.Replica(schedule.Ref{Task: e.From})
		cs, cf := txn.Transfer(src.Proc, u, e.Volume, src.Finish, "")
		in = append(in, schedule.Comm{From: src.Ref, Volume: e.Volume, Start: cs, Finish: cf})
		if cf > ready {
			ready = cf
		}
		if src.Proc != u {
			d := cf - cs
			ls.cin[u] += d
			ls.cout[src.Proc] += d
		}
	}
	start, finish := txn.Compute(u, ls.g.Task(t).Work, ready, ref.String())
	txn.Commit()
	ls.sigma[u] += finish - start
	ls.sched.AddReplica(&schedule.Replica{Ref: ref, Proc: u, Start: start, Finish: finish, In: in})
}

// ETF schedules g with the Earliest-Task-First policy under the period
// budget (use UnconstrainedPeriod for the heuristic's native setting).
func ETF(g *dag.Graph, p *platform.Platform, period float64) (*schedule.Schedule, error) {
	ls, err := newListState(g, p, period, "ETF")
	if err != nil {
		return nil, err
	}
	predLeft := make([]int, g.NumTasks())
	ready := []dag.TaskID{}
	for i := 0; i < g.NumTasks(); i++ {
		predLeft[i] = g.InDegree(dag.TaskID(i))
		if predLeft[i] == 0 {
			ready = append(ready, dag.TaskID(i))
		}
	}
	for len(ready) > 0 {
		bestStart := math.Inf(1)
		bestIdx, bestProc := -1, platform.ProcID(0)
		for i, t := range ready {
			for u := 0; u < p.NumProcs(); u++ {
				pu := platform.ProcID(u)
				if !ls.feasible(t, pu) {
					continue
				}
				start, _ := ls.trial(t, pu)
				if start < bestStart || (start == bestStart && (bestIdx < 0 || t < ready[bestIdx])) {
					bestStart, bestIdx, bestProc = start, i, pu
				}
			}
		}
		if bestIdx < 0 {
			return nil, infeas.Newf(infeas.ReasonPeriodExceeded, period,
				"ETF cannot place any ready task")
		}
		t := ready[bestIdx]
		ready = append(ready[:bestIdx], ready[bestIdx+1:]...)
		ls.commit(t, bestProc)
		for _, e := range g.Succ(t) {
			predLeft[e.To]--
			if predLeft[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	return ls.sched, nil
}

// HEFT schedules g in decreasing upward-rank order, each task on the
// processor with the earliest finish time, under the period budget.
func HEFT(g *dag.Graph, p *platform.Platform, period float64) (*schedule.Schedule, error) {
	ls, err := newListState(g, p, period, "HEFT")
	if err != nil {
		return nil, err
	}
	meanS := p.MeanSpeed()
	meanB := p.MeanBandwidth()
	rank := g.BottomLevels(
		func(t dag.Task) float64 { return t.Work / meanS },
		func(e dag.Edge) float64 {
			if math.IsInf(meanB, 1) {
				return 0
			}
			return e.Volume / meanB
		},
	)
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	// Stable sort by decreasing rank, topological order breaking ties —
	// rank order is consistent with precedence for bottom levels.
	tasks := append([]dag.TaskID(nil), order...)
	for i := 1; i < len(tasks); i++ {
		for j := i; j > 0 && rank[tasks[j]] > rank[tasks[j-1]]; j-- {
			tasks[j], tasks[j-1] = tasks[j-1], tasks[j]
		}
	}
	for _, t := range tasks {
		bestFinish := math.Inf(1)
		bestProc := platform.ProcID(-1)
		for u := 0; u < p.NumProcs(); u++ {
			pu := platform.ProcID(u)
			if !ls.feasible(t, pu) {
				continue
			}
			_, finish := ls.trial(t, pu)
			if finish < bestFinish {
				bestFinish, bestProc = finish, pu
			}
		}
		if bestProc < 0 {
			return nil, infeas.AtTask(infeas.ReasonPeriodExceeded, t, -1, period)
		}
		ls.commit(t, bestProc)
	}
	return ls.sched, nil
}
