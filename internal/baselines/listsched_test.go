package baselines

import (
	"context"
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
	"streamsched/internal/randgraph"
	"streamsched/internal/rng"
	"streamsched/internal/schedule"
)

func TestETFChain(t *testing.T) {
	g := randgraph.Chain(4, 1, 0.1)
	p := platform.Homogeneous(4, 1, 10)
	s, err := ETF(g, p, UnconstrainedPeriod(g, p))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateOpts(schedule.ValidateOptions{}); err != nil {
		t.Fatal(err)
	}
	if s.Algorithm != "ETF" {
		t.Fatalf("algorithm = %q", s.Algorithm)
	}
	// A chain has no parallelism: ETF keeps it on one processor (comms
	// would only delay starts).
	if s.ProcsUsed() != 1 {
		t.Fatalf("chain spread over %d processors", s.ProcsUsed())
	}
}

func TestHEFTChain(t *testing.T) {
	g := randgraph.Chain(4, 1, 0.1)
	p := platform.Homogeneous(4, 1, 10)
	s, err := HEFT(g, p, UnconstrainedPeriod(g, p))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.ProcsUsed() != 1 {
		t.Fatalf("chain spread over %d processors", s.ProcsUsed())
	}
}

func TestHEFTPrefersFastProcessor(t *testing.T) {
	g := randgraph.Chain(2, 10, 0.001)
	p := platform.New([]float64{4, 1}, [][]float64{{0, 100}, {100, 0}})
	s, err := HEFT(g, p, UnconstrainedPeriod(g, p))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.All() {
		if r.Proc != 0 {
			t.Fatalf("replica %v on slow processor", r.Ref)
		}
	}
}

func TestETFParallelTasksSpread(t *testing.T) {
	// Independent tasks: ETF should start them all at 0 on distinct procs.
	g := dag.New("indep")
	for i := 0; i < 4; i++ {
		g.AddTask("t", 1)
	}
	p := platform.Homogeneous(4, 1, 1)
	s, err := ETF(g, p, UnconstrainedPeriod(g, p))
	if err != nil {
		t.Fatal(err)
	}
	if s.ProcsUsed() != 4 {
		t.Fatalf("independent tasks on %d procs, want 4", s.ProcsUsed())
	}
	for _, r := range s.All() {
		if r.Start != 0 {
			t.Fatalf("replica %v starts at %v", r.Ref, r.Start)
		}
	}
}

func TestListSchedulersRespectPeriod(t *testing.T) {
	g := randgraph.Chain(6, 1, 0.1)
	p := platform.Homogeneous(8, 1, 10)
	for _, run := range []func() (*schedule.Schedule, error){
		func() (*schedule.Schedule, error) { return ETF(g, p, 2) },
		func() (*schedule.Schedule, error) { return HEFT(g, p, 2) },
	} {
		s, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if ct := s.AchievedCycleTime(); ct > 2+1e-9 {
			t.Fatalf("%s cycle time %v exceeds period 2", s.Algorithm, ct)
		}
	}
}

func TestListSchedulersInfeasible(t *testing.T) {
	g := randgraph.Chain(4, 10, 0.1)
	p := platform.Homogeneous(2, 1, 10)
	if _, err := ETF(g, p, 5); err == nil {
		t.Fatal("ETF accepted an impossible period")
	}
	if _, err := HEFT(g, p, 5); err == nil {
		t.Fatal("HEFT accepted an impossible period")
	}
}

// TestRLTFStagesBeatListSchedulers checks the thesis of the paper on the
// related-work policies: at the same period, stage-aware R-LTF produces no
// more pipeline stages than the makespan-oriented list schedulers in the
// aggregate.
func TestRLTFStagesBeatListSchedulers(t *testing.T) {
	r := rng.New(2024)
	rltfTotal, etfTotal, heftTotal, n := 0, 0, 0, 0
	for trial := 0; trial < 15; trial++ {
		p := platform.RandomHeterogeneous(r, 10, 0.5, 1, 0.5, 1, 100)
		cfg := randgraph.DefaultStreamConfig()
		cfg.MinTasks, cfg.MaxTasks = 30, 60
		g := randgraph.Stream(r, cfg, p)
		period := 10.0
		rs, err := rltfSched(context.Background(), g, p, 0, period)
		if err != nil {
			continue
		}
		es, err := ETF(g, p, period)
		if err != nil {
			continue
		}
		hs, err := HEFT(g, p, period)
		if err != nil {
			continue
		}
		rltfTotal += rs.Stages()
		etfTotal += es.Stages()
		heftTotal += hs.Stages()
		n++
	}
	if n == 0 {
		t.Skip("no comparable instances")
	}
	if rltfTotal > etfTotal || rltfTotal > heftTotal {
		t.Fatalf("R-LTF stages %d not below ETF %d / HEFT %d over %d instances",
			rltfTotal, etfTotal, heftTotal, n)
	}
	t.Logf("aggregate stages over %d instances: R-LTF %d, ETF %d, HEFT %d", n, rltfTotal, etfTotal, heftTotal)
}
