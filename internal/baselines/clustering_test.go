package baselines

import (
	"testing"

	"streamsched/internal/platform"
	"streamsched/internal/randgraph"
	"streamsched/internal/rng"
	"streamsched/internal/schedule"
)

func TestClusteredChainOneProcessor(t *testing.T) {
	g := randgraph.Chain(5, 1, 2)
	p := platform.Homogeneous(4, 1, 1)
	s, err := Clustered(g, p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// All five unit tasks fit one cluster (load 5 ≤ 10): zero comms.
	if s.ProcsUsed() != 1 || s.CrossComms() != 0 {
		t.Fatalf("procs=%d comms=%d", s.ProcsUsed(), s.CrossComms())
	}
	if s.Stages() != 1 {
		t.Fatalf("stages = %d", s.Stages())
	}
}

func TestClusteredSplitsWhenPeriodTight(t *testing.T) {
	g := randgraph.Chain(6, 1, 0.1)
	p := platform.Homogeneous(4, 1, 10)
	s, err := Clustered(g, p, 2.05)
	if err != nil {
		t.Fatal(err)
	}
	if s.ProcsUsed() < 3 {
		t.Fatalf("6 unit tasks at period 2 need ≥3 processors, used %d", s.ProcsUsed())
	}
	if ct := s.AchievedCycleTime(); ct > 2.05+1e-9 {
		t.Fatalf("cycle time %v over period", ct)
	}
}

func TestClusteredHeaviestClusterOnFastestProc(t *testing.T) {
	g := randgraph.Chain(4, 2, 5) // heavy comms → one cluster
	p := platform.New([]float64{1, 3}, [][]float64{{0, 1}, {1, 0}})
	s, err := Clustered(g, p, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.All() {
		if r.Proc != 1 {
			t.Fatalf("replica %v not on the fast processor", r.Ref)
		}
	}
}

func TestClusteredReducesCommsVsHEFT(t *testing.T) {
	// On comm-heavy workloads clustering's whole purpose is fewer cross
	// edges than finish-time-greedy HEFT; check the aggregate.
	r := rng.New(2025)
	clComms, heftComms, n := 0, 0, 0
	for trial := 0; trial < 10; trial++ {
		p := platform.RandomHeterogeneous(r, 8, 0.5, 1, 0.5, 1, 100)
		cfg := randgraph.DefaultStreamConfig()
		cfg.MinTasks, cfg.MaxTasks = 30, 50
		cfg.Granularity = 0.5 // comm-heavy
		g := randgraph.Stream(r, cfg, p)
		cs, err := Clustered(g, p, 10)
		if err != nil {
			continue
		}
		hs, err := HEFT(g, p, 10)
		if err != nil {
			continue
		}
		clComms += cs.CrossComms()
		heftComms += hs.CrossComms()
		n++
	}
	if n == 0 {
		t.Skip("no comparable instances")
	}
	if clComms >= heftComms {
		t.Fatalf("clustering comms %d not below HEFT %d over %d instances", clComms, heftComms, n)
	}
	t.Logf("aggregate cross comms over %d instances: CLUST %d, HEFT %d", n, clComms, heftComms)
}

func TestClusteredInfeasible(t *testing.T) {
	// 8 unit tasks, 2 processors, period 3: needs ≥ 8/3 → 3 clusters.
	g := randgraph.Chain(8, 1, 0.1)
	p := platform.Homogeneous(2, 1, 10)
	if _, err := Clustered(g, p, 3); err == nil {
		t.Fatal("expected reduction failure")
	}
}

func TestClusteredValidatesOnRandomGraphs(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 10; trial++ {
		p := platform.RandomHeterogeneous(r, 6, 0.5, 1, 0.5, 1, 100)
		cfg := randgraph.DefaultStreamConfig()
		cfg.MinTasks, cfg.MaxTasks = 15, 30
		g := randgraph.Stream(r, cfg, p)
		s, err := Clustered(g, p, 12)
		if err != nil {
			continue
		}
		if err := s.ValidateOpts(schedule.ValidateOptions{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
