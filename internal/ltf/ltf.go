// Package ltf implements the LTF (Latency, Throughput, Failures) scheduling
// algorithm — Algorithm 4.1 of the paper. LTF extends Iso-Level CAFT with a
// throughput constraint: tasks are consumed in priority order in chunks β of
// up to B ready tasks, each task is replicated ε+1 times, replicas are
// placed with the one-to-one mapping procedure while singleton processors
// remain (minimizing replicated communications) and with full communication
// replication otherwise, and every placement must satisfy condition (1):
// the target's computing load and the affected send/receive port loads must
// all fit within the period Δ = 1/T. LTF fails — returns an error — when no
// processor can accommodate a replica within the period.
package ltf

import (
	"context"
	"fmt"

	"streamsched/internal/dag"
	"streamsched/internal/mapper"
	"streamsched/internal/obs"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// Options tune the algorithm.
type Options struct {
	// ChunkSize is B, the number of ready tasks mapped per iso-level chunk.
	// 0 means the paper's default, B = m. ChunkSize 1 degrades LTF to plain
	// one-task-at-a-time list scheduling (the ablation of DESIGN.md §E10).
	ChunkSize int
	// DisableOneToOne forces full communication replication everywhere —
	// the (ε+1)² baseline the one-to-one procedure improves on (§4.2 claim,
	// DESIGN.md §E9).
	DisableOneToOne bool
	// Lookahead enables speculative chunk placement (DESIGN.md §7): windows
	// of k ready tasks are placed once per candidate strategy under a chunk
	// transaction (mapper.BeginChunk journaling), each complete placement is
	// scored by (max stage, max finish) over the window, and the best is
	// kept. 0 or 1 disables speculation and reproduces the plain chunked
	// loop exactly; k > 1 trades construction time for schedule quality.
	Lookahead int
}

// Schedule maps g onto p tolerating eps failures at the given period, and
// returns the resulting schedule. The error is non-nil when the instance is
// infeasible for LTF (a *mapper.InfeasibleError classifying the failure,
// matchable with errors.Is against infeas.ErrInfeasible) or when ctx is
// cancelled mid-placement (ctx.Err()).
func Schedule(ctx context.Context, g *dag.Graph, p *platform.Platform, eps int, period float64, opts Options) (*schedule.Schedule, error) {
	st, err := mapper.New(g, p, eps, period, "LTF")
	if err != nil {
		return nil, err
	}
	st.OneToOneOff = opts.DisableOneToOne
	b := opts.ChunkSize
	if b <= 0 {
		b = p.NumProcs()
	}
	sp := obs.FromContext(ctx).Child("ltf")
	err = run(obs.ContextWith(ctx, sp), st, b, opts.Lookahead, mapper.MinFinish)
	EndPhaseSpan(sp, st, err)
	if err != nil {
		return nil, err
	}
	return st.Sched, nil
}

// EndPhaseSpan attaches the construction's phase counters (and the error,
// if any) to an algorithm-level trace span and closes it. No-op on an
// inactive span. Shared with rltf.
func EndPhaseSpan(sp obs.SpanRef, st *mapper.State, err error) {
	if sp.Active() {
		sp.SetArg("trials", st.Phases.Trials)
		sp.SetArg("placements", st.Phases.Placements)
		sp.SetArg("rollbacks", st.Phases.Rollbacks)
		sp.SetArg("fallbacks", st.Phases.Fallbacks)
		if err != nil {
			sp.SetArg("err", err.Error())
		}
	}
	sp.End()
}

// run executes the chunked replica-placement loop shared with R-LTF (which
// calls it on the reversed graph with a different comparator factory).
func run(ctx context.Context, st *mapper.State, chunkSize, lookahead int, better mapper.Better) error {
	return runWith(ctx, st, chunkSize, lookahead, func(dag.TaskID) mapper.Better { return better })
}

// runWith is run with a per-task comparator (R-LTF's Rule 1 bound depends on
// the stages of the current task's already-placed neighbors).
//
// Forward mode interleaves the chunk tasks' replica rounds (the iso-level
// balancing of Algorithm 4.1). Reverse mode places each task's ε+1 replicas
// contiguously and all-or-nothing — either every copy through the
// one-to-one procedure or every copy through the fallback — because a
// mixture would leave the consumers that are no chain's head fed only by
// the fallback copies, an untracked vulnerability (see mapper's discipline
// note). A mid-way one-to-one failure rolls the task back through the task
// transaction's journal mark.
//
// With lookahead > 1 the loop pops windows of k ready tasks and places each
// window speculatively (placeChunkSpeculative): every candidate strategy is
// built in full under a chunk transaction, scored, rolled back, and the best
// one re-run for keeps. lookahead <= 1 is the plain loop, bit for bit.
func runWith(ctx context.Context, st *mapper.State, chunkSize, lookahead int, betterFor func(dag.TaskID) mapper.Better) error {
	// Tracing is per chunk, not per placement: a chunk is the coarsest unit
	// that still shows where a construction spent its time, and the span is
	// inactive (pure no-op) unless the request is traced.
	sp := obs.FromContext(ctx)
	pop := chunkSize
	if lookahead > 1 {
		pop = lookahead
	}
	for !st.Done() {
		// Cancellation is checked once per chunk: a chunk is the placement
		// loop's unit of work, so an abandoned search (tricrit, Batch) stops
		// within one chunk's worth of placements.
		if err := ctx.Err(); err != nil {
			return err
		}
		chunk := st.PopChunk(pop)
		if len(chunk) == 0 {
			return fmt.Errorf("ltf: no ready task but %s", "unscheduled tasks remain (graph not acyclic?)")
		}
		cs := sp.Child("chunk")
		if cs.Active() {
			cs.SetArg("tasks", len(chunk))
		}
		var err error
		switch {
		case lookahead > 1 && len(chunk) > 1:
			err = placeChunkSpeculative(st, chunk, betterFor, cs)
		case st.ReverseMode:
			err = placeChunkReverse(st, chunk, false, betterFor, cs)
		default:
			err = placeChunkForward(st, chunk, false, betterFor, cs)
		}
		if err != nil {
			cs.End()
			return err
		}
		st.MarkScheduled(chunk)
		cs.End()
	}
	return nil
}

// placeChunkForward places one forward-mode chunk. The default interleaves
// the chunk tasks' replica rounds (the iso-level balancing of Algorithm
// 4.1); sequential is the speculative alternative that finishes all ε+1
// copies of each task before starting the next, letting later tasks chain
// onto the completed placements of earlier ones.
func placeChunkForward(st *mapper.State, chunk []dag.TaskID, sequential bool, betterFor func(dag.TaskID) mapper.Better, cs obs.SpanRef) error {
	if sequential {
		for _, t := range chunk {
			better := betterFor(t)
			pools := st.Pools(t)
			theta := st.Theta(pools)
			z := 0
			for n := 0; n <= st.Eps; n++ {
				if !st.OneToOneOff && z < theta && st.OneToOne(t, n, pools, better) {
					z++
					continue
				}
				if err := st.Fallback(t, n, better); err != nil {
					return err
				}
			}
		}
		return nil
	}
	pools := make([][][]schedule.Ref, len(chunk))
	theta := make([]int, len(chunk))
	z := make([]int, len(chunk))
	for k, t := range chunk {
		pools[k] = st.Pools(t)
		theta[k] = st.Theta(pools[k])
	}
	for n := 0; n <= st.Eps; n++ {
		for k, t := range chunk {
			better := betterFor(t)
			if !st.OneToOneOff && z[k] < theta[k] && st.OneToOne(t, n, pools[k], better) {
				z[k]++
				continue
			}
			if err := st.Fallback(t, n, better); err != nil {
				return err
			}
		}
	}
	return nil
}

// placeChunkReverse places one reverse-mode chunk task by task through the
// all-or-nothing retry ladder, in priority order by default or back to front
// when reversed (the speculative alternative: the lowest-priority task picks
// its merge targets first).
func placeChunkReverse(st *mapper.State, chunk []dag.TaskID, reversed bool, betterFor func(dag.TaskID) mapper.Better, cs obs.SpanRef) error {
	for i := range chunk {
		t := chunk[i]
		if reversed {
			t = chunk[len(chunk)-1-i]
		}
		if err := placeTaskAllOrNothing(st, t, betterFor(t), cs); err != nil {
			return err
		}
	}
	return nil
}

// placeChunkSpeculative is the lookahead driver: each placement strategy
// builds the whole window under a chunk transaction, the complete placements
// are scored by (max stage, max finish) over the window's replicas — lower
// is better, ties keep the earlier variant — and after every variant has
// been rolled back the winner re-runs for keeps (the machinery is
// deterministic, so the re-run reproduces the scored placement exactly).
// When every variant fails the error of the canonical strategy is returned,
// so infeasibility classification matches the non-speculative loop.
func placeChunkSpeculative(st *mapper.State, chunk []dag.TaskID, betterFor func(dag.TaskID) mapper.Better, cs obs.SpanRef) error {
	const variants = 2
	best := -1
	bestStage, bestFin := 0, 0.0
	var firstErr error
	for v := 0; v < variants; v++ {
		st.BeginChunk(chunk)
		err := placeChunkVariant(st, chunk, v, betterFor, cs)
		if err != nil {
			if v == 0 {
				firstErr = err
			}
			st.AbortChunk()
			continue
		}
		stage, fin := windowScore(st, chunk)
		if best < 0 || stage < bestStage || (stage == bestStage && fin < bestFin) {
			best, bestStage, bestFin = v, stage, fin
		}
		st.AbortChunk()
	}
	if best < 0 {
		return firstErr
	}
	if cs.Active() {
		cs.SetArg("variant", best)
	}
	return placeChunkVariant(st, chunk, best, betterFor, cs)
}

// placeChunkVariant runs one placement strategy over the window: variant 0
// is the mode's canonical order, variant 1 its alternative.
func placeChunkVariant(st *mapper.State, chunk []dag.TaskID, variant int, betterFor func(dag.TaskID) mapper.Better, cs obs.SpanRef) error {
	if st.ReverseMode {
		return placeChunkReverse(st, chunk, variant == 1, betterFor, cs)
	}
	return placeChunkForward(st, chunk, variant == 1, betterFor, cs)
}

// windowScore reduces a fully placed window to its speculative score: the
// maximum pipeline stage and maximum finish time over the window's replicas.
// Stage dominates — it bounds the synchronous latency (2S−1)Δ — and finish
// breaks ties toward the placement that leaves the most timeline headroom.
func windowScore(st *mapper.State, chunk []dag.TaskID) (stage int, fin float64) {
	for _, t := range chunk {
		for _, ref := range schedule.ReplicaRefs(t, st.Eps) {
			if s := st.ReplicaStage(ref); s > stage {
				stage = s
			}
			if r := st.Sched.Replica(ref); r != nil && r.Finish > fin {
				fin = r.Finish
			}
		}
	}
	return stage, fin
}

// placeTaskAllOrNothing implements the reverse-mode per-task dichotomy with
// a retry ladder: a full one-to-one chain with the stage-preserving
// comparator first; if the aggressive merging runs the chains into a wall,
// a full chain with the finish-time comparator (which spreads load); and
// only then the all-fallback placement with its (ε+1)²-per-edge
// communications. Each failed rung rolls back through the task transaction
// (journaled undo, O(changes)).
func placeTaskAllOrNothing(st *mapper.State, t dag.TaskID, better mapper.Better, sp obs.SpanRef) error {
	if !st.OneToOneOff && st.Theta(st.Pools(t)) >= st.Eps+1 {
		for rung := 0; rung < 2; rung++ {
			b := better
			if rung == 1 {
				b = mapper.MinFinish
			}
			pools := st.Pools(t)
			st.BeginTask(t)
			ok := true
			for n := 0; n <= st.Eps; n++ {
				if !st.OneToOne(t, n, pools, b) {
					ok = false
					break
				}
			}
			if ok {
				st.CommitTask()
				return nil
			}
			st.AbortTask()
			if sp.Active() {
				sp.Event("rollback", map[string]any{"task": int(t), "rung": rung})
			}
		}
	}
	for n := 0; n <= st.Eps; n++ {
		if err := st.Fallback(t, n, better); err != nil {
			return err
		}
	}
	return nil
}

// Run is the shared driver exposed for R-LTF. It is not part of the public
// façade API.
func Run(ctx context.Context, st *mapper.State, chunkSize, lookahead int, betterFor func(dag.TaskID) mapper.Better) error {
	return runWith(ctx, st, chunkSize, lookahead, betterFor)
}
