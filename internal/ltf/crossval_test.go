package ltf_test

// Cross-algorithm stress validation: the exhaustive reliability audit and
// the full constraint validation applied to both schedulers across many
// random instances, fault-tolerance degrees and period pressures. These
// tests are the ground truth for the vulnerability discipline documented
// in internal/mapper.

import (
	"context"
	"fmt"
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/ltf"
	"streamsched/internal/platform"
	"streamsched/internal/rltf"
	"streamsched/internal/rng"
	"streamsched/internal/schedule"
	"streamsched/internal/sim"
)

func randomDAG(r *rng.Source, n int) *dag.Graph {
	g := dag.New("rand")
	for i := 0; i < n; i++ {
		g.AddTask("t", r.Uniform(0.5, 1.5))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(2.5 / float64(n)) {
				g.MustAddEdge(dag.TaskID(i), dag.TaskID(j), r.Uniform(0.1, 1.5))
			}
		}
	}
	return g
}

type algo struct {
	name string
	run  func(*dag.Graph, *platform.Platform, int, float64) (*schedule.Schedule, error)
}

var algos = []algo{
	{"LTF", func(g *dag.Graph, p *platform.Platform, eps int, period float64) (*schedule.Schedule, error) {
		return ltf.Schedule(context.Background(), g, p, eps, period, ltf.Options{})
	}},
	{"R-LTF", func(g *dag.Graph, p *platform.Platform, eps int, period float64) (*schedule.Schedule, error) {
		return rltf.Schedule(context.Background(), g, p, eps, period, rltf.Options{})
	}},
	{"LTF/full", func(g *dag.Graph, p *platform.Platform, eps int, period float64) (*schedule.Schedule, error) {
		return ltf.Schedule(context.Background(), g, p, eps, period, ltf.Options{DisableOneToOne: true})
	}},
	{"LTF/B=1", func(g *dag.Graph, p *platform.Platform, eps int, period float64) (*schedule.Schedule, error) {
		return ltf.Schedule(context.Background(), g, p, eps, period, ltf.Options{ChunkSize: 1})
	}},
}

// TestStressFullValidation runs every algorithm over a grid of random
// instances and audits every produced schedule, including the exhaustive
// ≤ε failure enumeration.
func TestStressFullValidation(t *testing.T) {
	r := rng.New(20090413)
	produced := map[string]int{}
	for trial := 0; trial < 40; trial++ {
		n := 8 + r.IntN(25)
		m := 6 + r.IntN(8)
		eps := r.IntN(3)
		// Period pressure from comfortable to tight.
		pressure := []float64{2.5, 1.2, 0.7}[r.IntN(3)]
		g := randomDAG(r, n)
		p := platform.RandomHeterogeneous(r, m, 0.5, 1, 0.5, 1, 10)
		period := pressure * float64(eps+1) * g.TotalWork() / (p.MeanSpeed() * float64(m))
		if period <= 0 {
			continue
		}
		for _, a := range algos {
			s, err := a.run(g, p, eps, period)
			if err != nil {
				continue // infeasible is a legitimate outcome
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d %s (n=%d m=%d eps=%d Δ=%.3g): %v",
					trial, a.name, n, m, eps, period, err)
			}
			produced[a.name]++
		}
	}
	for _, a := range algos {
		if produced[a.name] == 0 {
			t.Errorf("%s never produced a feasible schedule — stress grid too tight", a.name)
		}
	}
	t.Logf("validated schedules: %v", produced)
}

// TestStressSimulatedCrashes cross-checks the analytic validity predicate
// against the simulator: for every feasible instance and every single
// processor crash, the simulator must deliver all items iff the analytic
// audit says the schedule survives that crash (it always should, ε ≥ 1).
func TestStressSimulatedCrashes(t *testing.T) {
	r := rng.New(4242)
	checked := 0
	for trial := 0; trial < 25 && checked < 8; trial++ {
		g := randomDAG(r, 10+r.IntN(12))
		m := 6 + r.IntN(4)
		p := platform.RandomHeterogeneous(r, m, 0.5, 1, 0.5, 1, 10)
		s, err := rltf.Schedule(context.Background(), g, p, 1, 1.5*g.TotalWork()/p.MeanSpeed()/float64(m)*2, rltf.Options{})
		if err != nil {
			continue
		}
		for u := 0; u < m; u++ {
			crash := platform.ProcID(u)
			analytic := s.ValidUnderFailures(func(x platform.ProcID) bool { return x == crash })
			if !analytic {
				t.Fatalf("trial %d: ε=1 schedule does not survive crash of P%d", trial, u+1)
			}
			res, err := sim.Run(context.Background(), s, sim.Config{Items: 15, Warmup: 3,
				Failures: sim.FailureSpec{Procs: []platform.ProcID{crash}}})
			if err != nil {
				t.Fatal(err)
			}
			if res.Delivered != res.Items {
				t.Fatalf("trial %d: simulator lost items under crash of P%d that the audit accepts", trial, u+1)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no feasible instance in the stress grid")
	}
}

// TestStressEps3Exhaustive hammers the ε=3 case — four replicas, the
// all-or-nothing reverse rule, the vulnerability cap — with the exhaustive
// C(m,≤3) audit.
func TestStressEps3Exhaustive(t *testing.T) {
	r := rng.New(777)
	validated := 0
	for trial := 0; trial < 15 && validated < 6; trial++ {
		g := randomDAG(r, 10+r.IntN(10))
		p := platform.RandomHeterogeneous(r, 10, 0.5, 1, 0.5, 1, 10)
		period := 2.0 * 4 * g.TotalWork() / (p.MeanSpeed() * 10)
		for _, a := range algos[:2] {
			s, err := a.run(g, p, 3, period)
			if err != nil {
				continue
			}
			if !s.ToleratesAllFailures() {
				t.Fatalf("trial %d %s: ε=3 schedule fails the exhaustive audit\n%s",
					trial, a.name, s.Gantt(100))
			}
			validated++
		}
	}
	if validated == 0 {
		t.Skip("no feasible ε=3 instance")
	}
}

// TestSchedulersAgreeOnInfeasibleReplicaCount documents the shared
// precondition: ε+1 replicas cannot exceed the processor count.
func TestSchedulersAgreeOnInfeasibleReplicaCount(t *testing.T) {
	g := randomDAG(rng.New(1), 5)
	p := platform.Homogeneous(3, 1, 1)
	for _, a := range algos {
		if _, err := a.run(g, p, 3, 1000); err == nil {
			t.Errorf("%s accepted ε+1 > m", a.name)
		}
	}
}

// TestLatencyOrderingAcrossAlgorithms spot-checks the paper's headline on a
// deterministic set of instances: where both succeed, R-LTF's latency bound
// is at most LTF's in the clear majority of cases.
func TestLatencyOrderingAcrossAlgorithms(t *testing.T) {
	r := rng.New(31337)
	wins, losses := 0, 0
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(r, 15+r.IntN(20))
		p := platform.RandomHeterogeneous(r, 10, 0.5, 1, 0.5, 1, 10)
		period := 2.0 * 2 * g.TotalWork() / (p.MeanSpeed() * 10)
		ls, err1 := ltf.Schedule(context.Background(), g, p, 1, period, ltf.Options{})
		rs, err2 := rltf.Schedule(context.Background(), g, p, 1, period, rltf.Options{})
		if err1 != nil || err2 != nil {
			continue
		}
		if rs.LatencyBound() <= ls.LatencyBound() {
			wins++
		} else {
			losses++
		}
	}
	if wins+losses == 0 {
		t.Skip("no comparable instances")
	}
	if losses > wins {
		t.Fatalf("R-LTF lost the latency comparison %d-%d — the paper's headline inverted", losses, wins)
	}
	t.Log(fmt.Sprintf("R-LTF wins/ties %d, losses %d", wins, losses))
}
