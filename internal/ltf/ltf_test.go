package ltf

import (
	"context"
	"errors"
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/mapper"
	"streamsched/internal/platform"
	"streamsched/internal/rng"
	"streamsched/internal/schedule"
)

func chain(n int, work, vol float64) *dag.Graph {
	g := dag.New("chain")
	prev := g.AddTask("t0", work)
	for i := 1; i < n; i++ {
		cur := g.AddTask("t", work)
		g.MustAddEdge(prev, cur, vol)
		prev = cur
	}
	return g
}

func diamond() *dag.Graph {
	g := dag.New("diamond")
	a := g.AddTask("a", 2)
	b := g.AddTask("b", 3)
	c := g.AddTask("c", 4)
	d := g.AddTask("d", 2)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(a, c, 1)
	g.MustAddEdge(b, d, 1)
	g.MustAddEdge(c, d, 1)
	return g
}

// randomDAG builds a layered random DAG for stress tests.
func randomDAG(r *rng.Source, n int) *dag.Graph {
	g := dag.New("rand")
	for i := 0; i < n; i++ {
		g.AddTask("t", r.Uniform(0.5, 1.5))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(2.0 / float64(n)) {
				g.MustAddEdge(dag.TaskID(i), dag.TaskID(j), r.Uniform(0.1, 1))
			}
		}
	}
	return g
}

func TestChainNoReplication(t *testing.T) {
	g := chain(5, 1, 1)
	p := platform.Homogeneous(4, 1, 1)
	s, err := Schedule(context.Background(), g, p, 0, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Generous period: the whole chain fits on one processor; min-finish
	// placement keeps it there (no comm beats any cross-proc alternative),
	// giving a single stage.
	if s.Stages() != 1 {
		t.Fatalf("chain stages = %d, want 1\n%s", s.Stages(), s.Gantt(60))
	}
	if s.LatencyBound() != 100 {
		t.Fatalf("L = %v", s.LatencyBound())
	}
}

func TestChainReplicated(t *testing.T) {
	g := chain(4, 1, 1)
	p := platform.Homogeneous(6, 1, 1)
	s, err := Schedule(context.Background(), g, p, 1, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumTasks(); i++ {
		reps := s.Replicas(dag.TaskID(i))
		if len(reps) != 2 || reps[0] == nil || reps[1] == nil {
			t.Fatalf("task %d replicas: %v", i, reps)
		}
	}
	if !s.ToleratesAllFailures() {
		t.Fatal("ε=1 schedule must tolerate any single failure")
	}
}

func TestDiamondEps2(t *testing.T) {
	p := platform.Homogeneous(8, 1, 1)
	s, err := Schedule(context.Background(), diamond(), p, 2, 50, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputRespected(t *testing.T) {
	// Period 2 with unit tasks: at most 2 replicas per processor.
	g := chain(6, 1, 0.1)
	p := platform.Homogeneous(8, 1, 1)
	s, err := Schedule(context.Background(), g, p, 1, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := s.Loads()
	for u, sig := range l.Sigma {
		if sig > 2+1e-9 {
			t.Fatalf("Σ_%d = %v exceeds period 2", u, sig)
		}
	}
	if got := s.AchievedCycleTime(); got > 2+1e-9 {
		t.Fatalf("achieved cycle time %v exceeds period", got)
	}
}

func TestInfeasibleReturnsError(t *testing.T) {
	// 6 unit tasks, 2 processors, period 2: 2·6 = 12 replica-time > 2·2·...
	// with ε=1 there are 12 units of work and 2·2=4 units of capacity.
	g := chain(6, 1, 0.1)
	p := platform.Homogeneous(2, 1, 1)
	_, err := Schedule(context.Background(), g, p, 1, 2, Options{})
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
	var inf *mapper.InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("error type %T: %v", err, err)
	}
}

func TestTooFewProcessorsForReplicas(t *testing.T) {
	g := chain(2, 1, 1)
	p := platform.Homogeneous(2, 1, 1)
	if _, err := Schedule(context.Background(), g, p, 3, 100, Options{}); err == nil {
		t.Fatal("ε+1 > m must fail")
	}
}

func TestReplicasOnDistinctProcs(t *testing.T) {
	g := diamond()
	p := platform.Homogeneous(6, 1, 1)
	s, err := Schedule(context.Background(), g, p, 1, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumTasks(); i++ {
		reps := s.Replicas(dag.TaskID(i))
		if reps[0].Proc == reps[1].Proc {
			t.Fatalf("task %d replicas share processor %d", i, reps[0].Proc)
		}
	}
}

func TestDeterminism(t *testing.T) {
	r := rng.New(5)
	g := randomDAG(r, 30)
	p := platform.RandomHeterogeneous(rng.New(6), 8, 0.5, 1, 0.5, 1, 10)
	s1, err1 := Schedule(context.Background(), g, p, 1, 50, Options{})
	s2, err2 := Schedule(context.Background(), g, p, 1, 50, Options{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := 0; i < g.NumTasks(); i++ {
		for c := 0; c <= 1; c++ {
			r1 := s1.Replica(schedule.Ref{Task: dag.TaskID(i), Copy: c})
			r2 := s2.Replica(schedule.Ref{Task: dag.TaskID(i), Copy: c})
			if r1.Proc != r2.Proc || r1.Start != r2.Start {
				t.Fatalf("nondeterministic placement of t%d(%d)", i, c+1)
			}
		}
	}
}

func TestRandomGraphsValidate(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(r, 10+r.IntN(30))
		p := platform.RandomHeterogeneous(r, 10, 0.5, 1, 0.5, 1, 10)
		eps := r.IntN(3)
		s, err := Schedule(context.Background(), g, p, eps, 100, Options{})
		if err != nil {
			continue // infeasible instances are fine; validity is the point
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d (eps=%d): %v", trial, eps, err)
		}
	}
}

func TestChunkSizeOne(t *testing.T) {
	g := diamond()
	p := platform.Homogeneous(6, 1, 1)
	s, err := Schedule(context.Background(), g, p, 1, 100, Options{ChunkSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEntryReplicasSpread(t *testing.T) {
	// A single entry task with ε=2 must land on three distinct processors.
	g := dag.New("entry")
	g.AddTask("only", 1)
	p := platform.Homogeneous(5, 1, 1)
	s, err := Schedule(context.Background(), g, p, 2, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	procs := map[platform.ProcID]bool{}
	for _, r := range s.All() {
		procs[r.Proc] = true
	}
	if len(procs) != 3 {
		t.Fatalf("entry replicas on %d processors, want 3", len(procs))
	}
}

func TestHeterogeneousPrefersFastProc(t *testing.T) {
	// One task, two processors with very different speeds: min finish time
	// must pick the fast one for the first copy.
	g := dag.New("one")
	g.AddTask("t", 10)
	p := platform.New([]float64{5, 1}, [][]float64{{0, 1}, {1, 0}})
	s, err := Schedule(context.Background(), g, p, 0, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Replica(schedule.Ref{Task: 0, Copy: 0}).Proc != 0 {
		t.Fatal("copy placed on slow processor")
	}
}

func TestOneToOneLimitsComms(t *testing.T) {
	// Fork-join with ε=1 and plenty of processors: the one-to-one procedure
	// should produce far fewer than the full (ε+1)² comms per edge.
	g := dag.New("fj")
	e := g.AddTask("e", 1)
	x := g.AddTask("x", 1)
	for i := 0; i < 4; i++ {
		m := g.AddTask("m", 1)
		g.MustAddEdge(e, m, 1)
		g.MustAddEdge(m, x, 1)
	}
	p := platform.Homogeneous(16, 1, 1)
	s, err := Schedule(context.Background(), g, p, 1, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := g.NumEdges() * 2 * 2 // (ε+1)² per edge
	if s.TotalComms() >= full {
		t.Fatalf("one-to-one did not reduce comms: %d ≥ %d", s.TotalComms(), full)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
