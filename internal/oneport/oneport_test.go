package oneport

import (
	"testing"

	"streamsched/internal/platform"
	"streamsched/internal/rng"
	"streamsched/internal/timeline"
)

func newSys() *System {
	return NewSystem(platform.Homogeneous(4, 1.0, 1.0))
}

func TestComputePlacement(t *testing.T) {
	s := newSys()
	txn := s.Begin()
	st, fin := txn.Compute(0, 10, 0, "t0")
	if st != 0 || fin != 10 {
		t.Fatalf("compute slot [%v,%v)", st, fin)
	}
	st2, fin2 := txn.Compute(0, 5, 0, "t1")
	if st2 != 10 || fin2 != 15 {
		t.Fatalf("second compute should serialize: [%v,%v)", st2, fin2)
	}
	txn.Commit()
	if s.Comp(0).TotalBusy() != 15 {
		t.Fatalf("committed busy = %v", s.Comp(0).TotalBusy())
	}
}

func TestComputeSpeedScaling(t *testing.T) {
	p := platform.New([]float64{2, 0.5}, [][]float64{{0, 1}, {1, 0}})
	s := NewSystem(p)
	txn := s.Begin()
	_, finFast := txn.Compute(0, 10, 0, "")
	_, finSlow := txn.Compute(1, 10, 0, "")
	txn.Commit()
	if finFast != 5 || finSlow != 20 {
		t.Fatalf("speed scaling wrong: fast=%v slow=%v", finFast, finSlow)
	}
}

func TestTransferSameProcFree(t *testing.T) {
	s := newSys()
	txn := s.Begin()
	st, fin := txn.Transfer(1, 1, 100, 7, "")
	if st != 7 || fin != 7 {
		t.Fatalf("intra-proc transfer [%v,%v), want [7,7)", st, fin)
	}
	txn.Commit()
	if s.Send(1).Len() != 0 || s.Recv(1).Len() != 0 {
		t.Fatal("intra-proc transfer must not reserve ports")
	}
}

func TestTransferReservesBothPorts(t *testing.T) {
	s := newSys()
	txn := s.Begin()
	st, fin := txn.Transfer(0, 1, 4, 2, "e")
	txn.Commit()
	if st != 2 || fin != 6 {
		t.Fatalf("transfer window [%v,%v)", st, fin)
	}
	if s.Send(0).TotalBusy() != 4 || s.Recv(1).TotalBusy() != 4 {
		t.Fatal("ports not both reserved")
	}
	if s.Send(1).Len() != 0 || s.Recv(0).Len() != 0 {
		t.Fatal("wrong ports reserved")
	}
}

func TestOnePortSerializesSends(t *testing.T) {
	s := newSys()
	txn := s.Begin()
	_, f1 := txn.Transfer(0, 1, 5, 0, "")
	st2, _ := txn.Transfer(0, 2, 5, 0, "")
	txn.Commit()
	if st2 < f1 {
		t.Fatalf("two sends from one processor overlap: second starts %v before first ends %v", st2, f1)
	}
}

func TestOnePortSerializesReceives(t *testing.T) {
	s := newSys()
	txn := s.Begin()
	_, f1 := txn.Transfer(1, 0, 5, 0, "")
	st2, _ := txn.Transfer(2, 0, 5, 0, "")
	txn.Commit()
	if st2 < f1 {
		t.Fatalf("two receives at one processor overlap: %v < %v", st2, f1)
	}
}

func TestSendAndReceiveOverlapAllowed(t *testing.T) {
	// Bi-directional: a processor may send one message and receive another
	// simultaneously.
	s := newSys()
	txn := s.Begin()
	st1, _ := txn.Transfer(0, 1, 5, 0, "")
	st2, _ := txn.Transfer(2, 0, 5, 0, "")
	txn.Commit()
	if st1 != 0 || st2 != 0 {
		t.Fatalf("send+recv should overlap: send at %v, recv at %v", st1, st2)
	}
}

func TestComputeCommOverlapAllowed(t *testing.T) {
	s := newSys()
	txn := s.Begin()
	cs, _ := txn.Compute(0, 10, 0, "")
	ts, _ := txn.Transfer(0, 1, 5, 0, "")
	txn.Commit()
	if cs != 0 || ts != 0 {
		t.Fatalf("compute and send should overlap: %v %v", cs, ts)
	}
}

func TestTrialIsolation(t *testing.T) {
	s := newSys()
	trial := s.Begin()
	trial.Compute(0, 10, 0, "")
	trial.Transfer(0, 1, 5, 0, "")
	trial.Abort()
	if s.Comp(0).Len() != 0 || s.Send(0).Len() != 0 {
		t.Fatal("discarded trial leaked into system")
	}
}

func TestTrialSeesCommittedState(t *testing.T) {
	s := newSys()
	txn := s.Begin()
	txn.Compute(0, 10, 0, "")
	txn.Commit()
	trial := s.Begin()
	st, _ := trial.Compute(0, 5, 0, "")
	if st != 10 {
		t.Fatalf("trial ignored committed busy interval: start %v", st)
	}
	trial.Abort()
}

func TestCommitThenReuseDetected(t *testing.T) {
	s := newSys()
	txn := s.Begin()
	txn.Compute(0, 1, 0, "")
	txn.Commit()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on reuse")
		}
	}()
	txn.Compute(0, 1, 0, "")
}

func TestZeroVolumeTransferFree(t *testing.T) {
	s := newSys()
	txn := s.Begin()
	st, fin := txn.Transfer(0, 1, 0, 3, "")
	txn.Commit()
	if st != 3 || fin != 3 {
		t.Fatalf("zero-volume transfer [%v,%v)", st, fin)
	}
	if s.Send(0).Len() != 0 {
		t.Fatal("zero-volume transfer reserved a port")
	}
}

func TestBandwidthScaling(t *testing.T) {
	p := platform.New([]float64{1, 1}, [][]float64{{0, 4}, {4, 0}})
	s := NewSystem(p)
	txn := s.Begin()
	_, fin := txn.Transfer(0, 1, 8, 0, "")
	txn.Commit()
	if fin != 2 {
		t.Fatalf("transfer of 8 over bw 4 finished at %v, want 2", fin)
	}
}

func TestHorizon(t *testing.T) {
	s := newSys()
	txn := s.Begin()
	txn.Compute(2, 7, 0, "")
	txn.Transfer(0, 1, 3, 0, "")
	txn.Commit()
	if s.Horizon() != 7 {
		t.Fatalf("Horizon = %v", s.Horizon())
	}
}

func TestValidateAfterRandomOps(t *testing.T) {
	r := rng.New(31)
	s := NewSystem(platform.RandomHeterogeneous(r, 6, 0.5, 1, 0.5, 1, 100))
	for i := 0; i < 200; i++ {
		txn := s.Begin()
		u := platform.ProcID(r.IntN(6))
		v := platform.ProcID(r.IntN(6))
		ready := r.Uniform(0, 50)
		if r.Bool(0.5) {
			txn.Compute(u, r.Uniform(0.1, 5), ready, "")
		} else {
			txn.Transfer(u, v, r.Uniform(0, 100), ready, "")
		}
		if r.Bool(0.3) {
			txn.Abort()
		} else {
			txn.Commit()
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: transfers never start before their ready time and durations
// match vol/bandwidth exactly.
func TestTransferTimingProperty(t *testing.T) {
	r := rng.New(17)
	p := platform.RandomHeterogeneous(r, 5, 0.5, 1, 0.5, 1, 100)
	s := NewSystem(p)
	for i := 0; i < 300; i++ {
		from := platform.ProcID(r.IntN(5))
		to := platform.ProcID(r.IntN(5))
		vol := r.Uniform(1, 100)
		ready := r.Uniform(0, 40)
		txn := s.Begin()
		st, fin := txn.Transfer(from, to, vol, ready, "")
		txn.Commit()
		if st < ready {
			t.Fatalf("transfer starts %v before ready %v", st, ready)
		}
		wantDur := 0.0
		if from != to {
			wantDur = vol / p.Bandwidth(from, to)
		}
		if diff := (fin - st) - wantDur; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("duration %v, want %v", fin-st, wantDur)
		}
	}
}

func TestTxnReservationsVisibleUntilAbort(t *testing.T) {
	// A transaction reserves in place on the committed timelines (that is
	// what lets Abort be O(changes)): its reservations are visible while it
	// is live and vanish without trace on Abort.
	s := newSys()
	txn := s.Begin()
	txn.Compute(0, 5, 0, "")
	if s.Comp(0).Len() != 1 {
		t.Fatal("live txn reservation not visible in place")
	}
	seqBefore := s.Comp(0).Seq()
	txn.Abort()
	if s.Comp(0).Len() != 0 {
		t.Fatal("aborted reservation survived")
	}
	if s.Comp(0).Seq() == seqBefore {
		t.Fatal("abort did not restore the pre-txn sequence number")
	}
	txn2 := s.Begin()
	txn2.Compute(0, 5, 0, "")
	txn2.Commit()
	if s.Comp(0).Len() != 1 {
		t.Fatal("commit did not keep the reservation")
	}
}

func TestIntervalTagsCarried(t *testing.T) {
	s := newSys()
	txn := s.Begin()
	txn.Compute(0, 5, 0, "task-A")
	txn.Commit()
	ivs := s.Comp(0).Busy()
	if len(ivs) != 1 || ivs[0].Tag != "task-A" {
		t.Fatalf("tag lost: %+v", ivs)
	}
}

var sinkFloat float64

func BenchmarkTrialCommitCycle(b *testing.B) {
	r := rng.New(3)
	p := platform.RandomHeterogeneous(r, 20, 0.5, 1, 0.5, 1, 100)
	s := NewSystem(p)
	for i := 0; i < b.N; i++ {
		best := -1.0
		var bestU platform.ProcID
		for u := 0; u < 20; u++ {
			trial := s.Begin()
			_, fin := trial.Transfer(platform.ProcID((u+1)%20), platform.ProcID(u), 50, 0, "")
			_, fin2 := trial.Compute(platform.ProcID(u), 1, fin, "")
			trial.Abort()
			if best < 0 || fin2 < best {
				best, bestU = fin2, platform.ProcID(u)
			}
		}
		txn := s.Begin()
		_, fin := txn.Transfer(platform.ProcID((int(bestU)+1)%20), bestU, 50, 0, "")
		_, fin2 := txn.Compute(bestU, 1, fin, "")
		txn.Commit()
		sinkFloat = fin2
	}
	_ = timeline.Interval{}
}
