// Package oneport implements the bi-directional one-port communication model
// with full computation/communication overlap (§2 of the paper, after Bhat
// et al.): at any instant a processor may execute one task, send one message
// and receive one message — the three in parallel — but never two sends or
// two receives concurrently. With a fully interconnected platform the send
// and receive ports are therefore the only shared communication resources,
// so transfers reserve a common window on the sender's send-port timeline
// and the receiver's receive-port timeline.
//
// Schedulers explore candidate placements ("simulate the mapping of each
// task in the subset on all processors", Algorithm 4.1); the Txn type makes
// those trials cheap and side-effect free: a transaction lazily clones only
// the timelines it touches, serializes its own operations against each
// other, and either commits atomically or is dropped.
package oneport

import (
	"fmt"

	"streamsched/internal/platform"
	"streamsched/internal/timeline"
)

// System tracks per-processor compute, send-port and receive-port timelines
// over one schedule construction.
type System struct {
	plat   *platform.Platform
	comp   []*timeline.Timeline
	send   []*timeline.Timeline
	recv   []*timeline.Timeline
	pooled *Txn // reusable trial transaction, see Pooled
}

// NewSystem returns an empty System for the platform.
func NewSystem(p *platform.Platform) *System {
	m := p.NumProcs()
	s := &System{
		plat: p,
		comp: make([]*timeline.Timeline, m),
		send: make([]*timeline.Timeline, m),
		recv: make([]*timeline.Timeline, m),
	}
	for u := 0; u < m; u++ {
		s.comp[u] = &timeline.Timeline{}
		s.send[u] = &timeline.Timeline{}
		s.recv[u] = &timeline.Timeline{}
	}
	return s
}

// Platform returns the underlying platform.
func (s *System) Platform() *platform.Platform { return s.plat }

// Comp returns processor u's compute timeline (read-only use).
func (s *System) Comp(u platform.ProcID) *timeline.Timeline { return s.comp[u] }

// Send returns processor u's send-port timeline (read-only use).
func (s *System) Send(u platform.ProcID) *timeline.Timeline { return s.send[u] }

// Recv returns processor u's receive-port timeline (read-only use).
func (s *System) Recv(u platform.ProcID) *timeline.Timeline { return s.recv[u] }

// Horizon returns the latest busy time across all timelines.
func (s *System) Horizon() float64 {
	h := 0.0
	for u := range s.comp {
		for _, tl := range []*timeline.Timeline{s.comp[u], s.send[u], s.recv[u]} {
			if hz := tl.Horizon(); hz > h {
				h = hz
			}
		}
	}
	return h
}

// Txn is an uncommitted view of the system. Operations performed through a
// Txn see both committed state and the transaction's own reservations, but
// never affect the parent System until Commit. A Txn must not outlive
// intervening commits of other transactions on the same System.
type Txn struct {
	sys     *System
	comp    []*timeline.Timeline // nil until touched
	send    []*timeline.Timeline
	recv    []*timeline.Timeline
	cache   *txnCache // clone buffers for the pooled transaction, nil otherwise
	touched bool
	done    bool
}

// txnCache retains the timeline clones a pooled transaction made, so the
// next reuse refreshes them with CopyFrom instead of allocating. A buffer
// leaves the cache when Commit hands it to the System.
type txnCache struct {
	comp, send, recv []*timeline.Timeline
}

// Begin opens a one-shot transaction.
func (s *System) Begin() *Txn {
	m := s.plat.NumProcs()
	return &Txn{
		sys:  s,
		comp: make([]*timeline.Timeline, m),
		send: make([]*timeline.Timeline, m),
		recv: make([]*timeline.Timeline, m),
	}
}

// Pooled returns the system's reusable transaction, reset and ready. The
// schedulers trial every candidate placement through a transaction; the
// pooled one recycles both the overlay slices and the timeline clone
// buffers, making a discarded trial allocation-free in steady state. At most
// one pooled transaction may be live at a time (Commit or Discard it before
// the next Pooled call); use Begin for nested or concurrent trials.
func (s *System) Pooled() *Txn {
	if s.pooled == nil {
		t := s.Begin()
		m := s.plat.NumProcs()
		t.cache = &txnCache{
			comp: make([]*timeline.Timeline, m),
			send: make([]*timeline.Timeline, m),
			recv: make([]*timeline.Timeline, m),
		}
		s.pooled = t
		return t
	}
	t := s.pooled
	if !t.done {
		panic("oneport: Pooled called while the pooled transaction is live")
	}
	clear(t.comp)
	clear(t.send)
	clear(t.recv)
	t.touched = false
	t.done = false
	return t
}

// overlay returns the transaction's private copy of committed[u], cloning it
// on first touch (through the cache for pooled transactions).
func overlay(t *Txn, over, cache []*timeline.Timeline, committed *timeline.Timeline, u platform.ProcID) *timeline.Timeline {
	if over[u] == nil {
		if cache != nil && cache[u] != nil {
			cache[u].CopyFrom(committed)
			over[u] = cache[u]
		} else {
			over[u] = committed.Clone()
			if cache != nil {
				cache[u] = over[u]
			}
		}
	}
	return over[u]
}

func (t *Txn) compTL(u platform.ProcID) *timeline.Timeline {
	var cache []*timeline.Timeline
	if t.cache != nil {
		cache = t.cache.comp
	}
	return overlay(t, t.comp, cache, t.sys.comp[u], u)
}

func (t *Txn) sendTL(u platform.ProcID) *timeline.Timeline {
	var cache []*timeline.Timeline
	if t.cache != nil {
		cache = t.cache.send
	}
	return overlay(t, t.send, cache, t.sys.send[u], u)
}

func (t *Txn) recvTL(u platform.ProcID) *timeline.Timeline {
	var cache []*timeline.Timeline
	if t.cache != nil {
		cache = t.cache.recv
	}
	return overlay(t, t.recv, cache, t.sys.recv[u], u)
}

// Transfer reserves the earliest window for moving vol data units from
// processor `from` to processor `to`, no earlier than ready. It returns the
// window; zero-duration transfers (same processor or zero volume) return
// (ready, ready) and reserve nothing. The tag labels the reservation for
// Gantt rendering.
func (t *Txn) Transfer(from, to platform.ProcID, vol, ready float64, tag string) (start, finish float64) {
	if from == to || vol == 0 {
		t.checkOpen()
		return ready, ready
	}
	return t.TransferDur(from, to, t.sys.plat.CommTime(vol, from, to), ready, tag)
}

// TransferDur is Transfer with the transfer duration already priced — the
// schedulers compute each candidate's communication terms once for the
// condition-(1) feasibility test and reuse them here instead of paying a
// second CommTime per source. A zero dur reserves nothing.
func (t *Txn) TransferDur(from, to platform.ProcID, dur, ready float64, tag string) (start, finish float64) {
	t.checkOpen()
	if dur == 0 {
		return ready, ready
	}
	st := t.sendTL(from)
	rt := t.recvTL(to)
	start = timeline.EarliestCommonGap(ready, dur, st, rt)
	iv := timeline.Interval{Start: start, End: start + dur, Tag: tag}
	st.MustReserve(iv)
	rt.MustReserve(iv)
	t.touched = true
	return start, start + dur
}

// Compute reserves the earliest slot on processor u for a task of the given
// work, no earlier than ready, and returns the slot.
func (t *Txn) Compute(u platform.ProcID, work, ready float64, tag string) (start, finish float64) {
	t.checkOpen()
	dur := t.sys.plat.ExecTime(work, u)
	tl := t.compTL(u)
	start = tl.EarliestGap(ready, dur)
	tl.MustReserve(timeline.Interval{Start: start, End: start + dur, Tag: tag})
	t.touched = true
	return start, start + dur
}

// Commit applies the transaction's reservations to the parent System.
// The transaction cannot be used afterwards. Committed overlays leave the
// pooled transaction's cache — the System owns them now.
func (t *Txn) Commit() {
	t.checkOpen()
	for u := range t.comp {
		if t.comp[u] != nil {
			t.sys.comp[u] = t.comp[u]
			if t.cache != nil {
				t.cache.comp[u] = nil
			}
		}
		if t.send[u] != nil {
			t.sys.send[u] = t.send[u]
			if t.cache != nil {
				t.cache.send[u] = nil
			}
		}
		if t.recv[u] != nil {
			t.sys.recv[u] = t.recv[u]
			if t.cache != nil {
				t.cache.recv[u] = nil
			}
		}
	}
	t.done = true
}

// Discard drops the transaction. Safe to call on a committed transaction
// (no-op) so callers can defer it.
func (t *Txn) Discard() { t.done = true }

func (t *Txn) checkOpen() {
	if t.done {
		panic("oneport: use of finished transaction")
	}
}

// Snapshot captures a deep copy of every timeline, for coarse-grained
// rollback (R-LTF retries a task's whole replica set in fallback mode when a
// one-to-one chain attempt fails mid-way).
type Snapshot struct {
	comp, send, recv []*timeline.Timeline
}

// Snapshot returns a restorable copy of the current reservations.
func (s *System) Snapshot() *Snapshot {
	snap := &Snapshot{}
	s.SnapshotInto(snap)
	return snap
}

// SnapshotInto captures the current reservations into snap, reusing snap's
// timeline buffers from an earlier capture or an earlier RestoreSwap. The
// reverse-mode retry ladder snapshots every task; buffer reuse keeps that
// off the allocator.
func (s *System) SnapshotInto(snap *Snapshot) {
	m := len(s.comp)
	if snap.comp == nil {
		snap.comp = make([]*timeline.Timeline, m)
		snap.send = make([]*timeline.Timeline, m)
		snap.recv = make([]*timeline.Timeline, m)
	}
	for u := 0; u < m; u++ {
		snap.comp[u] = copyTL(snap.comp[u], s.comp[u])
		snap.send[u] = copyTL(snap.send[u], s.send[u])
		snap.recv[u] = copyTL(snap.recv[u], s.recv[u])
	}
}

func copyTL(dst, src *timeline.Timeline) *timeline.Timeline {
	if dst == nil {
		return src.Clone()
	}
	dst.CopyFrom(src)
	return dst
}

// Restore rewinds the system to a previously captured snapshot. The system
// takes ownership of the snapshot's timelines: a snapshot may be restored at
// most once.
func (s *System) Restore(snap *Snapshot) {
	copy(s.comp, snap.comp)
	copy(s.send, snap.send)
	copy(s.recv, snap.recv)
}

// RestoreSwap rewinds the system to the snapshot by exchanging timelines:
// the snapshot ends up holding the abandoned post-snapshot state, which a
// later SnapshotInto overwrites in place. Unlike Restore, the snapshot stays
// usable as a buffer — but its contents are no longer the captured state.
func (s *System) RestoreSwap(snap *Snapshot) {
	for u := range s.comp {
		s.comp[u], snap.comp[u] = snap.comp[u], s.comp[u]
		s.send[u], snap.send[u] = snap.send[u], s.send[u]
		s.recv[u], snap.recv[u] = snap.recv[u], s.recv[u]
	}
}

// Validate re-checks every timeline invariant; tests call it after schedule
// construction.
func (s *System) Validate() error {
	for u := range s.comp {
		for name, tl := range map[string]*timeline.Timeline{
			"comp": s.comp[u], "send": s.send[u], "recv": s.recv[u],
		} {
			if err := tl.Validate(); err != nil {
				return fmt.Errorf("oneport: proc %d %s: %w", u, name, err)
			}
		}
	}
	return nil
}
