// Package oneport implements the bi-directional one-port communication model
// with full computation/communication overlap (§2 of the paper, after Bhat
// et al.): at any instant a processor may execute one task, send one message
// and receive one message — the three in parallel — but never two sends or
// two receives concurrently. With a fully interconnected platform the send
// and receive ports are therefore the only shared communication resources,
// so transfers reserve a common window on the sender's send-port timeline
// and the receiver's receive-port timeline.
//
// State is transactional rather than copy-based: every timeline is
// journaled, a Mark captures the system at a point in time as a single
// integer, and Rollback(mark) rewinds in O(reservations undone). The Txn
// type wraps a mark for the schedulers' trial placements ("simulate the
// mapping of each task in the subset on all processors", Algorithm 4.1):
// a transaction reserves directly on the committed timelines — seeing both
// committed state and its own reservations — and either Commits (keeps
// them) or Aborts (pops them off the journal). Transactions and marks must
// unwind LIFO. The former design cloned every touched timeline per trial
// and deep-copied all 3m timelines per retry snapshot; the journal replaces
// both (DESIGN.md §7, "Transactional timelines").
//
// Because a system is single-goroutine during a construction, readers of
// Comp/Send/Recv observe a live transaction's tentative reservations until
// it resolves; query committed state only between transactions.
package oneport

import (
	"fmt"

	"streamsched/internal/platform"
	"streamsched/internal/timeline"
)

// opKind identifies which of a processor's three timelines a journaled
// reservation hit.
type opKind uint32

const (
	opComp opKind = iota
	opSend
	opRecv
)

// opRec packs (kind, processor) of one journaled reservation.
type opRec uint32

func op(k opKind, u platform.ProcID) opRec { return opRec(uint32(k)<<24 | uint32(u)) }

func (o opRec) kind() opKind          { return opKind(o >> 24) }
func (o opRec) proc() platform.ProcID { return platform.ProcID(o & 0xffffff) }

// Mark is a rollback point: the system journal position at Mark() time.
type Mark int

// gapEntry memoizes one CommonGap query against a (send, recv) port pair,
// validated by the ports' mutation sequence numbers.
type gapEntry struct {
	ready, dur, start float64
	sendSeq, recvSeq  uint64
	valid             bool
}

// System tracks per-processor compute, send-port and receive-port timelines
// over one schedule construction. It is not safe for concurrent use.
type System struct {
	plat *platform.Platform
	comp []*timeline.Timeline
	send []*timeline.Timeline
	recv []*timeline.Timeline

	// seq is the shared mutation counter all timelines draw their sequence
	// numbers from; ops is the system-wide journal recording which timeline
	// each reservation hit, in order, so Rollback knows where to undo.
	seq uint64
	ops []opRec
	// live counts open transactions. While a transaction is live the
	// committed timelines carry tentative reservations, so the gap cache
	// skips stores (lookups stay sound: entries are validated by sequence
	// numbers, and tentative mutations always move them).
	live int
	// genCtr numbers every transaction ever begun; openGen is the
	// generation of the innermost open one (0 = none). Together they catch
	// stale Txn copies and non-LIFO use — see Txn.checkOpen.
	genCtr, openGen uint64

	// gapCache memoizes CommonGap per (receiver, sender) port pair. Entries
	// are invalidated only by commits touching the pair's ports: an aborted
	// trial restores the sequence numbers it bumped, so the cache survives
	// the candidate sweeps between commits.
	gapCache []gapEntry
}

// NewSystem returns an empty System for the platform.
func NewSystem(p *platform.Platform) *System {
	m := p.NumProcs()
	s := &System{
		plat:     p,
		comp:     make([]*timeline.Timeline, m),
		send:     make([]*timeline.Timeline, m),
		recv:     make([]*timeline.Timeline, m),
		gapCache: make([]gapEntry, m*m),
	}
	for u := 0; u < m; u++ {
		s.comp[u] = &timeline.Timeline{}
		s.send[u] = &timeline.Timeline{}
		s.recv[u] = &timeline.Timeline{}
		s.comp[u].EnableJournal(&s.seq)
		s.send[u].EnableJournal(&s.seq)
		s.recv[u].EnableJournal(&s.seq)
	}
	return s
}

// Platform returns the underlying platform.
func (s *System) Platform() *platform.Platform { return s.plat }

// Comp returns processor u's compute timeline (read-only use).
func (s *System) Comp(u platform.ProcID) *timeline.Timeline { return s.comp[u] }

// Send returns processor u's send-port timeline (read-only use).
func (s *System) Send(u platform.ProcID) *timeline.Timeline { return s.send[u] }

// Recv returns processor u's receive-port timeline (read-only use).
func (s *System) Recv(u platform.ProcID) *timeline.Timeline { return s.recv[u] }

// Horizon returns the latest busy time across all timelines.
func (s *System) Horizon() float64 {
	h := 0.0
	for u := range s.comp {
		for _, tl := range []*timeline.Timeline{s.comp[u], s.send[u], s.recv[u]} {
			if hz := tl.Horizon(); hz > h {
				h = hz
			}
		}
	}
	return h
}

// Mark returns the current rollback point. The mark stays valid until a
// Rollback past it; marks must unwind LIFO.
func (s *System) Mark() Mark { return Mark(len(s.ops)) }

// Rollback undoes every reservation made since the mark — committed or not
// — most recent first, in O(reservations undone). The reverse-mode retry
// ladder rolls whole tasks back this way. Marks must unwind LIFO; a mark
// past the journal (already rolled back, or used out of order) panics
// rather than silently resurrecting undone journal entries.
//
//streamsched:hotpath
func (s *System) Rollback(m Mark) {
	if m < 0 || int(m) > len(s.ops) {
		panic("oneport: rollback to a mark past the journal (non-LIFO mark use)")
	}
	for i := len(s.ops) - 1; i >= int(m); i-- {
		rec := s.ops[i]
		u := rec.proc()
		switch rec.kind() {
		case opComp:
			s.comp[u].Undo()
		case opSend:
			s.send[u].Undo()
		default:
			s.recv[u].Undo()
		}
	}
	s.ops = s.ops[:m]
}

// CommonGap returns the earliest start s ≥ ready such that [s, s+dur) is
// simultaneously free on from's send port and to's receive port — the
// placement primitive for one-port transfers, and the quantity the head
// selection re-derives for every (pool candidate × processor) pair. Results
// are memoized per port pair and invalidated only when a commit touches the
// pair's ports.
func (s *System) CommonGap(from, to platform.ProcID, ready, dur float64) float64 {
	st, rt := s.send[from], s.recv[to]
	e := &s.gapCache[int(to)*len(s.send)+int(from)]
	if e.valid && e.sendSeq == st.Seq() && e.recvSeq == rt.Seq() &&
		e.ready == ready && e.dur == dur {
		return e.start
	}
	start := timeline.EarliestCommonGap(ready, dur, st, rt)
	if s.live == 0 {
		*e = gapEntry{ready: ready, dur: dur, start: start,
			sendSeq: st.Seq(), recvSeq: rt.Seq(), valid: true}
	}
	return start
}

// Txn is a transaction over the system: a rollback mark plus the operations
// performed since. Reservations land directly on the committed timelines,
// so a transaction sees committed state and its own reservations; Commit
// keeps them, Abort pops them off the journal in O(changes). Transactions
// must resolve LIFO and the system is single-goroutine, so at most one
// chain of nested transactions is live at a time — only the innermost open
// transaction may operate or resolve. A Txn must not be copied: each use is
// checked against the system's open-transaction generation, so a stale copy
// (whose original already resolved) panics instead of silently rolling back
// another transaction's work.
type Txn struct {
	sys      *System
	mark     Mark
	gen, par uint64 // this txn's generation and its parent's (0 = none)
	done     bool
}

// Begin opens a transaction at the current journal position.
func (s *System) Begin() Txn {
	s.live++
	s.genCtr++
	t := Txn{sys: s, mark: s.Mark(), gen: s.genCtr, par: s.openGen}
	s.openGen = t.gen
	return t
}

// Transfer reserves the earliest window for moving vol data units from
// processor `from` to processor `to`, no earlier than ready. It returns the
// window; zero-duration transfers (same processor or zero volume) return
// (ready, ready) and reserve nothing. The tag labels the reservation for
// Gantt rendering.
func (t *Txn) Transfer(from, to platform.ProcID, vol, ready float64, tag string) (start, finish float64) {
	if from == to || vol == 0 {
		t.checkOpen()
		return ready, ready
	}
	return t.TransferDur(from, to, t.sys.plat.CommTime(vol, from, to), ready, tag)
}

// TransferDur is Transfer with the transfer duration already priced — the
// schedulers compute each candidate's communication terms once for the
// condition-(1) feasibility test and reuse them here instead of paying a
// second CommTime per source. A zero dur reserves nothing.
func (t *Txn) TransferDur(from, to platform.ProcID, dur, ready float64, tag string) (start, finish float64) {
	t.checkOpen()
	if dur == 0 {
		return ready, ready
	}
	s := t.sys
	start = s.CommonGap(from, to, ready, dur)
	iv := timeline.Interval{Start: start, End: start + dur, Tag: tag}
	s.send[from].MustReserve(iv)
	s.ops = append(s.ops, op(opSend, from))
	s.recv[to].MustReserve(iv)
	s.ops = append(s.ops, op(opRecv, to))
	return start, start + dur
}

// Compute reserves the earliest slot on processor u for a task of the given
// work, no earlier than ready, and returns the slot.
func (t *Txn) Compute(u platform.ProcID, work, ready float64, tag string) (start, finish float64) {
	t.checkOpen()
	s := t.sys
	dur := s.plat.ExecTime(work, u)
	tl := s.comp[u]
	start = tl.EarliestGap(ready, dur)
	if dur != 0 {
		tl.MustReserve(timeline.Interval{Start: start, End: start + dur, Tag: tag})
		s.ops = append(s.ops, op(opComp, u))
	}
	return start, start + dur
}

// Commit keeps the transaction's reservations. The transaction cannot be
// used afterwards.
func (t *Txn) Commit() {
	t.checkOpen()
	t.done = true
	t.sys.live--
	t.sys.openGen = t.par
}

// Abort rolls the transaction's reservations back off the journal. Safe to
// call on a committed transaction (no-op) so callers can defer it.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.checkOpen()
	t.sys.Rollback(t.mark)
	t.done = true
	t.sys.live--
	t.sys.openGen = t.par
}

// checkOpen panics unless t is the innermost open transaction: finished
// transactions, stale copies of resolved ones, and out-of-LIFO use (an
// outer transaction operating while an inner one is live) are all bugs
// that would otherwise corrupt the shared journal silently.
func (t *Txn) checkOpen() {
	if t.done {
		panic("oneport: use of finished transaction")
	}
	if t.sys.openGen != t.gen {
		panic("oneport: transaction is not the innermost open one (stale copy or non-LIFO use)")
	}
}

// Validate re-checks every timeline invariant; tests call it after schedule
// construction.
func (s *System) Validate() error {
	names := [3]string{"comp", "send", "recv"}
	for u := range s.comp {
		for i, tl := range [3]*timeline.Timeline{s.comp[u], s.send[u], s.recv[u]} {
			if err := tl.Validate(); err != nil {
				return fmt.Errorf("oneport: proc %d %s: %w", u, names[i], err)
			}
		}
	}
	return nil
}
