// Package oneport implements the bi-directional one-port communication model
// with full computation/communication overlap (§2 of the paper, after Bhat
// et al.): at any instant a processor may execute one task, send one message
// and receive one message — the three in parallel — but never two sends or
// two receives concurrently. With a fully interconnected platform the send
// and receive ports are therefore the only shared communication resources,
// so transfers reserve a common window on the sender's send-port timeline
// and the receiver's receive-port timeline.
//
// Schedulers explore candidate placements ("simulate the mapping of each
// task in the subset on all processors", Algorithm 4.1); the Txn type makes
// those trials cheap and side-effect free: a transaction lazily clones only
// the timelines it touches, serializes its own operations against each
// other, and either commits atomically or is dropped.
package oneport

import (
	"fmt"

	"streamsched/internal/platform"
	"streamsched/internal/timeline"
)

// System tracks per-processor compute, send-port and receive-port timelines
// over one schedule construction.
type System struct {
	plat *platform.Platform
	comp []*timeline.Timeline
	send []*timeline.Timeline
	recv []*timeline.Timeline
}

// NewSystem returns an empty System for the platform.
func NewSystem(p *platform.Platform) *System {
	m := p.NumProcs()
	s := &System{
		plat: p,
		comp: make([]*timeline.Timeline, m),
		send: make([]*timeline.Timeline, m),
		recv: make([]*timeline.Timeline, m),
	}
	for u := 0; u < m; u++ {
		s.comp[u] = &timeline.Timeline{}
		s.send[u] = &timeline.Timeline{}
		s.recv[u] = &timeline.Timeline{}
	}
	return s
}

// Platform returns the underlying platform.
func (s *System) Platform() *platform.Platform { return s.plat }

// Comp returns processor u's compute timeline (read-only use).
func (s *System) Comp(u platform.ProcID) *timeline.Timeline { return s.comp[u] }

// Send returns processor u's send-port timeline (read-only use).
func (s *System) Send(u platform.ProcID) *timeline.Timeline { return s.send[u] }

// Recv returns processor u's receive-port timeline (read-only use).
func (s *System) Recv(u platform.ProcID) *timeline.Timeline { return s.recv[u] }

// Horizon returns the latest busy time across all timelines.
func (s *System) Horizon() float64 {
	h := 0.0
	for u := range s.comp {
		for _, tl := range []*timeline.Timeline{s.comp[u], s.send[u], s.recv[u]} {
			if hz := tl.Horizon(); hz > h {
				h = hz
			}
		}
	}
	return h
}

// Txn is an uncommitted view of the system. Operations performed through a
// Txn see both committed state and the transaction's own reservations, but
// never affect the parent System until Commit. A Txn must not outlive
// intervening commits of other transactions on the same System.
type Txn struct {
	sys     *System
	comp    []*timeline.Timeline // nil until touched
	send    []*timeline.Timeline
	recv    []*timeline.Timeline
	touched bool
	done    bool
}

// Begin opens a transaction.
func (s *System) Begin() *Txn {
	m := s.plat.NumProcs()
	return &Txn{
		sys:  s,
		comp: make([]*timeline.Timeline, m),
		send: make([]*timeline.Timeline, m),
		recv: make([]*timeline.Timeline, m),
	}
}

func (t *Txn) compTL(u platform.ProcID) *timeline.Timeline {
	if t.comp[u] == nil {
		t.comp[u] = t.sys.comp[u].Clone()
	}
	return t.comp[u]
}

func (t *Txn) sendTL(u platform.ProcID) *timeline.Timeline {
	if t.send[u] == nil {
		t.send[u] = t.sys.send[u].Clone()
	}
	return t.send[u]
}

func (t *Txn) recvTL(u platform.ProcID) *timeline.Timeline {
	if t.recv[u] == nil {
		t.recv[u] = t.sys.recv[u].Clone()
	}
	return t.recv[u]
}

// Transfer reserves the earliest window for moving vol data units from
// processor `from` to processor `to`, no earlier than ready. It returns the
// window; zero-duration transfers (same processor or zero volume) return
// (ready, ready) and reserve nothing. The tag labels the reservation for
// Gantt rendering.
func (t *Txn) Transfer(from, to platform.ProcID, vol, ready float64, tag string) (start, finish float64) {
	t.checkOpen()
	if from == to || vol == 0 {
		return ready, ready
	}
	dur := t.sys.plat.CommTime(vol, from, to)
	st := t.sendTL(from)
	rt := t.recvTL(to)
	start = timeline.EarliestCommonGap(ready, dur, st, rt)
	iv := timeline.Interval{Start: start, End: start + dur, Tag: tag}
	st.MustReserve(iv)
	rt.MustReserve(iv)
	t.touched = true
	return start, start + dur
}

// Compute reserves the earliest slot on processor u for a task of the given
// work, no earlier than ready, and returns the slot.
func (t *Txn) Compute(u platform.ProcID, work, ready float64, tag string) (start, finish float64) {
	t.checkOpen()
	dur := t.sys.plat.ExecTime(work, u)
	tl := t.compTL(u)
	start = tl.EarliestGap(ready, dur)
	tl.MustReserve(timeline.Interval{Start: start, End: start + dur, Tag: tag})
	t.touched = true
	return start, start + dur
}

// Commit applies the transaction's reservations to the parent System.
// The transaction cannot be used afterwards.
func (t *Txn) Commit() {
	t.checkOpen()
	for u := range t.comp {
		if t.comp[u] != nil {
			t.sys.comp[u] = t.comp[u]
		}
		if t.send[u] != nil {
			t.sys.send[u] = t.send[u]
		}
		if t.recv[u] != nil {
			t.sys.recv[u] = t.recv[u]
		}
	}
	t.done = true
}

// Discard drops the transaction. Safe to call on a committed transaction
// (no-op) so callers can defer it.
func (t *Txn) Discard() { t.done = true }

func (t *Txn) checkOpen() {
	if t.done {
		panic("oneport: use of finished transaction")
	}
}

// Snapshot captures a deep copy of every timeline, for coarse-grained
// rollback (R-LTF retries a task's whole replica set in fallback mode when a
// one-to-one chain attempt fails mid-way).
type Snapshot struct {
	comp, send, recv []*timeline.Timeline
}

// Snapshot returns a restorable copy of the current reservations.
func (s *System) Snapshot() *Snapshot {
	m := len(s.comp)
	snap := &Snapshot{
		comp: make([]*timeline.Timeline, m),
		send: make([]*timeline.Timeline, m),
		recv: make([]*timeline.Timeline, m),
	}
	for u := 0; u < m; u++ {
		snap.comp[u] = s.comp[u].Clone()
		snap.send[u] = s.send[u].Clone()
		snap.recv[u] = s.recv[u].Clone()
	}
	return snap
}

// Restore rewinds the system to a previously captured snapshot. The system
// takes ownership of the snapshot's timelines: a snapshot may be restored at
// most once.
func (s *System) Restore(snap *Snapshot) {
	copy(s.comp, snap.comp)
	copy(s.send, snap.send)
	copy(s.recv, snap.recv)
}

// Validate re-checks every timeline invariant; tests call it after schedule
// construction.
func (s *System) Validate() error {
	for u := range s.comp {
		for name, tl := range map[string]*timeline.Timeline{
			"comp": s.comp[u], "send": s.send[u], "recv": s.recv[u],
		} {
			if err := tl.Validate(); err != nil {
				return fmt.Errorf("oneport: proc %d %s: %w", u, name, err)
			}
		}
	}
	return nil
}
