package oneport

import (
	"testing"

	"streamsched/internal/platform"
	"streamsched/internal/rng"
)

func TestSnapshotRestore(t *testing.T) {
	s := NewSystem(platform.Homogeneous(3, 1, 1))
	txn := s.Begin()
	txn.Compute(0, 5, 0, "before")
	txn.Transfer(0, 1, 3, 5, "before")
	txn.Commit()
	snap := s.Snapshot()

	txn2 := s.Begin()
	txn2.Compute(0, 5, 0, "after")
	txn2.Transfer(1, 2, 4, 0, "after")
	txn2.Commit()
	if s.Comp(0).Len() != 2 || s.Send(1).Len() != 1 {
		t.Fatal("post-snapshot work missing")
	}

	s.Restore(snap)
	if s.Comp(0).Len() != 1 {
		t.Fatalf("comp not restored: %d intervals", s.Comp(0).Len())
	}
	if s.Send(1).Len() != 0 || s.Recv(2).Len() != 0 {
		t.Fatal("ports not restored")
	}
	if s.Send(0).Len() != 1 || s.Recv(1).Len() != 1 {
		t.Fatal("pre-snapshot reservations lost")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsolatedFromLaterMutations(t *testing.T) {
	s := NewSystem(platform.Homogeneous(2, 1, 1))
	snap := s.Snapshot()
	txn := s.Begin()
	txn.Compute(0, 5, 0, "")
	txn.Commit()
	s.Restore(snap)
	if s.Comp(0).Len() != 0 {
		t.Fatal("snapshot polluted by later commit")
	}
	// Work again after restore.
	txn = s.Begin()
	st, fin := txn.Compute(0, 5, 0, "")
	txn.Commit()
	if st != 0 || fin != 5 {
		t.Fatalf("post-restore placement [%v,%v)", st, fin)
	}
}

func TestSnapshotRandomizedRoundTrip(t *testing.T) {
	r := rng.New(5)
	s := NewSystem(platform.RandomHeterogeneous(r, 4, 0.5, 1, 0.5, 1, 10))
	for i := 0; i < 40; i++ {
		txn := s.Begin()
		txn.Compute(platform.ProcID(r.IntN(4)), r.Uniform(0.1, 2), r.Uniform(0, 20), "")
		txn.Commit()
	}
	busyBefore := s.Comp(1).TotalBusy()
	snap := s.Snapshot()
	for i := 0; i < 20; i++ {
		txn := s.Begin()
		txn.Transfer(platform.ProcID(r.IntN(4)), platform.ProcID(r.IntN(4)), r.Uniform(1, 5), 0, "")
		txn.Commit()
	}
	s.Restore(snap)
	if s.Comp(1).TotalBusy() != busyBefore {
		t.Fatal("restore changed pre-snapshot state")
	}
	for u := 0; u < 4; u++ {
		if s.Send(platform.ProcID(u)).Len() != 0 {
			t.Fatal("transfers survived restore")
		}
	}
}
