package oneport

import (
	"slices"
	"testing"

	"streamsched/internal/platform"
	"streamsched/internal/rng"
	"streamsched/internal/timeline"
)

func TestMarkRollback(t *testing.T) {
	s := NewSystem(platform.Homogeneous(3, 1, 1))
	txn := s.Begin()
	txn.Compute(0, 5, 0, "before")
	txn.Transfer(0, 1, 3, 5, "before")
	txn.Commit()
	mark := s.Mark()

	txn2 := s.Begin()
	txn2.Compute(0, 5, 0, "after")
	txn2.Transfer(1, 2, 4, 0, "after")
	txn2.Commit()
	if s.Comp(0).Len() != 2 || s.Send(1).Len() != 1 {
		t.Fatal("post-mark work missing")
	}

	s.Rollback(mark)
	if s.Comp(0).Len() != 1 {
		t.Fatalf("comp not rolled back: %d intervals", s.Comp(0).Len())
	}
	if s.Send(1).Len() != 0 || s.Recv(2).Len() != 0 {
		t.Fatal("ports not rolled back")
	}
	if s.Send(0).Len() != 1 || s.Recv(1).Len() != 1 {
		t.Fatal("pre-mark reservations lost")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMarkReusableAcrossRollbacks(t *testing.T) {
	s := NewSystem(platform.Homogeneous(2, 1, 1))
	mark := s.Mark()
	for i := 0; i < 3; i++ {
		txn := s.Begin()
		txn.Compute(0, 5, 0, "")
		txn.Commit()
		s.Rollback(mark)
		if s.Comp(0).Len() != 0 {
			t.Fatal("rollback left residue")
		}
	}
	// Work again after the rollbacks.
	txn := s.Begin()
	st, fin := txn.Compute(0, 5, 0, "")
	txn.Commit()
	if st != 0 || fin != 5 {
		t.Fatalf("post-rollback placement [%v,%v)", st, fin)
	}
}

// TestRollbackPastJournalPanics pins the mark guard: rolling back to a mark
// taken before an earlier rollback (non-LIFO use) must panic instead of
// silently resurrecting undone journal entries.
func TestRollbackPastJournalPanics(t *testing.T) {
	s := NewSystem(platform.Homogeneous(2, 1, 1))
	txn := s.Begin()
	txn.Compute(0, 5, 0, "")
	txn.Commit()
	stale := s.Mark() // position 1
	s.Rollback(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Rollback past the journal did not panic")
		}
	}()
	s.Rollback(stale)
}

// TestStaleTxnCopyPanics pins the copy guard: a Txn copy whose original
// already resolved must panic instead of silently rolling back work that
// later transactions committed.
func TestStaleTxnCopyPanics(t *testing.T) {
	s := NewSystem(platform.Homogeneous(2, 1, 1))
	txn := s.Begin()
	stale := txn
	txn.Abort()

	later := s.Begin()
	later.Compute(0, 5, 0, "kept")
	later.Commit()

	defer func() {
		if recover() == nil {
			t.Fatal("stale Txn copy resolved without panicking")
		}
		if s.Comp(0).Len() != 1 {
			t.Fatal("stale copy rolled back committed work")
		}
	}()
	stale.Abort()
}

// TestNonLIFOTxnUsePanics pins the nesting guard: an outer transaction
// operating while an inner one is live would interleave its reservations
// into the inner transaction's journal range.
func TestNonLIFOTxnUsePanics(t *testing.T) {
	s := NewSystem(platform.Homogeneous(2, 1, 1))
	outer := s.Begin()
	inner := s.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("outer Txn operated while inner was live without panicking")
		}
		inner.Abort()
		outer.Abort()
	}()
	outer.Compute(0, 5, 0, "")
}

// oracleSnap is the old deep-copy snapshot semantics, kept as the test
// oracle: an independent copy of every timeline's reservations.
type oracleSnap struct {
	comp, send, recv []*timeline.Timeline
}

func snapOracle(s *System) *oracleSnap {
	m := s.Platform().NumProcs()
	o := &oracleSnap{}
	for u := 0; u < m; u++ {
		pu := platform.ProcID(u)
		o.comp = append(o.comp, s.Comp(pu).Clone())
		o.send = append(o.send, s.Send(pu).Clone())
		o.recv = append(o.recv, s.Recv(pu).Clone())
	}
	return o
}

func requireEqualOracle(t *testing.T, s *System, o *oracleSnap, what string) {
	t.Helper()
	m := s.Platform().NumProcs()
	for u := 0; u < m; u++ {
		pu := platform.ProcID(u)
		for _, pair := range []struct {
			name string
			got  *timeline.Timeline
			want *timeline.Timeline
		}{
			{"comp", s.Comp(pu), o.comp[u]},
			{"send", s.Send(pu), o.send[u]},
			{"recv", s.Recv(pu), o.recv[u]},
		} {
			if !slices.Equal(pair.got.Busy(), pair.want.Busy()) {
				t.Fatalf("%s: proc %d %s diverged from deep-copy oracle:\n got %+v\nwant %+v",
					what, u, pair.name, pair.got.Busy(), pair.want.Busy())
			}
		}
	}
}

// randomOp performs one random reservation through txn.
func randomOp(r *rng.Source, txn *Txn, m int) {
	u := platform.ProcID(r.IntN(m))
	v := platform.ProcID(r.IntN(m))
	ready := r.Uniform(0, 40)
	if r.Bool(0.5) {
		txn.Compute(u, r.Uniform(0.1, 4), ready, "")
	} else {
		txn.Transfer(u, v, r.Uniform(0, 60), ready, "")
	}
}

// TestJournalMatchesDeepCopyOracle interleaves Reserve/Begin/Abort/Commit
// and system-level Mark/Rollback randomly and checks after every unwind
// that the journaled timelines are byte-identical to the deep-copy snapshot
// the old implementation would have restored.
func TestJournalMatchesDeepCopyOracle(t *testing.T) {
	const m = 5
	r := rng.New(5)
	s := NewSystem(platform.RandomHeterogeneous(r, m, 0.5, 1, 0.5, 1, 10))

	type frame struct {
		mark   Mark
		oracle *oracleSnap
	}
	var stack []frame
	for i := 0; i < 3000; i++ {
		switch r.IntN(6) {
		case 0: // open an outer rollback scope (the retry-ladder pattern)
			if len(stack) < 4 {
				stack = append(stack, frame{s.Mark(), snapOracle(s)})
			}
		case 1: // unwind the innermost scope
			if n := len(stack); n > 0 {
				f := stack[n-1]
				stack = stack[:n-1]
				s.Rollback(f.mark)
				requireEqualOracle(t, s, f.oracle, "Rollback")
			}
		case 2: // keep the innermost scope's work
			if n := len(stack); n > 0 {
				stack = stack[:n-1]
			}
		default: // a trial or commit transaction with a few reservations
			oracle := snapOracle(s)
			txn := s.Begin()
			for k := r.IntN(3); k >= 0; k-- {
				randomOp(r, &txn, m)
			}
			if r.Bool(0.4) {
				txn.Abort()
				requireEqualOracle(t, s, oracle, "Abort")
			} else {
				txn.Commit()
			}
		}
	}
	for n := len(stack); n > 0; n = len(stack) {
		f := stack[n-1]
		stack = stack[:n-1]
		s.Rollback(f.mark)
		requireEqualOracle(t, s, f.oracle, "final unwind")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCommonGapCacheConsistency checks the per-port-pair availability cache
// against the uncached walk under random committed mutations, aborted
// trials (which restore sequence numbers, keeping entries valid) and
// rollbacks.
func TestCommonGapCacheConsistency(t *testing.T) {
	const m = 4
	r := rng.New(23)
	s := NewSystem(platform.RandomHeterogeneous(r, m, 0.5, 1, 0.5, 1, 10))
	check := func() {
		t.Helper()
		for q := 0; q < 8; q++ {
			from := platform.ProcID(r.IntN(m))
			to := platform.ProcID(r.IntN(m))
			ready := r.Uniform(0, 30)
			dur := r.Uniform(0.1, 5)
			// Repeat each query so the second lookup exercises the cached
			// entry; compare against the walk on memo-free clones.
			for rep := 0; rep < 2; rep++ {
				got := s.CommonGap(from, to, ready, dur)
				want := timeline.EarliestCommonGap(ready, dur,
					s.Send(from).Clone(), s.Recv(to).Clone())
				if got != want {
					t.Fatalf("CommonGap(%d,%d,%v,%v) rep %d = %v, want %v",
						from, to, ready, dur, rep, got, want)
				}
			}
		}
	}
	mark := s.Mark()
	for i := 0; i < 400; i++ {
		txn := s.Begin()
		randomOp(r, &txn, m)
		if r.Bool(0.3) {
			txn.Abort()
		} else {
			txn.Commit()
		}
		check()
		if r.Bool(0.02) {
			s.Rollback(mark)
			check()
			mark = s.Mark()
		}
	}
}
