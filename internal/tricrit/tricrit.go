// Package tricrit implements the "symmetric" optimization problems the
// paper's conclusion proposes as extensions (§6):
//
//   - MaxThroughput — "maximizing the throughput for a given latency and
//     failure number";
//   - MaxFailures — "maximizing the number of supported failures for a
//     given latency and throughput";
//   - MinProcessors — the platform-cost flavour ("minimize the 'rental'
//     cost of the platform while enforcing the other criteria"), with unit
//     cost per processor;
//   - MinEnergy — the energy flavour ("minimize the dissipated power for a
//     prescribed performance") over a candidate set of schedules, using the
//     energy model of package schedule.
//
// All four are solved by search over the scheduling primitive: the
// underlying decision problem ("is there a schedule at period Δ with ε
// replicas within latency L?") is answered by running the scheduler and
// checking the latency bound. The stage count S is not monotone in Δ, so
// MaxThroughput scans a geometric grid before refining by bisection — a
// heuristic search around a heuristic scheduler, documented as such.
package tricrit

import (
	"fmt"
	"math"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// Scheduler abstracts the algorithm driven by the searches (LTF or R-LTF).
type Scheduler func(g *dag.Graph, p *platform.Platform, eps int, period float64) (*schedule.Schedule, error)

// feasibleAt runs the scheduler and checks the latency constraint.
func feasibleAt(g *dag.Graph, p *platform.Platform, eps int, period, maxLatency float64, sched Scheduler) *schedule.Schedule {
	s, err := sched(g, p, eps, period)
	if err != nil {
		return nil
	}
	if maxLatency > 0 && s.LatencyBound() > maxLatency+1e-9 {
		return nil
	}
	return s
}

// periodBounds returns the search window for the period: the heaviest
// replica on the fastest processor up to full serialization on the slowest
// resources.
func periodBounds(g *dag.Graph, p *platform.Platform, eps int) (lo, hi float64) {
	for _, t := range g.Tasks() {
		if et := t.Work / p.MaxSpeed(); et > lo {
			lo = et
		}
	}
	hi = float64(eps+1) * (g.TotalWork()/p.MinSpeed() + g.TotalVolume()/p.MinBandwidth())
	if math.IsInf(hi, 1) || hi <= lo {
		hi = math.Max(lo*float64(g.NumTasks()*(eps+1)), lo+1)
	}
	return lo, hi
}

// MaxThroughput finds the largest throughput T = 1/Δ for which a schedule
// tolerating eps failures exists with latency bound ≤ maxLatency
// (maxLatency ≤ 0 disables the latency constraint). It returns the period
// and the schedule.
func MaxThroughput(g *dag.Graph, p *platform.Platform, eps int, maxLatency float64, sched Scheduler) (float64, *schedule.Schedule, error) {
	lo, hi := periodBounds(g, p, eps)

	// Geometric scan from the relaxed end: S (and hence the latency
	// feasibility) is not monotone in Δ, so probe broadly first.
	var bestS *schedule.Schedule
	bestPeriod := math.Inf(1)
	const steps = 24
	ratio := math.Pow(lo/hi, 1.0/steps)
	for period := hi; period >= lo*0.999; period *= ratio {
		if s := feasibleAt(g, p, eps, period, maxLatency, sched); s != nil && period < bestPeriod {
			bestS, bestPeriod = s, period
		}
	}
	if bestS == nil {
		return 0, nil, fmt.Errorf("tricrit: no feasible schedule within latency %g", maxLatency)
	}
	// Refine just below the best grid point.
	loB, hiB := math.Max(lo, bestPeriod*ratio/1.0), bestPeriod
	for i := 0; i < 30 && hiB-loB > 1e-4*hiB; i++ {
		mid := (loB + hiB) / 2
		if s := feasibleAt(g, p, eps, mid, maxLatency, sched); s != nil {
			bestS, bestPeriod = s, mid
			hiB = mid
		} else {
			loB = mid
		}
	}
	return bestPeriod, bestS, nil
}

// MaxFailures finds the largest ε for which a schedule exists at the given
// period with latency bound ≤ maxLatency (maxLatency ≤ 0 disables the
// latency check). ε is bounded by m−1 (replicas need distinct processors).
func MaxFailures(g *dag.Graph, p *platform.Platform, period, maxLatency float64, sched Scheduler) (int, *schedule.Schedule, error) {
	bestEps := -1
	var bestS *schedule.Schedule
	for eps := 0; eps < p.NumProcs(); eps++ {
		s := feasibleAt(g, p, eps, period, maxLatency, sched)
		if s == nil {
			// Feasibility is monotone in ε in spirit but not guaranteed for
			// a greedy scheduler; tolerate one gap before giving up.
			if eps > bestEps+1 {
				break
			}
			continue
		}
		bestEps, bestS = eps, s
	}
	if bestEps < 0 {
		return 0, nil, fmt.Errorf("tricrit: no ε admits a schedule at period %g within latency %g (try raising the latency cap)", period, maxLatency)
	}
	return bestEps, bestS, nil
}

// MinProcessors finds the smallest prefix of the platform's processors on
// which a schedule tolerating eps failures exists at the given period
// (latency unconstrained): the paper's Fig. 2 question — "how many
// processors does the algorithm need?". Returns the processor count and the
// schedule.
func MinProcessors(g *dag.Graph, p *platform.Platform, eps int, period float64, sched Scheduler) (int, *schedule.Schedule, error) {
	speeds := p.Speeds()
	for m := eps + 1; m <= p.NumProcs(); m++ {
		sub := prefixPlatform(p, speeds, m)
		if s := feasibleAt(g, sub, eps, period, 0, sched); s != nil {
			return m, s, nil
		}
	}
	return 0, nil, fmt.Errorf("tricrit: infeasible even with all %d processors", p.NumProcs())
}

// prefixPlatform builds the sub-platform of the first m processors.
func prefixPlatform(p *platform.Platform, speeds []float64, m int) *platform.Platform {
	sp := make([]float64, m)
	copy(sp, speeds[:m])
	bw := make([][]float64, m)
	for i := 0; i < m; i++ {
		bw[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			if i != j {
				bw[i][j] = p.Bandwidth(platform.ProcID(i), platform.ProcID(j))
			}
		}
	}
	return platform.New(sp, bw)
}

// MinEnergy picks, among the provided schedules (e.g. LTF and R-LTF at the
// same period), the one with the lowest per-item energy under the model.
// Nil schedules are skipped; an error is returned when none remain.
func MinEnergy(model schedule.EnergyModel, candidates ...*schedule.Schedule) (*schedule.Schedule, float64, error) {
	var best *schedule.Schedule
	bestE := math.Inf(1)
	for _, s := range candidates {
		if s == nil {
			continue
		}
		if e := s.EnergyPerItem(model); e < bestE {
			best, bestE = s, e
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("tricrit: no candidate schedules")
	}
	return best, bestE, nil
}
