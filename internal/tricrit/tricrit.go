// Package tricrit implements the "symmetric" optimization problems the
// paper's conclusion proposes as extensions (§6):
//
//   - MaxThroughput — "maximizing the throughput for a given latency and
//     failure number";
//   - MaxFailures — "maximizing the number of supported failures for a
//     given latency and throughput";
//   - MinProcessors — the platform-cost flavour ("minimize the 'rental'
//     cost of the platform while enforcing the other criteria"), with unit
//     cost per processor;
//   - MinEnergy — the energy flavour ("minimize the dissipated power for a
//     prescribed performance") over a candidate set of schedules, using the
//     energy model of package schedule.
//
// All four are solved by search over the scheduling primitive: the
// underlying decision problem ("is there a schedule at period Δ with ε
// replicas within latency L?") is answered by a core.Solver probe with a
// latency cap. The stage count S is not monotone in Δ, so MaxThroughput
// scans a geometric grid before refining by bisection — a heuristic search
// around a heuristic scheduler, documented as such.
//
// The searches are built on core.SolveMany: the independent probes of a
// grid (MaxThroughput), of the ε ladder (MaxFailures) and of the platform
// prefixes (MinProcessors) run concurrently on a bounded worker pool, and
// selection over the batch results reproduces the serial search's answer
// exactly. Only probes whose error matches errors.Is(err, core.ErrInfeasible)
// count as "no schedule exists"; any other error — a cancelled context, a
// solver fault — aborts the search and is returned to the caller.
package tricrit

import (
	"context"
	"errors"
	"math"
	"runtime"

	"streamsched/internal/core"
	"streamsched/internal/dag"
	"streamsched/internal/infeas"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// waveSize is how many ladder probes MaxFailures/MinProcessors submit per
// concurrent wave: one batch fills the worker pool, and the wave boundary
// preserves the serial searches' early exit — probes past the answer are
// never enqueued, so a 64-processor ladder whose answer is ε=1 costs one
// wave, not 64 solves.
func waveSize() int { return runtime.GOMAXPROCS(0) }

// probe answers one decision instance: a non-nil schedule means "yes", a
// (nil, nil) return means "no schedule exists", and a non-nil error is a
// real fault (including ctx cancellation) that must abort the search.
func probe(ctx context.Context, g *dag.Graph, p *platform.Platform, eps int, period, maxLatency float64, algo core.Algorithm) (*schedule.Schedule, error) {
	solver, err := core.NewSolver(
		core.WithAlgorithm(algo),
		core.WithEps(eps),
		core.WithPeriod(period),
		core.WithLatencyCap(maxLatency),
	)
	if err != nil {
		return nil, err
	}
	s, err := solver.Solve(ctx, g, p)
	if err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			return nil, nil
		}
		return nil, err
	}
	return s, nil
}

// classify splits a batch result into (feasible schedule, fatal error):
// infeasibility yields (nil, nil).
func classify(r core.Result) (*schedule.Schedule, error) {
	if r.Err != nil {
		if errors.Is(r.Err, core.ErrInfeasible) {
			return nil, nil
		}
		return nil, r.Err
	}
	return r.Schedule, nil
}

// periodBounds returns the search window for the period: the heaviest
// replica on the fastest processor up to full serialization on the slowest
// resources.
func periodBounds(g *dag.Graph, p *platform.Platform, eps int) (lo, hi float64) {
	for _, t := range g.Tasks() {
		if et := t.Work / p.MaxSpeed(); et > lo {
			lo = et
		}
	}
	hi = float64(eps+1) * (g.TotalWork()/p.MinSpeed() + g.TotalVolume()/p.MinBandwidth())
	if math.IsInf(hi, 1) || hi <= lo {
		hi = math.Max(lo*float64(g.NumTasks()*(eps+1)), lo+1)
	}
	return lo, hi
}

// MaxThroughput finds the largest throughput T = 1/Δ for which a schedule
// tolerating eps failures exists with latency bound ≤ maxLatency
// (maxLatency ≤ 0 disables the latency constraint). It returns the period
// and the schedule.
func MaxThroughput(ctx context.Context, g *dag.Graph, p *platform.Platform, eps int, maxLatency float64, algo core.Algorithm) (float64, *schedule.Schedule, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	lo, hi := periodBounds(g, p, eps)

	// Geometric scan from the relaxed end: S (and hence the latency
	// feasibility) is not monotone in Δ, so probe broadly first. The grid
	// points are independent decision problems — one batch, solved
	// concurrently.
	const steps = 24
	ratio := math.Pow(lo/hi, 1.0/steps)
	var periods []float64
	for period := hi; period >= lo*0.999; period *= ratio {
		periods = append(periods, period)
	}
	reqs := make([]core.Request, len(periods))
	for i, period := range periods {
		reqs[i] = core.Request{Graph: g, Platform: p, Opts: []core.Option{core.WithPeriod(period)}}
	}
	results := core.SolveMany(ctx, reqs,
		core.WithAlgorithm(algo), core.WithEps(eps), core.WithLatencyCap(maxLatency))

	var bestS *schedule.Schedule
	bestPeriod := math.Inf(1)
	for i, r := range results {
		s, err := classify(r)
		if err != nil {
			return 0, nil, err
		}
		if s != nil && periods[i] < bestPeriod {
			bestS, bestPeriod = s, periods[i]
		}
	}
	if bestS == nil {
		return 0, nil, infeas.Newf(infeas.ReasonSearchExhausted, 0,
			"no feasible schedule within latency %g", maxLatency)
	}
	// Refine just below the best grid point.
	loB, hiB := math.Max(lo, bestPeriod*ratio/1.0), bestPeriod
	for i := 0; i < 30 && hiB-loB > 1e-4*hiB; i++ {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		mid := (loB + hiB) / 2
		s, err := probe(ctx, g, p, eps, mid, maxLatency, algo)
		if err != nil {
			return 0, nil, err
		}
		if s != nil {
			bestS, bestPeriod = s, mid
			hiB = mid
		} else {
			loB = mid
		}
	}
	return bestPeriod, bestS, nil
}

// MaxFailures finds the largest ε for which a schedule exists at the given
// period with latency bound ≤ maxLatency (maxLatency ≤ 0 disables the
// latency check). ε is bounded by m−1 (replicas need distinct processors).
// The ε ladder is probed in concurrent waves sized to the worker pool; the
// selection walks it bottom-up with the serial search's gap rule, so no
// probe past the answer's wave is ever submitted.
func MaxFailures(ctx context.Context, g *dag.Graph, p *platform.Platform, period, maxLatency float64, algo core.Algorithm) (int, *schedule.Schedule, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	bestEps := -1
	var bestS *schedule.Schedule
	opts := []core.Option{core.WithAlgorithm(algo), core.WithPeriod(period), core.WithLatencyCap(maxLatency)}
wave:
	for lo := 0; lo < p.NumProcs(); lo += waveSize() {
		hi := min(lo+waveSize(), p.NumProcs())
		reqs := make([]core.Request, 0, hi-lo)
		for eps := lo; eps < hi; eps++ {
			reqs = append(reqs, core.Request{Graph: g, Platform: p, Opts: []core.Option{core.WithEps(eps)}})
		}
		for i, r := range core.SolveMany(ctx, reqs, opts...) {
			eps := lo + i
			s, err := classify(r)
			if err != nil {
				return 0, nil, err
			}
			if s == nil {
				// Feasibility is monotone in ε in spirit but not guaranteed
				// for a greedy scheduler; tolerate one gap before giving up.
				if eps > bestEps+1 {
					break wave
				}
				continue
			}
			bestEps, bestS = eps, s
		}
	}
	if bestEps < 0 {
		return 0, nil, infeas.Newf(infeas.ReasonSearchExhausted, period,
			"no ε admits a schedule within latency %g (try raising the latency cap)", maxLatency)
	}
	return bestEps, bestS, nil
}

// MinProcessors finds the smallest prefix of the platform's processors on
// which a schedule tolerating eps failures exists at the given period
// (latency unconstrained): the paper's Fig. 2 question — "how many
// processors does the algorithm need?". The prefixes are probed in
// concurrent waves and the smallest feasible one wins. Returns the
// processor count and the schedule.
func MinProcessors(ctx context.Context, g *dag.Graph, p *platform.Platform, eps int, period float64, algo core.Algorithm) (int, *schedule.Schedule, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	speeds := p.Speeds()
	opts := []core.Option{core.WithAlgorithm(algo), core.WithEps(eps), core.WithPeriod(period)}
	for lo := eps + 1; lo <= p.NumProcs(); lo += waveSize() {
		hi := min(lo+waveSize()-1, p.NumProcs())
		reqs := make([]core.Request, 0, hi-lo+1)
		for m := lo; m <= hi; m++ {
			reqs = append(reqs, core.Request{Graph: g, Platform: prefixPlatform(p, speeds, m)})
		}
		for i, r := range core.SolveMany(ctx, reqs, opts...) {
			s, err := classify(r)
			if err != nil {
				return 0, nil, err
			}
			if s != nil {
				return lo + i, s, nil
			}
		}
	}
	return 0, nil, infeas.Newf(infeas.ReasonSearchExhausted, period,
		"infeasible even with all %d processors", p.NumProcs())
}

// prefixPlatform builds the sub-platform of the first m processors.
func prefixPlatform(p *platform.Platform, speeds []float64, m int) *platform.Platform {
	sp := make([]float64, m)
	copy(sp, speeds[:m])
	bw := make([][]float64, m)
	for i := 0; i < m; i++ {
		bw[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			if i != j {
				bw[i][j] = p.Bandwidth(platform.ProcID(i), platform.ProcID(j))
			}
		}
	}
	return platform.New(sp, bw)
}

// MinEnergy picks, among the provided schedules (e.g. LTF and R-LTF at the
// same period), the one with the lowest per-item energy under the model.
// Nil schedules are skipped; an error is returned when none remain.
func MinEnergy(model schedule.EnergyModel, candidates ...*schedule.Schedule) (*schedule.Schedule, float64, error) {
	var best *schedule.Schedule
	bestE := math.Inf(1)
	for _, s := range candidates {
		if s == nil {
			continue
		}
		if e := s.EnergyPerItem(model); e < bestE {
			best, bestE = s, e
		}
	}
	if best == nil {
		return nil, 0, infeas.New(infeas.ReasonSearchExhausted, 0, "no candidate schedules")
	}
	return best, bestE, nil
}
