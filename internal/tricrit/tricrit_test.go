package tricrit

import (
	"context"
	"errors"
	"math"
	"testing"

	"streamsched/internal/core"
	"streamsched/internal/dag"
	"streamsched/internal/platform"
	"streamsched/internal/randgraph"
	"streamsched/internal/rltf"
	"streamsched/internal/schedule"
)

func TestMaxThroughputUnconstrained(t *testing.T) {
	// 4 unit tasks on 2 processors, ε=0: best period ≈ 2.
	g := randgraph.Chain(4, 1, 0.001)
	p := platform.Homogeneous(2, 1, 1000)
	period, s, err := MaxThroughput(context.Background(), g, p, 0, 0, core.RLTF)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || period < 2-1e-3 || period > 2.2 {
		t.Fatalf("period = %v, want ≈2", period)
	}
}

func TestMaxThroughputLatencyConstraint(t *testing.T) {
	g := randgraph.Chain(4, 1, 0.001)
	p := platform.Homogeneous(4, 1, 1000)
	// Unconstrained: the chain can split into 4 stages at period ≈1.
	pu, su, err := MaxThroughput(context.Background(), g, p, 0, 0, core.RLTF)
	if err != nil {
		t.Fatal(err)
	}
	// Latency cap 9: a 4-stage, period-1 schedule has L = 7 ≤ 9; a tight
	// cap of 4.5 forbids it (7 > 4.5) and forces a coarser pipeline.
	pc, sc, err := MaxThroughput(context.Background(), g, p, 0, 4.5, core.RLTF)
	if err != nil {
		t.Fatal(err)
	}
	if sc.LatencyBound() > 4.5+1e-6 {
		t.Fatalf("latency constraint violated: %v", sc.LatencyBound())
	}
	if pc < pu-1e-9 {
		t.Fatalf("constrained throughput better than unconstrained: %v < %v", pc, pu)
	}
	if su.LatencyBound() <= 4.5 {
		t.Skip("unconstrained optimum already satisfies the cap; constraint not exercised")
	}
}

func TestMaxThroughputInfeasible(t *testing.T) {
	g := randgraph.Chain(3, 1, 1)
	p := platform.Homogeneous(4, 1, 1)
	// Latency cap below one task's execution time: impossible.
	if _, _, err := MaxThroughput(context.Background(), g, p, 0, 0.5, core.RLTF); err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestMaxFailures(t *testing.T) {
	g := randgraph.Chain(3, 1, 0.1)
	p := platform.Homogeneous(6, 1, 10)
	// Period 3: one full chain fits per processor; with 6 processors up to
	// 5 replicas could fit load-wise, bounded by ε ≤ m−1 = 5.
	eps, s, err := MaxFailures(context.Background(), g, p, 3.001, 0, core.LTF)
	if err != nil {
		t.Fatal(err)
	}
	if eps < 1 {
		t.Fatalf("ε = %d, want ≥ 1", eps)
	}
	if s.Eps != eps {
		t.Fatalf("schedule ε mismatch: %d vs %d", s.Eps, eps)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFailuresTightPeriod(t *testing.T) {
	g := randgraph.Chain(4, 1, 0.1)
	p := platform.Homogeneous(4, 1, 10)
	// Period 1.05: each processor fits one unit task; exactly one copy of
	// each task → ε = 0.
	eps, _, err := MaxFailures(context.Background(), g, p, 1.05, 0, core.LTF)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 0 {
		t.Fatalf("ε = %d, want 0 under the tight period", eps)
	}
}

func TestMaxFailuresInfeasible(t *testing.T) {
	g := randgraph.Chain(2, 1, 0.1)
	p := platform.Homogeneous(2, 1, 10)
	if _, _, err := MaxFailures(context.Background(), g, p, 0.5, 0, core.LTF); err == nil {
		t.Fatal("expected infeasibility below the exec-time floor")
	}
}

func TestMinProcessorsFig2(t *testing.T) {
	// The Figure 2 question, automated: how many processors does each
	// algorithm need for the worked example at Δ=20, ε=1?
	g := randgraph.Fig2Graph()
	p := randgraph.Fig2Platform(16)
	mL, sL, err := MinProcessors(context.Background(), g, p, 1, 20, core.LTF)
	if err != nil {
		t.Fatal(err)
	}
	mR, sR, err := MinProcessors(context.Background(), g, p, 1, 20, core.RLTF)
	if err != nil {
		t.Fatal(err)
	}
	if mL < 2 || mR < 2 {
		t.Fatalf("implausible processor counts: LTF %d, R-LTF %d", mL, mR)
	}
	if sL.Stages() <= 0 || sR.Stages() <= 0 {
		t.Fatal("bad schedules")
	}
	t.Logf("LTF needs m=%d (S=%d), R-LTF needs m=%d (S=%d)", mL, sL.Stages(), mR, sR.Stages())
}

func TestMinProcessorsLowerBound(t *testing.T) {
	g := randgraph.Chain(2, 1, 0.1)
	p := platform.Homogeneous(8, 1, 10)
	m, _, err := MinProcessors(context.Background(), g, p, 2, 100, core.LTF)
	if err != nil {
		t.Fatal(err)
	}
	if m < 3 {
		t.Fatalf("m = %d below ε+1 = 3", m)
	}
}

func TestMinProcessorsInfeasible(t *testing.T) {
	g := dag.New("heavy")
	g.AddTask("a", 100)
	p := platform.Homogeneous(4, 1, 1)
	if _, _, err := MinProcessors(context.Background(), g, p, 0, 10, core.LTF); err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestMinEnergyPrefersFewerResources(t *testing.T) {
	g := randgraph.Chain(4, 1, 1)
	p := platform.Homogeneous(8, 1, 1)
	ff, err := rltf.FaultFree(context.Background(), g, p, 100, rltf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rltf.Schedule(context.Background(), g, p, 1, 100, rltf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	best, e, err := MinEnergy(schedule.DefaultEnergyModel(), ff, rep, nil)
	if err != nil {
		t.Fatal(err)
	}
	if best != ff {
		t.Fatal("unreplicated schedule must use less energy")
	}
	if math.IsInf(e, 0) || e <= 0 {
		t.Fatalf("energy = %v", e)
	}
}

func TestMinEnergyEmpty(t *testing.T) {
	if _, _, err := MinEnergy(schedule.DefaultEnergyModel(), nil, nil); err == nil {
		t.Fatal("expected error for no candidates")
	}
}

func TestMaxThroughputMatchesValidation(t *testing.T) {
	g := randgraph.ForkJoin(3, 1, 1, 0.5)
	p := platform.Homogeneous(6, 1, 2)
	_, s, err := MaxThroughput(context.Background(), g, p, 1, 0, core.RLTF)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxThroughputCancelledContext(t *testing.T) {
	g := randgraph.Chain(4, 1, 0.001)
	p := platform.Homogeneous(4, 1, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := MaxThroughput(ctx, g, p, 0, 0, core.RLTF)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSearchErrorsWrapInfeasible(t *testing.T) {
	// Every "search exhausted" outcome must still satisfy
	// errors.Is(err, core.ErrInfeasible) so callers need one check only.
	g := dag.New("heavy")
	g.AddTask("a", 100)
	p := platform.Homogeneous(4, 1, 1)
	if _, _, err := MinProcessors(context.Background(), g, p, 0, 10, core.LTF); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("MinProcessors err = %v, want ErrInfeasible", err)
	}
	if _, _, err := MaxThroughput(context.Background(), g, p, 0, 0.5, core.RLTF); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("MaxThroughput err = %v, want ErrInfeasible", err)
	}
}

// failingAlgo is an Algorithm value the solver rejects — NewSolver returns
// a plain (non-infeasibility) error, which the searches must propagate
// instead of treating as "no schedule exists".
func TestSearchPropagatesSolverFaults(t *testing.T) {
	g := randgraph.Chain(3, 1, 0.1)
	p := platform.Homogeneous(4, 1, 10)
	bad := core.Algorithm(99)
	_, _, err := MaxThroughput(context.Background(), g, p, 0, 0, bad)
	if err == nil || errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("solver fault swallowed: %v", err)
	}
	_, _, err = MaxFailures(context.Background(), g, p, 3, 0, bad)
	if err == nil || errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("solver fault swallowed: %v", err)
	}
	_, _, err = MinProcessors(context.Background(), g, p, 0, 10, bad)
	if err == nil || errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("solver fault swallowed: %v", err)
	}
}
