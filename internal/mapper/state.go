// Package mapper holds the scheduling machinery shared by LTF and R-LTF:
// ready-list management with tℓ+bℓ priorities, the condition-(1) throughput
// feasibility test, the one-to-one mapping procedure (Algorithm 4.2) with
// its singleton/locked processor discipline, and the fallback placement that
// replicates communications in full (the Iso-Level CAFT rule).
//
// LTF drives this machinery over the forward graph; R-LTF drives it over the
// reversed graph with a stage-preserving placement preference and mirrors
// the result (see package rltf). The two algorithms differ only in their
// traversal direction and candidate-selection comparator, which is why the
// comparator is a parameter here.
//
// The placement loop is the hot path of every tri-criteria search (period
// grids, latency ladders, MinPeriod bisections probe it hundreds of times
// per instance), so the state is engineered to stay off the allocator in
// steady state: vulnerability and exclusion sets are word-packed bitsets in
// flat backing arrays (package bitset), the ready list is a binary heap, the
// candidate evaluation shares its priced communication terms between the
// feasibility test and the trial placement, and every per-candidate
// intermediate lives in a reusable scratch buffer on State. DESIGN.md
// §Performance documents the layout and the allocation budget.
package mapper

import (
	"fmt"
	"math"
	"strconv"

	"streamsched/internal/bitset"
	"streamsched/internal/dag"
	"streamsched/internal/infeas"
	"streamsched/internal/oneport"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// tol absorbs floating-point jitter in feasibility comparisons.
const tol = 1e-9

// InfeasibleError reports that the instance admits no schedule — the
// condition under which "the algorithm fails" (§4.1). It is the shared
// classified error of package infeas (Reason, Task, Copy, Proc, Period) and
// wraps infeas.ErrInfeasible, so callers match it with errors.Is.
type InfeasibleError = infeas.Error

// suppPair records that a replica's processor supports copy Copy of task
// Task (the flattened form of the old per-replica support map).
type suppPair struct {
	Task dag.TaskID
	Copy int16
}

// PhaseCounters tallies solver-internal placement activity for
// observability: the algorithm layers (ltf/rltf/repair) attach a final
// snapshot to their trace span (internal/obs, DESIGN.md §12). Plain
// non-atomic fields on purpose — a State is mutated by one goroutine by
// construction, and the hottest site (evalCandidate) affords a plain
// increment but not an atomic or a function call.
type PhaseCounters struct {
	// Trials counts candidate placements evaluated (evalCandidate).
	Trials int64
	// Placements counts replicas committed (CommitPlace).
	Placements int64
	// Rollbacks counts task transactions unwound (AbortTask), i.e. retry
	// ladder rungs abandoned with a journal rollback.
	Rollbacks int64
	// Fallbacks counts replicas committed via full communication
	// replication (Fallback).
	Fallbacks int64
}

// State carries one in-progress schedule construction.
type State struct {
	G      *dag.Graph
	P      *platform.Platform
	Eps    int
	Period float64
	Sys    *oneport.System
	Sched  *schedule.Schedule

	// Per-processor steady-state loads, maintained incrementally; these are
	// the Σ_u, C_u^I, C_u^O of condition (1).
	Sigma []float64
	CIn   []float64
	COut  []float64

	// ReverseMode marks a construction over the reversed graph (R-LTF).
	ReverseMode bool
	// OneToOneOff disables the one-to-one procedure entirely, forcing full
	// communication replication for every placement — the ablation baseline
	// for the §4.2 communication-count claim.
	OneToOneOff bool
	// VulnCap bounds the vulnerability-set size a chain replica may reach
	// (and, in reverse mode, the number of task-copies one replica may
	// support). Without the cap, long chains accumulate claims until the
	// sibling exclusions cover the whole machine and placement fails even
	// under generous periods; a fallback placement resets the set to the
	// replica's own processor. Defaults to max(2, m/(ε+1)) — an even
	// partition of the machine among the chains.
	VulnCap int
	// DebugTags labels one-port reservations with replica names for Gantt
	// inspection of the construction state. Off by default: the labels cost
	// one string allocation per committed transfer and the final schedule
	// carries its own naming.
	DebugTags bool
	// Phases accumulates placement-phase counters for observability; read
	// by the algorithm layer when closing its trace span.
	Phases PhaseCounters

	// claims holds the vulnerability set of every replica (t, c) at span
	// index refIdx(t,c): the processors whose failure can invalidate the
	// replica through its chain inputs. The reliability invariant keeps the
	// claims of one task's copies pairwise disjoint (see the discipline note
	// in place.go). A flat span, so task snapshots copy it wholesale.
	claims *bitset.Span
	// copyProcs set t records which processors already host a copy of t —
	// the hard exclusion (two copies of one task must never share a
	// processor).
	copyProcs *bitset.Span
	// stage holds the pipeline stage number of every placed replica at
	// refIdx(t,c), 0 while unplaced (stages start at 1). R-LTF's Rule 1
	// consults it mid-construction.
	stage []int
	// supp maps a placed replica (refIdx) to the (task, copy) assignments
	// its processor supports; only used in reverse mode, where vulnerability
	// flows from consumers to producers.
	supp [][]suppPair

	prio        []float64 // static tℓ+bℓ priorities (average weights)
	predLeft    []int
	scheduled   []bool
	unscheduled int          // tasks not yet marked scheduled; Done() is a counter test
	ready       []dag.TaskID // binary max-heap on (priority desc, task ID asc)
	// predVol[t] lists (predecessor, edge volume) pairs; predecessor counts
	// are small, so a linear scan beats a map in the hot path.
	predVol [][]predEdge

	// Scratch buffers — reused across candidate evaluations so the steady
	// state allocates nothing. Each is owned by exactly one phase of a
	// placement step; see the methods that fill them.
	srcBuf      []schedule.Ref    // evalCandidate/TrialFinish: ordered sources
	durBuf      []float64         // evalCandidate: priced comm durations, aligned with srcBuf
	outDelta    []float64         // evalCandidate: per-processor added send load
	outTouch    []platform.ProcID // evalCandidate: processors with non-zero outDelta
	sibV        bitset.Set        // siblingVuln result
	vScratch    bitset.Set        // OneToOne forward: prospective vulnerability
	candHeads   []schedule.Ref    // heads of the candidate under evaluation
	bestHeads   []schedule.Ref    // heads of the best candidate so far
	mergedCopy  []int16           // headsReverse: merged support, -1 = unset
	mergedTouch []dag.TaskID      // headsReverse: tasks set in mergedCopy
	bestSupp    []suppPair        // OneToOne reverse: merged support of the best candidate
	revCands    []revCand         // headsReverse: per-pool candidate ordering
	allSrc      []schedule.Ref    // AllSources result
	chunkBuf    []dag.TaskID      // PopChunk result
	commBuf     []schedule.Comm   // CommitPlace: staged incoming comms
	tagBuf      []byte            // commTag assembly

	// Task-transaction scratch (BeginTask/AbortTask). The retry ladder holds
	// at most one task transaction at a time, so one set of buffers serves
	// the whole construction; the one-port side needs no buffers at all —
	// the journal mark snapMark rewinds it in O(changes).
	snapLive      bool
	snapTask      dag.TaskID
	snapMark      oneport.Mark
	snapSigma     []float64
	snapCIn       []float64
	snapCOut      []float64
	snapClaims    bitset.Set
	snapCopyProcs bitset.Set

	// Chunk-transaction scratch (BeginChunk/AbortChunk), used by the
	// speculative lookahead to journal a whole k-task placement window.
	// Reverse mode nests the single-task retry ladder (BeginTask/AbortTask)
	// inside a chunk transaction, so the two keep disjoint buffers; the
	// copyProcs rows of every window task are packed consecutively.
	chunkLive      bool
	chunkTasks     []dag.TaskID
	chunkMark      oneport.Mark
	chunkSigma     []float64
	chunkCIn       []float64
	chunkCOut      []float64
	chunkClaims    bitset.Set
	chunkCopyProcs bitset.Set
}

// predEdge is one (predecessor, volume) entry of predVol.
type predEdge struct {
	From dag.TaskID
	Vol  float64
}

// revCand is one scored head candidate in reverse-mode selection.
type revCand struct {
	ref schedule.Ref
	fin float64
}

// New prepares a construction state. The algorithm name labels the resulting
// schedule.
func New(g *dag.Graph, p *platform.Platform, eps int, period float64, algorithm string) (*State, error) {
	if eps+1 > p.NumProcs() {
		return nil, infeas.Newf(infeas.ReasonNoProcessor, period,
			"ε+1 = %d replicas need at least that many processors, have %d", eps+1, p.NumProcs())
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	meanS := p.MeanSpeed()
	meanB := p.MeanBandwidth()
	nw := func(t dag.Task) float64 { return t.Work / meanS }
	ew := func(e dag.Edge) float64 {
		if math.IsInf(meanB, 1) {
			return 0
		}
		return e.Volume / meanB
	}
	v, m := g.NumTasks(), p.NumProcs()
	st := &State{
		G:           g,
		P:           p,
		Eps:         eps,
		Period:      period,
		Sys:         oneport.NewSystem(p),
		Sched:       schedule.New(g, p, eps, period, algorithm),
		Sigma:       make([]float64, m),
		CIn:         make([]float64, m),
		COut:        make([]float64, m),
		claims:      bitset.NewSpan(v*(eps+1), m),
		copyProcs:   bitset.NewSpan(v, m),
		stage:       make([]int, v*(eps+1)),
		supp:        make([][]suppPair, v*(eps+1)),
		prio:        g.Priorities(nw, ew),
		predLeft:    make([]int, v),
		scheduled:   make([]bool, v),
		unscheduled: v,
		predVol:     make([][]predEdge, v),
		outDelta:    make([]float64, m),
		sibV:        bitset.New(m),
		vScratch:    bitset.New(m),
	}
	for i := 0; i < v; i++ {
		st.predLeft[i] = g.InDegree(dag.TaskID(i))
		pv := make([]predEdge, 0, g.InDegree(dag.TaskID(i)))
		for _, e := range g.Pred(dag.TaskID(i)) {
			pv = append(pv, predEdge{From: e.From, Vol: e.Volume})
		}
		st.predVol[i] = pv
	}
	for _, t := range g.Entries() {
		st.readyPush(t)
	}
	st.VulnCap = m / (eps + 1)
	if st.VulnCap < 2 {
		st.VulnCap = 2
	}
	return st, nil
}

// refIdx flattens a replica reference into the claims/stage/supp index.
func (st *State) refIdx(t dag.TaskID, copy int) int { return int(t)*(st.Eps+1) + copy }

// claim returns the vulnerability set of copy c of task t.
func (st *State) claim(t dag.TaskID, c int) bitset.Set { return st.claims.At(st.refIdx(t, c)) }

// ClaimSet exposes a replica's vulnerability set for tests and audits. The
// returned set aliases construction state: do not modify it.
func (st *State) ClaimSet(t dag.TaskID, c int) bitset.Set { return st.claim(t, c) }

// ReplicaStage returns the pipeline stage of a placed replica (0 while
// unplaced; stages start at 1).
func (st *State) ReplicaStage(ref schedule.Ref) int { return st.stage[st.refIdx(ref.Task, ref.Copy)] }

// Priority returns the static tℓ+bℓ priority of task t.
func (st *State) Priority(t dag.TaskID) float64 { return st.prio[t] }

// Done reports whether every task has been scheduled. It is a counter test:
// the outer placement loop asks after every chunk, and an O(v) scan here
// made the loop quadratic in the task count.
func (st *State) Done() bool { return st.unscheduled == 0 }

// ReadyCount returns the current size of the ready list.
func (st *State) ReadyCount() int { return len(st.ready) }

// readyLess orders the ready heap: higher priority first, ties broken by
// smaller task ID for determinism.
func (st *State) readyLess(a, b dag.TaskID) bool {
	if st.prio[a] != st.prio[b] {
		return st.prio[a] > st.prio[b]
	}
	return a < b
}

// readyPush inserts t into the ready heap.
func (st *State) readyPush(t dag.TaskID) {
	st.ready = append(st.ready, t)
	i := len(st.ready) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !st.readyLess(st.ready[i], st.ready[parent]) {
			break
		}
		st.ready[i], st.ready[parent] = st.ready[parent], st.ready[i]
		i = parent
	}
}

// readyPop removes and returns the highest-priority ready task.
func (st *State) readyPop() dag.TaskID {
	top := st.ready[0]
	n := len(st.ready) - 1
	st.ready[0] = st.ready[n]
	st.ready = st.ready[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && st.readyLess(st.ready[l], st.ready[least]) {
			least = l
		}
		if r < n && st.readyLess(st.ready[r], st.ready[least]) {
			least = r
		}
		if least == i {
			return top
		}
		st.ready[i], st.ready[least] = st.ready[least], st.ready[i]
		i = least
	}
}

// PopChunk removes and returns up to max ready tasks, highest priority first
// (ties broken by smaller task ID for determinism). This is the β selection
// of Algorithm 4.1: working on a chunk rather than one task improves load
// balance (the Iso-Level idea). The ready list is a heap, so a chunk costs
// O(B log r) instead of the former full re-sort; the returned slice is a
// scratch buffer valid until the next PopChunk call.
func (st *State) PopChunk(max int) []dag.TaskID {
	n := max
	if n > len(st.ready) {
		n = len(st.ready)
	}
	st.chunkBuf = st.chunkBuf[:0]
	for i := 0; i < n; i++ {
		st.chunkBuf = append(st.chunkBuf, st.readyPop())
	}
	return st.chunkBuf
}

// MarkScheduled declares the chunk tasks fully placed and releases their
// ready successors.
func (st *State) MarkScheduled(tasks []dag.TaskID) {
	for _, t := range tasks {
		if st.scheduled[t] {
			panic(fmt.Sprintf("mapper: task %d scheduled twice", t))
		}
		st.scheduled[t] = true
	}
	st.unscheduled -= len(tasks)
	for _, t := range tasks {
		for _, e := range st.G.Succ(t) {
			st.predLeft[e.To]--
			if st.predLeft[e.To] == 0 {
				st.readyPush(e.To)
			}
		}
	}
}

// execTime returns the running time of t on u.
func (st *State) execTime(t dag.TaskID, u platform.ProcID) float64 {
	return st.P.ExecTime(st.G.Task(t).Work, u)
}

// volume returns the edge volume carried from predecessor task p to t.
func (st *State) volume(p, t dag.TaskID) float64 {
	for _, e := range st.predVol[t] {
		if e.From == p {
			return e.Vol
		}
	}
	panic(fmt.Sprintf("mapper: %d is not a predecessor of %d", p, t))
}

// Feasible evaluates condition (1) of §4.1 for placing a replica of t on u
// with the given communication sources: with the new load added,
// T·Σ_u ≤ 1, T·C_u^I ≤ 1 and T·C_h^O ≤ 1 for every sending processor h.
// The caller handles the locking part of the condition.
func (st *State) Feasible(t dag.TaskID, u platform.ProcID, sources []schedule.Ref) bool {
	_, ok, _ := st.evalCandidate(t, u, sources, false)
	return ok
}

// evalCandidate is the single-pass candidate evaluation at the core of the
// hot path. It orders the sources, prices each transfer once, folds the
// prices into the condition-(1) feasibility sums and the pipeline stage, and
// — when feasible and trial is set — simulates the placement on the pooled
// one-port transaction with the already-priced durations. The former code
// walked the sources three times per candidate processor (Feasible,
// TrialFinish, stageOf), re-pricing every communication and allocating a
// send-load map each walk. The violated clause of condition (1) comes back
// classified: the copy-disjointness exclusion maps to ReasonNoProcessor,
// the compute-load clause to ReasonPeriodExceeded, and the port-budget
// clauses to ReasonPortOverload.
//
//streamsched:hotpath
func (st *State) evalCandidate(t dag.TaskID, u platform.ProcID, sources []schedule.Ref, trial bool) (cand Candidate, ok bool, why infeas.Reason) {
	st.Phases.Trials++
	if st.copyProcs.At(int(t)).Contains(int(u)) {
		return cand, false, infeas.ReasonNoProcessor // hard: two copies of one task on one processor
	}
	if st.Sigma[u]+st.execTime(t, u) > st.Period+tol {
		return cand, false, infeas.ReasonPeriodExceeded
	}
	ordered := st.orderSources(sources)
	if cap(st.durBuf) < len(ordered) {
		st.durBuf = make([]float64, len(ordered))
	}
	st.durBuf = st.durBuf[:len(ordered)]
	addIn := 0.0
	stage := 1
	for i, src := range ordered {
		r := st.Sched.Replica(src)
		if r == nil {
			panicUnplacedSource(src)
		}
		eta := 1
		st.durBuf[i] = 0
		if r.Proc == u {
			eta = 0
		} else {
			d := st.P.CommTime(st.volume(src.Task, t), r.Proc, u)
			st.durBuf[i] = d
			addIn += d
			if st.outDelta[r.Proc] == 0 {
				st.outTouch = append(st.outTouch, r.Proc)
			}
			st.outDelta[r.Proc] += d
		}
		if v := st.stage[st.refIdx(src.Task, src.Copy)] + eta; v > stage {
			stage = v
		}
	}
	ok = true
	if st.CIn[u]+addIn > st.Period+tol {
		ok, why = false, infeas.ReasonPortOverload
	} else {
		for _, h := range st.outTouch {
			if st.COut[h]+st.outDelta[h] > st.Period+tol {
				ok, why = false, infeas.ReasonPortOverload
				break
			}
		}
	}
	for _, h := range st.outTouch {
		st.outDelta[h] = 0
	}
	st.outTouch = st.outTouch[:0]
	if !ok {
		return cand, false, why
	}
	cand = Candidate{Proc: u, Stage: stage, Sources: sources}
	if trial {
		txn := st.Sys.Begin()
		ready := 0.0
		for i, src := range ordered {
			r := st.Sched.Replica(src)
			if _, fin := txn.TransferDur(r.Proc, u, st.durBuf[i], r.Finish, ""); fin > ready {
				ready = fin
			}
		}
		_, fin := txn.Compute(u, st.G.Task(t).Work, ready, "")
		txn.Abort()
		cand.Finish = fin
	}
	return cand, true, infeas.ReasonUnknown
}

// panicUnplacedSource is evalCandidate's cold panic path: the message
// formatting must stay out of the hot function (PR5 allocation budget).
func panicUnplacedSource(src schedule.Ref) {
	panic(fmt.Sprintf("mapper: source %v not placed", src))
}

// stageOf computes the pipeline stage a replica of t would get on u with the
// given sources (η = 0 for co-located sources).
func (st *State) stageOf(u platform.ProcID, sources []schedule.Ref) int {
	stage := 1
	for _, src := range sources {
		r := st.Sched.Replica(src)
		eta := 1
		if r.Proc == u {
			eta = 0
		}
		if v := st.stage[st.refIdx(src.Task, src.Copy)] + eta; v > stage {
			stage = v
		}
	}
	return stage
}

// commTag renders "src→dst" for a reservation label (DebugTags only).
func (st *State) commTag(src, dst schedule.Ref) string {
	b := st.tagBuf[:0]
	b = appendRef(b, src)
	b = append(b, "→"...)
	b = appendRef(b, dst)
	st.tagBuf = b
	return string(b)
}

func appendRef(b []byte, r schedule.Ref) []byte {
	b = append(b, 't')
	b = strconv.AppendInt(b, int64(r.Task), 10)
	b = append(b, '(')
	b = strconv.AppendInt(b, int64(r.Copy+1), 10)
	b = append(b, ')')
	return b
}
