// Package mapper holds the scheduling machinery shared by LTF and R-LTF:
// ready-list management with tℓ+bℓ priorities, the condition-(1) throughput
// feasibility test, the one-to-one mapping procedure (Algorithm 4.2) with
// its singleton/locked processor discipline, and the fallback placement that
// replicates communications in full (the Iso-Level CAFT rule).
//
// LTF drives this machinery over the forward graph; R-LTF drives it over the
// reversed graph with a stage-preserving placement preference and mirrors
// the result (see package rltf). The two algorithms differ only in their
// traversal direction and candidate-selection comparator, which is why the
// comparator is a parameter here.
package mapper

import (
	"fmt"
	"math"
	"sort"

	"streamsched/internal/dag"
	"streamsched/internal/infeas"
	"streamsched/internal/oneport"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// tol absorbs floating-point jitter in feasibility comparisons.
const tol = 1e-9

// InfeasibleError reports that the instance admits no schedule — the
// condition under which "the algorithm fails" (§4.1). It is the shared
// classified error of package infeas (Reason, Task, Copy, Proc, Period) and
// wraps infeas.ErrInfeasible, so callers match it with errors.Is.
type InfeasibleError = infeas.Error

// State carries one in-progress schedule construction.
type State struct {
	G      *dag.Graph
	P      *platform.Platform
	Eps    int
	Period float64
	Sys    *oneport.System
	Sched  *schedule.Schedule

	// Per-processor steady-state loads, maintained incrementally; these are
	// the Σ_u, C_u^I, C_u^O of condition (1).
	Sigma []float64
	CIn   []float64
	COut  []float64

	// Stage holds the pipeline stage number of every placed replica,
	// maintained incrementally (R-LTF's Rule 1 consults it mid-construction).
	Stage map[schedule.Ref]int

	// Claim[t][c] is the vulnerability set of copy c of task t as known so
	// far: the processors whose failure can invalidate the replica through
	// its chain inputs. The reliability invariant keeps Claim[t][·] pairwise
	// disjoint (see the discipline note in place.go).
	Claim [][]procSet
	// Supp maps a placed replica to the (task → copy) assignments its
	// processor supports; only used in reverse mode, where vulnerability
	// flows from consumers to producers.
	Supp map[schedule.Ref]map[dag.TaskID]int
	// ReverseMode marks a construction over the reversed graph (R-LTF).
	ReverseMode bool
	// OneToOneOff disables the one-to-one procedure entirely, forcing full
	// communication replication for every placement — the ablation baseline
	// for the §4.2 communication-count claim.
	OneToOneOff bool
	// VulnCap bounds the vulnerability-set size a chain replica may reach
	// (and, in reverse mode, the number of task-copies one replica may
	// support). Without the cap, long chains accumulate claims until the
	// sibling exclusions cover the whole machine and placement fails even
	// under generous periods; a fallback placement resets the set to the
	// replica's own processor. Defaults to max(2, m/(ε+1)) — an even
	// partition of the machine among the chains.
	VulnCap int

	prio      []float64 // static tℓ+bℓ priorities (average weights)
	predLeft  []int
	scheduled []bool
	ready     []dag.TaskID
	// copyProcs[t] records which processors already host a copy of t — the
	// hard exclusion (two copies of one task must never share a processor).
	copyProcs []map[platform.ProcID]bool
	// predVol[t] maps each predecessor task of t to the edge volume.
	predVol []map[dag.TaskID]float64
}

// New prepares a construction state. The algorithm name labels the resulting
// schedule.
func New(g *dag.Graph, p *platform.Platform, eps int, period float64, algorithm string) (*State, error) {
	if eps+1 > p.NumProcs() {
		return nil, infeas.Newf(infeas.ReasonNoProcessor, period,
			"ε+1 = %d replicas need at least that many processors, have %d", eps+1, p.NumProcs())
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	meanS := p.MeanSpeed()
	meanB := p.MeanBandwidth()
	nw := func(t dag.Task) float64 { return t.Work / meanS }
	ew := func(e dag.Edge) float64 {
		if math.IsInf(meanB, 1) {
			return 0
		}
		return e.Volume / meanB
	}
	st := &State{
		G:         g,
		P:         p,
		Eps:       eps,
		Period:    period,
		Sys:       oneport.NewSystem(p),
		Sched:     schedule.New(g, p, eps, period, algorithm),
		Sigma:     make([]float64, p.NumProcs()),
		CIn:       make([]float64, p.NumProcs()),
		COut:      make([]float64, p.NumProcs()),
		Stage:     make(map[schedule.Ref]int),
		Claim:     make([][]procSet, g.NumTasks()),
		Supp:      make(map[schedule.Ref]map[dag.TaskID]int),
		prio:      g.Priorities(nw, ew),
		predLeft:  make([]int, g.NumTasks()),
		scheduled: make([]bool, g.NumTasks()),
		copyProcs: make([]map[platform.ProcID]bool, g.NumTasks()),
		predVol:   make([]map[dag.TaskID]float64, g.NumTasks()),
	}
	for i := 0; i < g.NumTasks(); i++ {
		st.predLeft[i] = g.InDegree(dag.TaskID(i))
		st.copyProcs[i] = make(map[platform.ProcID]bool, eps+1)
		st.Claim[i] = make([]procSet, eps+1)
		for c := range st.Claim[i] {
			st.Claim[i][c] = make(procSet)
		}
		pv := make(map[dag.TaskID]float64, g.InDegree(dag.TaskID(i)))
		for _, e := range g.Pred(dag.TaskID(i)) {
			pv[e.From] = e.Volume
		}
		st.predVol[i] = pv
	}
	st.ready = append(st.ready, g.Entries()...)
	st.VulnCap = p.NumProcs() / (eps + 1)
	if st.VulnCap < 2 {
		st.VulnCap = 2
	}
	return st, nil
}

// Priority returns the static tℓ+bℓ priority of task t.
func (st *State) Priority(t dag.TaskID) float64 { return st.prio[t] }

// Done reports whether every task has been scheduled.
func (st *State) Done() bool {
	for _, s := range st.scheduled {
		if !s {
			return false
		}
	}
	return true
}

// ReadyCount returns the current size of the ready list.
func (st *State) ReadyCount() int { return len(st.ready) }

// PopChunk removes and returns up to max ready tasks, highest priority first
// (ties broken by smaller task ID for determinism). This is the β selection
// of Algorithm 4.1: working on a chunk rather than one task improves load
// balance (the Iso-Level idea).
func (st *State) PopChunk(max int) []dag.TaskID {
	sort.Slice(st.ready, func(i, j int) bool {
		a, b := st.ready[i], st.ready[j]
		if st.prio[a] != st.prio[b] {
			return st.prio[a] > st.prio[b]
		}
		return a < b
	})
	n := max
	if n > len(st.ready) {
		n = len(st.ready)
	}
	chunk := append([]dag.TaskID(nil), st.ready[:n]...)
	st.ready = st.ready[n:]
	return chunk
}

// MarkScheduled declares the chunk tasks fully placed and releases their
// ready successors.
func (st *State) MarkScheduled(tasks []dag.TaskID) {
	for _, t := range tasks {
		if st.scheduled[t] {
			panic(fmt.Sprintf("mapper: task %d scheduled twice", t))
		}
		st.scheduled[t] = true
	}
	for _, t := range tasks {
		for _, e := range st.G.Succ(t) {
			st.predLeft[e.To]--
			if st.predLeft[e.To] == 0 {
				st.ready = append(st.ready, e.To)
			}
		}
	}
}

// execTime returns the running time of t on u.
func (st *State) execTime(t dag.TaskID, u platform.ProcID) float64 {
	return st.P.ExecTime(st.G.Task(t).Work, u)
}

// volume returns the edge volume carried from predecessor task p to t.
func (st *State) volume(p, t dag.TaskID) float64 {
	v, ok := st.predVol[t][p]
	if !ok {
		panic(fmt.Sprintf("mapper: %d is not a predecessor of %d", p, t))
	}
	return v
}

// Feasible evaluates condition (1) of §4.1 for placing a replica of t on u
// with the given communication sources: with the new load added,
// T·Σ_u ≤ 1, T·C_u^I ≤ 1 and T·C_h^O ≤ 1 for every sending processor h.
// The caller handles the locking part of the condition.
func (st *State) Feasible(t dag.TaskID, u platform.ProcID, sources []schedule.Ref) bool {
	ok, _ := st.feasibleWhy(t, u, sources)
	return ok
}

// feasibleWhy is Feasible with the violated clause of condition (1)
// classified: the copy-disjointness exclusion maps to ReasonNoProcessor,
// the compute-load clause to ReasonPeriodExceeded, and the port-budget
// clauses to ReasonPortOverload.
func (st *State) feasibleWhy(t dag.TaskID, u platform.ProcID, sources []schedule.Ref) (bool, infeas.Reason) {
	if st.copyProcs[t][u] {
		return false, infeas.ReasonNoProcessor // hard: two copies of one task on one processor
	}
	if st.Sigma[u]+st.execTime(t, u) > st.Period+tol {
		return false, infeas.ReasonPeriodExceeded
	}
	addIn := 0.0
	addOut := make(map[platform.ProcID]float64)
	for _, src := range sources {
		r := st.Sched.Replica(src)
		if r == nil {
			panic(fmt.Sprintf("mapper: source %v not placed", src))
		}
		if r.Proc == u {
			continue
		}
		d := st.P.CommTime(st.volume(src.Task, t), r.Proc, u)
		addIn += d
		addOut[r.Proc] += d
	}
	if st.CIn[u]+addIn > st.Period+tol {
		return false, infeas.ReasonPortOverload
	}
	for h, a := range addOut {
		if st.COut[h]+a > st.Period+tol {
			return false, infeas.ReasonPortOverload
		}
	}
	return true, infeas.ReasonUnknown
}

// stageOf computes the pipeline stage a replica of t would get on u with the
// given sources (η = 0 for co-located sources).
func (st *State) stageOf(u platform.ProcID, sources []schedule.Ref) int {
	stage := 1
	for _, src := range sources {
		r := st.Sched.Replica(src)
		eta := 1
		if r.Proc == u {
			eta = 0
		}
		if v := st.Stage[src] + eta; v > stage {
			stage = v
		}
	}
	return stage
}
