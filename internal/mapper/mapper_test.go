package mapper

import (
	"sort"
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
	"streamsched/internal/rng"
	"streamsched/internal/schedule"
)

func chainAB() *dag.Graph {
	g := dag.New("ab")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddEdge(a, b, 2)
	return g
}

func newState(t *testing.T, g *dag.Graph, m, eps int, period float64) *State {
	t.Helper()
	st, err := New(g, platform.Homogeneous(m, 1, 1), eps, period, "test")
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewRejectsTooFewProcs(t *testing.T) {
	if _, err := New(chainAB(), platform.Homogeneous(2, 1, 1), 2, 10, "x"); err == nil {
		t.Fatal("ε+1 > m accepted")
	}
}

func TestNewRejectsCyclicGraph(t *testing.T) {
	g := dag.New("cyc")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, a, 1)
	if _, err := New(g, platform.Homogeneous(2, 1, 1), 0, 10, "x"); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestReadyAndChunks(t *testing.T) {
	g := dag.New("three")
	a := g.AddTask("a", 3) // highest priority (heaviest path)
	b := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	g.MustAddEdge(a, c, 1)
	_ = b
	st := newState(t, g, 4, 0, 100)
	if st.ReadyCount() != 2 {
		t.Fatalf("ready = %d, want 2 entries", st.ReadyCount())
	}
	chunk := st.PopChunk(1)
	if len(chunk) != 1 || chunk[0] != a {
		t.Fatalf("chunk = %v, want highest-priority task a", chunk)
	}
	st.CommitPlace(a, 0, 0, nil)
	st.MarkScheduled(chunk)
	// c becomes ready after a.
	if st.ReadyCount() != 2 {
		t.Fatalf("ready after a = %d, want {b, c}", st.ReadyCount())
	}
	if st.Done() {
		t.Fatal("not done yet")
	}
}

func TestMarkScheduledTwicePanics(t *testing.T) {
	g := chainAB()
	st := newState(t, g, 2, 0, 100)
	chunk := st.PopChunk(1)
	st.CommitPlace(chunk[0], 0, 0, nil)
	st.MarkScheduled(chunk)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.MarkScheduled(chunk)
}

func TestFeasibleComputeBudget(t *testing.T) {
	g := chainAB()
	st := newState(t, g, 2, 0, 1.5) // period 1.5, unit tasks
	if !st.Feasible(0, 0, nil) {
		t.Fatal("empty processor must accept one unit task")
	}
	st.CommitPlace(0, 0, 0, nil)
	st.MarkScheduled([]dag.TaskID{0})
	// Second unit task would push Σ to 2 > 1.5.
	if st.Feasible(1, 0, []schedule.Ref{{Task: 0, Copy: 0}}) {
		t.Fatal("Σ budget exceeded but Feasible said yes")
	}
	if !st.Feasible(1, 1, []schedule.Ref{{Task: 0, Copy: 0}}) {
		// comm volume 2 / bw 1 = 2 > 1.5 → port budget also binds
		t.Log("cross placement rejected due to port budget (expected)")
	}
}

func TestFeasiblePortBudget(t *testing.T) {
	g := dag.New("wide")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddEdge(a, b, 3) // comm time 3 on unit links
	st, err := New(g, platform.Homogeneous(2, 1, 1), 0, 2.5, "x")
	if err != nil {
		t.Fatal(err)
	}
	st.CommitPlace(0, 0, 0, nil)
	st.MarkScheduled([]dag.TaskID{0})
	// Cross-processor comm time = 3 > 2.5: C^I budget violated even though
	// Σ_1 = 1 would fit.
	if st.Feasible(1, 1, []schedule.Ref{{Task: 0, Copy: 0}}) {
		t.Fatal("port budget exceeded but Feasible said yes")
	}
	// Co-located placement prices no comm; Σ_0 = 1+1 = 2 ≤ 2.5.
	if !st.Feasible(1, 0, []schedule.Ref{{Task: 0, Copy: 0}}) {
		t.Fatal("co-located placement should be feasible")
	}
}

func TestFeasibleRejectsSameProcCopies(t *testing.T) {
	g := dag.New("one")
	g.AddTask("a", 0.1)
	st := newState(t, g, 3, 1, 100)
	st.CommitPlace(0, 0, 1, nil)
	if st.Feasible(0, 1, nil) {
		t.Fatal("two copies on one processor accepted")
	}
	if !st.Feasible(0, 2, nil) {
		t.Fatal("distinct processor rejected")
	}
}

func TestCommitPlaceUpdatesLoads(t *testing.T) {
	g := chainAB()
	st := newState(t, g, 2, 0, 100)
	st.CommitPlace(0, 0, 0, nil)
	st.MarkScheduled([]dag.TaskID{0})
	st.CommitPlace(1, 0, 1, []schedule.Ref{{Task: 0, Copy: 0}})
	if st.Sigma[0] != 1 || st.Sigma[1] != 1 {
		t.Fatalf("Σ = %v", st.Sigma)
	}
	if st.CIn[1] != 2 || st.COut[0] != 2 {
		t.Fatalf("ports: in=%v out=%v", st.CIn, st.COut)
	}
	// Stage bookkeeping: b crossed a processor boundary.
	if st.ReplicaStage(schedule.Ref{Task: 1, Copy: 0}) != 2 {
		t.Fatalf("stage = %d", st.ReplicaStage(schedule.Ref{Task: 1, Copy: 0}))
	}
}

func TestTrialFinishMatchesCommit(t *testing.T) {
	g := chainAB()
	st := newState(t, g, 2, 0, 100)
	st.CommitPlace(0, 0, 0, nil)
	st.MarkScheduled([]dag.TaskID{0})
	want := st.TrialFinish(1, 1, []schedule.Ref{{Task: 0, Copy: 0}})
	rep := st.CommitPlace(1, 0, 1, []schedule.Ref{{Task: 0, Copy: 0}})
	if rep.Finish != want {
		t.Fatalf("trial %v vs commit %v", want, rep.Finish)
	}
}

func TestTrialFinishDoesNotMutate(t *testing.T) {
	g := chainAB()
	st := newState(t, g, 2, 0, 100)
	st.CommitPlace(0, 0, 0, nil)
	before := st.Sys.Comp(1).Len()
	_ = st.TrialFinish(1, 1, []schedule.Ref{{Task: 0, Copy: 0}})
	if st.Sys.Comp(1).Len() != before {
		t.Fatal("trial mutated committed timelines")
	}
	if st.Sched.Replica(schedule.Ref{Task: 1, Copy: 0}) != nil {
		t.Fatal("trial registered a replica")
	}
}

func TestPoolsAndTheta(t *testing.T) {
	g := dag.New("join")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	g.MustAddEdge(a, c, 1)
	g.MustAddEdge(b, c, 1)
	st := newState(t, g, 6, 1, 100)
	st.CommitPlace(a, 0, 0, nil)
	st.CommitPlace(a, 1, 1, nil)
	st.CommitPlace(b, 0, 2, nil)
	st.CommitPlace(b, 1, 3, nil)
	st.MarkScheduled([]dag.TaskID{a, b})
	pools := st.Pools(c)
	if len(pools) != 2 || len(pools[0]) != 2 || len(pools[1]) != 2 {
		t.Fatalf("pools = %v", pools)
	}
	if st.Theta(pools) != 2 {
		t.Fatalf("θ = %d", st.Theta(pools))
	}
	// Entry task: θ = ε+1.
	if st.Theta(nil) != 2 {
		t.Fatalf("entry θ = %d", st.Theta(nil))
	}
}

func TestOneToOneDisjointChains(t *testing.T) {
	g := chainAB()
	st := newState(t, g, 6, 1, 100)
	pools0 := st.Pools(dag.TaskID(0))
	if !st.OneToOne(0, 0, pools0, MinFinish) || !st.OneToOne(0, 1, pools0, MinFinish) {
		t.Fatal("entry one-to-one failed")
	}
	st.MarkScheduled([]dag.TaskID{0})
	pools := st.Pools(dag.TaskID(1))
	if !st.OneToOne(1, 0, pools, MinFinish) || !st.OneToOne(1, 1, pools, MinFinish) {
		t.Fatal("one-to-one failed for b")
	}
	// Claims of the two copies must be disjoint.
	if st.ClaimSet(1, 0).Intersects(st.ClaimSet(1, 1)) {
		t.Fatal("claims of the two copies overlap")
	}
	// Each b copy has exactly one input.
	for c := 0; c <= 1; c++ {
		rep := st.Sched.Replica(schedule.Ref{Task: 1, Copy: c})
		if len(rep.In) != 1 {
			t.Fatalf("copy %d has %d inputs", c, len(rep.In))
		}
	}
}

func TestFallbackFullReplication(t *testing.T) {
	g := chainAB()
	st := newState(t, g, 6, 1, 100)
	pools := st.Pools(dag.TaskID(0))
	st.OneToOne(0, 0, pools, MinFinish)
	st.OneToOne(0, 1, pools, MinFinish)
	st.MarkScheduled([]dag.TaskID{0})
	if err := st.Fallback(1, 0, MinFinish); err != nil {
		t.Fatal(err)
	}
	rep := st.Sched.Replica(schedule.Ref{Task: 1, Copy: 0})
	if len(rep.In) != 2 {
		t.Fatalf("fallback must receive from all copies, got %d", len(rep.In))
	}
}

func TestFallbackInfeasible(t *testing.T) {
	g := dag.New("heavy")
	g.AddTask("a", 10)
	st := newState(t, g, 2, 0, 5) // exec 10 > period 5 everywhere
	err := st.Fallback(0, 0, MinFinish)
	if err == nil {
		t.Fatal("expected infeasibility")
	}
	if _, ok := err.(*InfeasibleError); !ok {
		t.Fatalf("error type %T", err)
	}
	if err.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestTaskTransactionRollback(t *testing.T) {
	g := chainAB()
	st := newState(t, g, 4, 1, 100)
	st.ReverseMode = true
	pools := st.Pools(dag.TaskID(0))
	st.BeginTask(0)
	if !st.OneToOne(0, 0, pools, MinFinish) {
		t.Fatal("one-to-one failed")
	}
	if st.Sched.Replica(schedule.Ref{Task: 0, Copy: 0}) == nil {
		t.Fatal("replica missing after placement")
	}
	st.AbortTask()
	if st.Sched.Replica(schedule.Ref{Task: 0, Copy: 0}) != nil {
		t.Fatal("replica survived rollback")
	}
	if st.Sigma[0] != 0 || st.Sys.Comp(0).Len() != 0 {
		t.Fatal("loads/timelines survived rollback")
	}
	if !st.ClaimSet(0, 0).Empty() {
		t.Fatal("claims survived rollback")
	}
	// Placement works again after rollback.
	if !st.OneToOne(0, 0, st.Pools(dag.TaskID(0)), MinFinish) {
		t.Fatal("placement after rollback failed")
	}
}

func TestComparators(t *testing.T) {
	fast := Candidate{Proc: 0, Finish: 5, Stage: 3}
	slow := Candidate{Proc: 1, Finish: 9, Stage: 1}
	if !MinFinish(fast, slow) {
		t.Fatal("MinFinish must prefer the earlier finish")
	}
	sp := StagePreserving(2)
	if !sp(slow, fast) {
		t.Fatal("StagePreserving must prefer the stage ≤ bound")
	}
	// Both within bound → lower stage wins; equal stages → earlier finish.
	a := Candidate{Proc: 0, Finish: 9, Stage: 1}
	b := Candidate{Proc: 1, Finish: 5, Stage: 2}
	if !sp(a, b) {
		t.Fatal("lower stage must win inside the bound")
	}
	c := Candidate{Proc: 0, Finish: 5, Stage: 1}
	if !sp(c, a) {
		t.Fatal("earlier finish must break stage ties")
	}
}

func TestMaxPredStage(t *testing.T) {
	g := chainAB()
	st := newState(t, g, 4, 0, 100)
	st.CommitPlace(0, 0, 0, nil)
	st.MarkScheduled([]dag.TaskID{0})
	if got := st.MaxPredStage(1); got != 1 {
		t.Fatalf("MaxPredStage = %d", got)
	}
	if got := st.MaxPredStage(0); got != 0 {
		t.Fatalf("entry MaxPredStage = %d", got)
	}
}

func TestVulnCapDefault(t *testing.T) {
	g := chainAB()
	st, err := New(g, platform.Homogeneous(20, 1, 1), 3, 100, "x")
	if err != nil {
		t.Fatal(err)
	}
	if st.VulnCap != 5 {
		t.Fatalf("VulnCap = %d, want 20/4", st.VulnCap)
	}
	st2 := newState(t, g, 2, 1, 100)
	if st2.VulnCap != 2 {
		t.Fatalf("VulnCap floor = %d, want 2", st2.VulnCap)
	}
}

// Property: on random instances, interleaving one-to-one and fallback via
// the public entry points always preserves claim disjointness per task.
func TestClaimDisjointnessProperty(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.IntN(15)
		g := dag.New("rand")
		for i := 0; i < n; i++ {
			g.AddTask("t", r.Uniform(0.5, 1.5))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Bool(0.15) {
					g.MustAddEdge(dag.TaskID(i), dag.TaskID(j), r.Uniform(0.1, 1))
				}
			}
		}
		eps := 1 + r.IntN(2)
		st, err := New(g, platform.Homogeneous(8, 1, 1), eps, 50, "x")
		if err != nil {
			t.Fatal(err)
		}
		for !st.Done() {
			chunk := st.PopChunk(8)
			for _, task := range chunk {
				pools := st.Pools(task)
				for c := 0; c <= eps; c++ {
					if !st.OneToOne(task, c, pools, MinFinish) {
						if err := st.Fallback(task, c, MinFinish); err != nil {
							t.Skip("infeasible instance")
						}
					}
				}
			}
			st.MarkScheduled(chunk)
		}
		for task := 0; task < n; task++ {
			for c1 := 0; c1 <= eps; c1++ {
				for c2 := c1 + 1; c2 <= eps; c2++ {
					if st.ClaimSet(dag.TaskID(task), c1).Intersects(st.ClaimSet(dag.TaskID(task), c2)) {
						t.Fatalf("trial %d: task %d claims of copies %d/%d overlap", trial, task, c1, c2)
					}
				}
			}
		}
	}
}

func TestDoneCounterEmptyGraph(t *testing.T) {
	// Regression: Done used to scan every task; the counter must agree on
	// the degenerate ends. dag.Validate rejects truly empty graphs before
	// New, so the zero-task case is the zero-value state: nothing left to
	// schedule, Done from the start.
	if _, err := New(dag.New("empty"), platform.Homogeneous(2, 1, 1), 0, 10, "x"); err == nil {
		t.Fatal("empty graph accepted by New (update this test: Done must hold immediately)")
	}
	st := &State{}
	if !st.Done() {
		t.Fatal("zero tasks must report Done immediately")
	}
	if st.ReadyCount() != 0 {
		t.Fatalf("zero-task state has %d ready tasks", st.ReadyCount())
	}
}

func TestDoneCounterFullyScheduled(t *testing.T) {
	g := chainAB()
	st := newState(t, g, 2, 0, 100)
	if st.Done() {
		t.Fatal("fresh state reports Done")
	}
	for !st.Done() {
		chunk := st.PopChunk(1)
		for _, task := range chunk {
			st.CommitPlace(task, 0, 0, nil)
		}
		st.MarkScheduled(chunk)
	}
	if !st.Done() {
		t.Fatal("fully scheduled graph must report Done")
	}
	if st.ReadyCount() != 0 {
		t.Fatalf("done state has %d ready tasks", st.ReadyCount())
	}
}

func TestPopChunkHeapDeterministicTieBreak(t *testing.T) {
	// Equal-priority entry tasks must pop in ascending task-ID order no
	// matter the heap's internal layout — the tie-break the former full
	// re-sort guaranteed and golden schedules depend on.
	g := dag.New("ties")
	for i := 0; i < 12; i++ {
		g.AddTask("t", 1) // identical works → identical priorities
	}
	st := newState(t, g, 4, 0, 100)
	var got []dag.TaskID
	for st.ReadyCount() > 0 {
		got = append(got, append([]dag.TaskID(nil), st.PopChunk(5)...)...)
	}
	if len(got) != 12 {
		t.Fatalf("popped %d tasks, want 12", len(got))
	}
	for i, task := range got {
		if task != dag.TaskID(i) {
			t.Fatalf("pop order %v: position %d is task %d, want %d", got, i, task, i)
		}
	}
}

func TestPopChunkMatchesSortedOrder(t *testing.T) {
	// Property check of the heap against the specification ("highest
	// priority first, ties to smaller ID"): random priorities via random
	// works, chunks of varying size, compared to an explicit sort.
	r := rng.New(99)
	g := dag.New("rand")
	const n = 40
	for i := 0; i < n; i++ {
		g.AddTask("t", float64(1+r.IntN(5))) // few distinct works → many ties
	}
	st := newState(t, g, 4, 0, 1000)
	want := make([]dag.TaskID, n)
	for i := range want {
		want[i] = dag.TaskID(i)
	}
	sort.SliceStable(want, func(i, j int) bool {
		a, b := want[i], want[j]
		if st.Priority(a) != st.Priority(b) {
			return st.Priority(a) > st.Priority(b)
		}
		return a < b
	})
	var got []dag.TaskID
	sizes := []int{1, 7, 3, 40, 2}
	for i := 0; st.ReadyCount() > 0; i++ {
		got = append(got, append([]dag.TaskID(nil), st.PopChunk(sizes[i%len(sizes)])...)...)
	}
	if len(got) != n {
		t.Fatalf("popped %d tasks, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("position %d: got task %d, want %d", i, got[i], want[i])
		}
	}
}
