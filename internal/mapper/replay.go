package mapper

// Replay support for incremental repair (package repair). A committed
// schedule prescribes, for every replica, a processor and the exact
// communication sources it consumed. After a platform delta those
// prescriptions may or may not still be admissible: the processor can be
// gone, a changed speed can break the condition-(1) compute budget, a
// changed bandwidth can overflow a port. ReplayPlace re-validates one
// prescribed placement against the *current* construction state — the
// post-delta platform, a partially rebuilt schedule — and commits it only
// when every check passes, so a repair driver can keep the surviving
// placement verbatim and route just the evicted tasks through the normal
// search machinery.
//
// Replay always runs in forward mode: a committed schedule is forward-time
// regardless of the algorithm that produced it (R-LTF mirrors its reverse
// construction before returning), so the replayed claims follow the forward
// freezing rule of commitForward. A mirrored R-LTF structure that happens to
// violate the forward discipline check is not an error — ReplayPlace reports
// false and the caller demotes the task down its ladder (typically to a
// processor-preserving full-replication replay, then to a fresh search),
// which keeps the ε-fault-tolerance invariant unconditional.
//
// The VulnCap heuristic is deliberately not enforced during replay: the cap
// is a construction-quality knob (it steers the search away from overly wide
// chains), not a correctness constraint, and it depends on the machine size,
// which the delta just changed. Re-checking it here would evict placements
// that are perfectly sound under the discipline.

import (
	"streamsched/internal/dag"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// ReplayPlacement is one prescribed replica placement extracted from a
// committed schedule, with the processor already remapped to the post-delta
// platform.
type ReplayPlacement struct {
	// Proc is the prescribed processor in post-delta numbering.
	Proc platform.ProcID
	// Chain marks a one-to-one placement: Sources lists exactly one head
	// per predecessor, in predecessor order, and the replica's vulnerability
	// set is its processor plus the heads' sets. Otherwise the placement
	// uses full communication replication and Sources must cover every
	// placed copy of every predecessor (the replica's vulnerability then
	// reduces to its own processor).
	Chain bool
	// Sources are the replica references to consume; they survive deltas
	// unchanged (references name task copies, not processors).
	Sources []schedule.Ref
}

// ReplayPlace attempts to commit copy `copy` of t exactly as prescribed.
// It re-runs every admission check a search placement would face — the
// processor range, the sibling-vulnerability exclusion, the chain
// discipline, and condition (1) — and reports false without mutating
// anything when one fails. Callers are expected to run the ε+1 copies of a
// task inside one BeginTask/AbortTask transaction so a mid-task failure
// unwinds the already-replayed copies through the journal.
func (st *State) ReplayPlace(t dag.TaskID, copy int, pl ReplayPlacement) bool {
	u := pl.Proc
	if int(u) < 0 || int(u) >= st.P.NumProcs() {
		return false
	}
	for _, src := range pl.Sources {
		if st.Sched.Replica(src) == nil {
			return false // source evicted upstream; prescription is stale
		}
	}
	sibV := st.siblingVuln(t, copy)
	if sibV.Contains(int(u)) {
		return false
	}
	if pl.Chain {
		// The prospective vulnerability set {u} ∪ head claims must avoid the
		// sibling sets (the pairwise-disjointness invariant, place.go).
		v := st.vScratch
		v.Clear()
		v.Add(int(u))
		for _, h := range pl.Sources {
			v.Union(st.claim(h.Task, h.Copy))
		}
		if v.Intersects(sibV) {
			return false
		}
	}
	if _, ok, _ := st.evalCandidate(t, u, pl.Sources, false); !ok {
		return false
	}
	st.CommitPlace(t, copy, u, pl.Sources)
	if pl.Chain {
		st.commitForward(t, copy, u, pl.Sources)
	} else {
		st.claim(t, copy).Add(int(u))
	}
	return true
}
