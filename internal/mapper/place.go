package mapper

import (
	"sort"

	"streamsched/internal/dag"
	"streamsched/internal/infeas"
	"streamsched/internal/oneport"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
	"streamsched/internal/timeline"
)

// Reliability discipline
//
// The paper locks processors per scheduled task ("P is said locked either if
// it is already involved in a communication with a replica of t, or it
// processes itself one of these replicas"). That rule is necessary but not
// *transitively* sufficient: replication chains braid across tasks, and two
// failures can take out all three replicas of a join task whose incoming
// chains share an upstream processor (DESIGN.md records a concrete
// counterexample found by the exhaustive tolerance test). We therefore
// strengthen the discipline to an inductive invariant:
//
//	V(r) — the vulnerability set of replica r — is r's own processor plus
//	the vulnerability sets of the replicas it chain-receives from
//	(fallback inputs contribute nothing: they arrive from all ε+1 copies
//	of the predecessor, at least one of which survives by induction).
//	The invariant: for every task, the V-sets of its ε+1 replicas are
//	pairwise disjoint.
//
// Under the invariant, any failure set F with |F| ≤ ε invalidates at most
// |F| replicas of each task, so at least one replica of every task — in
// particular of every exit task — stays valid. Forward construction (LTF)
// freezes V(r) at placement time; reverse construction (R-LTF) grows the
// V-sets of already-placed downstream replicas as their chain ancestors
// appear, which is what the support maps below account for.

// procSet is a small set of processors.
type procSet map[platform.ProcID]bool

func (s procSet) add(u platform.ProcID) { s[u] = true }

func (s procSet) addAll(o procSet) {
	for u := range o {
		s[u] = true
	}
}

func (s procSet) intersects(o procSet) bool {
	a, b := s, o
	if len(a) > len(b) {
		a, b = b, a
	}
	for u := range a {
		if b[u] {
			return true
		}
	}
	return false
}

// Candidate describes one evaluated placement of a replica: the target
// processor, the finish time the placement would achieve, the pipeline stage
// the replica would take, and the communication sources it would consume.
type Candidate struct {
	Proc    platform.ProcID
	Finish  float64
	Stage   int
	Sources []schedule.Ref
}

// Better compares two candidates and reports whether a is preferable to b.
// It parameterizes the difference between LTF ("minimum finish time F") and
// R-LTF (Rule 1: do not increase the stage number).
type Better func(a, b Candidate) bool

// MinFinish is LTF's candidate comparator.
func MinFinish(a, b Candidate) bool {
	if a.Finish != b.Finish {
		return a.Finish < b.Finish
	}
	if a.Stage != b.Stage {
		return a.Stage < b.Stage
	}
	return a.Proc < b.Proc
}

// StagePreserving is R-LTF's comparator: candidates that keep the stage
// number at or below bound win over those that exceed it (Rule 1); within
// each class, lower stage wins, then earlier finish.
func StagePreserving(bound int) Better {
	return func(a, b Candidate) bool {
		ap, bp := a.Stage > bound, b.Stage > bound
		if ap != bp {
			return bp
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Finish != b.Finish {
			return a.Finish < b.Finish
		}
		return a.Proc < b.Proc
	}
}

// orderedSources returns the sources sorted by availability time (then ref,
// for determinism) — the order in which their transfers are scheduled.
func (st *State) orderedSources(sources []schedule.Ref) []schedule.Ref {
	out := append([]schedule.Ref(nil), sources...)
	sort.Slice(out, func(i, j int) bool {
		a, b := st.Sched.Replica(out[i]), st.Sched.Replica(out[j])
		if a.Finish != b.Finish {
			return a.Finish < b.Finish
		}
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Copy < out[j].Copy
	})
	return out
}

// TrialFinish simulates placing a replica of t on u with the given sources
// and returns the finish time, without mutating anything.
func (st *State) TrialFinish(t dag.TaskID, u platform.ProcID, sources []schedule.Ref) float64 {
	txn := st.Sys.Begin()
	defer txn.Discard()
	ready := 0.0
	for _, src := range st.orderedSources(sources) {
		r := st.Sched.Replica(src)
		_, fin := txn.Transfer(r.Proc, u, st.volume(src.Task, t), r.Finish, "")
		if fin > ready {
			ready = fin
		}
	}
	_, fin := txn.Compute(u, st.G.Task(t).Work, ready, "")
	return fin
}

// CommitPlace irrevocably places copy `copy` of t on u, consuming the given
// sources: transfers are reserved on the one-port timelines, the replica is
// registered in the schedule, and the steady-state loads and stage map are
// updated. It returns the placed replica. Reliability bookkeeping is the
// caller's job (commitChain/commitFallback).
func (st *State) CommitPlace(t dag.TaskID, copy int, u platform.ProcID, sources []schedule.Ref) *schedule.Replica {
	ref := schedule.Ref{Task: t, Copy: copy}
	txn := st.Sys.Begin()
	ready := 0.0
	in := make([]schedule.Comm, 0, len(sources))
	for _, src := range st.orderedSources(sources) {
		r := st.Sched.Replica(src)
		vol := st.volume(src.Task, t)
		cs, cf := txn.Transfer(r.Proc, u, vol, r.Finish, src.String()+"→"+ref.String())
		in = append(in, schedule.Comm{From: src, Volume: vol, Start: cs, Finish: cf})
		if cf > ready {
			ready = cf
		}
		if r.Proc != u {
			d := cf - cs
			st.CIn[u] += d
			st.COut[r.Proc] += d
		}
	}
	start, finish := txn.Compute(u, st.G.Task(t).Work, ready, ref.String())
	txn.Commit()
	st.Sigma[u] += finish - start
	rep := &schedule.Replica{Ref: ref, Proc: u, Start: start, Finish: finish, In: in}
	st.Sched.AddReplica(rep)
	st.Stage[ref] = st.stageOf(u, sources)
	st.copyProcs[t][u] = true
	return rep
}

// Pools returns, for every predecessor of t, the replicas that can serve as
// one-to-one communication heads.
//
// The paper restricts pools to replicas on *singleton* processors
// (processors hosting exactly one replica of ⋃_i B(t_i), §4's X set) — its
// mechanism for keeping replication chains processor-disjoint. Our
// vulnerability discipline enforces that disjointness exactly (claims and
// support maps), which subsumes the singleton rule; keeping the restriction
// would force unnecessary fallbacks after Rule-1 merging, because
// co-located consumer replicas are never singleton. We therefore admit
// every placed replica and let the claims filter the unsafe combinations
// (documented deviation, DESIGN.md §3).
func (st *State) Pools(t dag.TaskID) [][]schedule.Ref {
	preds := st.G.Pred(t)
	pools := make([][]schedule.Ref, len(preds))
	for i, pe := range preds {
		for _, ref := range schedule.ReplicaRefs(pe.From, st.Eps) {
			if st.Sched.Replica(ref) != nil {
				pools[i] = append(pools[i], ref)
			}
		}
	}
	return pools
}

// Theta returns θ = min_i λ_i, the number of replicas of t that the
// one-to-one procedure can place (ε+1 for entry tasks, which need no
// incoming communications).
func (st *State) Theta(pools [][]schedule.Ref) int {
	if len(pools) == 0 {
		return st.Eps + 1
	}
	min := len(pools[0])
	for _, p := range pools[1:] {
		if len(p) < min {
			min = len(p)
		}
	}
	if min > st.Eps+1 {
		min = st.Eps + 1
	}
	return min
}

// singleCommFinish returns the earliest finish of a single transfer from
// src's processor to u, against the committed port state (read-only).
func (st *State) singleCommFinish(src schedule.Ref, t dag.TaskID, u platform.ProcID) float64 {
	r := st.Sched.Replica(src)
	if r.Proc == u {
		return r.Finish
	}
	dur := st.P.CommTime(st.volume(src.Task, t), r.Proc, u)
	start := timeline.EarliestCommonGap(r.Finish, dur, st.Sys.Send(r.Proc), st.Sys.Recv(u))
	return start + dur
}

// siblingVuln returns the union of the vulnerability sets of the other
// copies of t — the processors a new placement of copy `copy` must avoid.
func (st *State) siblingVuln(t dag.TaskID, copy int) procSet {
	out := make(procSet)
	for m := 0; m <= st.Eps; m++ {
		if m != copy {
			out.addAll(st.Claim[t][m])
		}
	}
	return out
}

// headsForward selects, for each pool, the admissible head with the earliest
// single-communication finish onto u. A head is admissible when its (frozen)
// vulnerability set avoids the sibling vulnerabilities. Returns nil if some
// pool has no admissible head.
func (st *State) headsForward(t dag.TaskID, u platform.ProcID, pools [][]schedule.Ref, sibV procSet) []schedule.Ref {
	heads := make([]schedule.Ref, len(pools))
	for i, pool := range pools {
		found := false
		bestFin := 0.0
		for _, ref := range pool {
			if st.Claim[ref.Task][ref.Copy].intersects(sibV) {
				continue
			}
			fin := st.singleCommFinish(ref, t, u)
			if !found || fin < bestFin {
				bestFin = fin
				heads[i] = ref
				found = true
			}
		}
		if !found {
			return nil
		}
	}
	return heads
}

// headsReverse selects heads for reverse-mode construction: consumer
// replicas whose support maps merge without assigning two different copies
// of any task, and whose merged claims admit u. It returns the heads and the
// merged support map, or nil if no consistent choice exists.
func (st *State) headsReverse(t dag.TaskID, copy int, u platform.ProcID, pools [][]schedule.Ref) ([]schedule.Ref, map[dag.TaskID]int) {
	merged := map[dag.TaskID]int{t: copy}
	heads := make([]schedule.Ref, len(pools))
	for i, pool := range pools {
		// Sort candidates by communication finish, then take the first
		// consistent one.
		type cand struct {
			ref schedule.Ref
			fin float64
		}
		cands := make([]cand, 0, len(pool))
		for _, ref := range pool {
			cands = append(cands, cand{ref, st.singleCommFinish(ref, t, u)})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].fin != cands[b].fin {
				return cands[a].fin < cands[b].fin
			}
			if cands[a].ref.Task != cands[b].ref.Task {
				return cands[a].ref.Task < cands[b].ref.Task
			}
			return cands[a].ref.Copy < cands[b].ref.Copy
		})
		chosen := false
		for _, c := range cands {
			if st.consistentSupport(merged, c.ref, u) {
				for task, cp := range st.Supp[c.ref] {
					merged[task] = cp
				}
				heads[i] = c.ref
				chosen = true
				break
			}
		}
		if !chosen {
			return nil, nil
		}
	}
	// Final claim check for u over the merged support.
	for task, cp := range merged {
		for m := 0; m <= st.Eps; m++ {
			if m != cp && st.Claim[task][m][u] {
				return nil, nil
			}
		}
	}
	return heads, merged
}

// consistentSupport reports whether head's support map can merge into merged
// without conflicts and without claiming u for two different copies.
func (st *State) consistentSupport(merged map[dag.TaskID]int, head schedule.Ref, u platform.ProcID) bool {
	supp := st.Supp[head]
	for task, cp := range supp {
		if prev, ok := merged[task]; ok && prev != cp {
			return false
		}
	}
	return true
}

// OneToOne runs one step of the one-to-one mapping procedure (Algorithm 4.2)
// for copy `copy` of t: predecessor pools are consulted for the best head
// per candidate processor, condition (1) and the vulnerability discipline
// are enforced, and the candidate preferred by `better` is committed.
// Chosen heads are consumed from the pools. It returns false when no
// admissible candidate exists; the caller then falls back.
func (st *State) OneToOne(t dag.TaskID, copy int, pools [][]schedule.Ref, better Better) bool {
	for _, pool := range pools {
		if len(pool) == 0 {
			return false
		}
	}
	sibV := st.siblingVuln(t, copy)

	var best Candidate
	var bestSupp map[dag.TaskID]int
	found := false
	for u := 0; u < st.P.NumProcs(); u++ {
		pu := platform.ProcID(u)
		if sibV[pu] {
			continue
		}
		var heads []schedule.Ref
		var supp map[dag.TaskID]int
		if st.ReverseMode {
			heads, supp = st.headsReverse(t, copy, pu, pools)
			if supp == nil {
				continue
			}
			// The widest claim this commit would produce is the reverse
			// analogue of the forward vulnerability size.
			wide := 0
			for task, cp := range supp {
				n := len(st.Claim[task][cp])
				if !st.Claim[task][cp][pu] {
					n++
				}
				if n > wide {
					wide = n
				}
			}
			if wide > st.VulnCap {
				continue // vulnerability too wide; force a fallback reset
			}
		} else {
			heads = st.headsForward(t, pu, pools, sibV)
			if heads == nil {
				continue
			}
			v := make(procSet)
			v.add(pu)
			for _, h := range heads {
				v.addAll(st.Claim[h.Task][h.Copy])
			}
			if len(v) > st.VulnCap {
				continue // vulnerability too wide; force a fallback reset
			}
		}
		if !st.Feasible(t, pu, heads) {
			continue
		}
		cand := Candidate{
			Proc:    pu,
			Finish:  st.TrialFinish(t, pu, heads),
			Stage:   st.stageOf(pu, heads),
			Sources: heads,
		}
		if !found || better(cand, best) {
			best = cand
			bestSupp = supp
			found = true
		}
	}
	if !found {
		return false
	}
	st.CommitPlace(t, copy, best.Proc, best.Sources)
	if st.ReverseMode {
		st.commitReverse(t, copy, best.Proc, bestSupp)
	} else {
		st.commitForward(t, copy, best.Proc, best.Sources)
	}
	for i, head := range best.Sources {
		for k, ref := range pools[i] {
			if ref == head {
				pools[i] = append(pools[i][:k], pools[i][k+1:]...)
				break
			}
		}
	}
	return true
}

// commitForward freezes the vulnerability set of a forward chain replica:
// its processor plus the vulnerabilities of its heads.
func (st *State) commitForward(t dag.TaskID, copy int, u platform.ProcID, heads []schedule.Ref) {
	v := st.Claim[t][copy]
	v.add(u)
	for _, h := range heads {
		v.addAll(st.Claim[h.Task][h.Copy])
	}
}

// commitReverse records the new replica's support and adds its processor to
// the claims of every (task, copy) it transitively supports.
func (st *State) commitReverse(t dag.TaskID, copy int, u platform.ProcID, supp map[dag.TaskID]int) {
	if supp == nil {
		supp = map[dag.TaskID]int{t: copy}
	}
	st.Supp[schedule.Ref{Task: t, Copy: copy}] = supp
	for task, cp := range supp {
		st.Claim[task][cp].add(u)
	}
}

// AllSources returns every placed replica of every predecessor of t — the
// fallback's full communication replication (each replica of t then receives
// from all ε+1 copies of each predecessor, so validity never depends on
// chain disjointness).
func (st *State) AllSources(t dag.TaskID) []schedule.Ref {
	var out []schedule.Ref
	for _, pe := range st.G.Pred(t) {
		for _, ref := range schedule.ReplicaRefs(pe.From, st.Eps) {
			if st.Sched.Replica(ref) != nil {
				out = append(out, ref)
			}
		}
	}
	return out
}

// Fallback places copy `copy` of t with full communication replication.
// The replica's vulnerability reduces to its own processor (every
// predecessor keeps at least one valid copy by the invariant), so the
// placement must only avoid the sibling vulnerability sets; the throughput
// part of condition (1) is hard and yields InfeasibleError when violated
// everywhere.
func (st *State) Fallback(t dag.TaskID, copy int, better Better) error {
	sources := st.AllSources(t)
	sibV := st.siblingVuln(t, copy)
	var best Candidate
	found := false
	var sawCompute, sawPort bool
	for u := 0; u < st.P.NumProcs(); u++ {
		pu := platform.ProcID(u)
		if sibV[pu] {
			continue
		}
		if ok, why := st.feasibleWhy(t, pu, sources); !ok {
			switch why {
			case infeas.ReasonPeriodExceeded:
				sawCompute = true
			case infeas.ReasonPortOverload:
				sawPort = true
			}
			continue
		}
		cand := Candidate{
			Proc:    pu,
			Finish:  st.TrialFinish(t, pu, sources),
			Stage:   st.stageOf(pu, sources),
			Sources: sources,
		}
		if !found || better(cand, best) {
			best = cand
			found = true
		}
	}
	if !found {
		// Classify the dominant obstruction: a compute load that cannot fit
		// is the fundamental "period exceeded" failure; if every admissible
		// processor had compute headroom, the ports were the bottleneck; and
		// if no processor was admissible at all, the platform is too small
		// for the replica-disjointness discipline.
		reason := infeas.ReasonNoProcessor
		switch {
		case sawCompute:
			reason = infeas.ReasonPeriodExceeded
		case sawPort:
			reason = infeas.ReasonPortOverload
		}
		return infeas.AtTask(reason, t, copy, st.Period)
	}
	st.CommitPlace(t, copy, best.Proc, best.Sources)
	if st.ReverseMode {
		st.commitReverse(t, copy, best.Proc, nil)
	} else {
		st.Claim[t][copy].add(best.Proc)
	}
	return nil
}

// TaskSnapshot captures everything a task's replica placements mutate, so a
// partially chained task can be rolled back and retried in all-fallback mode
// (reverse construction must never mix chain and fallback copies of one
// task: consumers that are no chain's head would then receive inputs only
// from the fallback copies, an untracked vulnerability — see the discipline
// note above).
type TaskSnapshot struct {
	task               dag.TaskID
	sys                *oneport.Snapshot
	sigma, cin, cout   []float64
	claim              [][]procSet
	copyProcsSnapshots map[platform.ProcID]bool
}

// Snapshot captures the rollback state before placing task t's replicas.
func (st *State) Snapshot(t dag.TaskID) *TaskSnapshot {
	snap := &TaskSnapshot{
		task:  t,
		sys:   st.Sys.Snapshot(),
		sigma: append([]float64(nil), st.Sigma...),
		cin:   append([]float64(nil), st.CIn...),
		cout:  append([]float64(nil), st.COut...),
		claim: make([][]procSet, len(st.Claim)),
	}
	for i := range st.Claim {
		snap.claim[i] = make([]procSet, len(st.Claim[i]))
		for c := range st.Claim[i] {
			cp := make(procSet, len(st.Claim[i][c]))
			cp.addAll(st.Claim[i][c])
			snap.claim[i][c] = cp
		}
	}
	snap.copyProcsSnapshots = make(map[platform.ProcID]bool, len(st.copyProcs[t]))
	for u := range st.copyProcs[t] {
		snap.copyProcsSnapshots[u] = true
	}
	return snap
}

// Restore rolls the state back to the snapshot, withdrawing any replicas of
// the snapshot's task placed since. A snapshot may be restored at most once.
func (st *State) Restore(snap *TaskSnapshot) {
	st.Sys.Restore(snap.sys)
	st.Sigma = snap.sigma
	st.CIn = snap.cin
	st.COut = snap.cout
	st.Claim = snap.claim
	for _, ref := range schedule.ReplicaRefs(snap.task, st.Eps) {
		if st.Sched.Replica(ref) != nil {
			st.Sched.RemoveReplica(ref)
		}
		delete(st.Stage, ref)
		delete(st.Supp, ref)
	}
	st.copyProcs[snap.task] = make(map[platform.ProcID]bool, st.Eps+1)
	for u := range snap.copyProcsSnapshots {
		st.copyProcs[snap.task][u] = true
	}
}

// MaxPredStage returns the largest stage number among the placed replicas of
// t's predecessors (R-LTF's Rule 1 bound; on the reversed graph these are
// the successors of the original task).
func (st *State) MaxPredStage(t dag.TaskID) int {
	max := 0
	for _, pe := range st.G.Pred(t) {
		for _, ref := range schedule.ReplicaRefs(pe.From, st.Eps) {
			if st.Sched.Replica(ref) != nil && st.Stage[ref] > max {
				max = st.Stage[ref]
			}
		}
	}
	return max
}
