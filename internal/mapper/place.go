package mapper

import (
	"slices"

	"streamsched/internal/bitset"
	"streamsched/internal/dag"
	"streamsched/internal/infeas"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// Reliability discipline
//
// The paper locks processors per scheduled task ("P is said locked either if
// it is already involved in a communication with a replica of t, or it
// processes itself one of these replicas"). That rule is necessary but not
// *transitively* sufficient: replication chains braid across tasks, and two
// failures can take out all three replicas of a join task whose incoming
// chains share an upstream processor (DESIGN.md records a concrete
// counterexample found by the exhaustive tolerance test). We therefore
// strengthen the discipline to an inductive invariant:
//
//	V(r) — the vulnerability set of replica r — is r's own processor plus
//	the vulnerability sets of the replicas it chain-receives from
//	(fallback inputs contribute nothing: they arrive from all ε+1 copies
//	of the predecessor, at least one of which survives by induction).
//	The invariant: for every task, the V-sets of its ε+1 replicas are
//	pairwise disjoint.
//
// Under the invariant, any failure set F with |F| ≤ ε invalidates at most
// |F| replicas of each task, so at least one replica of every task — in
// particular of every exit task — stays valid. Forward construction (LTF)
// freezes V(r) at placement time; reverse construction (R-LTF) grows the
// V-sets of already-placed downstream replicas as their chain ancestors
// appear, which is what the support lists below account for.

// Candidate describes one evaluated placement of a replica: the target
// processor, the finish time the placement would achieve, the pipeline stage
// the replica would take, and the communication sources it would consume.
type Candidate struct {
	Proc    platform.ProcID
	Finish  float64
	Stage   int
	Sources []schedule.Ref
}

// Better compares two candidates and reports whether a is preferable to b.
// It parameterizes the difference between LTF ("minimum finish time F") and
// R-LTF (Rule 1: do not increase the stage number).
type Better func(a, b Candidate) bool

// MinFinish is LTF's candidate comparator.
func MinFinish(a, b Candidate) bool {
	if a.Finish != b.Finish {
		return a.Finish < b.Finish
	}
	if a.Stage != b.Stage {
		return a.Stage < b.Stage
	}
	return a.Proc < b.Proc
}

// StagePreserving is R-LTF's comparator: candidates that keep the stage
// number at or below bound win over those that exceed it (Rule 1); within
// each class, lower stage wins, then earlier finish.
func StagePreserving(bound int) Better {
	return func(a, b Candidate) bool {
		ap, bp := a.Stage > bound, b.Stage > bound
		if ap != bp {
			return bp
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Finish != b.Finish {
			return a.Finish < b.Finish
		}
		return a.Proc < b.Proc
	}
}

// orderSources fills the srcBuf scratch with the sources sorted by
// availability time (then ref, for determinism) — the order in which their
// transfers are scheduled. The result is valid until the next orderSources
// call.
func (st *State) orderSources(sources []schedule.Ref) []schedule.Ref {
	st.srcBuf = append(st.srcBuf[:0], sources...)
	// The comparator is total (Finish, then Task, then Copy break every
	// tie), so the unstable sort is deterministic; this runs per placement
	// trial and the stable variant's extra element moves are measurable.
	//nolint:determcheck // total comparator, hot path
	slices.SortFunc(st.srcBuf, func(a, b schedule.Ref) int {
		ra, rb := st.Sched.Replica(a), st.Sched.Replica(b)
		switch {
		case ra.Finish < rb.Finish:
			return -1
		case ra.Finish > rb.Finish:
			return 1
		case a.Task != b.Task:
			return int(a.Task) - int(b.Task)
		default:
			return a.Copy - b.Copy
		}
	})
	return st.srcBuf
}

// TrialFinish simulates placing a replica of t on u with the given sources
// and returns the finish time, without mutating anything.
//
//streamsched:hotpath
func (st *State) TrialFinish(t dag.TaskID, u platform.ProcID, sources []schedule.Ref) float64 {
	txn := st.Sys.Begin()
	defer txn.Abort()
	ready := 0.0
	for _, src := range st.orderSources(sources) {
		r := st.Sched.Replica(src)
		_, fin := txn.Transfer(r.Proc, u, st.volume(src.Task, t), r.Finish, "")
		if fin > ready {
			ready = fin
		}
	}
	_, fin := txn.Compute(u, st.G.Task(t).Work, ready, "")
	return fin
}

// CommitPlace irrevocably places copy `copy` of t on u, consuming the given
// sources: transfers are reserved on the one-port timelines, the replica is
// registered in the schedule, and the steady-state loads and stage map are
// updated. It returns the placed replica. Reliability bookkeeping is the
// caller's job (commitChain/commitFallback).
func (st *State) CommitPlace(t dag.TaskID, copy int, u platform.ProcID, sources []schedule.Ref) *schedule.Replica {
	st.Phases.Placements++
	ref := schedule.Ref{Task: t, Copy: copy}
	txn := st.Sys.Begin()
	ready := 0.0
	st.commBuf = st.commBuf[:0]
	for _, src := range st.orderSources(sources) {
		r := st.Sched.Replica(src)
		vol := st.volume(src.Task, t)
		tag := ""
		if st.DebugTags {
			tag = st.commTag(src, ref)
		}
		cs, cf := txn.Transfer(r.Proc, u, vol, r.Finish, tag)
		st.commBuf = append(st.commBuf, schedule.Comm{From: src, Volume: vol, Start: cs, Finish: cf})
		if cf > ready {
			ready = cf
		}
		if r.Proc != u {
			d := cf - cs
			st.CIn[u] += d
			st.COut[r.Proc] += d
		}
	}
	tag := ""
	if st.DebugTags {
		tag = string(appendRef(st.tagBuf[:0], ref))
	}
	start, finish := txn.Compute(u, st.G.Task(t).Work, ready, tag)
	txn.Commit()
	st.Sigma[u] += finish - start
	in := append([]schedule.Comm(nil), st.commBuf...)
	rep := &schedule.Replica{Ref: ref, Proc: u, Start: start, Finish: finish, In: in}
	st.Sched.AddReplica(rep)
	st.stage[st.refIdx(t, copy)] = st.stageOf(u, sources)
	st.copyProcs.At(int(t)).Add(int(u))
	return rep
}

// Pools returns, for every predecessor of t, the replicas that can serve as
// one-to-one communication heads.
//
// The paper restricts pools to replicas on *singleton* processors
// (processors hosting exactly one replica of ⋃_i B(t_i), §4's X set) — its
// mechanism for keeping replication chains processor-disjoint. Our
// vulnerability discipline enforces that disjointness exactly (claims and
// support lists), which subsumes the singleton rule; keeping the restriction
// would force unnecessary fallbacks after Rule-1 merging, because
// co-located consumer replicas are never singleton. We therefore admit
// every placed replica and let the claims filter the unsafe combinations
// (documented deviation, DESIGN.md §3).
func (st *State) Pools(t dag.TaskID) [][]schedule.Ref {
	preds := st.G.Pred(t)
	pools := make([][]schedule.Ref, len(preds))
	for i, pe := range preds {
		for _, ref := range schedule.ReplicaRefs(pe.From, st.Eps) {
			if st.Sched.Replica(ref) != nil {
				pools[i] = append(pools[i], ref)
			}
		}
	}
	return pools
}

// Theta returns θ = min_i λ_i, the number of replicas of t that the
// one-to-one procedure can place (ε+1 for entry tasks, which need no
// incoming communications).
func (st *State) Theta(pools [][]schedule.Ref) int {
	if len(pools) == 0 {
		return st.Eps + 1
	}
	min := len(pools[0])
	for _, p := range pools[1:] {
		if len(p) < min {
			min = len(p)
		}
	}
	if min > st.Eps+1 {
		min = st.Eps + 1
	}
	return min
}

// singleCommFinish returns the earliest finish of a single transfer from
// src's processor to u, against the committed port state (read-only). The
// walk goes through the system's per-port-pair availability cache: head
// selection re-derives this quantity for every (pool candidate × processor)
// across copies and retry rungs, and between commits the answer repeats.
func (st *State) singleCommFinish(src schedule.Ref, t dag.TaskID, u platform.ProcID) float64 {
	r := st.Sched.Replica(src)
	if r.Proc == u {
		return r.Finish
	}
	dur := st.P.CommTime(st.volume(src.Task, t), r.Proc, u)
	return st.Sys.CommonGap(r.Proc, u, r.Finish, dur) + dur
}

// siblingVuln returns the union of the vulnerability sets of the other
// copies of t — the processors a new placement of copy `copy` must avoid.
// The result is the sibV scratch set, valid until the next siblingVuln call.
func (st *State) siblingVuln(t dag.TaskID, copy int) bitset.Set {
	v := st.sibV
	v.Clear()
	for m := 0; m <= st.Eps; m++ {
		if m != copy {
			v.Union(st.claim(t, m))
		}
	}
	return v
}

// headsForward selects, for each pool, the admissible head with the earliest
// single-communication finish onto u. A head is admissible when its (frozen)
// vulnerability set avoids the sibling vulnerabilities. The chosen heads
// land in the candHeads scratch (promote with swapCandHeads); it reports
// false if some pool has no admissible head.
func (st *State) headsForward(t dag.TaskID, u platform.ProcID, pools [][]schedule.Ref, sibV bitset.Set) bool {
	heads := st.headsScratch(len(pools))
	for i, pool := range pools {
		found := false
		bestFin := 0.0
		for _, ref := range pool {
			if st.claim(ref.Task, ref.Copy).Intersects(sibV) {
				continue
			}
			fin := st.singleCommFinish(ref, t, u)
			if !found || fin < bestFin {
				bestFin = fin
				heads[i] = ref
				found = true
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// headsScratch sizes the candidate-heads scratch for n pools. The scratch is
// never nil, so an entry task (no pools) still yields a valid empty head
// list.
func (st *State) headsScratch(n int) []schedule.Ref {
	if cap(st.candHeads) < n || st.candHeads == nil {
		st.candHeads = make([]schedule.Ref, n, n+4)
	}
	st.candHeads = st.candHeads[:n]
	return st.candHeads
}

// swapCandHeads promotes the current candidate heads to best, recycling the
// previous best buffer for the next candidate.
func (st *State) swapCandHeads() []schedule.Ref {
	st.candHeads, st.bestHeads = st.bestHeads, st.candHeads
	return st.bestHeads
}

// mergedReset clears the reverse-mode merged-support scratch.
func (st *State) mergedReset() {
	if st.mergedCopy == nil {
		st.mergedCopy = make([]int16, st.G.NumTasks())
		for i := range st.mergedCopy {
			st.mergedCopy[i] = -1
		}
	}
	for _, t := range st.mergedTouch {
		st.mergedCopy[t] = -1
	}
	st.mergedTouch = st.mergedTouch[:0]
}

// mergedSet records copy cp of task t in the merged support.
func (st *State) mergedSet(t dag.TaskID, cp int16) {
	if st.mergedCopy[t] < 0 {
		st.mergedTouch = append(st.mergedTouch, t)
	}
	st.mergedCopy[t] = cp
}

// headsReverse selects heads for reverse-mode construction: consumer
// replicas whose support lists merge without assigning two different copies
// of any task, and whose merged claims admit u. The chosen heads land in the
// candHeads scratch and the merged support in the mergedCopy/mergedTouch
// scratch; it reports false if no consistent choice exists.
func (st *State) headsReverse(t dag.TaskID, copy int, u platform.ProcID, pools [][]schedule.Ref) bool {
	st.mergedReset()
	st.mergedSet(t, int16(copy))
	heads := st.headsScratch(len(pools))
	for i, pool := range pools {
		// Sort candidates by communication finish, then take the first
		// consistent one.
		cands := st.revCands[:0]
		for _, ref := range pool {
			cands = append(cands, revCand{ref, st.singleCommFinish(ref, t, u)})
		}
		st.revCands = cands
		//nolint:determcheck // total comparator (fin, Task, Copy), hot path
		slices.SortFunc(cands, func(a, b revCand) int {
			switch {
			case a.fin < b.fin:
				return -1
			case a.fin > b.fin:
				return 1
			case a.ref.Task != b.ref.Task:
				return int(a.ref.Task) - int(b.ref.Task)
			default:
				return a.ref.Copy - b.ref.Copy
			}
		})
		chosen := false
		for _, c := range cands {
			if st.consistentSupport(c.ref) {
				for _, pr := range st.supp[st.refIdx(c.ref.Task, c.ref.Copy)] {
					st.mergedSet(pr.Task, pr.Copy)
				}
				heads[i] = c.ref
				chosen = true
				break
			}
		}
		if !chosen {
			return false
		}
	}
	// Final claim check for u over the merged support.
	for _, task := range st.mergedTouch {
		cp := int(st.mergedCopy[task])
		for m := 0; m <= st.Eps; m++ {
			if m != cp && st.claim(task, m).Contains(int(u)) {
				return false
			}
		}
	}
	return true
}

// consistentSupport reports whether head's support list can merge into the
// merged scratch without assigning two different copies of any task.
func (st *State) consistentSupport(head schedule.Ref) bool {
	for _, pr := range st.supp[st.refIdx(head.Task, head.Copy)] {
		if prev := st.mergedCopy[pr.Task]; prev >= 0 && prev != pr.Copy {
			return false
		}
	}
	return true
}

// OneToOne runs one step of the one-to-one mapping procedure (Algorithm 4.2)
// for copy `copy` of t: predecessor pools are consulted for the best head
// per candidate processor, condition (1) and the vulnerability discipline
// are enforced, and the candidate preferred by `better` is committed.
// Chosen heads are consumed from the pools. It returns false when no
// admissible candidate exists; the caller then falls back.
func (st *State) OneToOne(t dag.TaskID, copy int, pools [][]schedule.Ref, better Better) bool {
	for _, pool := range pools {
		if len(pool) == 0 {
			return false
		}
	}
	sibV := st.siblingVuln(t, copy)

	var best Candidate
	found := false
	for u := 0; u < st.P.NumProcs(); u++ {
		pu := platform.ProcID(u)
		if sibV.Contains(u) {
			continue
		}
		if st.ReverseMode {
			if !st.headsReverse(t, copy, pu, pools) {
				continue
			}
			// The widest claim this commit would produce is the reverse
			// analogue of the forward vulnerability size.
			wide := 0
			for _, task := range st.mergedTouch {
				if n := st.claim(task, int(st.mergedCopy[task])).CountAfterAdd(u); n > wide {
					wide = n
				}
			}
			if wide > st.VulnCap {
				continue // vulnerability too wide; force a fallback reset
			}
		} else {
			if !st.headsForward(t, pu, pools, sibV) {
				continue
			}
			v := st.vScratch
			v.Clear()
			v.Add(u)
			for _, h := range st.candHeads {
				v.Union(st.claim(h.Task, h.Copy))
			}
			if v.Count() > st.VulnCap {
				continue // vulnerability too wide; force a fallback reset
			}
		}
		cand, ok, _ := st.evalCandidate(t, pu, st.candHeads, true)
		if !ok {
			continue
		}
		if !found || better(cand, best) {
			best = cand
			best.Sources = st.swapCandHeads()
			if st.ReverseMode {
				st.bestSupp = st.bestSupp[:0]
				for _, task := range st.mergedTouch {
					st.bestSupp = append(st.bestSupp, suppPair{Task: task, Copy: st.mergedCopy[task]})
				}
			}
			found = true
		}
	}
	if !found {
		return false
	}
	st.CommitPlace(t, copy, best.Proc, best.Sources)
	if st.ReverseMode {
		st.commitReverse(t, copy, best.Proc, st.bestSupp)
	} else {
		st.commitForward(t, copy, best.Proc, best.Sources)
	}
	for i, head := range best.Sources {
		for k, ref := range pools[i] {
			if ref == head {
				pools[i] = append(pools[i][:k], pools[i][k+1:]...)
				break
			}
		}
	}
	return true
}

// commitForward freezes the vulnerability set of a forward chain replica:
// its processor plus the vulnerabilities of its heads.
func (st *State) commitForward(t dag.TaskID, copy int, u platform.ProcID, heads []schedule.Ref) {
	v := st.claim(t, copy)
	v.Add(int(u))
	for _, h := range heads {
		v.Union(st.claim(h.Task, h.Copy))
	}
}

// commitReverse records the new replica's support and adds its processor to
// the claims of every (task, copy) it transitively supports. An empty supp
// (the fallback path) reduces to the replica itself.
func (st *State) commitReverse(t dag.TaskID, cp int, u platform.ProcID, supp []suppPair) {
	if len(supp) == 0 {
		supp = []suppPair{{Task: t, Copy: int16(cp)}}
	}
	own := append([]suppPair(nil), supp...)
	st.supp[st.refIdx(t, cp)] = own
	for _, pr := range own {
		st.claim(pr.Task, int(pr.Copy)).Add(int(u))
	}
}

// AllSources returns every placed replica of every predecessor of t — the
// fallback's full communication replication (each replica of t then receives
// from all ε+1 copies of each predecessor, so validity never depends on
// chain disjointness). The result is a scratch buffer valid until the next
// AllSources call.
func (st *State) AllSources(t dag.TaskID) []schedule.Ref {
	st.allSrc = st.allSrc[:0]
	for _, pe := range st.G.Pred(t) {
		for _, ref := range schedule.ReplicaRefs(pe.From, st.Eps) {
			if st.Sched.Replica(ref) != nil {
				st.allSrc = append(st.allSrc, ref)
			}
		}
	}
	return st.allSrc
}

// Fallback places copy `copy` of t with full communication replication.
// The replica's vulnerability reduces to its own processor (every
// predecessor keeps at least one valid copy by the invariant), so the
// placement must only avoid the sibling vulnerability sets; the throughput
// part of condition (1) is hard and yields InfeasibleError when violated
// everywhere.
func (st *State) Fallback(t dag.TaskID, copy int, better Better) error {
	sources := st.AllSources(t)
	sibV := st.siblingVuln(t, copy)
	var best Candidate
	found := false
	var sawCompute, sawPort bool
	for u := 0; u < st.P.NumProcs(); u++ {
		pu := platform.ProcID(u)
		if sibV.Contains(u) {
			continue
		}
		cand, ok, why := st.evalCandidate(t, pu, sources, true)
		if !ok {
			switch why {
			case infeas.ReasonPeriodExceeded:
				sawCompute = true
			case infeas.ReasonPortOverload:
				sawPort = true
			}
			continue
		}
		if !found || better(cand, best) {
			best = cand
			found = true
		}
	}
	if !found {
		// Classify the dominant obstruction: a compute load that cannot fit
		// is the fundamental "period exceeded" failure; if every admissible
		// processor had compute headroom, the ports were the bottleneck; and
		// if no processor was admissible at all, the platform is too small
		// for the replica-disjointness discipline.
		reason := infeas.ReasonNoProcessor
		switch {
		case sawCompute:
			reason = infeas.ReasonPeriodExceeded
		case sawPort:
			reason = infeas.ReasonPortOverload
		}
		return infeas.AtTask(reason, t, copy, st.Period)
	}
	st.Phases.Fallbacks++
	st.CommitPlace(t, copy, best.Proc, best.Sources)
	if st.ReverseMode {
		st.commitReverse(t, copy, best.Proc, nil)
	} else {
		st.claim(t, copy).Add(int(best.Proc))
	}
	return nil
}

// BeginTask opens the task transaction covering everything task t's replica
// placements mutate, so a partially chained task can be rolled back and
// retried in all-fallback mode (reverse construction must never mix chain
// and fallback copies of one task: consumers that are no chain's head would
// then receive inputs only from the fallback copies, an untracked
// vulnerability — see the discipline note above). The one-port side is a
// journal mark — AbortTask rewinds the timelines in O(changes) instead of
// restoring a 3m-timeline deep copy; the small per-processor load vectors
// and the claims span are still captured by value into State-owned scratch.
// At most one task transaction is live at a time (the retry ladder is
// sequential); close it with CommitTask or AbortTask.
func (st *State) BeginTask(t dag.TaskID) {
	if st.snapLive {
		panic("mapper: BeginTask while a task transaction is live")
	}
	st.snapLive = true
	st.snapTask = t
	st.snapMark = st.Sys.Mark()
	st.snapSigma = append(st.snapSigma[:0], st.Sigma...)
	st.snapCIn = append(st.snapCIn[:0], st.CIn...)
	st.snapCOut = append(st.snapCOut[:0], st.COut...)
	st.snapClaims = st.claims.Snapshot(st.snapClaims)
	st.snapCopyProcs = append(st.snapCopyProcs[:0], st.copyProcs.At(int(t))...)
}

// CommitTask closes the task transaction, keeping every placement made
// since BeginTask.
func (st *State) CommitTask() {
	if !st.snapLive {
		panic("mapper: CommitTask without a live task transaction")
	}
	st.snapLive = false
}

// AbortTask rolls the state back to the BeginTask point, withdrawing any
// replicas of the transaction's task placed since.
func (st *State) AbortTask() {
	if !st.snapLive {
		panic("mapper: AbortTask without a live task transaction")
	}
	st.snapLive = false
	st.Phases.Rollbacks++
	st.Sys.Rollback(st.snapMark)
	copy(st.Sigma, st.snapSigma)
	copy(st.CIn, st.snapCIn)
	copy(st.COut, st.snapCOut)
	st.claims.Restore(st.snapClaims)
	st.copyProcs.At(int(st.snapTask)).CopyFrom(st.snapCopyProcs)
	for _, ref := range schedule.ReplicaRefs(st.snapTask, st.Eps) {
		if st.Sched.Replica(ref) != nil {
			st.Sched.RemoveReplica(ref)
		}
		i := st.refIdx(ref.Task, ref.Copy)
		st.stage[i] = 0
		st.supp[i] = nil
	}
}

// BeginChunk opens the chunk transaction covering everything the placement
// of a whole task window mutates — the multi-task analogue of BeginTask, and
// the journal machinery behind the speculative lookahead (ltf.Options
// .Lookahead): a candidate placement of the window is built in full, scored,
// and either kept or rewound in O(changes). The ready heap and precedence
// counters are deliberately not captured: the window is popped before the
// transaction opens and only marked scheduled after it resolves, so they do
// not change in between. Reverse mode runs its single-task retry ladder
// (BeginTask/AbortTask) inside a chunk transaction; the one-port journal
// marks nest LIFO, and the two transactions keep disjoint scratch buffers.
func (st *State) BeginChunk(tasks []dag.TaskID) {
	if st.chunkLive {
		panic("mapper: BeginChunk while a chunk transaction is live")
	}
	if st.snapLive {
		panic("mapper: BeginChunk inside a task transaction")
	}
	st.chunkLive = true
	st.chunkTasks = append(st.chunkTasks[:0], tasks...)
	st.chunkMark = st.Sys.Mark()
	st.chunkSigma = append(st.chunkSigma[:0], st.Sigma...)
	st.chunkCIn = append(st.chunkCIn[:0], st.CIn...)
	st.chunkCOut = append(st.chunkCOut[:0], st.COut...)
	st.chunkClaims = st.claims.Snapshot(st.chunkClaims)
	st.chunkCopyProcs = st.chunkCopyProcs[:0]
	for _, t := range tasks {
		st.chunkCopyProcs = append(st.chunkCopyProcs, st.copyProcs.At(int(t))...)
	}
}

// CommitChunk closes the chunk transaction, keeping every placement made
// since BeginChunk.
func (st *State) CommitChunk() {
	if !st.chunkLive {
		panic("mapper: CommitChunk without a live chunk transaction")
	}
	if st.snapLive {
		panic("mapper: CommitChunk with a live task transaction")
	}
	st.chunkLive = false
}

// AbortChunk rolls the state back to the BeginChunk point, withdrawing every
// replica of the window tasks placed since.
func (st *State) AbortChunk() {
	if !st.chunkLive {
		panic("mapper: AbortChunk without a live chunk transaction")
	}
	if st.snapLive {
		panic("mapper: AbortChunk with a live task transaction")
	}
	st.chunkLive = false
	st.Phases.Rollbacks++
	st.Sys.Rollback(st.chunkMark)
	copy(st.Sigma, st.chunkSigma)
	copy(st.CIn, st.chunkCIn)
	copy(st.COut, st.chunkCOut)
	st.claims.Restore(st.chunkClaims)
	if n := len(st.chunkTasks); n > 0 {
		w := len(st.chunkCopyProcs) / n
		for i, t := range st.chunkTasks {
			st.copyProcs.At(int(t)).CopyFrom(st.chunkCopyProcs[i*w : (i+1)*w])
		}
	}
	for _, t := range st.chunkTasks {
		for _, ref := range schedule.ReplicaRefs(t, st.Eps) {
			if st.Sched.Replica(ref) != nil {
				st.Sched.RemoveReplica(ref)
			}
			i := st.refIdx(ref.Task, ref.Copy)
			st.stage[i] = 0
			st.supp[i] = nil
		}
	}
}

// MaxPredStage returns the largest stage number among the placed replicas of
// t's predecessors (R-LTF's Rule 1 bound; on the reversed graph these are
// the successors of the original task).
func (st *State) MaxPredStage(t dag.TaskID) int {
	max := 0
	for _, pe := range st.G.Pred(t) {
		for _, ref := range schedule.ReplicaRefs(pe.From, st.Eps) {
			if st.Sched.Replica(ref) != nil && st.stage[st.refIdx(ref.Task, ref.Copy)] > max {
				max = st.stage[st.refIdx(ref.Task, ref.Copy)]
			}
		}
	}
	return max
}
