package repair_test

import (
	"context"
	"errors"
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/ltf"
	"streamsched/internal/platform"
	"streamsched/internal/randgraph"
	"streamsched/internal/repair"
	"streamsched/internal/rltf"
	"streamsched/internal/rng"
	"streamsched/internal/schedule"
)

// testInstance builds a heterogeneous stream instance like the goldens and
// solves it with the requested algorithm.
func testInstance(t *testing.T, seed uint64, m, eps int, reverse bool) (*schedule.Schedule, *platform.Platform) {
	t.Helper()
	r := rng.New(seed)
	p := platform.RandomHeterogeneous(r, m, 0.5, 1, 0.5, 1, 100)
	cfg := randgraph.DefaultStreamConfig()
	g := randgraph.Stream(r, cfg, p)
	period := 20.0 * float64(eps+1)
	var (
		s   *schedule.Schedule
		err error
	)
	if reverse {
		s, err = rltf.Schedule(context.Background(), g, p, eps, period, rltf.Options{})
	} else {
		s, err = ltf.Schedule(context.Background(), g, p, eps, period, ltf.Options{})
	}
	if err != nil {
		t.Fatalf("solving the seed instance: %v", err)
	}
	return s, p
}

func mustApply(t *testing.T, d repair.Delta, p *platform.Platform) (*platform.Platform, []platform.ProcID) {
	t.Helper()
	newP, remap, err := d.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	return newP, remap
}

// covered asserts the stats partition the task set.
func covered(t *testing.T, s repair.Stats, n int) {
	t.Helper()
	if s.Replayed+s.Preserved+s.Repaired != n {
		t.Fatalf("stats %+v do not cover %d tasks", s, n)
	}
}

// TestRepairPureReplayOnAddedProc: adding capacity invalidates nothing. A
// forward LTF schedule replays exactly; a mirrored R-LTF schedule at least
// keeps its processor assignment (the forward discipline can reject the
// mirrored chain structure, demoting tasks to the processor-preserving
// rung, but never to search on a pure capacity add).
func TestRepairPureReplayOnAddedProc(t *testing.T) {
	for _, reverse := range []bool{false, true} {
		old, p := testInstance(t, 31, 10, 1, reverse)
		links := make([]float64, p.NumProcs())
		for i := range links {
			links[i] = 100
		}
		d := repair.Delta{Added: []repair.AddedProc{{Speed: 1, Links: links}}}
		newP, remap := mustApply(t, d, p)
		res, err := repair.Repair(context.Background(), old, newP, remap, 0)
		if err != nil {
			t.Fatalf("reverse=%v: %v", reverse, err)
		}
		covered(t, res.Stats, old.G.NumTasks())
		if !reverse && res.Stats.Replayed != old.G.NumTasks() {
			t.Fatalf("LTF: replayed %d of %d tasks on a pure capacity add (stats %+v)",
				res.Stats.Replayed, old.G.NumTasks(), res.Stats)
		}
		if reverse && res.Stats.Repaired != 0 {
			t.Fatalf("R-LTF: %d tasks searched on a pure capacity add (stats %+v)",
				res.Stats.Repaired, res.Stats)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("reverse=%v: repaired schedule invalid: %v", reverse, err)
		}
		if !reverse {
			if lb, ob := res.Schedule.LatencyBound(), old.LatencyBound(); lb != ob {
				t.Fatalf("pure replay changed the latency bound: %v vs %v", lb, ob)
			}
		}
	}
}

// TestRepairProcessorLoss: losing a processor evicts exactly the tasks with
// a replica there (plus discipline casualties); the result must validate
// under the post-delta platform.
func TestRepairProcessorLoss(t *testing.T) {
	for _, reverse := range []bool{false, true} {
		for _, eps := range []int{0, 1, 2} {
			old, p := testInstance(t, 47, 12, eps, reverse)
			d := repair.Delta{Lost: []platform.ProcID{3}}
			newP, remap := mustApply(t, d, p)
			res, err := repair.Repair(context.Background(), old, newP, remap, 0)
			if err != nil {
				t.Fatalf("reverse=%v eps=%d: %v", reverse, eps, err)
			}
			if err := res.Schedule.Validate(); err != nil {
				t.Fatalf("reverse=%v eps=%d: repaired schedule invalid: %v", reverse, eps, err)
			}
			if res.Schedule.P.NumProcs() != p.NumProcs()-1 {
				t.Fatalf("reverse=%v eps=%d: repaired schedule kept %d processors", reverse, eps, res.Schedule.P.NumProcs())
			}
			covered(t, res.Stats, old.G.NumTasks())
		}
	}
}

// TestRepairSpeedAndBandwidthChange: degraded capacity must still yield a
// valid schedule, upgraded capacity a pure replay (for a forward schedule).
func TestRepairSpeedAndBandwidthChange(t *testing.T) {
	old, p := testInstance(t, 59, 10, 1, false)
	degrade := repair.Delta{
		Speed:     []repair.SpeedChange{{Proc: 0, Speed: p.Speed(0) * 0.5}},
		Bandwidth: []repair.BandwidthChange{{From: 0, To: 1, Bandwidth: 10}, {From: 1, To: 0, Bandwidth: 10}},
	}
	newP, remap := mustApply(t, degrade, p)
	res, err := repair.Repair(context.Background(), old, newP, remap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("repaired schedule invalid: %v", err)
	}
	covered(t, res.Stats, old.G.NumTasks())

	upgrade := repair.Delta{Speed: []repair.SpeedChange{{Proc: 0, Speed: p.Speed(0) * 2}}}
	newP, remap = mustApply(t, upgrade, p)
	res, err = repair.Repair(context.Background(), old, newP, remap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Replayed != old.G.NumTasks() {
		t.Fatalf("speed upgrade did not replay exactly: stats %+v", res.Stats)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("repaired schedule invalid: %v", err)
	}
}

// TestRepairBudgetExceeded: a lost processor under a tiny search budget
// fails with the typed sentinel.
func TestRepairBudgetExceeded(t *testing.T) {
	old, p := testInstance(t, 47, 12, 1, false)
	newP, remap := mustApply(t, repair.Delta{Lost: []platform.ProcID{3}}, p)
	full, err := repair.Repair(context.Background(), old, newP, remap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Repaired < 2 {
		t.Skipf("instance only needed %d search placements; budget test needs ≥ 2", full.Stats.Repaired)
	}
	if _, err := repair.Repair(context.Background(), old, newP, remap, 1); !errors.Is(err, repair.ErrBudgetExceeded) {
		t.Fatalf("budget 1: got %v, want ErrBudgetExceeded", err)
	}
	if _, err := repair.Repair(context.Background(), old, newP, remap, full.Stats.Repaired); err != nil {
		t.Fatalf("budget == need: %v", err)
	}
}

// TestDeltaApplyValidation: malformed deltas are rejected with errors, not
// platform.New panics.
func TestDeltaApplyValidation(t *testing.T) {
	p := platform.Homogeneous(3, 1, 10)
	bad := []repair.Delta{
		{Lost: []platform.ProcID{7}},
		{Lost: []platform.ProcID{1, 1}},
		{Lost: []platform.ProcID{0, 1, 2}},
		{Speed: []repair.SpeedChange{{Proc: 0, Speed: 0}}},
		{Speed: []repair.SpeedChange{{Proc: 9, Speed: 1}}},
		{Lost: []platform.ProcID{1}, Speed: []repair.SpeedChange{{Proc: 1, Speed: 2}}},
		{Bandwidth: []repair.BandwidthChange{{From: 0, To: 0, Bandwidth: 1}}},
		{Bandwidth: []repair.BandwidthChange{{From: 0, To: 1, Bandwidth: -1}}},
		{Added: []repair.AddedProc{{Speed: 0, Links: []float64{1, 1, 1}}}},
		{Added: []repair.AddedProc{{Speed: 1, Links: []float64{1}}}},
		{Added: []repair.AddedProc{{Speed: 1, Links: []float64{1, 0, 1}}}},
	}
	for i, d := range bad {
		if _, _, err := d.Apply(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestDeltaApplyRemap pins the dense renumbering.
func TestDeltaApplyRemap(t *testing.T) {
	p := platform.Homogeneous(4, 1, 10)
	d := repair.Delta{
		Lost:  []platform.ProcID{1},
		Added: []repair.AddedProc{{Speed: 2, Links: []float64{5, 5, 5}}},
	}
	newP, remap, err := d.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []platform.ProcID{0, -1, 1, 2}
	for i, w := range want {
		if remap[i] != w {
			t.Fatalf("remap = %v, want %v", remap, want)
		}
	}
	if newP.NumProcs() != 4 {
		t.Fatalf("new platform has %d processors", newP.NumProcs())
	}
	if newP.Speed(3) != 2 {
		t.Fatalf("added processor speed = %v", newP.Speed(3))
	}
	if got := newP.Bandwidth(3, 0); got != 5 {
		t.Fatalf("added link bandwidth = %v", got)
	}
	if got := newP.Bandwidth(0, 3); got != 5 {
		t.Fatalf("added link bandwidth (reverse) = %v", got)
	}
	// Surviving links keep their values under renumbering.
	if got, want := newP.Bandwidth(1, 2), p.Bandwidth(2, 3); got != want {
		t.Fatalf("survivor link bandwidth = %v, want %v", got, want)
	}
}

// TestRepairEmptyDeltaIsStructuralIdentity: the empty delta replays a
// forward schedule into the same structure — same processor and same
// sources per replica, same latency bound. (Byte identity is out of reach:
// construction interleaves placement rounds across a chunk while replay
// commits task by task, and the one-port timestamps depend on commit
// order. The steady-state admission budgets and the stage map do not.)
func TestRepairEmptyDeltaIsStructuralIdentity(t *testing.T) {
	old, p := testInstance(t, 31, 8, 1, false)
	newP, remap := mustApply(t, repair.Delta{}, p)
	res, err := repair.Repair(context.Background(), old, newP, remap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Replayed != old.G.NumTasks() {
		t.Fatalf("empty delta did not replay exactly: stats %+v", res.Stats)
	}
	for t2 := 0; t2 < old.G.NumTasks(); t2++ {
		for c := 0; c <= old.Eps; c++ {
			ref := schedule.Ref{Task: dag.TaskID(t2), Copy: c}
			or, nr := old.Replica(ref), res.Schedule.Replica(ref)
			if or.Proc != nr.Proc {
				t.Fatalf("replica %v moved: %d -> %d", ref, or.Proc, nr.Proc)
			}
			os, ns := sourceSet(or), sourceSet(nr)
			if len(os) != len(ns) {
				t.Fatalf("replica %v: %d sources, was %d", ref, len(ns), len(os))
			}
			for s := range os {
				if !ns[s] {
					t.Fatalf("replica %v lost source %v", ref, s)
				}
			}
		}
	}
	if lb, ob := res.Schedule.LatencyBound(), old.LatencyBound(); lb != ob {
		t.Fatalf("latency bound changed: %v vs %v", lb, ob)
	}
}

func sourceSet(r *schedule.Replica) map[schedule.Ref]bool {
	m := make(map[schedule.Ref]bool, len(r.In))
	for _, in := range r.In {
		m[in.From] = true
	}
	return m
}
