// Package repair implements incremental rescheduling: given a committed
// schedule and a platform delta (processors lost or added, speeds or link
// bandwidths changed), it rebuilds the mapper state over the post-delta
// platform by replaying the surviving placements verbatim and re-placing
// only the evicted tasks through the normal search machinery. The journaled
// task transactions of internal/mapper (BeginTask / AbortTask over the
// one-port op journal) unwind a task whose prescription no longer fits in
// O(changes), which is what makes repair cheaper than a cold re-solve for
// small deltas — the ROADMAP's "platform as live, not static" item.
package repair

import (
	"fmt"

	"streamsched/internal/platform"
)

// SpeedChange sets one processor's speed (pre-delta numbering).
type SpeedChange struct {
	Proc  platform.ProcID
	Speed float64
}

// BandwidthChange sets one directed link's bandwidth (pre-delta numbering).
// The platform model prices each direction independently; symmetric changes
// list both directions.
type BandwidthChange struct {
	From, To  platform.ProcID
	Bandwidth float64
}

// AddedProc describes one processor joining the platform. Added processors
// take the highest identifiers of the post-delta platform, in Added order.
type AddedProc struct {
	Speed float64
	// Links holds the symmetric bandwidth between the new processor and
	// each processor that precedes it in the post-delta platform: the
	// surviving pre-delta processors in their original order, then every
	// earlier entry of Added. Its length must equal the new processor's
	// post-delta identifier.
	Links []float64
}

// Delta is one observed platform change set, applied atomically. The zero
// value is the empty delta (Apply returns the platform unchanged).
type Delta struct {
	// Lost lists processors removed from the platform (pre-delta
	// numbering). Surviving processors are renumbered densely, preserving
	// their relative order.
	Lost []platform.ProcID
	// Speed lists processor speed changes (applied to survivors).
	Speed []SpeedChange
	// Bandwidth lists directed link bandwidth changes (applied to
	// survivors).
	Bandwidth []BandwidthChange
	// Added lists processors joining the platform.
	Added []AddedProc
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool {
	return len(d.Lost) == 0 && len(d.Speed) == 0 && len(d.Bandwidth) == 0 && len(d.Added) == 0
}

// Apply builds the post-delta platform and the processor remap:
// remap[old] is the post-delta identifier of pre-delta processor old, or
// -1 when the delta lost it. Apply validates everything platform.New
// enforces by panic (deltas arrive from the wire, so malformed input must
// surface as an error), and rejects a delta that loses every processor.
func (d Delta) Apply(p *platform.Platform) (*platform.Platform, []platform.ProcID, error) {
	m := p.NumProcs()
	lost := make([]bool, m)
	for _, u := range d.Lost {
		if int(u) < 0 || int(u) >= m {
			return nil, nil, fmt.Errorf("repair: lost processor %d out of range [0,%d)", u, m)
		}
		if lost[u] {
			return nil, nil, fmt.Errorf("repair: processor %d lost twice", u)
		}
		lost[u] = true
	}

	// Stage the survivors' speeds and full bandwidth matrix in pre-delta
	// numbering, then apply the in-place changes.
	speeds := append([]float64(nil), p.Speeds()...)
	bw := make([][]float64, m)
	for k := 0; k < m; k++ {
		bw[k] = make([]float64, m)
		for h := 0; h < m; h++ {
			if k != h {
				bw[k][h] = p.Bandwidth(platform.ProcID(k), platform.ProcID(h))
			}
		}
	}
	for _, c := range d.Speed {
		if int(c.Proc) < 0 || int(c.Proc) >= m {
			return nil, nil, fmt.Errorf("repair: speed change for processor %d out of range [0,%d)", c.Proc, m)
		}
		if lost[c.Proc] {
			return nil, nil, fmt.Errorf("repair: speed change for lost processor %d", c.Proc)
		}
		if !(c.Speed > 0) { // rejects zero, negatives and NaN
			return nil, nil, fmt.Errorf("repair: processor %d speed change to non-positive %v", c.Proc, c.Speed)
		}
		speeds[c.Proc] = c.Speed
	}
	for _, c := range d.Bandwidth {
		if int(c.From) < 0 || int(c.From) >= m || int(c.To) < 0 || int(c.To) >= m {
			return nil, nil, fmt.Errorf("repair: bandwidth change (%d,%d) out of range [0,%d)", c.From, c.To, m)
		}
		if c.From == c.To {
			return nil, nil, fmt.Errorf("repair: bandwidth change on the diagonal (%d,%d)", c.From, c.To)
		}
		if lost[c.From] || lost[c.To] {
			return nil, nil, fmt.Errorf("repair: bandwidth change (%d,%d) touches a lost processor", c.From, c.To)
		}
		if !(c.Bandwidth > 0) {
			return nil, nil, fmt.Errorf("repair: link (%d,%d) bandwidth change to non-positive %v", c.From, c.To, c.Bandwidth)
		}
		bw[c.From][c.To] = c.Bandwidth
	}

	// Dense renumbering of the survivors, then the added processors.
	remap := make([]platform.ProcID, m)
	var survivors []platform.ProcID
	for u := 0; u < m; u++ {
		if lost[u] {
			remap[u] = -1
			continue
		}
		remap[u] = platform.ProcID(len(survivors))
		survivors = append(survivors, platform.ProcID(u))
	}
	nm := len(survivors) + len(d.Added)
	if nm == 0 {
		return nil, nil, fmt.Errorf("repair: delta loses every processor")
	}
	newSpeeds := make([]float64, nm)
	newBW := make([][]float64, nm)
	for k := range newBW {
		newBW[k] = make([]float64, nm)
	}
	for k, ou := range survivors {
		newSpeeds[k] = speeds[ou]
		for h, ov := range survivors {
			newBW[k][h] = bw[ou][ov]
		}
	}
	for i, a := range d.Added {
		id := len(survivors) + i
		if !(a.Speed > 0) {
			return nil, nil, fmt.Errorf("repair: added processor %d has non-positive speed %v", id, a.Speed)
		}
		if len(a.Links) != id {
			return nil, nil, fmt.Errorf("repair: added processor %d has %d links, want %d", id, len(a.Links), id)
		}
		newSpeeds[id] = a.Speed
		for j, b := range a.Links {
			if !(b > 0) {
				return nil, nil, fmt.Errorf("repair: added processor %d link %d has non-positive bandwidth %v", id, j, b)
			}
			newBW[id][j] = b
			newBW[j][id] = b
		}
	}
	return platform.New(newSpeeds, newBW), remap, nil
}
