package repair

import (
	"context"
	"errors"
	"fmt"

	"streamsched/internal/dag"
	"streamsched/internal/mapper"
	"streamsched/internal/obs"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// ErrBudgetExceeded reports that more tasks needed search re-placement
// than the caller's repair budget allowed. The caller typically falls back
// to a cold re-solve (core.Solver.Replan does, unless configured not to).
var ErrBudgetExceeded = errors.New("repair: budget exceeded")

// Stats quantifies how much of the old schedule survived the delta.
type Stats struct {
	// Replayed counts tasks whose every replica was recommitted at its
	// prescribed placement with its prescribed communication structure.
	Replayed int
	// Preserved counts tasks whose replicas kept their prescribed
	// processors but had their inputs widened to full communication
	// replication — the middle rung of the repair ladder, taken when the
	// prescribed structure violates the forward vulnerability discipline
	// (typical for mirrored R-LTF schedules).
	Preserved int
	// Repaired counts tasks re-placed through the search machinery after
	// both replay rungs failed under the new platform.
	Repaired int
	// ColdSolve is set by core.Solver.Replan when repair failed and the
	// result came from a full re-solve instead.
	ColdSolve bool
}

// Result is a successful repair: a complete schedule over the post-delta
// platform plus the repair statistics.
type Result struct {
	Schedule *schedule.Schedule
	Stats    Stats
}

// Repair reconstructs a schedule for old's graph over the post-delta
// platform newP. remap translates pre-delta processor identifiers to
// post-delta ones (-1 = lost), as produced by Delta.Apply. Tasks are
// consumed in chunked priority order like a fresh construction; each task
// runs down a three-rung ladder inside journaled task transactions:
//
//  1. exact replay — every replica recommitted at its prescribed processor
//     with its prescribed sources;
//  2. processor-preserving replay — prescribed processors kept, inputs
//     widened to full communication replication (whose vulnerability
//     discipline is unconditionally sound);
//  3. search — the forward placement ladder (one-to-one, then full
//     communication replication), exactly LTF's inner loop for one task.
//
// A failed rung unwinds through the journal (O(changes) rollback) before
// the next is tried. budget bounds the number of search-re-placed tasks
// (> budget fails with ErrBudgetExceeded); budget ≤ 0 is unlimited.
// Infeasibility of a search placement surfaces as the usual classified
// infeasibility error.
func Repair(ctx context.Context, old *schedule.Schedule, newP *platform.Platform, remap []platform.ProcID, budget int) (*Result, error) {
	if old == nil {
		return nil, errors.New("repair: nil schedule")
	}
	if !old.Complete() {
		return nil, errors.New("repair: the committed schedule is incomplete")
	}
	if len(remap) != old.P.NumProcs() {
		return nil, fmt.Errorf("repair: remap covers %d processors, schedule has %d", len(remap), old.P.NumProcs())
	}
	st, err := mapper.New(old.G, newP, old.Eps, old.Period, old.Algorithm)
	if err != nil {
		return nil, err
	}
	// Trace span covering the whole repair, with an instant event per task
	// that left the exact-replay rung (the interesting ones: a ladder rung
	// taken is the signal an operator reads from a replan trace). Inactive
	// unless the request is traced.
	sp := obs.FromContext(ctx).Child("repair")
	defer sp.End()
	res := &Result{}
	defer func() {
		if sp.Active() {
			sp.SetArg("replayed", res.Stats.Replayed)
			sp.SetArg("preserved", res.Stats.Preserved)
			sp.SetArg("repaired", res.Stats.Repaired)
			sp.SetArg("trials", st.Phases.Trials)
			sp.SetArg("rollbacks", st.Phases.Rollbacks)
		}
	}()
	chunkSize := newP.NumProcs()
	for !st.Done() {
		// One cancellation check per chunk, like the construction loop.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chunk := st.PopChunk(chunkSize)
		if len(chunk) == 0 {
			return nil, errors.New("repair: no ready task but unscheduled tasks remain")
		}
		for _, t := range chunk {
			if replayTask(st, old, remap, t) {
				res.Stats.Replayed++
				continue
			}
			if preserveTask(st, old, remap, t) {
				res.Stats.Preserved++
				if sp.Active() {
					sp.Event("rung", map[string]any{"task": int(t), "rung": "preserve"})
				}
				continue
			}
			res.Stats.Repaired++
			if sp.Active() {
				sp.Event("rung", map[string]any{"task": int(t), "rung": "search"})
			}
			if budget > 0 && res.Stats.Repaired > budget {
				return nil, fmt.Errorf("%w: %d tasks needed re-placement, budget %d", ErrBudgetExceeded, res.Stats.Repaired, budget)
			}
			if err := searchTask(st, t); err != nil {
				return nil, err
			}
		}
		st.MarkScheduled(chunk)
	}
	res.Schedule = st.Sched
	return res, nil
}

// replayTask recommits every replica of t at its prescribed placement
// inside one task transaction; any failure rolls the whole task back.
func replayTask(st *mapper.State, old *schedule.Schedule, remap []platform.ProcID, t dag.TaskID) bool {
	st.BeginTask(t)
	for c := 0; c <= st.Eps; c++ {
		pl, ok := prescribed(st, old, remap, t, c)
		if !ok || !st.ReplayPlace(t, c, pl) {
			st.AbortTask()
			return false
		}
	}
	st.CommitTask()
	return true
}

// preserveTask recommits every replica of t on its prescribed processor but
// with full communication replication. The fallback claim ({processor}
// only) satisfies the forward discipline whenever the copies sit on
// distinct processors, so this rung salvages the load distribution of
// schedules whose communication structure does not replay — mirrored R-LTF
// chains in particular — at the price of wider transfers, which the
// condition-(1) port budgets re-admit or reject per copy.
func preserveTask(st *mapper.State, old *schedule.Schedule, remap []platform.ProcID, t dag.TaskID) bool {
	st.BeginTask(t)
	for c := 0; c <= st.Eps; c++ {
		r := old.Replica(schedule.Ref{Task: t, Copy: c})
		u := remap[r.Proc]
		if u < 0 {
			st.AbortTask()
			return false
		}
		pl := mapper.ReplayPlacement{Proc: u, Sources: st.AllSources(t)}
		if !st.ReplayPlace(t, c, pl) {
			st.AbortTask()
			return false
		}
	}
	st.CommitTask()
	return true
}

// prescribed extracts the replay placement of copy c of t from the old
// schedule, remapping the processor and classifying the communication
// pattern. A replica that consumed exactly one source per predecessor was
// chain-placed (one-to-one); one that consumed every copy of every
// predecessor was fallback-placed. Anything else — a lost processor, a
// pattern that matches neither — fails the exact-replay rung.
func prescribed(st *mapper.State, old *schedule.Schedule, remap []platform.ProcID, t dag.TaskID, c int) (mapper.ReplayPlacement, bool) {
	r := old.Replica(schedule.Ref{Task: t, Copy: c})
	u := remap[r.Proc]
	if u < 0 {
		return mapper.ReplayPlacement{}, false
	}
	preds := old.G.Pred(t)
	pl := mapper.ReplayPlacement{Proc: u, Chain: true}
	if len(preds) == 0 {
		return pl, true
	}
	chain := make([]schedule.Ref, len(preds))
	counts := make([]int, len(preds))
	for _, in := range r.In {
		for i, pe := range preds {
			if in.From.Task == pe.From {
				counts[i]++
				chain[i] = in.From
				break
			}
		}
	}
	allOne, allFull := true, true
	for _, n := range counts {
		if n != 1 {
			allOne = false
		}
		if n != st.Eps+1 {
			allFull = false
		}
	}
	switch {
	case allOne:
		pl.Sources = chain
		return pl, true
	case allFull:
		// Full replication: consume every placed copy of every predecessor.
		// At replay time the predecessors are fully committed, so AllSources
		// reproduces the prescribed set exactly.
		pl.Chain = false
		pl.Sources = st.AllSources(t)
		return pl, true
	default:
		return mapper.ReplayPlacement{}, false
	}
}

// searchTask re-places every replica of t through the forward search
// ladder — the one-to-one procedure while admissible heads remain, full
// communication replication otherwise — exactly the inner loop of LTF's
// chunk placement restricted to one task.
func searchTask(st *mapper.State, t dag.TaskID) error {
	pools := st.Pools(t)
	theta := st.Theta(pools)
	z := 0
	for n := 0; n <= st.Eps; n++ {
		if z < theta && st.OneToOne(t, n, pools, mapper.MinFinish) {
			z++
			continue
		}
		if err := st.Fallback(t, n, mapper.MinFinish); err != nil {
			return err
		}
	}
	return nil
}
