// Package textplot renders multi-series line charts as ASCII — enough to
// eyeball the paper's figures directly in a terminal, since this module is
// offline and ships no plotting dependency. Each series gets a marker
// character; overlapping points show the later series' marker.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	// X and Y must have equal length; NaN points are skipped.
	X, Y []float64
}

// Options control the canvas.
type Options struct {
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	Title  string
	// YMin/YMax fix the vertical range; both zero → auto from the data.
	YMin, YMax float64
}

// markers assigned to series in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the series onto one chart.
func Render(series []Series, opt Options) string {
	if opt.Width <= 0 {
		opt.Width = 64
	}
	if opt.Height <= 0 {
		opt.Height = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return "(no data)\n"
	}
	if opt.YMin != 0 || opt.YMax != 0 {
		ymin, ymax = opt.YMin, opt.YMax
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(opt.Width-1)))
		return clamp(c, 0, opt.Width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(opt.Height-1)))
		return clamp(r, 0, opt.Height-1)
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			grid[row(s.Y[i])][col(s.X[i])] = mk
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	for r := 0; r < opt.Height; r++ {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%8.4g", ymax)
		case opt.Height - 1:
			label = fmt.Sprintf("%8.4g", ymin)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", 8), strings.Repeat("-", opt.Width))
	fmt.Fprintf(&b, "%s  %-10.4g%s%10.4g\n", strings.Repeat(" ", 8),
		xmin, strings.Repeat(" ", max(0, opt.Width-20)), xmax)
	for si, s := range series {
		fmt.Fprintf(&b, "          %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// FromTable converts a header/rows pair (column 0 = x, columns 1.. = one
// series each, as produced by experiments.Series) into plot series.
func FromTable(header []string, rows [][]float64) []Series {
	if len(header) < 2 || len(rows) == 0 {
		return nil
	}
	out := make([]Series, len(header)-1)
	for c := 1; c < len(header); c++ {
		s := Series{Name: header[c]}
		for _, row := range rows {
			s.X = append(s.X, row[0])
			s.Y = append(s.Y, row[c])
		}
		out[c-1] = s
	}
	return out
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
