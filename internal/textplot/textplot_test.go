package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out := Render([]Series{
		{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	}, Options{Width: 20, Height: 8, Title: "test"})
	if !strings.Contains(out, "test") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "+ down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("markers missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 8 rows + axis + xlabels + 2 legend lines
	if len(lines) != 1+8+1+1+2 {
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}

func TestRenderPlacesExtremes(t *testing.T) {
	out := Render([]Series{
		{Name: "s", X: []float64{0, 10}, Y: []float64{5, 15}},
	}, Options{Width: 21, Height: 5})
	lines := strings.Split(out, "\n")
	// Max y (15) appears on the top row, min (5) on the bottom row.
	if !strings.Contains(lines[0], "15") {
		t.Fatalf("top label: %q", lines[0])
	}
	if !strings.HasPrefix(strings.TrimSpace(lines[4]), "5") {
		t.Fatalf("bottom label: %q", lines[4])
	}
	if !strings.Contains(lines[0], "*") {
		t.Fatal("max point not on top row")
	}
	if !strings.Contains(lines[4], "*") {
		t.Fatal("min point not on bottom row")
	}
}

func TestRenderSkipsNaN(t *testing.T) {
	out := Render([]Series{
		{Name: "s", X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), 3}},
	}, Options{Width: 10, Height: 4})
	// Count markers in the plot area only (above the x axis), excluding the
	// legend's marker.
	plotArea := strings.Split(out, "+--")[0]
	if strings.Count(plotArea, "*") != 2 {
		t.Fatalf("NaN point drawn:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := Render(nil, Options{}); !strings.Contains(out, "no data") {
		t.Fatalf("empty render: %q", out)
	}
	allNaN := Render([]Series{{Name: "x", X: []float64{1}, Y: []float64{math.NaN()}}}, Options{})
	if !strings.Contains(allNaN, "no data") {
		t.Fatal("all-NaN should render as no data")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	out := Render([]Series{
		{Name: "flat", X: []float64{0, 1}, Y: []float64{5, 5}},
	}, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Fatal("flat series missing")
	}
}

func TestFixedYRange(t *testing.T) {
	out := Render([]Series{
		{Name: "s", X: []float64{0, 1}, Y: []float64{2, 3}},
	}, Options{Width: 10, Height: 4, YMin: 0, YMax: 10})
	if !strings.Contains(out, "10") {
		t.Fatalf("fixed range label missing:\n%s", out)
	}
}

func TestFromTable(t *testing.T) {
	header := []string{"g", "a", "b"}
	rows := [][]float64{{0.2, 10, 20}, {0.4, 11, 21}}
	series := FromTable(header, rows)
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	if series[0].Name != "a" || series[1].Name != "b" {
		t.Fatal("names wrong")
	}
	if series[1].Y[1] != 21 || series[1].X[1] != 0.4 {
		t.Fatal("values wrong")
	}
}

func TestFromTableEmpty(t *testing.T) {
	if FromTable([]string{"x"}, nil) != nil {
		t.Fatal("degenerate table should return nil")
	}
}
