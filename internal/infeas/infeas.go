// Package infeas defines the typed infeasibility error family shared by
// every scheduling algorithm in the module. "The algorithm fails" (§4.1) is
// an expected outcome of the paper's decision problem — is there a schedule
// at period Δ with ε replicas? — and the tri-criteria searches probe it
// hundreds of times per instance, so callers must be able to distinguish
// "no schedule exists" from "the solver broke" without string matching:
//
//	s, err := solver.Solve(ctx, g, p)
//	if errors.Is(err, infeas.ErrInfeasible) { ... widen the search ... }
//
// The package sits below mapper/ltf/rltf/baselines (which construct the
// errors) and below core (which re-exports the family on the public
// façade as core.ErrInfeasible / *core.InfeasibleError).
package infeas

import (
	"errors"
	"fmt"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
)

// ErrInfeasible is the sentinel every infeasibility error wraps: it means
// the instance admits no schedule under the requested constraints, not that
// the solver malfunctioned. Match with errors.Is.
var ErrInfeasible = errors.New("no feasible schedule")

// Reason classifies why an instance is infeasible.
type Reason int

const (
	// ReasonUnknown is the zero value; avoid constructing errors with it.
	ReasonUnknown Reason = iota
	// ReasonPeriodExceeded: some replica's compute load cannot fit within
	// the period Δ on any admissible processor (condition (1), T·Σ_u ≤ 1).
	ReasonPeriodExceeded
	// ReasonPortOverload: the compute loads fit, but some send or receive
	// port budget is exhausted on every admissible placement (condition (1),
	// T·C_u^I ≤ 1 / T·C_h^O ≤ 1).
	ReasonPortOverload
	// ReasonNoProcessor: the platform has no admissible processor at all —
	// fewer than ε+1 processors, or every processor excluded by the
	// replica-disjointness discipline.
	ReasonNoProcessor
	// ReasonLatencyExceeded: a schedule exists but its latency bound
	// (2S−1)·Δ exceeds the requested cap.
	ReasonLatencyExceeded
	// ReasonSearchExhausted: a tri-criteria search probed its whole window
	// without finding any feasible point.
	ReasonSearchExhausted
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonPeriodExceeded:
		return "period exceeded"
	case ReasonPortOverload:
		return "port overload"
	case ReasonNoProcessor:
		return "no processor"
	case ReasonLatencyExceeded:
		return "latency exceeded"
	case ReasonSearchExhausted:
		return "search exhausted"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// NoTask and NoProc mark the Task/Proc fields of errors that are not tied
// to a specific task or processor.
const (
	NoTask = dag.TaskID(-1)
	NoProc = platform.ProcID(-1)
)

// Error is a classified infeasibility. It wraps ErrInfeasible, so
// errors.Is(err, ErrInfeasible) is true for every *Error.
type Error struct {
	// Reason classifies the failure.
	Reason Reason
	// Task is the task whose replica could not be placed (NoTask when the
	// failure is not task-specific).
	Task dag.TaskID
	// Copy is the replica copy index (-1 when not applicable).
	Copy int
	// Proc is the processor involved, when one is (NoProc otherwise).
	Proc platform.ProcID
	// Period is the period Δ under which the instance was infeasible
	// (0 when no period applies).
	Period float64
	// Detail optionally carries extra human-readable context.
	Detail string
}

// New builds a task-independent infeasibility.
func New(reason Reason, period float64, detail string) *Error {
	return &Error{Reason: reason, Task: NoTask, Copy: -1, Proc: NoProc, Period: period, Detail: detail}
}

// Newf is New with a formatted detail string.
func Newf(reason Reason, period float64, format string, args ...any) *Error {
	return New(reason, period, fmt.Sprintf(format, args...))
}

// AtTask builds an infeasibility pinned to one replica placement.
func AtTask(reason Reason, t dag.TaskID, copy int, period float64) *Error {
	return &Error{Reason: reason, Task: t, Copy: copy, Proc: NoProc, Period: period}
}

// Error renders the classification and whatever location is known.
func (e *Error) Error() string {
	msg := "infeasible (" + e.Reason.String() + ")"
	if e.Task != NoTask {
		msg += fmt.Sprintf(": task %d", e.Task)
		if e.Copy >= 0 {
			msg += fmt.Sprintf(" copy %d", e.Copy)
		}
		msg += " cannot be placed"
	}
	if e.Proc != NoProc {
		msg += fmt.Sprintf(" on P%d", int(e.Proc)+1)
	}
	if e.Period > 0 {
		msg += fmt.Sprintf(" within period %g", e.Period)
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// Unwrap ties every classified error to the ErrInfeasible sentinel.
func (e *Error) Unwrap() error { return ErrInfeasible }
