package infeas

// JSON encoding of the infeasibility family, used by the service layer
// (internal/service) to report "no schedule exists" outcomes over the wire
// without losing the classification. Reasons encode as stable string tokens
// — never as raw ints, which would silently re-number if the enum grows —
// and absent task/copy/processor locations are omitted rather than encoded
// as the in-memory -1 sentinels.

import (
	"encoding/json"
	"fmt"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
)

// reasonTokens maps each Reason to its wire token. Tokens are part of the
// wire contract: they may be extended but never renamed.
var reasonTokens = map[Reason]string{
	ReasonUnknown:         "unknown",
	ReasonPeriodExceeded:  "period-exceeded",
	ReasonPortOverload:    "port-overload",
	ReasonNoProcessor:     "no-processor",
	ReasonLatencyExceeded: "latency-exceeded",
	ReasonSearchExhausted: "search-exhausted",
}

// Reasons lists every defined Reason in declaration order, for callers that
// enumerate the classification (wire tests, documentation generators).
func Reasons() []Reason {
	return []Reason{
		ReasonUnknown,
		ReasonPeriodExceeded,
		ReasonPortOverload,
		ReasonNoProcessor,
		ReasonLatencyExceeded,
		ReasonSearchExhausted,
	}
}

// MarshalText encodes the reason as its wire token.
func (r Reason) MarshalText() ([]byte, error) {
	tok, ok := reasonTokens[r]
	if !ok {
		return nil, fmt.Errorf("infeas: reason %d has no wire token", int(r))
	}
	return []byte(tok), nil
}

// UnmarshalText decodes a wire token back into the reason.
func (r *Reason) UnmarshalText(text []byte) error {
	for reason, tok := range reasonTokens {
		if tok == string(text) {
			*r = reason
			return nil
		}
	}
	return fmt.Errorf("infeas: unknown reason token %q", text)
}

// jsonError is the wire form of *Error. Location fields are pointers so
// that the NoTask/NoProc/-1 sentinels become absent keys instead of magic
// numbers a non-Go consumer would have to know.
type jsonError struct {
	Reason Reason  `json:"reason"`
	Task   *int    `json:"task,omitempty"`
	Copy   *int    `json:"copy,omitempty"`
	Proc   *int    `json:"proc,omitempty"`
	Period float64 `json:"period,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// MarshalJSON encodes the classified infeasibility.
func (e *Error) MarshalJSON() ([]byte, error) {
	out := jsonError{Reason: e.Reason, Period: e.Period, Detail: e.Detail}
	if e.Task != NoTask {
		t := int(e.Task)
		out.Task = &t
	}
	if e.Copy >= 0 {
		c := e.Copy
		out.Copy = &c
	}
	if e.Proc != NoProc {
		p := int(e.Proc)
		out.Proc = &p
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes an error previously encoded with MarshalJSON;
// absent location fields restore the NoTask/NoProc/-1 sentinels.
func (e *Error) UnmarshalJSON(data []byte) error {
	var in jsonError
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("infeas: %w", err)
	}
	*e = Error{
		Reason: in.Reason,
		Task:   NoTask,
		Copy:   -1,
		Proc:   NoProc,
		Period: in.Period,
		Detail: in.Detail,
	}
	if in.Task != nil {
		e.Task = dag.TaskID(*in.Task)
	}
	if in.Copy != nil {
		e.Copy = *in.Copy
	}
	if in.Proc != nil {
		e.Proc = platform.ProcID(*in.Proc)
	}
	return nil
}
