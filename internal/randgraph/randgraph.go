// Package randgraph generates workflow graphs: the randomly generated,
// granularity-calibrated task graphs of the paper's experimental section
// (§5), the classic regular topologies used throughout the scheduling
// literature (chains, trees, fork-joins, FFT, Gaussian elimination), and the
// two worked examples of the paper (Figures 1 and 2).
package randgraph

import (
	"fmt"
	"math"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
	"streamsched/internal/rng"
)

// StreamConfig parameterizes the §5 random workload generator. Zero fields
// take the paper's defaults (see DefaultStreamConfig).
type StreamConfig struct {
	// MinTasks/MaxTasks bound the task count ("chosen uniformly from the
	// range [50, 150]").
	MinTasks, MaxTasks int
	// Granularity is the target g(G,P) (swept 0.2..2.0 in the paper).
	Granularity float64
	// VolumeLo/VolumeHi bound the raw message volumes ("chosen uniformly
	// from [50, 150]") before the granularity calibration rescales them.
	VolumeLo, VolumeHi float64
	// WorkLo/WorkHi shape the raw task works before normalization.
	WorkLo, WorkHi float64
	// ComputeFraction φ fixes the total compute load: works are normalized
	// so that Σ_t E(t)/s̄ = φ·m·PeriodBase. The paper does not pin down work
	// units (see DESIGN.md §3); φ controls how hard the throughput
	// constraint bites.
	ComputeFraction float64
	// PeriodBase is Δ_base; the experiments use period Δ_base·(ε+1).
	PeriodBase float64
	// MeanInDegree is the average number of predecessors per non-entry task.
	MeanInDegree float64
}

// DefaultStreamConfig returns the paper-aligned defaults.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		MinTasks:        50,
		MaxTasks:        150,
		Granularity:     1.0,
		VolumeLo:        50,
		VolumeHi:        150,
		WorkLo:          0.5,
		WorkHi:          1.5,
		ComputeFraction: 0.2,
		PeriodBase:      10,
		MeanInDegree:    1.6,
	}
}

// Stream generates one random layered workflow calibrated against p:
// the returned graph has granularity cfg.Granularity (within float noise)
// and total average compute time φ·m·Δ_base.
func Stream(r *rng.Source, cfg StreamConfig, p *platform.Platform) *dag.Graph {
	if cfg.MinTasks <= 0 {
		cfg = DefaultStreamConfig()
	}
	v := r.IntRange(cfg.MinTasks, cfg.MaxTasks)
	g := dag.New(fmt.Sprintf("stream-v%d-g%.2g", v, cfg.Granularity))

	// Layered structure: depth ≈ √v keeps stage counts in the regime the
	// paper's figures show.
	layers := int(math.Sqrt(float64(v)))
	if layers < 3 {
		layers = 3
	}
	layerOf := make([]int, v)
	for i := 0; i < v; i++ {
		g.AddTask(fmt.Sprintf("t%d", i), r.Uniform(cfg.WorkLo, cfg.WorkHi))
		if i < layers {
			layerOf[i] = i // guarantee every layer is inhabited
		} else {
			layerOf[i] = r.IntN(layers)
		}
	}
	// Group tasks per layer.
	byLayer := make([][]dag.TaskID, layers)
	for i := 0; i < v; i++ {
		byLayer[layerOf[i]] = append(byLayer[layerOf[i]], dag.TaskID(i))
	}
	// Edges: each non-first-layer task draws preds from earlier layers,
	// biased towards the adjacent one.
	for l := 1; l < layers; l++ {
		for _, t := range byLayer[l] {
			want := 1
			for r.Float64() < (cfg.MeanInDegree-1)/cfg.MeanInDegree && want < 3 {
				want++
			}
			for k := 0; k < want; k++ {
				src := l - 1
				if r.Bool(0.25) && l > 1 {
					src = r.IntN(l)
				}
				if len(byLayer[src]) == 0 {
					continue
				}
				from := byLayer[src][r.IntN(len(byLayer[src]))]
				_ = g.AddEdge(from, t, r.Uniform(cfg.VolumeLo, cfg.VolumeHi)) // dup edges skipped
			}
		}
	}
	Calibrate(g, p, cfg)
	return g
}

// Calibrate rescales g in place: works so the total average compute time is
// φ·m·Δ_base, then volumes so the granularity matches cfg.Granularity.
func Calibrate(g *dag.Graph, p *platform.Platform, cfg StreamConfig) {
	meanS := p.MeanSpeed()
	target := cfg.ComputeFraction * float64(p.NumProcs()) * cfg.PeriodBase
	current := g.TotalWork() / meanS
	if current > 0 && target > 0 {
		g.ScaleWork(target / current)
	}
	cur := platform.Granularity(g, p)
	if !math.IsInf(cur, 1) && cfg.Granularity > 0 {
		// g = comp/comm; comm scales inversely with the volume factor.
		g.ScaleVolume(cur / cfg.Granularity)
	}
}
