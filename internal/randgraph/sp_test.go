package randgraph

import (
	"testing"

	"streamsched/internal/rng"
)

func TestSeriesParallelGeneratorIsSP(t *testing.T) {
	r := rng.New(8)
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.IntN(40)
		g := SeriesParallel(r, n, 0.5, 1.5, 0.1, 1)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !g.IsSeriesParallel() {
			t.Fatalf("trial %d: generator output not series-parallel:\n%s", trial, g.DOT())
		}
	}
}

func TestSeriesParallelSizeApproximate(t *testing.T) {
	r := rng.New(9)
	g := SeriesParallel(r, 40, 1, 1, 1, 1)
	if g.NumTasks() < 20 || g.NumTasks() > 90 {
		t.Fatalf("size %d too far from requested 40", g.NumTasks())
	}
}

func TestSeriesParallelSingleTask(t *testing.T) {
	g := SeriesParallel(rng.New(1), 1, 1, 1, 1, 1)
	if g.NumTasks() != 1 || g.NumEdges() != 0 {
		t.Fatalf("v=%d e=%d", g.NumTasks(), g.NumEdges())
	}
	if !g.IsSeriesParallel() {
		t.Fatal("single task must be SP")
	}
}

func TestSeriesParallelTerminals(t *testing.T) {
	r := rng.New(10)
	for trial := 0; trial < 20; trial++ {
		g := SeriesParallel(r, 10+r.IntN(20), 1, 1, 1, 1)
		if len(g.Entries()) != 1 || len(g.Exits()) != 1 {
			t.Fatalf("trial %d: SP graph must be two-terminal (entries=%d exits=%d)",
				trial, len(g.Entries()), len(g.Exits()))
		}
	}
}
