package randgraph

import (
	"fmt"

	"streamsched/internal/dag"
	"streamsched/internal/rng"
)

// SeriesParallel generates a random two-terminal series-parallel workflow
// with approximately n tasks, by recursive series/parallel composition —
// the graph family for which §4.2 claims the one-to-one mapping needs only
// e(ε+1) communications. Works are drawn from [workLo, workHi] and volumes
// from [volLo, volHi].
func SeriesParallel(r *rng.Source, n int, workLo, workHi, volLo, volHi float64) *dag.Graph {
	if n < 1 {
		n = 1
	}
	g := dag.New(fmt.Sprintf("sp-%d", n))
	work := func() float64 { return r.Uniform(workLo, workHi) }
	vol := func() float64 { return r.Uniform(volLo, volHi) }

	// build emits a sub-workflow of ~size tasks and returns its unique
	// source and sink task (possibly the same task).
	var build func(size int) (src, snk dag.TaskID)
	build = func(size int) (dag.TaskID, dag.TaskID) {
		if size <= 1 {
			t := g.AddTask(fmt.Sprintf("t%d", g.NumTasks()), work())
			return t, t
		}
		if r.Bool(0.5) {
			// Series composition.
			cut := 1 + r.IntN(size-1)
			s1, k1 := build(cut)
			s2, k2 := build(size - cut)
			g.MustAddEdge(k1, s2, vol())
			return s1, k2
		}
		// Parallel composition between fresh terminals.
		src := g.AddTask(fmt.Sprintf("t%d", g.NumTasks()), work())
		snk := g.AddTask(fmt.Sprintf("t%d", g.NumTasks()), work())
		branches := 2 + r.IntN(2)
		budget := size - 2
		if budget < branches {
			branches = max(2, budget)
		}
		for b := 0; b < branches; b++ {
			share := budget / branches
			if b == branches-1 {
				share = budget - share*(branches-1)
			}
			if share < 1 {
				share = 1
			}
			s, k := build(share)
			g.MustAddEdge(src, s, vol())
			g.MustAddEdge(k, snk, vol())
		}
		return src, snk
	}
	build(n)
	return g
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
