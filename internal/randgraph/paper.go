package randgraph

import (
	"streamsched/internal/dag"
	"streamsched/internal/platform"
)

// The two worked examples of the paper.

// Fig1Graph returns the 4-task workflow of Figure 1: "all task computation
// times are equal to 15, and all edges have a communication volume equal to
// 2". The figure's wiring is the diamond t1→{t2,t3}→t4.
func Fig1Graph() *dag.Graph {
	g := dag.New("fig1")
	t1 := g.AddTask("t1", 15)
	t2 := g.AddTask("t2", 15)
	t3 := g.AddTask("t3", 15)
	t4 := g.AddTask("t4", 15)
	g.MustAddEdge(t1, t2, 2)
	g.MustAddEdge(t1, t3, 2)
	g.MustAddEdge(t2, t4, 2)
	g.MustAddEdge(t3, t4, 2)
	return g
}

// Fig1Platform returns the 4-processor platform of Figure 1:
// s1 = s3 = 1.5, s2 = s4 = 1, unit link bandwidth.
func Fig1Platform() *platform.Platform {
	speeds := []float64{1.5, 1, 1.5, 1}
	bw := make([][]float64, 4)
	for u := range bw {
		bw[u] = []float64{1, 1, 1, 1}
		bw[u][u] = 0
	}
	return platform.New(speeds, bw)
}

// Fig2Graph returns the 7-task workflow of §4.3 / Figure 2. The figure
// itself is not recoverable from the text, so the wiring is reconstructed
// from the scheduling narrative (see DESIGN.md §6): t1 is the only entry;
// scheduling t1 readies {t2, t3}; scheduling them readies {t4, t5}; then
// t6; t7 is the only exit, with predecessors {t3, t6} (the reverse pass
// starts with α = {t3, t6}). Execution times: E(t1)=E(t7)=15, E(t3)=20,
// E(t2)=E(t6)=6, E(t4)=E(t5)=5; every edge costs 2 time units.
func Fig2Graph() *dag.Graph {
	g := dag.New("fig2")
	t1 := g.AddTask("t1", 15)
	t2 := g.AddTask("t2", 6)
	t3 := g.AddTask("t3", 20)
	t4 := g.AddTask("t4", 5)
	t5 := g.AddTask("t5", 5)
	t6 := g.AddTask("t6", 6)
	t7 := g.AddTask("t7", 15)
	g.MustAddEdge(t1, t2, 2)
	g.MustAddEdge(t1, t3, 2)
	g.MustAddEdge(t2, t4, 2)
	g.MustAddEdge(t2, t5, 2)
	g.MustAddEdge(t4, t6, 2)
	g.MustAddEdge(t5, t6, 2)
	g.MustAddEdge(t3, t7, 2)
	g.MustAddEdge(t6, t7, 2)
	return g
}

// Fig2Platform returns the §4.3 platform: m fully homogeneous processors of
// speed 1 with unit-delay links for the 2-unit edge cost ("all edges have a
// cost of 2 time units").
func Fig2Platform(m int) *platform.Platform {
	return platform.Homogeneous(m, 1, 1)
}
