package randgraph

import (
	"math"
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
	"streamsched/internal/rng"
)

func TestStreamSizes(t *testing.T) {
	r := rng.New(1)
	p := platform.RandomHeterogeneous(r, 20, 0.5, 1, 0.5, 1, 100)
	cfg := DefaultStreamConfig()
	for i := 0; i < 20; i++ {
		g := Stream(r, cfg, p)
		if g.NumTasks() < 50 || g.NumTasks() > 150 {
			t.Fatalf("task count %d outside [50,150]", g.NumTasks())
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStreamGranularityCalibration(t *testing.T) {
	r := rng.New(2)
	p := platform.RandomHeterogeneous(r, 20, 0.5, 1, 0.5, 1, 100)
	for _, target := range []float64{0.2, 0.6, 1.0, 1.4, 2.0} {
		cfg := DefaultStreamConfig()
		cfg.Granularity = target
		g := Stream(r, cfg, p)
		got := platform.Granularity(g, p)
		if math.Abs(got-target)/target > 1e-9 {
			t.Fatalf("granularity %v, want %v", got, target)
		}
	}
}

func TestStreamComputeNormalization(t *testing.T) {
	r := rng.New(3)
	p := platform.RandomHeterogeneous(r, 20, 0.5, 1, 0.5, 1, 100)
	cfg := DefaultStreamConfig()
	g := Stream(r, cfg, p)
	want := cfg.ComputeFraction * 20 * cfg.PeriodBase
	got := g.TotalWork() / p.MeanSpeed()
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("total compute time %v, want %v", got, want)
	}
}

func TestStreamZeroConfigUsesDefaults(t *testing.T) {
	r := rng.New(4)
	p := platform.Homogeneous(20, 1, 100)
	g := Stream(r, StreamConfig{}, p)
	if g.NumTasks() < 50 || g.NumTasks() > 150 {
		t.Fatalf("defaults not applied: v=%d", g.NumTasks())
	}
}

func TestStreamConnectedLayers(t *testing.T) {
	// Every non-entry task has at least one predecessor by construction.
	r := rng.New(5)
	p := platform.Homogeneous(20, 1, 100)
	g := Stream(r, DefaultStreamConfig(), p)
	entries := 0
	for i := 0; i < g.NumTasks(); i++ {
		if g.InDegree(dag.TaskID(i)) == 0 {
			entries++
		}
	}
	if entries == 0 || entries == g.NumTasks() {
		t.Fatalf("degenerate entry structure: %d entries of %d", entries, g.NumTasks())
	}
}

func TestChain(t *testing.T) {
	g := Chain(5, 2, 3)
	if g.NumTasks() != 5 || g.NumEdges() != 4 {
		t.Fatalf("chain: v=%d e=%d", g.NumTasks(), g.NumEdges())
	}
	if g.Depth() != 5 || g.Width() != 1 {
		t.Fatalf("chain shape: depth=%d width=%d", g.Depth(), g.Width())
	}
}

func TestForkJoin(t *testing.T) {
	g := ForkJoin(3, 2, 1, 1)
	if g.NumTasks() != 2+3*2 {
		t.Fatalf("forkjoin v=%d", g.NumTasks())
	}
	if len(g.Entries()) != 1 || len(g.Exits()) != 1 {
		t.Fatal("forkjoin must have single source and sink")
	}
	if g.Width() != 3 {
		t.Fatalf("forkjoin width=%d", g.Width())
	}
	if !g.IsSeriesParallel() {
		t.Fatal("forkjoin should be series-parallel")
	}
}

func TestInTree(t *testing.T) {
	g := InTree(3, 1, 1)
	if g.NumTasks() != 15 {
		t.Fatalf("intree v=%d", g.NumTasks())
	}
	if len(g.Exits()) != 1 {
		t.Fatal("intree must have one root exit")
	}
	if len(g.Entries()) != 8 {
		t.Fatalf("intree entries=%d", len(g.Entries()))
	}
	for i := 0; i < g.NumTasks(); i++ {
		if g.OutDegree(dag.TaskID(i)) > 1 {
			t.Fatal("intree out-degree must be ≤1")
		}
	}
}

func TestOutTree(t *testing.T) {
	g := OutTree(3, 1, 1)
	if g.NumTasks() != 15 || len(g.Entries()) != 1 || len(g.Exits()) != 8 {
		t.Fatalf("outtree shape wrong: v=%d", g.NumTasks())
	}
}

func TestButterfly(t *testing.T) {
	g := Butterfly(3, 1, 1)
	if g.NumTasks() != 4*8 {
		t.Fatalf("fft v=%d, want 32", g.NumTasks())
	}
	if g.NumEdges() != 3*8*2 {
		t.Fatalf("fft e=%d, want 48", g.NumEdges())
	}
	if g.Depth() != 4 {
		t.Fatalf("fft depth=%d", g.Depth())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianElimination(t *testing.T) {
	g := GaussianElimination(5, 1, 1)
	// pivots: 4; updates: 4+3+2+1 = 10
	if g.NumTasks() != 14 {
		t.Fatalf("gauss v=%d, want 14", g.NumTasks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Exits()) == 0 {
		t.Fatal("gauss must have exits")
	}
}

func TestStencil(t *testing.T) {
	g := Stencil(4, 3, 1, 1)
	if g.NumTasks() != 12 {
		t.Fatalf("stencil v=%d", g.NumTasks())
	}
	if g.Depth() != 3 {
		t.Fatalf("stencil depth=%d", g.Depth())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFig1(t *testing.T) {
	g := Fig1Graph()
	if g.NumTasks() != 4 || g.NumEdges() != 4 {
		t.Fatal("fig1 shape")
	}
	if g.TotalWork() != 60 {
		t.Fatalf("fig1 total work %v", g.TotalWork())
	}
	p := Fig1Platform()
	if p.NumProcs() != 4 || p.Speed(0) != 1.5 || p.Speed(1) != 1 {
		t.Fatal("fig1 platform")
	}
	// Critical path on the fastest processor: 60/1.5 = 40; the paper's
	// data-parallel scenario derives T = 2/40 from it.
	if got := g.TotalWork() / p.MaxSpeed(); got != 40 {
		t.Fatalf("fig1 single-proc time %v", got)
	}
}

func TestFig2(t *testing.T) {
	g := Fig2Graph()
	if g.NumTasks() != 7 || g.NumEdges() != 8 {
		t.Fatalf("fig2 shape: v=%d e=%d", g.NumTasks(), g.NumEdges())
	}
	if g.TotalWork() != 72 {
		t.Fatalf("fig2 total work %v", g.TotalWork())
	}
	es := g.Entries()
	xs := g.Exits()
	if len(es) != 1 || g.Task(es[0]).Name != "t1" {
		t.Fatalf("fig2 entry: %v", es)
	}
	if len(xs) != 1 || g.Task(xs[0]).Name != "t7" {
		t.Fatalf("fig2 exit: %v", xs)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateNoEdges(t *testing.T) {
	g := dag.New("edgeless")
	g.AddTask("a", 1)
	p := platform.Homogeneous(4, 1, 1)
	cfg := DefaultStreamConfig()
	Calibrate(g, p, cfg) // must not panic on infinite granularity
	want := cfg.ComputeFraction * 4 * cfg.PeriodBase
	if math.Abs(g.TotalWork()/p.MeanSpeed()-want) > 1e-9 {
		t.Fatal("work normalization skipped for edgeless graph")
	}
}

func TestStreamDeterministicPerSeed(t *testing.T) {
	p := platform.Homogeneous(20, 1, 100)
	g1 := Stream(rng.New(99), DefaultStreamConfig(), p)
	g2 := Stream(rng.New(99), DefaultStreamConfig(), p)
	if g1.NumTasks() != g2.NumTasks() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("generator not deterministic")
	}
	if g1.TotalWork() != g2.TotalWork() || g1.TotalVolume() != g2.TotalVolume() {
		t.Fatal("weights not deterministic")
	}
}
