package randgraph

import (
	"fmt"

	"streamsched/internal/dag"
)

// This file builds the regular task-graph topologies that recur across the
// pipelined-scheduling literature (the related work of §3 evaluates on
// several of them). They serve as deterministic fixtures for tests and as
// realistic example workloads.

// Chain returns a linear pipeline of n tasks.
func Chain(n int, work, volume float64) *dag.Graph {
	g := dag.New(fmt.Sprintf("chain-%d", n))
	prev := g.AddTask("t0", work)
	for i := 1; i < n; i++ {
		cur := g.AddTask(fmt.Sprintf("t%d", i), work)
		g.MustAddEdge(prev, cur, volume)
		prev = cur
	}
	return g
}

// ForkJoin returns source → width parallel branches of the given depth →
// sink.
func ForkJoin(width, depth int, work, volume float64) *dag.Graph {
	g := dag.New(fmt.Sprintf("forkjoin-%dx%d", width, depth))
	src := g.AddTask("src", work)
	snk := g.AddTask("sink", work)
	for b := 0; b < width; b++ {
		prev := src
		for d := 0; d < depth; d++ {
			cur := g.AddTask(fmt.Sprintf("b%d_%d", b, d), work)
			g.MustAddEdge(prev, cur, volume)
			prev = cur
		}
		g.MustAddEdge(prev, snk, volume)
	}
	return g
}

// InTree returns a complete binary in-tree of the given depth: 2^depth
// leaves flowing to a single root (an aggregation workload).
func InTree(depth int, work, volume float64) *dag.Graph {
	g := dag.New(fmt.Sprintf("intree-%d", depth))
	var build func(d int) dag.TaskID
	build = func(d int) dag.TaskID {
		id := g.AddTask(fmt.Sprintf("n%d", g.NumTasks()), work)
		if d > 0 {
			l := build(d - 1)
			r := build(d - 1)
			g.MustAddEdge(l, id, volume)
			g.MustAddEdge(r, id, volume)
		}
		return id
	}
	build(depth)
	return g
}

// OutTree returns a complete binary out-tree (a scatter workload).
func OutTree(depth int, work, volume float64) *dag.Graph {
	g := dag.New(fmt.Sprintf("outtree-%d", depth))
	var build func(d int) dag.TaskID
	build = func(d int) dag.TaskID {
		id := g.AddTask(fmt.Sprintf("n%d", g.NumTasks()), work)
		if d > 0 {
			l := build(d - 1)
			r := build(d - 1)
			g.MustAddEdge(id, l, volume)
			g.MustAddEdge(id, r, volume)
		}
		return id
	}
	build(depth)
	return g
}

// Butterfly returns the FFT dataflow graph on 2^k points: k+1 ranks of 2^k
// nodes with the classic butterfly wiring.
func Butterfly(k int, work, volume float64) *dag.Graph {
	n := 1 << uint(k)
	g := dag.New(fmt.Sprintf("fft-%d", n))
	ranks := make([][]dag.TaskID, k+1)
	for rk := 0; rk <= k; rk++ {
		ranks[rk] = make([]dag.TaskID, n)
		for i := 0; i < n; i++ {
			ranks[rk][i] = g.AddTask(fmt.Sprintf("r%d_%d", rk, i), work)
		}
	}
	for rk := 1; rk <= k; rk++ {
		span := 1 << uint(rk-1)
		for i := 0; i < n; i++ {
			g.MustAddEdge(ranks[rk-1][i], ranks[rk][i], volume)
			g.MustAddEdge(ranks[rk-1][i^span], ranks[rk][i], volume)
		}
	}
	return g
}

// GaussianElimination returns the task graph of Gaussian elimination on an
// n×n matrix: for each pivot step k, a pivot task feeds n−k−1 update tasks,
// which feed the next pivot.
func GaussianElimination(n int, work, volume float64) *dag.Graph {
	g := dag.New(fmt.Sprintf("gauss-%d", n))
	var prevUpdates []dag.TaskID
	var prevPivot dag.TaskID = -1
	for k := 0; k < n-1; k++ {
		pivot := g.AddTask(fmt.Sprintf("piv%d", k), work)
		if prevPivot >= 0 {
			g.MustAddEdge(prevPivot, pivot, volume)
		}
		for _, u := range prevUpdates {
			g.MustAddEdge(u, pivot, volume)
		}
		var updates []dag.TaskID
		for j := k + 1; j < n; j++ {
			u := g.AddTask(fmt.Sprintf("upd%d_%d", k, j), work)
			g.MustAddEdge(pivot, u, volume)
			updates = append(updates, u)
		}
		prevUpdates = updates
		prevPivot = pivot
	}
	return g
}

// Stencil returns a 1-D stencil sweep: width columns × steps rows, each
// node depending on its neighbours in the previous row.
func Stencil(width, steps int, work, volume float64) *dag.Graph {
	g := dag.New(fmt.Sprintf("stencil-%dx%d", width, steps))
	prev := make([]dag.TaskID, width)
	for i := 0; i < width; i++ {
		prev[i] = g.AddTask(fmt.Sprintf("s0_%d", i), work)
	}
	for s := 1; s < steps; s++ {
		cur := make([]dag.TaskID, width)
		for i := 0; i < width; i++ {
			cur[i] = g.AddTask(fmt.Sprintf("s%d_%d", s, i), work)
			for _, j := range []int{i - 1, i, i + 1} {
				if j >= 0 && j < width {
					g.MustAddEdge(prev[j], cur[i], volume)
				}
			}
		}
		prev = cur
	}
	return g
}
