// Package sim executes a replicated pipelined schedule on a simulated
// platform and measures what the paper calls "the real execution time for a
// given schedule rather than just bounds" (§5): data items are injected
// every Δ time units, every replica instance runs when its inputs have
// arrived, transfers contend for the one-port send/receive ports, and
// processors can crash (fail-silent: a faulty processor produces no output;
// fail-stop: no recovery).
//
// The engine is a classic discrete-event simulation. Contention is resolved
// dynamically with deterministic arbitration (earlier item first, then the
// static schedule's ordering), so the measured latency is typically below
// the (2S−1)·Δ bound — which is exactly the gap between the "UpperBound" and
// "With 0 Crash" curves of Figures 3 and 4.
//
// Failure semantics (documented choices where the paper is silent):
//   - a processor failed at time τ starts nothing at or after τ, and any
//     computation or transfer in flight at τ is lost;
//   - failures are detectable (fail-stop), so a consumer does not block on
//     inputs from dead sources: it starts once every input that can still
//     arrive has arrived, provided at least one valid input per predecessor
//     task did — otherwise the instance itself becomes invalid and the
//     failure cascades;
//   - transfers towards dead processors are skipped (detection reaches the
//     sender before the send is scheduled).
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
	"streamsched/internal/trace"
)

// FailureSpec injects fail-silent/fail-stop processor crashes.
type FailureSpec struct {
	// Procs lists the processors that fail.
	Procs []platform.ProcID
	// At is the failure time; 0 means the processors are dead from the
	// start (the paper's crash experiments).
	At float64
}

// Config controls a simulation run.
type Config struct {
	// Items is the number of data items streamed through the pipeline.
	Items int
	// Warmup is the number of leading items excluded from the latency
	// statistics (pipeline fill).
	Warmup int
	// Failures optionally injects processor crashes.
	Failures FailureSpec
	// Synchronous selects the paper's stage-synchronized pipeline semantics
	// (after Hary & Özgüner): for item k, a stage-σ replica computes no
	// earlier than cycle (k + 2(σ−1))·Δ and its cross-processor outputs
	// transfer no earlier than cycle (k + 2σ−1)·Δ, so the measured latency
	// approaches the (2S−1)·Δ bound from below and crashes surface as whole
	// extra cycles when a surviving exit replica sits in a deeper stage.
	// The default (false) is free-running dataflow execution: every
	// instance starts as soon as its inputs and resources allow.
	Synchronous bool
	// TraceItems, when positive, records the executions and transfers of
	// the first TraceItems data items in Result.Trace (exportable to the
	// Chrome trace-event format via internal/trace).
	TraceItems int
}

// DefaultConfig sizes a run for schedule s: enough items to fill the
// pipeline plus a measurement window.
func DefaultConfig(s *schedule.Schedule) Config {
	st := s.Stages()
	return Config{Items: 3*st + 40, Warmup: 2*st + 5}
}

// Result reports the measured behaviour.
type Result struct {
	// Latencies holds the end-to-end latency of each measured (post-warmup,
	// delivered) item: completion of every exit task minus injection time.
	Latencies []float64
	// MeanLatency and MaxLatency summarize Latencies (NaN when empty).
	MeanLatency float64
	MaxLatency  float64
	// AchievedPeriod is the mean inter-delivery time over measured items.
	AchievedPeriod float64
	// Delivered counts items for which every exit task produced a valid
	// result; Items is the total injected.
	Delivered int
	Items     int
	// Trace holds the recorded execution spans (see Config.TraceItems).
	Trace []trace.Span
}

// instKey identifies one replica instance: replica ref × item index.
type instKey struct {
	ref  schedule.Ref
	item int
}

type instState int

const (
	instPending instState = iota
	instQueued
	instRunning
	instDone
	instFailed
)

// instance is the runtime state of one replica execution for one item.
type instance struct {
	key   instKey
	rep   *schedule.Replica
	state instState
	// outstanding[p] counts inputs from predecessor task p that may still
	// arrive; arrived[p] counts valid inputs already received.
	outstanding map[dag.TaskID]int
	arrived     map[dag.TaskID]int
	finish      float64
}

// pendingComm is a transfer waiting for its two ports.
type pendingComm struct {
	srcProc, dstProc platform.ProcID
	dur              float64
	dst              instKey
	predTask         dag.TaskID
	item             int
	staticStart      float64
	srcRef           schedule.Ref
	// earliest is the synchronous-mode cycle gate (0 in dataflow mode).
	earliest float64
	woken    bool
}

// event is a timed simulator event.
type event struct {
	time float64
	seq  int
	kind eventKind
	inst instKey     // execComplete
	comm *activeComm // commComplete
	item int         // injection
	idx  int         // heap bookkeeping
}

type eventKind int

const (
	evInject eventKind = iota
	evFailure
	evExecComplete
	evCommComplete
	// evWake carries no payload; it re-runs the dispatcher when a
	// synchronous-mode cycle window opens.
	evWake
)

type activeComm struct {
	pc        pendingComm
	cancelled bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx, q[j].idx = i, j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// engine holds the full simulation state.
type engine struct {
	s   *schedule.Schedule
	cfg Config

	events eventQueue
	seq    int
	now    float64

	insts map[instKey]*instance
	// outs[ref] lists the consumers of replica ref with the edge volume.
	outs map[schedule.Ref][]outLink

	cpuBusy  []bool
	cpuQueue [][]instKey
	sendBusy []bool
	recvBusy []bool
	pending  []pendingComm
	// pendingDirty marks that pending gained entries since the last sort;
	// the sort keys are static, so an unchanged list stays sorted.
	pendingDirty bool
	deadFrom     []float64 // +Inf = never fails
	// Active transfers per port, for crash cancellation.
	sendComm map[platform.ProcID]*activeComm
	recvComm map[platform.ProcID]*activeComm

	// exitDone[item][task] = completion time of the first valid exit
	// replica of that exit task.
	exitDone  []map[dag.TaskID]float64
	exitTasks []dag.TaskID

	// stages holds per-replica pipeline stage numbers (synchronous mode).
	stages map[schedule.Ref]int
	// woken de-duplicates wake events per (instance, gate time).
	woken map[instKey]bool
	// spans records traced activity (Config.TraceItems).
	spans []trace.Span
}

type outLink struct {
	dst    schedule.Ref
	volume float64
}

// Run simulates the schedule under cfg and returns the measurements. A
// cancelled ctx aborts the event loop with ctx.Err().
func Run(ctx context.Context, s *schedule.Schedule, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !s.Complete() {
		return nil, fmt.Errorf("sim: schedule incomplete")
	}
	if cfg.Items <= 0 {
		cfg = DefaultConfig(s)
	}
	if cfg.Warmup >= cfg.Items {
		cfg.Warmup = cfg.Items / 2
	}
	m := s.P.NumProcs()
	e := &engine{
		s:         s,
		cfg:       cfg,
		insts:     make(map[instKey]*instance),
		outs:      make(map[schedule.Ref][]outLink),
		cpuBusy:   make([]bool, m),
		cpuQueue:  make([][]instKey, m),
		sendBusy:  make([]bool, m),
		recvBusy:  make([]bool, m),
		deadFrom:  make([]float64, m),
		sendComm:  make(map[platform.ProcID]*activeComm),
		recvComm:  make(map[platform.ProcID]*activeComm),
		exitDone:  make([]map[dag.TaskID]float64, cfg.Items),
		exitTasks: s.G.Exits(),
	}
	for u := range e.deadFrom {
		e.deadFrom[u] = math.Inf(1)
	}
	if cfg.Synchronous {
		e.stages = s.StageNumbers()
		e.woken = make(map[instKey]bool)
	}
	for k := range e.exitDone {
		e.exitDone[k] = make(map[dag.TaskID]float64)
	}
	for _, r := range s.All() {
		for _, c := range r.In {
			e.outs[c.From] = append(e.outs[c.From], outLink{dst: r.Ref, volume: c.Volume})
		}
	}
	// Deterministic out-link order.
	for ref := range e.outs {
		links := e.outs[ref]
		sort.Slice(links, func(i, j int) bool {
			if links[i].dst.Task != links[j].dst.Task {
				return links[i].dst.Task < links[j].dst.Task
			}
			return links[i].dst.Copy < links[j].dst.Copy
		})
	}

	for k := 0; k < cfg.Items; k++ {
		e.push(float64(k)*s.Period, evInject, instKey{}, nil, k)
	}
	if len(cfg.Failures.Procs) > 0 {
		e.push(cfg.Failures.At, evFailure, instKey{}, nil, 0)
	}
	if err := e.loop(ctx); err != nil {
		return nil, err
	}
	return e.result(), nil
}

func (e *engine) push(t float64, kind eventKind, inst instKey, comm *activeComm, item int) {
	e.seq++
	heap.Push(&e.events, &event{time: t, seq: e.seq, kind: kind, inst: inst, comm: comm, item: item})
}

// inst returns (creating lazily) the instance for key.
func (e *engine) instFor(key instKey) *instance {
	if in, ok := e.insts[key]; ok {
		return in
	}
	rep := e.s.Replica(key.ref)
	in := &instance{
		key:         key,
		rep:         rep,
		outstanding: make(map[dag.TaskID]int),
		arrived:     make(map[dag.TaskID]int),
	}
	for _, c := range rep.In {
		in.outstanding[c.From.Task]++
	}
	e.insts[key] = in
	return in
}

func (e *engine) loop(ctx context.Context) error {
	// Poll cancellation every 1024 events: cheap enough to keep the hot
	// loop unaffected, frequent enough to abort long runs promptly.
	const pollMask = 1024 - 1
	for n := 0; e.events.Len() > 0; n++ {
		if n&pollMask == pollMask {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.time
		switch ev.kind {
		case evInject:
			e.inject(ev.item)
		case evFailure:
			e.failProcs()
		case evExecComplete:
			e.execComplete(ev)
		case evCommComplete:
			e.commComplete(ev)
		case evWake:
			// dispatch below is the whole effect
		}
		e.dispatch()
	}
	return nil
}

func (e *engine) inject(item int) {
	for _, t := range e.s.G.Entries() {
		for _, ref := range schedule.ReplicaRefs(t, e.s.Eps) {
			in := e.instFor(instKey{ref: ref, item: item})
			e.tryEnqueue(in)
		}
	}
}

// dead reports whether processor u is dead at the current time.
func (e *engine) dead(u platform.ProcID) bool { return e.now >= e.deadFrom[u] }

// tryEnqueue moves a pending instance to its processor's ready queue when
// its inputs are complete, or fails it when they can never be.
func (e *engine) tryEnqueue(in *instance) {
	if in.state != instPending {
		return
	}
	if e.dead(in.rep.Proc) {
		e.failInstance(in)
		return
	}
	// Doomed check first (an exhausted predecessor with no valid arrival can
	// never be satisfied), then wait on in-flight inputs. Checking all
	// predecessors keeps the cascade order independent of map iteration.
	waiting := false
	for p, n := range in.outstanding {
		if n == 0 && in.arrived[p] == 0 {
			e.failInstance(in)
			return
		}
		if n > 0 {
			waiting = true
		}
	}
	if waiting {
		return
	}
	in.state = instQueued
	u := in.rep.Proc
	e.cpuQueue[u] = append(e.cpuQueue[u], in.key)
}

// failInstance marks an instance invalid and cascades to its consumers.
func (e *engine) failInstance(in *instance) {
	if in.state == instFailed || in.state == instDone {
		return
	}
	in.state = instFailed
	for _, link := range e.outs[in.key.ref] {
		dst := e.instFor(instKey{ref: link.dst, item: in.key.item})
		if dst.state != instPending {
			continue
		}
		dst.outstanding[in.key.ref.Task]--
		e.tryEnqueue(dst)
	}
}

// dispatch starts any work that can start now: CPU executions and pending
// transfers whose two ports are free.
func (e *engine) dispatch() {
	for u := range e.cpuBusy {
		pu := platform.ProcID(u)
		if e.cpuBusy[u] || len(e.cpuQueue[u]) == 0 || e.dead(pu) {
			continue
		}
		// Deterministic priority among eligible instances: earliest item,
		// then static start time, then ref order. In synchronous mode an
		// instance only becomes eligible once its cycle window opens.
		q := e.cpuQueue[u]
		best := -1
		for i := 0; i < len(q); i++ {
			if e.cfg.Synchronous {
				if gate := e.cycleGate(q[i]); gate > e.now {
					e.wakeAt(q[i], gate)
					continue
				}
			}
			if best < 0 || e.instLess(q[i], q[best]) {
				best = i
			}
		}
		if best < 0 {
			continue
		}
		key := q[best]
		e.cpuQueue[u] = append(q[:best], q[best+1:]...)
		in := e.insts[key]
		in.state = instRunning
		e.cpuBusy[u] = true
		dur := e.s.P.ExecTime(e.s.G.Task(key.ref.Task).Work, pu)
		e.push(e.now+dur, evExecComplete, key, nil, key.item)
	}
	// Port dispatch: sort pending deterministically, grant greedily.
	if len(e.pending) > 0 {
		if e.pendingDirty {
			sort.SliceStable(e.pending, func(i, j int) bool { return e.commLess(e.pending[i], e.pending[j]) })
			e.pendingDirty = false
		}
		remaining := e.pending[:0]
		for _, pc := range e.pending {
			if e.dead(pc.dstProc) {
				e.failInstance(e.instFor(pc.dst))
				continue
			}
			if e.dead(pc.srcProc) {
				// Lost transfer: the consumer will not get this input.
				dst := e.instFor(pc.dst)
				if dst.state == instPending {
					dst.outstanding[pc.predTask]--
					e.tryEnqueue(dst)
				}
				continue
			}
			if pc.earliest > e.now {
				if !pc.woken {
					pc.woken = true
					e.push(pc.earliest, evWake, instKey{}, nil, pc.item)
				}
				remaining = append(remaining, pc)
				continue
			}
			if !e.sendBusy[pc.srcProc] && !e.recvBusy[pc.dstProc] {
				e.sendBusy[pc.srcProc] = true
				e.recvBusy[pc.dstProc] = true
				ac := &activeComm{pc: pc}
				e.sendComm[pc.srcProc] = ac
				e.recvComm[pc.dstProc] = ac
				e.push(e.now+pc.dur, evCommComplete, instKey{}, ac, pc.item)
			} else {
				remaining = append(remaining, pc)
			}
		}
		e.pending = remaining
	}
}

// cycleGate returns the earliest synchronous start time of an instance.
func (e *engine) cycleGate(key instKey) float64 {
	return float64(key.item+2*(e.stages[key.ref]-1)) * e.s.Period
}

// wakeAt schedules a dispatcher wake-up for a gated instance, once.
func (e *engine) wakeAt(key instKey, gate float64) {
	if e.woken[key] {
		return
	}
	e.woken[key] = true
	e.push(gate, evWake, instKey{}, nil, key.item)
}

func (e *engine) instLess(a, b instKey) bool {
	if a.item != b.item {
		return a.item < b.item
	}
	ra, rb := e.s.Replica(a.ref), e.s.Replica(b.ref)
	if ra.Start != rb.Start {
		return ra.Start < rb.Start
	}
	if a.ref.Task != b.ref.Task {
		return a.ref.Task < b.ref.Task
	}
	return a.ref.Copy < b.ref.Copy
}

func (e *engine) commLess(a, b pendingComm) bool {
	if a.item != b.item {
		return a.item < b.item
	}
	if a.staticStart != b.staticStart {
		return a.staticStart < b.staticStart
	}
	if a.srcRef.Task != b.srcRef.Task {
		return a.srcRef.Task < b.srcRef.Task
	}
	return a.srcRef.Copy < b.srcRef.Copy
}

func (e *engine) execComplete(ev *event) {
	in := e.insts[ev.inst]
	if in == nil || in.state != instRunning {
		return
	}
	u := in.rep.Proc
	if e.dead(u) {
		// The failure event already handled this instance.
		return
	}
	in.state = instDone
	in.finish = e.now
	e.cpuBusy[u] = false
	if in.key.item < e.cfg.TraceItems {
		dur := e.s.P.ExecTime(e.s.G.Task(in.key.ref.Task).Work, u)
		e.spans = append(e.spans, trace.Span{
			Name:  fmt.Sprintf("%s(%d)#%d", e.s.G.Task(in.key.ref.Task).Name, in.key.ref.Copy+1, in.key.item),
			Lane:  fmt.Sprintf("P%d", u+1),
			Start: e.now - dur,
			End:   e.now,
			Args:  map[string]any{"item": in.key.item, "task": int(in.key.ref.Task), "copy": in.key.ref.Copy},
		})
	}

	// Record exit completions.
	if e.s.G.OutDegree(in.key.ref.Task) == 0 {
		done := e.exitDone[in.key.item]
		if _, ok := done[in.key.ref.Task]; !ok {
			done[in.key.ref.Task] = e.now
		}
	}

	// Emit outputs.
	for _, link := range e.outs[in.key.ref] {
		dst := e.instFor(instKey{ref: link.dst, item: in.key.item})
		if dst.state != instPending {
			continue
		}
		dstProc := dst.rep.Proc
		if e.dead(dstProc) {
			e.failInstance(dst)
			continue
		}
		if dstProc == u || link.volume == 0 {
			dst.outstanding[in.key.ref.Task]--
			dst.arrived[in.key.ref.Task]++
			e.tryEnqueue(dst)
			continue
		}
		pc := pendingComm{
			srcProc:     u,
			dstProc:     dstProc,
			dur:         e.s.P.CommTime(link.volume, u, dstProc),
			dst:         dst.key,
			predTask:    in.key.ref.Task,
			item:        in.key.item,
			staticStart: in.rep.Finish,
			srcRef:      in.key.ref,
		}
		if e.cfg.Synchronous {
			// Cross-stage transfers wait for the communication cycle
			// following the source's compute cycle.
			pc.earliest = float64(in.key.item+2*e.stages[in.key.ref]-1) * e.s.Period
		}
		e.pending = append(e.pending, pc)
		e.pendingDirty = true
	}
}

func (e *engine) commComplete(ev *event) {
	ac := ev.comm
	if ac.cancelled {
		return
	}
	pc := ac.pc
	e.sendBusy[pc.srcProc] = false
	e.recvBusy[pc.dstProc] = false
	delete(e.sendComm, pc.srcProc)
	delete(e.recvComm, pc.dstProc)
	if pc.item < e.cfg.TraceItems {
		name := fmt.Sprintf("%v→t%d#%d", pc.srcRef, pc.dst.ref.Task, pc.item)
		args := map[string]any{"item": pc.item}
		e.spans = append(e.spans,
			trace.Span{Name: name, Lane: fmt.Sprintf("P%d:send", pc.srcProc+1), Start: e.now - pc.dur, End: e.now, Args: args},
			trace.Span{Name: name, Lane: fmt.Sprintf("P%d:recv", pc.dstProc+1), Start: e.now - pc.dur, End: e.now, Args: args})
	}
	dst := e.instFor(pc.dst)
	if dst.state != instPending {
		return
	}
	dst.outstanding[pc.predTask]--
	dst.arrived[pc.predTask]++
	e.tryEnqueue(dst)
}

// failProcs applies the failure spec at the current time.
func (e *engine) failProcs() {
	for _, u := range e.cfg.Failures.Procs {
		e.deadFrom[u] = e.now
	}
	for _, u := range e.cfg.Failures.Procs {
		// In-flight computation on u is lost (the instance is failed below).
		e.cpuBusy[u] = false
		// Kill in-flight transfers touching u and free the peer's port.
		for _, ac := range []*activeComm{e.sendComm[u], e.recvComm[u]} {
			if ac == nil || ac.cancelled {
				continue
			}
			ac.cancelled = true
			e.sendBusy[ac.pc.srcProc] = false
			e.recvBusy[ac.pc.dstProc] = false
			delete(e.sendComm, ac.pc.srcProc)
			delete(e.recvComm, ac.pc.dstProc)
			dst := e.instFor(ac.pc.dst)
			if dst.state == instPending {
				dst.outstanding[ac.pc.predTask]--
				e.tryEnqueue(dst)
			}
		}
		// Fail every instance bound to u: running, queued, and all future
		// instances (created lazily — mark existing ones now; lazily
		// created ones fail in tryEnqueue via the dead check).
		for _, in := range e.instsOn(u) {
			e.failInstance(in)
		}
		e.cpuQueue[u] = nil
	}
}

func (e *engine) instsOn(u platform.ProcID) []*instance {
	var out []*instance
	for _, in := range e.insts {
		if in.rep.Proc == u && (in.state == instPending || in.state == instQueued || in.state == instRunning) {
			out = append(out, in)
		}
	}
	// Deterministic order for the cascade.
	sort.Slice(out, func(i, j int) bool {
		if out[i].key.item != out[j].key.item {
			return out[i].key.item < out[j].key.item
		}
		if out[i].key.ref.Task != out[j].key.ref.Task {
			return out[i].key.ref.Task < out[j].key.ref.Task
		}
		return out[i].key.ref.Copy < out[j].key.ref.Copy
	})
	return out
}

func (e *engine) result() *Result {
	res := &Result{Items: e.cfg.Items, Trace: e.spans}
	var completions []float64
	for k := 0; k < e.cfg.Items; k++ {
		done := e.exitDone[k]
		if len(done) != len(e.exitTasks) {
			continue // undelivered
		}
		res.Delivered++
		latest := 0.0
		for _, t := range e.exitTasks {
			if done[t] > latest {
				latest = done[t]
			}
		}
		if k >= e.cfg.Warmup {
			res.Latencies = append(res.Latencies, latest-float64(k)*e.s.Period)
			completions = append(completions, latest)
		}
	}
	if len(res.Latencies) == 0 {
		res.MeanLatency = math.NaN()
		res.MaxLatency = math.NaN()
		res.AchievedPeriod = math.NaN()
		return res
	}
	sum, max := 0.0, 0.0
	for _, l := range res.Latencies {
		sum += l
		if l > max {
			max = l
		}
	}
	res.MeanLatency = sum / float64(len(res.Latencies))
	res.MaxLatency = max
	if len(completions) > 1 {
		res.AchievedPeriod = (completions[len(completions)-1] - completions[0]) / float64(len(completions)-1)
	} else {
		res.AchievedPeriod = math.NaN()
	}
	return res
}
