// Package sim executes a replicated pipelined schedule on a simulated
// platform and measures what the paper calls "the real execution time for a
// given schedule rather than just bounds" (§5): data items are injected
// every Δ time units, every replica instance runs when its inputs have
// arrived, transfers contend for the one-port send/receive ports, and
// processors can crash (fail-silent: a faulty processor produces no output;
// fail-stop: no recovery).
//
// The engine is a classic discrete-event simulation. Contention is resolved
// dynamically with deterministic arbitration (earlier item first, then the
// static schedule's ordering), so the measured latency is typically below
// the (2S−1)·Δ bound — which is exactly the gap between the "UpperBound" and
// "With 0 Crash" curves of Figures 3 and 4.
//
// Failure semantics (documented choices where the paper is silent):
//   - a processor failed at time τ starts nothing at or after τ, and any
//     computation or transfer in flight at τ is lost;
//   - failures are detectable (fail-stop), so a consumer does not block on
//     inputs from dead sources: it starts once every input that can still
//     arrive has arrived, provided at least one valid input per predecessor
//     task did — otherwise the instance itself becomes invalid and the
//     failure cascades;
//   - transfers towards dead processors are skipped (detection reaches the
//     sender before the send is scheduled).
//
// The implementation is flat and allocation-light: replica instances live in
// dense slices indexed by a precomputed replica index × a recycled item ring
// (only a pipeline-depth window of items is ever live), events are values in
// a 4-ary heap, and dispatch is incremental — per-processor ready heaps, a
// dirty-processor worklist and per-port pending queues mean an event only
// touches the state it could have changed. The per-schedule static tables
// (exec durations, out-link fan-out, transfer durations, arbitration ranks)
// are built once by NewEngine and shared across runs, so experiment
// campaigns reuse one Engine for every scenario of a schedule.
package sim

import (
	"context"

	"streamsched/internal/platform"
	"streamsched/internal/schedule"
	"streamsched/internal/trace"
)

// FailureSpec injects fail-silent/fail-stop processor crashes.
type FailureSpec struct {
	// Procs lists the processors that fail.
	Procs []platform.ProcID
	// At is the failure time; 0 means the processors are dead from the
	// start (the paper's crash experiments).
	At float64
}

// Config controls a simulation run.
type Config struct {
	// Items is the number of data items streamed through the pipeline.
	Items int
	// Warmup is the number of leading items excluded from the latency
	// statistics (pipeline fill).
	Warmup int
	// Failures optionally injects processor crashes.
	Failures FailureSpec
	// Synchronous selects the paper's stage-synchronized pipeline semantics
	// (after Hary & Özgüner): for item k, a stage-σ replica computes no
	// earlier than cycle (k + 2(σ−1))·Δ and its cross-processor outputs
	// transfer no earlier than cycle (k + 2σ−1)·Δ, so the measured latency
	// approaches the (2S−1)·Δ bound from below and crashes surface as whole
	// extra cycles when a surviving exit replica sits in a deeper stage.
	// The default (false) is free-running dataflow execution: every
	// instance starts as soon as its inputs and resources allow.
	Synchronous bool
	// TraceItems, when positive, records the executions and transfers of
	// the first TraceItems data items in Result.Trace (exportable to the
	// Chrome trace-event format via internal/trace).
	TraceItems int
}

// DefaultConfig sizes a run for schedule s: enough items to fill the
// pipeline plus a measurement window.
func DefaultConfig(s *schedule.Schedule) Config {
	st := s.Stages()
	return Config{Items: 3*st + 40, Warmup: 2*st + 5}
}

// Result reports the measured behaviour.
type Result struct {
	// Latencies holds the end-to-end latency of each measured (post-warmup,
	// delivered) item: completion of every exit task minus injection time.
	Latencies []float64
	// MeanLatency and MaxLatency summarize Latencies (NaN when empty).
	MeanLatency float64
	MaxLatency  float64
	// AchievedPeriod is the mean inter-delivery time over measured items.
	AchievedPeriod float64
	// Delivered counts items for which every exit task produced a valid
	// result; Items is the total injected.
	Delivered int
	Items     int
	// Trace holds the recorded execution spans (see Config.TraceItems).
	Trace []trace.Span
}

// Run simulates the schedule under cfg and returns the measurements. A
// cancelled ctx aborts the event loop with ctx.Err().
//
// Run builds a fresh Engine per call; callers simulating the same schedule
// under several configurations (the experiment campaigns) should build one
// Engine with NewEngine and call its Run repeatedly to reuse the derived
// schedule tables and the simulation state buffers.
func Run(ctx context.Context, s *schedule.Schedule, cfg Config) (*Result, error) {
	e, err := NewEngine(s)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, cfg)
}
