package sim

import (
	"context"
	"math"
	"reflect"
	"testing"

	"streamsched/internal/platform"
	"streamsched/internal/rltf"
	"streamsched/internal/rng"
	"streamsched/internal/schedule"
)

// TestEngineReuseMatchesFreshRuns drives one Engine through every scenario
// shape back to back (dataflow, synchronous, crash, trace) and checks each
// result equals a fresh package-level Run: buffer recycling must not leak
// state between runs.
func TestEngineReuseMatchesFreshRuns(t *testing.T) {
	r := rng.New(91)
	g := randomDAG(r, 18)
	p := platform.RandomHeterogeneous(r, 8, 0.5, 1, 0.5, 1, 10)
	s, err := rltf.Schedule(context.Background(), g, p, 1, 18, rltf.Options{})
	if err != nil {
		t.Skip("infeasible instance")
	}
	eng, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{Items: 30, Warmup: 5},
		{Items: 30, Warmup: 5, Synchronous: true},
		{Items: 30, Warmup: 5, Failures: FailureSpec{Procs: []platform.ProcID{2}}},
		{Items: 30, Warmup: 5, TraceItems: 2},
		{Items: 30, Warmup: 5}, // repeat the first: trace state must not linger
		{Items: 40, Warmup: 5, Synchronous: true, Failures: FailureSpec{Procs: []platform.ProcID{1}, At: 90}},
	}
	for i, cfg := range cfgs {
		got, err := eng.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		want, err := Run(context.Background(), s, cfg)
		if err != nil {
			t.Fatalf("cfg %d fresh: %v", i, err)
		}
		if !sameResult(got, want) {
			t.Fatalf("cfg %d: reused engine diverges from fresh run:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func sameResult(a, b *Result) bool {
	eq := func(x, y float64) bool { return x == y || (math.IsNaN(x) && math.IsNaN(y)) }
	return a.Delivered == b.Delivered && a.Items == b.Items &&
		eq(a.MeanLatency, b.MeanLatency) && eq(a.MaxLatency, b.MaxLatency) &&
		eq(a.AchievedPeriod, b.AchievedPeriod) &&
		reflect.DeepEqual(a.Latencies, b.Latencies) &&
		reflect.DeepEqual(a.Trace, b.Trace)
}

// TestRingGrowth overloads one processor so the item backlog outgrows the
// initial pipeline-depth window: the item ring must expand and still deliver
// every item with the analytically known latencies.
func TestRingGrowth(t *testing.T) {
	// Two unit tasks, both on P0, co-located (zero volume), period 0.5: each
	// item needs 2 time units of P0 but items arrive every 0.5, so the
	// backlog — and the live-item window — grows linearly. Dispatch order is
	// earliest item first, so item k completes at 2k+2.
	g := chain(2, 1, 0)
	p := platform.Homogeneous(1, 1, 1)
	s := schedule.New(g, p, 0, 0.5, "manual")
	s.AddReplica(&schedule.Replica{Ref: schedule.Ref{Task: 0, Copy: 0}, Proc: 0, Start: 0, Finish: 1})
	s.AddReplica(&schedule.Replica{Ref: schedule.Ref{Task: 1, Copy: 0}, Proc: 0, Start: 1, Finish: 2,
		In: []schedule.Comm{{From: schedule.Ref{Task: 0, Copy: 0}, Volume: 0, Start: 1, Finish: 1}}})

	const items = 64
	res, err := Run(context.Background(), s, Config{Items: items, Warmup: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != items {
		t.Fatalf("delivered %d/%d", res.Delivered, items)
	}
	for k, lat := range res.Latencies {
		want := float64(2*k+2) - 0.5*float64(k)
		if math.Abs(lat-want) > 1e-9 {
			t.Fatalf("item %d latency = %v, want %v", k, lat, want)
		}
	}
}
