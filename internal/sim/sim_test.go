package sim

import (
	"context"
	"math"
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/ltf"
	"streamsched/internal/platform"
	"streamsched/internal/rltf"
	"streamsched/internal/rng"
	"streamsched/internal/schedule"
)

func chain(n int, work, vol float64) *dag.Graph {
	g := dag.New("chain")
	prev := g.AddTask("t0", work)
	for i := 1; i < n; i++ {
		cur := g.AddTask("t", work)
		g.MustAddEdge(prev, cur, vol)
		prev = cur
	}
	return g
}

func randomDAG(r *rng.Source, n int) *dag.Graph {
	g := dag.New("rand")
	for i := 0; i < n; i++ {
		g.AddTask("t", r.Uniform(0.5, 1.5))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(2.0 / float64(n)) {
				g.MustAddEdge(dag.TaskID(i), dag.TaskID(j), r.Uniform(0.1, 1))
			}
		}
	}
	return g
}

// manualChain builds a 2-proc, ε=0 pipelined schedule by hand:
// a@P0 [0,1), comm [1,2), b@P1 [2,3); period 2.
func manualChain(t *testing.T) *schedule.Schedule {
	t.Helper()
	g := chain(2, 1, 2)
	p := platform.Homogeneous(2, 1, 2)
	s := schedule.New(g, p, 0, 2, "manual")
	s.AddReplica(&schedule.Replica{Ref: schedule.Ref{Task: 0, Copy: 0}, Proc: 0, Start: 0, Finish: 1})
	s.AddReplica(&schedule.Replica{Ref: schedule.Ref{Task: 1, Copy: 0}, Proc: 1, Start: 2, Finish: 3,
		In: []schedule.Comm{{From: schedule.Ref{Task: 0, Copy: 0}, Volume: 2, Start: 1, Finish: 2}}})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestManualChainSteadyState(t *testing.T) {
	s := manualChain(t)
	res, err := Run(context.Background(), s, Config{Items: 50, Warmup: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 50 {
		t.Fatalf("delivered %d/50", res.Delivered)
	}
	// Per-item latency: 1 (exec a) + 1 (comm) + 1 (exec b) = 3 — each item
	// flows without contention because the period (2) covers each resource's
	// per-item usage (1).
	if math.Abs(res.MeanLatency-3) > 1e-9 {
		t.Fatalf("mean latency = %v, want 3", res.MeanLatency)
	}
	// Steady-state completion rate = one item per period.
	if math.Abs(res.AchievedPeriod-2) > 1e-9 {
		t.Fatalf("achieved period = %v, want 2", res.AchievedPeriod)
	}
}

func TestLatencyBelowBound(t *testing.T) {
	// Measured 0-crash latency never exceeds the (2S−1)Δ bound.
	r := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		g := randomDAG(r, 10+r.IntN(20))
		p := platform.RandomHeterogeneous(r, 8, 0.5, 1, 0.5, 1, 10)
		s, err := rltf.Schedule(context.Background(), g, p, 1, 20, rltf.Options{})
		if err != nil {
			continue
		}
		res, err := Run(context.Background(), s, DefaultConfig(s))
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != res.Items {
			t.Fatalf("trial %d: only %d/%d delivered without failures", trial, res.Delivered, res.Items)
		}
		if res.MaxLatency > s.LatencyBound()+1e-6 {
			t.Fatalf("trial %d: measured %v exceeds bound %v", trial, res.MaxLatency, s.LatencyBound())
		}
	}
}

func TestCrashWithinToleranceStillDelivers(t *testing.T) {
	r := rng.New(17)
	delivered := 0
	for trial := 0; trial < 10; trial++ {
		g := randomDAG(r, 15)
		p := platform.RandomHeterogeneous(r, 8, 0.5, 1, 0.5, 1, 10)
		s, err := ltf.Schedule(context.Background(), g, p, 1, 25, ltf.Options{})
		if err != nil {
			continue
		}
		crash := platform.ProcID(r.IntN(8))
		res, err := Run(context.Background(), s, Config{Items: 30, Warmup: 5,
			Failures: FailureSpec{Procs: []platform.ProcID{crash}}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != res.Items {
			t.Fatalf("trial %d: crash of P%d lost items: %d/%d",
				trial, crash+1, res.Delivered, res.Items)
		}
		delivered++
	}
	if delivered == 0 {
		t.Skip("all instances infeasible")
	}
}

func TestCrashBeyondToleranceMayLoseItems(t *testing.T) {
	// ε=0 schedule with its only processor for a task crashed: nothing is
	// delivered.
	s := manualChain(t)
	res, err := Run(context.Background(), s, Config{Items: 20, Warmup: 0,
		Failures: FailureSpec{Procs: []platform.ProcID{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 {
		t.Fatalf("delivered %d items despite dead sink", res.Delivered)
	}
	if !math.IsNaN(res.MeanLatency) {
		t.Fatalf("MeanLatency should be NaN, got %v", res.MeanLatency)
	}
}

func TestMidStreamCrash(t *testing.T) {
	// Crash at t=25 (after ~12 items of the manual chain): items completed
	// before the crash are delivered, later ones are lost.
	s := manualChain(t)
	res, err := Run(context.Background(), s, Config{Items: 40, Warmup: 0,
		Failures: FailureSpec{Procs: []platform.ProcID{1}, At: 25}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 || res.Delivered == 40 {
		t.Fatalf("mid-stream crash should lose some items: delivered %d/40", res.Delivered)
	}
}

func TestCrashIncreasesLatency(t *testing.T) {
	// With ε=1 and a crash, the surviving chain's latency is at least the
	// failure-free latency (averaged over trials it is typically larger).
	r := rng.New(41)
	checked := 0
	for trial := 0; trial < 20 && checked < 5; trial++ {
		g := randomDAG(r, 20)
		p := platform.RandomHeterogeneous(r, 10, 0.5, 1, 0.5, 1, 10)
		s, err := rltf.Schedule(context.Background(), g, p, 1, 20, rltf.Options{})
		if err != nil {
			continue
		}
		base, err := Run(context.Background(), s, DefaultConfig(s))
		if err != nil {
			t.Fatal(err)
		}
		crash := platform.ProcID(r.IntN(10))
		cfg := DefaultConfig(s)
		cfg.Failures = FailureSpec{Procs: []platform.ProcID{crash}}
		crashed, err := Run(context.Background(), s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if crashed.Delivered != crashed.Items {
			t.Fatalf("trial %d: items lost under tolerated crash", trial)
		}
		if crashed.MeanLatency < base.MeanLatency-1e-6 {
			t.Fatalf("trial %d: crash made latency smaller: %v < %v",
				trial, crashed.MeanLatency, base.MeanLatency)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no feasible instances")
	}
}

func TestDeterministicResults(t *testing.T) {
	r := rng.New(9)
	g := randomDAG(r, 20)
	p := platform.RandomHeterogeneous(r, 8, 0.5, 1, 0.5, 1, 10)
	s, err := rltf.Schedule(context.Background(), g, p, 1, 20, rltf.Options{})
	if err != nil {
		t.Skip("infeasible")
	}
	a, err := Run(context.Background(), s, DefaultConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), s, DefaultConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanLatency != b.MeanLatency || a.Delivered != b.Delivered {
		t.Fatalf("nondeterministic simulation: %v vs %v", a, b)
	}
	for i := range a.Latencies {
		if a.Latencies[i] != b.Latencies[i] {
			t.Fatalf("latency %d differs", i)
		}
	}
}

func TestIncompleteScheduleRejected(t *testing.T) {
	g := chain(2, 1, 1)
	p := platform.Homogeneous(2, 1, 1)
	s := schedule.New(g, p, 0, 10, "partial")
	if _, err := Run(context.Background(), s, Config{Items: 5}); err == nil {
		t.Fatal("expected error for incomplete schedule")
	}
}

func TestDefaultConfigApplied(t *testing.T) {
	s := manualChain(t)
	res, err := Run(context.Background(), s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Items != DefaultConfig(s).Items {
		t.Fatalf("default items not applied: %d", res.Items)
	}
}

func TestThroughputSustained(t *testing.T) {
	// The achieved steady-state period must not exceed the enforced period
	// (the schedule met condition (1), so resources keep up).
	r := rng.New(23)
	for trial := 0; trial < 10; trial++ {
		g := randomDAG(r, 15)
		p := platform.RandomHeterogeneous(r, 8, 0.5, 1, 0.5, 1, 10)
		s, err := rltf.Schedule(context.Background(), g, p, 1, 15, rltf.Options{})
		if err != nil {
			continue
		}
		cfg := DefaultConfig(s)
		cfg.Items *= 2
		res, err := Run(context.Background(), s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.AchievedPeriod > s.Period*1.05 {
			t.Fatalf("trial %d: achieved period %v exceeds enforced %v",
				trial, res.AchievedPeriod, s.Period)
		}
	}
}

func TestReplicatedChainZeroCrashMatchesReplicaless(t *testing.T) {
	// With generous resources, replication must not change the delivered
	// count and every item arrives.
	g := chain(4, 1, 1)
	p := platform.Homogeneous(8, 1, 1)
	s, err := rltf.Schedule(context.Background(), g, p, 2, 50, rltf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, Config{Items: 25, Warmup: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 25 {
		t.Fatalf("delivered %d/25", res.Delivered)
	}
}

func TestTwoCrashesEps3(t *testing.T) {
	r := rng.New(53)
	ran := false
	for trial := 0; trial < 20 && !ran; trial++ {
		g := randomDAG(r, 12)
		p := platform.RandomHeterogeneous(r, 12, 0.5, 1, 0.5, 1, 10)
		s, err := ltf.Schedule(context.Background(), g, p, 3, 30, ltf.Options{})
		if err != nil {
			continue
		}
		crashes := []platform.ProcID{platform.ProcID(r.IntN(12)), platform.ProcID((r.IntN(11) + 1 + r.IntN(1)) % 12)}
		if crashes[0] == crashes[1] {
			crashes[1] = (crashes[1] + 1) % 12
		}
		res, err := Run(context.Background(), s, Config{Items: 25, Warmup: 5,
			Failures: FailureSpec{Procs: crashes}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != res.Items {
			t.Fatalf("trial %d: ε=3 schedule lost items under 2 crashes", trial)
		}
		ran = true
	}
	if !ran {
		t.Skip("no feasible instance")
	}
}
