package sim

import (
	"context"
	"math"
	"testing"

	"streamsched/internal/platform"
	"streamsched/internal/rltf"
	"streamsched/internal/rng"
	"streamsched/internal/schedule"
)

func TestSynchronousManualChain(t *testing.T) {
	// a@P0 stage 1, b@P1 stage 2, Δ = 2, exec 1 each, comm 1.
	// Item k: a computes in cycle k ([2k, 2k+2)), the transfer waits for
	// cycle k+1, b computes in cycle k+2 → completes at 2k+5.
	// Latency = 5 = (2S−2)Δ + exec = 4 + 1, just under the bound 6.
	s := manualChain(t)
	res, err := Run(context.Background(), s, Config{Items: 30, Warmup: 8, Synchronous: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 30 {
		t.Fatalf("delivered %d/30", res.Delivered)
	}
	if math.Abs(res.MeanLatency-5) > 1e-9 {
		t.Fatalf("sync latency = %v, want 5", res.MeanLatency)
	}
	if res.MeanLatency > s.LatencyBound() {
		t.Fatal("sync latency above bound")
	}
}

func TestSynchronousAtLeastDataflow(t *testing.T) {
	// Stage gating can only delay work: synchronous latency dominates the
	// free-running dataflow latency on the same schedule.
	r := rng.New(71)
	for trial := 0; trial < 8; trial++ {
		g := randomDAG(r, 12+r.IntN(15))
		p := platform.RandomHeterogeneous(r, 8, 0.5, 1, 0.5, 1, 10)
		s, err := rltf.Schedule(context.Background(), g, p, 1, 15, rltf.Options{})
		if err != nil {
			continue
		}
		df, err := Run(context.Background(), s, DefaultConfig(s))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(s)
		cfg.Synchronous = true
		sy, err := Run(context.Background(), s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sy.MeanLatency < df.MeanLatency-1e-9 {
			t.Fatalf("trial %d: sync %v below dataflow %v", trial, sy.MeanLatency, df.MeanLatency)
		}
		if sy.MaxLatency > s.LatencyBound()+1e-6 {
			t.Fatalf("trial %d: sync %v above bound %v", trial, sy.MaxLatency, s.LatencyBound())
		}
	}
}

func TestSynchronousNearBound(t *testing.T) {
	// Per item, the measured synchronous latency is pinned by the stage of
	// the cheapest exit replica: the item is done no earlier than the
	// opening of that replica's compute cycle. (The (2S−1)Δ bound itself
	// uses the maximum stage over all replicas, which a deep fallback copy
	// can inflate — the measured curve tracks the cheapest valid exits.)
	r := rng.New(73)
	for trial := 0; trial < 6; trial++ {
		g := randomDAG(r, 15)
		p := platform.RandomHeterogeneous(r, 8, 0.5, 1, 0.5, 1, 10)
		s, err := rltf.Schedule(context.Background(), g, p, 1, 12, rltf.Options{})
		if err != nil {
			continue
		}
		stages := s.StageNumbers()
		floorStage := 0
		for _, x := range s.G.Exits() {
			minCopy := 1 << 30
			for c := 0; c <= s.Eps; c++ {
				if st := stages[schedule.Ref{Task: x, Copy: c}]; st < minCopy {
					minCopy = st
				}
			}
			if minCopy > floorStage {
				floorStage = minCopy
			}
		}
		lower := float64(2*floorStage-2) * s.Period
		cfg := DefaultConfig(s)
		cfg.Synchronous = true
		res, err := Run(context.Background(), s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanLatency < lower-1e-9 {
			t.Fatalf("trial %d: sync latency %v below the stage floor %v",
				trial, res.MeanLatency, lower)
		}
		if res.MaxLatency > s.LatencyBound()+1e-6 {
			t.Fatalf("trial %d: sync latency %v above bound %v",
				trial, res.MaxLatency, s.LatencyBound())
		}
	}
}

func TestSynchronousCrashDelivers(t *testing.T) {
	r := rng.New(79)
	checked := 0
	for trial := 0; trial < 12 && checked < 4; trial++ {
		g := randomDAG(r, 15)
		p := platform.RandomHeterogeneous(r, 8, 0.5, 1, 0.5, 1, 10)
		s, err := rltf.Schedule(context.Background(), g, p, 1, 15, rltf.Options{})
		if err != nil {
			continue
		}
		cfg := DefaultConfig(s)
		cfg.Synchronous = true
		cfg.Failures = FailureSpec{Procs: []platform.ProcID{platform.ProcID(r.IntN(8))}}
		res, err := Run(context.Background(), s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != res.Items {
			t.Fatalf("trial %d: sync crash run lost items", trial)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no feasible instance")
	}
}

func TestSynchronousDeterministic(t *testing.T) {
	r := rng.New(83)
	g := randomDAG(r, 18)
	p := platform.RandomHeterogeneous(r, 8, 0.5, 1, 0.5, 1, 10)
	s, err := rltf.Schedule(context.Background(), g, p, 1, 15, rltf.Options{})
	if err != nil {
		t.Skip("infeasible")
	}
	cfg := DefaultConfig(s)
	cfg.Synchronous = true
	a, _ := Run(context.Background(), s, cfg)
	b, _ := Run(context.Background(), s, cfg)
	if a.MeanLatency != b.MeanLatency {
		t.Fatal("synchronous mode not deterministic")
	}
}
