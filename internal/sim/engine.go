package sim

// The flat discrete-event engine. The semantics — and, event for event, the
// arbitration order — are those of the original map-based engine; the golden
// tests (testdata/golden/sim_*.json at the repository root) pin the results
// bit for bit. Three rules of that engine shape this implementation:
//
//  1. Every event runs the dispatcher, which starts CPU work first (procs in
//     ascending id order, picking the instLess-minimum eligible instance)
//     and then grants pending transfers greedily in commLess order.
//  2. Synchronous-mode cycle gates are evaluated at the first dispatcher
//     pass that sees them (CPU gates only while the processor is idle).
//     Gate openings are batched: instances bucket per (cycle, processor)
//     and transfers per opening time, and one evWake per distinct future
//     time serves every bucket that shares it (scheduleWake). This is
//     byte-identical to the original once-per-instance wake pushes because
//     a duplicate wake at the same time is a pure no-op dispatcher pass:
//     the first dispatch at time t drains every gate with at <= t, and
//     dropping a push only shifts later event sequence numbers uniformly,
//     which preserves the relative order of all remaining events.
//  3. Instances are materialized lazily (first touch), which the crash
//     handler observes: only already-created instances fail eagerly.
//
// Instead of rescanning every queue per event, the engine keeps per-proc
// ready heaps and a dirty-processor bitset, per-port pending queues feeding
// a per-event candidate list, and gate heaps that open by time — each event
// touches only state it could have changed, and the full-rescan behaviour is
// reproduced exactly (see dispatch).

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sort"

	"streamsched/internal/dag"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
	"streamsched/internal/trace"
)

// Instance states. The zero value means "not yet created" so a freshly
// cleared ring slot needs no further initialization.
const (
	stAbsent uint8 = iota
	stPending
	stQueued
	stRunning
	stDone
	stFailed
)

// Transfer states. cFree slots are on the free list.
const (
	cFree uint8 = iota
	cPending
	cGranted
	cCancelled
)

// Event kinds. Item injections and the failure are virtual events (see
// loop): they are fully determined up front, so they never enter the heap.
const (
	evExec uint8 = iota
	evComm
	evWake
)

// event is a timed simulator event (32 bytes, stored by value in the heap).
// seq is 64-bit: tie-breaking must never wrap, however long the run.
type event struct {
	time float64
	seq  int64
	kind uint8
	a    int32 // replica index (evExec) or transfer index (evComm)
	item int32
}

// simLink is one static replica-to-replica communication of the schedule.
type simLink struct {
	srcRep, dstRep int32
	// predSlot is the template pred-counter slot of the destination this
	// link feeds (absolute index into predInit).
	predSlot int32
	// rank orders pending transfers globally: ascending static source
	// finish, then source replica, then destination replica — the commLess
	// order of the original engine including its stable-sort tie-break.
	rank uint32
	// dur is the transfer duration; colocated links deliver instantly.
	dur       float64
	colocated bool
}

// xfer is the dynamic state of one in-flight or pending transfer.
type xfer struct {
	link     int32
	item     int32
	earliest float64 // synchronous-mode cycle gate; 0 in dataflow mode
	state    uint8
	woken    bool
}

type instRef struct{ item, rep int32 }

// gateBucket collects every instance of one processor whose cycle gate opens
// at the same time: one timed mark and one (shared) wake event open them all.
type gateBucket struct {
	at   float64
	refs []instRef
}

// commBucket is the transfer-side analogue: all gated transfers opening at
// the same time re-enter arbitration together.
type commBucket struct {
	at  float64
	cis []int32
}

type timedIdx struct {
	at float64
	ix int32
}

// Engine simulates one schedule. It is built once per schedule with
// NewEngine and reused across Run calls: the static tables are shared and
// the dynamic state buffers are recycled, so steady-state simulation does
// not allocate. An Engine is not safe for concurrent use.
type Engine struct {
	s      *schedule.Schedule
	m      int // processors
	nrep   int // replicas = tasks·(ε+1)
	epsP1  int
	period float64

	// Static per-replica tables, indexed by rep = task·(ε+1)+copy.
	repProc  []int32
	repExec  []float64 // execution duration on the mapped processor
	repStart []float64 // static start time (dispatch priority key)

	// Pred-counter template: replica r owns slots predOff[r]..predOff[r+1],
	// one per predecessor task, with predInit incoming-comm counts.
	predOff  []int32
	predInit []int32
	npred    int

	// Out-links grouped by source replica, destinations ascending.
	linkOff []int32
	links   []simLink

	entryReps []int32
	exitTasks []dag.TaskID
	exitIdx   []int32 // [task] → dense exit index, -1 for interior tasks
	nExit     int

	// stage[rep] is the pipeline stage (synchronous mode), built lazily.
	stage      []int32
	haveStages bool

	// --- Dynamic state, reset per Run ---

	cfg  Config
	now  float64
	seq  int64
	poll int

	events     []event // 4-ary min-heap by (time, seq)
	nextInject int
	failAt     float64
	failTodo   bool
	failScan   bool

	// Item ring: instance (item, rep) lives at slot (item & ringMask)·nrep +
	// rep. A slot is recycled at injection time once every instance of its
	// previous item is terminal and no transfer references it (live == 0);
	// the ring doubles in the rare case an item outlives the window.
	ringMask int32
	itemOf   []int32 // [pos] item occupying the slot, -1 when free
	live     []int32 // [pos] non-terminal instances + in-flight transfers
	st       []uint8 // [pos·nrep + rep]
	outst    []int32 // [pos·npred + slot] inputs that may still arrive
	arrived  []int32 // [pos·npred + slot] valid inputs received

	deadFrom []float64 // +Inf = never fails

	cpuBusy  []bool
	ready    [][]instRef    // per-proc binary heap by instLess
	gatedNew [][]instRef    // per-proc unwoken gated instances, append order
	gated    [][]gateBucket // per-proc min-heap of (cycle, proc) buckets
	dirty    []uint64       // processor worklist bitset
	cpuGates []timedIdx     // min-heap: one (gate, proc) mark per bucket
	freeRefs [][]instRef    // recycled gateBucket ref slices

	sendBusy, recvBusy     []bool
	sendActive, recvActive []int32   // in-flight transfer per port, -1 free
	sendQ, recvQ           [][]int32 // pending transfer indices per port

	comms      []xfer
	freeComms  []int32
	commGated  []commBucket // min-heap of per-opening-time transfer buckets
	freeCIs    [][]int32    // recycled commBucket index slices
	candidates []int32      // transfers the current event could have changed
	candKeys   []uint64     // commKey cache scratch for the candidate sort

	// wakePending holds the distinct future times an evWake is armed for;
	// wakes counts the events actually pushed (the wakes/op bench metric).
	wakePending []timedIdx
	wakes       int64

	exitDone []float64 // [item·nExit + exit] completion time, -1 unrecorded
	exitCnt  []int32   // [item] exits recorded
	compBuf  []float64 // scratch for result()

	spans []trace.Span
}

// Schedule returns the schedule this engine simulates.
func (e *Engine) Schedule() *schedule.Schedule { return e.s }

// NewEngine derives the static simulation tables from a complete schedule.
func NewEngine(s *schedule.Schedule) (*Engine, error) {
	if !s.Complete() {
		return nil, fmt.Errorf("sim: schedule incomplete")
	}
	m := s.P.NumProcs()
	epsP1 := s.Eps + 1
	nrep := s.G.NumTasks() * epsP1
	e := &Engine{
		s:        s,
		m:        m,
		nrep:     nrep,
		epsP1:    epsP1,
		period:   s.Period,
		repProc:  make([]int32, nrep),
		repExec:  make([]float64, nrep),
		repStart: make([]float64, nrep),
		predOff:  make([]int32, nrep+1),
		linkOff:  make([]int32, nrep+1),
	}
	repFinish := make([]float64, nrep)
	for t := 0; t < s.G.NumTasks(); t++ {
		for c := 0; c < epsP1; c++ {
			rep := t*epsP1 + c
			r := s.Replica(schedule.Ref{Task: dag.TaskID(t), Copy: c})
			e.repProc[rep] = int32(r.Proc)
			e.repExec[rep] = s.P.ExecTime(s.G.Task(dag.TaskID(t)).Work, r.Proc)
			e.repStart[rep] = r.Start
			repFinish[rep] = r.Finish
		}
	}

	// Pred-counter slots and raw links, walking destinations in replica
	// order so each source's out-links come out destination-ascending (the
	// original engine's deterministic out-link order).
	type slotKey struct {
		task dag.TaskID
		n    int32
	}
	perSrc := make([][]simLink, nrep)
	var slots []slotKey
	for t := 0; t < s.G.NumTasks(); t++ {
		for c := 0; c < epsP1; c++ {
			dstRep := t*epsP1 + c
			e.predOff[dstRep] = int32(len(e.predInit))
			r := s.Replica(schedule.Ref{Task: dag.TaskID(t), Copy: c})
			slots = slots[:0]
			for _, in := range r.In {
				k := -1
				for i := range slots {
					if slots[i].task == in.From.Task {
						k = i
						break
					}
				}
				if k < 0 {
					k = len(slots)
					slots = append(slots, slotKey{task: in.From.Task})
				}
				slots[k].n++
				srcRep := int(in.From.Task)*epsP1 + in.From.Copy
				srcProc := e.repProc[srcRep]
				l := simLink{
					srcRep:    int32(srcRep),
					dstRep:    int32(dstRep),
					predSlot:  int32(len(e.predInit) + k),
					colocated: srcProc == e.repProc[dstRep] || in.Volume == 0,
				}
				if !l.colocated {
					l.dur = s.P.CommTime(in.Volume, platform.ProcID(srcProc), r.Proc)
				}
				perSrc[srcRep] = append(perSrc[srcRep], l)
			}
			for _, sl := range slots {
				e.predInit = append(e.predInit, sl.n)
			}
		}
	}
	e.predOff[nrep] = int32(len(e.predInit))
	e.npred = len(e.predInit)
	for rep := 0; rep < nrep; rep++ {
		e.linkOff[rep] = int32(len(e.links))
		e.links = append(e.links, perSrc[rep]...)
	}
	e.linkOff[nrep] = int32(len(e.links))

	// Global transfer arbitration ranks: the original commLess (item, static
	// source finish, source task, source copy) plus the stable-sort
	// tie-break (destination order within one source).
	order := make([]int32, len(e.links))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := e.links[order[a]], e.links[order[b]]
		if fa, fb := repFinish[la.srcRep], repFinish[lb.srcRep]; fa != fb {
			return fa < fb
		}
		if la.srcRep != lb.srcRep {
			return la.srcRep < lb.srcRep
		}
		return la.dstRep < lb.dstRep
	})
	for rank, li := range order {
		e.links[li].rank = uint32(rank)
	}

	for _, t := range s.G.Entries() {
		for c := 0; c < epsP1; c++ {
			e.entryReps = append(e.entryReps, int32(int(t)*epsP1+c))
		}
	}
	e.exitTasks = s.G.Exits()
	e.exitIdx = make([]int32, s.G.NumTasks())
	for i := range e.exitIdx {
		e.exitIdx[i] = -1
	}
	for i, t := range e.exitTasks {
		e.exitIdx[t] = int32(i)
	}
	e.nExit = len(e.exitTasks)

	// Dynamic state shells.
	e.deadFrom = make([]float64, m)
	e.cpuBusy = make([]bool, m)
	e.ready = make([][]instRef, m)
	e.gatedNew = make([][]instRef, m)
	e.gated = make([][]gateBucket, m)
	e.dirty = make([]uint64, (m+63)/64)
	e.sendBusy = make([]bool, m)
	e.recvBusy = make([]bool, m)
	e.sendActive = make([]int32, m)
	e.recvActive = make([]int32, m)
	e.sendQ = make([][]int32, m)
	e.recvQ = make([][]int32, m)

	// Ring sized for the steady-state window: a delivered item is live for
	// about its latency, bounded by (2S−1)·Δ ≈ 2S periods.
	w := 4
	for w < 2*s.Stages()+8 {
		w *= 2
	}
	e.sizeRing(w)
	return e, nil
}

func (e *Engine) sizeRing(w int) {
	e.ringMask = int32(w - 1)
	e.itemOf = make([]int32, w)
	e.live = make([]int32, w)
	e.st = make([]uint8, w*e.nrep)
	e.outst = make([]int32, w*e.npred)
	e.arrived = make([]int32, w*e.npred)
	for i := range e.itemOf {
		e.itemOf[i] = -1
	}
}

// growRing doubles the item window, repositioning live items. Doubling keeps
// distinct live items collision-free (their low ring bits already differ).
func (e *Engine) growRing() {
	oldW := int(e.ringMask) + 1
	oldItem, oldLive, oldSt := e.itemOf, e.live, e.st
	oldOut, oldArr := e.outst, e.arrived
	e.sizeRing(2 * oldW)
	for pos, it := range oldItem {
		if it < 0 {
			continue
		}
		np := int(it) & int(e.ringMask)
		e.itemOf[np] = it
		e.live[np] = oldLive[pos]
		copy(e.st[np*e.nrep:(np+1)*e.nrep], oldSt[pos*e.nrep:(pos+1)*e.nrep])
		copy(e.outst[np*e.npred:(np+1)*e.npred], oldOut[pos*e.npred:(pos+1)*e.npred])
		copy(e.arrived[np*e.npred:(np+1)*e.npred], oldArr[pos*e.npred:(pos+1)*e.npred])
	}
}

// Run simulates the schedule under cfg. A cancelled ctx aborts the event
// loop with ctx.Err(). Buffers are recycled across calls; the returned
// Result owns its slices.
func (e *Engine) Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Items <= 0 {
		cfg = DefaultConfig(e.s)
	}
	if cfg.Warmup >= cfg.Items {
		cfg.Warmup = cfg.Items / 2
	}
	e.reset(cfg)
	if err := e.loop(ctx); err != nil {
		return nil, err
	}
	return e.result(), nil
}

func (e *Engine) reset(cfg Config) {
	e.cfg = cfg
	e.now = 0
	e.seq = 0
	e.poll = 0
	e.events = e.events[:0]
	e.nextInject = 0
	e.failAt = cfg.Failures.At
	e.failTodo = len(cfg.Failures.Procs) > 0
	e.failScan = false
	for u := 0; u < e.m; u++ {
		e.deadFrom[u] = math.Inf(1)
		e.cpuBusy[u] = false
		e.ready[u] = e.ready[u][:0]
		e.gatedNew[u] = e.gatedNew[u][:0]
		e.dropGateBuckets(int32(u))
		e.sendBusy[u] = false
		e.recvBusy[u] = false
		e.sendActive[u] = -1
		e.recvActive[u] = -1
		e.sendQ[u] = e.sendQ[u][:0]
		e.recvQ[u] = e.recvQ[u][:0]
	}
	for i := range e.dirty {
		e.dirty[i] = 0
	}
	e.comms = e.comms[:0]
	e.freeComms = e.freeComms[:0]
	for i := range e.commGated {
		e.freeCIs = append(e.freeCIs, e.commGated[i].cis[:0])
	}
	e.commGated = e.commGated[:0]
	e.cpuGates = e.cpuGates[:0]
	e.candidates = e.candidates[:0]
	e.wakePending = e.wakePending[:0]
	e.wakes = 0
	for i := range e.itemOf {
		e.itemOf[i] = -1
		e.live[i] = 0
	}
	for i := range e.st {
		e.st[i] = stAbsent
	}
	if n := cfg.Items * e.nExit; cap(e.exitDone) < n {
		e.exitDone = make([]float64, n)
	} else {
		e.exitDone = e.exitDone[:n]
	}
	for i := range e.exitDone {
		e.exitDone[i] = -1
	}
	if cap(e.exitCnt) < cfg.Items {
		e.exitCnt = make([]int32, cfg.Items)
	} else {
		e.exitCnt = e.exitCnt[:cfg.Items]
	}
	for i := range e.exitCnt {
		e.exitCnt[i] = 0
	}
	e.spans = nil
	if cfg.Synchronous && !e.haveStages {
		e.stage = make([]int32, e.nrep)
		// Each map key writes one distinct slice index, so visit order
		// cannot affect the result.
		//nolint:determcheck // order-independent scatter into e.stage
		for ref, st := range e.s.StageNumbers() {
			e.stage[int(ref.Task)*e.epsP1+ref.Copy] = int32(st)
		}
		e.haveStages = true
	}
}

// loop drains the event queue. Item injections (one per item, at k·Δ) and
// the failure are "virtual" events: their times are known up front, so they
// are merged by time here instead of occupying the heap. Ties replicate the
// original push order: injections first, then the failure, then runtime
// events in sequence order.
func (e *Engine) loop(ctx context.Context) error {
	// Poll cancellation every 1024 events: cheap enough to keep the hot
	// loop unaffected, frequent enough to abort long runs promptly.
	const pollMask = 1024 - 1
	for {
		if e.poll&pollMask == pollMask {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		e.poll++
		sel := -1
		var t float64
		if e.nextInject < e.cfg.Items {
			t = float64(e.nextInject) * e.period
			sel = 0
		}
		if e.failTodo && (sel < 0 || e.failAt < t) {
			t = e.failAt
			sel = 1
		}
		if len(e.events) > 0 && (sel < 0 || e.events[0].time < t) {
			t = e.events[0].time
			sel = 2
		}
		if sel < 0 {
			return nil
		}
		e.now = t
		switch sel {
		case 0:
			item := e.nextInject
			e.nextInject++
			e.inject(int32(item))
		case 1:
			e.failTodo = false
			e.failProcs()
		case 2:
			ev := e.popEvent()
			switch ev.kind {
			case evExec:
				e.execComplete(ev.item, ev.a)
			case evComm:
				e.commComplete(ev.a)
			case evWake:
				// dispatch below is the whole effect; retire the armed time
				// so a later bucket at the same instant can re-arm.
				if len(e.wakePending) > 0 && e.wakePending[0].at <= e.now {
					heapPopTimed(&e.wakePending)
				}
			}
		}
		e.dispatch()
	}
}

// --- event heap (4-ary, value-typed) ---

func evLess(a, b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (e *Engine) pushEvent(t float64, kind uint8, a, item int32) {
	e.seq++
	e.events = append(e.events, event{time: t, seq: e.seq, kind: kind, a: a, item: item})
	i := len(e.events) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !evLess(e.events[i], e.events[p]) {
			break
		}
		e.events[i], e.events[p] = e.events[p], e.events[i]
		i = p
	}
}

func (e *Engine) popEvent() event {
	top := e.events[0]
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events = e.events[:n]
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if evLess(e.events[j], e.events[m]) {
				m = j
			}
		}
		if !evLess(e.events[m], e.events[i]) {
			break
		}
		e.events[i], e.events[m] = e.events[m], e.events[i]
		i = m
	}
	return top
}

// --- instance ring ---

func (e *Engine) pos(item int32) int { return int(item & e.ringMask) }
func (e *Engine) instIdx(item, rep int32) int {
	return e.pos(item)*e.nrep + int(rep)
}

func (e *Engine) dead(u int32) bool { return e.now >= e.deadFrom[u] }

// claimSlot recycles (or grows past) the ring slot for a new item.
func (e *Engine) claimSlot(item int32) {
	for {
		p := e.pos(item)
		if e.itemOf[p] < 0 {
			e.itemOf[p] = item
			return
		}
		if e.live[p] == 0 {
			base := p * e.nrep
			for i := base; i < base+e.nrep; i++ {
				e.st[i] = stAbsent
			}
			e.itemOf[p] = item
			return
		}
		e.growRing()
	}
}

// instFor materializes the instance on first touch: pred counters are
// copied from the template and the item's liveness count grows.
func (e *Engine) instFor(item, rep int32) {
	i := e.instIdx(item, rep)
	if e.st[i] != stAbsent {
		return
	}
	e.st[i] = stPending
	p := e.pos(item)
	base := p * e.npred
	for s := e.predOff[rep]; s < e.predOff[rep+1]; s++ {
		e.outst[base+int(s)] = e.predInit[s]
		e.arrived[base+int(s)] = 0
	}
	e.live[p]++
}

// --- handlers ---

func (e *Engine) inject(item int32) {
	e.claimSlot(item)
	for _, rep := range e.entryReps {
		e.instFor(item, rep)
		e.tryEnqueue(item, rep)
	}
}

// tryEnqueue moves a pending instance to its processor's ready structures
// when its inputs are complete, or fails it when they can never be.
func (e *Engine) tryEnqueue(item, rep int32) {
	i := e.instIdx(item, rep)
	if e.st[i] != stPending {
		return
	}
	u := e.repProc[rep]
	if e.dead(u) {
		e.failInstance(item, rep)
		return
	}
	base := e.pos(item) * e.npred
	waiting := false
	for s := e.predOff[rep]; s < e.predOff[rep+1]; s++ {
		n := e.outst[base+int(s)]
		if n == 0 && e.arrived[base+int(s)] == 0 {
			e.failInstance(item, rep)
			return
		}
		if n > 0 {
			waiting = true
		}
	}
	if waiting {
		return
	}
	e.st[i] = stQueued
	ref := instRef{item: item, rep: rep}
	if e.cfg.Synchronous {
		// Cycle gating is evaluated by the dispatcher (while the processor
		// is idle), like the original queue scan.
		e.gatedNew[u] = append(e.gatedNew[u], ref)
	} else {
		e.readyPush(u, ref)
	}
	e.markDirty(u)
}

// failInstance marks an instance invalid and cascades to its consumers.
func (e *Engine) failInstance(item, rep int32) {
	i := e.instIdx(item, rep)
	if s := e.st[i]; s == stFailed || s == stDone {
		return
	}
	e.st[i] = stFailed
	e.live[e.pos(item)]--
	for li := e.linkOff[rep]; li < e.linkOff[rep+1]; li++ {
		l := &e.links[li]
		e.instFor(item, l.dstRep)
		di := e.instIdx(item, l.dstRep)
		if e.st[di] != stPending {
			continue
		}
		e.outst[e.pos(item)*e.npred+int(l.predSlot)]--
		e.tryEnqueue(item, l.dstRep)
	}
}

func (e *Engine) execComplete(item, rep int32) {
	i := e.instIdx(item, rep)
	if e.st[i] != stRunning {
		return
	}
	u := e.repProc[rep]
	if e.dead(u) {
		// The failure event already handled this instance.
		return
	}
	e.st[i] = stDone
	e.live[e.pos(item)]--
	e.cpuBusy[u] = false
	e.markDirty(u)
	task := dag.TaskID(int(rep) / e.epsP1)
	if int(item) < e.cfg.TraceItems {
		copyIdx := int(rep) % e.epsP1
		dur := e.repExec[rep]
		e.spans = append(e.spans, trace.Span{
			Name:  fmt.Sprintf("%s(%d)#%d", e.s.G.Task(task).Name, copyIdx+1, item),
			Lane:  fmt.Sprintf("P%d", u+1),
			Start: e.now - dur,
			End:   e.now,
			Args:  map[string]any{"item": int(item), "task": int(task), "copy": copyIdx},
		})
	}

	// Record exit completions.
	if x := e.exitIdx[task]; x >= 0 {
		di := int(item)*e.nExit + int(x)
		if e.exitDone[di] < 0 {
			e.exitDone[di] = e.now
			e.exitCnt[item]++
		}
	}

	// Emit outputs.
	for li := e.linkOff[rep]; li < e.linkOff[rep+1]; li++ {
		l := &e.links[li]
		e.instFor(item, l.dstRep)
		di := e.instIdx(item, l.dstRep)
		if e.st[di] != stPending {
			continue
		}
		v := e.repProc[l.dstRep]
		if e.dead(v) {
			e.failInstance(item, l.dstRep)
			continue
		}
		if l.colocated {
			slot := e.pos(item)*e.npred + int(l.predSlot)
			e.outst[slot]--
			e.arrived[slot]++
			e.tryEnqueue(item, l.dstRep)
			continue
		}
		ci := e.allocComm()
		c := &e.comms[ci]
		*c = xfer{link: li, item: item, state: cPending}
		if e.cfg.Synchronous {
			// Cross-stage transfers wait for the communication cycle
			// following the source's compute cycle.
			c.earliest = float64(int(item)+2*int(e.stage[rep])-1) * e.period
		}
		e.live[e.pos(item)]++
		e.sendQ[u] = append(e.sendQ[u], ci)
		e.recvQ[v] = append(e.recvQ[v], ci)
		if !e.sendBusy[u] && !e.recvBusy[v] {
			e.candidates = append(e.candidates, ci)
		}
	}
}

func (e *Engine) commComplete(ci int32) {
	c := &e.comms[ci]
	if c.state == cCancelled {
		// The failure event already unwound this transfer; reclaim the slot
		// now that its completion event has drained.
		c.state = cFree
		e.freeComms = append(e.freeComms, ci)
		return
	}
	l := &e.links[c.link]
	src, dst := e.repProc[l.srcRep], e.repProc[l.dstRep]
	e.sendBusy[src] = false
	e.recvBusy[dst] = false
	e.sendActive[src] = -1
	e.recvActive[dst] = -1
	item := c.item
	if int(item) < e.cfg.TraceItems {
		srcRef := schedule.Ref{Task: dag.TaskID(int(l.srcRep) / e.epsP1), Copy: int(l.srcRep) % e.epsP1}
		name := fmt.Sprintf("%v→t%d#%d", srcRef, int(l.dstRep)/e.epsP1, item)
		args := map[string]any{"item": int(item)}
		e.spans = append(e.spans,
			trace.Span{Name: name, Lane: fmt.Sprintf("P%d:send", src+1), Start: e.now - l.dur, End: e.now, Args: args},
			trace.Span{Name: name, Lane: fmt.Sprintf("P%d:recv", dst+1), Start: e.now - l.dur, End: e.now, Args: args})
	}
	e.instFor(item, l.dstRep)
	di := e.instIdx(item, l.dstRep)
	if e.st[di] == stPending {
		slot := e.pos(item)*e.npred + int(l.predSlot)
		e.outst[slot]--
		e.arrived[slot]++
		e.tryEnqueue(item, l.dstRep)
	}
	e.live[e.pos(item)]--
	c.state = cFree
	e.freeComms = append(e.freeComms, ci)
	// The freed ports are what this event changed: their queued transfers
	// are the dispatch candidates.
	e.collectPort(&e.sendQ[src], src, true)
	e.collectPort(&e.recvQ[dst], dst, false)
}

// collectPort appends the port's pending transfers to the candidate list,
// compacting out entries that were resolved (or whose arena slot was
// recycled to another port) since the last scan. Gated transfers that are
// already parked in a wake bucket (woken) stay queued but are not candidates:
// they cannot be granted before their gate opens, and the opening bucket
// re-injects them (with woken cleared) at exactly that time.
func (e *Engine) collectPort(q *[]int32, proc int32, send bool) {
	w := 0
	for _, ci := range *q {
		c := &e.comms[ci]
		if c.state != cPending {
			continue
		}
		l := &e.links[c.link]
		p := e.repProc[l.srcRep]
		if !send {
			p = e.repProc[l.dstRep]
		}
		if p != proc {
			continue
		}
		(*q)[w] = ci
		w++
		if c.woken {
			continue
		}
		// Ports only go free→busy inside one dispatch pass, so a transfer
		// whose peer port is busy right now cannot be granted (or newly
		// gated) this pass: it stays queued and becomes a candidate when
		// that peer port's own completion frees it.
		peer := e.repProc[l.dstRep]
		peerBusy := e.recvBusy[peer]
		if !send {
			peer = e.repProc[l.srcRep]
			peerBusy = e.sendBusy[peer]
		}
		if !peerBusy {
			e.candidates = append(e.candidates, ci)
		}
	}
	*q = (*q)[:w]
}

// failProcs applies the failure spec at the current time.
func (e *Engine) failProcs() {
	for _, u := range e.cfg.Failures.Procs {
		e.deadFrom[u] = e.now
	}
	for _, u := range e.cfg.Failures.Procs {
		// In-flight computation on u is lost (the instance is failed below).
		e.cpuBusy[u] = false
		// Kill in-flight transfers touching u and free the peer's port.
		for _, ci := range [2]int32{e.sendActive[u], e.recvActive[u]} {
			if ci < 0 {
				continue
			}
			c := &e.comms[ci]
			if c.state != cGranted {
				continue
			}
			c.state = cCancelled
			l := &e.links[c.link]
			src, dst := e.repProc[l.srcRep], e.repProc[l.dstRep]
			e.sendBusy[src] = false
			e.recvBusy[dst] = false
			e.sendActive[src] = -1
			e.recvActive[dst] = -1
			e.instFor(c.item, l.dstRep)
			di := e.instIdx(c.item, l.dstRep)
			if e.st[di] == stPending {
				e.outst[e.pos(c.item)*e.npred+int(l.predSlot)]--
				e.tryEnqueue(c.item, l.dstRep)
			}
			e.live[e.pos(c.item)]--
		}
		// Fail every created instance bound to u, oldest item first (the
		// deterministic cascade order); lazily created ones fail in
		// tryEnqueue via the dead check.
		for _, item := range e.liveItemsAsc() {
			base := e.pos(item) * e.nrep
			for rep := 0; rep < e.nrep; rep++ {
				if e.repProc[rep] != int32(u) {
					continue
				}
				if s := e.st[base+rep]; s == stPending || s == stQueued || s == stRunning {
					e.failInstance(item, int32(rep))
				}
			}
		}
		e.ready[u] = e.ready[u][:0]
		e.gatedNew[u] = e.gatedNew[u][:0]
		e.dropGateBuckets(int32(u))
	}
	// The original engine rescanned everything after a failure: every
	// pending transfer becomes a candidate (dead ones are dropped in
	// arbitration order) and every processor is rechecked.
	e.failScan = true
	for i := range e.dirty {
		e.dirty[i] = ^uint64(0)
	}
	if spare := e.m & 63; spare != 0 && len(e.dirty) > 0 {
		e.dirty[len(e.dirty)-1] = (1 << spare) - 1
	}
}

// liveItemsAsc returns the items currently occupying ring slots, ascending.
func (e *Engine) liveItemsAsc() []int32 {
	items := make([]int32, 0, len(e.itemOf))
	for _, it := range e.itemOf {
		if it >= 0 {
			items = append(items, it)
		}
	}
	slices.Sort(items)
	return items
}

// --- dispatch ---

func (e *Engine) markDirty(u int32) { e.dirty[u>>6] |= 1 << (uint(u) & 63) }

// dispatch starts any work the current event could have enabled: CPU
// executions on dirty processors, then pending transfers from the candidate
// list, in the original engine's arbitration order.
//
//streamsched:hotpath
func (e *Engine) dispatch() {
	// Cycle gates that opened by now make their processor dirty.
	for len(e.cpuGates) > 0 && e.cpuGates[0].at <= e.now {
		e.markDirty(heapPopTimed(&e.cpuGates).ix)
	}
	for w := range e.dirty {
		for e.dirty[w] != 0 {
			b := bits.TrailingZeros64(e.dirty[w])
			e.dirty[w] &^= 1 << uint(b)
			e.cpuDispatch(int32(w*64 + b))
		}
	}
	// Transfer gates that opened by now re-enter arbitration, one bucket of
	// transfers per opening time. Clearing woken hands the transfer back to
	// the port scan (collectPort), which ignores still-gated transfers.
	for len(e.commGated) > 0 && e.commGated[0].at <= e.now {
		b := heapPopTimed(&e.commGated)
		for _, ci := range b.cis {
			e.comms[ci].woken = false
			e.candidates = append(e.candidates, ci)
		}
		e.freeCIs = append(e.freeCIs, b.cis[:0])
	}
	if e.failScan {
		e.failScan = false
		e.candidates = e.candidates[:0]
		for ci := range e.comms {
			if e.comms[ci].state == cPending {
				e.candidates = append(e.candidates, int32(ci))
			}
		}
	}
	if len(e.candidates) > 0 {
		e.commDispatch()
	}
}

// cpuDispatch replicates one processor's slice of the original CPU scan:
// wake-ups for newly gated instances (idle processors only, append order),
// gate openings, then the instLess-minimum ready instance starts.
//
//streamsched:hotpath
func (e *Engine) cpuDispatch(u int32) {
	if e.cpuBusy[u] || e.dead(u) {
		return
	}
	if e.cfg.Synchronous {
		if len(e.ready[u])+len(e.gatedNew[u])+len(e.gated[u]) == 0 {
			return
		}
		for _, ref := range e.gatedNew[u] {
			if gate := e.cycleGate(ref); gate > e.now {
				e.gateCPU(u, gate, ref)
			} else {
				e.readyPush(u, ref)
			}
		}
		e.gatedNew[u] = e.gatedNew[u][:0]
		for len(e.gated[u]) > 0 && e.gated[u][0].at <= e.now {
			b := heapPopTimed(&e.gated[u])
			for _, ref := range b.refs {
				e.readyPush(u, ref)
			}
			e.freeRefs = append(e.freeRefs, b.refs[:0])
		}
	}
	if len(e.ready[u]) == 0 {
		return
	}
	ref := e.readyPop(u)
	e.st[e.instIdx(ref.item, ref.rep)] = stRunning
	e.cpuBusy[u] = true
	e.pushEvent(e.now+e.repExec[ref.rep], evExec, ref.rep, ref.item)
}

// cycleGate returns the earliest synchronous start time of an instance.
func (e *Engine) cycleGate(ref instRef) float64 {
	return float64(int(ref.item)+2*(int(e.stage[ref.rep])-1)) * e.period
}

// gateCPU parks a gated instance in its processor's (cycle, proc) bucket.
// Only the first instance of a bucket costs a timed mark and a wake; the
// rest ride along. Buckets are only appended to while their gate is still in
// the future, so the mark and wake armed at creation always cover them.
//
//streamsched:hotpath
func (e *Engine) gateCPU(u int32, gate float64, ref instRef) {
	h := e.gated[u]
	for i := range h { // few distinct pending cycles per proc: scan beats a map
		if h[i].at == gate {
			h[i].refs = append(h[i].refs, ref)
			return
		}
	}
	refs := append(e.allocRefs(), ref)
	heapPushTimed(&e.gated[u], gateBucket{at: gate, refs: refs})
	heapPushTimed(&e.cpuGates, timedIdx{at: gate, ix: u})
	e.scheduleWake(gate)
}

// gateComm parks a gated transfer in the bucket for its opening time.
//
//streamsched:hotpath
func (e *Engine) gateComm(at float64, ci int32) {
	h := e.commGated
	for i := range h {
		if h[i].at == at {
			h[i].cis = append(h[i].cis, ci)
			return
		}
	}
	cis := append(e.allocCIs(), ci)
	heapPushTimed(&e.commGated, commBucket{at: at, cis: cis})
	e.scheduleWake(at)
}

// scheduleWake arms one evWake per distinct future opening time; every gate
// bucket sharing the time rides the same event. wakePending tracks the armed
// times (retired as their events fire) so duplicates are never pushed.
//
//streamsched:hotpath
func (e *Engine) scheduleWake(at float64) {
	for i := range e.wakePending {
		if e.wakePending[i].at == at {
			return
		}
	}
	heapPushTimed(&e.wakePending, timedIdx{at: at})
	e.wakes++
	e.pushEvent(at, evWake, 0, 0)
}

func (e *Engine) allocRefs() []instRef {
	if n := len(e.freeRefs); n > 0 {
		r := e.freeRefs[n-1]
		e.freeRefs = e.freeRefs[:n-1]
		return r
	}
	return make([]instRef, 0, 4)
}

func (e *Engine) allocCIs() []int32 {
	if n := len(e.freeCIs); n > 0 {
		r := e.freeCIs[n-1]
		e.freeCIs = e.freeCIs[:n-1]
		return r
	}
	return make([]int32, 0, 4)
}

// dropGateBuckets empties a processor's gate heap, recycling the ref slices.
func (e *Engine) dropGateBuckets(u int32) {
	for i := range e.gated[u] {
		e.freeRefs = append(e.freeRefs, e.gated[u][i].refs[:0])
	}
	e.gated[u] = e.gated[u][:0]
}

// Wakes reports how many evWake events the last Run pushed — the wakes/op
// bench metric guarding against event-count regressions.
func (e *Engine) Wakes() int64 { return e.wakes }

// commKey is the arbitration order of pending transfers.
func (e *Engine) commKey(ci int32) uint64 {
	c := &e.comms[ci]
	return uint64(uint32(c.item))<<32 | uint64(e.links[c.link].rank)
}

// commDispatch processes the candidate transfers in global arbitration
// order: dead endpoints drop (cascading), closed cycle gates wake once,
// free port pairs grant greedily. Duplicate candidates are harmless — a
// resolved transfer is skipped, a blocked one re-checks idempotently.
//
//streamsched:hotpath
func (e *Engine) commDispatch() {
	cs := e.candidates
	ks := e.candKeys[:0]
	for _, ci := range cs { // cache keys: the sort compares each one many times
		ks = append(ks, e.commKey(ci))
	}
	for i := 1; i < len(cs); i++ { // insertion sort: candidate lists are tiny
		k, ci := ks[i], cs[i]
		j := i - 1
		for j >= 0 && ks[j] > k {
			cs[j+1], ks[j+1] = cs[j], ks[j]
			j--
		}
		cs[j+1], ks[j+1] = ci, k
	}
	e.candKeys = ks[:0]
	for _, ci := range cs {
		c := &e.comms[ci]
		if c.state != cPending {
			continue
		}
		l := &e.links[c.link]
		src, dst := e.repProc[l.srcRep], e.repProc[l.dstRep]
		item := c.item
		if e.dead(dst) {
			e.instFor(item, l.dstRep)
			e.failInstance(item, l.dstRep)
			e.dropComm(ci)
			continue
		}
		if e.dead(src) {
			// Lost transfer: the consumer will not get this input.
			e.instFor(item, l.dstRep)
			di := e.instIdx(item, l.dstRep)
			if e.st[di] == stPending {
				e.outst[e.pos(item)*e.npred+int(l.predSlot)]--
				e.tryEnqueue(item, l.dstRep)
			}
			e.dropComm(ci)
			continue
		}
		if c.earliest > e.now {
			if !c.woken {
				c.woken = true
				e.gateComm(c.earliest, ci)
			}
			continue
		}
		if !e.sendBusy[src] && !e.recvBusy[dst] {
			e.sendBusy[src] = true
			e.recvBusy[dst] = true
			e.sendActive[src] = ci
			e.recvActive[dst] = ci
			c.state = cGranted
			e.pushEvent(e.now+l.dur, evComm, ci, item)
		}
	}
	e.candidates = e.candidates[:0]
}

func (e *Engine) allocComm() int32 {
	if n := len(e.freeComms); n > 0 {
		ci := e.freeComms[n-1]
		e.freeComms = e.freeComms[:n-1]
		return ci
	}
	e.comms = append(e.comms, xfer{})
	return int32(len(e.comms) - 1)
}

// dropComm resolves a pending transfer that will never be granted.
func (e *Engine) dropComm(ci int32) {
	c := &e.comms[ci]
	e.live[e.pos(c.item)]--
	c.state = cFree
	e.freeComms = append(e.freeComms, ci)
}

// --- small value heaps ---

func (e *Engine) readyLess(a, b instRef) bool {
	if a.item != b.item {
		return a.item < b.item
	}
	if sa, sb := e.repStart[a.rep], e.repStart[b.rep]; sa != sb {
		return sa < sb
	}
	return a.rep < b.rep // replica index order == (task, copy) order
}

func (e *Engine) readyPush(u int32, ref instRef) {
	h := append(e.ready[u], ref)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !e.readyLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.ready[u] = h
}

func (e *Engine) readyPop(u int32) instRef {
	h := e.ready[u]
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && e.readyLess(h[c+1], h[c]) {
			c++
		}
		if !e.readyLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	e.ready[u] = h
	return top
}

// timed is anything heap-ordered by an opening time (gate buckets, cycle
// gate marks). All instantiations are value shapes, so the method calls
// devirtualize.
type timed interface{ when() float64 }

func (g gateBucket) when() float64 { return g.at }
func (b commBucket) when() float64 { return b.at }
func (x timedIdx) when() float64   { return x.at }

func heapPushTimed[T timed](h *[]T, x T) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[i].when() >= s[p].when() {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func heapPopTimed[T timed](h *[]T) T {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s[c+1].when() < s[c].when() {
			c++
		}
		if s[c].when() >= s[i].when() {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	*h = s
	return top
}

// --- measurement ---

func (e *Engine) result() *Result {
	res := &Result{Items: e.cfg.Items, Trace: e.spans}
	completions := e.compBuf[:0]
	for k := 0; k < e.cfg.Items; k++ {
		if int(e.exitCnt[k]) != e.nExit {
			continue // undelivered
		}
		res.Delivered++
		latest := 0.0
		for x := 0; x < e.nExit; x++ {
			if t := e.exitDone[k*e.nExit+x]; t > latest {
				latest = t
			}
		}
		if k >= e.cfg.Warmup {
			res.Latencies = append(res.Latencies, latest-float64(k)*e.period)
			completions = append(completions, latest)
		}
	}
	e.compBuf = completions[:0]
	if len(res.Latencies) == 0 {
		res.MeanLatency = math.NaN()
		res.MaxLatency = math.NaN()
		res.AchievedPeriod = math.NaN()
		return res
	}
	sum, max := 0.0, 0.0
	for _, l := range res.Latencies {
		sum += l
		if l > max {
			max = l
		}
	}
	res.MeanLatency = sum / float64(len(res.Latencies))
	res.MaxLatency = max
	if len(completions) > 1 {
		res.AchievedPeriod = (completions[len(completions)-1] - completions[0]) / float64(len(completions)-1)
	} else {
		res.AchievedPeriod = math.NaN()
	}
	return res
}
