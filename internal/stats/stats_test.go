package stats

import (
	"math"
	"testing"
	"testing/quick"

	"streamsched/internal/rng"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Fatalf("Mean = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestMeanSingle(t *testing.T) {
	if got := Mean([]float64{7}); !almost(got, 7) {
		t.Fatalf("Mean = %v", got)
	}
}

func TestVariance(t *testing.T) {
	// Sample variance of {2,4,4,4,5,5,7,9} is 4.571428...
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4.571428571428571) > 1e-9 {
		t.Fatalf("Variance = %v", got)
	}
}

func TestVarianceShort(t *testing.T) {
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of single sample should be NaN")
	}
}

func TestStdDevConstant(t *testing.T) {
	if got := StdDev([]float64{3, 3, 3, 3}); !almost(got, 0) {
		t.Fatalf("StdDev of constants = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if got := Min(xs); !almost(got, -1) {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); !almost(got, 5) {
		t.Fatalf("Max = %v", got)
	}
}

func TestMinMaxEmpty(t *testing.T) {
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("Min/Max of empty should be NaN")
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{5, 1, 3}
	if got := Quantile(xs, 0); !almost(got, 1) {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); !almost(got, 5) {
		t.Fatalf("q1 = %v", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.25); !almost(got, 2.5) {
		t.Fatalf("q0.25 = %v", got)
	}
}

func TestMedianOdd(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); !almost(got, 5) {
		t.Fatalf("Median = %v", got)
	}
}

func TestMedianEven(t *testing.T) {
	if got := Median([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Fatalf("Median = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almost(s.Mean, 2) || !almost(s.Min, 1) || !almost(s.Max, 3) || !almost(s.Median, 2) {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := rng.New(1)
	small := make([]float64, 20)
	big := make([]float64, 2000)
	for i := range small {
		small[i] = r.Float64()
	}
	for i := range big {
		big[i] = r.Float64()
	}
	if CI95(big) >= CI95(small) {
		t.Fatalf("CI95 did not shrink: big=%v small=%v", CI95(big), CI95(small))
	}
}

// Property: mean is always within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.IntN(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Uniform(-100, 100)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				t.Fatalf("quantile decreased at q=%v", q)
			}
			prev = v
		}
	}
}
