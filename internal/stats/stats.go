// Package stats provides the small set of descriptive statistics the
// experiment harness needs to aggregate per-point results (each figure point
// in the paper is the mean over 60 random graphs).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It returns NaN for empty input
// and panics if q is outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary bundles the statistics reported for one experiment point.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
	}
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean of xs (NaN for n < 2).
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(n))
}

// String renders a Summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}
