// Fixture for ctxcheck below core: ltf receives its context from the
// caller, so minting roots and nil-guards are both flagged.
package ltf

import "context"

func solve(ctx context.Context) error { return ctx.Err() }

func mintsRoot() error {
	ctx := context.Background() // want `context.Background below core`
	return solve(ctx)
}

func mintsTODO() error {
	return solve(context.TODO()) // want `context.TODO below core`
}

func nilGuardStillFlaggedBelowCore(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background() // want `context.Background below core`
	}
	return solve(ctx)
}

func ctxNotFirst(g int, ctx context.Context) error { // want `context.Context must be the first parameter`
	return solve(ctx)
}

func threadsOK(ctx context.Context) error {
	return solve(ctx)
}

func passesNil() error {
	return solve(nil) // want `nil context passed to solve`
}

func closureInheritsCtx(ctx context.Context) func() error {
	return func() error {
		c := context.Background() // want `context.Background below core`
		return solve(c)
	}
}

func suppressed() error {
	//nolint:ctxcheck // fixture: deliberate detach
	ctx := context.Background()
	return solve(ctx)
}
