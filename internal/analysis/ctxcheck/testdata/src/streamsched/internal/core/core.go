// Fixture for ctxcheck at core: roots are allowed in root functions and
// in the defensive nil-guard, but a ctx-taking function must thread its
// parameter.
package core

import "context"

func solve(ctx context.Context) error { return ctx.Err() }

// A root function without a ctx parameter may mint one.
func rootOK() error {
	return solve(context.Background())
}

// The boundary nil-guard is the documented idiom at and above core.
func nilGuardOK(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return solve(ctx)
}

func ignoresParameter(ctx context.Context) error {
	return solve(context.Background()) // want `context.Background inside a function that already has a ctx`
}

func closureThreads(ctx context.Context) func() error {
	return func() error {
		c := context.TODO() // want `context.TODO inside a function that already has a ctx`
		return solve(c)
	}
}
