package ctxcheck_test

import (
	"testing"

	"streamsched/internal/analysis/analysistest"
	"streamsched/internal/analysis/ctxcheck"
)

func TestCtxcheckBelowCore(t *testing.T) {
	analysistest.Run(t, "testdata", ctxcheck.Analyzer, "streamsched/internal/ltf")
}

func TestCtxcheckAtCore(t *testing.T) {
	analysistest.Run(t, "testdata", ctxcheck.Analyzer, "streamsched/internal/core")
}
