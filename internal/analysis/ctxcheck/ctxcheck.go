// Package ctxcheck enforces the context-threading discipline of the
// solving stack (DESIGN.md §5, §9). The core Solver API is the boundary
// where a root context may be installed; everything beneath it receives
// the caller's context and threads it down, so one cancellation reaches
// every placement loop, search ladder and simulation it governs. The
// analyzer flags:
//
//   - context.Background()/context.TODO() in packages below core — those
//     packages must take the context they run under, never mint a root,
//   - a context.Context parameter that is not the first parameter,
//   - functions that take a ctx parameter yet call context.Background()
//     or context.TODO() anyway — thread the parameter instead,
//   - passing a nil literal where a callee expects a context.Context —
//     pass the caller's ctx (or context.Background() at a true root).
//
// Test files are exempt; entry points (cmd/, examples/) and the layers at
// or above core may create roots, with //nolint:ctxcheck available for
// the rare deliberate detach (e.g. the service's coalesced flights). The
// defensive boundary guard `if ctx == nil { ctx = context.Background() }`
// is recognized and allowed at and above core — external callers may hand
// in nil — but stays flagged below core, where it is dead code.
package ctxcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"streamsched/internal/analysis"
)

// Analyzer is the context-threading checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcheck",
	Doc:  "context.Context is threaded from core down: first parameter, no roots below core, no nil contexts",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	belowCore := analysis.IsBelowCore(pass.Pkg.Path())
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				checkCtxPosition(pass, fd.Type)
				if fd.Body != nil {
					walkFunc(pass, fd.Body, hasCtxParam(pass.TypesInfo, fd.Type), belowCore)
				}
				continue
			}
			// Function literals in package-level initializers.
			walkFunc(pass, decl, false, belowCore)
		}
	}
	return nil
}

// walkFunc checks one function body. Nested literals recurse with their
// own frame: a closure inherits the enclosing function's ctx — a literal
// inside a ctx-taking function should still thread that ctx.
func walkFunc(pass *analysis.Pass, body ast.Node, hasCtx, belowCore bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			// The defensive boundary idiom
			//	if ctx == nil { ctx = context.Background() }
			// is legitimate at and above core, where external callers may
			// hand in a nil context. Below core every caller threads a real
			// ctx, so the guard is dead code and stays flagged.
			if !belowCore && isCtxNilGuard(pass, n) {
				return false
			}
		case *ast.FuncLit:
			checkCtxPosition(pass, n.Type)
			walkFunc(pass, n.Body, hasCtx || hasCtxParam(pass.TypesInfo, n.Type), belowCore)
			return false
		case *ast.CallExpr:
			checkCall(pass, n, belowCore, hasCtx)
		}
		return true
	})
}

// isCtxNilGuard matches `if ctx == nil { ctx = context.Background() }`
// (or context.TODO()), the defensive re-root at an API boundary.
func isCtxNilGuard(pass *analysis.Pass, s *ast.IfStmt) bool {
	if s.Init != nil || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	x, y := ast.Unparen(cond.X), ast.Unparen(cond.Y)
	if !isNilIdent(pass, x) {
		x, y = y, x
	}
	if !isNilIdent(pass, x) {
		return false
	}
	ctxID, ok := y.(*ast.Ident)
	if !ok {
		return false
	}
	if t := pass.TypesInfo.TypeOf(ctxID); t == nil || !analysis.IsContextType(t) {
		return false
	}
	asg, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	lhs, ok := asg.Lhs[0].(*ast.Ident)
	if !ok || lhs.Name != ctxID.Name {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	return analysis.IsPkgFunc(fn, "context", "Background") ||
		analysis.IsPkgFunc(fn, "context", "TODO")
}

func isNilIdent(pass *analysis.Pass, x ast.Expr) bool {
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := info.TypeOf(field.Type); t != nil && analysis.IsContextType(t) {
			return true
		}
	}
	return false
}

// checkCtxPosition flags a context.Context parameter that is not first.
func checkCtxPosition(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0 // parameter index, counting multi-name fields
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		isCtx := t != nil && analysis.IsContextType(t)
		if isCtx && pos != 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		pos += n
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, belowCore, enclosingHasCtx bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if analysis.IsPkgFunc(fn, "context", "Background") || analysis.IsPkgFunc(fn, "context", "TODO") {
		switch {
		case belowCore:
			pass.Reportf(call.Pos(),
				"context.%s below core: packages under the solving API receive their context from the caller; add or thread a ctx parameter",
				fn.Name())
		case enclosingHasCtx:
			pass.Reportf(call.Pos(),
				"context.%s inside a function that already has a ctx: thread the parameter (or //nolint:ctxcheck for a deliberate detach)",
				fn.Name())
		}
		return
	}
	// nil literal passed where the callee wants a context.
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || id.Name != "nil" {
			continue
		}
		if _, isNil := pass.TypesInfo.Uses[id].(*types.Nil); !isNil {
			continue
		}
		if analysis.IsContextType(sig.Params().At(i).Type()) {
			pass.Reportf(arg.Pos(),
				"nil context passed to %s: pass the caller's ctx (or context.Background() at a true root)",
				fn.Name())
		}
	}
}
