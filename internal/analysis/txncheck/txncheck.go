// Package txncheck verifies the transactional-timeline protocol
// (DESIGN.md §4, §9). A oneport.System.Begin or mapper.State.BeginTask
// opens a journaled transaction; the journal mark it takes is only
// released by Commit or Abort (CommitTask/AbortTask), and a transaction
// that escapes without resolution leaves the journal pinned — every later
// Rollback replays its entries, and the LIFO discipline panics on the
// next out-of-order resolve. Modeled on x/tools' lostcancel, the analyzer
// checks, for every Begin site, that Commit or Abort is reached on all
// paths out of the enclosing function:
//
//   - discarding the Begin result (`sys.Begin()`, `_ = sys.Begin()`) is
//     always a leak — nothing can ever resolve the transaction,
//   - a path that returns or falls off the function end while the
//     transaction is open is flagged at the Begin site,
//   - a Txn that escapes its scope — copied to another variable,
//     returned, stored in a composite, passed by value, address taken —
//     is flagged separately: a stale Txn copy can outlive its journal
//     mark and resolve it twice.
//
// The analysis is a structured abstract interpretation of the function
// body (if/for/range/switch/select, labeled break/continue, fallthrough,
// defer-based resolution, panic/os.Exit termination). `goto` makes the
// function unanalyzable and the Begin site is skipped. `defer txn.Abort()`
// — directly or in a deferred closure — resolves every subsequent path.
// Resolution inside a non-deferred closure or goroutine is not counted:
// nothing guarantees it runs before the function exits.
//
// See DESIGN.md §9 for the invariant and the //nolint:txncheck escape
// hatch.
package txncheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"streamsched/internal/analysis"
)

// Analyzer is the transaction-resolution checker.
var Analyzer = &analysis.Analyzer{
	Name: "txncheck",
	Doc:  "every oneport Begin / mapper BeginTask must reach Commit or Abort on all paths, and Txn values must not escape",
	Run:  run,
}

var (
	oneportPath = analysis.Module + "/internal/oneport"
	mapperPath  = analysis.Module + "/internal/mapper"
)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkBody(pass, fd.Body)
			}
		}
		// Function literals in package-level initializers.
		ast.Inspect(f, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncDecl); ok {
				return false
			}
			if lit, ok := n.(*ast.FuncLit); ok {
				checkBody(pass, lit.Body)
				return false // checkBody handles nested literals
			}
			return true
		})
	}
	return nil
}

// checkBody analyzes one function scope. Nested function literals are
// separate scopes: a Begin inside a closure must resolve inside it.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Recurse into nested literals first, then analyze this scope with
	// literal subtrees opaque.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkBody(pass, lit.Body)
			return false
		}
		return true
	})
	for _, site := range collectBegins(pass, body) {
		checkSite(pass, body, site)
	}
}

// beginSite is one Begin/BeginTask call in a function scope.
type beginSite struct {
	call *ast.CallExpr
	kind string     // "Begin" or "BeginTask"
	obj  *types.Var // the Txn variable, nil for BeginTask or discarded results
	bad  string     // non-empty: misuse report instead of path analysis
}

func collectBegins(pass *analysis.Pass, body *ast.BlockStmt) []beginSite {
	var sites []beginSite
	walkScope(body, func(n ast.Node, parents []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		switch {
		case analysis.IsMethod(fn, oneportPath, "System", "Begin"):
			sites = append(sites, classifyBegin(pass, call, parents))
		case analysis.IsMethod(fn, mapperPath, "State", "BeginTask"):
			sites = append(sites, beginSite{call: call, kind: "BeginTask"})
		}
	})
	return sites
}

// classifyBegin inspects how the Begin result is consumed: bound to a
// local (tracked), discarded (always a leak) or anything else (escape).
func classifyBegin(pass *analysis.Pass, call *ast.CallExpr, parents []ast.Node) beginSite {
	site := beginSite{call: call, kind: "Begin"}
	if len(parents) == 0 {
		site.bad = "result of Begin discarded: nothing can Commit or Abort this transaction"
		return site
	}
	switch p := parents[len(parents)-1].(type) {
	case *ast.ExprStmt:
		site.bad = "result of Begin discarded: nothing can Commit or Abort this transaction"
	case *ast.AssignStmt:
		if len(p.Lhs) == 1 && len(p.Rhs) == 1 && p.Rhs[0] == call {
			if id, ok := p.Lhs[0].(*ast.Ident); ok {
				if id.Name == "_" {
					site.bad = "result of Begin discarded: nothing can Commit or Abort this transaction"
					return site
				}
				if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
					site.obj = v
					return site
				}
				if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
					site.obj = v
					return site
				}
			}
		}
		site.bad = "result of Begin must be bound to a local variable so Commit/Abort can resolve it"
	default:
		site.bad = "result of Begin escapes directly; bind it to a local variable and Commit or Abort it"
	}
	return site
}

func checkSite(pass *analysis.Pass, body *ast.BlockStmt, site beginSite) {
	if site.bad != "" {
		pass.Reportf(site.call.Pos(), "%s", site.bad)
		return
	}
	if site.obj != nil {
		checkEscapes(pass, body, site.obj)
	}
	in := &interp{pass: pass, site: site}
	f := in.stmtList(body.List, sNot)
	if in.bail {
		return // goto: unanalyzable, stay silent
	}
	if in.leaked || f.fall&sOpen != 0 {
		what := "transaction"
		if site.kind == "BeginTask" {
			what = "task transaction"
		}
		pass.Reportf(site.call.Pos(),
			"%s begun here may not reach Commit or Abort on every path out of the function",
			what)
	}
}

// checkEscapes flags uses of the Txn variable other than method calls and
// field access: copies, returns, stored values, arguments, address-of.
func checkEscapes(pass *analysis.Pass, body *ast.BlockStmt, obj *types.Var) {
	walkScope(body, func(n ast.Node, parents []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return
		}
		if len(parents) == 0 {
			return
		}
		var msg string
		switch p := parents[len(parents)-1].(type) {
		case *ast.SelectorExpr:
			if p.X == id {
				return // txn.Commit(), txn.Transfer(...): fine
			}
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				msg = "address of transaction taken; a stale Txn reference can outlive its journal mark"
			}
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == id {
					return // reassignment target, not a copy
				}
			}
			msg = "transaction copied to another variable; stale Txn copies can resolve the journal mark twice"
		case *ast.ReturnStmt:
			msg = "transaction returned from the function that began it; resolve it here instead"
		case *ast.CallExpr:
			msg = "transaction passed by value; the callee's copy can outlive this journal mark"
		case *ast.CompositeLit, *ast.KeyValueExpr:
			msg = "transaction stored in a composite value; stale Txn copies can resolve the journal mark twice"
		}
		if msg == "" {
			msg = "transaction value escapes its scope; keep the Txn local and Commit or Abort it here"
		}
		pass.Reportf(id.Pos(), "%s", msg)
	})
}

// walkScope visits the function scope keeping a parent chain, without
// descending into nested function literals.
func walkScope(body *ast.BlockStmt, visit func(n ast.Node, parents []ast.Node)) {
	var parents []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				parents = parents[:len(parents)-1]
				return false
			}
			if _, ok := m.(*ast.FuncLit); ok && m != n {
				return false
			}
			if m != n {
				visit(m, parents)
			}
			parents = append(parents, m)
			return true
		})
	}
	walk(body)
}

// ---- path interpretation ----

// mask is a set of transaction states reaching a program point.
type mask uint8

const (
	sNot  mask = 1 << iota // Begin not yet executed on this path
	sOpen                  // begun, not resolved
	sRes                   // resolved (Commit/Abort reached or deferred)
)

// flow summarizes executing a statement (list): the states that fall
// through, and the states carried by break/continue, keyed by label
// ("" = unlabeled).
type flow struct {
	fall  mask
	brks  map[string]mask
	conts map[string]mask
}

func (f *flow) addBrk(label string, m mask) {
	if m == 0 {
		return
	}
	if f.brks == nil {
		f.brks = map[string]mask{}
	}
	f.brks[label] |= m
}

func (f *flow) addCont(label string, m mask) {
	if m == 0 {
		return
	}
	if f.conts == nil {
		f.conts = map[string]mask{}
	}
	f.conts[label] |= m
}

// absorb merges the branch exits of g into f (fall is handled by callers).
func (f *flow) absorb(g flow) {
	for l, m := range g.brks {
		f.addBrk(l, m)
	}
	for l, m := range g.conts {
		f.addCont(l, m)
	}
}

// takeBrk removes and returns the break masks a loop/switch/select
// consumes: the unlabeled form plus its own label.
func takeBrk(g *flow, label string) mask {
	m := g.brks[""]
	delete(g.brks, "")
	if label != "" {
		m |= g.brks[label]
		delete(g.brks, label)
	}
	return m
}

// takeBrkLabeled removes only `break label` — used for labeled blocks and
// ifs, which an unlabeled break does not target.
func takeBrkLabeled(g *flow, label string) mask {
	if label == "" {
		return 0
	}
	m := g.brks[label]
	delete(g.brks, label)
	return m
}

func takeCont(g *flow, label string) mask {
	m := g.conts[""]
	delete(g.conts, "")
	if label != "" {
		m |= g.conts[label]
		delete(g.conts, label)
	}
	return m
}

type interp struct {
	pass   *analysis.Pass
	site   beginSite
	leaked bool // a return/function-end was reachable with the txn open
	bail   bool // goto seen: give up
}

func (i *interp) stmtList(list []ast.Stmt, in mask) flow {
	var f flow
	cur := in
	for _, s := range list {
		if cur == 0 || i.bail {
			break
		}
		sf := i.stmt(s, cur, "")
		f.absorb(sf)
		cur = sf.fall
	}
	f.fall = cur
	return f
}

func (i *interp) stmt(s ast.Stmt, in mask, label string) flow {
	switch s := s.(type) {
	case *ast.BlockStmt:
		f := i.stmtList(s.List, in)
		f.fall |= takeBrkLabeled(&f, label) // labeled block: break L falls out
		return f

	case *ast.LabeledStmt:
		return i.stmt(s.Stmt, in, s.Label.Name)

	case *ast.ReturnStmt:
		out := i.transfer(s, in)
		if out&sOpen != 0 {
			i.leaked = true
		}
		return flow{}

	case *ast.BranchStmt:
		var f flow
		switch s.Tok {
		case token.BREAK:
			f.addBrk(labelName(s), in)
		case token.CONTINUE:
			f.addCont(labelName(s), in)
		case token.GOTO:
			i.bail = true
		case token.FALLTHROUGH:
			f.fall = in // routed to the next clause by the switch interp
		}
		return f

	case *ast.IfStmt:
		in = i.transfer(s.Init, in)
		t := i.stmt(s.Body, in, "")
		var f flow
		f.absorb(t)
		f.fall = t.fall
		if s.Else != nil {
			e := i.stmt(s.Else, in, "")
			f.absorb(e)
			f.fall |= e.fall
		} else {
			f.fall |= in
		}
		f.fall |= takeBrkLabeled(&f, label)
		return f

	case *ast.ForStmt:
		entry := i.transfer(s.Init, in)
		return i.loop(s.Body, s.Post, entry, s.Cond != nil, label)

	case *ast.RangeStmt:
		entry := i.transfer(&ast.ExprStmt{X: s.X}, in)
		return i.loop(s.Body, nil, entry, true, label)

	case *ast.SwitchStmt:
		in = i.transfer(s.Init, in)
		if s.Tag != nil {
			in = i.transfer(&ast.ExprStmt{X: s.Tag}, in)
		}
		return i.switchClauses(s.Body.List, in, label)

	case *ast.TypeSwitchStmt:
		in = i.transfer(s.Init, in)
		in = i.transfer(s.Assign, in)
		return i.switchClauses(s.Body.List, in, label)

	case *ast.SelectStmt:
		var f flow
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cin := i.transfer(cc.Comm, in)
			cf := i.stmtList(cc.Body, cin)
			f.absorb(cf)
			f.fall |= cf.fall
		}
		if len(s.Body.List) == 0 {
			f.fall = 0 // empty select blocks forever
		}
		f.fall |= takeBrk(&f, label)
		return f

	case *ast.DeferStmt:
		if i.resolvesDeferred(s) {
			return flow{fall: resolveMask(in)}
		}
		return flow{fall: i.transfer(s, in)}

	default:
		// Simple statements: expression, assignment, declaration, send,
		// inc/dec, go, empty. A call that terminates the program closes
		// the path without a leak report.
		if es, ok := s.(*ast.ExprStmt); ok && i.terminates(es.X) {
			return flow{}
		}
		return flow{fall: i.transfer(s, in)}
	}
}

// switchClauses interprets expr/type switch bodies, chaining fallthrough
// falls into the next clause.
func (i *interp) switchClauses(clauses []ast.Stmt, in mask, label string) flow {
	var f flow
	hasDefault := false
	var carry mask // fallthrough from the previous clause
	for _, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		cf := i.stmtList(cc.Body, in|carry)
		f.absorb(cf)
		if endsWithFallthrough(cc.Body) {
			carry = cf.fall
		} else {
			f.fall |= cf.fall
			carry = 0
		}
	}
	f.fall |= carry // trailing fallthrough is illegal Go; be safe
	if !hasDefault {
		f.fall |= in
	}
	f.fall |= takeBrk(&f, label)
	return f
}

// loop interprets for/range bodies to a fixpoint over the 3-state mask.
// condExit: the loop can be left when its condition fails (for-with-cond,
// range); a bare `for` only exits through break.
func (i *interp) loop(body *ast.BlockStmt, post ast.Stmt, entry mask, condExit bool, label string) flow {
	bodyIn := entry
	var bf flow
	for iter := 0; iter < 4; iter++ {
		bf = i.stmtList(body.List, bodyIn)
		next := bodyIn | i.transfer(post, bf.fall|takeCont(&bf, label))
		if next == bodyIn {
			break
		}
		bodyIn = next
	}
	brkOut := takeBrk(&bf, label)
	takeCont(&bf, label) // already folded into bodyIn by the fixpoint
	var f flow
	f.absorb(bf)
	f.fall = brkOut
	if condExit {
		f.fall |= bodyIn
	}
	return f
}

// transfer applies the state transition of a straight-line statement:
// a Begin at this site opens the transaction; a matching resolve call
// closes it. Nested function literals are opaque.
func (i *interp) transfer(n ast.Node, in mask) mask {
	if n == nil || in == 0 {
		return in
	}
	out := in
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case call == i.site.call:
			out = sOpen
		case i.isResolve(call):
			out = resolveMask(out)
		}
		return true
	})
	return out
}

// resolveMask moves open (and already-resolved) states to resolved;
// not-yet-begun paths are unaffected.
func resolveMask(in mask) mask {
	if in&(sOpen|sRes) != 0 {
		return (in & sNot) | sRes
	}
	return in
}

// isResolve reports whether call resolves this site's transaction:
// Commit/Abort on the tracked Txn variable, or CommitTask/AbortTask for a
// BeginTask site.
func (i *interp) isResolve(call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(i.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if i.site.kind == "BeginTask" {
		return analysis.IsMethod(fn, mapperPath, "State", "CommitTask") ||
			analysis.IsMethod(fn, mapperPath, "State", "AbortTask")
	}
	if !analysis.IsMethod(fn, oneportPath, "Txn", "Commit") &&
		!analysis.IsMethod(fn, oneportPath, "Txn", "Abort") {
		return false
	}
	if i.site.obj == nil {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := ast.Unparen(sel.X)
	if u, ok := recv.(*ast.UnaryExpr); ok && u.Op == token.AND {
		recv = ast.Unparen(u.X)
	}
	id, ok := recv.(*ast.Ident)
	return ok && i.pass.TypesInfo.Uses[id] == i.site.obj
}

// resolvesDeferred reports whether a defer statement guarantees
// resolution: `defer txn.Abort()` or a deferred closure whose body
// resolves the transaction.
func (i *interp) resolvesDeferred(d *ast.DeferStmt) bool {
	if i.isResolve(d.Call) {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != lit {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && i.isResolve(call) {
			found = true
		}
		return !found
	})
	return found
}

// terminates reports whether a call expression never returns:
// panic, os.Exit, runtime.Goexit, log.Fatal*. A path ending in one of
// these cannot leak a transaction into caller-visible state.
func (i *interp) terminates(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := i.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	fn := analysis.CalleeFunc(i.pass.TypesInfo, call)
	return analysis.IsPkgFunc(fn, "os", "Exit") ||
		analysis.IsPkgFunc(fn, "runtime", "Goexit") ||
		analysis.IsPkgFunc(fn, "log", "Fatal") ||
		analysis.IsPkgFunc(fn, "log", "Fatalf") ||
		analysis.IsPkgFunc(fn, "log", "Fatalln")
}

// endsWithFallthrough reports whether a case body's last statement is a
// fallthrough (possibly labeled, which gofmt rejects but the parser allows).
func endsWithFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	s := body[len(body)-1]
	for {
		ls, ok := s.(*ast.LabeledStmt)
		if !ok {
			break
		}
		s = ls.Stmt
	}
	bs, ok := s.(*ast.BranchStmt)
	return ok && bs.Tok == token.FALLTHROUGH
}

func labelName(s *ast.BranchStmt) string {
	if s.Label != nil {
		return s.Label.Name
	}
	return ""
}
