package txncheck_test

import (
	"testing"

	"streamsched/internal/analysis/analysistest"
	"streamsched/internal/analysis/txncheck"
)

func TestTxncheck(t *testing.T) {
	analysistest.Run(t, "testdata", txncheck.Analyzer, "txnfix")
}
