// Fixture for txncheck: each want comment pins one diagnostic.
package txnfix

import (
	"streamsched/internal/mapper"
	"streamsched/internal/oneport"
)

func use(interface{}) {}

// --- straight-line resolution: ok ---

func commitStraight(s *oneport.System) {
	txn := s.Begin()
	txn.Compute(1)
	txn.Commit()
}

func deferAbort(s *oneport.System) float64 {
	txn := s.Begin()
	defer txn.Abort()
	return txn.Compute(1)
}

func deferClosureAbort(s *oneport.System) {
	txn := s.Begin()
	defer func() { txn.Abort() }()
	txn.Compute(1)
}

// --- discarded results ---

func discarded(s *oneport.System) {
	s.Begin() // want `result of Begin discarded`
}

func discardedBlank(s *oneport.System) {
	_ = s.Begin() // want `result of Begin discarded`
}

func escapesDirectly(s *oneport.System) {
	use(s.Begin()) // want `result of Begin escapes directly`
}

// --- leaks on some path ---

func leakEarlyReturn(s *oneport.System, bad bool) {
	txn := s.Begin() // want `may not reach Commit or Abort on every path`
	if bad {
		return
	}
	txn.Commit()
}

func leakFallsOffEnd(s *oneport.System) {
	txn := s.Begin() // want `may not reach Commit or Abort on every path`
	txn.Compute(1)
}

func leakOneBranch(s *oneport.System, ok bool) {
	txn := s.Begin() // want `may not reach Commit or Abort on every path`
	if ok {
		txn.Commit()
	}
}

func leakSwitchNoDefault(s *oneport.System, k int) {
	txn := s.Begin() // want `may not reach Commit or Abort on every path`
	switch k {
	case 0:
		txn.Commit()
	case 1:
		txn.Abort()
	}
}

// --- resolution on every path: ok ---

func bothBranches(s *oneport.System, ok bool) {
	txn := s.Begin()
	if ok {
		txn.Commit()
	} else {
		txn.Abort()
	}
}

func switchWithDefault(s *oneport.System, k int) {
	txn := s.Begin()
	switch k {
	case 0:
		txn.Commit()
	default:
		txn.Abort()
	}
}

func perIteration(s *oneport.System, n int) {
	for i := 0; i < n; i++ {
		txn := s.Begin()
		txn.Compute(1)
		txn.Abort()
	}
}

func breakAfterResolve(s *oneport.System, n int) {
	for i := 0; i < n; i++ {
		txn := s.Begin()
		if i > 2 {
			txn.Abort()
			break
		}
		txn.Commit()
	}
}

func leakViaBreak(s *oneport.System, n int) {
	for i := 0; i < n; i++ {
		txn := s.Begin() // want `may not reach Commit or Abort on every path`
		if i > 2 {
			break
		}
		txn.Commit()
	}
}

func panicPath(s *oneport.System, bad bool) {
	txn := s.Begin()
	if bad {
		panic("bad input") // terminates: not a leak
	}
	txn.Commit()
}

// --- escaping Txn values ---

func escapeCopy(s *oneport.System) {
	txn := s.Begin()
	t2 := txn // want `transaction copied to another variable`
	t2.Commit()
	txn.Commit()
}

func escapeReturn(s *oneport.System) oneport.Txn {
	txn := s.Begin() // want `may not reach Commit or Abort on every path`
	return txn       // want `transaction returned from the function`
}

func escapeArg(s *oneport.System) {
	txn := s.Begin()
	use(txn) // want `transaction passed by value`
	txn.Commit()
}

// --- closures are separate scopes ---

func resolveInClosureNotCounted(s *oneport.System) {
	txn := s.Begin() // want `may not reach Commit or Abort on every path`
	f := func() { txn.Abort() }
	_ = f
}

func beginInsideClosure(s *oneport.System) func() {
	return func() {
		txn := s.Begin() // want `may not reach Commit or Abort on every path`
		txn.Compute(1)
	}
}

// --- mapper task transactions ---

func taskOK(st *mapper.State, ok bool) {
	st.BeginTask(3)
	if ok {
		st.CommitTask()
	} else {
		st.AbortTask()
	}
}

func taskLeak(st *mapper.State, bad bool) {
	st.BeginTask(3) // want `task transaction begun here may not reach Commit or Abort`
	if bad {
		return
	}
	st.CommitTask()
}

// --- suppression ---

func suppressed(s *oneport.System) {
	//nolint:txncheck // fixture: deliberate leak kept for the escape hatch test
	txn := s.Begin()
	txn.Compute(1)
}
