// Stub of the production oneport package: txncheck matches Begin/Commit/
// Abort by package path, receiver type and method name, so the fixture
// reuses the real import path with a minimal surface.
package oneport

type System struct{ open int }

type Txn struct{ s *System }

func (s *System) Begin() Txn { s.open++; return Txn{s} }

func (t Txn) Commit() { t.s.open-- }

func (t Txn) Abort() { t.s.open-- }

func (t Txn) Compute(work float64) float64 { return work }
