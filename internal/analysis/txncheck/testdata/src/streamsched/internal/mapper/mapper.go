// Stub of the production mapper package for txncheck's BeginTask/
// CommitTask/AbortTask tracking.
package mapper

type State struct{ live bool }

func (st *State) BeginTask(t int) { st.live = true }

func (st *State) CommitTask() { st.live = false }

func (st *State) AbortTask() { st.live = false }
