// The `go vet -vettool` separate-compilation driver. The go command
// invokes the tool once per package with a JSON config file describing the
// compilation unit — source files, the import map, and the export-data
// files of every dependency it already built — and expects:
//
//	-V=full    an identity line for build caching
//	-flags     the tool's analyzer flags as JSON (we expose none)
//	unit.cfg   run the analysis, diagnostics to stderr, exit 1 on findings
//
// This mirrors x/tools' unitchecker (the standard vet tool is built on it)
// without the dependency: type information comes from the gc export data
// the go command already produced, so a whole-module run costs one
// typecheck per package and is cached by the go command like any build
// step. Dependency units arrive with VetxOnly set (they exist only to
// carry analysis facts); the streamsched analyzers use no facts, so those
// units are answered with an empty facts file without even parsing.
package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
)

// UnitConfig is the JSON compilation-unit description the go command
// writes for a vettool (cmd/go/internal/work.vetConfig). Field names are
// the wire contract; unused fields are kept for completeness.
type UnitConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string

	SucceedOnTypecheckFailure bool
}

// RunUnit executes the analyzers over the compilation unit described by
// cfgFile and returns the process exit code: 0 clean, 1 findings or
// failure. Diagnostics are printed to stderr in the standard
// file:line:col: message form.
func RunUnit(cfgFile string, analyzers []*Analyzer) int {
	cfg, err := readUnitConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamschedlint:", err)
		return 1
	}

	// Facts-only dependency unit: nothing to analyze, nothing to export.
	if cfg.VetxOnly {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "streamschedlint:", err)
				return 1
			}
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "streamschedlint:", err)
			return 1
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  unitImporter(cfg, fset),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(basePkgPath(cfg.ImportPath), fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "streamschedlint:", err)
		return 1
	}

	diags, err := RunAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamschedlint:", err)
		return 1
	}

	// The go command caches vet results through the facts file; write an
	// empty one so clean packages are not re-analyzed every run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "streamschedlint:", err)
			return 1
		}
	}

	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return 1
}

func readUnitConfig(cfgFile string) (*UnitConfig, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err)
	}
	if !cfg.VetxOnly && len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// unitImporter resolves imports through the export-data files the go
// command built for the unit's dependencies: import path → canonical
// package path (ImportMap) → export data file (PackageFile), read by the
// standard gc importer.
func unitImporter(cfg *UnitConfig, fset *token.FileSet) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("cannot resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// VersionLine prints the -V=full identity line the go command requires
// from a vettool: `<name> version devel buildID=<hex>`. The build ID is a
// content hash of the executable, so the go command's vet result cache
// invalidates exactly when the tool changes.
func VersionLine(w io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	name := filepath.Base(exe)
	_, err = fmt.Fprintf(w, "%s version devel buildID=%x\n", name, h.Sum(nil))
	return err
}
