// The //nolint:streamsched escape hatch. A directive comment silences
// streamsched analyzer diagnostics on its line; a directive that stands on
// a line of its own also covers the following line, so call sites can keep
// the justification above the code:
//
//	//nolint:streamsched // total comparator: ties broken by (task, copy)
//	slices.SortFunc(refs, cmp)
//
// Forms:
//
//	//nolint:streamsched             — silences every streamsched analyzer
//	//nolint:determcheck             — silences one analyzer by name
//	//nolint:determcheck,hotpathcheck — silences several
//
// A justification after a second "//" (or after a space) is encouraged and
// ignored by the parser. Directives are deliberately line-scoped: there is
// no file- or block-level suppression, so every exemption is visible next
// to the code it excuses.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// nolintDirective records one parsed //nolint comment.
type nolintDirective struct {
	names map[string]bool // empty ⇒ the bare/blanket "streamsched" form
	all   bool
}

// nolintIndex maps file → line → directives covering that line.
type nolintIndex struct {
	fset  *token.FileSet
	lines map[*token.File]map[int][]nolintDirective
}

// buildNolint scans every comment in the files for nolint directives.
func buildNolint(fset *token.FileSet, files []*ast.File) *nolintIndex {
	idx := &nolintIndex{fset: fset, lines: make(map[*token.File]map[int][]nolintDirective)}
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseNolint(c.Text)
				if !ok {
					continue
				}
				line := tf.Line(c.Pos())
				m := idx.lines[tf]
				if m == nil {
					m = make(map[int][]nolintDirective)
					idx.lines[tf] = m
				}
				m[line] = append(m[line], d)
				// A single-line directive also covers the following line,
				// so the justification can sit above the code it excuses.
				// (Trailing directives already cover their own line; the
				// extra next-line reach is deliberate and harmless — an
				// exemption is always adjacent to the code it names.)
				if tf.Line(c.Pos()) == tf.Line(c.End()) {
					m[line+1] = append(m[line+1], d)
				}
			}
		}
	}
	return idx
}

// parseNolint recognizes //nolint:<list> comments naming streamsched or a
// streamsched analyzer. Unqualified "//nolint" (no list) is ignored: the
// escape hatch must name what it silences.
func parseNolint(text string) (nolintDirective, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "nolint:")
	if !ok {
		return nolintDirective{}, false
	}
	// Cut an optional justification: "names // why" or "names -- why".
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	d := nolintDirective{names: make(map[string]bool)}
	for _, name := range strings.Split(rest, ",") {
		name = strings.TrimSpace(name)
		switch {
		case name == "streamsched" || name == "streamschedlint":
			d.all = true
		case name != "":
			d.names[name] = true
		}
	}
	if !d.all && len(d.names) == 0 {
		return nolintDirective{}, false
	}
	return d, true
}

// suppress reports whether a directive covers analyzer name at pos.
func (idx *nolintIndex) suppress(name string, pos token.Pos) bool {
	tf := idx.fset.File(pos)
	if tf == nil {
		return false
	}
	for _, d := range idx.lines[tf][tf.Line(pos)] {
		if d.all || d.names[name] {
			return true
		}
	}
	return false
}
