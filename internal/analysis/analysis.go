// Package analysis is a self-contained analyzer framework for the repo's
// own static checks (DESIGN.md §9). It mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — but is
// built on the standard library alone so the module keeps its zero-dep
// property: the driver speaks the `go vet -vettool` separate-compilation
// protocol (unit.go), and the fixture harness under analysistest mirrors
// x/tools' analysistest. If the tree ever takes an x/tools dependency,
// porting an analyzer is a mechanical import swap.
//
// The framework deliberately supports only what the streamsched analyzers
// need: no facts, no analyzer dependencies, no suggested fixes. Every
// diagnostic honors the //nolint:streamsched escape hatch (nolint.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check. Run inspects the package in Pass and
// reports findings through pass.Report/Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in per-analyzer
	// //nolint:<name> suppressions. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description: the invariant the analyzer
	// encodes and how to satisfy it.
	Doc string
	// Run performs the analysis. Diagnostics go through pass.Report; the
	// error return is for analysis failures, not findings.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass carries one package's worth of parsed and type-checked input to
// an analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives diagnostics that survived nolint suppression.
	report func(Diagnostic)
	// suppress decides whether a diagnostic at pos from this analyzer is
	// silenced by a //nolint directive.
	suppress func(name string, pos token.Pos) bool
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Report emits d unless a //nolint directive covers it.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	if p.suppress != nil && p.suppress(d.Analyzer, d.Pos) {
		return
	}
	p.report(d)
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The analyzers
// enforce production-code invariants; tests legitimately range over maps,
// build root contexts and format failures, so every streamsched analyzer
// skips test files through this helper.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.File(pos).Name(), "_test.go")
}

// RunAnalyzers parses nolint directives from the files and runs each
// analyzer over the package, returning the surviving diagnostics in
// position order per analyzer. It is the single execution path shared by
// the vet driver (unit.go) and the analysistest harness, so suppression
// behaves identically under `go vet` and in fixture tests.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	nl := buildNolint(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { out = append(out, d) },
			suppress:  nl.suppress,
		}
		if err := a.Run(pass); err != nil {
			return out, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return out, nil
}
