// Package suite assembles the streamsched analyzer set in one place, so
// cmd/streamschedlint and the tests agree on what "the suite" is.
package suite

import (
	"streamsched/internal/analysis"
	"streamsched/internal/analysis/ctxcheck"
	"streamsched/internal/analysis/determcheck"
	"streamsched/internal/analysis/hotpathcheck"
	"streamsched/internal/analysis/txncheck"
)

// All is every analyzer streamschedlint runs, in reporting order.
var All = []*analysis.Analyzer{
	txncheck.Analyzer,
	determcheck.Analyzer,
	ctxcheck.Analyzer,
	hotpathcheck.Analyzer,
}
