// Fixture for determcheck: this path is one of the deterministic
// packages, so every nondeterminism source below must be flagged.
package sim

import (
	"math/rand" // want `import of "math/rand" in deterministic package sim`
	"slices"
	"sort"
	"time"
)

func seed() int { return rand.Int() }

func mapRange(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `range over a map in deterministic package sim`
		out = append(out, v)
	}
	return out
}

func sliceRangeOK(s []string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

func wallClock() int64 {
	t := time.Now() // want `time.Now in deterministic package sim`
	return t.Unix()
}

func unstableSorts(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort.Slice in deterministic package sim`
	slices.SortFunc(xs, func(a, b int) int { return a - b })     // want `slices.SortFunc in deterministic package sim`
}

func stableSortsOK(xs []int) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] })
	slices.SortStableFunc(xs, func(a, b int) int { return a - b })
	sort.Ints(xs)
	slices.Sort(xs)
}

func suppressed(m map[int]bool) int {
	n := 0
	// Order-independent reduction: counting values ignores visit order.
	//nolint:determcheck // order-independent count
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}
