// Fixture for determcheck's scoping: service is not a deterministic
// package, so nothing here is flagged.
package service

import (
	"sort"
	"time"
)

func free(m map[int]string) (n int, at time.Time) {
	for range m {
		n++
	}
	xs := []int{3, 1, 2}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return n, time.Now()
}
