// Package determcheck enforces the golden byte-identity invariant of the
// deterministic packages (mapper, ltf, rltf, sim, oneport, timeline,
// schedule, baselines): every schedule and simulation result is pinned by
// committed golden files, so any source of iteration-order or wall-clock
// nondeterminism is a latent golden break. The analyzer flags, in those
// packages (test files excluded):
//
//   - `range` over a map — iteration order is randomized per run; iterate
//     a sorted key slice or an index-ordered scan instead,
//   - time.Now (and friends) — deterministic code has no wall clock,
//   - importing math/rand or math/rand/v2 — randomness must flow through
//     internal/rng so seeds are explicit and reproducible,
//   - sort.Slice / slices.SortFunc — unstable sorts permute equal elements
//     unpredictably under comparator ties; use sort.SliceStable /
//     slices.SortStableFunc, or keep the unstable sort with a
//     //nolint:determcheck justification proving the comparator total.
//
// See DESIGN.md §9 for the invariant and the escape hatch.
package determcheck

import (
	"go/ast"
	"go/types"

	"streamsched/internal/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determcheck",
	Doc:  "forbid map ranges, wall-clock reads, ad-hoc randomness and unstable sorts in deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(),
					"import of %s in deterministic package %s: draw randomness through internal/rng with an explicit seed",
					imp.Path.Value, pass.Pkg.Name())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(),
						"range over a map in deterministic package %s: iteration order is randomized per process; iterate a sorted key slice or an index-ordered scan",
						pass.Pkg.Name())
				}
			case *ast.CallExpr:
				checkCall(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch {
	case analysis.IsPkgFunc(fn, "time", "Now"),
		analysis.IsPkgFunc(fn, "time", "Since"),
		analysis.IsPkgFunc(fn, "time", "Until"):
		pass.Reportf(call.Pos(),
			"time.%s in deterministic package %s: deterministic code must not read the wall clock",
			fn.Name(), pass.Pkg.Name())
	case analysis.IsPkgFunc(fn, "sort", "Slice"):
		pass.Reportf(call.Pos(),
			"sort.Slice in deterministic package %s: unstable under comparator ties; use sort.SliceStable or justify a total comparator with //nolint:determcheck",
			pass.Pkg.Name())
	case analysis.IsPkgFunc(fn, "slices", "SortFunc"):
		pass.Reportf(call.Pos(),
			"slices.SortFunc in deterministic package %s: unstable under comparator ties; use slices.SortStableFunc or justify a total comparator with //nolint:determcheck",
			pass.Pkg.Name())
	}
}
