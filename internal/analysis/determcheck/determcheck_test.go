package determcheck_test

import (
	"testing"

	"streamsched/internal/analysis/analysistest"
	"streamsched/internal/analysis/determcheck"
)

func TestDetermcheckDeterministicPkg(t *testing.T) {
	analysistest.Run(t, "testdata", determcheck.Analyzer, "streamsched/internal/sim")
}

func TestDetermcheckIgnoresOtherPkgs(t *testing.T) {
	analysistest.Run(t, "testdata", determcheck.Analyzer, "streamsched/internal/service")
}
