// Package analysistest runs a streamsched analyzer over fixture packages
// and checks its diagnostics against // want comments, mirroring x/tools'
// analysistest on the standard library alone.
//
// Fixtures live under <testdata>/src/<importpath>/ and may reuse real
// import paths (e.g. streamsched/internal/oneport backed by a stub), so an
// analyzer keyed on production package paths exercises against the same
// paths it matches in the tree. A fixture line carrying an expected
// finding says:
//
//	sys.Begin() // want `result of Begin discarded`
//
// Each string after `want` is a regular expression (quoted or backquoted)
// that must match a diagnostic reported on that line; diagnostics without
// a matching want, and wants without a matching diagnostic, fail the test.
// A line expecting several findings lists several patterns.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"streamsched/internal/analysis"
)

// Run loads the fixture package at <testdata>/src/<pkgPath>, applies the
// analyzer and checks diagnostics against the fixture's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		testdata: testdata,
		fset:     fset,
		pkgs:     map[string]*types.Package{},
		stdlib:   importer.ForCompiler(fset, "source", nil),
	}
	files, pkg, info, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	diags, err := analysis.RunAnalyzers(fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	checkWants(t, fset, files, diags)
}

// loader typechecks fixture packages, resolving imports against the
// fixture tree first and the standard library (from source) second.
type loader struct {
	testdata string
	fset     *token.FileSet
	pkgs     map[string]*types.Package
	stdlib   types.Importer
}

func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if dir := filepath.Join(l.testdata, "src", filepath.FromSlash(path)); dirExists(dir) {
		_, pkg, _, err := l.load(path)
		return pkg, err
	}
	return l.stdlib.Import(path)
}

func (l *loader) load(path string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(l.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no fixture files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	l.pkgs[path] = pkg
	return files, pkg, info, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// want is one expected-diagnostic pattern anchored to a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				for _, w := range parseWant(t, c.Text) {
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: w.re, text: w.text})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}

var wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)

// parseWant extracts the quoted regexps from a `// want "..." ...` comment.
func parseWant(t *testing.T, comment string) []*want {
	m := wantRe.FindStringSubmatch(comment)
	if m == nil {
		return nil
	}
	var out []*want
	rest := strings.TrimSpace(m[1])
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"', '`':
			end := strings.IndexByte(rest[1:], rest[0])
			if end < 0 {
				t.Fatalf("unterminated want pattern: %s", comment)
			}
			lit = rest[:end+2]
			rest = strings.TrimSpace(rest[end+2:])
		default:
			t.Fatalf("want patterns must be quoted or backquoted: %s", comment)
		}
		text, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("bad want pattern %s: %v", lit, err)
		}
		re, err := regexp.Compile(text)
		if err != nil {
			t.Fatalf("bad want regexp %q: %v", text, err)
		}
		out = append(out, &want{re: re, text: text})
	}
	return out
}
