// Package-set configuration for the streamsched analyzers: which packages
// carry which invariants. The sets are keyed by import path so the same
// analyzers work over the real module and over analysistest fixtures
// (whose fake packages reuse the real import paths).
package analysis

import "strings"

// Module is the module path the invariants are anchored to.
const Module = "streamsched"

// deterministicPkgs lists the packages whose outputs are pinned by golden
// byte-identity (testdata/golden): schedule construction, simulation and
// the baselines. Inside them, map iteration order, wall-clock reads,
// unseeded randomness and non-stable sorts are all bugs waiting for a
// hash-seed change (determcheck).
var deterministicPkgs = pathSet(
	"internal/mapper",
	"internal/ltf",
	"internal/rltf",
	"internal/sim",
	"internal/oneport",
	"internal/timeline",
	"internal/schedule",
	"internal/baselines",
)

// belowCorePkgs lists the packages beneath the core solving API. They
// receive their context from core (or from whoever drives them) and must
// never mint a root context of their own: a context.Background() below
// core silently detaches a placement loop from the caller's cancellation
// (ctxcheck).
var belowCorePkgs = pathSet(
	"internal/bitset",
	"internal/dag",
	"internal/infeas",
	"internal/platform",
	"internal/timeline",
	"internal/oneport",
	"internal/schedule",
	"internal/mapper",
	"internal/ltf",
	"internal/rltf",
	"internal/sim",
	"internal/baselines",
)

func pathSet(rel ...string) map[string]bool {
	m := make(map[string]bool, len(rel))
	for _, r := range rel {
		m[Module+"/"+r] = true
	}
	return m
}

// basePkgPath strips the " [pkg.test]" variant suffix go vet appends to
// the import path of a package rebuilt for its own tests.
func basePkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// IsDeterministic reports whether pkgPath carries the golden byte-identity
// determinism invariant.
func IsDeterministic(pkgPath string) bool { return deterministicPkgs[basePkgPath(pkgPath)] }

// IsBelowCore reports whether pkgPath sits beneath the core solving API.
func IsBelowCore(pkgPath string) bool { return belowCorePkgs[basePkgPath(pkgPath)] }
