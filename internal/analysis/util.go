// Shared type-resolution helpers for the streamsched analyzers.
package analysis

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves the function or method a call expression invokes,
// or nil for calls through function values, built-ins and conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function pkgPath.name
// (e.g. "time".Now). It matches by full package path.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Name() == name &&
		fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// IsMethod reports whether fn is a method called name on a (possibly
// pointer) named receiver type recvType declared in package pkgPath.
func IsMethod(fn *types.Func, pkgPath, recvType, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == recvType && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// FuncHasDirective reports whether the function declaration carries the
// given //-style directive comment (e.g. "//streamsched:hotpath") in its
// doc comment group.
func FuncHasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == directive {
			return true
		}
	}
	return false
}
