// Package hotpathcheck keeps the allocation-free hot path allocation-free
// (DESIGN.md §7): functions marked with a //streamsched:hotpath directive
// — candidate evaluation, trial placement, timeline Reserve/Rollback, sim
// dispatch — sit inside loops that the PR2/PR5 benchmarks budget at a
// handful of allocations per operation, and one innocent fmt.Sprintf
// regresses allocs/op long before the bench gate notices. In a marked
// function the analyzer flags:
//
//   - any call into package fmt — formatting allocates; move error and
//     panic message construction to a cold, unmarked helper,
//   - implicit or explicit conversion of a concrete value to an interface
//     type (call arguments, assignments, returns, composite literals,
//     variadic ...any) — interface boxing heap-allocates the value,
//   - function literals that capture enclosing variables — captured
//     closures escape to the heap; hoist the state or pass it explicitly.
//     Literals passed directly to sort.Search are exempt: the callback
//     provably does not escape it,
//   - any call into internal/faultinject — fault-injection sites belong on
//     cold paths only (DESIGN.md §11): disarmed they still cost an atomic
//     load, and the hot path is budgeted tighter than that,
//   - any call into internal/obs except obs.Enabled — tracing spans and
//     events are calls (and, armed, allocations); hot-path instrumentation
//     is plain counter increments (mapper.PhaseCounters, DESIGN.md §12),
//     folded into spans by the cold callers that own them.
//
// The marker is a doc-comment directive:
//
//	//streamsched:hotpath
//	func (st *State) evalCandidate(...) ... { ... }
//
// See DESIGN.md §9 for the invariant and the //nolint:hotpathcheck escape
// hatch.
package hotpathcheck

import (
	"go/ast"
	"go/types"

	"streamsched/internal/analysis"
)

// Directive is the doc-comment marker that opts a function into the
// hot-path checks.
const Directive = "//streamsched:hotpath"

// Analyzer is the hot-path allocation checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathcheck",
	Doc:  "functions marked //streamsched:hotpath must not call fmt, box interfaces or capture escaping closures",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.FuncHasDirective(fd, Directive) {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	sig, _ := pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature)
	checkScope(pass, fd, fd.Body, sig)
}

// checkScope checks one function scope (the declaration body or a nested
// literal's body); sig is that scope's own signature, so return statements
// are matched against the right result types.
func checkScope(pass *analysis.Pass, fd *ast.FuncDecl, body *ast.BlockStmt, sig *types.Signature) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(info, n); fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "fmt":
					pass.Reportf(n.Pos(),
						"fmt.%s in hotpath function %s: formatting allocates; build the message in a cold helper",
						fn.Name(), fd.Name.Name)
					return true // args are doomed anyway; skip boxing noise
				case "streamsched/internal/faultinject":
					pass.Reportf(n.Pos(),
						"faultinject.%s in hotpath function %s: fault sites belong on cold paths only",
						fn.Name(), fd.Name.Name)
					return true
				case "streamsched/internal/obs":
					// Tracing belongs one level up: span open/close and event
					// emission are calls (and, armed, allocations) the hot
					// path cannot afford. Enabled() alone is exempt — it is
					// the documented one-atomic-load guard. Plain counter
					// increments (mapper.PhaseCounters) are the sanctioned
					// in-hotpath instrumentation.
					if fn.Name() != "Enabled" {
						pass.Reportf(n.Pos(),
							"obs.%s in hotpath function %s: tracing belongs on cold paths; increment a phase counter instead",
							fn.Name(), fd.Name.Name)
						return true
					}
				}
			}
			checkCallBoxing(pass, fd, n)
		case *ast.FuncLit:
			checkFuncLit(pass, fd, n)
			litSig, _ := info.TypeOf(n).(*types.Signature)
			checkScope(pass, fd, n.Body, litSig)
			return false
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break // x, y := f() — multi-value, no per-expr boxing check
				}
				if lt := info.TypeOf(lhs); lt != nil {
					checkBoxed(pass, fd, n.Rhs[i], lt, "assignment")
				}
			}
		case *ast.ReturnStmt:
			if sig == nil || len(n.Results) != sig.Results().Len() {
				return true
			}
			for i, res := range n.Results {
				checkBoxed(pass, fd, res, sig.Results().At(i).Type(), "return")
			}
		case *ast.CompositeLit:
			checkCompositeBoxing(pass, fd, n)
		}
		return true
	})
}

// checkCallBoxing flags concrete arguments passed to interface-typed
// parameters, including the variadic ...any tail, and explicit interface
// conversions like any(x).
func checkCallBoxing(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Explicit conversion T(x) where T is an interface.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkBoxed(pass, fd, call.Args[0], tv.Type, "conversion")
		}
		return
	}
	sigT := info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis.IsValid() {
		return // s... forwards an existing slice; nothing new is boxed
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			slice, ok := sig.Params().At(np - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		checkBoxed(pass, fd, arg, pt, "argument")
	}
}

func checkCompositeBoxing(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.CompositeLit) {
	info := pass.TypesInfo
	lt := info.TypeOf(lit)
	if lt == nil {
		return
	}
	switch u := lt.Underlying().(type) {
	case *types.Struct:
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue // positional: resolved via field order below
			}
			if ft := info.TypeOf(kv.Key); ft != nil {
				checkBoxed(pass, fd, kv.Value, ft, "composite literal field")
			}
		}
		for i, el := range lit.Elts {
			if _, ok := el.(*ast.KeyValueExpr); ok {
				continue
			}
			if i < u.NumFields() {
				checkBoxed(pass, fd, el, u.Field(i).Type(), "composite literal field")
			}
		}
	case *types.Slice:
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			checkBoxed(pass, fd, el, u.Elem(), "composite literal element")
		}
	}
}

// checkBoxed reports expr if it has a concrete type but flows into an
// interface-typed slot: that conversion heap-allocates.
func checkBoxed(pass *analysis.Pass, fd *ast.FuncDecl, expr ast.Expr, target types.Type, what string) {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || types.IsInterface(tv.Type.Underlying()) {
		return // nil and interface-to-interface do not box
	}
	if tv.Value != nil {
		return // constants box into static data, not the heap (e.g. panic("msg"))
	}
	pass.Reportf(expr.Pos(),
		"%s boxes %s into %s in hotpath function %s: interface conversion heap-allocates",
		what, tv.Type, target, fd.Name.Name)
}

// checkFuncLit flags closures that capture enclosing state, except
// literals passed directly to the non-escaping safelist (sort.Search).
func checkFuncLit(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) {
	if captured := capturedVar(pass.TypesInfo, fd, lit); captured != "" {
		if safelisted(pass, fd, lit) {
			return
		}
		pass.Reportf(lit.Pos(),
			"closure capturing %q in hotpath function %s may escape to the heap; hoist the state or pass it explicitly",
			captured, fd.Name.Name)
	}
}

// capturedVar returns the name of a variable the literal captures from the
// enclosing function, or "" if it captures nothing.
func capturedVar(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Captured ⇔ declared inside the enclosing function but outside
		// the literal. Receiver and parameters of fd count.
		if obj.Pos() >= fd.Pos() && obj.Pos() < fd.End() &&
			!(obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			name = obj.Name()
		}
		return true
	})
	return name
}

// safelisted reports whether lit is a direct argument to a callee known
// not to let its callback escape.
func safelisted(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		for _, arg := range call.Args {
			if arg == lit {
				fn := analysis.CalleeFunc(pass.TypesInfo, call)
				if analysis.IsPkgFunc(fn, "sort", "Search") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
