package hotpathcheck_test

import (
	"testing"

	"streamsched/internal/analysis/analysistest"
	"streamsched/internal/analysis/hotpathcheck"
)

func TestHotpathcheck(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathcheck.Analyzer, "hotfix")
}
