// Stub of streamsched/internal/faultinject for the hotpathcheck fixture:
// the analyzer matches the callee's package path, so the fixture only
// needs the signatures it calls.
package faultinject

func Fire(name string) bool { _ = name; return false }

func Param(name string) string { _ = name; return "" }
