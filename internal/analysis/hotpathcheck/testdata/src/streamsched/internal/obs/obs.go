// Stub of streamsched/internal/obs for the hotpathcheck fixture: the
// analyzer matches the callee's package path, so the fixture only needs
// the signatures it calls.
package obs

func Enabled() bool { return false }

type SpanRef struct{ _ byte }

func (SpanRef) Active() bool { return false }

func (SpanRef) Child(name string) SpanRef { _ = name; return SpanRef{} }

func (SpanRef) End() {}

func (SpanRef) Event(name string, args map[string]interface{}) { _, _ = name, args }
