// Fixture for hotpathcheck: only functions carrying the
// //streamsched:hotpath directive are checked.
package hotfix

import (
	"fmt"
	"sort"

	"streamsched/internal/faultinject"
	"streamsched/internal/obs"
)

type item struct{ v int }

type boxer struct{ payload interface{} }

func sinkAny(interface{}) {}

func sinkInt(int) {}

func variadic(args ...interface{}) { _ = args }

// Unmarked functions may do anything.
func coldFormat(n int) string {
	return fmt.Sprintf("n=%d", n)
}

//streamsched:hotpath
func hotFmt(n int) {
	_ = fmt.Sprint(n) // want `fmt.Sprint in hotpath function hotFmt`
}

//streamsched:hotpath
func hotBoxArg(n int) {
	sinkAny(n) // want `argument boxes int into interface\{\} in hotpath function hotBoxArg`
	sinkInt(n) // concrete to concrete: fine
}

//streamsched:hotpath
func hotBoxVariadic(n int) {
	variadic(n) // want `argument boxes int into interface\{\} in hotpath function hotBoxVariadic`
}

//streamsched:hotpath
func hotBoxConstOK() {
	sinkAny("static") // constants box into static data, not the heap
}

//streamsched:hotpath
func hotBoxAssign(it item) {
	var x interface{}
	x = it // want `assignment boxes hotfix.item into interface\{\} in hotpath function hotBoxAssign`
	_ = x
}

//streamsched:hotpath
func hotBoxReturn(n int) error {
	if n < 0 {
		return errNegative(n) // cold constructor returns error already: fine
	}
	return nil
}

type numErr int

func (numErr) Error() string { return "negative" }

func errNegative(n int) error { return numErr(n) }

//streamsched:hotpath
func hotBoxReturnConcrete(n int) error {
	return numErr(n) // want `return boxes hotfix.numErr into error in hotpath function hotBoxReturnConcrete`
}

//streamsched:hotpath
func hotBoxComposite(n int) {
	b := boxer{payload: n} // want `composite literal field boxes int into interface\{\} in hotpath function hotBoxComposite`
	_ = b
	s := []interface{}{n} // want `composite literal element boxes int into interface\{\} in hotpath function hotBoxComposite`
	_ = s
}

//streamsched:hotpath
func hotBoxConversion(n int) {
	_ = interface{}(n) // want `conversion boxes int into interface\{\} in hotpath function hotBoxConversion`
}

//streamsched:hotpath
func hotClosureCapture(xs []int, lo int) int {
	f := func() int { return lo } // want `closure capturing "lo" in hotpath function hotClosureCapture`
	return f() + len(xs)
}

//streamsched:hotpath
func hotClosureNoCaptureOK(xs []int) int {
	f := func(a, b int) int { return a + b }
	return f(len(xs), 1)
}

//streamsched:hotpath
func hotSortSearchOK(xs []int, target int) int {
	return sort.Search(len(xs), func(k int) bool { return xs[k] >= target })
}

// Unmarked functions may place fault sites.
func coldFault() bool {
	return faultinject.Fire("hotfix.cold.site")
}

//streamsched:hotpath
func hotFault() {
	if faultinject.Fire("hotfix.hot.site") { // want `faultinject.Fire in hotpath function hotFault: fault sites belong on cold paths only`
		_ = faultinject.Param("hotfix.hot.site") // want `faultinject.Param in hotpath function hotFault`
	}
}

// Unmarked functions may open spans.
func coldSpan(sp obs.SpanRef) {
	cs := sp.Child("cold")
	cs.End()
}

type phases struct{ trials int64 }

//streamsched:hotpath
func hotSpan(sp obs.SpanRef, ph *phases) {
	ph.trials++ // plain counter increment: the sanctioned hot-path instrumentation
	if !obs.Enabled() {
		return // the one-atomic-load guard is exempt
	}
	cs := sp.Child("hot") // want `obs.Child in hotpath function hotSpan: tracing belongs on cold paths`
	cs.End()              // want `obs.End in hotpath function hotSpan`
}

//streamsched:hotpath
func hotSuppressed(n int) {
	//nolint:hotpathcheck // fixture: escape hatch
	_ = fmt.Sprint(n)
}
