package benchjson

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: streamsched
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLTF/eps=1-8         	     100	   3075040 ns/op	  547072 B/op	    3149 allocs/op
BenchmarkLTF/eps=3-8         	      50	   8556014 ns/op	 2814128 B/op	    6347 allocs/op
BenchmarkAblationOneToOne/one-to-one-8 	 200	  52341 ns/op	       7.000 comms
BenchmarkSimulator/dataflow-8          	 300	  11111 ns/op
PASS
ok  	streamsched	1.234s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", f.CPU)
	}
	if len(f.Results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(f.Results))
	}
	for i := 1; i < len(f.Results); i++ {
		if f.Results[i-1].Name >= f.Results[i].Name {
			t.Errorf("results not sorted: %q before %q", f.Results[i-1].Name, f.Results[i].Name)
		}
	}
	byName := map[string]Result{}
	for _, r := range f.Results {
		byName[r.Name] = r
	}
	ltf1, ok := byName["BenchmarkLTF/eps=1"]
	if !ok {
		t.Fatalf("missing BenchmarkLTF/eps=1 in %v", f.Results)
	}
	if ltf1.Runs != 100 || ltf1.NsOp != 3075040 || ltf1.BytesOp != 547072 || ltf1.AllocsOp != 3149 {
		t.Errorf("LTF/eps=1 = %+v", ltf1)
	}
	abl := byName["BenchmarkAblationOneToOne/one-to-one"]
	if abl.Metrics["comms"] != 7 {
		t.Errorf("custom metric comms = %v", abl.Metrics)
	}
	sim := byName["BenchmarkSimulator/dataflow"]
	if sim.AllocsOp != 0 || sim.NsOp != 11111 {
		t.Errorf("simulator = %+v", sim)
	}
}

func TestParseAggregatesRepeatedRuns(t *testing.T) {
	// ns/op keeps the fastest repetition (noise is additive); memory is
	// averaged.
	out := `BenchmarkX-4 	 100	 1000 ns/op	 10 allocs/op
BenchmarkX-4 	 100	 3000 ns/op	 30 allocs/op
`
	f, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Results) != 1 {
		t.Fatalf("got %d results", len(f.Results))
	}
	r := f.Results[0]
	if r.NsOp != 1000 || r.AllocsOp != 20 || r.Runs != 200 {
		t.Errorf("aggregated = %+v", r)
	}
}

func TestStripProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkLTF/eps=1-8":                 "BenchmarkLTF/eps=1",
		"BenchmarkAblationChunk/B=1-16":        "BenchmarkAblationChunk/B=1",
		"BenchmarkAblationOneToOne/one-to-one": "BenchmarkAblationOneToOne/one-to-one",
		"BenchmarkX":                           "BenchmarkX",
	} {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	f.Rev = "abc1234"
	var buf bytes.Buffer
	if err := Encode(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rev != "abc1234" || len(g.Results) != len(f.Results) {
		t.Errorf("round trip lost data: %+v", g)
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestCompareAndRegressions(t *testing.T) {
	base := &File{Results: []Result{
		{Name: "A", NsOp: 1000, AllocsOp: 100},
		{Name: "B", NsOp: 1000, AllocsOp: 100},
		{Name: "Gone", NsOp: 500},
	}}
	cur := &File{Results: []Result{
		{Name: "A", NsOp: 1200, AllocsOp: 100}, // +20% ns: inside a 25% gate
		{Name: "B", NsOp: 1300, AllocsOp: 100}, // +30% ns: regression
		{Name: "New", NsOp: 1},                 // no baseline: ignored
	}}
	deltas := Compare(base, cur)
	if len(deltas) != 3 {
		t.Fatalf("deltas = %v", deltas)
	}
	bad := Regressions(deltas, 0.25, -1, nil)
	if len(bad) != 2 {
		t.Fatalf("regressions = %v", bad)
	}
	names := map[string]bool{}
	for _, d := range bad {
		names[d.Name] = true
	}
	if !names["B"] || !names["Gone"] {
		t.Errorf("wrong regressions: %v", bad)
	}
	// Alloc gate catches alloc-only regressions.
	cur.Results[0].AllocsOp = 200
	bad = Regressions(Compare(base, cur), 0.25, 0.10, nil)
	names = map[string]bool{}
	for _, d := range bad {
		names[d.Name] = true
	}
	if !names["A"] {
		t.Errorf("alloc regression missed: %v", bad)
	}
}

func TestCompareAndRegressionsCustomMetrics(t *testing.T) {
	base := &File{Results: []Result{
		{Name: "A", NsOp: 1000, Metrics: map[string]float64{"wakes/op": 100, "stages": 5}},
		{Name: "B", NsOp: 1000, Metrics: map[string]float64{"wakes/op": 100}},
	}}
	cur := &File{Results: []Result{
		{Name: "A", NsOp: 1000, Metrics: map[string]float64{"wakes/op": 105, "stages": 9}}, // +5% wakes: inside a 10% gate
		{Name: "B", NsOp: 1000, Metrics: map[string]float64{"wakes/op": 120}},              // +20% wakes: regression
	}}
	deltas := Compare(base, cur)
	if got := deltas[0].MetricRatios["wakes/op"]; got != 1.05 {
		t.Fatalf("A wakes ratio = %v", got)
	}
	// Ungated units never fail the gate, however much they move.
	if bad := Regressions(deltas, 0.25, -1, nil); len(bad) != 0 {
		t.Fatalf("no-gate regressions = %v", bad)
	}
	bad := Regressions(deltas, 0.25, -1, map[string]float64{"wakes/op": 0.10})
	if len(bad) != 1 || bad[0].Name != "B" {
		t.Fatalf("wakes-gate regressions = %v", bad)
	}
	if got := bad[0].Describe(); !strings.Contains(got, "wakes/op ×1.200") {
		t.Errorf("Describe() = %q, want wakes ratio", got)
	}
}

func TestParseRejectsMalformedValue(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX-4 100 notanumber ns/op\n")); err == nil {
		t.Fatal("malformed value accepted")
	}
}
