// Package benchjson turns `go test -bench` output into a schema'd,
// commit-comparable JSON artifact. The ROADMAP treats scheduler speed as a
// first-class metric; cmd/bench uses this package to record every
// benchmark's ns/op, B/op, allocs/op and custom metrics (comms, stages, …)
// into BENCH_<rev>.json files, and CI compares the current run against the
// committed BENCH_baseline.json to gate performance regressions.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the file format; bump on incompatible changes.
const Schema = "streamsched-bench/v1"

// File is one recorded benchmark run.
type File struct {
	Schema    string `json:"schema"`
	Rev       string `json:"rev"`                 // git revision the run measured
	GoVersion string `json:"goVersion,omitempty"` // runtime.Version() of the run
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
	CPU       string `json:"cpu,omitempty"`  // "cpu:" line of the bench output
	Date      string `json:"date,omitempty"` // RFC 3339, informational only
	// Results are sorted by name for stable diffs.
	Results []Result `json:"results"`
}

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix stripped, so
	// results compare across machines with different core counts.
	Name string  `json:"name"`
	Runs int     `json:"runs"` // the iteration count (b.N)
	NsOp float64 `json:"nsOp"`
	// BytesOp/AllocsOp are present when the run used -benchmem.
	BytesOp  float64 `json:"bytesOp,omitempty"`
	AllocsOp float64 `json:"allocsOp,omitempty"`
	// Metrics carries custom b.ReportMetric values by unit (comms, stages…).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Parse reads `go test -bench` output and collects benchmark results plus
// the cpu line. For repeated benchmarks (-count > 1), ns/op keeps the
// fastest repetition — scheduling interference on a loaded machine only
// ever adds time, so the minimum is the robust estimate of true cost and
// keeps the regression gate stable on noisy hardware — while memory and
// custom metrics, which are deterministic per run, are averaged.
func Parse(r io.Reader) (*File, error) {
	f := &File{Schema: Schema}
	type acc struct {
		Result
		n int
	}
	byName := map[string]*acc{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			f.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		a := byName[res.Name]
		if a == nil {
			a = &acc{Result: res, n: 1}
			byName[res.Name] = a
			order = append(order, res.Name)
			continue
		}
		a.n++
		a.Runs += res.Runs
		a.NsOp = min(a.NsOp, res.NsOp)
		a.BytesOp += res.BytesOp
		a.AllocsOp += res.AllocsOp
		for k, v := range res.Metrics {
			if a.Metrics == nil {
				a.Metrics = map[string]float64{}
			}
			a.Metrics[k] += v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range order {
		a := byName[name]
		res := a.Result
		if a.n > 1 {
			res.BytesOp /= float64(a.n)
			res.AllocsOp /= float64(a.n)
			for k := range res.Metrics {
				res.Metrics[k] /= float64(a.n)
			}
		}
		f.Results = append(f.Results, res)
	}
	sort.Slice(f.Results, func(i, j int) bool { return f.Results[i].Name < f.Results[j].Name })
	return f, nil
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkLTF/eps=1-8  100  123456 ns/op  4096 B/op  17 allocs/op  3.0 comms
//
// ok reports whether the line was a benchmark result at all (the "Benchmark…"
// announcement lines of -v runs carry no fields and are skipped).
func parseLine(line string) (res Result, ok bool, err error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return res, false, nil
	}
	res.Name = stripProcSuffix(fields[0])
	res.Runs, err = strconv.Atoi(fields[1])
	if err != nil {
		return res, false, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
	}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return res, false, fmt.Errorf("benchjson: bad value in %q: %w", line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsOp = v
		case "B/op":
			res.BytesOp = v
		case "allocs/op":
			res.AllocsOp = v
		case "MB/s":
			// throughput is derivable from ns/op; skip
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, true, nil
}

// stripProcSuffix removes the trailing -N GOMAXPROCS marker from a benchmark
// name. Sub-benchmark names may themselves contain '-', so only a trailing
// all-digit segment is stripped.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// Encode writes f as stable, indented JSON.
func Encode(w io.Writer, f *File) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Decode reads a File and verifies its schema.
func Decode(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("benchjson: schema %q, want %q", f.Schema, Schema)
	}
	return &f, nil
}

// Delta is one benchmark's baseline-to-current comparison.
type Delta struct {
	Name string
	// Ratio is current/baseline for the compared metric; 1.10 means 10%
	// slower (ns/op) or 10% more allocations.
	NsRatio     float64
	AllocsRatio float64 // 0 when either side lacks -benchmem data
	// MetricRatios holds current/baseline per custom-metric unit (wakes/op,
	// comms, …) for units present with a positive value on both sides.
	MetricRatios map[string]float64
	Missing      bool // benchmark present in baseline but not in current
}

// Compare matches current results against a baseline by name. Benchmarks
// only present on one side are reported (Missing) or ignored (new ones —
// they have no baseline to regress against).
func Compare(baseline, current *File) []Delta {
	cur := map[string]Result{}
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	var deltas []Delta
	for _, b := range baseline.Results {
		c, ok := cur[b.Name]
		if !ok {
			deltas = append(deltas, Delta{Name: b.Name, Missing: true})
			continue
		}
		d := Delta{Name: b.Name}
		if b.NsOp > 0 {
			d.NsRatio = c.NsOp / b.NsOp
		}
		if b.AllocsOp > 0 {
			d.AllocsRatio = c.AllocsOp / b.AllocsOp
		}
		for unit, bv := range b.Metrics {
			cv, ok := c.Metrics[unit]
			if !ok || bv <= 0 {
				continue
			}
			if d.MetricRatios == nil {
				d.MetricRatios = map[string]float64{}
			}
			d.MetricRatios[unit] = cv / bv
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// Regressions filters deltas exceeding the thresholds: nsTol is the allowed
// fractional ns/op increase (0.25 → fail above +25%), allocTol the same for
// allocs/op (pass a negative allocTol to skip the alloc gate), and metricTol
// bounds custom-metric growth per unit — {"wakes/op": 0.10} fails any
// benchmark whose wakes/op grew more than 10% over the baseline. Units
// absent from metricTol are informational only (quality metrics like stages
// move legitimately with algorithm changes). Missing benchmarks always count
// as regressions — a silently dropped benchmark must not pass the gate.
func Regressions(deltas []Delta, nsTol, allocTol float64, metricTol map[string]float64) []Delta {
	var bad []Delta
	for _, d := range deltas {
		switch {
		case d.Missing:
			bad = append(bad, d)
		case d.NsRatio > 1+nsTol:
			bad = append(bad, d)
		case allocTol >= 0 && d.AllocsRatio > 1+allocTol:
			bad = append(bad, d)
		default:
			for unit, tol := range metricTol {
				if d.MetricRatios[unit] > 1+tol {
					bad = append(bad, d)
					break
				}
			}
		}
	}
	return bad
}

// Describe renders a delta for log output.
func (d Delta) Describe() string {
	if d.Missing {
		return fmt.Sprintf("%s: missing from current run", d.Name)
	}
	s := fmt.Sprintf("%s: ns/op ×%.3f", d.Name, d.NsRatio)
	if d.AllocsRatio > 0 {
		s += fmt.Sprintf(", allocs/op ×%.3f", d.AllocsRatio)
	}
	units := make([]string, 0, len(d.MetricRatios))
	for unit := range d.MetricRatios {
		units = append(units, unit)
	}
	sort.Strings(units)
	for _, unit := range units {
		s += fmt.Sprintf(", %s ×%.3f", unit, d.MetricRatios[unit])
	}
	return s
}
