package platform

import (
	"math"
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/rng"
)

func TestHomogeneous(t *testing.T) {
	p := Homogeneous(4, 2.0, 10.0)
	if p.NumProcs() != 4 {
		t.Fatalf("NumProcs = %d", p.NumProcs())
	}
	for u := 0; u < 4; u++ {
		if p.Speed(ProcID(u)) != 2.0 {
			t.Fatalf("speed[%d] = %v", u, p.Speed(ProcID(u)))
		}
	}
	if p.Bandwidth(0, 3) != 10.0 {
		t.Fatalf("bw = %v", p.Bandwidth(0, 3))
	}
}

func TestExecAndCommTime(t *testing.T) {
	p := Homogeneous(2, 2.0, 5.0)
	if got := p.ExecTime(10, 0); got != 5 {
		t.Fatalf("ExecTime = %v", got)
	}
	if got := p.CommTime(10, 0, 1); got != 2 {
		t.Fatalf("CommTime = %v", got)
	}
	if got := p.CommTime(10, 1, 1); got != 0 {
		t.Fatalf("intra-proc CommTime = %v, want 0", got)
	}
}

func TestBandwidthDiagonalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Homogeneous(2, 1, 1).Bandwidth(1, 1)
}

func TestNewValidation(t *testing.T) {
	cases := []func(){
		func() { New(nil, nil) },
		func() { New([]float64{1}, nil) },
		func() { New([]float64{0}, [][]float64{{0}}) },
		func() { New([]float64{1, 1}, [][]float64{{0, 0}, {0, 0}}) },
		func() { New([]float64{1, 1}, [][]float64{{0, 1}, {1}}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNewCopiesInput(t *testing.T) {
	speeds := []float64{1, 2}
	bw := [][]float64{{0, 3}, {3, 0}}
	p := New(speeds, bw)
	speeds[0] = 99
	bw[0][1] = 99
	if p.Speed(0) != 1 || p.Bandwidth(0, 1) != 3 {
		t.Fatal("platform aliases caller slices")
	}
}

func TestRandomHeterogeneousRanges(t *testing.T) {
	r := rng.New(1)
	p := RandomHeterogeneous(r, 20, 0.5, 1.0, 0.5, 1.0, 100)
	for u := 0; u < 20; u++ {
		s := p.Speed(ProcID(u))
		if s < 0.5 || s > 1.0 {
			t.Fatalf("speed %v out of range", s)
		}
	}
	for u := 0; u < 20; u++ {
		for h := 0; h < 20; h++ {
			if u == h {
				continue
			}
			b := p.Bandwidth(ProcID(u), ProcID(h))
			// delay in [0.5,1] → bandwidth in [100, 200]
			if b < 100-1e-9 || b > 200+1e-9 {
				t.Fatalf("bandwidth %v out of [100,200]", b)
			}
			if b != p.Bandwidth(ProcID(h), ProcID(u)) {
				t.Fatal("bandwidth not symmetric")
			}
		}
	}
}

func TestAggregates(t *testing.T) {
	p := New([]float64{1, 2, 4}, [][]float64{
		{0, 10, 20},
		{10, 0, 40},
		{20, 40, 0},
	})
	if p.MinSpeed() != 1 || p.MaxSpeed() != 4 {
		t.Fatalf("min/max speed wrong: %v %v", p.MinSpeed(), p.MaxSpeed())
	}
	if got := p.MeanSpeed(); math.Abs(got-7.0/3) > 1e-12 {
		t.Fatalf("MeanSpeed = %v", got)
	}
	if p.MinBandwidth() != 10 {
		t.Fatalf("MinBandwidth = %v", p.MinBandwidth())
	}
	want := (10.0 + 20 + 10 + 40 + 20 + 40) / 6
	if got := p.MeanBandwidth(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanBandwidth = %v, want %v", got, want)
	}
}

func TestSingleProcessorMeanBandwidth(t *testing.T) {
	p := New([]float64{1}, [][]float64{{0}})
	if !math.IsInf(p.MeanBandwidth(), 1) {
		t.Fatal("single-proc mean bandwidth should be +Inf")
	}
}

func TestGranularity(t *testing.T) {
	g := dag.New("g")
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.MustAddEdge(a, b, 5)
	// slowest speed 1 → comp sum 20; slowest bw 2 → comm sum 2.5; g = 8.
	p := New([]float64{1, 2}, [][]float64{{0, 2}, {2, 0}})
	if got := Granularity(g, p); math.Abs(got-8) > 1e-12 {
		t.Fatalf("Granularity = %v, want 8", got)
	}
}

func TestGranularityNoEdges(t *testing.T) {
	g := dag.New("g")
	g.AddTask("a", 1)
	p := Homogeneous(2, 1, 1)
	if !math.IsInf(Granularity(g, p), 1) {
		t.Fatal("granularity of edgeless graph should be +Inf")
	}
}

func TestString(t *testing.T) {
	if Homogeneous(3, 1, 1).String() == "" {
		t.Fatal("empty String()")
	}
}
