// Package platform models the heterogeneous target of the paper's framework
// (§2): m fully interconnected processors P = {P1..Pm} with speeds s_u, and
// links l_kh of bandwidth d_kh (when processors are connected by a multi-hop
// path, the path's slowest link defines the bandwidth — callers simply store
// that effective value). Communication follows the bi-directional one-port
// model, which lives in package oneport; this package only carries the
// static parameters.
package platform

import (
	"fmt"
	"math"

	"streamsched/internal/dag"
	"streamsched/internal/rng"
)

// ProcID identifies a processor; IDs are dense, starting at 0.
type ProcID int

// Platform describes the processors and the link bandwidth matrix.
type Platform struct {
	speeds []float64
	bw     [][]float64 // bw[k][h]: bandwidth of link l_kh; diagonal unused
}

// New builds a platform from explicit speeds and a bandwidth matrix.
// The matrix must be square with dimension len(speeds); off-diagonal entries
// must be positive. It panics on malformed input (platforms are built by
// trusted generators).
func New(speeds []float64, bw [][]float64) *Platform {
	m := len(speeds)
	if m == 0 {
		panic("platform: no processors")
	}
	if len(bw) != m {
		panic(fmt.Sprintf("platform: bandwidth matrix has %d rows, want %d", len(bw), m))
	}
	for u, s := range speeds {
		if s <= 0 {
			panic(fmt.Sprintf("platform: processor %d has non-positive speed %v", u, s))
		}
		if len(bw[u]) != m {
			panic(fmt.Sprintf("platform: bandwidth row %d has %d cols, want %d", u, len(bw[u]), m))
		}
		for h, d := range bw[u] {
			if h != u && d <= 0 {
				panic(fmt.Sprintf("platform: link (%d,%d) has non-positive bandwidth %v", u, h, d))
			}
		}
	}
	p := &Platform{
		speeds: append([]float64(nil), speeds...),
		bw:     make([][]float64, m),
	}
	for u := range bw {
		p.bw[u] = append([]float64(nil), bw[u]...)
	}
	return p
}

// Homogeneous builds m identical processors of the given speed with uniform
// link bandwidth.
func Homogeneous(m int, speed, bandwidth float64) *Platform {
	speeds := make([]float64, m)
	bw := make([][]float64, m)
	for u := range speeds {
		speeds[u] = speed
		bw[u] = make([]float64, m)
		for h := range bw[u] {
			bw[u][h] = bandwidth
		}
	}
	return New(speeds, bw)
}

// RandomHeterogeneous draws speeds uniformly from [speedLo, speedHi] and,
// per the paper's experimental setup, draws a *unit message delay* for each
// link uniformly from [delayLo, delayHi]; the link bandwidth is
// volumeScale/delay, so a volume-V message takes V·delay/volumeScale time.
// Links are symmetric (d_kh = d_hk).
func RandomHeterogeneous(r *rng.Source, m int, speedLo, speedHi, delayLo, delayHi, volumeScale float64) *Platform {
	speeds := make([]float64, m)
	for u := range speeds {
		speeds[u] = r.Uniform(speedLo, speedHi)
	}
	bw := make([][]float64, m)
	for u := range bw {
		bw[u] = make([]float64, m)
	}
	for u := 0; u < m; u++ {
		for h := u + 1; h < m; h++ {
			delay := r.Uniform(delayLo, delayHi)
			b := volumeScale / delay
			bw[u][h] = b
			bw[h][u] = b
		}
	}
	return New(speeds, bw)
}

// NumProcs returns m.
func (p *Platform) NumProcs() int { return len(p.speeds) }

// Speed returns s_u.
func (p *Platform) Speed(u ProcID) float64 { return p.speeds[u] }

// Speeds returns all speeds in ID order; the slice must not be modified.
func (p *Platform) Speeds() []float64 { return p.speeds }

// Bandwidth returns d_kh, the bandwidth of the link between k and h.
// It panics for k == h: intra-processor transfers take zero time and must be
// short-circuited by the caller, never priced through a link.
func (p *Platform) Bandwidth(k, h ProcID) float64 {
	if k == h {
		panic(fmt.Sprintf("platform: bandwidth queried for intra-processor pair %d", k))
	}
	return p.bw[k][h]
}

// ExecTime returns the running time of a work-w task on processor u.
func (p *Platform) ExecTime(w float64, u ProcID) float64 { return w / p.speeds[u] }

// CommTime returns the transfer time of volume vol from k to h (zero when
// k == h).
func (p *Platform) CommTime(vol float64, k, h ProcID) float64 {
	if k == h {
		return 0
	}
	return vol / p.bw[k][h]
}

// MinSpeed returns the slowest processor speed.
func (p *Platform) MinSpeed() float64 {
	m := math.Inf(1)
	for _, s := range p.speeds {
		if s < m {
			m = s
		}
	}
	return m
}

// MaxSpeed returns the fastest processor speed.
func (p *Platform) MaxSpeed() float64 {
	m := math.Inf(-1)
	for _, s := range p.speeds {
		if s > m {
			m = s
		}
	}
	return m
}

// MeanSpeed returns the average speed s̄, used by the level weight functions.
func (p *Platform) MeanSpeed() float64 {
	sum := 0.0
	for _, s := range p.speeds {
		sum += s
	}
	return sum / float64(len(p.speeds))
}

// MinBandwidth returns the slowest link bandwidth.
func (p *Platform) MinBandwidth() float64 {
	m := math.Inf(1)
	for u := range p.bw {
		for h, d := range p.bw[u] {
			if u != h && d < m {
				m = d
			}
		}
	}
	return m
}

// MeanBandwidth returns the average off-diagonal bandwidth d̄.
func (p *Platform) MeanBandwidth() float64 {
	sum, n := 0.0, 0
	for u := range p.bw {
		for h, d := range p.bw[u] {
			if u != h {
				sum += d
				n++
			}
		}
	}
	if n == 0 {
		return math.Inf(1) // single processor: communications are free
	}
	return sum / float64(n)
}

// Granularity returns g(G,P) as defined in §2: the ratio of the sum of the
// slowest computation times of each task to the sum of the slowest
// communication times along each edge. Larger g means a more compute-bound
// workload. It returns +Inf for graphs without (positive-volume) edges.
func Granularity(g *dag.Graph, p *Platform) float64 {
	comp := 0.0
	minS := p.MinSpeed()
	for _, t := range g.Tasks() {
		comp += t.Work / minS
	}
	comm := 0.0
	minB := p.MinBandwidth()
	for i := 0; i < g.NumTasks(); i++ {
		for _, e := range g.Succ(dag.TaskID(i)) {
			comm += e.Volume / minB
		}
	}
	if comm == 0 {
		return math.Inf(1)
	}
	return comp / comm
}

// String summarizes the platform.
func (p *Platform) String() string {
	return fmt.Sprintf("platform(m=%d speeds=[%.3g,%.3g] bw_min=%.3g)",
		p.NumProcs(), p.MinSpeed(), p.MaxSpeed(), p.MinBandwidth())
}
