// Package trace exports schedules and simulated executions in the Chrome
// trace-event format (the JSON array flavour), viewable in chrome://tracing
// or Perfetto: processors become "threads", task replicas become duration
// events, and transfers appear on per-processor port rows. This gives the
// repository a real inspection story beyond ASCII Gantt charts.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"

	"streamsched/internal/schedule"
)

// Span is one traced activity.
type Span struct {
	// Name labels the event (task name, or "t3(2)→t5(1)" for transfers).
	Name string
	// Lane identifies the row: "P3" for compute, "P3:send"/"P3:recv" for
	// ports.
	Lane string
	// Start and End are in schedule time units.
	Start, End float64
	// Instant marks a point-in-time event (rendered ph="i" at Start; End
	// is ignored). Request traces use these for solver phase events.
	// Omitted from JSON when false so schedule/sim exports — none of which
	// emit instants — stay byte-identical to their golden files.
	Instant bool `json:",omitempty"`
	// Args carries extra metadata (item index, stage, volume, ...).
	Args map[string]any
}

// chromeEvent is the trace-event JSON shape ("X" = complete event,
// "i" = instant event with thread scope).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	Pid   int            `json:"pid"`
	Tid   string         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeJSON renders the spans as a Chrome trace-event array. Time units
// are mapped 1:1 onto microseconds (the format's native unit).
func ChromeJSON(spans []Span) ([]byte, error) {
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		if s.Instant {
			events = append(events, chromeEvent{
				Name: s.Name,
				Cat:  "streamsched",
				Ph:   "i",
				Ts:   s.Start,
				Pid:  1,
				Tid:  s.Lane,
				// "t" scopes the instant marker to its thread row.
				Scope: "t",
				Args:  s.Args,
			})
			continue
		}
		if s.End < s.Start {
			return nil, fmt.Errorf("trace: span %q inverted [%v,%v]", s.Name, s.Start, s.End)
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "streamsched",
			Ph:   "X",
			Ts:   s.Start,
			Dur:  s.End - s.Start,
			Pid:  1,
			Tid:  s.Lane,
			Args: s.Args,
		})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Tid != events[j].Tid {
			return events[i].Tid < events[j].Tid
		}
		return events[i].Ts < events[j].Ts
	})
	return json.MarshalIndent(events, "", " ")
}

// FromSchedule converts one static iteration of a schedule into spans:
// every replica on its processor's compute lane, every cross-processor
// transfer on the send and receive port lanes.
func FromSchedule(s *schedule.Schedule) []Span {
	stages := s.StageNumbers()
	var spans []Span
	for _, r := range s.All() {
		name := fmt.Sprintf("%s(%d)", s.G.Task(r.Ref.Task).Name, r.Ref.Copy+1)
		spans = append(spans, Span{
			Name:  name,
			Lane:  fmt.Sprintf("P%d", r.Proc+1),
			Start: r.Start,
			End:   r.Finish,
			Args: map[string]any{
				"task":  int(r.Ref.Task),
				"copy":  r.Ref.Copy,
				"stage": stages[r.Ref],
			},
		})
		for _, c := range r.In {
			src := s.Replica(c.From)
			if src == nil || src.Proc == r.Proc {
				continue
			}
			cname := fmt.Sprintf("%v→%v", c.From, r.Ref)
			args := map[string]any{"volume": c.Volume}
			spans = append(spans, Span{
				Name: cname, Lane: fmt.Sprintf("P%d:send", src.Proc+1),
				Start: c.Start, End: c.Finish, Args: args,
			})
			spans = append(spans, Span{
				Name: cname, Lane: fmt.Sprintf("P%d:recv", r.Proc+1),
				Start: c.Start, End: c.Finish, Args: args,
			})
		}
	}
	return spans
}
