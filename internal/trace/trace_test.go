package trace_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"streamsched/internal/dag"
	"streamsched/internal/ltf"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
	"streamsched/internal/sim"
	"streamsched/internal/trace"
)

func testSchedule(t *testing.T) *schedule.Schedule {
	t.Helper()
	g := dag.New("g")
	a := g.AddTask("alpha", 1)
	b := g.AddTask("beta", 1)
	// A period of 1.5 rules out co-location (Σ would be 2), so the chain
	// must cross processors and the trace gains transfer spans.
	g.MustAddEdge(a, b, 0.5)
	p := platform.Homogeneous(4, 1, 1)
	s, err := ltf.Schedule(context.Background(), g, p, 1, 1.5, ltf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestChromeJSONWellFormed(t *testing.T) {
	spans := trace.FromSchedule(testSchedule(t))
	if len(spans) == 0 {
		t.Fatal("no spans")
	}
	data, err := trace.ChromeJSON(spans)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != len(spans) {
		t.Fatalf("events %d vs spans %d", len(events), len(spans))
	}
	for _, ev := range events {
		if ev["ph"] != "X" || ev["name"] == "" || ev["tid"] == "" {
			t.Fatalf("malformed event %v", ev)
		}
	}
}

func TestFromScheduleLanes(t *testing.T) {
	spans := trace.FromSchedule(testSchedule(t))
	var compute, send, recv int
	for _, s := range spans {
		switch {
		case strings.Contains(s.Lane, ":send"):
			send++
		case strings.Contains(s.Lane, ":recv"):
			recv++
		default:
			compute++
		}
	}
	if compute != 4 { // 2 tasks × 2 copies
		t.Fatalf("compute spans = %d, want 4", compute)
	}
	if send != recv {
		t.Fatalf("send %d vs recv %d spans", send, recv)
	}
	if send == 0 {
		t.Fatal("no transfer spans despite cross-processor placement")
	}
}

func TestChromeJSONRejectsInvertedSpan(t *testing.T) {
	if _, err := trace.ChromeJSON([]trace.Span{{Name: "bad", Start: 2, End: 1}}); err == nil {
		t.Fatal("inverted span accepted")
	}
}

func TestSimTraceExport(t *testing.T) {
	s := testSchedule(t)
	res, err := sim.Run(context.Background(), s, sim.Config{Items: 6, Warmup: 1, TraceItems: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	// Only the first 3 items are traced: 3 items × 4 replicas compute
	// spans, plus 2 port spans per cross transfer.
	for _, sp := range res.Trace {
		if item, ok := sp.Args["item"].(int); ok && item >= 3 {
			t.Fatalf("span for untraced item %d", item)
		}
	}
	data, err := trace.ChromeJSON(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatal(err)
	}
}

func TestSimTraceDisabledByDefault(t *testing.T) {
	s := testSchedule(t)
	res, err := sim.Run(context.Background(), s, sim.Config{Items: 5, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 0 {
		t.Fatal("trace recorded without TraceItems")
	}
}
