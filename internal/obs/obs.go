// Package obs is the request-tracing and solver-instrumentation layer:
// per-request span trees with stable trace IDs, carried through the
// serving pipeline by context, exported as JSON or Chrome trace events
// (via internal/trace) and retained in a bounded in-memory ring for
// GET /debug/traces.
//
// Zero-cost-when-disabled contract (the faultinject pattern, DESIGN.md
// §11/§12): the process-wide arming counter gates every entry point.
// While no traced handle exists anywhere in the process, FromContext is a
// single atomic load returning the inactive SpanRef, and every SpanRef
// method on an inactive ref is a nil check — no clock read, no context
// walk, no allocation. Instrumented code therefore threads SpanRefs
// unconditionally; only arming makes them do anything. Tracing calls are
// still forbidden inside //streamsched:hotpath functions (hotpathcheck
// enforces it; obs.Enabled is the one allowed guard): even the atomic
// load is too much for the per-candidate placement loop, so solver
// instrumentation lives at chunk and phase granularity, and the hot path
// contributes plain counter increments (mapper.PhaseCounters) that cost
// an add, not a call.
//
// Time inside a trace is wall-clock and never feeds back into any
// computation, so the determinism invariant of the solving packages
// (determcheck) is untouched: deterministic packages may *call* obs —
// the clock reads happen here, attached to observability output only.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streamsched/internal/trace"
)

// armed counts the tracing consumers in the process (service handles with
// Config.Tracing, tests). The disarmed fast path of FromContext is one
// atomic load.
var armed atomic.Int32

// Enabled reports whether any tracing consumer is armed. It is the one
// obs call permitted inside //streamsched:hotpath functions: a single
// atomic load, for sites that must guard a block of cold bookkeeping.
func Enabled() bool { return armed.Load() != 0 }

// Enable arms tracing process-wide (reference-counted). Service handles
// built with Config.Tracing call it once at construction; tests pair it
// with Disable in cleanup.
func Enable() { armed.Add(1) }

// Disable releases one Enable.
func Disable() { armed.Add(-1) }

// idCounter seeds the fallback trace-ID stream if crypto/rand fails.
var idCounter atomic.Uint64

// newID returns a 16-hex-char random trace ID.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], idCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// span is one node of a trace's span tree. Start/End are offsets from the
// trace's Begin; parent indexes the spans slice (-1 for the root).
type span struct {
	name    string
	parent  int32
	start   time.Duration
	end     time.Duration
	open    bool
	instant bool
	args    map[string]any
}

// Trace is one request's (or one background activity's) span tree. All
// mutation goes through the mutex, so a detached flight may keep closing
// spans after the requester's trace was finished and served — late writes
// are recorded, never raced.
type Trace struct {
	// ID is the 16-hex-char trace identifier (the X-Trace-Id value).
	ID string
	// Name labels the trace (the request route, "snapshot", "drain").
	Name string
	// Begin anchors every span offset.
	Begin time.Time

	mu     sync.Mutex
	spans  []span
	total  time.Duration
	status int
	done   bool
}

// NewTrace starts a trace with a root span named name.
func NewTrace(name string) *Trace {
	t := &Trace{ID: newID(), Name: name, Begin: time.Now()}
	t.spans = append(t.spans, span{name: name, parent: -1, open: true})
	return t
}

// Root returns the root SpanRef.
func (t *Trace) Root() SpanRef { return SpanRef{tr: t, id: 0} }

// Finish closes the root span, records the outcome status and freezes the
// total duration. Child spans still open (an abandoned flight running past
// its waiters) stay open and are exported with zero duration until their
// owners close them.
func (t *Trace) Finish(status int) {
	now := time.Since(t.Begin)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	t.status = status
	t.total = now
	if t.spans[0].open {
		t.spans[0].open = false
		t.spans[0].end = now
	}
}

// DurationMs reports the frozen total duration of a finished trace in
// milliseconds (0 until Finish).
func (t *Trace) DurationMs() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return float64(t.total) / float64(time.Millisecond)
}

// SpanRef addresses one span of one trace. The zero value is inactive:
// every method is a nil-check no-op, which is what instrumented code holds
// while tracing is disabled.
type SpanRef struct {
	tr *Trace
	id int32
}

// Active reports whether the ref addresses a live trace. Use it to guard
// argument assembly that would otherwise allocate for nobody.
func (s SpanRef) Active() bool { return s.tr != nil }

// Child opens a sub-span. Inactive refs return inactive children.
func (s SpanRef) Child(name string) SpanRef {
	if s.tr == nil {
		return SpanRef{}
	}
	start := time.Since(s.tr.Begin)
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.tr.spans = append(s.tr.spans, span{name: name, parent: s.id, start: start, open: true})
	return SpanRef{tr: s.tr, id: int32(len(s.tr.spans) - 1)}
}

// End closes the span. Closing twice keeps the first end time.
func (s SpanRef) End() {
	if s.tr == nil {
		return
	}
	end := time.Since(s.tr.Begin)
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if sp := &s.tr.spans[s.id]; sp.open {
		sp.open = false
		sp.end = end
	}
}

// Event records an instant (zero-duration) child span. Guard the args
// map construction with Active when it would allocate.
func (s SpanRef) Event(name string, args map[string]any) {
	if s.tr == nil {
		return
	}
	at := time.Since(s.tr.Begin)
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.tr.spans = append(s.tr.spans, span{
		name: name, parent: s.id, start: at, end: at, instant: true, args: args,
	})
}

// SetArg attaches one key/value to the span.
func (s SpanRef) SetArg(key string, v any) {
	if s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	sp := &s.tr.spans[s.id]
	if sp.args == nil {
		sp.args = make(map[string]any, 4)
	}
	sp.args[key] = v
}

// ---- export ------------------------------------------------------------

// SpanJSON is one exported span of a TraceJSON document.
type SpanJSON struct {
	Name string `json:"name"`
	// Parent is the index of the parent span in Spans, -1 for the root.
	Parent  int32          `json:"parent"`
	StartUs float64        `json:"startUs"`
	DurUs   float64        `json:"durUs"`
	Open    bool           `json:"open,omitempty"`
	Instant bool           `json:"instant,omitempty"`
	Args    map[string]any `json:"args,omitempty"`
}

// TraceJSON is the GET /debug/traces document for one trace.
type TraceJSON struct {
	ID         string     `json:"id"`
	Name       string     `json:"name"`
	Start      time.Time  `json:"start"`
	DurationMs float64    `json:"durationMs"`
	Status     int        `json:"status,omitempty"`
	Spans      []SpanJSON `json:"spans"`
}

// Snapshot exports the trace's current state as its JSON document.
func (t *Trace) Snapshot() TraceJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	doc := TraceJSON{
		ID:         t.ID,
		Name:       t.Name,
		Start:      t.Begin,
		DurationMs: float64(t.total) / float64(time.Millisecond),
		Status:     t.status,
		Spans:      make([]SpanJSON, len(t.spans)),
	}
	for i, sp := range t.spans {
		js := SpanJSON{
			Name:    sp.name,
			Parent:  sp.parent,
			StartUs: float64(sp.start) / float64(time.Microsecond),
			Open:    sp.open,
			Instant: sp.instant,
		}
		if !sp.open {
			js.DurUs = float64(sp.end-sp.start) / float64(time.Microsecond)
		}
		if len(sp.args) > 0 {
			js.Args = make(map[string]any, len(sp.args))
			for k, v := range sp.args {
				js.Args[k] = v
			}
		}
		doc.Spans[i] = js
	}
	return doc
}

// ChromeSpans converts the trace into internal/trace spans for Chrome
// trace-event export: one lane per trace, timestamps in microseconds,
// instant spans as instant events. Open spans are exported zero-length at
// their start time.
func (t *Trace) ChromeSpans() []trace.Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	lane := t.Name + " " + t.ID[:8]
	spans := make([]trace.Span, 0, len(t.spans))
	for _, sp := range t.spans {
		end := sp.end
		if sp.open {
			end = sp.start
		}
		spans = append(spans, trace.Span{
			Name:    sp.name,
			Lane:    lane,
			Start:   float64(sp.start) / float64(time.Microsecond),
			End:     float64(end) / float64(time.Microsecond),
			Instant: sp.instant,
			Args:    sp.args,
		})
	}
	return spans
}

// Stage is one aggregated pipeline-stage duration of a trace.
type Stage struct {
	Name string
	Ms   float64
}

// StageMillis aggregates the closed, non-instant spans below the root by
// name (a stage entered twice — render at solve time and at response
// time — sums), in first-seen order. This feeds the Server-Timing header,
// the per-stage latency rings and the request log.
func (t *Trace) StageMillis() []Stage {
	t.mu.Lock()
	defer t.mu.Unlock()
	var stages []Stage
	for i := 1; i < len(t.spans); i++ {
		sp := &t.spans[i]
		if sp.open || sp.instant {
			continue
		}
		ms := float64(sp.end-sp.start) / float64(time.Millisecond)
		found := false
		for j := range stages {
			if stages[j].Name == sp.name {
				stages[j].Ms += ms
				found = true
				break
			}
		}
		if !found {
			stages = append(stages, Stage{Name: sp.name, Ms: ms})
		}
	}
	return stages
}

// ServerTiming renders the stage aggregate in Server-Timing header syntax
// ("decode;dur=0.12, hash;dur=0.01, ..."); empty when no stage closed.
// Stage names are span names, which are header-token-safe by convention
// (lowercase, dots and dashes only).
func (t *Trace) ServerTiming() string {
	stages := t.StageMillis()
	if len(stages) == 0 {
		return ""
	}
	var b strings.Builder
	for i, st := range stages {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s;dur=%.3f", st.Name, st.Ms)
	}
	return b.String()
}

// RootArg returns the root span's argument for key, or nil.
func (t *Trace) RootArg(key string) any {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans[0].args[key]
}

// ---- context plumbing --------------------------------------------------

type ctxKey struct{}

// ContextWith returns ctx carrying sp. Inactive refs return ctx unchanged,
// so disabled tracing allocates no context nodes.
func ContextWith(ctx context.Context, sp SpanRef) context.Context {
	if sp.tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the SpanRef carried by ctx. Disarmed (no tracing
// consumer in the process) it is a single atomic load returning the
// inactive ref — the context is not even consulted.
func FromContext(ctx context.Context) SpanRef {
	if armed.Load() == 0 || ctx == nil {
		return SpanRef{}
	}
	sp, _ := ctx.Value(ctxKey{}).(SpanRef)
	return sp
}

// ---- trace ring --------------------------------------------------------

// Ring retains the most recent traces in a fixed-capacity ring. Add never
// blocks beyond the mutex (no I/O, no channel), so recording a trace can
// never stall a flight.
type Ring struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	n    int
}

// NewRing builds a ring holding up to capacity traces (≤0 → 128).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 128
	}
	return &Ring{buf: make([]*Trace, capacity)}
}

// Add records t, evicting the oldest trace once full.
func (r *Ring) Add(t *Trace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained traces, newest first.
func (r *Ring) Snapshot() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len reports how many traces are retained (≤ capacity).
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
