package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"streamsched/internal/trace"
)

// TestDisabledFromContextIsFree pins the zero-cost-when-disabled contract:
// with no tracing consumer armed, FromContext plus the full complement of
// SpanRef method calls allocate nothing.
func TestDisabledFromContextIsFree(t *testing.T) {
	if Enabled() {
		t.Fatal("tracing armed at test start; another test leaked an Enable")
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := FromContext(ctx)
		child := sp.Child("x")
		child.SetArg("k", 1)
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates: %v allocs/op, want 0", allocs)
	}
}

// TestDisabledContextCarriesNothing: an active span stored in a context is
// invisible through FromContext while disarmed (the atomic gate short-
// circuits before the context walk), and visible once armed.
func TestDisabledContextCarriesNothing(t *testing.T) {
	tr := NewTrace("t")
	ctx := ContextWith(context.Background(), tr.Root())
	if sp := FromContext(ctx); sp.Active() {
		t.Fatal("FromContext returned an active span while disarmed")
	}
	Enable()
	defer Disable()
	if sp := FromContext(ctx); !sp.Active() {
		t.Fatal("FromContext returned inactive span while armed")
	}
}

func TestTraceIDFormat(t *testing.T) {
	idRe := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		tr := NewTrace("t")
		if !idRe.MatchString(tr.ID) {
			t.Fatalf("trace ID %q does not match %v", tr.ID, idRe)
		}
		if seen[tr.ID] {
			t.Fatalf("duplicate trace ID %q", tr.ID)
		}
		seen[tr.ID] = true
	}
}

func TestSpanTree(t *testing.T) {
	tr := NewTrace("solve")
	root := tr.Root()
	d := root.Child("decode")
	d.End()
	s := root.Child("solve")
	l := s.Child("ltf")
	l.SetArg("trials", 42)
	l.End()
	s.Event("rollback", map[string]any{"task": 3})
	s.End()
	root.SetArg("outcome", "solved")
	tr.Finish(200)

	doc := tr.Snapshot()
	if doc.ID != tr.ID || doc.Name != "solve" || doc.Status != 200 {
		t.Fatalf("doc header = %+v", doc)
	}
	names := make([]string, len(doc.Spans))
	for i, sp := range doc.Spans {
		names[i] = sp.Name
	}
	want := []string{"solve", "decode", "solve", "ltf", "rollback"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("span names = %v, want %v", names, want)
	}
	// Parent links: decode and the solve stage hang off the root; ltf and
	// the rollback event hang off the solve stage.
	if doc.Spans[0].Parent != -1 || doc.Spans[1].Parent != 0 || doc.Spans[2].Parent != 0 ||
		doc.Spans[3].Parent != 2 || doc.Spans[4].Parent != 2 {
		t.Fatalf("parent links wrong: %+v", doc.Spans)
	}
	if !doc.Spans[4].Instant {
		t.Fatal("event span not marked instant")
	}
	if doc.Spans[3].Args["trials"] != 42 {
		t.Fatalf("ltf args = %v", doc.Spans[3].Args)
	}
	if got := tr.RootArg("outcome"); got != "solved" {
		t.Fatalf("RootArg(outcome) = %v", got)
	}
	for _, sp := range doc.Spans {
		if sp.Open {
			t.Fatalf("span %q left open after Finish", sp.Name)
		}
	}
}

func TestStageMillisAggregatesByName(t *testing.T) {
	tr := NewTrace("t")
	root := tr.Root()
	a := root.Child("render")
	time.Sleep(time.Millisecond)
	a.End()
	b := root.Child("render")
	time.Sleep(time.Millisecond)
	b.End()
	open := root.Child("dangling")
	_ = open // open spans are excluded
	root.Event("evt", nil)
	tr.Finish(200)

	stages := tr.StageMillis()
	if len(stages) != 1 || stages[0].Name != "render" {
		t.Fatalf("stages = %+v, want single aggregated render", stages)
	}
	if stages[0].Ms < 1.5 {
		t.Fatalf("aggregated render = %.3fms, want >= ~2ms", stages[0].Ms)
	}

	st := tr.ServerTiming()
	if !strings.HasPrefix(st, "render;dur=") {
		t.Fatalf("ServerTiming = %q", st)
	}
}

func TestChromeSpansExport(t *testing.T) {
	tr := NewTrace("solve")
	root := tr.Root()
	c := root.Child("decode")
	c.End()
	root.Event("mark", nil)
	tr.Finish(200)

	spans := tr.ChromeSpans()
	if len(spans) != 3 {
		t.Fatalf("ChromeSpans len = %d, want 3", len(spans))
	}
	buf, err := trace.ChromeJSON(spans)
	if err != nil {
		t.Fatalf("ChromeJSON: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf, &events); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range events {
		phases[ev["ph"].(string)]++
	}
	if phases["X"] != 2 || phases["i"] != 1 {
		t.Fatalf("phases = %v, want 2 complete + 1 instant", phases)
	}
}

func TestFinishIdempotentAndLateChildEnd(t *testing.T) {
	tr := NewTrace("t")
	child := tr.Root().Child("flight")
	tr.Finish(200)
	first := tr.Snapshot().DurationMs
	tr.Finish(500) // late second finish: ignored
	if doc := tr.Snapshot(); doc.Status != 200 || doc.DurationMs != first {
		t.Fatalf("second Finish mutated the trace: %+v", doc)
	}
	child.End() // detached flight closing after the response was served
	doc := tr.Snapshot()
	if doc.Spans[1].Open {
		t.Fatal("late child End not recorded")
	}
}

func TestRingBoundsAndOrder(t *testing.T) {
	r := NewRing(4)
	var ids []string
	for i := 0; i < 10; i++ {
		tr := NewTrace("t")
		ids = append(ids, tr.ID)
		r.Add(tr)
	}
	if r.Len() != 4 {
		t.Fatalf("ring Len = %d, want 4", r.Len())
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(got))
	}
	// Newest first: traces 9,8,7,6.
	for i := 0; i < 4; i++ {
		if got[i].ID != ids[9-i] {
			t.Fatalf("snapshot[%d] = %s, want %s", i, got[i].ID, ids[9-i])
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(NewTrace("t"))
				if n := r.Len(); n > 8 {
					t.Errorf("ring exceeded capacity: %d", n)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := len(r.Snapshot()); n != 8 {
		t.Fatalf("final ring size = %d, want 8", n)
	}
}

func TestContextWithInactiveIsIdentity(t *testing.T) {
	ctx := context.Background()
	if got := ContextWith(ctx, SpanRef{}); got != ctx {
		t.Fatal("ContextWith(inactive) did not return ctx unchanged")
	}
}
