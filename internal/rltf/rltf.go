// Package rltf implements the Reverse LTF algorithm (§4.2 of the paper),
// the paper's best performer. R-LTF traverses the application graph
// bottom-up from the sink nodes and guides every placement by two rules,
// in order:
//
//   - Rule 1 — the pipeline stage number of the current replica must not
//     increase: placements that keep the stage at or below the maximum
//     stage of the already-placed successor replicas are preferred, which
//     in practice merges the replica onto a successor replica's processor
//     whenever the throughput constraint allows;
//   - Rule 2 — the number of replicated communications is reduced with the
//     one-to-one mapping procedure over singleton processors, exactly as
//     in LTF.
//
// Mechanically, R-LTF runs the LTF machinery on the *reversed* graph with a
// stage-preserving candidate comparator, then mirrors the resulting
// schedule in time: a replica scheduled at [σ, φ) in reverse virtual time
// runs at [H−φ, H−σ) forward, and a reverse communication s→t becomes the
// forward communication t→s over the mirrored window. Mirroring preserves
// durations, one-port disjointness (send and receive ports swap roles) and
// the throughput loads (C^I and C^O swap), so the forward schedule is valid
// whenever the reverse one is.
package rltf

import (
	"context"

	"streamsched/internal/dag"
	"streamsched/internal/ltf"
	"streamsched/internal/mapper"
	"streamsched/internal/obs"
	"streamsched/internal/platform"
	"streamsched/internal/schedule"
)

// Options tune the algorithm; the zero value uses the paper's defaults.
type Options struct {
	// ChunkSize is B, the iso-level chunk bound (0 → m).
	ChunkSize int
	// DisableOneToOne forces full communication replication (ablation).
	DisableOneToOne bool
	// Lookahead enables speculative chunk placement, exactly as in
	// ltf.Options: 0 or 1 is the plain loop, k > 1 scores k-task windows
	// per candidate strategy under a chunk transaction and keeps the best.
	Lookahead int
}

// Schedule maps g onto p tolerating eps failures at the given period using
// R-LTF and returns the (forward) schedule. Infeasibility is reported as a
// *mapper.InfeasibleError (errors.Is infeas.ErrInfeasible); a cancelled ctx
// aborts the placement loop with ctx.Err().
func Schedule(ctx context.Context, g *dag.Graph, p *platform.Platform, eps int, period float64, opts Options) (*schedule.Schedule, error) {
	gr := g.Reverse()
	st, err := mapper.New(gr, p, eps, period, "R-LTF")
	if err != nil {
		return nil, err
	}
	st.ReverseMode = true
	st.OneToOneOff = opts.DisableOneToOne
	b := opts.ChunkSize
	if b <= 0 {
		b = p.NumProcs()
	}
	// Rule 1: the stage bound for task t is the largest stage among the
	// placed replicas of its reversed-graph predecessors — the successors
	// of the original task.
	betterFor := func(t dag.TaskID) mapper.Better {
		return mapper.StagePreserving(st.MaxPredStage(t))
	}
	sp := obs.FromContext(ctx).Child("rltf")
	err = ltf.Run(obs.ContextWith(ctx, sp), st, b, opts.Lookahead, betterFor)
	ltf.EndPhaseSpan(sp, st, err)
	if err != nil {
		return nil, err
	}
	return mirror(g, st), nil
}

// FaultFree returns the paper's reference schedule: R-LTF without
// replication (ε = 0), "assuming that the system is completely safe".
func FaultFree(ctx context.Context, g *dag.Graph, p *platform.Platform, period float64, opts Options) (*schedule.Schedule, error) {
	s, err := Schedule(ctx, g, p, 0, period, opts)
	if err != nil {
		return nil, err
	}
	s.Algorithm = "FF"
	return s, nil
}

// mirror converts the reverse-graph schedule into a forward schedule on g.
func mirror(g *dag.Graph, st *mapper.State) *schedule.Schedule {
	rev := st.Sched
	h := rev.Makespan()
	fwd := schedule.New(g, st.P, st.Eps, st.Period, "R-LTF")
	// A reverse comm into ref becomes a forward comm out of its source, so
	// each forward replica receives exactly as many comms as its reverse
	// counterpart sends; count them first and size the In lists exactly.
	inCount := make([]int, g.NumTasks()*(st.Eps+1))
	idx := func(r schedule.Ref) int { return int(r.Task)*(st.Eps+1) + r.Copy }
	for t := 0; t < g.NumTasks(); t++ {
		for _, ref := range schedule.ReplicaRefs(dag.TaskID(t), st.Eps) {
			for _, c := range rev.Replica(ref).In {
				inCount[idx(c.From)]++
			}
		}
	}
	for t := 0; t < g.NumTasks(); t++ {
		for _, ref := range schedule.ReplicaRefs(dag.TaskID(t), st.Eps) {
			rr := rev.Replica(ref)
			rep := &schedule.Replica{
				Ref:    ref,
				Proc:   rr.Proc,
				Start:  h - rr.Finish,
				Finish: h - rr.Start,
			}
			if n := inCount[idx(ref)]; n > 0 {
				rep.In = make([]schedule.Comm, 0, n)
			}
			fwd.AddReplica(rep)
		}
	}
	// A reverse comm (s,M) → (x,N), with s a successor of x in g, becomes
	// the forward comm (x,N) → (s,M).
	for t := 0; t < g.NumTasks(); t++ {
		for _, ref := range schedule.ReplicaRefs(dag.TaskID(t), st.Eps) {
			rr := rev.Replica(ref)
			for _, c := range rr.In {
				consumer := fwd.Replica(c.From)
				consumer.In = append(consumer.In, schedule.Comm{
					From:   ref,
					Volume: c.Volume,
					Start:  h - c.Finish,
					Finish: h - c.Start,
				})
			}
		}
	}
	return fwd
}
